// Serving and declarative-operation facade: the query-serving
// subsystem (internal/serve) and the reconcile controller
// (internal/reconcile) re-exported for embedders. A Server is an
// http.Handler speaking the v1 API — register networks declaratively
// (NetworkSpec), query them (/v1/locate, /v1/locate/stream, schedule
// endpoint), read canonical specs back byte-stably, and delete them —
// and a Reconciler converges a Server toward a directory of spec
// files the way the sinrserve -spec-dir flag does.
package sinrdiag

import (
	"repro/internal/reconcile"
	"repro/internal/serve"
	"repro/internal/trace"
)

// NetworkSpec is the canonical declarative description of one served
// network: the POST /v1/networks body, the reconcile controller's
// file format (JSON or the YAML subset), and the GET
// /v1/networks/{name} readback.
type NetworkSpec = serve.NetworkSpec

// SpecStation is one station of a NetworkSpec (zero Power means the
// uniform default 1).
type SpecStation = serve.SpecStation

// SchedulePolicy is a network's declared scheduling defaults,
// inherited by schedule requests that omit a knob.
type SchedulePolicy = serve.SchedulePolicy

// SpecOutcome says what applying a spec did to the registry.
type SpecOutcome = serve.SpecOutcome

// The four ApplySpec outcomes.
const (
	SpecUnchanged = serve.SpecUnchanged
	SpecCreated   = serve.SpecCreated
	SpecPatched   = serve.SpecPatched
	SpecReplaced  = serve.SpecReplaced
)

// SpecResult reports one ApplySpec: outcome, resulting generation,
// and served shape.
type SpecResult = serve.SpecResult

// SpecHash is the content hash of a canonical spec serialization —
// the drift-detection currency of the declarative API.
func SpecHash(canonical []byte) string { return serve.SpecHash(canonical) }

// ParseNetworkSpec decodes one spec document (JSON or the YAML
// subset, sniffed by the first byte) strictly: unknown fields are
// errors.
func ParseNetworkSpec(data []byte) (*NetworkSpec, error) { return reconcile.ParseSpec(data) }

// Server is the serving subsystem: an http.Handler owning a registry
// of named networks behind the v1 API, with resolver and schedule
// caches, admission control, and Prometheus metrics.
type Server = serve.Server

// ServerOptions configures a Server.
type ServerOptions = serve.Options

// NewServer returns a Server with the given options.
func NewServer(opt ServerOptions) *Server { return serve.NewServer(opt) }

// SpecRegistry is the registry surface a Reconciler converges; a
// *Server satisfies it.
type SpecRegistry = reconcile.Registry

// Reconciler converges a SpecRegistry toward a directory of
// declarative network specs: content-hash drift detection, a
// deduplicating workqueue with per-item exponential backoff, keyed
// per-name locks, and a terminal-failure state after repeated
// failures.
type Reconciler = reconcile.Controller

// ReconcilerOptions configures a Reconciler; the zero value of every
// field except Dir is a usable default.
type ReconcilerOptions = reconcile.Options

// ReconcilerStats is a point-in-time Reconciler summary.
type ReconcilerStats = reconcile.Stats

// NewReconciler builds a Reconciler converging reg toward opt.Dir;
// call Run to start it.
func NewReconciler(reg SpecRegistry, opt ReconcilerOptions) *Reconciler {
	return reconcile.New(reg, opt)
}

// TraceID is a 16-byte W3C trace identifier; its String form is the
// 32-hex-digit trace-id field of a traceparent header.
type TraceID = trace.ID

// SpanID is an 8-byte W3C span identifier, the parent-id field of a
// traceparent header.
type SpanID = trace.SpanID

// TraceRecorder is the flight recorder behind GET /debug/requests:
// lock-striped per route, it tail-samples the slowest and the errored
// requests; Server.Recorder exposes the serving one.
type TraceRecorder = trace.Recorder

// CapturedTrace is one flight-recorder entry as served by
// GET /debug/requests: identity, route, status, and per-stage spans.
type CapturedTrace = trace.Captured

// CapturedSpan is one stage of a CapturedTrace (start offset and
// duration in milliseconds).
type CapturedSpan = trace.CapturedSpan

// ParseTraceparent decodes a W3C traceparent header into its trace
// and span identifiers; ok is false on any malformation.
func ParseTraceparent(h string) (id TraceID, span SpanID, ok bool) {
	return trace.ParseTraceparent(h)
}

// FormatTraceparent renders a sampled W3C traceparent header for the
// given identifiers.
func FormatTraceparent(id TraceID, span SpanID) string {
	return trace.FormatTraceparent(id, span)
}
