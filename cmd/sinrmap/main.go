// Command sinrmap renders the paper's reception diagrams (Figures 1,
// 2 and 5) as ASCII art on stdout or as PPM images.
//
// Usage:
//
//	sinrmap -fig fig1a                 # ASCII to stdout
//	sinrmap -fig fig2-sinr -o out.ppm  # PPM to a file
//	sinrmap -all -dir figures/         # every figure as PPM
//
// Figures: fig1a fig1b fig1c fig2-udg fig2-sinr fig5.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/exp"
)

var allFigures = []string{"fig1a", "fig1b", "fig1c", "fig2-udg", "fig2-sinr", "fig5"}

func main() {
	fig := flag.String("fig", "fig1a", "figure to render")
	width := flag.Int("width", 400, "pixel width (PPM) ")
	height := flag.Int("height", 400, "pixel height (PPM)")
	out := flag.String("o", "", "write a PPM image to this path instead of ASCII to stdout")
	all := flag.Bool("all", false, "render every figure as PPM")
	dir := flag.String("dir", ".", "output directory for -all")
	flag.Parse()

	if err := run(*fig, *width, *height, *out, *all, *dir); err != nil {
		fmt.Fprintln(os.Stderr, "sinrmap:", err)
		os.Exit(1)
	}
}

func run(fig string, width, height int, out string, all bool, dir string) error {
	if all {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		for _, name := range allFigures {
			path := filepath.Join(dir, name+".ppm")
			if err := renderPPM(name, width, height, path); err != nil {
				return err
			}
			fmt.Println("wrote", path)
		}
		return nil
	}
	if out != "" {
		if err := renderPPM(fig, width, height, out); err != nil {
			return err
		}
		fmt.Println("wrote", out)
		return nil
	}
	// ASCII: use a terminal-friendly default resolution.
	rm, err := exp.RenderFigure(fig, 100, 46)
	if err != nil {
		return err
	}
	fmt.Print(rm.ASCII())
	return nil
}

func renderPPM(fig string, width, height int, path string) error {
	rm, err := exp.RenderFigure(fig, width, height)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rm.WritePPM(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
