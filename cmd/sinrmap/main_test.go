package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunASCII(t *testing.T) {
	if err := run("fig1a", 40, 40, "", false, ""); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunPPMFile(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "fig.ppm")
	if err := run("fig5", 50, 50, out, false, ""); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 50*50*3 {
		t.Errorf("PPM too small: %d bytes", len(data))
	}
}

func TestRunAllFigures(t *testing.T) {
	dir := t.TempDir()
	if err := run("", 30, 30, "", true, dir); err != nil {
		t.Fatalf("run -all: %v", err)
	}
	for _, name := range allFigures {
		if _, err := os.Stat(filepath.Join(dir, name+".ppm")); err != nil {
			t.Errorf("missing %s.ppm: %v", name, err)
		}
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run("nope", 10, 10, "", false, ""); err == nil {
		t.Fatal("unknown figure must fail")
	}
}
