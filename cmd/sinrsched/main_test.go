package main

import "testing"

func TestRunOrders(t *testing.T) {
	for _, order := range []string{"short", "long", "id"} {
		if err := run(12, 15, 2, 1, order); err != nil {
			t.Fatalf("order %s: %v", order, err)
		}
	}
}

func TestRunUnknownOrder(t *testing.T) {
	if err := run(5, 15, 2, 1, "bogus"); err == nil {
		t.Fatal("unknown order must fail")
	}
}
