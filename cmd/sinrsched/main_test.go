package main

import (
	"io"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

func TestRunOrders(t *testing.T) {
	for _, order := range []string{"short", "long", "id"} {
		if err := run(io.Discard, 12, 15, 2, 1, "greedy", order); err != nil {
			t.Fatalf("order %s: %v", order, err)
		}
	}
}

func TestRunSchedulers(t *testing.T) {
	for _, kind := range []string{"greedy", "lenclass", "repair", ""} {
		if err := run(io.Discard, 16, 15, 2, 1, kind, "short"); err != nil {
			t.Fatalf("sched %q: %v", kind, err)
		}
	}
}

func TestRunFlagValidation(t *testing.T) {
	if err := run(io.Discard, 5, 15, 2, 1, "greedy", "bogus"); err == nil {
		t.Fatal("unknown order must fail")
	}
	if err := run(io.Discard, 5, 15, 2, 1, "magic", "short"); err == nil {
		t.Fatal("unknown scheduler must fail")
	}
	if err := run(io.Discard, 0, 15, 2, 1, "greedy", "short"); err == nil {
		t.Fatal("zero links must fail")
	}
	if err := run(io.Discard, 5, 15, -1, 1, "greedy", "short"); err == nil {
		t.Fatal("negative beta must fail")
	}
}

// TestRunOutputShape pins the report format: a header naming the
// instance and scheduler, then one slot-count block per model with
// slot sizes summing to the link count.
func TestRunOutputShape(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, 20, 15, 2, 7, "lenclass", "short"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if want := "20 links, 15x15 field, beta=2, sched=lenclass, order=short"; lines[0] != want {
		t.Fatalf("header = %q, want %q", lines[0], want)
	}
	for _, model := range []string{"SINR model    : ", "protocol model: "} {
		if !strings.Contains(out, model) {
			t.Fatalf("output missing %q block:\n%s", model, out)
		}
	}
	slotRe := regexp.MustCompile(`^  slot ..: (\d+) links$`)
	headerRe := regexp.MustCompile(`: (\d+) slots$`)
	total, slots, declared := 0, 0, 0
	for _, line := range lines[1:] {
		if m := headerRe.FindStringSubmatch(line); m != nil {
			n, err := strconv.Atoi(m[1])
			if err != nil {
				t.Fatal(err)
			}
			declared += n
			continue
		}
		m := slotRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unexpected line %q", line)
		}
		n, err := strconv.Atoi(m[1])
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			t.Fatalf("empty slot in output:\n%s", out)
		}
		total += n
		slots++
	}
	if total != 2*20 {
		t.Fatalf("slot sizes sum to %d, want %d (20 links x 2 models)", total, 2*20)
	}
	if slots != declared {
		t.Fatalf("%d slot lines, headers declare %d", slots, declared)
	}
}

// TestRunDeterministic: same seed, same report.
func TestRunDeterministic(t *testing.T) {
	render := func() string {
		var sb strings.Builder
		if err := run(&sb, 24, 16, 2, 3, "repair", "long"); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if a, b := render(), render(); a != b {
		t.Fatalf("same seed produced different reports:\n%s\n---\n%s", a, b)
	}
}
