// Command sinrsched schedules a random set of wireless links under
// both the SINR model and the UDG/protocol model and prints the
// schedules side by side — the application the paper's introduction
// motivates (transmission scheduling against the physical model).
//
// Usage:
//
//	sinrsched [-links 40] [-side 18] [-beta 2] [-seed 1]
//	          [-sched greedy|lenclass|repair] [-order short|long|id]
//
// -sched picks the scheduler: greedy first-fit (the default), the
// length-class scheduler (links bucketed by log2 of their length,
// classes scheduled into disjoint slots), or greedy followed by the
// local-search improver (repair). Both models run on the same link
// set and every schedule is re-validated before printing, so a
// non-zero exit means a scheduler bug, not an unlucky instance.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/geom"
	"repro/internal/sched"
	"repro/internal/workload"
)

func main() {
	nLinks := flag.Int("links", 40, "number of links")
	side := flag.Float64("side", 18, "deployment square side")
	beta := flag.Float64("beta", 2, "SINR threshold")
	seed := flag.Int64("seed", 1, "random seed")
	kind := flag.String("sched", "greedy", "scheduler: greedy|lenclass|repair")
	order := flag.String("order", "short", "link order for greedy and repair: short|long|id")
	flag.Parse()

	if err := run(os.Stdout, *nLinks, *side, *beta, *seed, *kind, *order); err != nil {
		fmt.Fprintln(os.Stderr, "sinrsched:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, nLinks int, side, beta float64, seed int64, kindName, orderName string) error {
	kind, err := sched.ParseKind(kindName)
	if err != nil {
		return err
	}
	gen := workload.NewGenerator(seed)
	box := geom.NewBox(geom.Pt(0, 0), geom.Pt(side, side))
	senders := gen.UniformInBox(nLinks, box)
	links := make([]sched.Link, nLinks)
	for i, s := range senders {
		links[i] = sched.Link{
			Sender:   s,
			Receiver: geom.PolarPoint(s, 0.5+gen.Float64(), gen.Float64()*6.283185307),
		}
	}

	sp, err := sched.NewSINRProblem(links, 0.0001, beta)
	if err != nil {
		return err
	}
	pp, err := sched.NewProtocolProblem(links, 1.5, 3)
	if err != nil {
		return err
	}

	var order []int
	switch orderName {
	case "short":
		order = sched.ByLength(links, true)
	case "long":
		order = sched.ByLength(links, false)
	case "id":
		order = nil
	default:
		return fmt.Errorf("unknown order %q (want short|long|id)", orderName)
	}

	ss, err := sched.BuildSchedule(kind, sp, order)
	if err != nil {
		return err
	}
	if err := ss.Validate(sp); err != nil {
		return err
	}
	ps, err := sched.BuildSchedule(kind, pp, order)
	if err != nil {
		return err
	}
	if err := ps.Validate(pp); err != nil {
		return err
	}

	fmt.Fprintf(w, "%d links, %gx%g field, beta=%g, sched=%s, order=%s\n",
		nLinks, side, side, beta, kind, orderName)
	fmt.Fprintf(w, "SINR model    : %d slots\n", ss.NumSlots())
	for i, slot := range ss.Slots {
		fmt.Fprintf(w, "  slot %2d: %d links\n", i, len(slot))
	}
	fmt.Fprintf(w, "protocol model: %d slots\n", ps.NumSlots())
	for i, slot := range ps.Slots {
		fmt.Fprintf(w, "  slot %2d: %d links\n", i, len(slot))
	}
	return nil
}
