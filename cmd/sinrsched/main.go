// Command sinrsched schedules a random set of wireless links under
// both the SINR model and the UDG/protocol model and prints the
// schedules side by side — the application the paper's introduction
// motivates (transmission scheduling against the physical model).
//
// Usage:
//
//	sinrsched [-links 40] [-side 18] [-beta 2] [-seed 1] [-order short|long|id]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/geom"
	"repro/internal/sched"
	"repro/internal/workload"
)

func main() {
	nLinks := flag.Int("links", 40, "number of links")
	side := flag.Float64("side", 18, "deployment square side")
	beta := flag.Float64("beta", 2, "SINR threshold")
	seed := flag.Int64("seed", 1, "random seed")
	order := flag.String("order", "short", "greedy order: short|long|id")
	flag.Parse()

	if err := run(*nLinks, *side, *beta, *seed, *order); err != nil {
		fmt.Fprintln(os.Stderr, "sinrsched:", err)
		os.Exit(1)
	}
}

func run(nLinks int, side, beta float64, seed int64, orderName string) error {
	gen := workload.NewGenerator(seed)
	box := geom.NewBox(geom.Pt(0, 0), geom.Pt(side, side))
	senders := gen.UniformInBox(nLinks, box)
	links := make([]sched.Link, nLinks)
	for i, s := range senders {
		links[i] = sched.Link{
			Sender:   s,
			Receiver: geom.PolarPoint(s, 0.5+gen.Float64(), gen.Float64()*6.283185307),
		}
	}

	sp, err := sched.NewSINRProblem(links, 0.0001, beta)
	if err != nil {
		return err
	}
	pp, err := sched.NewProtocolProblem(links, 1.5, 3)
	if err != nil {
		return err
	}

	var order []int
	switch orderName {
	case "short":
		order = sched.ByLength(links, true)
	case "long":
		order = sched.ByLength(links, false)
	case "id":
		order = nil
	default:
		return fmt.Errorf("unknown order %q (want short|long|id)", orderName)
	}

	ss, err := sched.Greedy(sp, order)
	if err != nil {
		return err
	}
	if err := ss.Validate(sp); err != nil {
		return err
	}
	ps, err := sched.Greedy(pp, order)
	if err != nil {
		return err
	}
	if err := ps.Validate(pp); err != nil {
		return err
	}

	fmt.Printf("%d links, %gx%g field, beta=%g, order=%s\n", nLinks, side, side, beta, orderName)
	fmt.Printf("SINR model    : %d slots\n", ss.NumSlots())
	for i, slot := range ss.Slots {
		fmt.Printf("  slot %2d: %d links\n", i, len(slot))
	}
	fmt.Printf("protocol model: %d slots\n", ps.NumSlots())
	for i, slot := range ps.Slots {
		fmt.Printf("  slot %2d: %d links\n", i, len(slot))
	}
	return nil
}
