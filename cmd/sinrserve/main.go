// Command sinrserve runs the query-serving subsystem: a long-running
// HTTP service owning a registry of named networks, answering
// point-location traffic through Theorem 3 locators built on demand
// behind a single-flight LRU cache.
//
// Usage:
//
//	sinrserve [-addr :8080] [-max-locators 8] [-workers 0] [-default-eps 0.05] [-min-eps 0.01]
//
// The listener is bound before the startup line is printed, and the
// line reports the actual bound address — so -addr 127.0.0.1:0 picks
// a free ephemeral port and scripts (the CI serve-smoke job) can read
// it from stdout instead of guessing ports:
//
//	sinrserve: listening on 127.0.0.1:43627 (...)
//
// Endpoints (see internal/serve):
//
//	POST /v1/networks       register or hot-swap a named network
//	GET  /v1/networks       list registered networks
//	POST /v1/locate         JSON batch of points -> exact answers
//	POST /v1/locate/stream  NDJSON in/out streaming queries
//	GET  /healthz           liveness probe
//
// The process shuts down gracefully on SIGINT/SIGTERM, letting
// in-flight requests finish.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	maxLocators := flag.Int("max-locators", 8, "locator cache capacity (LRU)")
	workers := flag.Int("workers", 0, "worker pool size for builds and batch queries (0 = NumCPU)")
	defaultEps := flag.Float64("default-eps", serve.DefaultEps, "locator eps for requests that omit it")
	minEps := flag.Float64("min-eps", 0.01, "smallest client-supplied eps accepted (builds cost O(n^3/eps))")
	flag.Parse()

	if err := run(*addr, *maxLocators, *workers, *defaultEps, *minEps); err != nil {
		fmt.Fprintln(os.Stderr, "sinrserve:", err)
		os.Exit(1)
	}
}

func run(addr string, maxLocators, workers int, defaultEps, minEps float64) error {
	handler := serve.NewServer(serve.Options{
		MaxLocators: maxLocators,
		Workers:     workers,
		DefaultEps:  defaultEps,
		MinEps:      minEps,
	})
	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Bind before announcing: the printed address is the one actually
	// listening (with -addr host:0 the kernel-assigned port), so a
	// supervisor polling it can never race the bind or pick a port
	// that was taken.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("sinrserve: listening on %s (max-locators=%d workers=%d default-eps=%g min-eps=%g)\n",
		ln.Addr(), maxLocators, workers, defaultEps, minEps)

	errCh := make(chan error, 1)
	go func() {
		errCh <- srv.Serve(ln)
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case sig := <-stop:
		fmt.Printf("sinrserve: %v, draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return err
		}
		if err := <-errCh; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
