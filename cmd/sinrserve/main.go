// Command sinrserve runs the query-serving subsystem: a long-running
// HTTP service owning a registry of named networks, answering
// point-location traffic through Theorem 3 locators built on demand
// behind a single-flight LRU cache.
//
// Usage:
//
//	sinrserve [-addr :8080] [-max-locators 8] [-workers 0]
//	          [-default-eps 0.05] [-min-eps 0.01]
//	          [-max-concurrent 0] [-max-queue 128] [-retry-after 1s]
//	          [-drain-timeout 15s] [-stream-drain 5s]
//	          [-spec-dir DIR] [-reconcile-interval 2s] [-max-retries 5]
//	          [-log-requests] [-pprof] [-debug-requests]
//
// The listener is bound before the startup line is printed, and the
// line reports the actual bound address — so -addr 127.0.0.1:0 picks
// a free ephemeral port and scripts (the CI serve-smoke job) can read
// it from stdout instead of guessing ports:
//
//	sinrserve: listening on 127.0.0.1:43627 (...)
//
// Endpoints (see internal/serve):
//
//	POST /v1/networks       register or hot-swap a named network
//	GET  /v1/networks       list registered networks
//	GET  /v1/networks/{name}    canonical spec readback
//	DELETE /v1/networks/{name}  remove a network and its caches
//	PATCH /v1/networks/{name}  apply a station delta to a dynamic network
//	POST /v1/locate         JSON batch of points -> exact answers
//	POST /v1/locate/stream  NDJSON in/out streaming queries
//	GET  /healthz           liveness probe
//	GET  /readyz            readiness probe (503 once draining)
//	GET  /metrics           Prometheus text exposition (OpenMetrics
//	                        with exemplars when the scrape Accepts it)
//	GET  /debug/requests    flight recorder: slowest/errored traces
//	                        (only with -debug-requests)
//	GET  /debug/pprof/      runtime profiles (only with -pprof)
//
// With -spec-dir the process also runs the reconcile controller
// (internal/reconcile): the directory is listed every
// -reconcile-interval, every *.json / *.yaml / *.yml file is parsed
// as one declarative NetworkSpec, and the live registry is converged
// to match — files appearing become networks, edits land as deltas or
// rebuilds, removed files delete their networks. A network failing to
// build retries with exponential backoff up to -max-retries times,
// then parks until its spec content changes. Controller state is
// visible on /metrics (sinr_reconcile_* and per-network
// sinr_network_drift series).
//
// With -max-concurrent N each network runs at most N queries at once;
// excess queries wait in a global queue of -max-queue, and beyond that
// are shed with 429 and a Retry-After of -retry-after. -log-requests
// emits one structured JSON log line per request on stderr and tags
// responses with X-Request-Id.
//
// The process shuts down gracefully on SIGINT/SIGTERM: readiness
// flips to 503 immediately, the listener stops accepting, in-flight
// batch requests run to completion, and NDJSON streams get a
// -stream-drain grace period before being cancelled; the whole drain
// is bounded by -drain-timeout.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/reconcile"
	"repro/internal/serve"
)

// config carries the flag values into run.
type config struct {
	addr         string
	drainTimeout time.Duration
	streamDrain  time.Duration
	logRequests  bool
	specDir      string
	reconcileInt time.Duration
	maxRetries   int
	opt          serve.Options
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	flag.IntVar(&cfg.opt.MaxLocators, "max-locators", 8, "locator cache capacity (LRU)")
	flag.IntVar(&cfg.opt.Workers, "workers", 0, "worker pool size for builds and batch queries (0 = NumCPU)")
	flag.Float64Var(&cfg.opt.DefaultEps, "default-eps", serve.DefaultEps, "locator eps for requests that omit it")
	flag.Float64Var(&cfg.opt.MinEps, "min-eps", 0.01, "smallest client-supplied eps accepted (builds cost O(n^3/eps))")
	flag.IntVar(&cfg.opt.MaxConcurrent, "max-concurrent", 0, "max concurrently executing queries per network (0 = unlimited)")
	flag.IntVar(&cfg.opt.MaxQueue, "max-queue", 128, "max queries queued across networks before shedding 429s")
	flag.DurationVar(&cfg.opt.RetryAfter, "retry-after", time.Second, "Retry-After hint on shed responses")
	flag.DurationVar(&cfg.drainTimeout, "drain-timeout", 15*time.Second, "total graceful-shutdown budget after SIGTERM")
	flag.DurationVar(&cfg.streamDrain, "stream-drain", 5*time.Second, "grace period before in-flight streams are cancelled")
	flag.StringVar(&cfg.specDir, "spec-dir", "", "directory of declarative network specs to reconcile (empty = controller off)")
	flag.DurationVar(&cfg.reconcileInt, "reconcile-interval", 2*time.Second, "spec-dir poll/resync period")
	flag.IntVar(&cfg.maxRetries, "max-retries", 5, "consecutive reconcile failures before a network parks terminally")
	flag.BoolVar(&cfg.logRequests, "log-requests", false, "log one structured JSON line per request to stderr")
	flag.BoolVar(&cfg.opt.EnablePprof, "pprof", false, "mount net/http/pprof under /debug/pprof/")
	flag.BoolVar(&cfg.opt.EnableDebugRequests, "debug-requests", false, "mount the flight recorder at /debug/requests")
	flag.Parse()

	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "sinrserve:", err)
		os.Exit(1)
	}
}

func run(cfg config) error {
	if cfg.logRequests {
		cfg.opt.AccessLog = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	handler := serve.NewServer(cfg.opt)
	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Optional controller mode: converge the registry toward the spec
	// directory for the process lifetime, sharing the serving metrics
	// registry so /metrics exposes the reconcile instruments.
	var ctrlDone chan struct{}
	ctrlCtx, ctrlCancel := context.WithCancel(context.Background())
	defer ctrlCancel()
	if cfg.specDir != "" {
		ctrl := reconcile.New(handler, reconcile.Options{
			Dir:        cfg.specDir,
			Interval:   cfg.reconcileInt,
			MaxRetries: cfg.maxRetries,
			Metrics:    handler.Metrics(),
			Recorder:   handler.Recorder(),
			Logger:     log.New(os.Stderr, "", log.LstdFlags),
		})
		ctrlDone = make(chan struct{})
		go func() {
			defer close(ctrlDone)
			ctrl.Run(ctrlCtx)
		}()
	}

	// Bind before announcing: the printed address is the one actually
	// listening (with -addr host:0 the kernel-assigned port), so a
	// supervisor polling it can never race the bind or pick a port
	// that was taken.
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	fmt.Printf("sinrserve: listening on %s (max-locators=%d workers=%d default-eps=%g min-eps=%g max-concurrent=%d max-queue=%d spec-dir=%q)\n",
		ln.Addr(), cfg.opt.MaxLocators, cfg.opt.Workers, cfg.opt.DefaultEps, cfg.opt.MinEps,
		cfg.opt.MaxConcurrent, cfg.opt.MaxQueue, cfg.specDir)

	errCh := make(chan error, 1)
	go func() {
		errCh <- srv.Serve(ln)
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case sig := <-stop:
		fmt.Printf("sinrserve: %v, draining\n", sig)
		// Drain sequence: readiness flips first so load balancers stop
		// routing; Shutdown closes the listener and waits for in-flight
		// batches; streams get streamDrain to finish naturally before
		// Drain cancels them (they would otherwise block Shutdown
		// forever); drainTimeout bounds the whole affair.
		handler.SetReady(false)
		streamTimer := time.AfterFunc(cfg.streamDrain, handler.Drain)
		defer streamTimer.Stop()
		ctx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			// Out of budget: cut whatever is left and report it.
			handler.Drain()
			return fmt.Errorf("drain exceeded %v: %w", cfg.drainTimeout, err)
		}
		handler.Drain()
		// The controller drains after the listener: no new requests are
		// arriving, and Run returns only once every in-flight reconcile
		// finished.
		ctrlCancel()
		if ctrlDone != nil {
			<-ctrlDone
		}
		if err := <-errCh; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		fmt.Println("sinrserve: drained")
		return nil
	}
}
