// Command sinrlocate demonstrates the Theorem 3 point-location data
// structure end to end: generate a random uniform power network, build
// the locator, answer a batch of queries three ways (naive scan,
// Voronoi candidate, DS), and report agreement and timing.
//
// Usage:
//
//	sinrlocate [-n 64] [-eps 0.1] [-queries 100000] [-seed 1] [-beta 3] [-noise 0.01] [-workers 0]
//
// -workers sets the worker-pool size for the parallel locator build
// and the batch query pass (0 = one per CPU, 1 = serial).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/kdtree"
	"repro/internal/par"
	"repro/internal/workload"
)

func main() {
	n := flag.Int("n", 64, "number of stations")
	eps := flag.Float64("eps", 0.1, "Theorem 3 performance parameter")
	queries := flag.Int("queries", 100000, "number of random queries")
	seed := flag.Int64("seed", 1, "deployment seed")
	beta := flag.Float64("beta", 3, "reception threshold")
	noise := flag.Float64("noise", 0.01, "background noise")
	workers := flag.Int("workers", 0, "worker pool size for build and batch queries (0 = NumCPU, 1 = serial)")
	flag.Parse()

	if err := run(*n, *eps, *queries, *seed, *beta, *noise, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "sinrlocate:", err)
		os.Exit(1)
	}
}

func run(n int, eps float64, queries int, seed int64, beta, noise float64, workers int) error {
	gen := workload.NewGenerator(seed)
	box := geom.NewBox(geom.Pt(-5, -5), geom.Pt(5, 5))
	pts, err := gen.UniformSeparated(n, box, 0.05)
	if err != nil {
		return err
	}
	net, err := core.NewUniform(pts, noise, beta)
	if err != nil {
		return err
	}
	fmt.Printf("network: %v\n", net)

	start := time.Now()
	loc, err := net.BuildLocatorOpts(eps, core.BuildOptions{Workers: workers})
	if err != nil {
		return err
	}
	fmt.Printf("locator: built in %v with %d workers, %d uncertain cells across %d stations (eps=%v)\n",
		time.Since(start).Round(time.Millisecond), par.Norm(workers, n), loc.NumUncertainCells(), n, eps)

	qbox := box.Expand(1)
	qs := gen.QueryPoints(queries, qbox)
	tree := kdtree.New(net.Stations())

	// Run all three algorithms and cross-check.
	var counts [3]int // reception, none, uncertain
	start = time.Now()
	for _, p := range qs {
		switch loc.Locate(p).Kind {
		case core.Reception:
			counts[0]++
		case core.NoReception:
			counts[1]++
		default:
			counts[2]++
		}
	}
	dsTime := time.Since(start)

	start = time.Now()
	batch := loc.LocateBatchOpts(qs, core.BatchOptions{Workers: workers})
	batchTime := time.Since(start)
	for i, p := range qs {
		if batch[i] != loc.Locate(p) {
			return fmt.Errorf("batch answer diverged from single-point Locate at query %d", i)
		}
	}

	start = time.Now()
	for _, p := range qs {
		net.VoronoiLocate(p, tree)
	}
	voroTime := time.Since(start)

	start = time.Now()
	mismatches := 0
	for _, p := range qs {
		naive := net.NaiveLocate(p)
		exact := loc.LocateExact(p)
		if naive.Kind != exact.Kind ||
			(naive.Kind == core.Reception && naive.Station != exact.Station) {
			mismatches++
		}
	}
	naiveTime := time.Since(start)

	fmt.Printf("queries: %d over %v\n", queries, qbox)
	fmt.Printf("  DS      : %v total, %v/op  (H+: %d, H-: %d, H?: %d)\n",
		dsTime.Round(time.Millisecond), dsTime/time.Duration(queries),
		counts[0], counts[1], counts[2])
	fmt.Printf("  Batch   : %v total, %v/op  (%d workers, answers identical)\n",
		batchTime.Round(time.Millisecond), batchTime/time.Duration(queries),
		par.Norm(workers, queries))
	fmt.Printf("  Voronoi : %v total, %v/op\n",
		voroTime.Round(time.Millisecond), voroTime/time.Duration(queries))
	fmt.Printf("  Naive   : %v total, %v/op (includes DS cross-check)\n",
		naiveTime.Round(time.Millisecond), naiveTime/time.Duration(queries))
	if mismatches > 0 {
		return fmt.Errorf("%d queries disagreed between LocateExact and the naive scan", mismatches)
	}
	fmt.Printf("  LocateExact agreed with the naive scan on all %d queries\n", queries)
	uncertainFrac := float64(counts[2]) / float64(queries)
	fmt.Printf("  uncertain fraction: %.4f (eps=%v bounds the ring area per zone)\n", uncertainFrac, eps)
	return nil
}
