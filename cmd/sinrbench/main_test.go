package main

import "testing"

// TestRunSingleExperiment smoke-tests the CLI path on the cheapest
// experiment (E1): selection by id, table printing, error plumbing.
func TestRunSingleExperiment(t *testing.T) {
	if err := run(1, "E1", 0); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunCaseInsensitiveSelector(t *testing.T) {
	if err := run(1, "e2", 1); err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestRunParallelExperiment smoke-tests the concurrency-layer
// experiment (E16) through the -parallel plumbing, serial workers.
func TestRunParallelExperiment(t *testing.T) {
	if err := run(1, "E16", 1); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunUnknownID(t *testing.T) {
	if err := run(1, "E99", 0); err == nil {
		t.Fatal("unknown experiment id must fail")
	}
}
