package main

import (
	"os"
	"testing"
)

// TestRunSingleExperiment smoke-tests the CLI path on the cheapest
// experiment (E1): selection by id, table printing, error plumbing.
func TestRunSingleExperiment(t *testing.T) {
	if err := run(1, "E1", 0, "all", ""); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunCaseInsensitiveSelector(t *testing.T) {
	if err := run(1, "e2", 1, "all", ""); err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestRunParallelExperiment smoke-tests the concurrency-layer
// experiment (E16) through the -parallel plumbing, serial workers.
func TestRunParallelExperiment(t *testing.T) {
	if err := run(1, "E16", 1, "all", ""); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunUnknownID(t *testing.T) {
	if err := run(1, "E99", 0, "all", ""); err == nil {
		t.Fatal("unknown experiment id must fail")
	}
}

// TestRunResolverComparison smoke-tests the E17 resolver axis: a
// single-backend run plus the JSON artifact emission.
func TestRunResolverComparison(t *testing.T) {
	out := t.TempDir() + "/BENCH_resolvers.json"
	if err := run(1, "E17", 1, "all", out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatalf("BENCH_resolvers.json not written: %v", err)
	}
	if err := run(1, "E17", 1, "voronoi", ""); err != nil {
		t.Fatalf("single-backend run: %v", err)
	}
	if err := run(1, "E17", 1, "psychic", ""); err == nil {
		t.Fatal("unknown backend must fail")
	}
}
