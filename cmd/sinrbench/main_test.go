package main

import (
	"os"
	"testing"

	"repro/internal/exp"
)

// runOnly runs one experiment through the CLI plumbing with small
// defaults for every axis knob.
func runOnly(only string, workers int, resolver, resolversOut string, hotSizes []int, hotQueries int, hotPathOut string) error {
	return run(1, only, workers, resolver, resolversOut, hotSizes, hotQueries, hotPathOut,
		[]int{8}, 4, 32, "", []int{16}, "")
}

// TestRunSingleExperiment smoke-tests the CLI path on the cheapest
// experiment (E1): selection by id, table printing, error plumbing.
func TestRunSingleExperiment(t *testing.T) {
	if err := runOnly("E1", 0, "all", "", nil, 64, ""); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunCaseInsensitiveSelector(t *testing.T) {
	if err := runOnly("e2", 1, "all", "", nil, 64, ""); err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestRunParallelExperiment smoke-tests the concurrency-layer
// experiment (E16) through the -parallel plumbing, serial workers.
func TestRunParallelExperiment(t *testing.T) {
	if err := runOnly("E16", 1, "all", "", nil, 64, ""); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunUnknownID(t *testing.T) {
	if err := runOnly("E99", 0, "all", "", nil, 64, ""); err == nil {
		t.Fatal("unknown experiment id must fail")
	}
}

// TestRunResolverComparison smoke-tests the E17 resolver axis: a
// single-backend run plus the JSON artifact emission.
func TestRunResolverComparison(t *testing.T) {
	out := t.TempDir() + "/BENCH_resolvers.json"
	if err := runOnly("E17", 1, "all", out, nil, 64, ""); err != nil {
		t.Fatalf("run: %v", err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatalf("BENCH_resolvers.json not written: %v", err)
	}
	if err := runOnly("E17", 1, "voronoi", "", nil, 64, ""); err != nil {
		t.Fatalf("single-backend run: %v", err)
	}
	if err := runOnly("E17", 1, "psychic", "", nil, 64, ""); err == nil {
		t.Fatal("unknown backend must fail")
	}
}

// TestRunHotPath smoke-tests the E18 hot-path comparison through the
// -hotpath-* plumbing: a tiny size axis plus the JSON artifact.
func TestRunHotPath(t *testing.T) {
	out := t.TempDir() + "/BENCH_hotpath.json"
	if err := runOnly("E18", 1, "all", "", []int{8, 12}, 256, out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatalf("BENCH_hotpath.json not written: %v", err)
	}
}

// TestRunDynamicChurn smoke-tests the E19 dynamic-churn comparison
// through the -churn-* plumbing: a tiny size axis plus the JSON
// artifact.
func TestRunDynamicChurn(t *testing.T) {
	out := t.TempDir() + "/BENCH_dynamic.json"
	if err := run(1, "E19", 1, "all", "", nil, 64, "", []int{8}, 6, 32, out, []int{16}, ""); err != nil {
		t.Fatalf("run: %v", err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatalf("BENCH_dynamic.json not written: %v", err)
	}
}

// TestRunSched smoke-tests the E20 scheduling comparison through the
// -sched-* plumbing: a tiny link-count axis plus the JSON artifact.
func TestRunSched(t *testing.T) {
	out := t.TempDir() + "/BENCH_sched.json"
	if err := run(1, "E20", 1, "all", "", nil, 64, "", []int{8}, 4, 32, "", []int{32, 64}, out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatalf("BENCH_sched.json not written: %v", err)
	}
}

// TestParseSizes covers the -hotpath-sizes / -churn-sizes flag parser.
func TestParseSizes(t *testing.T) {
	got, err := parseSizes("-hotpath-sizes", " 16, 64 ", exp.DefaultHotPathSizes)
	if err != nil || len(got) != 2 || got[0] != 16 || got[1] != 64 {
		t.Fatalf("parseSizes = %v, %v", got, err)
	}
	if _, err := parseSizes("-hotpath-sizes", "16,zap", nil); err == nil {
		t.Fatal("garbage size accepted")
	}
	if _, err := parseSizes("-churn-sizes", "1", nil); err == nil {
		t.Fatal("size < 2 accepted")
	}
	if got, err := parseSizes("-churn-sizes", "", exp.DefaultDynamicSizes); err != nil || len(got) == 0 {
		t.Fatalf("empty sizes should default, got %v, %v", got, err)
	}
}
