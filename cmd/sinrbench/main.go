// Command sinrbench runs the full experiment suite of the
// reproduction — every figure and theorem of the paper — and prints
// one paper-vs-measured table per experiment (the tables recorded in
// EXPERIMENTS.md).
//
// Usage:
//
//	sinrbench [-trials N] [-only E7] [-parallel W]
//	          [-resolver exact|locator|voronoi|udg|all]
//	          [-resolvers-out BENCH_resolvers.json]
//	          [-hotpath-sizes 16,64,256,1024] [-hotpath-queries 4096]
//	          [-hotpath-out BENCH_hotpath.json]
//	          [-churn-sizes 16,64,256,1024] [-churn-events 64]
//	          [-churn-queries 512] [-churn-out BENCH_dynamic.json]
//	          [-sched-sizes 1000,10000,100000] [-sched-out BENCH_sched.json]
//
// -trials scales the randomized validations (default 5); -only runs a
// single experiment by id; -parallel sets the worker count for the
// concurrency-layer experiments (0, the default, means one worker per
// CPU; 1 forces the serial code paths). -resolver restricts the E17
// cross-backend comparison to one query backend (default all four)
// and -resolvers-out is where E17 writes its BENCH_resolvers.json
// artifact (qps/latency/disagreement per workload x backend; empty
// disables the file). The -hotpath-* flags steer E18, the sharded
// spatial-index hot-path comparison: the network-size axis, the
// per-workload query count, and the path of its BENCH_hotpath.json
// artifact (no file unless a path is given, so a plain suite run
// never clobbers the committed perf trajectory). The committed
// BENCH_hotpath.json is regenerated explicitly with
//
//	sinrbench -only E18 -hotpath-sizes 16,64,256,1024 \
//	          -hotpath-out BENCH_hotpath.json
//
// — the n=1024 leg builds a large Theorem 3 locator; expect minutes
// on one core.
//
// The -churn-* flags steer E19, the dynamic-churn comparison
// (incremental epoch Apply vs from-scratch rebuild, with exact
// correctness probes at checkpoints): the network-size axis, the
// churn-trace length and probe count per cell, and the path of its
// BENCH_dynamic.json artifact. The committed BENCH_dynamic.json is
// regenerated explicitly with
//
//	sinrbench -only E19 -churn-sizes 16,64,256,1024 \
//	          -churn-out BENCH_dynamic.json
//
// The -sched-* flags steer E20, the scheduling-at-scale comparison
// (the three schedulers over the incremental slot engines, SINR vs
// protocol model, with an incremental-vs-scan feasibility race): the
// link-count axis and the path of its BENCH_sched.json artifact. The
// committed BENCH_sched.json is regenerated explicitly with
//
//	sinrbench -only E20 -sched-sizes 1000,10000,100000 \
//	          -sched-out BENCH_sched.json
//
// — the n=100000 legs build and validate 10^5-link schedules; expect
// minutes on one core.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/exp"
)

func main() {
	trials := flag.Int("trials", 5, "trials per randomized validation cell")
	only := flag.String("only", "", "run only the experiment with this id (e.g. E7)")
	parallel := flag.Int("parallel", 0, "workers for concurrency-layer experiments (0 = NumCPU, 1 = serial)")
	resolver := flag.String("resolver", "all", "restrict the E17 cross-backend comparison to one backend (exact, locator, voronoi, udg or all)")
	resolversOut := flag.String("resolvers-out", "BENCH_resolvers.json", "path E17 writes its JSON artifact to (empty = no file)")
	hotpathSizes := flag.String("hotpath-sizes", "16,64,256", "comma-separated network sizes of the E18 hot-path comparison (the committed artifact uses 16,64,256,1024; the n=1024 build takes minutes)")
	hotpathQueries := flag.Int("hotpath-queries", exp.DefaultHotPathQueries, "queries per workload in E18")
	hotpathOut := flag.String("hotpath-out", "", "path E18 writes its JSON artifact to (empty = no file; the committed trajectory is regenerated explicitly, see CONTRIBUTING.md)")
	churnSizes := flag.String("churn-sizes", "16,64,256", "comma-separated network sizes of the E19 dynamic-churn comparison (the committed artifact uses 16,64,256,1024)")
	churnEvents := flag.Int("churn-events", exp.DefaultDynamicEvents, "churn-trace length per (size, process) cell in E19")
	churnQueries := flag.Int("churn-queries", exp.DefaultDynamicQueries, "correctness probes per checkpoint in E19")
	churnOut := flag.String("churn-out", "", "path E19 writes its JSON artifact to (empty = no file; the committed trajectory is regenerated explicitly, see CONTRIBUTING.md)")
	schedSizes := flag.String("sched-sizes", "256,1024", "comma-separated link counts of the E20 scheduling comparison (the committed artifact uses 1000,10000,100000; the n=100000 legs take minutes)")
	schedOut := flag.String("sched-out", "", "path E20 writes its JSON artifact to (empty = no file; the committed trajectory is regenerated explicitly, see CONTRIBUTING.md)")
	flag.Parse()

	sizes, err := parseSizes("-hotpath-sizes", *hotpathSizes, exp.DefaultHotPathSizes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sinrbench:", err)
		os.Exit(1)
	}
	dynSizes, err := parseSizes("-churn-sizes", *churnSizes, exp.DefaultDynamicSizes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sinrbench:", err)
		os.Exit(1)
	}
	schSizes, err := parseSizes("-sched-sizes", *schedSizes, exp.DefaultSchedSizes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sinrbench:", err)
		os.Exit(1)
	}
	if err := run(*trials, *only, *parallel, *resolver, *resolversOut, sizes, *hotpathQueries, *hotpathOut,
		dynSizes, *churnEvents, *churnQueries, *churnOut, schSizes, *schedOut); err != nil {
		fmt.Fprintln(os.Stderr, "sinrbench:", err)
		os.Exit(1)
	}
}

// parseSizes parses a network-size-axis comma list (the -hotpath-sizes
// and -churn-sizes flags).
func parseSizes(flagName, s string, def []int) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return def, nil
	}
	var sizes []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 2 {
			return nil, fmt.Errorf("bad %s entry %q (want integers >= 2)", flagName, f)
		}
		sizes = append(sizes, n)
	}
	return sizes, nil
}

func run(trials int, only string, workers int, resolver, resolversOut string, hotSizes []int, hotQueries int, hotPathOut string,
	dynSizes []int, dynEvents, dynQueries int, dynOut string, schedSizes []int, schedOut string) error {
	failed, ran := 0, 0
	for _, e := range exp.RegistrySched(trials, workers, resolver, resolversOut, hotSizes, hotQueries, hotPathOut,
		dynSizes, dynEvents, dynQueries, dynOut, schedSizes, schedOut) {
		if only != "" && !strings.EqualFold(e.ID, only) {
			continue
		}
		t, err := e.Run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Println(t)
		ran++
		if !t.Pass {
			failed++
		}
	}
	if ran == 0 {
		return fmt.Errorf("no experiment matches id %q", only)
	}
	if failed > 0 {
		return fmt.Errorf("%d experiment(s) failed to reproduce the paper's shape", failed)
	}
	fmt.Println("all selected experiments reproduce the paper's qualitative results")
	return nil
}
