// Command sinrbench runs the full experiment suite of the
// reproduction — every figure and theorem of the paper — and prints
// one paper-vs-measured table per experiment (the tables recorded in
// EXPERIMENTS.md).
//
// Usage:
//
//	sinrbench [-trials N] [-only E7]
//
// -trials scales the randomized validations (default 5); -only runs a
// single experiment by id.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/exp"
)

func main() {
	trials := flag.Int("trials", 5, "trials per randomized validation cell")
	only := flag.String("only", "", "run only the experiment with this id (e.g. E7)")
	flag.Parse()

	if err := run(*trials, *only); err != nil {
		fmt.Fprintln(os.Stderr, "sinrbench:", err)
		os.Exit(1)
	}
}

func run(trials int, only string) error {
	failed, ran := 0, 0
	for _, e := range exp.Registry(trials) {
		if only != "" && !strings.EqualFold(e.ID, only) {
			continue
		}
		t, err := e.Run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Println(t)
		ran++
		if !t.Pass {
			failed++
		}
	}
	if ran == 0 {
		return fmt.Errorf("no experiment matches id %q", only)
	}
	if failed > 0 {
		return fmt.Errorf("%d experiment(s) failed to reproduce the paper's shape", failed)
	}
	fmt.Println("all selected experiments reproduce the paper's qualitative results")
	return nil
}
