// Command sinrbench runs the full experiment suite of the
// reproduction — every figure and theorem of the paper — and prints
// one paper-vs-measured table per experiment (the tables recorded in
// EXPERIMENTS.md).
//
// Usage:
//
//	sinrbench [-trials N] [-only E7] [-parallel W]
//	          [-resolver exact|locator|voronoi|udg|all]
//	          [-resolvers-out BENCH_resolvers.json]
//
// -trials scales the randomized validations (default 5); -only runs a
// single experiment by id; -parallel sets the worker count for the
// concurrency-layer experiments (0, the default, means one worker per
// CPU; 1 forces the serial code paths). -resolver restricts the E17
// cross-backend comparison to one query backend (default all four)
// and -resolvers-out is where E17 writes its BENCH_resolvers.json
// artifact (qps/latency/disagreement per workload x backend; empty
// disables the file).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/exp"
)

func main() {
	trials := flag.Int("trials", 5, "trials per randomized validation cell")
	only := flag.String("only", "", "run only the experiment with this id (e.g. E7)")
	parallel := flag.Int("parallel", 0, "workers for concurrency-layer experiments (0 = NumCPU, 1 = serial)")
	resolver := flag.String("resolver", "all", "restrict the E17 cross-backend comparison to one backend (exact, locator, voronoi, udg or all)")
	resolversOut := flag.String("resolvers-out", "BENCH_resolvers.json", "path E17 writes its JSON artifact to (empty = no file)")
	flag.Parse()

	if err := run(*trials, *only, *parallel, *resolver, *resolversOut); err != nil {
		fmt.Fprintln(os.Stderr, "sinrbench:", err)
		os.Exit(1)
	}
}

func run(trials int, only string, workers int, resolver, resolversOut string) error {
	failed, ran := 0, 0
	for _, e := range exp.RegistryResolvers(trials, workers, resolver, resolversOut) {
		if only != "" && !strings.EqualFold(e.ID, only) {
			continue
		}
		t, err := e.Run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Println(t)
		ran++
		if !t.Pass {
			failed++
		}
	}
	if ran == 0 {
		return fmt.Errorf("no experiment matches id %q", only)
	}
	if failed > 0 {
		return fmt.Errorf("%d experiment(s) failed to reproduce the paper's shape", failed)
	}
	fmt.Println("all selected experiments reproduce the paper's qualitative results")
	return nil
}
