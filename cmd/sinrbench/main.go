// Command sinrbench runs the full experiment suite of the
// reproduction — every figure and theorem of the paper — and prints
// one paper-vs-measured table per experiment (the tables recorded in
// EXPERIMENTS.md).
//
// Usage:
//
//	sinrbench [-trials N] [-only E7] [-parallel W]
//	          [-resolver exact|locator|voronoi|udg|all]
//	          [-resolvers-out BENCH_resolvers.json]
//	          [-hotpath-sizes 16,64,256,1024] [-hotpath-queries 4096]
//	          [-hotpath-out BENCH_hotpath.json]
//
// -trials scales the randomized validations (default 5); -only runs a
// single experiment by id; -parallel sets the worker count for the
// concurrency-layer experiments (0, the default, means one worker per
// CPU; 1 forces the serial code paths). -resolver restricts the E17
// cross-backend comparison to one query backend (default all four)
// and -resolvers-out is where E17 writes its BENCH_resolvers.json
// artifact (qps/latency/disagreement per workload x backend; empty
// disables the file). The -hotpath-* flags steer E18, the sharded
// spatial-index hot-path comparison: the network-size axis, the
// per-workload query count, and the path of its BENCH_hotpath.json
// artifact (no file unless a path is given, so a plain suite run
// never clobbers the committed perf trajectory). The committed
// BENCH_hotpath.json is regenerated explicitly with
//
//	sinrbench -only E18 -hotpath-sizes 16,64,256,1024 \
//	          -hotpath-out BENCH_hotpath.json
//
// — the n=1024 leg builds a large Theorem 3 locator; expect minutes
// on one core.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/exp"
)

func main() {
	trials := flag.Int("trials", 5, "trials per randomized validation cell")
	only := flag.String("only", "", "run only the experiment with this id (e.g. E7)")
	parallel := flag.Int("parallel", 0, "workers for concurrency-layer experiments (0 = NumCPU, 1 = serial)")
	resolver := flag.String("resolver", "all", "restrict the E17 cross-backend comparison to one backend (exact, locator, voronoi, udg or all)")
	resolversOut := flag.String("resolvers-out", "BENCH_resolvers.json", "path E17 writes its JSON artifact to (empty = no file)")
	hotpathSizes := flag.String("hotpath-sizes", "16,64,256", "comma-separated network sizes of the E18 hot-path comparison (the committed artifact uses 16,64,256,1024; the n=1024 build takes minutes)")
	hotpathQueries := flag.Int("hotpath-queries", exp.DefaultHotPathQueries, "queries per workload in E18")
	hotpathOut := flag.String("hotpath-out", "", "path E18 writes its JSON artifact to (empty = no file; the committed trajectory is regenerated explicitly, see CONTRIBUTING.md)")
	flag.Parse()

	sizes, err := parseSizes(*hotpathSizes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sinrbench:", err)
		os.Exit(1)
	}
	if err := run(*trials, *only, *parallel, *resolver, *resolversOut, sizes, *hotpathQueries, *hotpathOut); err != nil {
		fmt.Fprintln(os.Stderr, "sinrbench:", err)
		os.Exit(1)
	}
}

// parseSizes parses the -hotpath-sizes comma list.
func parseSizes(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return exp.DefaultHotPathSizes, nil
	}
	var sizes []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 2 {
			return nil, fmt.Errorf("bad -hotpath-sizes entry %q (want integers >= 2)", f)
		}
		sizes = append(sizes, n)
	}
	return sizes, nil
}

func run(trials int, only string, workers int, resolver, resolversOut string, hotSizes []int, hotQueries int, hotPathOut string) error {
	failed, ran := 0, 0
	for _, e := range exp.RegistryHotPath(trials, workers, resolver, resolversOut, hotSizes, hotQueries, hotPathOut) {
		if only != "" && !strings.EqualFold(e.ID, only) {
			continue
		}
		t, err := e.Run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Println(t)
		ran++
		if !t.Pass {
			failed++
		}
	}
	if ran == 0 {
		return fmt.Errorf("no experiment matches id %q", only)
	}
	if failed > 0 {
		return fmt.Errorf("%d experiment(s) failed to reproduce the paper's shape", failed)
	}
	fmt.Println("all selected experiments reproduce the paper's qualitative results")
	return nil
}
