package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serve"
)

// testCfg returns a small, fast load-run config against addr.
func testCfg(addr, name string) config {
	return config{
		addr: addr, name: name,
		n: 8, queries: 2048, batch: 128, concurrency: 4,
		workload: "uniform", resolver: "locator", eps: 0.1,
		noise: 0.01, beta: 3, seed: 1,
		churnKind: "mix",
	}
}

// corruptingServer wraps a real serve.Server but tampers with one
// /v1/locate answer per batch, simulating a serving-side correctness
// bug that only -verify can catch (the HTTP exchange itself succeeds).
func corruptingServer(srv *serve.Server) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != "/v1/locate" {
			srv.ServeHTTP(w, r)
			return
		}
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, r)
		var resp serve.LocateResponse
		if rec.Code == http.StatusOK && json.Unmarshal(rec.Body.Bytes(), &resp) == nil && len(resp.Results) > 0 {
			resp.Results[0].Station = 7777 // no such station
			body, _ := json.Marshal(resp)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusOK)
			w.Write(body)
			return
		}
		for k, vs := range rec.Header() {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(rec.Code)
		w.Write(rec.Body.Bytes())
	})
}

// TestVerifyMismatchFailsRun is the exit-code regression test: when
// served answers differ from the local backend, run must return an
// error (which main turns into a non-zero exit), not report and
// succeed.
func TestVerifyMismatchFailsRun(t *testing.T) {
	ts := httptest.NewServer(corruptingServer(serve.NewServer(serve.Options{Workers: 2})))
	defer ts.Close()

	cfg := testCfg(ts.URL, "tampered")
	cfg.verify = true
	err := run(cfg)
	if err == nil {
		t.Fatal("run succeeded against a server returning corrupted answers")
	}
	if !strings.Contains(err.Error(), "differ") {
		t.Fatalf("error %q does not report the mismatch", err)
	}

	// Without -verify the corruption goes unnoticed — that asymmetry is
	// exactly why the flag must drive the exit code.
	cfg.verify = false
	if err := run(cfg); err != nil {
		t.Fatalf("unverified run failed: %v", err)
	}
}

// TestCleanRunVerifies: an untampered server passes verification for a
// static run.
func TestCleanRunVerifies(t *testing.T) {
	ts := httptest.NewServer(serve.NewServer(serve.Options{Workers: 2}))
	defer ts.Close()

	cfg := testCfg(ts.URL, "clean")
	cfg.verify = true
	if err := run(cfg); err != nil {
		t.Fatalf("verified run failed: %v", err)
	}
}

// TestChurnRunVerifiesAcrossGenerations drives the full churn loop end
// to end: PATCH deltas land under concurrent batch traffic, the local
// mirror tracks every server generation, and epoch-aware verification
// passes — for the dynamic backend (mixed churn incl. power walks,
// which make the network non-uniform) and for the locator backend
// (arrival/departure churn, which keeps it uniform).
func TestChurnRunVerifiesAcrossGenerations(t *testing.T) {
	cases := []struct {
		resolver, churnKind string
	}{
		{"dynamic", "mix"},
		{"exact", "mix"},
		{"locator", "arrive"},
		{"locator", "depart"},
	}
	for _, tc := range cases {
		t.Run(tc.resolver+"/"+tc.churnKind, func(t *testing.T) {
			ts := httptest.NewServer(serve.NewServer(serve.Options{Workers: 2}))
			defer ts.Close()

			cfg := testCfg(ts.URL, "churn-"+tc.resolver+tc.churnKind)
			cfg.resolver = tc.resolver
			cfg.churnKind = tc.churnKind
			cfg.churnEvery = 2
			cfg.verify = true
			if err := run(cfg); err != nil {
				t.Fatalf("churn run failed: %v", err)
			}
		})
	}
}

// TestChurnRunOnPreexistingName pins the version-offset case: against
// a long-running server that already knows the network name, the
// registration returns a version > 1 while the local mirror restarts
// at epoch 1. Churn verification must key generations by the server's
// version (asserting lockstep epochs, not version == epoch), so a
// second run against the same name still verifies cleanly.
func TestChurnRunOnPreexistingName(t *testing.T) {
	ts := httptest.NewServer(serve.NewServer(serve.Options{Workers: 2}))
	defer ts.Close()

	cfg := testCfg(ts.URL, "reused")
	cfg.resolver = "dynamic"
	cfg.churnEvery = 2
	cfg.verify = true
	for run_ := 1; run_ <= 2; run_++ {
		if err := run(cfg); err != nil {
			t.Fatalf("churn run %d on the same name failed: %v", run_, err)
		}
	}
}

// TestChurnSwapMutuallyExclusive: the two mid-run mutation modes
// cannot be combined (a swap would invalidate the delta history).
func TestChurnSwapMutuallyExclusive(t *testing.T) {
	cfg := testCfg("http://127.0.0.1:1", "x")
	cfg.swapEvery = 2
	cfg.churnEvery = 2
	if err := run(cfg); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("combined swap+churn run: %v", err)
	}
}

// sheddingServer wraps a real serve.Server but answers every odd
// /v1/locate request with a bare 429, simulating an overloaded server
// from the client's point of view.
func sheddingServer(srv *serve.Server) http.Handler {
	var n atomic.Int64
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/v1/locate" && n.Add(1)%2 == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"overloaded"}`, http.StatusTooManyRequests)
			return
		}
		srv.ServeHTTP(w, r)
	})
}

// TestShedResponsesFailRun is the non-2xx regression test: a server
// shedding 429s must fail the run with a hard error naming the class —
// and with -verify on, the shed batches are excluded from verification
// instead of being checked as zero-filled answers (which would report
// thousands of fabricated mismatches, drowning the real signal).
func TestShedResponsesFailRun(t *testing.T) {
	ts := httptest.NewServer(sheddingServer(serve.NewServer(serve.Options{Workers: 2})))
	defer ts.Close()

	cfg := testCfg(ts.URL, "shed")
	cfg.verify = true
	err := run(cfg)
	if err == nil {
		t.Fatal("run succeeded against a shedding server")
	}
	if !strings.Contains(err.Error(), "failed hard") || !strings.Contains(err.Error(), "429=8") {
		t.Fatalf("error %q does not report the 429 class (want 8 of 16 batches shed)", err)
	}
	if strings.Contains(err.Error(), "differ") {
		t.Fatalf("error %q reports mismatches for batches that never answered", err)
	}
}

// TestScrapeMetricsRun: against a real server the before/after scrape
// and the mid-run sampler ride along without disturbing a verified run.
func TestScrapeMetricsRun(t *testing.T) {
	ts := httptest.NewServer(serve.NewServer(serve.Options{Workers: 2, MaxConcurrent: 2}))
	defer ts.Close()

	cfg := testCfg(ts.URL, "scraped")
	cfg.verify = true
	cfg.scrapeMetrics = true
	cfg.metricsEvery = time.Millisecond
	if err := run(cfg); err != nil {
		t.Fatalf("scraping run failed: %v", err)
	}
}

// TestScrapeMetricsUnavailable: a server without an exposition (the
// first scrape 404s) downgrades the run to client-only reporting
// instead of failing it.
func TestScrapeMetricsUnavailable(t *testing.T) {
	inner := serve.NewServer(serve.Options{Workers: 2})
	mux := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/metrics" {
			http.NotFound(w, r)
			return
		}
		inner.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	cfg := testCfg(ts.URL, "nometrics")
	cfg.scrapeMetrics = true
	if err := run(cfg); err != nil {
		t.Fatalf("run failed without a metrics endpoint: %v", err)
	}
}
