// Command sinrload replays configurable query workloads against a
// running sinrserve instance and reports throughput and latency
// percentiles. It generates a network locally, registers it with the
// server, fires /v1/locate batches from concurrent clients, and can
// verify every served answer byte-identically against a locally built
// resolver of the same kind, hot-swap the network mid-run to prove
// replacement drops no traffic, and churn the station set mid-run
// through the PATCH delta API to prove incremental mutation drops no
// traffic either.
//
// Usage:
//
//	sinrload -addr http://127.0.0.1:8080 [-network load] [-n 64]
//	         [-queries 200000] [-batch 512] [-concurrency 8]
//	         [-workload uniform|hotspot|mobility]
//	         [-resolver exact|locator|voronoi|udg|dynamic] [-eps 0.05]
//	         [-radius 0] [-noise 0.01] [-beta 3] [-seed 1]
//	         [-swap-every 0] [-churn-every 0]
//	         [-churn-kind arrive|depart|power|mix] [-verify]
//	         [-sched greedy|lenclass|repair] [-spec-dir DIR]
//
// -resolver selects the serving backend per request, turning every
// workload into a cross-backend comparison scenario; -radius sets the
// UDG connectivity radius (0 derives it from the network, identically
// on client and server). -swap-every K re-registers the network
// (bumping its version and forcing a resolver rebuild + atomic hot
// swap) after every K batches; station locations are unchanged, so
// served answers must stay identical while the swap happens under
// load.
//
// -churn-every K instead PATCHes a station delta (one -churn-kind
// event: an arrival, a departure, a power-walk step, or a mix) after
// every K batches, mirroring each delta in a local dynamic engine so
// the client knows every server generation's exact station set.
// Served batches carry the version that answered them, so -verify
// checks each answer against the right generation even when batches
// race deltas. Note that power churn makes the network non-uniform,
// which the locator backend rejects — pair -churn-kind power/mix with
// the exact, voronoi or dynamic backend.
//
// -sched additionally exercises the schedule endpoint: one POST
// /v1/networks/{name}/schedule with the named scheduler right after
// registration and one after the run. Each answer is validated
// locally — the client re-derives the generation's link set with
// sched.DeriveLinks from its mirrored station set and re-checks every
// slot through its own feasibility engine — and when the run PATCHed
// churn deltas the post-run answer must have been repaired from the
// pre-churn schedule (path "repaired"), proving the cache invalidated
// and healed instead of recomputing. Any invalid slot or wrong path
// is a non-zero exit.
//
// -spec-dir drives a declaratively-operated server (sinrserve
// -spec-dir) instead of POSTing: the generated network lands as a
// canonical spec file in the directory (written atomically, tmp +
// rename), and the client polls GET /v1/networks/{name} until the
// reconcile controller converges the registry to byte-identical spec
// readback before firing traffic. Mutually exclusive with -swap-every
// and -churn-every, which mutate the registry imperatively and would
// race the controller's convergence.
//
// -verify recomputes all answers locally through the same backend
// kind (the ground-truth exact backend for "dynamic", whose served
// answers are exact by construction) and exits non-zero on any
// mismatch, so the command doubles as an end-to-end correctness check
// in CI (the serve-smoke matrix runs it once per backend, plus a
// churn leg).
//
// Any non-2xx locate response is a hard failure: the run reports how
// many batches failed by class (429 shed, 5xx, other) and exits
// non-zero. Failed batches are excluded from verification — they have
// no answers to check — so a shedding server cannot silently pass a
// -verify run.
//
// -scrape-metrics (default true) snapshots the server's /metrics
// before and after the run and reports the server-side view next to
// the client percentiles: request counts by status class, shed count,
// resolver-cache hit/miss deltas, and latency percentiles estimated
// from the histogram delta — the numbers an operator's dashboard
// would show for the same window. -metrics-every additionally samples
// /metrics during the run to report peak in-flight and queued gauges.
// If the first scrape fails (older server, exposition disabled) the
// client warns once and carries on without it.
//
// -trace (default true) stamps every locate batch with a W3C
// traceparent header (verifying the server echoes the same trace ID
// back) and, after the run, fetches the server's flight recorder at
// /debug/requests to print the per-stage timeline — admission queue
// wait, resolver cache hit/build, batch resolve, encode — of the
// slowest batch. Like metrics scraping, it degrades with a warning
// against servers without the endpoint.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/resolve"
	"repro/internal/sched"
	"repro/internal/serve"
	"repro/internal/trace"
	"repro/internal/workload"
)

// config bundles the flag surface of one load run.
type config struct {
	addr, name            string
	n                     int
	queries, batch        int
	concurrency           int
	workload, resolver    string
	eps, radius           float64
	noise, beta           float64
	seed                  int64
	swapEvery, churnEvery int
	churnKind             string
	sched                 string
	specDir               string
	verify                bool
	scrapeMetrics         bool
	traceRequests         bool
	metricsEvery          time.Duration
}

// statusError is a non-2xx HTTP response surfaced as an error, keeping
// the status code so the caller can tally shed (429) and server-error
// (5xx) batches separately from transport failures.
type statusError struct {
	code int
	msg  string
}

func (e *statusError) Error() string { return e.msg }

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "http://127.0.0.1:8080", "base URL of the sinrserve instance")
	flag.StringVar(&cfg.name, "network", "load", "network name to register and query")
	flag.IntVar(&cfg.n, "n", 64, "number of stations")
	flag.IntVar(&cfg.queries, "queries", 200000, "total locate queries to send")
	flag.IntVar(&cfg.batch, "batch", 512, "points per /v1/locate request")
	flag.IntVar(&cfg.concurrency, "concurrency", 8, "concurrent client goroutines")
	flag.StringVar(&cfg.workload, "workload", "uniform", "query workload: uniform, hotspot or mobility")
	flag.StringVar(&cfg.resolver, "resolver", "locator", "serving backend: exact, locator, voronoi, udg or dynamic")
	flag.Float64Var(&cfg.eps, "eps", serve.DefaultEps, "locator performance parameter (locator backend only)")
	flag.Float64Var(&cfg.radius, "radius", 0, "UDG connectivity radius (udg backend only; 0 = derived from the network)")
	flag.Float64Var(&cfg.noise, "noise", 0.01, "background noise")
	flag.Float64Var(&cfg.beta, "beta", 3, "reception threshold")
	flag.Int64Var(&cfg.seed, "seed", 1, "workload seed")
	flag.IntVar(&cfg.swapEvery, "swap-every", 0, "hot-swap the network after every K batches (0 = never)")
	flag.IntVar(&cfg.churnEvery, "churn-every", 0, "PATCH one churn delta after every K batches (0 = never)")
	flag.StringVar(&cfg.churnKind, "churn-kind", "mix", "churn process: arrive, depart, power or mix")
	flag.StringVar(&cfg.sched, "sched", "", "also exercise the schedule endpoint with this scheduler (greedy, lenclass or repair; empty = off)")
	flag.StringVar(&cfg.specDir, "spec-dir", "", "register by writing a declarative spec here (a sinrserve -spec-dir) and wait for reconcile convergence instead of POSTing")
	flag.BoolVar(&cfg.verify, "verify", false, "verify every served answer against a locally built backend of the same kind")
	flag.BoolVar(&cfg.scrapeMetrics, "scrape-metrics", true, "scrape /metrics before and after the run and report server-side deltas")
	flag.BoolVar(&cfg.traceRequests, "trace", true, "propagate W3C traceparent on locate batches and print the server-side timeline of the slowest one from /debug/requests")
	flag.DurationVar(&cfg.metricsEvery, "metrics-every", 0, "also sample /metrics at this interval during the run for peak gauges (0 = off)")
	flag.Parse()

	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "sinrload:", err)
		os.Exit(1)
	}
}

// churnWeights maps -churn-kind to (arrive, depart, power) weights.
func churnWeights(kind string) (float64, float64, float64, error) {
	switch kind {
	case "arrive":
		return 1, 0, 0, nil
	case "depart":
		return 0, 1, 0, nil
	case "power":
		return 0, 0, 1, nil
	case "mix":
		return 1, 1, 1, nil
	default:
		return 0, 0, 0, fmt.Errorf("unknown churn kind %q (want arrive, depart, power or mix)", kind)
	}
}

// deltaFor converts one churn event to the wire delta document.
func deltaFor(ev workload.ChurnEvent) serve.NetworkDeltaRequest {
	switch ev.Kind {
	case workload.ChurnArrive:
		return serve.NetworkDeltaRequest{Add: []serve.DeltaStationJSON{{X: ev.Pos.X, Y: ev.Pos.Y, Power: ev.Power}}}
	case workload.ChurnDepart:
		return serve.NetworkDeltaRequest{Remove: []int{ev.Station}}
	default:
		return serve.NetworkDeltaRequest{SetPower: []serve.PowerUpdateJSON{{Station: ev.Station, Power: ev.Power}}}
	}
}

// localDelta converts the same event for the local mirror engine.
func localDelta(ev workload.ChurnEvent) dynamic.Delta {
	switch ev.Kind {
	case workload.ChurnArrive:
		return dynamic.Delta{Add: []dynamic.Station{{Pos: ev.Pos, Power: ev.Power}}}
	case workload.ChurnDepart:
		return dynamic.Delta{Remove: []int{ev.Station}}
	default:
		return dynamic.Delta{SetPower: []dynamic.PowerUpdate{{Station: ev.Station, Power: ev.Power}}}
	}
}

func run(cfg config) error {
	if cfg.n < 1 || cfg.queries < 1 || cfg.batch < 1 || cfg.concurrency < 1 {
		return fmt.Errorf("-n, -queries, -batch and -concurrency must all be >= 1 (got %d, %d, %d, %d)",
			cfg.n, cfg.queries, cfg.batch, cfg.concurrency)
	}
	if cfg.swapEvery > 0 && cfg.churnEvery > 0 {
		return fmt.Errorf("-swap-every and -churn-every are mutually exclusive (a swap resets the delta history)")
	}
	if cfg.specDir != "" && (cfg.swapEvery > 0 || cfg.churnEvery > 0) {
		return fmt.Errorf("-spec-dir is mutually exclusive with -swap-every and -churn-every (imperative mutations race the reconcile controller)")
	}
	gen := workload.NewGenerator(cfg.seed)
	box := geom.NewBox(geom.Pt(-5, -5), geom.Pt(5, 5))
	stations, err := gen.UniformSeparated(cfg.n, box, 0.05)
	if err != nil {
		return err
	}
	net, err := core.NewUniform(stations, cfg.noise, cfg.beta)
	if err != nil {
		return err
	}
	kind, err := resolve.ParseKind(cfg.resolver)
	if err != nil {
		return err
	}
	pArr, pDep, pPow, err := churnWeights(cfg.churnKind)
	if err != nil {
		return err
	}
	if cfg.sched != "" {
		if _, err := sched.ParseKind(cfg.sched); err != nil {
			return err
		}
	}

	var points []geom.Point
	switch cfg.workload {
	case "uniform":
		points = gen.QueryPoints(cfg.queries, box)
	case "hotspot":
		points = gen.HotspotPoints(cfg.queries, box, 4, 0.8, 0.3)
	case "mobility":
		walkers := cfg.concurrency * 64
		steps := (cfg.queries + walkers - 1) / walkers
		points = gen.MobilityTrace(walkers, steps, box, 0.05)
		points = points[:cfg.queries]
	default:
		return fmt.Errorf("unknown workload %q", cfg.workload)
	}

	// Local mirror of the server's generations: version -> the epoch
	// snapshot holding that generation's exact station set. Version 1
	// is the registration; each PATCH (or swap) adds one.
	mirror, err := dynamic.New(net)
	if err != nil {
		return err
	}
	numBatches := (len(points) + cfg.batch - 1) / cfg.batch
	var churnTrace []workload.ChurnEvent
	if cfg.churnEvery > 0 {
		churnTrace = gen.ChurnTrace(cfg.n, numBatches/cfg.churnEvery+1, box, pArr, pDep, pPow, 0.25)
	}

	client := &http.Client{Timeout: 5 * time.Minute}
	reg := registration(cfg.name, stations, cfg.noise, cfg.beta)
	var regResp serve.NetworkResponse
	if cfg.specDir != "" {
		regResp, err = registerViaSpec(client, cfg.addr, cfg.specDir, reg)
	} else {
		regResp, err = register(client, cfg.addr, reg)
	}
	if err != nil {
		return fmt.Errorf("registering network: %w", err)
	}
	epochs := map[uint64]*dynamic.Snapshot{regResp.Version: mirror.Snapshot()}
	fmt.Printf("registered %q: %d stations, workload=%s, resolver=%s, %d queries in batches of %d over %d clients\n",
		cfg.name, cfg.n, cfg.workload, kind, len(points), cfg.batch, cfg.concurrency)

	// Pre-traffic schedule: computed fresh for this generation and
	// re-validated against a locally rebuilt feasibility engine. The
	// post-run request (below) must then repair — not recompute — it
	// if the run churned the station set.
	if cfg.sched != "" {
		out, err := schedule(client, cfg.addr, cfg.name, serve.ScheduleRequest{Scheduler: cfg.sched})
		if err != nil {
			return fmt.Errorf("initial schedule: %w", err)
		}
		if err := verifySchedule(out, epochs); err != nil {
			return fmt.Errorf("initial schedule: %w", err)
		}
		fmt.Printf("schedule[%s]: %d links in %d slots at version %d (path=%s), valid against the local engine\n",
			out.Scheduler, out.NumLinks, out.NumSlots, out.Version, out.Path)
	}

	// Server-side view: snapshot /metrics before traffic so the report
	// can show this run's deltas; a scrape failure (exposition absent)
	// downgrades to client-only reporting with one warning.
	var before []metrics.Sample
	if cfg.scrapeMetrics {
		if before, err = scrape(client, cfg.addr); err != nil {
			fmt.Fprintf(os.Stderr, "sinrload: disabling metrics scraping: %v\n", err)
			cfg.scrapeMetrics = false
		}
	}
	var peak peakSampler
	if cfg.scrapeMetrics && cfg.metricsEvery > 0 {
		peak.start(client, cfg.addr, cfg.metricsEvery)
	}

	served := make([]int, len(points))      // station index or -1 per query
	servedVer := make([]uint64, numBatches) // generation that answered each batch
	latencies := make([]time.Duration, numBatches)

	// Client-side trace identity: one traceparent per batch, so the
	// slowest batch seen here can be matched to its server-side
	// per-stage timeline in the flight recorder afterwards.
	var tids *trace.IDSource
	var batchTrace []string
	if cfg.traceRequests {
		tids = trace.NewIDSource()
		batchTrace = make([]string, numBatches)
	}
	var next atomic.Int64
	var failed atomic.Int64
	var fail429, fail5xx, failOther atomic.Int64
	var swaps, churns atomic.Int64

	// mutMu serializes mutations (swaps and churn deltas) and the
	// epochs map, so the local mirror applies deltas in exactly the
	// order the server does and version numbers line up.
	var mutMu sync.Mutex
	churnIdx := 0
	lastVer := regResp.Version // server versions are offset when the name pre-existed
	doChurn := func(b int) {
		mutMu.Lock()
		defer mutMu.Unlock()
		if churnIdx >= len(churnTrace) {
			return
		}
		ev := churnTrace[churnIdx]
		churnIdx++
		resp, err := patch(client, cfg.addr, cfg.name, deltaFor(ev))
		if err != nil {
			failed.Add(1)
			failOther.Add(1)
			fmt.Fprintf(os.Stderr, "sinrload: churn after batch %d: %v\n", b, err)
			return
		}
		snap, err := mirror.Apply(localDelta(ev))
		if err != nil {
			failed.Add(1)
			failOther.Add(1)
			fmt.Fprintf(os.Stderr, "sinrload: mirroring churn delta: %v\n", err)
			return
		}
		// The mirror tracks generations, not absolute versions: the
		// server's version counter survives re-registrations of the
		// same name, so assert per-delta monotonicity and that the
		// server's engine epoch moved in lockstep with the mirror's —
		// not that version and epoch coincide.
		if resp.Version != lastVer+1 || resp.Epoch != snap.Epoch() {
			failed.Add(1)
			failOther.Add(1)
			fmt.Fprintf(os.Stderr, "sinrload: server at version %d epoch %d after delta, expected version %d, local mirror epoch %d\n",
				resp.Version, resp.Epoch, lastVer+1, snap.Epoch())
			return
		}
		lastVer = resp.Version
		epochs[resp.Version] = snap
		churns.Add(1)
	}

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				b := int(next.Add(1)) - 1
				if b >= numBatches {
					return
				}
				lo := b * cfg.batch
				hi := lo + cfg.batch
				if hi > len(points) {
					hi = len(points)
				}
				tp := ""
				if tids != nil {
					seq := tids.Next()
					tid := tids.TraceID(seq)
					tp = trace.FormatTraceparent(tid, tids.SpanIDFor(seq))
					batchTrace[b] = tid.String()
				}
				t0 := time.Now()
				results, version, err := locate(client, cfg.addr, cfg.name, kind.String(), cfg.eps, cfg.radius, points[lo:hi], tp)
				latencies[b] = time.Since(t0)
				if err != nil {
					// Any non-2xx is a hard failure, tallied by class so
					// the report separates shedding (429) from server
					// errors (5xx); only the first few per class are
					// printed — an overloaded server sheds thousands.
					failed.Add(1)
					var printed int64
					var se *statusError
					switch {
					case errors.As(err, &se) && se.code == http.StatusTooManyRequests:
						printed = fail429.Add(1)
					case errors.As(err, &se) && se.code >= 500:
						printed = fail5xx.Add(1)
					default:
						printed = failOther.Add(1)
					}
					if printed <= 3 {
						fmt.Fprintf(os.Stderr, "sinrload: batch %d: %v\n", b, err)
					}
					continue
				}
				servedVer[b] = version
				for i, r := range results {
					served[lo+i] = r.Station
				}
				// Hot-swap under load: re-register the same stations,
				// bumping the version and forcing a resolver rebuild while
				// other clients keep querying.
				if cfg.swapEvery > 0 && b > 0 && b%cfg.swapEvery == 0 {
					mutMu.Lock()
					resp, err := register(client, cfg.addr, reg)
					if err != nil {
						failed.Add(1)
						failOther.Add(1)
						fmt.Fprintf(os.Stderr, "sinrload: hot swap after batch %d: %v\n", b, err)
					} else {
						// Stations unchanged: the new generation serves the
						// same epoch-1 station set.
						lastVer = resp.Version
						epochs[resp.Version] = mirror.Snapshot()
						swaps.Add(1)
					}
					mutMu.Unlock()
				}
				if cfg.churnEvery > 0 && b > 0 && b%cfg.churnEvery == 0 {
					doChurn(b)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	peak.finish()

	// Identify the slowest batch before the quantile sort destroys the
	// batch-index association.
	slowestBatch, slowestDur := 0, time.Duration(0)
	for b, d := range latencies {
		if d > slowestDur {
			slowestBatch, slowestDur = b, d
		}
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	qps := float64(len(points)) / elapsed.Seconds()
	fmt.Printf("served %d queries in %v (%.0f queries/s, %d batches, %d hot swaps, %d churn deltas, %d failed)\n",
		len(points), elapsed.Round(time.Millisecond), qps, numBatches, swaps.Load(), churns.Load(), failed.Load())
	fmt.Printf("batch latency: p50=%v p90=%v p99=%v max=%v\n",
		pct(latencies, 0.50), pct(latencies, 0.90), pct(latencies, 0.99), latencies[len(latencies)-1].Round(time.Microsecond))

	if cfg.scrapeMetrics {
		if after, err := scrape(client, cfg.addr); err != nil {
			fmt.Fprintf(os.Stderr, "sinrload: final metrics scrape: %v\n", err)
		} else {
			reportServerMetrics(before, after, &peak, cfg.metricsEvery)
		}
	}

	if cfg.traceRequests && batchTrace != nil {
		if err := reportSlowestTrace(client, cfg.addr, batchTrace[slowestBatch], slowestDur); err != nil {
			// Timeline reporting degrades like metrics scraping: an old
			// server without /debug/requests just loses the report.
			fmt.Fprintf(os.Stderr, "sinrload: skipping trace timeline: %v\n", err)
		}
	}

	if failed.Load() > 0 {
		return fmt.Errorf("%d requests failed hard (429=%d, 5xx=%d, other=%d)",
			failed.Load(), fail429.Load(), fail5xx.Load(), failOther.Load())
	}

	if cfg.verify {
		mismatches, err := verifyServed(cfg, kind, epochs, points, served, servedVer, numBatches)
		if err != nil {
			return err
		}
		if mismatches > 0 {
			return fmt.Errorf("%d of %d served answers differ from the local %s backend", mismatches, len(points), kind)
		}
		fmt.Printf("verified: all %d served answers identical to the local %s backend across %d generation(s)\n",
			len(points), kind, len(epochs))
	}

	if cfg.sched != "" {
		out, err := schedule(client, cfg.addr, cfg.name, serve.ScheduleRequest{Scheduler: cfg.sched})
		if err != nil {
			return fmt.Errorf("post-run schedule: %w", err)
		}
		if err := verifySchedule(out, epochs); err != nil {
			return fmt.Errorf("post-run schedule: %w", err)
		}
		if churns.Load() > 0 {
			if out.Path != "repaired" {
				return fmt.Errorf("post-churn schedule path = %q at version %d, want repaired", out.Path, out.Version)
			}
			if out.Repair == nil {
				return fmt.Errorf("post-churn schedule carries no repair stats")
			}
		}
		fmt.Printf("schedule[%s]: %d links in %d slots at version %d (path=%s), valid against the local engine\n",
			out.Scheduler, out.NumLinks, out.NumSlots, out.Version, out.Path)
	}
	return nil
}

// schedule POSTs one scheduling request for the named network.
func schedule(client *http.Client, addr, name string, req serve.ScheduleRequest) (serve.ScheduleResponse, error) {
	var out serve.ScheduleResponse
	body, err := json.Marshal(req)
	if err != nil {
		return out, err
	}
	resp, err := client.Post(addr+"/v1/networks/"+name+"/schedule", "application/json", bytes.NewReader(body))
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return out, &statusError{code: resp.StatusCode,
			msg: fmt.Sprintf("schedule: %s: %s", resp.Status, bytes.TrimSpace(msg))}
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return out, err
	}
	return out, nil
}

// verifySchedule re-derives the answering generation's link set from
// the local mirror and re-checks every served slot through a locally
// built feasibility engine: the served schedule must validate without
// the links themselves ever crossing the wire.
func verifySchedule(out serve.ScheduleResponse, epochs map[uint64]*dynamic.Snapshot) error {
	snap, ok := epochs[out.Version]
	if !ok {
		return fmt.Errorf("schedule answered from version %d, which no local mutation produced", out.Version)
	}
	net := snap.Network()
	powers := make([]float64, net.NumStations())
	for i := range powers {
		powers[i] = net.Power(i)
	}
	links := sched.DeriveLinks(net.Stations(), powers, out.LinkLen)
	var f sched.Feasibility
	switch out.Model {
	case "sinr":
		p, err := sched.NewSINRProblem(links, net.Noise(), net.Beta())
		if err != nil {
			return err
		}
		p.Alpha = net.Alpha()
		f = p
	case "protocol":
		p, err := sched.NewProtocolProblem(links, 1.5*out.LinkLen, 3*out.LinkLen)
		if err != nil {
			return err
		}
		f = p
	default:
		return fmt.Errorf("served schedule names unknown model %q", out.Model)
	}
	if out.NumLinks != len(links) {
		return fmt.Errorf("schedule covers %d links, generation %d has %d", out.NumLinks, out.Version, len(links))
	}
	s := &sched.Schedule{Slots: out.Slots}
	if err := s.Validate(f); err != nil {
		return fmt.Errorf("served schedule invalid against the local %s engine: %v", out.Model, err)
	}
	return nil
}

// verifyServed rebuilds, per server generation, the same backend kind
// locally (the exact ground truth for the dynamic kind, whose served
// answers are exact by construction) and compares every served answer
// against it. Batches are grouped by the generation that answered
// them, so answers racing a swap or churn delta are checked against
// the right station set. It returns the mismatch count; the caller
// turns a nonzero count into a non-zero exit.
func verifyServed(cfg config, kind resolve.Kind, epochs map[uint64]*dynamic.Snapshot,
	points []geom.Point, served []int, servedVer []uint64, numBatches int) (int, error) {
	byVer := make(map[uint64][]int)
	for b := 0; b < numBatches; b++ {
		// A failed batch never recorded its answering generation (the
		// sentinel 0 predates every real version). It was already
		// counted as a hard error; there are no answers to verify, and
		// checking its zeroed slots would fabricate mismatches.
		if servedVer[b] == 0 {
			continue
		}
		byVer[servedVer[b]] = append(byVer[servedVer[b]], b)
	}
	versions := make([]uint64, 0, len(byVer))
	for v := range byVer {
		versions = append(versions, v)
	}
	sort.Slice(versions, func(i, j int) bool { return versions[i] < versions[j] })

	mismatches := 0
	for _, ver := range versions {
		snap, ok := epochs[ver]
		if !ok {
			return 0, fmt.Errorf("server answered from version %d, which no local mutation produced", ver)
		}
		vkind := kind
		if kind == resolve.KindDynamic {
			vkind = resolve.KindExact
		}
		var vopts []resolve.Option
		if cfg.radius > 0 {
			vopts = append(vopts, resolve.WithRadius(cfg.radius))
		}
		local, err := resolve.New(vkind, snap.Network(), vopts...)
		if err != nil {
			return 0, fmt.Errorf("rebuilding the %s backend for version %d: %w", vkind, ver, err)
		}
		var pts []geom.Point
		var got []int
		for _, b := range byVer[ver] {
			lo := b * cfg.batch
			hi := lo + cfg.batch
			if hi > len(points) {
				hi = len(points)
			}
			pts = append(pts, points[lo:hi]...)
			got = append(got, served[lo:hi]...)
		}
		answers := make([]core.Location, len(pts))
		if err := local.ResolveBatch(context.Background(), pts, answers); err != nil {
			return 0, err
		}
		for i, a := range answers {
			if want := resolve.StationIndex(a); got[i] != want {
				if mismatches < 5 {
					fmt.Fprintf(os.Stderr, "sinrload: version %d mismatch at %v: served %d, local %s backend %d\n",
						ver, pts[i], got[i], kind, want)
				}
				mismatches++
			}
		}
	}
	return mismatches, nil
}

func registration(name string, stations []geom.Point, noise, beta float64) serve.NetworkRequest {
	req := serve.NetworkRequest{Name: name, Noise: noise, Beta: beta}
	req.Stations = make([]serve.SpecStation, len(stations))
	for i, s := range stations {
		req.Stations[i] = serve.SpecStation{X: s.X, Y: s.Y}
	}
	return req
}

func register(client *http.Client, addr string, req serve.NetworkRequest) (serve.NetworkResponse, error) {
	var out serve.NetworkResponse
	body, err := json.Marshal(req)
	if err != nil {
		return out, err
	}
	resp, err := client.Post(addr+"/v1/networks", "application/json", bytes.NewReader(body))
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return out, &statusError{code: resp.StatusCode,
			msg: fmt.Sprintf("register: %s: %s", resp.Status, bytes.TrimSpace(msg))}
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return out, err
	}
	return out, nil
}

// registerViaSpec lands the registration declaratively: the canonical
// spec is written atomically (tmp + rename, so the controller's lister
// never sees a half file) into the server's spec directory, then GET
// /v1/networks/{name} is polled until the readback is byte-identical
// to what was written — reconcile convergence, observed end to end
// through the public API.
func registerViaSpec(client *http.Client, addr, dir string, spec serve.NetworkSpec) (serve.NetworkResponse, error) {
	var out serve.NetworkResponse
	canonical, err := spec.CanonicalJSON()
	if err != nil {
		return out, err
	}
	tmp := filepath.Join(dir, "."+spec.Name+".json.tmp")
	if err := os.WriteFile(tmp, canonical, 0o644); err != nil {
		return out, err
	}
	if err := os.Rename(tmp, filepath.Join(dir, spec.Name+".json")); err != nil {
		return out, err
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		body, version, ok, err := getSpec(client, addr, spec.Name)
		if err == nil && ok && bytes.Equal(body, canonical) {
			return serve.NetworkResponse{
				Name: spec.Name, Version: version,
				Stations: len(spec.Stations), Resolver: spec.Resolver,
			}, nil
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "sinrload: spec readback poll: %v\n", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	return out, fmt.Errorf("spec for %q did not converge within 30s", spec.Name)
}

// getSpec reads the canonical spec behind name's live generation; ok
// is false while the network does not exist yet.
func getSpec(client *http.Client, addr, name string) (body []byte, version uint64, ok bool, err error) {
	resp, err := client.Get(addr + "/v1/networks/" + name)
	if err != nil {
		return nil, 0, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil, 0, false, nil
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, 0, false, &statusError{code: resp.StatusCode,
			msg: fmt.Sprintf("get spec: %s: %s", resp.Status, bytes.TrimSpace(msg))}
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, false, err
	}
	version, _ = strconv.ParseUint(resp.Header.Get("Sinr-Network-Version"), 10, 64)
	return b, version, true, nil
}

// patch applies one delta document via PATCH /v1/networks/{name}.
func patch(client *http.Client, addr, name string, delta serve.NetworkDeltaRequest) (serve.NetworkResponse, error) {
	var out serve.NetworkResponse
	body, err := json.Marshal(delta)
	if err != nil {
		return out, err
	}
	req, err := http.NewRequest(http.MethodPatch, addr+"/v1/networks/"+name, bytes.NewReader(body))
	if err != nil {
		return out, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return out, &statusError{code: resp.StatusCode,
			msg: fmt.Sprintf("patch: %s: %s", resp.Status, bytes.TrimSpace(msg))}
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return out, err
	}
	return out, nil
}

// locate posts one batch. When traceparent is non-empty it is
// propagated on the request, and the server's echoed traceparent must
// carry the same trace ID — a broken round trip is a hard error, while
// a missing echo is tolerated (an older server that does not trace).
func locate(client *http.Client, addr, name, resolver string, eps, radius float64, pts []geom.Point, traceparent string) ([]serve.LocateResult, uint64, error) {
	req := serve.LocateRequest{Network: name, Resolver: resolver, Eps: eps, Radius: radius}
	req.Points = make([]serve.PointJSON, len(pts))
	for i, p := range pts {
		req.Points[i] = serve.PointJSON{X: p.X, Y: p.Y}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, 0, err
	}
	hreq, err := http.NewRequest(http.MethodPost, addr+"/v1/locate", bytes.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if traceparent != "" {
		hreq.Header.Set("Traceparent", traceparent)
	}
	resp, err := client.Do(hreq)
	if err != nil {
		return nil, 0, err
	}
	if traceparent != "" {
		if echo := resp.Header.Get("Traceparent"); echo != "" {
			sentID, _, okSent := trace.ParseTraceparent(traceparent)
			gotID, _, okGot := trace.ParseTraceparent(echo)
			if !okSent || !okGot || gotID != sentID {
				resp.Body.Close()
				return nil, 0, fmt.Errorf("locate: traceparent did not round-trip: sent %q, got %q", traceparent, echo)
			}
		}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, 0, &statusError{code: resp.StatusCode,
			msg: fmt.Sprintf("locate: %s: %s", resp.Status, bytes.TrimSpace(msg))}
	}
	var out serve.LocateResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, 0, err
	}
	if len(out.Results) != len(pts) {
		return nil, 0, fmt.Errorf("locate: %d results for %d points", len(out.Results), len(pts))
	}
	return out.Results, out.Version, nil
}

// reportSlowestTrace fetches the server's flight recorder and prints
// the per-stage timeline of this run's slowest batch. The recorder
// tail-samples, so the client's slowest batch is normally captured; if
// it was displaced (another route's traffic, a slower non-locate
// request), the recorder's own slowest locate trace is shown instead.
func reportSlowestTrace(client *http.Client, addr, wantTraceID string, clientDur time.Duration) error {
	resp, err := client.Get(addr + "/debug/requests?route=locate")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/debug/requests: %s", resp.Status)
	}
	var caps []trace.Captured
	if err := json.NewDecoder(resp.Body).Decode(&caps); err != nil {
		return fmt.Errorf("/debug/requests: %v", err)
	}
	if len(caps) == 0 {
		return fmt.Errorf("/debug/requests returned no captured locate traces")
	}
	pick := caps[0] // slowest first
	matched := false
	for _, c := range caps {
		if c.TraceID == wantTraceID {
			pick, matched = c, true
			break
		}
	}
	if matched {
		fmt.Printf("slowest batch server timeline (client %v, trace %s):\n",
			clientDur.Round(time.Microsecond), pick.TraceID)
	} else {
		fmt.Printf("slowest batch (trace %s, client %v) not in the flight recorder; server's slowest locate trace %s instead:\n",
			wantTraceID, clientDur.Round(time.Microsecond), pick.TraceID)
	}
	fmt.Printf("  route=%s network=%s status=%d total=%.3fms spans=%d\n",
		pick.Route, pick.Network, pick.Status, pick.DurationMS, len(pick.Spans))
	for _, sp := range pick.Spans {
		fmt.Printf("    %10.3fms  %10.3fms  %s\n", sp.StartMS, sp.DurationMS, sp.Name)
	}
	if pick.DroppedSpans > 0 {
		fmt.Printf("    (%d spans dropped at capacity %d)\n", pick.DroppedSpans, trace.MaxSpans)
	}
	return nil
}

// pct returns the p-quantile of sorted latencies.
func pct(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i].Round(time.Microsecond)
}

// scrape fetches and parses the server's /metrics exposition.
func scrape(client *http.Client, addr string) ([]metrics.Sample, error) {
	resp, err := client.Get(addr + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, &statusError{code: resp.StatusCode, msg: fmt.Sprintf("metrics: %s", resp.Status)}
	}
	return metrics.Parse(resp.Body)
}

// peakSampler polls /metrics at an interval while the run is live,
// tracking gauge peaks the before/after snapshots cannot see: the
// in-flight and queued gauges spike mid-run and are back near zero by
// the final scrape.
type peakSampler struct {
	mu          sync.Mutex
	maxInflight float64
	maxQueued   float64
	samples     int
	stop, done  chan struct{}
}

func (p *peakSampler) start(client *http.Client, addr string, every time.Duration) {
	p.stop, p.done = make(chan struct{}), make(chan struct{})
	go func() {
		defer close(p.done)
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-p.stop:
				return
			case <-t.C:
				samples, err := scrape(client, addr)
				if err != nil {
					continue // transient; the run keeps the server busy
				}
				p.mu.Lock()
				p.samples++
				if v, ok := metrics.Value(samples, "sinr_http_inflight"); ok && v > p.maxInflight {
					p.maxInflight = v
				}
				if v, ok := metrics.Value(samples, "sinr_admission_queued"); ok && v > p.maxQueued {
					p.maxQueued = v
				}
				p.mu.Unlock()
			}
		}
	}()
}

// finish stops the sampler and waits it out; safe when never started.
func (p *peakSampler) finish() {
	if p.stop != nil {
		close(p.stop)
		<-p.done
	}
}

// deltaValue returns after-before for the named series (0 when either
// scrape lacks it — e.g. a gauge the server version doesn't export).
func deltaValue(before, after []metrics.Sample, name string, labels ...metrics.Label) float64 {
	b, _ := metrics.Value(before, name, labels...)
	a, _ := metrics.Value(after, name, labels...)
	return a - b
}

// deltaBuckets subtracts the before-scrape's cumulative histogram
// buckets from the after-scrape's, yielding the histogram of exactly
// this run's observations.
func deltaBuckets(before, after []metrics.Sample, name string, labels ...metrics.Label) []metrics.Bucket {
	prev := map[float64]float64{}
	for _, b := range metrics.Buckets(before, name, labels...) {
		prev[b.LE] = b.Count
	}
	cur := metrics.Buckets(after, name, labels...)
	out := make([]metrics.Bucket, 0, len(cur))
	for _, b := range cur {
		out = append(out, metrics.Bucket{LE: b.LE, Count: b.Count - prev[b.LE]})
	}
	return out
}

// quantileDur renders a BucketQuantile estimate as a duration ("n/a"
// for an empty histogram).
func quantileDur(q float64, buckets []metrics.Bucket) string {
	sec := metrics.BucketQuantile(q, buckets)
	if sec != sec { // NaN: nothing observed
		return "n/a"
	}
	return time.Duration(sec * float64(time.Second)).Round(time.Microsecond).String()
}

// reportServerMetrics prints the server's own view of the run — the
// deltas between the two /metrics scrapes bracketing the traffic — so
// client percentiles land next to the numbers an operator's dashboard
// would show for the same window: shed counts explain client 429s,
// and the server-side histogram separates queueing from compute.
func reportServerMetrics(before, after []metrics.Sample, peak *peakSampler, every time.Duration) {
	locateRoute := metrics.L("route", "locate")
	fmt.Printf("server: locate 2xx=%.0f 429=%.0f 5xx=%.0f shed=%.0f, cache hits +%.0f misses +%.0f\n",
		deltaValue(before, after, "sinr_http_requests_total", locateRoute, metrics.L("code", "2xx")),
		deltaValue(before, after, "sinr_http_requests_total", locateRoute, metrics.L("code", "429")),
		deltaValue(before, after, "sinr_http_requests_total", locateRoute, metrics.L("code", "5xx")),
		deltaValue(before, after, "sinr_admission_shed_total", locateRoute),
		deltaValue(before, after, "sinr_resolver_cache_hits_total"),
		deltaValue(before, after, "sinr_resolver_cache_misses_total"))
	buckets := deltaBuckets(before, after, "sinr_http_request_seconds", locateRoute)
	fmt.Printf("server: locate latency p50=%s p90=%s p99=%s (from /metrics histogram delta)\n",
		quantileDur(0.50, buckets), quantileDur(0.90, buckets), quantileDur(0.99, buckets))
	if peak.samples > 0 {
		fmt.Printf("server: peak inflight=%.0f queued=%.0f (%d samples, every %v)\n",
			peak.maxInflight, peak.maxQueued, peak.samples, every)
	}
}
