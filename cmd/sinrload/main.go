// Command sinrload replays configurable query workloads against a
// running sinrserve instance and reports throughput and latency
// percentiles. It generates a network locally, registers it with the
// server, fires /v1/locate batches from concurrent clients, and can
// verify every served answer byte-identically against a locally built
// resolver of the same kind and hot-swap the network mid-run to prove
// replacement drops no traffic.
//
// Usage:
//
//	sinrload -addr http://127.0.0.1:8080 [-network load] [-n 64]
//	         [-queries 200000] [-batch 512] [-concurrency 8]
//	         [-workload uniform|hotspot|mobility]
//	         [-resolver exact|locator|voronoi|udg] [-eps 0.05]
//	         [-radius 0] [-noise 0.01] [-beta 3] [-seed 1]
//	         [-swap-every 0] [-verify]
//
// -resolver selects the serving backend per request, turning every
// workload into a cross-backend comparison scenario; -radius sets the
// UDG connectivity radius (0 derives it from the network, identically
// on client and server). -swap-every K re-registers the network
// (bumping its version and forcing a resolver rebuild + atomic hot
// swap) after every K batches; station locations are unchanged, so
// served answers must stay identical while the swap happens under
// load. -verify recomputes all answers locally through the same
// backend kind and exits non-zero on any mismatch, so the command
// doubles as an end-to-end correctness check in CI (the serve-smoke
// matrix runs it once per backend).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/resolve"
	"repro/internal/serve"
	"repro/internal/workload"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "base URL of the sinrserve instance")
	name := flag.String("network", "load", "network name to register and query")
	n := flag.Int("n", 64, "number of stations")
	queries := flag.Int("queries", 200000, "total locate queries to send")
	batch := flag.Int("batch", 512, "points per /v1/locate request")
	concurrency := flag.Int("concurrency", 8, "concurrent client goroutines")
	wl := flag.String("workload", "uniform", "query workload: uniform, hotspot or mobility")
	resolver := flag.String("resolver", "locator", "serving backend: exact, locator, voronoi or udg")
	eps := flag.Float64("eps", serve.DefaultEps, "locator performance parameter (locator backend only)")
	radius := flag.Float64("radius", 0, "UDG connectivity radius (udg backend only; 0 = derived from the network)")
	noise := flag.Float64("noise", 0.01, "background noise")
	beta := flag.Float64("beta", 3, "reception threshold")
	seed := flag.Int64("seed", 1, "workload seed")
	swapEvery := flag.Int("swap-every", 0, "hot-swap the network after every K batches (0 = never)")
	verify := flag.Bool("verify", false, "verify every served answer against direct HeardBy evaluation")
	flag.Parse()

	if err := run(*addr, *name, *n, *queries, *batch, *concurrency, *wl, *resolver, *eps, *radius, *noise, *beta, *seed, *swapEvery, *verify); err != nil {
		fmt.Fprintln(os.Stderr, "sinrload:", err)
		os.Exit(1)
	}
}

func run(addr, name string, n, queries, batchSize, concurrency int, wl, resolver string, eps, radius, noise, beta float64, seed int64, swapEvery int, verify bool) error {
	if n < 1 || queries < 1 || batchSize < 1 || concurrency < 1 {
		return fmt.Errorf("-n, -queries, -batch and -concurrency must all be >= 1 (got %d, %d, %d, %d)",
			n, queries, batchSize, concurrency)
	}
	gen := workload.NewGenerator(seed)
	box := geom.NewBox(geom.Pt(-5, -5), geom.Pt(5, 5))
	stations, err := gen.UniformSeparated(n, box, 0.05)
	if err != nil {
		return err
	}
	net, err := core.NewUniform(stations, noise, beta)
	if err != nil {
		return err
	}
	kind, err := resolve.ParseKind(resolver)
	if err != nil {
		return err
	}

	var points []geom.Point
	switch wl {
	case "uniform":
		points = gen.QueryPoints(queries, box)
	case "hotspot":
		points = gen.HotspotPoints(queries, box, 4, 0.8, 0.3)
	case "mobility":
		walkers := concurrency * 64
		steps := (queries + walkers - 1) / walkers
		points = gen.MobilityTrace(walkers, steps, box, 0.05)
		points = points[:queries]
	default:
		return fmt.Errorf("unknown workload %q", wl)
	}

	client := &http.Client{Timeout: 5 * time.Minute}
	reg := registration(name, stations, noise, beta)
	if err := register(client, addr, reg); err != nil {
		return fmt.Errorf("registering network: %w", err)
	}
	fmt.Printf("registered %q: %d stations, workload=%s, resolver=%s, %d queries in batches of %d over %d clients\n",
		name, n, wl, kind, len(points), batchSize, concurrency)

	numBatches := (len(points) + batchSize - 1) / batchSize
	served := make([]int, len(points)) // station index or -1 per query
	latencies := make([]time.Duration, numBatches)
	var next atomic.Int64
	var failed atomic.Int64
	var swaps atomic.Int64

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				b := int(next.Add(1)) - 1
				if b >= numBatches {
					return
				}
				lo := b * batchSize
				hi := lo + batchSize
				if hi > len(points) {
					hi = len(points)
				}
				t0 := time.Now()
				results, err := locate(client, addr, name, kind.String(), eps, radius, points[lo:hi])
				latencies[b] = time.Since(t0)
				if err != nil {
					failed.Add(1)
					fmt.Fprintf(os.Stderr, "sinrload: batch %d: %v\n", b, err)
					continue
				}
				for i, r := range results {
					served[lo+i] = r.Station
				}
				// Hot-swap under load: re-register the same stations,
				// bumping the version and forcing a locator rebuild while
				// other clients keep querying.
				if swapEvery > 0 && b > 0 && b%swapEvery == 0 {
					if err := register(client, addr, reg); err != nil {
						failed.Add(1)
						fmt.Fprintf(os.Stderr, "sinrload: hot swap after batch %d: %v\n", b, err)
					} else {
						swaps.Add(1)
					}
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	qps := float64(len(points)) / elapsed.Seconds()
	fmt.Printf("served %d queries in %v (%.0f queries/s, %d batches, %d hot swaps, %d failed)\n",
		len(points), elapsed.Round(time.Millisecond), qps, numBatches, swaps.Load(), failed.Load())
	fmt.Printf("batch latency: p50=%v p90=%v p99=%v max=%v\n",
		pct(latencies, 0.50), pct(latencies, 0.90), pct(latencies, 0.99), latencies[len(latencies)-1].Round(time.Microsecond))

	if failed.Load() > 0 {
		return fmt.Errorf("%d batch requests failed", failed.Load())
	}

	if verify {
		// Rebuild the same backend locally: for exact, locator and
		// voronoi this equals Network.HeardBy; for udg it is the graph
		// model with the identical (derived or explicit) radius.
		var vopts []resolve.Option
		if radius > 0 {
			vopts = append(vopts, resolve.WithRadius(radius))
		}
		local, err := resolve.New(kind, net, vopts...)
		if err != nil {
			return err
		}
		answers := make([]core.Location, len(points))
		if err := local.ResolveBatch(context.Background(), points, answers); err != nil {
			return err
		}
		mismatches := 0
		for i, a := range answers {
			if want := resolve.StationIndex(a); served[i] != want {
				if mismatches < 5 {
					fmt.Fprintf(os.Stderr, "sinrload: mismatch at %v: served %d, local %s backend %d\n",
						points[i], served[i], kind, want)
				}
				mismatches++
			}
		}
		if mismatches > 0 {
			return fmt.Errorf("%d of %d served answers differ from the local %s backend", mismatches, len(answers), kind)
		}
		fmt.Printf("verified: all %d served answers identical to the local %s backend\n", len(answers), kind)
	}
	return nil
}

func registration(name string, stations []geom.Point, noise, beta float64) serve.NetworkRequest {
	req := serve.NetworkRequest{Name: name, Noise: noise, Beta: beta}
	req.Stations = make([]serve.PointJSON, len(stations))
	for i, s := range stations {
		req.Stations[i] = serve.PointJSON{X: s.X, Y: s.Y}
	}
	return req
}

func register(client *http.Client, addr string, req serve.NetworkRequest) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := client.Post(addr+"/v1/networks", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("register: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	return nil
}

func locate(client *http.Client, addr, name, resolver string, eps, radius float64, pts []geom.Point) ([]serve.LocateResult, error) {
	req := serve.LocateRequest{Network: name, Resolver: resolver, Eps: eps, Radius: radius}
	req.Points = make([]serve.PointJSON, len(pts))
	for i, p := range pts {
		req.Points[i] = serve.PointJSON{X: p.X, Y: p.Y}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := client.Post(addr+"/v1/locate", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("locate: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	var out serve.LocateResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	if len(out.Results) != len(pts) {
		return nil, fmt.Errorf("locate: %d results for %d points", len(out.Results), len(pts))
	}
	return out.Results, nil
}

// pct returns the p-quantile of sorted latencies.
func pct(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i].Round(time.Microsecond)
}
