package sinrdiag

import (
	"math"
	"testing"
)

// TestFacadeEndToEnd walks the README quick-start path through the
// facade: build a network, query reception, build the Theorem 3
// locator, resolve queries.
func TestFacadeEndToEnd(t *testing.T) {
	net, err := NewUniform([]Point{Pt(0, 0), Pt(3, 1), Pt(-1, 2)}, 0.01, 3)
	if err != nil {
		t.Fatal(err)
	}
	if net.NumStations() != 3 || net.Alpha() != DefaultAlpha {
		t.Fatalf("network = %v", net)
	}
	p := Pt(0.3, 0.1)
	heard, ok := net.HeardBy(p)
	if !ok || heard != 0 {
		t.Fatalf("HeardBy(%v) = %d, %v", p, heard, ok)
	}

	loc, err := net.BuildLocator(0.1)
	if err != nil {
		t.Fatal(err)
	}
	ans := loc.LocateExact(p)
	if ans.Kind != Reception || ans.Station != 0 {
		t.Fatalf("LocateExact = %+v", ans)
	}
	far := loc.Locate(Pt(50, 50))
	if far.Kind != NoReception {
		t.Fatalf("far point = %+v", far)
	}
}

func TestFacadeZoneAndBounds(t *testing.T) {
	net, err := NewUniform([]Point{Pt(0, 0), Pt(1, 0)}, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	z, err := net.Zone(0)
	if err != nil {
		t.Fatal(err)
	}
	phi, err := z.MeasuredFatness(128, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	bound, err := FatnessBound(4)
	if err != nil {
		t.Fatal(err)
	}
	if phi > bound*(1+1e-6) {
		t.Errorf("fatness %v exceeds bound %v", phi, bound)
	}
	if math.Abs(bound-3) > 1e-12 {
		t.Errorf("FatnessBound(4) = %v, want 3", bound)
	}
}

func TestFacadeOptions(t *testing.T) {
	net, err := NewNetwork([]Point{Pt(0, 0), Pt(2, 0)}, 0, 2,
		WithPowers([]float64{1, 4}), WithAlpha(2))
	if err != nil {
		t.Fatal(err)
	}
	if net.IsUniform() {
		t.Error("mixed powers should not be uniform")
	}
	if net.Power(1) != 4 {
		t.Errorf("Power(1) = %v", net.Power(1))
	}
}

func TestFacadeConstructions(t *testing.T) {
	sStar, err := MergeStations(Pt(1, 0), Pt(-1, 0), Pt(0, 0.5), Pt(0, -0.5))
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(sStar.X) {
		t.Error("merge returned NaN")
	}
	rep, err := ThreeStationAnalysis(Pt(1, 2), Pt(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if rep.DistinctPos > 2 {
		t.Errorf("three-station roots = %d", rep.DistinctPos)
	}
}

func TestFacadeDiagram(t *testing.T) {
	net, err := NewUniform([]Point{Pt(0, 0), Pt(1, 0)}, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	d, err := BuildDiagram(net, 128, 1e-7)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumZones() != 2 {
		t.Fatalf("zones = %d", d.NumZones())
	}
	z := d.Zone(0)
	if z.Area <= 0 || z.Fatness() <= 1 {
		t.Errorf("zone info = %+v", z)
	}
	if got := len(d.CommunicationGraph()); got != 2 {
		t.Errorf("graph size = %d", got)
	}
}
