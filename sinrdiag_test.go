package sinrdiag

import (
	"context"
	"math"
	"testing"
)

// TestFacadeEndToEnd walks the README quick-start path through the
// facade: build a network, query reception, build the Theorem 3
// locator, resolve queries.
func TestFacadeEndToEnd(t *testing.T) {
	net, err := NewUniform([]Point{Pt(0, 0), Pt(3, 1), Pt(-1, 2)}, 0.01, 3)
	if err != nil {
		t.Fatal(err)
	}
	if net.NumStations() != 3 || net.Alpha() != DefaultAlpha {
		t.Fatalf("network = %v", net)
	}
	p := Pt(0.3, 0.1)
	heard, ok := net.HeardBy(p)
	if !ok || heard != 0 {
		t.Fatalf("HeardBy(%v) = %d, %v", p, heard, ok)
	}

	loc, err := net.BuildLocator(0.1)
	if err != nil {
		t.Fatal(err)
	}
	ans := loc.LocateExact(p)
	if ans.Kind != Reception || ans.Station != 0 {
		t.Fatalf("LocateExact = %+v", ans)
	}
	far := loc.Locate(Pt(50, 50))
	if far.Kind != NoReception {
		t.Fatalf("far point = %+v", far)
	}
}

func TestFacadeZoneAndBounds(t *testing.T) {
	net, err := NewUniform([]Point{Pt(0, 0), Pt(1, 0)}, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	z, err := net.Zone(0)
	if err != nil {
		t.Fatal(err)
	}
	phi, err := z.MeasuredFatness(128, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	bound, err := FatnessBound(4)
	if err != nil {
		t.Fatal(err)
	}
	if phi > bound*(1+1e-6) {
		t.Errorf("fatness %v exceeds bound %v", phi, bound)
	}
	if math.Abs(bound-3) > 1e-12 {
		t.Errorf("FatnessBound(4) = %v, want 3", bound)
	}
}

func TestFacadeOptions(t *testing.T) {
	net, err := NewNetwork([]Point{Pt(0, 0), Pt(2, 0)}, 0, 2,
		WithPowers([]float64{1, 4}), WithAlpha(2))
	if err != nil {
		t.Fatal(err)
	}
	if net.IsUniform() {
		t.Error("mixed powers should not be uniform")
	}
	if net.Power(1) != 4 {
		t.Errorf("Power(1) = %v", net.Power(1))
	}
}

func TestFacadeConstructions(t *testing.T) {
	sStar, err := MergeStations(Pt(1, 0), Pt(-1, 0), Pt(0, 0.5), Pt(0, -0.5))
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(sStar.X) {
		t.Error("merge returned NaN")
	}
	rep, err := ThreeStationAnalysis(Pt(1, 2), Pt(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if rep.DistinctPos > 2 {
		t.Errorf("three-station roots = %d", rep.DistinctPos)
	}
}

func TestFacadeDiagram(t *testing.T) {
	net, err := NewUniform([]Point{Pt(0, 0), Pt(1, 0)}, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	d, err := BuildDiagram(net, 128, 1e-7)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumZones() != 2 {
		t.Fatalf("zones = %d", d.NumZones())
	}
	z := d.Zone(0)
	if z.Area <= 0 || z.Fatness() <= 1 {
		t.Errorf("zone info = %+v", z)
	}
	if got := len(d.CommunicationGraph()); got != 2 {
		t.Errorf("graph size = %d", got)
	}
}

// TestFacadeResolverDelegation checks the acceptance contract of the
// Resolver redesign at the facade: every old entry point (HeardBy,
// NaiveLocate, VoronoiLocate, BuildLocator+LocateExact) returns
// answers identical to its Resolver replacement, and the facade
// constructors/options round-trip.
func TestFacadeResolverDelegation(t *testing.T) {
	net, err := NewUniform([]Point{Pt(0, 0), Pt(3, 1), Pt(-1, 2), Pt(2, -2)}, 0.01, 3)
	if err != nil {
		t.Fatal(err)
	}
	loc, err := net.BuildLocator(0.1)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := NewExactResolver(net)
	if err != nil {
		t.Fatal(err)
	}
	locRes, err := NewLocatorResolver(net, WithEpsilon(0.1))
	if err != nil {
		t.Fatal(err)
	}
	voro, err := NewVoronoiResolver(net)
	if err != nil {
		t.Fatal(err)
	}
	if locRes.Stats().Kind != ResolverLocator || locRes.Stats().Eps != 0.1 {
		t.Fatalf("locator stats = %+v", locRes.Stats())
	}

	ctx := context.Background()
	for i := -30; i <= 30; i++ {
		for j := -30; j <= 30; j++ {
			p := Pt(float64(i)/6, float64(j)/6)
			want := net.NaiveLocate(p)
			if got := exact.Resolve(ctx, p); got != want {
				t.Fatalf("exact resolver %v != NaiveLocate %v at %v", got, want, p)
			}
			if got := locRes.Resolve(ctx, p); got != loc.LocateExact(p) {
				t.Fatalf("locator resolver %v != LocateExact %v at %v", got, loc.LocateExact(p), p)
			}
			if got := voro.Resolve(ctx, p); got != net.VoronoiLocate(p, nil) {
				t.Fatalf("voronoi resolver %v != VoronoiLocate %v at %v", got, net.VoronoiLocate(p, nil), p)
			}
			idx, ok := net.HeardBy(p)
			if !ok {
				idx = NoStationHeard
			}
			if got := StationIndex(exact.Resolve(ctx, p)); got != idx {
				t.Fatalf("StationIndex %d != HeardBy %d at %v", got, idx, p)
			}
		}
	}

	for _, kind := range ResolverKinds() {
		parsed, err := ParseResolverKind(kind.String())
		if err != nil || parsed != kind {
			t.Fatalf("ParseResolverKind(%q) = %v, %v", kind.String(), parsed, err)
		}
		if _, err := NewResolver(kind, net, WithWorkers(2)); err != nil {
			t.Fatalf("NewResolver(%v): %v", kind, err)
		}
	}
	if DefaultUDGRadius(net) <= 0 {
		t.Fatal("DefaultUDGRadius must be positive")
	}
}

// TestFacadeScheduling walks the scheduling surface through the
// facade: derive links from a station set, schedule them under both
// reception models with every scheduler, validate, then repair after
// the link set changes.
func TestFacadeScheduling(t *testing.T) {
	stations := []Point{
		{X: 0, Y: 0}, {X: 6, Y: 1}, {X: -4, Y: 5}, {X: 3, Y: -6},
		{X: -5, Y: -3}, {X: 8, Y: 7}, {X: -8, Y: 2}, {X: 1, Y: 9},
	}
	links := DeriveLinks(stations, nil, 1)
	if len(links) != len(stations) {
		t.Fatalf("DeriveLinks: %d links for %d stations", len(links), len(stations))
	}

	sp, err := NewSINRScheduling(links, 0.001, 2)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := NewProtocolScheduling(links, 1.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []SchedulingProblem{sp, pp} {
		for _, kind := range SchedulerKinds() {
			s, err := BuildSchedule(kind, f, ByLength(links, true))
			if err != nil {
				t.Fatalf("%v: %v", kind, err)
			}
			if err := s.Validate(f); err != nil {
				t.Fatalf("%v: %v", kind, err)
			}
			if s.NumLinks() != len(links) {
				t.Fatalf("%v: %d of %d links scheduled", kind, s.NumLinks(), len(links))
			}
		}
	}

	// A slot answers trial placements incrementally.
	slot := sp.NewSlot()
	if !slot.Add(0) {
		t.Fatal("link 0 must fit an empty slot")
	}
	if slot.CanAdd(0) {
		t.Fatal("a slot member cannot be added twice")
	}

	// Shrink the instance: repair keeps survivors, drops the stale tail.
	s, err := BuildSchedule(SchedGreedy, sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	shrunk, err := NewSINRScheduling(links[:6], 0.001, 2)
	if err != nil {
		t.Fatal(err)
	}
	healed, stats, err := RepairSchedule(shrunk, s, DefaultSchedImprovePasses)
	if err != nil {
		t.Fatal(err)
	}
	if err := healed.Validate(shrunk); err != nil {
		t.Fatal(err)
	}
	if stats.Dropped != 2 || healed.NumLinks() != 6 {
		t.Fatalf("repair stats %+v, links %d", stats, healed.NumLinks())
	}

	for _, kind := range SchedulerKinds() {
		parsed, err := ParseSchedulerKind(kind.String())
		if err != nil || parsed != kind {
			t.Fatalf("ParseSchedulerKind(%q) = %v, %v", kind.String(), parsed, err)
		}
	}
	if _, err := ParseSchedulerKind("magic"); err == nil {
		t.Fatal("unknown scheduler kind must fail")
	}
}
