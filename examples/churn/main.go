// Churn: mutating a live network through the dynamic engine. The
// mobility example rebuilds everything per step; this one pays only a
// delta per event. A base network absorbs arrivals, a departure and a
// power walk as deltas; each Apply produces a fresh immutable epoch
// snapshot, and a snapshot pinned before the churn keeps answering
// from its own epoch's station set — the consistency contract that
// lets serving traffic race mutations safely.
package main

import (
	"fmt"
	"log"
	"math/rand"

	sinrdiag "repro"
)

func main() {
	const (
		beta  = 3
		noise = 0.01
		n     = 24
	)
	rng := rand.New(rand.NewSource(7))
	stations := make([]sinrdiag.Point, n)
	for i := range stations {
		stations[i] = sinrdiag.Pt(rng.Float64()*10-5, rng.Float64()*10-5)
	}
	net, err := sinrdiag.NewUniform(stations, noise, beta)
	if err != nil {
		log.Fatal(err)
	}
	dyn, err := sinrdiag.NewDynamicNetwork(net)
	if err != nil {
		log.Fatal(err)
	}
	// The probe sits just outside station 0's position, inside its
	// reception zone at epoch 1.
	probe := sinrdiag.Pt(stations[0].X+0.1, stations[0].Y)
	pinned := dyn.Snapshot() // epoch 1, frozen across everything below

	fmt.Printf("epoch 1: %d stations; probe %v\n", pinned.NumStations(), probe)
	fmt.Println("event                         epoch  path         stations  heard@probe")
	report := func(snap *sinrdiag.DynamicSnapshot, what string) {
		heard := "-"
		if i, ok := snap.HeardBy(probe); ok {
			heard = fmt.Sprintf("s%d", i)
		}
		st := snap.ApplyStats()
		fmt.Printf("%-28s  %5d  %-11s  %8d  %s\n", what, snap.Epoch(), st.Path, snap.NumStations(), heard)
	}

	// A station arrives right next to the probe: it steals the
	// reception there from this epoch on (it is closer than s0, and an
	// equidistant-or-nearer interferer silences s0 at beta > 1).
	snap, err := dyn.Apply(sinrdiag.DynamicDelta{
		Add: []sinrdiag.DynamicStation{{Pos: sinrdiag.Pt(probe.X+0.05, probe.Y)}},
	})
	if err != nil {
		log.Fatal(err)
	}
	report(snap, "arrival near probe")
	newcomer := snap.NumStations() - 1
	arrived := snap // pin the post-arrival epoch across the churn below

	// Its power decays in steps (a power walk); weak enough, it loses
	// the probe back to s0.
	for _, p := range []float64{0.5, 0.001} {
		snap, err = dyn.Apply(sinrdiag.DynamicDelta{
			SetPower: []sinrdiag.DynamicPowerUpdate{{Station: newcomer, Power: p}},
		})
		if err != nil {
			log.Fatal(err)
		}
		report(snap, fmt.Sprintf("power walk -> %g", p))
	}

	// And departs. Note indices are per-epoch: the newcomer's index is
	// still valid in the epoch this delta applies to.
	snap, err = dyn.Apply(sinrdiag.DynamicDelta{Remove: []int{newcomer}})
	if err != nil {
		log.Fatal(err)
	}
	report(snap, "departure")

	// Pinned snapshots never saw any of the churn after them: epoch 1
	// and the post-arrival epoch keep answering from their own station
	// sets — including for the long-departed newcomer.
	i, _ := pinned.HeardBy(probe)
	j, _ := arrived.HeardBy(probe)
	k, _ := snap.HeardBy(probe)
	fmt.Printf("\npinned epoch %d answers s%d, pinned epoch %d answers s%d, live epoch %d answers s%d\n",
		pinned.Epoch(), i, arrived.Epoch(), j, snap.Epoch(), k)

	// The epoch-aware resolver gives the same pinning per call: a batch
	// is answered entirely from the epoch current when it starts.
	r, err := sinrdiag.NewDynamicResolver(dyn)
	if err != nil {
		log.Fatal(err)
	}
	stats := r.Stats()
	fmt.Printf("dynamic resolver: kind=%v epoch=%d stations=%d spatial index=%v\n",
		stats.Kind, stats.Epoch, stats.Stations, stats.SpatialIndex)
}
