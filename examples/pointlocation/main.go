// Point location: the Theorem 3 workflow end to end. Builds the
// combined data structure DS over a random deployment, answers
// approximate queries in O(log n), resolves the eps-fraction of
// uncertain answers exactly, and checks the three guarantees.
package main

import (
	"fmt"
	"log"
	"math/rand"

	sinrdiag "repro"
)

func main() {
	const (
		nStations = 48
		eps       = 0.1
		beta      = 3
		noise     = 0.01
	)
	rng := rand.New(rand.NewSource(7))
	stations := make([]sinrdiag.Point, nStations)
	for i := range stations {
		stations[i] = sinrdiag.Pt(rng.Float64()*10-5, rng.Float64()*10-5)
	}
	net, err := sinrdiag.NewUniform(stations, noise, beta)
	if err != nil {
		log.Fatal(err)
	}

	// Build DS: one gamma-grid QDS per station plus a nearest-station
	// index. Size O(n/eps), preprocessing O(n^3/eps), queries O(log n).
	loc, err := net.BuildLocator(eps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DS built: %d stations, eps=%v, %d uncertain cells total\n",
		nStations, eps, loc.NumUncertainCells())

	// Answer queries. Locate is the O(log n) approximate answer;
	// LocateExact spends one extra O(n) SINR evaluation only when the
	// point falls in an uncertainty ring H_i^?.
	var plus, minus, ring int
	for k := 0; k < 200000; k++ {
		p := sinrdiag.Pt(rng.Float64()*12-6, rng.Float64()*12-6)
		switch loc.Locate(p).Kind {
		case sinrdiag.Reception:
			plus++
		case sinrdiag.NoReception:
			minus++
		default:
			ring++
		}
	}
	fmt.Printf("200000 queries: H+ %d, H- %d, H? %d (ring fraction %.5f)\n",
		plus, minus, ring, float64(ring)/200000)

	// Guarantee check on a sample: H+ answers are always right, H-
	// answers are always right, and LocateExact matches a full scan.
	mismatch := 0
	for k := 0; k < 20000; k++ {
		p := sinrdiag.Pt(rng.Float64()*12-6, rng.Float64()*12-6)
		exact := loc.LocateExact(p)
		naive := net.NaiveLocate(p)
		if exact.Kind != naive.Kind ||
			(exact.Kind == sinrdiag.Reception && exact.Station != naive.Station) {
			mismatch++
		}
	}
	fmt.Printf("cross-check vs naive scan: %d mismatches in 20000\n", mismatch)

	// Inspect one per-station structure.
	q := loc.QDSFor(0)
	fmt.Printf("QDS for station 0: gamma=%.5f, |T?|=%d over %d columns, ring area %.5f\n",
		q.Gamma(), q.NumUncertainCells(), q.NumColumns(), q.UncertainArea())
}
