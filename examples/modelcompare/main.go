// Model comparison: the Figures 2-4 story. Replays the paper's
// UDG-vs-SINR scenarios (cumulative interference false positive, the
// four-step transmitter progression) and quantifies how often the two
// models disagree over a whole deployment.
package main

import (
	"fmt"
	"log"

	"repro/internal/exp"
	"repro/internal/geom"
	"repro/internal/raster"
	"repro/internal/udg"
)

func main() {
	// Figure 2: cumulative interference. UDG sees no interferer within
	// range and reports reception; SINR adds up the three out-of-range
	// stations and refuses.
	m, n, p, err := exp.Fig2Scenario()
	if err != nil {
		log.Fatal(err)
	}
	gi, gok := m.HeardBy(p)
	si, sok := n.HeardBy(p)
	fmt.Printf("Figure 2 at p=%v: UDG hears %s, SINR hears %s (SINR(s1,p)=%.3f < beta=%.1f)\n",
		p, name(gi, gok), name(si, sok), n.SINR(0, p), n.Beta())
	v, err := udg.Compare(m, n, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("verdict:", v)

	// Figures 3-4: transmitters join one at a time.
	steps, err := exp.RunFig34()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nFigures 3-4 progression (receiver fixed):")
	for _, s := range steps {
		fmt.Printf("  step %d (%d active): UDG=%s SINR=%s\n",
			s.Step, len(s.Transmitting), idx(s.UDGStation), idx(s.SINRStation))
	}

	// Whole-plane disagreement: rasterize both models over the Figure 2
	// deployment and diff pixelwise.
	box := geom.NewBox(geom.Pt(-10, -10), geom.Pt(10, 10))
	rmU, err := raster.Render(m, box, 300, 300)
	if err != nil {
		log.Fatal(err)
	}
	rmS, err := raster.Render(n, box, 300, 300)
	if err != nil {
		log.Fatal(err)
	}
	d, err := raster.Diff(rmU, rmS)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npixelwise diff over %v (%d px):\n", box, d.Total)
	fmt.Printf("  agree %d | UDG-only (false pos) %d | SINR-only (false neg) %d | different station %d\n",
		d.Agree, d.OnlyA, d.OnlyB, d.BothMismatch)
	fmt.Printf("  disagreement fraction: %.4f\n", d.DisagreeFraction())
}

func name(i int, ok bool) string {
	if !ok {
		return "nobody"
	}
	return fmt.Sprintf("s%d", i+1)
}

func idx(i int) string {
	if i < 0 {
		return "-"
	}
	return fmt.Sprintf("s%d", i+1)
}
