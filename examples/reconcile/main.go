// Reconcile: declarative operation through the facade. The other
// examples drive the library imperatively; this one declares the
// desired state as a spec file and lets a Reconciler converge a
// Server to it — the embedded equivalent of `sinrserve -spec-dir`.
// Dropping the file creates the network, editing it reconciles along
// the cheap PATCH path (visible in the outcome counters), and
// removing it deletes the network with full cache eviction. The
// readback is byte-stable: GET /v1/networks/{name} returns exactly
// the canonical bytes the controller applied.
package main

import (
	"bytes"
	"context"
	_ "embed"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	sinrdiag "repro"
)

//go:embed specs/demo.json
var demoSpec []byte

func main() {
	// The spec directory is the entire desired state: one canonical
	// NetworkSpec per .json/.yaml/.yml file. A real deployment points
	// `sinrserve -spec-dir` at a checked-out config repo; here a temp
	// dir seeded with the committed example spec plays that role.
	dir, err := os.MkdirTemp("", "sinr-reconcile-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	writeSpec(dir, "demo.json", demoSpec)

	srv := sinrdiag.NewServer(sinrdiag.ServerOptions{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Passing the server's metrics registry surfaces the controller's
	// counters on the same /metrics exposition sinrserve exports; a
	// tight interval keeps the walkthrough snappy (the default is 2s).
	rec := sinrdiag.NewReconciler(srv, sinrdiag.ReconcilerOptions{
		Dir:      dir,
		Interval: 25 * time.Millisecond,
		Metrics:  srv.Metrics(),
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { rec.Run(ctx); close(done) }()

	// 1. Create: the controller lists the directory, sees a name with
	// no live generation and applies the spec. The readback bytes are
	// the canonical serialization of the file we dropped.
	body, version := waitForSpec(ts.URL, "demo", nil)
	fmt.Printf("created  version=%s stats=%s\n", version, summary(rec.Stats()))
	fmt.Printf("readback %s\n", body)
	fmt.Printf("query    near (3,0): %s\n", locate(ts.URL, 3.2, 0))

	// 2. Edit: parse the spec through the facade, append a station,
	// and write the file back atomically (tmp + rename, so the lister
	// never sees a half-written file). Station/power drift reconciles
	// along the dynamic PATCH path — the "patched" outcome — instead
	// of a rebuild.
	spec, err := sinrdiag.ParseNetworkSpec(demoSpec)
	if err != nil {
		log.Fatal(err)
	}
	spec.Stations = append(spec.Stations, sinrdiag.SpecStation{X: 8, Y: -2})
	canonical, err := spec.CanonicalJSON()
	if err != nil {
		log.Fatal(err)
	}
	writeSpec(dir, "demo.json", canonical)
	_, version = waitForSpec(ts.URL, "demo", canonical)
	stats := rec.Stats()
	fmt.Printf("edited   version=%s stats=%s\n", version, summary(stats))
	if stats.Outcomes["patched"] == 0 {
		log.Fatal("expected the edit to reconcile along the PATCH path")
	}
	fmt.Printf("query    near (8,-2): %s\n", locate(ts.URL, 7.8, -2))

	// 3. Remove: only deleting the file deletes the network (a file
	// that stops parsing would keep its last good spec serving). The
	// delete also evicts cached resolvers/schedules and unregisters
	// the per-network gauges.
	if err := os.Remove(filepath.Join(dir, "demo.json")); err != nil {
		log.Fatal(err)
	}
	for {
		resp, err := http.Get(ts.URL + "/v1/networks/demo")
		if err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("removed  stats=%s\n", summary(rec.Stats()))

	cancel()
	<-done
}

// writeSpec writes a spec file the way every producer should: to a
// dot-prefixed temp name the lister skips, then an atomic rename.
func writeSpec(dir, name string, data []byte) {
	tmp := filepath.Join(dir, "."+name+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		log.Fatal(err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		log.Fatal(err)
	}
}

// waitForSpec polls the byte-stable readback until the network exists
// and, when want is non-nil, until the served bytes equal it —
// convergence observed exactly the way an external client would.
func waitForSpec(base, name string, want []byte) (body []byte, version string) {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/networks/" + name)
		if err != nil {
			log.Fatal(err)
		}
		body, err = io.ReadAll(resp.Body)
		resp.Body.Close()
		if err == nil && resp.StatusCode == http.StatusOK &&
			(want == nil || bytes.Equal(bytes.TrimSpace(body), bytes.TrimSpace(want))) {
			return bytes.TrimSpace(body), resp.Header.Get("Sinr-Network-Version")
		}
		time.Sleep(10 * time.Millisecond)
	}
	log.Fatalf("network %q did not converge in time", name)
	return nil, ""
}

// locate sends one point through POST /v1/locate and reports which
// station (if any) is heard there.
func locate(base string, x, y float64) string {
	reqBody, err := json.Marshal(map[string]any{
		"network": "demo",
		"points":  []map[string]float64{{"x": x, "y": y}},
	})
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/locate", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Version uint64 `json:"version"`
		Results []struct {
			Station int `json:"station"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	if len(out.Results) != 1 {
		log.Fatalf("want 1 answer, got %d", len(out.Results))
	}
	if s := out.Results[0].Station; s >= 0 {
		return fmt.Sprintf("station %d heard (version %d)", s, out.Version)
	}
	return fmt.Sprintf("no station heard (version %d)", out.Version)
}

// summary renders the Stats fields the walkthrough cares about.
func summary(s sinrdiag.ReconcilerStats) string {
	return fmt.Sprintf("desired=%d adopted=%d created=%d patched=%d deleted=%d",
		s.Desired, s.Adopted,
		s.Outcomes["created"], s.Outcomes["patched"], s.Outcomes["deleted"])
}
