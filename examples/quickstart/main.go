// Quickstart: build a uniform power network, evaluate SINR, test
// reception, inspect a reception zone, and verify the paper's two
// structural guarantees (convexity and fatness) on it.
package main

import (
	"fmt"
	"log"
	"math/rand"

	sinrdiag "repro"
)

func main() {
	// A uniform power network <S, 1, N, beta>: five stations, ambient
	// noise 0.01, reception threshold beta = 3 (Section 2.2 of the
	// paper; beta > 1 puts us in the regime of all three theorems).
	stations := []sinrdiag.Point{
		sinrdiag.Pt(0, 0),
		sinrdiag.Pt(4, 1),
		sinrdiag.Pt(-2, 3),
		sinrdiag.Pt(1, -3.5),
		sinrdiag.Pt(-3, -2),
	}
	net, err := sinrdiag.NewUniform(stations, 0.01, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("network:", net)

	// Reception queries: SINR(s_i, p) >= beta means station i is heard
	// at p. For beta > 1 at most one station is heard anywhere.
	for _, p := range []sinrdiag.Point{
		sinrdiag.Pt(0.5, 0.2),
		sinrdiag.Pt(3.4, 0.8),
		sinrdiag.Pt(2, 2), // between stations: likely silence
	} {
		if i, ok := net.HeardBy(p); ok {
			fmt.Printf("at %v: station %d is heard (SINR %.2f)\n", p, i, net.SINR(i, p))
		} else {
			fmt.Printf("at %v: no station is heard\n", p)
		}
	}

	// Reception zones: radial extent, area, fatness.
	zone, err := net.Zone(0)
	if err != nil {
		log.Fatal(err)
	}
	area, err := zone.ApproxArea(256, 1e-6)
	if err != nil {
		log.Fatal(err)
	}
	phi, err := zone.MeasuredFatness(256, 1e-6)
	if err != nil {
		log.Fatal(err)
	}
	bound, err := sinrdiag.FatnessBound(net.Beta())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("zone 0: area %.4f, fatness %.3f (Theorem 4.2 bound %.3f)\n", area, phi, bound)

	// Theorem 1 in action: every line crosses the zone boundary at most
	// twice, and midpoints of in-zone pairs stay in the zone.
	report, err := net.CheckConvexity(0, 40, 40, 8, rand.New(rand.NewSource(1)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("convexity certificate:", report)
}
