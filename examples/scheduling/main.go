// Scheduling: link scheduling against the physical model — the
// application class the paper's introduction motivates. Generates a
// random set of sender-receiver links, schedules them greedily under
// both the SINR rule and the UDG/protocol rule, and compares slot
// counts and ordering heuristics.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/sched"
)

func main() {
	const (
		nLinks = 40
		side   = 18.0
		beta   = 2
		noise  = 0.0001
	)
	rng := rand.New(rand.NewSource(3))
	links := make([]sched.Link, nLinks)
	for i := range links {
		s := geom.Pt(rng.Float64()*side, rng.Float64()*side)
		theta := rng.Float64() * 2 * 3.141592653589793
		links[i] = sched.Link{Sender: s, Receiver: geom.PolarPoint(s, 0.5+rng.Float64(), theta)}
	}

	sinrProblem, err := sched.NewSINRProblem(links, noise, beta)
	if err != nil {
		log.Fatal(err)
	}
	protoProblem, err := sched.NewProtocolProblem(links, 1.5, 3)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d links in a %.0fx%.0f field, beta=%v, protocol radii 1.5/3\n\n",
		nLinks, side, side, float64(beta))
	fmt.Println("order        SINR slots  protocol slots")
	for _, o := range []struct {
		name  string
		order []int
	}{
		{"identity", nil},
		{"short-first", sched.ByLength(links, true)},
		{"long-first", sched.ByLength(links, false)},
	} {
		ss, err := sched.Greedy(sinrProblem, o.order)
		if err != nil {
			log.Fatal(err)
		}
		if err := ss.Validate(sinrProblem); err != nil {
			log.Fatal(err)
		}
		ps, err := sched.Greedy(protoProblem, o.order)
		if err != nil {
			log.Fatal(err)
		}
		if err := ps.Validate(protoProblem); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %10d  %14d\n", o.name, ss.NumSlots(), ps.NumSlots())
	}

	// Show one SINR slot in detail: concurrent links and their margins.
	best, err := sched.Greedy(sinrProblem, sched.ByLength(links, true))
	if err != nil {
		log.Fatal(err)
	}
	slot := best.Slots[0]
	fmt.Printf("\nslot 0 under SINR packs %d concurrent links:\n", len(slot))
	for _, li := range slot {
		l := links[li]
		fmt.Printf("  link %2d: %v -> %v (length %.2f)\n", li, l.Sender, l.Receiver, l.Length())
	}
}
