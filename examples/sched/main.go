// Sched: link scheduling against the physical model — the
// application class the paper's introduction motivates. Derives one
// link per station of a random deployment, schedules the links under
// both the SINR rule and the UDG/protocol rule with all three
// schedulers (greedy first-fit, length classes, greedy + local-search
// repair), validates every schedule, and then heals a schedule
// through RepairSchedule after stations churn — the same flow the
// sinrserve schedule endpoint runs on a PATCH delta.
package main

import (
	"fmt"
	"log"
	"math/rand"

	sinrdiag "repro"
)

func main() {
	const (
		nStations = 48
		side      = 20.0
		beta      = 2
		noise     = 0.0001
	)
	rng := rand.New(rand.NewSource(3))
	stations := make([]sinrdiag.Point, nStations)
	for i := range stations {
		stations[i] = sinrdiag.Pt(rng.Float64()*side, rng.Float64()*side)
	}

	// One derived link per station — deterministic in the station set,
	// so any party holding the same stations derives the same links.
	links := sinrdiag.DeriveLinks(stations, nil, 1)

	sinrProblem, err := sinrdiag.NewSINRScheduling(links, noise, beta)
	if err != nil {
		log.Fatal(err)
	}
	protoProblem, err := sinrdiag.NewProtocolScheduling(links, 1.5, 3)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d links derived from %d stations in a %.0fx%.0f field, beta=%v, protocol radii 1.5/3\n\n",
		len(links), nStations, side, side, float64(beta))
	fmt.Println("scheduler    SINR slots  protocol slots")
	order := sinrdiag.ByLength(links, true)
	for _, kind := range sinrdiag.SchedulerKinds() {
		ss, err := sinrdiag.BuildSchedule(kind, sinrProblem, order)
		if err != nil {
			log.Fatal(err)
		}
		if err := ss.Validate(sinrProblem); err != nil {
			log.Fatal(err)
		}
		ps, err := sinrdiag.BuildSchedule(kind, protoProblem, order)
		if err != nil {
			log.Fatal(err)
		}
		if err := ps.Validate(protoProblem); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %10d  %14d\n", kind, ss.NumSlots(), ps.NumSlots())
	}

	// Show one SINR slot in detail: concurrent links under the
	// physical model, packed by the incremental slot engine.
	best, err := sinrdiag.BuildSchedule(sinrdiag.SchedRepair, sinrProblem, order)
	if err != nil {
		log.Fatal(err)
	}
	slot := best.Slots[0]
	shown := len(slot)
	if shown > 6 {
		shown = 6
	}
	fmt.Printf("\nslot 0 under SINR packs %d concurrent links:\n", len(slot))
	for _, li := range slot[:shown] {
		l := links[li]
		fmt.Printf("  link %2d: %v -> %v (length %.2f)\n", li, l.Sender, l.Receiver, l.Length())
	}
	if len(slot) > shown {
		fmt.Printf("  ... and %d more\n", len(slot)-shown)
	}

	// Churn: six stations depart. Surviving stations keep bit-identical
	// derived links, so the old schedule repairs instead of restarting.
	survivors := sinrdiag.DeriveLinks(stations[:nStations-6], nil, 1)
	shrunk, err := sinrdiag.NewSINRScheduling(survivors, noise, beta)
	if err != nil {
		log.Fatal(err)
	}
	healed, stats, err := sinrdiag.RepairSchedule(shrunk, best, sinrdiag.DefaultSchedImprovePasses)
	if err != nil {
		log.Fatal(err)
	}
	if err := healed.Validate(shrunk); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter 6 departures, repair kept %d links in place, displaced %d, dropped %d stale, moved %d:\n",
		stats.Kept, stats.Displaced, stats.Dropped, stats.Moves)
	fmt.Printf("  %d links in %d slots (was %d links in %d slots)\n",
		healed.NumLinks(), healed.NumSlots(), best.NumLinks(), best.NumSlots())
}
