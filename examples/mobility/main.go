// Mobility: the dynamic-diagram story of Figure 1 and the paper's
// open-problems section. A station moves across the plane in steps;
// at each step the example rebuilds the diagram view, reports who the
// fixed receiver hears, and tracks how the mover's own zone area
// changes. Demonstrates that diagram-derived structures are cheap
// enough to refresh per step.
package main

import (
	"fmt"
	"log"

	sinrdiag "repro"
)

func main() {
	const (
		beta  = 2
		noise = 0.02
		steps = 9
	)
	receiver := sinrdiag.Pt(0, 0)
	fixed := []sinrdiag.Point{
		sinrdiag.Pt(1.5, 0),     // s2
		sinrdiag.Pt(-1.9, 2.53), // s3
	}

	fmt.Println("moving station s1 from (-5,0) toward (1,0); receiver at", receiver)
	fmt.Println("step  s1.x    heard@p  SINR(best)  area(H_s1)")
	for k := 0; k <= steps; k++ {
		x := -5 + 6*float64(k)/float64(steps)
		stations := append([]sinrdiag.Point{sinrdiag.Pt(x, 0)}, fixed...)
		net, err := sinrdiag.NewUniform(stations, noise, beta)
		if err != nil {
			log.Fatal(err)
		}

		heard := "-"
		best := 0.0
		for i := 0; i < net.NumStations(); i++ {
			if s := net.SINR(i, receiver); s > best {
				best = s
			}
		}
		if i, ok := net.HeardBy(receiver); ok {
			heard = fmt.Sprintf("s%d", i+1)
		}

		area := 0.0
		zone, err := net.Zone(0)
		if err != nil {
			log.Fatal(err)
		}
		if a, err := zone.ApproxArea(128, 1e-5); err == nil {
			area = a
		}
		fmt.Printf("%4d  %5.2f  %7s  %10.3f  %10.4f\n", k, x, heard, best, area)
	}

	// The silencing effect (Figure 1(C)): drop s3 at the final position
	// and watch the receiver recover reception.
	stations := append([]sinrdiag.Point{sinrdiag.Pt(-1, 0)}, fixed...)
	net, err := sinrdiag.NewUniform(stations, noise, beta)
	if err != nil {
		log.Fatal(err)
	}
	sub, err := net.Subnetwork([]int{0, 1})
	if err != nil {
		log.Fatal(err)
	}
	_, okAll := net.HeardBy(receiver)
	iSub, okSub := sub.HeardBy(receiver)
	fmt.Printf("\nwith s1 at (-1,0): all transmitting -> heard=%v; s3 silent -> heard=%v",
		okAll, okSub)
	if okSub {
		fmt.Printf(" (s%d)", iSub+1)
	}
	fmt.Println()
}
