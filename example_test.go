package sinrdiag_test

import (
	"context"
	"fmt"

	sinrdiag "repro"
)

// ExampleNewUniform builds the uniform power network of the paper's
// theorems and inspects its parameters.
func ExampleNewUniform() {
	net, err := sinrdiag.NewUniform([]sinrdiag.Point{
		{X: 0, Y: 0}, {X: 3, Y: 1}, {X: -1, Y: 2},
	}, 0.01, 3) // noise N = 0.01, threshold beta = 3
	if err != nil {
		panic(err)
	}
	fmt.Println(net)
	fmt.Println("uniform:", net.IsUniform(), "alpha:", net.Alpha())
	// Output:
	// Network{n=3 uniform N=0.01 beta=3 alpha=2}
	// uniform: true alpha: 2
}

// ExampleNetwork_HeardBy evaluates the SINR reception rule directly:
// close to station 0 its signal dominates; between stations nobody
// clears the beta = 3 threshold.
func ExampleNetwork_HeardBy() {
	net, err := sinrdiag.NewUniform([]sinrdiag.Point{
		{X: 0, Y: 0}, {X: 3, Y: 1}, {X: -1, Y: 2},
	}, 0.01, 3)
	if err != nil {
		panic(err)
	}
	if i, ok := net.HeardBy(sinrdiag.Pt(0.4, 0.2)); ok {
		fmt.Println("heard:", i)
	}
	if _, ok := net.HeardBy(sinrdiag.Pt(1.5, 0.5)); !ok {
		fmt.Println("dead zone between stations")
	}
	// Output:
	// heard: 0
	// dead zone between stations
}

// ExampleLocator_LocateBatch builds the Theorem 3 point-location
// structure — fanning the per-station constructions over one worker
// per CPU — and answers a batch of queries in one sharded call.
// Answers are identical to calling Locate point-by-point.
func ExampleLocator_LocateBatch() {
	net, err := sinrdiag.NewUniform([]sinrdiag.Point{
		{X: 0, Y: 0}, {X: 3, Y: 1}, {X: -1, Y: 2},
	}, 0.01, 3)
	if err != nil {
		panic(err)
	}
	loc, err := net.BuildLocator(0.1) // eps = 0.1
	if err != nil {
		panic(err)
	}
	queries := []sinrdiag.Point{
		{X: 0.1, Y: 0.1}, // deep inside station 0's zone
		{X: 3.1, Y: 1.1}, // deep inside station 1's zone
		{X: 1.5, Y: 0.5}, // between the zones
		{X: 25, Y: 25},   // far from everyone
	}
	for i, answer := range loc.LocateBatch(queries) {
		fmt.Printf("query %d: %v\n", i, answer.Kind)
	}
	// Output:
	// query 0: H+
	// query 1: H+
	// query 2: H-
	// query 3: H-
}

// ExampleNewResolver answers the same query through every backend of
// the pluggable Resolver API: the three SINR-exact backends agree
// point-for-point, while the graph-based UDG baseline follows its own
// reception model — here it reports a collision (another station sits
// inside its interference disk) where SINR still decodes station 0.
func ExampleNewResolver() {
	net, err := sinrdiag.NewUniform([]sinrdiag.Point{
		{X: 0, Y: 0}, {X: 3, Y: 1}, {X: -1, Y: 2},
	}, 0.01, 3)
	if err != nil {
		panic(err)
	}
	ctx := context.Background()
	p := sinrdiag.Pt(0.4, 0.2)
	for _, kind := range sinrdiag.ResolverKinds() {
		r, err := sinrdiag.NewResolver(kind, net,
			sinrdiag.WithEpsilon(0.1), sinrdiag.WithWorkers(1))
		if err != nil {
			panic(err)
		}
		answer := r.Resolve(ctx, p)
		fmt.Printf("%s: station %d (%v)\n", kind, sinrdiag.StationIndex(answer), answer.Kind)
	}
	// Output:
	// exact: station 0 (H+)
	// locator: station 0 (H+)
	// voronoi: station 0 (H+)
	// udg: station -1 (H-)
}

// ExampleNewDynamicNetwork mutates a live station set with deltas:
// each Apply produces a fresh immutable epoch snapshot, and snapshots
// held across later mutations keep answering from their own epoch's
// station set.
func ExampleNewDynamicNetwork() {
	net, err := sinrdiag.NewUniform([]sinrdiag.Point{
		{X: 0, Y: 0}, {X: 3, Y: 1}, {X: -1, Y: 2},
	}, 0.01, 3)
	if err != nil {
		panic(err)
	}
	// On a 3-station network one delta is already 1/3 churn — past the
	// default amortized-rebuild threshold — so raise it to keep this
	// tiny example on the incremental path (production-sized networks
	// stay incremental at the default).
	dyn, err := sinrdiag.NewDynamicNetwork(net, sinrdiag.WithRebuildFraction(1))
	if err != nil {
		panic(err)
	}
	before := dyn.Snapshot()

	// A new station arrives right next to the query point: it captures
	// the reception there from epoch 2 on.
	after, err := dyn.Apply(sinrdiag.DynamicDelta{
		Add: []sinrdiag.DynamicStation{{Pos: sinrdiag.Pt(0.5, 0.2)}},
	})
	if err != nil {
		panic(err)
	}

	p := sinrdiag.Pt(0.45, 0.2)
	i, _ := before.HeardBy(p)
	j, _ := after.HeardBy(p)
	fmt.Printf("epoch %d: station %d\n", before.Epoch(), i)
	fmt.Printf("epoch %d: station %d (%s apply, %d stations)\n",
		after.Epoch(), j, after.ApplyStats().Path, after.NumStations())
	// Output:
	// epoch 1: station 0
	// epoch 2: station 3 (incremental apply, 4 stations)
}
