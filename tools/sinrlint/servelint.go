package main

import (
	"fmt"
	"go/ast"
	"go/types"
)

// streamReadMethods are the body-consuming calls that mark a loop as
// a stream read loop: one that can spin for the connection's lifetime
// and therefore must consult the request context to die on
// disconnect or drain.
var streamReadMethods = map[string]bool{
	"Scan": true, "Decode": true, "ReadString": true, "ReadBytes": true,
}

// checkServe lints the request-path packages for handler-discipline
// violations: fresh contexts that orphan the request's cancellation,
// per-request map allocation, and stream read loops that never
// consult a context.
func checkServe(m *module, servePkgs []string) []diag {
	var diags []diag
	for _, rel := range servePkgs {
		p := m.byRel(rel)
		if p == nil || p.typesInfo == nil {
			continue
		}
		for _, f := range p.files {
			diags = append(diags, lintFileServe(m, p, f)...)
		}
	}
	return diags
}

func lintFileServe(m *module, p *pkg, f *ast.File) []diag {
	var diags []diag
	flag := func(n ast.Node, format string, args ...any) {
		pos := m.fset.Position(n.Pos())
		if m.suppressed(dirServeOK, pos.Filename, pos.Line) {
			return
		}
		diags = append(diags, diag{
			file: m.rel(pos.Filename), line: pos.Line, col: pos.Column, pass: "serve",
			msg: fmt.Sprintf(format, args...),
		})
	}

	ast.Inspect(f, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			// context.Background()/TODO() anywhere in a serve package:
			// request-path code must derive from r.Context() so
			// cancellation and drain propagate.
			if sel, ok := node.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok {
					if pn, ok := p.typesInfo.Uses[id].(*types.PkgName); ok &&
						pn.Imported().Path() == "context" &&
						(sel.Sel.Name == "Background" || sel.Sel.Name == "TODO") {
						flag(node, "context.%s orphans request cancellation; derive from r.Context() (//sinr:serve-ok <reason> if detachment is deliberate)", sel.Sel.Name)
					}
				}
			}
		case *ast.FuncDecl:
			if node.Body != nil && isHandlerSig(p, node.Type) {
				lintHandlerBody(p, node.Body, node.Name.Name, flag)
			}
		case *ast.FuncLit:
			if isHandlerSig(p, node.Type) {
				lintHandlerBody(p, node.Body, "handler literal", flag)
			}
		}
		return true
	})
	return diags
}

// isHandlerSig reports whether the function type is an HTTP handler:
// exactly (http.ResponseWriter, *http.Request) parameters.
func isHandlerSig(p *pkg, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	var types []ast.Expr
	for _, f := range ft.Params.List {
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			types = append(types, f.Type)
		}
	}
	if len(types) != 2 {
		return false
	}
	return typeIs(p, types[0], "net/http", "ResponseWriter") &&
		typeIsPtr(p, types[1], "net/http", "Request")
}

func typeIs(p *pkg, e ast.Expr, path, name string) bool {
	t := p.typesInfo.Types[e].Type
	if t == nil {
		return false
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == path
}

func typeIsPtr(p *pkg, e ast.Expr, path, name string) bool {
	t := p.typesInfo.Types[e].Type
	if t == nil {
		return false
	}
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == path
}

// lintHandlerBody applies the per-request rules inside one handler:
// no map creation (maps allocate and hash per request; the serve
// layer precomputes at registration time and pools scratch), and
// every stream read loop must consult a context.
func lintHandlerBody(p *pkg, body *ast.BlockStmt, name string, flag func(ast.Node, string, ...any)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			if id, ok := node.Fun.(*ast.Ident); ok && isBuiltin(p, id, "make") && len(node.Args) > 0 {
				if t := p.typesInfo.Types[node.Args[0]].Type; t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						flag(node, "per-request map allocation in %s (precompute at registration or pool the scratch)", name)
					}
				}
			}
		case *ast.CompositeLit:
			if t := p.typesInfo.Types[node].Type; t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					flag(node, "per-request map literal in %s (precompute at registration or pool the scratch)", name)
				}
			}
		case *ast.ForStmt:
			if isStreamReadLoop(node.Body, node.Cond) && !loopConsultsContext(p, node.Body, node.Cond) {
				flag(node, "stream read loop in %s never consults a context; a disconnected or drained client leaves it spinning", name)
			}
		case *ast.RangeStmt:
			// range loops terminate with their operand; channel ranges
			// end when the pipeline closes the channel, which the
			// pipeline's own context governs.
		}
		return true
	})
}

// isStreamReadLoop reports whether the loop condition or body calls a
// body-consuming read (Scan, Decode, ReadString, ReadBytes).
func isStreamReadLoop(body *ast.BlockStmt, cond ast.Expr) bool {
	found := false
	check := func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && streamReadMethods[sel.Sel.Name] {
				found = true
				return false
			}
		}
		return !found
	}
	if cond != nil {
		ast.Inspect(cond, check)
	}
	if !found {
		ast.Inspect(body, check)
	}
	return found
}

// loopConsultsContext reports whether any expression inside the loop
// has type context.Context (a ctx.Done() select, an r.Context() read,
// a ctx-taking call — any of them proves the loop observes
// cancellation).
func loopConsultsContext(p *pkg, body *ast.BlockStmt, cond ast.Expr) bool {
	found := false
	check := func(n ast.Node) bool {
		e, ok := n.(ast.Expr)
		if !ok {
			return !found
		}
		if t := p.typesInfo.Types[e].Type; t != nil {
			if n, ok := t.(*types.Named); ok {
				obj := n.Obj()
				if obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context" {
					found = true
					return false
				}
			}
		}
		return !found
	}
	ast.Inspect(body, check)
	if !found && cond != nil {
		ast.Inspect(cond, check)
	}
	return found
}
