package main

import (
	"fmt"
	"go/ast"
	"strings"
)

// Directive kinds. hotpath marks a function for the escape-gate; the
// other three acknowledge one specific violation each, with a
// mandatory reason that the report inventories.
const (
	dirHotpath  = "hotpath"
	dirAllocOK  = "alloc-ok"
	dirNondetOK = "nondeterministic-ok"
	dirServeOK  = "serve-ok"
)

// directive is one parsed //sinr: comment.
type directive struct {
	kind   string
	reason string
	file   string // absolute path
	line   int    // line the directive appears on
	target int    // line the directive suppresses (self for trailing, next for standalone)
	used   bool
}

// collectDirectives parses every //sinr: comment in the module. A
// trailing directive suppresses findings on its own line; a
// standalone directive suppresses findings on the line below it, so a
// suppression always sits visibly against the code it waives.
func (m *module) collectDirectives() error {
	for _, p := range m.pkgs {
		for _, f := range p.files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "//sinr:")
					if !ok {
						continue
					}
					pos := m.fset.Position(c.Pos())
					kind, reason, _ := strings.Cut(strings.TrimSpace(text), " ")
					reason = strings.TrimSpace(reason)
					switch kind {
					case dirHotpath:
						if reason != "" {
							return fmt.Errorf("%s:%d: //sinr:hotpath takes no argument", m.rel(pos.Filename), pos.Line)
						}
					case dirAllocOK, dirNondetOK, dirServeOK:
						if reason == "" {
							return fmt.Errorf("%s:%d: //sinr:%s requires a reason", m.rel(pos.Filename), pos.Line, kind)
						}
					default:
						return fmt.Errorf("%s:%d: unknown directive //sinr:%s", m.rel(pos.Filename), pos.Line, kind)
					}
					d := &directive{
						kind:   kind,
						reason: reason,
						file:   pos.Filename,
						line:   pos.Line,
						target: pos.Line,
					}
					if m.standalone(pos.Filename, pos.Line, pos.Column) {
						d.target = pos.Line + 1
					}
					m.directives = append(m.directives, d)
				}
			}
		}
	}
	return nil
}

// standalone reports whether only whitespace precedes column col on
// the given line — i.e. the comment owns the line rather than
// trailing code.
func (m *module) standalone(file string, line, col int) bool {
	src := m.src[file]
	// Walk back from the start of the comment to the line start.
	idx := 0
	for l := 1; l < line; l++ {
		nl := indexByte(src[idx:], '\n')
		if nl < 0 {
			return true
		}
		idx += nl + 1
	}
	for _, b := range src[idx : idx+col-1] {
		if b != ' ' && b != '\t' {
			return false
		}
	}
	return true
}

func indexByte(b []byte, c byte) int {
	for i, v := range b {
		if v == c {
			return i
		}
	}
	return -1
}

// suppressed consumes a directive of the given kind covering
// (file, line) if one exists, marking it used.
func (m *module) suppressed(kind, file string, line int) bool {
	for _, d := range m.directives {
		if d.kind == kind && d.file == file && d.target == line {
			d.used = true
			return true
		}
	}
	return false
}

// hotFunc is one //sinr:hotpath-annotated function.
type hotFunc struct {
	id        string // e.g. internal/core.(*Locator).Locate
	pkg       *pkg
	file      string // absolute path
	startLine int
	endLine   int
	decl      *ast.FuncDecl
}

// collectHotpath finds every function whose doc comment carries
// //sinr:hotpath, keyed by its qualified id.
func collectHotpath(m *module) map[string]*hotFunc {
	out := map[string]*hotFunc{}
	for _, p := range m.pkgs {
		for _, f := range p.files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				marked := false
				for _, c := range fd.Doc.List {
					if strings.TrimSpace(c.Text) == "//sinr:hotpath" {
						marked = true
						break
					}
				}
				if !marked {
					continue
				}
				start := m.fset.Position(fd.Pos())
				end := m.fset.Position(fd.End())
				out[funcID(p, fd)] = &hotFunc{
					id:        funcID(p, fd),
					pkg:       p,
					file:      start.Filename,
					startLine: start.Line,
					endLine:   end.Line,
					decl:      fd,
				}
			}
		}
	}
	return out
}

// funcID renders the qualified name used in api/hotlist.txt:
// relpath.Func, relpath.Recv.Method, or relpath.(*Recv).Method.
func funcID(p *pkg, fd *ast.FuncDecl) string {
	name := fd.Name.Name
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		name = recvString(fd.Recv.List[0].Type) + "." + name
	}
	return p.relPath + "." + name
}

// recvString renders a receiver type, dropping type parameters:
// *Tree -> (*Tree), Ball -> Ball.
func recvString(t ast.Expr) string {
	switch e := t.(type) {
	case *ast.StarExpr:
		return "(*" + recvString(e.X) + ")"
	case *ast.IndexExpr: // generic receiver T[P]
		return recvString(e.X)
	case *ast.IndexListExpr: // generic receiver T[P1, P2]
		return recvString(e.X)
	case *ast.Ident:
		return e.Name
	}
	return "?"
}
