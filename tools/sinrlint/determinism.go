package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// nondetTimeFuncs are the wall-clock reads and timer constructors that
// make output depend on when the code ran. time.Duration arithmetic
// and type conversions stay legal.
var nondetTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true, "Tick": true,
	"NewTimer": true, "NewTicker": true, "AfterFunc": true, "Sleep": true,
}

// seededRandFuncs are the math/rand package-level constructors that
// produce an explicitly seeded generator; every other package-level
// call draws from the global source and is nondeterministic (or, for
// v1 Seed, mutates global state).
var seededRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

// checkDeterminism lints the deterministic packages: map iteration
// that can leak ordering into results, wall-clock reads, and global
// math/rand draws.
func checkDeterminism(m *module, detPkgs []string) []diag {
	var diags []diag
	for _, rel := range detPkgs {
		p := m.byRel(rel)
		if p == nil || p.typesInfo == nil {
			continue
		}
		for _, f := range p.files {
			diags = append(diags, lintFileDeterminism(m, p, f)...)
		}
	}
	return diags
}

func lintFileDeterminism(m *module, p *pkg, f *ast.File) []diag {
	var diags []diag
	flag := func(n ast.Node, format string, args ...any) {
		pos := m.fset.Position(n.Pos())
		if m.suppressed(dirNondetOK, pos.Filename, pos.Line) {
			return
		}
		diags = append(diags, diag{
			file: m.rel(pos.Filename), line: pos.Line, col: pos.Column, pass: "determinism",
			msg: fmt.Sprintf(format, args...),
		})
	}

	ast.Inspect(f, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.RangeStmt:
			t := p.typesInfo.Types[node.X].Type
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if why := mapRangeOrderDependent(p, f, node); why != "" {
				flag(node, "map iteration order can reach the result: %s (sort the keys first, restructure, or //sinr:nondeterministic-ok <reason>)", why)
			}
		case *ast.CallExpr:
			sel, ok := node.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := p.typesInfo.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			switch path := pn.Imported().Path(); {
			case path == "time" && nondetTimeFuncs[sel.Sel.Name]:
				flag(node, "time.%s in a deterministic package (inject the clock or //sinr:nondeterministic-ok <reason>)", sel.Sel.Name)
			case strings.HasPrefix(path, "math/rand") && !seededRandFuncs[sel.Sel.Name]:
				flag(node, "global %s.%s draws from the shared unseeded source (thread a *rand.Rand or //sinr:nondeterministic-ok <reason>)", path, sel.Sel.Name)
			}
		}
		return true
	})
	return diags
}

// mapRangeOrderDependent reports why a map-range loop can leak
// iteration order into its results, or "" when every effect of the
// body is provably order-insensitive:
//
//   - writes confined to variables declared inside the body (or the
//     loop variables themselves) are per-iteration scratch;
//   - distinct-key map stores m[k] = v commute across iterations;
//   - integer accumulation (x++, x += n) commutes exactly — float
//     accumulation does not and stays flagged;
//   - append to an outer slice is admitted only when the function
//     sorts that slice after the loop (the collect-then-sort idiom);
//   - early exits (return, break, goto), channel operations, and
//     append-accumulation into a map (m[k] = append(m[k], ...)) all
//     observe encounter order and stay flagged.
//
// Calls are assumed not to mutate reachable state through their
// arguments; the suppression directive covers the exceptions.
func mapRangeOrderDependent(p *pkg, f *ast.File, rs *ast.RangeStmt) string {
	if rs.Tok == token.ASSIGN {
		return "the loop assigns its range variables to outer state, leaving an order-chosen element behind"
	}
	a := &orderAnalysis{p: p, rs: rs}
	a.stmts(rs.Body.List)
	if a.bad != "" {
		return a.bad
	}
	// Every appended-to outer slice must be sorted later in the same
	// function, after the loop.
	for _, target := range a.appendTargets {
		if !sortedAfter(p, f, rs, target) {
			return fmt.Sprintf("appends to %q, which is never sorted after the loop", target.Name)
		}
	}
	return ""
}

type orderAnalysis struct {
	p             *pkg
	rs            *ast.RangeStmt
	bad           string
	appendTargets []*ast.Ident
	// breakDepth counts enclosing for/switch constructs inside the map
	// range: a break at depth > 0 binds to the inner construct and is
	// ordinary control flow, not an order-chosen early exit.
	breakDepth int
}

func (a *orderAnalysis) fail(format string, args ...any) {
	if a.bad == "" {
		a.bad = fmt.Sprintf(format, args...)
	}
}

func (a *orderAnalysis) stmts(list []ast.Stmt) {
	for _, s := range list {
		a.stmt(s)
	}
}

func (a *orderAnalysis) stmt(s ast.Stmt) {
	if a.bad != "" {
		return
	}
	switch st := s.(type) {
	case *ast.AssignStmt:
		if st.Tok == token.DEFINE {
			return // declares body-locals
		}
		for i, lhs := range st.Lhs {
			a.assign(lhs, st, i)
		}
	case *ast.IncDecStmt:
		if !a.localRoot(st.X) && !a.intExpr(st.X) {
			a.fail("%s on a non-integer outer variable is order-sensitive", st.Tok)
		}
	case *ast.ExprStmt:
		call, ok := st.X.(*ast.CallExpr)
		if !ok {
			a.fail("statement observes iteration order")
			return
		}
		if id, ok := call.Fun.(*ast.Ident); ok && isBuiltin(a.p, id, "delete") {
			return // builtin delete commutes for distinct keys
		}
		// Other calls: assumed read-only with respect to outer state.
	case *ast.IfStmt:
		if st.Init != nil {
			a.stmt(st.Init)
		}
		a.stmts(st.Body.List)
		if st.Else != nil {
			a.stmt(st.Else)
		}
	case *ast.BlockStmt:
		a.stmts(st.List)
	case *ast.ForStmt:
		if st.Init != nil {
			a.stmt(st.Init)
		}
		if st.Post != nil {
			a.stmt(st.Post)
		}
		a.breakDepth++
		a.stmts(st.Body.List)
		a.breakDepth--
	case *ast.RangeStmt:
		a.breakDepth++
		a.stmts(st.Body.List)
		a.breakDepth--
	case *ast.SwitchStmt:
		a.breakDepth++
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				a.stmts(cc.Body)
			}
		}
		a.breakDepth--
	case *ast.TypeSwitchStmt:
		a.breakDepth++
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				a.stmts(cc.Body)
			}
		}
		a.breakDepth--
	case *ast.BranchStmt:
		switch {
		case st.Label != nil:
			// A labeled branch can target the map range itself;
			// resolving labels is not worth the complexity here.
			a.fail("labeled %s may exit the loop at an iteration-order-chosen element", st.Tok)
		case st.Tok == token.CONTINUE:
			// skips an iteration; commutes
		case st.Tok == token.BREAK && a.breakDepth > 0:
			// binds to a nested for/switch, not the map range
		case st.Tok == token.BREAK:
			a.fail("break exits the loop at an iteration-order-chosen element")
		default:
			a.fail("%s observes iteration order", st.Tok)
		}
	case *ast.ReturnStmt:
		a.fail("return exits the loop at an iteration-order-chosen element")
	case *ast.DeclStmt:
		// var/const declarations introduce body-locals
	case *ast.EmptyStmt:
	default:
		a.fail("statement observes iteration order")
	}
}

// assign classifies one LHS of a non-define assignment.
func (a *orderAnalysis) assign(lhs ast.Expr, st *ast.AssignStmt, i int) {
	if a.bad != "" {
		return
	}
	if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
		return
	}
	// m[k] = v: distinct-key stores commute; m[k] = append(m[k], ...)
	// accumulates in encounter order.
	if ix, ok := lhs.(*ast.IndexExpr); ok {
		if t := a.p.typesInfo.Types[ix.X].Type; t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				if i < len(st.Rhs) && appendsToSelf(st.Rhs[i], lhs) {
					a.fail("m[k] = append(m[k], ...) accumulates in iteration order")
				}
				return
			}
		}
	}
	if a.localRoot(lhs) {
		return
	}
	// Writes to outer state: only exact (integer) accumulation
	// commutes.
	switch st.Tok {
	case token.ADD_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		if a.intExpr(lhs) {
			return
		}
		a.fail("%s on outer non-integer %q does not commute across orders", st.Tok, exprText(lhs))
	case token.ASSIGN:
		if i < len(st.Rhs) {
			if call, ok := st.Rhs[i].(*ast.CallExpr); ok {
				if fn, ok := call.Fun.(*ast.Ident); ok && isBuiltin(a.p, fn, "append") && appendsToSelf(st.Rhs[i], lhs) {
					if id := rootIdent(lhs); id != nil {
						a.appendTargets = append(a.appendTargets, id)
						return
					}
				}
			}
		}
		a.fail("assignment to outer %q is iteration-order dependent", exprText(lhs))
	default:
		a.fail("%s on outer %q is iteration-order dependent", st.Tok, exprText(lhs))
	}
}

// appendsToSelf reports whether rhs is append(lhs, ...).
func appendsToSelf(rhs, lhs ast.Expr) bool {
	call, ok := rhs.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
		return false
	}
	return exprText(call.Args[0]) == exprText(lhs)
}

// localRoot reports whether the expression's base identifier is
// declared inside the loop body or is one of the loop variables.
func (a *orderAnalysis) localRoot(e ast.Expr) bool {
	id := rootIdent(e)
	if id == nil {
		return false
	}
	obj := a.p.typesInfo.Uses[id]
	if obj == nil {
		obj = a.p.typesInfo.Defs[id]
	}
	if obj == nil {
		return false
	}
	pos := obj.Pos()
	if a.rs.Body.Pos() <= pos && pos < a.rs.Body.End() {
		return true
	}
	// The loop key/value variables are per-iteration.
	for _, v := range []ast.Expr{a.rs.Key, a.rs.Value} {
		if v == nil {
			continue
		}
		if kid, ok := v.(*ast.Ident); ok && kid.Pos() == pos {
			return true
		}
	}
	return false
}

// intExpr reports whether the expression has (possibly named) integer
// type — the accumulations that commute exactly.
func (a *orderAnalysis) intExpr(e ast.Expr) bool {
	t := a.p.typesInfo.Types[e].Type
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// rootIdent unwraps selectors, indexes, stars and parens to the base
// identifier, or nil if the base is not an identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// sortedAfter reports whether ident target is passed to a sort call
// after the loop ends, anywhere later in the enclosing function.
func sortedAfter(p *pkg, f *ast.File, rs *ast.RangeStmt, target *ast.Ident) bool {
	obj := p.typesInfo.Uses[target]
	if obj == nil {
		obj = p.typesInfo.Defs[target]
	}
	found := false
	ast.Inspect(f, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		if !isSortCall(p, call) {
			return true
		}
		ast.Inspect(call, func(arg ast.Node) bool {
			if id, ok := arg.(*ast.Ident); ok && p.typesInfo.Uses[id] == obj {
				found = true
				return false
			}
			return !found
		})
		return !found
	})
	return found
}

// isSortCall recognizes the stdlib sorting entry points: sort.* and
// slices.Sort*.
func isSortCall(p *pkg, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := p.typesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return false
	}
	switch pn.Imported().Path() {
	case "sort":
		return true
	case "slices":
		return strings.HasPrefix(sel.Sel.Name, "Sort")
	}
	return false
}

// isBuiltin reports whether the identifier resolves to the named
// predeclared builtin (go/types records builtins in Uses as
// *types.Builtin, so a nil check alone misses them).
func isBuiltin(p *pkg, id *ast.Ident, name string) bool {
	if id.Name != name {
		return false
	}
	obj := p.typesInfo.Uses[id]
	if obj == nil {
		return true // no type info recorded; unshadowed builtin
	}
	_, ok := obj.(*types.Builtin)
	return ok
}

// exprText renders a simple expression for messages and equality.
func exprText(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprText(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprText(x.X) + "[" + exprText(x.Index) + "]"
	case *ast.StarExpr:
		return "*" + exprText(x.X)
	case *ast.ParenExpr:
		return "(" + exprText(x.X) + ")"
	case *ast.BasicLit:
		return x.Value
	case *ast.CallExpr:
		return exprText(x.Fun) + "(...)"
	}
	return "?"
}
