package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// listPkg is the subset of `go list -json` output sinrlint consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	Module     *struct{ Path string }
}

// pkg is one loaded module package: parsed files always, type
// information only for packages a type-aware pass covers.
type pkg struct {
	importPath string
	relPath    string // import path relative to the module root
	dir        string
	files      []*ast.File
	typesInfo  *types.Info // nil unless type-checked
}

// module is the loaded lint target.
type module struct {
	path       string // module path
	dir        string // absolute module directory
	fset       *token.FileSet
	pkgs       []*pkg
	src        map[string][]byte // absolute file path -> source
	directives []*directive
}

// rel maps an absolute file path back to a module-relative one for
// display.
func (m *module) rel(abs string) string {
	if r, err := filepath.Rel(m.dir, abs); err == nil && !strings.HasPrefix(r, "..") {
		return filepath.ToSlash(r)
	}
	return abs
}

// load enumerates the module's packages with `go list`, parses every
// non-test file, harvests //sinr: directives, and type-checks the
// packages the determinism and serve passes cover using the
// compiler's export data (go list -export) — go/ast + go/types with
// no loader dependency.
func load(cfg config) (*module, error) {
	absDir, err := filepath.Abs(cfg.dir)
	if err != nil {
		return nil, err
	}
	pkgs, err := goList(absDir, nil, cfg.patterns...)
	if err != nil {
		return nil, err
	}
	mod := &module{dir: absDir, fset: token.NewFileSet(), src: map[string][]byte{}}
	needTypes := map[string]bool{}
	for _, p := range append(append([]string(nil), cfg.detPkgs...), cfg.servePkgs...) {
		needTypes[p] = true
	}
	var typed []*pkg
	for _, lp := range pkgs {
		if lp.Standard || lp.Module == nil || len(lp.GoFiles) == 0 {
			continue
		}
		if mod.path == "" {
			mod.path = lp.Module.Path
		}
		p := &pkg{
			importPath: lp.ImportPath,
			relPath:    strings.TrimPrefix(strings.TrimPrefix(lp.ImportPath, lp.Module.Path), "/"),
			dir:        lp.Dir,
		}
		if p.relPath == "" {
			p.relPath = "." // the module root package
		}
		for _, name := range lp.GoFiles {
			abs := filepath.Join(lp.Dir, name)
			data, err := os.ReadFile(abs)
			if err != nil {
				return nil, err
			}
			mod.src[abs] = data
			f, err := parser.ParseFile(mod.fset, abs, data, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			p.files = append(p.files, f)
		}
		mod.pkgs = append(mod.pkgs, p)
		if needTypes[p.relPath] {
			typed = append(typed, p)
		}
	}
	if len(mod.pkgs) == 0 {
		return nil, fmt.Errorf("no module packages match %v", cfg.patterns)
	}
	if err := mod.collectDirectives(); err != nil {
		return nil, err
	}
	if len(typed) == 0 {
		return mod, nil
	}

	// One `go list -export -deps` run resolves export data for every
	// dependency of the type-checked set; the build cache makes this a
	// no-op when the tree is already compiled.
	var paths []string
	for _, p := range typed {
		paths = append(paths, p.importPath)
	}
	deps, err := goList(absDir, []string{"-export", "-deps"}, paths...)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, d := range deps {
		if d.Export != "" {
			exports[d.ImportPath] = d.Export
		}
	}
	lookup := func(path string) (io.ReadCloser, error) {
		e, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(e)
	}
	imp := importer.ForCompiler(mod.fset, "gc", lookup)
	for _, p := range typed {
		conf := types.Config{Importer: imp}
		info := &types.Info{
			Types: map[ast.Expr]types.TypeAndValue{},
			Uses:  map[*ast.Ident]types.Object{},
			Defs:  map[*ast.Ident]types.Object{},
		}
		if _, err := conf.Check(p.importPath, mod.fset, p.files, info); err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", p.importPath, err)
		}
		p.typesInfo = info
	}
	return mod, nil
}

// goList runs `go list -json` with the given extra flags and decodes
// the package stream.
func goList(dir string, extra []string, patterns ...string) ([]listPkg, error) {
	args := []string{"list", "-json=ImportPath,Dir,Export,GoFiles,Standard,Module"}
	args = append(args, extra...)
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// byRel returns the loaded package with the given module-relative
// import path, or nil.
func (m *module) byRel(rel string) *pkg {
	for _, p := range m.pkgs {
		if p.relPath == rel {
			return p
		}
	}
	return nil
}
