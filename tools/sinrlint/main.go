// Command sinrlint enforces the repo's two load-bearing static
// invariants — allocation-free hot paths and byte-identical
// determinism — plus the serving layer's handler discipline, at
// analysis time instead of after a benchmark or a flaky -verify run
// has already caught the regression.
//
// Three coordinated passes:
//
//   - escape-gate: functions annotated //sinr:hotpath are compiled
//     with -gcflags=-m=1 and any heap escape the compiler reports
//     inside them fails the run, making the bench-gate's 0-alloc rule
//     a static per-function guarantee. The annotation set is
//     cross-checked against api/hotlist.txt (benchmark -> function),
//     which a test pins to the CI bench-gate -hot regexp, so the two
//     tools cannot drift. Amortized warm-up allocations are
//     acknowledged line by line with //sinr:alloc-ok <reason>.
//
//   - determinism: in the deterministic packages (core, sched,
//     dynamic, resolve, shardindex, geom, kdtree) a range over a map
//     whose results can feed ordered output without an intervening
//     sort, any wall-clock read (time.Now, time.Since, ...), and any
//     unseeded global math/rand call are violations, suppressible
//     only by //sinr:nondeterministic-ok <reason>.
//
//   - serve-discipline: in internal/serve and internal/metrics,
//     handler-path constructs known to allocate or block — fresh
//     contexts that orphan cancellation, per-request map creation,
//     stream read loops that never consult the request context, fmt
//     on an annotated hot path — are violations, suppressible by
//     //sinr:serve-ok <reason>.
//
// Every suppression in effect is inventoried in the report, and a
// directive that no longer suppresses anything is itself an error, so
// the waiver list can only shrink by review.
//
// Usage:
//
//	go run ./tools/sinrlint ./...          # gate (CI runs this)
//	go run ./tools/sinrlint -escape=false ./internal/core
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

// config is the full run configuration; tests construct it directly
// to point the linter at testdata modules.
type config struct {
	dir       string   // module directory go list runs in
	patterns  []string // package patterns, e.g. ./...
	hotlist   string   // benchmark->function map file; "" disables the cross-check
	escape    bool     // run the compiler escape-gate
	detPkgs   []string // module-relative import paths under the determinism pass
	servePkgs []string // module-relative import paths under the serve-discipline pass
}

// defaultDetPkgs are the packages whose outputs must be byte-identical
// across runs: the deterministic schedulers, the epoch-snapshot
// machinery, and everything a resolver answer flows through.
var defaultDetPkgs = []string{
	"internal/core",
	"internal/sched",
	"internal/dynamic",
	"internal/resolve",
	"internal/shardindex",
	"internal/geom",
	"internal/kdtree",
	"internal/reconcile",
}

// defaultServePkgs are the request-path packages held to the handler
// discipline rules.
var defaultServePkgs = []string{
	"internal/serve",
	"internal/metrics",
	"internal/trace",
}

// diag is one finding, positioned at the offending source line.
type diag struct {
	file string // module-relative path
	line int
	col  int
	pass string // escape | determinism | serve | hotlist | directive
	msg  string
}

func (d diag) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.file, d.line, d.col, d.pass, d.msg)
}

func main() {
	hotlist := flag.String("hotlist", "api/hotlist.txt", "benchmark->function hot list for the escape-gate cross-check (empty disables)")
	escape := flag.Bool("escape", true, "run the -gcflags=-m escape-gate over //sinr:hotpath functions")
	det := flag.String("det-pkgs", strings.Join(defaultDetPkgs, ","), "comma-separated module-relative packages under the determinism pass")
	serve := flag.String("serve-pkgs", strings.Join(defaultServePkgs, ","), "comma-separated module-relative packages under the serve-discipline pass")
	dir := flag.String("C", ".", "module directory to lint")
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cfg := config{
		dir:       *dir,
		patterns:  patterns,
		hotlist:   *hotlist,
		escape:    *escape,
		detPkgs:   splitList(*det),
		servePkgs: splitList(*serve),
	}
	diags, report, err := run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sinrlint:", err)
		os.Exit(2)
	}
	fmt.Print(report)
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
		fmt.Fprintf(os.Stderr, "sinrlint: %d violation(s)\n", len(diags))
		os.Exit(1)
	}
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// run executes all passes and returns the sorted violations plus the
// human report (pass summary and suppression inventory).
func run(cfg config) ([]diag, string, error) {
	mod, err := load(cfg)
	if err != nil {
		return nil, "", err
	}

	var diags []diag
	diags = append(diags, checkDeterminism(mod, cfg.detPkgs)...)
	diags = append(diags, checkServe(mod, cfg.servePkgs)...)

	hot := collectHotpath(mod)
	diags = append(diags, checkHotpathStatic(mod, hot)...)
	if cfg.hotlist != "" {
		hd, err := checkHotlist(mod, hot, cfg.hotlist)
		if err != nil {
			return nil, "", err
		}
		diags = append(diags, hd...)
	}
	if cfg.escape {
		ed, err := checkEscapes(mod, hot)
		if err != nil {
			return nil, "", err
		}
		diags = append(diags, ed...)
	}

	// A directive that suppresses nothing is stale: it waives an
	// invariant that is no longer violated, and stale waivers are how
	// suppression lists rot. hotpath directives are declarations, not
	// suppressions, and are exempt.
	for _, d := range mod.directives {
		if d.kind != dirHotpath && !d.used {
			diags = append(diags, diag{
				file: mod.rel(d.file), line: d.line, col: 1, pass: "directive",
				msg: fmt.Sprintf("//sinr:%s suppresses nothing; delete it", d.kind),
			})
		}
	}

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.line != b.line {
			return a.line < b.line
		}
		if a.col != b.col {
			return a.col < b.col
		}
		return a.msg < b.msg
	})

	var rep strings.Builder
	var used []*directive
	for _, d := range mod.directives {
		if d.kind != dirHotpath && d.used {
			used = append(used, d)
		}
	}
	sort.Slice(used, func(i, j int) bool {
		if used[i].file != used[j].file {
			return used[i].file < used[j].file
		}
		return used[i].line < used[j].line
	})
	if len(used) > 0 {
		fmt.Fprintf(&rep, "sinrlint: %d suppression(s) in effect:\n", len(used))
		for _, d := range used {
			fmt.Fprintf(&rep, "  %s:%d: //sinr:%s %s\n", mod.rel(d.file), d.line, d.kind, d.reason)
		}
	}
	if len(diags) == 0 {
		fmt.Fprintf(&rep, "sinrlint: ok (%d packages, %d hotpath functions, %d suppressions)\n",
			len(mod.pkgs), len(hot), len(used))
	}
	return diags, rep.String(), nil
}
