package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestGolden runs the full linter over the seeded testdata module and
// compares every diagnostic and the suppression inventory against the
// golden file. Each analyzer has violations seeded in its package
// (det, srv, hot), so a pass that silently stops firing shows up as a
// golden diff, not a quiet green run.
func TestGolden(t *testing.T) {
	cfg := config{
		dir:       filepath.Join("testdata", "lintmod"),
		patterns:  []string{"./..."},
		hotlist:   "hotlist.txt",
		escape:    true,
		detPkgs:   []string{"det"},
		servePkgs: []string{"srv"},
	}
	diags, report, err := run(cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var sb strings.Builder
	for _, d := range diags {
		sb.WriteString(d.String())
		sb.WriteString("\n")
	}
	sb.WriteString(report)
	got := sb.String()

	golden := filepath.Join("testdata", "lintmod.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("golden mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestGoldenCoversEveryPass guards the golden file itself: if the
// seeded module stops producing findings for one of the passes, the
// golden test would still pass against a regenerated file, so pin the
// pass names we expect to see.
func TestGoldenCoversEveryPass(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "lintmod.golden"))
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	for _, pass := range []string{"[escape]", "[determinism]", "[serve]", "[hotlist]", "[directive]"} {
		if !strings.Contains(string(data), pass) {
			t.Errorf("golden file has no %s finding; the pass is untested", pass)
		}
	}
	for _, dir := range []string{"sinr:alloc-ok", "sinr:nondeterministic-ok", "sinr:serve-ok"} {
		if !strings.Contains(string(data), dir) {
			t.Errorf("golden file inventories no %s suppression", dir)
		}
	}
}

// TestMainModuleClean runs the linter over this repository itself:
// the tree must stay violation-free, so CI failures reproduce locally
// as a plain `go test`.
func TestMainModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the whole module; skipped in -short")
	}
	cfg := config{
		dir:       filepath.Join("..", ".."),
		patterns:  []string{"./..."},
		hotlist:   "api/hotlist.txt",
		escape:    true,
		detPkgs:   defaultDetPkgs,
		servePkgs: defaultServePkgs,
	}
	diags, _, err := run(cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestBadDirectives pins the directive parse errors: a missing
// reason and an unknown kind are hard errors, not silent no-ops.
func TestBadDirectives(t *testing.T) {
	cases := []struct {
		dir  string
		want string
	}{
		{"badmod-reason", "requires a reason"},
		{"badmod-unknown", "unknown directive"},
		{"badmod-hotarg", "takes no argument"},
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			cfg := config{
				dir:      filepath.Join("testdata", tc.dir),
				patterns: []string{"./..."},
			}
			_, _, err := run(cfg)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

// TestParseHotlist pins the hotlist file format.
func TestParseHotlist(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "hotlist.txt")
	if err := os.WriteFile(path, []byte("# comment\n\nBenchmarkA pkg.Func\nBenchmarkB pkg.(*T).M\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err := parseHotlist(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].bench != "BenchmarkA" || entries[1].fn != "pkg.(*T).M" {
		t.Fatalf("unexpected entries: %+v", entries)
	}
	if err := os.WriteFile(path, []byte("BenchmarkA pkg.Func extra\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := parseHotlist(path); err == nil {
		t.Fatal("malformed line accepted")
	}
}
