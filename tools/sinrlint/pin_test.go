package main

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestHotlistMatchesBenchGate pins api/hotlist.txt to the CI
// bench-gate -hot regexp, in both directions: every benchmark that
// owns a hot function must be runtime-gated for allocs/op, and every
// runtime-gated benchmark must own at least one statically-gated
// function. Together with sinrlint's own hotlist<->annotation
// cross-check this makes the escape-gate and the bench-gate cover the
// same function set by construction.
func TestHotlistMatchesBenchGate(t *testing.T) {
	entries, err := parseHotlist(filepath.Join("..", "..", "api", "hotlist.txt"))
	if err != nil {
		t.Fatal(err)
	}
	listed := map[string]bool{}
	for _, e := range entries {
		listed[e.bench] = true
	}

	data, err := os.ReadFile(filepath.Join("..", "..", ".github", "workflows", "ci.yml"))
	if err != nil {
		t.Fatal(err)
	}
	hotRe := regexp.MustCompile(`-hot '([^']+)'`)
	matches := hotRe.FindAllStringSubmatch(string(data), -1)
	if len(matches) == 0 {
		t.Fatal("ci.yml has no -hot '<regexp>' bench-gate argument")
	}
	gated := map[string]bool{}
	for _, m := range matches {
		if m[1] != matches[0][1] {
			t.Fatalf("ci.yml -hot regexps disagree: %q vs %q", matches[0][1], m[1])
		}
	}
	for _, alt := range strings.Split(matches[0][1], "|") {
		gated[strings.TrimSuffix(alt, "/")] = true
	}

	for b := range listed {
		if !gated[b] {
			t.Errorf("%s owns hot functions in api/hotlist.txt but is missing from the ci.yml bench-gate -hot regexp", b)
		}
	}
	for b := range gated {
		if !listed[b] {
			t.Errorf("%s is runtime-gated in ci.yml but owns no function in api/hotlist.txt", b)
		}
	}
}
