package main

import (
	"bufio"
	"bytes"
	"fmt"
	"go/ast"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// checkHotlist cross-checks the //sinr:hotpath annotation set against
// the bench-gate hot list: every function the 0-alloc benchmarks
// drive must be annotated, and every annotation must be owned by a
// benchmark, so neither tool can drift from the other.
func checkHotlist(m *module, hot map[string]*hotFunc, path string) ([]diag, error) {
	if !filepath.IsAbs(path) {
		path = filepath.Join(m.dir, path)
	}
	entries, err := parseHotlist(path)
	if err != nil {
		return nil, err
	}
	listed := map[string]string{} // func id -> first benchmark claiming it
	for _, e := range entries {
		if _, ok := listed[e.fn]; !ok {
			listed[e.fn] = e.bench
		}
	}
	var diags []diag
	rel := m.rel(path)
	for fn, bench := range listed {
		if _, ok := hot[fn]; !ok {
			diags = append(diags, diag{
				file: rel, line: hotlistLine(entries, fn), col: 1, pass: "hotlist",
				msg: fmt.Sprintf("%s is on the %s 0-alloc hot list but carries no //sinr:hotpath annotation (or does not exist)", fn, bench),
			})
		}
	}
	for id, hf := range hot {
		if _, ok := listed[id]; !ok {
			diags = append(diags, diag{
				file: m.rel(hf.file), line: hf.startLine, col: 1, pass: "hotlist",
				msg: fmt.Sprintf("//sinr:hotpath function %s is not owned by any benchmark in %s", id, rel),
			})
		}
	}
	return diags, nil
}

// hotlistEntry is one "benchmark function" line of api/hotlist.txt.
type hotlistEntry struct {
	bench string
	fn    string
	line  int
}

func parseHotlist(path string) ([]hotlistEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading hotlist: %w", err)
	}
	var out []hotlistEntry
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s:%d: want \"Benchmark function\", got %q", path, i+1, line)
		}
		out = append(out, hotlistEntry{bench: fields[0], fn: fields[1], line: i + 1})
	}
	return out, nil
}

func hotlistLine(entries []hotlistEntry, fn string) int {
	for _, e := range entries {
		if e.fn == fn {
			return e.line
		}
	}
	return 1
}

// checkHotpathStatic flags fmt calls inside annotated functions: a
// fmt call boxes its arguments, so it cannot appear on a hot path
// even before the compiler confirms the escape.
func checkHotpathStatic(m *module, hot map[string]*hotFunc) []diag {
	var diags []diag
	for _, hf := range hot {
		fmtName := importName(fileOf(m, hf), "fmt")
		if fmtName == "" {
			continue
		}
		ast.Inspect(hf.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == fmtName && id.Obj == nil {
				pos := m.fset.Position(call.Pos())
				if !m.suppressed(dirAllocOK, pos.Filename, pos.Line) {
					diags = append(diags, diag{
						file: m.rel(pos.Filename), line: pos.Line, col: pos.Column, pass: "escape",
						msg: fmt.Sprintf("fmt.%s in //sinr:hotpath function %s boxes its arguments (//sinr:alloc-ok <reason> to waive a cold branch)", sel.Sel.Name, hf.id),
					})
				}
			}
			return true
		})
	}
	return diags
}

// fileOf returns the *ast.File containing the hot function.
func fileOf(m *module, hf *hotFunc) *ast.File {
	for _, f := range hf.pkg.files {
		if f.Pos() <= hf.decl.Pos() && hf.decl.Pos() < f.End() {
			return f
		}
	}
	return nil
}

// importName returns the name the file refers to importPath by, or ""
// if the file does not import it.
func importName(f *ast.File, importPath string) string {
	if f == nil {
		return ""
	}
	for _, imp := range f.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || p != importPath {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "_" || imp.Name.Name == "." {
				return ""
			}
			return imp.Name.Name
		}
		if i := strings.LastIndex(p, "/"); i >= 0 {
			p = p[i+1:]
		}
		return p
	}
	return ""
}

// escapeLine matches one compiler diagnostic: path:line:col: message.
var escapeLine = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

// checkEscapes compiles every package containing a //sinr:hotpath
// function with -gcflags=-m=1 and fails on any heap escape the
// compiler reports inside an annotated function's body. The compiler
// replays cached diagnostics, so warm runs are cheap.
func checkEscapes(m *module, hot map[string]*hotFunc) ([]diag, error) {
	if len(hot) == 0 {
		return nil, nil
	}
	pkgSet := map[string]bool{}
	for _, hf := range hot {
		pkgSet[hf.pkg.importPath] = true
	}
	pkgs := make([]string, 0, len(pkgSet))
	for p := range pkgSet {
		pkgs = append(pkgs, p)
	}
	sort.Strings(pkgs)

	cmd := exec.Command("go", append([]string{"build", "-gcflags=-m=1"}, pkgs...)...)
	cmd.Dir = m.dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go build -gcflags=-m=1 failed: %v\n%s", err, stderr.String())
	}

	// Index annotated ranges by file for the diagnostic sweep.
	byFile := map[string][]*hotFunc{}
	for _, hf := range hot {
		byFile[hf.file] = append(byFile[hf.file], hf)
	}

	var diags []diag
	seen := map[string]bool{} // the compiler repeats lines for generic instantiations
	sc := bufio.NewScanner(&stderr)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		if seen[sc.Text()] {
			continue
		}
		seen[sc.Text()] = true
		match := escapeLine.FindStringSubmatch(sc.Text())
		if match == nil {
			continue
		}
		msg := match[4]
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		file := match[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(m.dir, file)
		}
		file = filepath.Clean(file)
		line, _ := strconv.Atoi(match[2])
		col, _ := strconv.Atoi(match[3])
		for _, hf := range byFile[file] {
			if line < hf.startLine || line > hf.endLine {
				continue
			}
			if !m.suppressed(dirAllocOK, file, line) {
				diags = append(diags, diag{
					file: m.rel(file), line: line, col: col, pass: "escape",
					msg: fmt.Sprintf("%s in //sinr:hotpath function %s (//sinr:alloc-ok <reason> to waive an amortized or cold-path allocation)", msg, hf.id),
				})
			}
			break
		}
	}
	return diags, sc.Err()
}
