// Package badmodunknown has a directive of an unknown kind.
package badmodunknown

// F returns its argument.
func F(a int) int {
	//sinr:fast-ok because speed
	return a
}
