module badmodunknown

go 1.24
