// Package srv seeds serve-discipline violations: per-request maps,
// orphaned contexts, and a context-blind stream read loop.
package srv

import (
	"bufio"
	"context"
	"net/http"
	"time"
)

// Handle allocates a map per request and builds one from a literal.
func Handle(w http.ResponseWriter, r *http.Request) {
	seen := make(map[string]bool)
	tags := map[string]string{"route": "handle"}
	_ = seen
	_ = tags
}

// Detached orphans the request's cancellation.
func Detached(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_ = ctx
}

// Stream reads the body forever without consulting any context.
func Stream(w http.ResponseWriter, r *http.Request) {
	sc := bufio.NewScanner(r.Body)
	for sc.Scan() {
		_ = sc.Text()
	}
}

// StreamCtx consults the request context each iteration: admitted.
func StreamCtx(w http.ResponseWriter, r *http.Request) {
	sc := bufio.NewScanner(r.Body)
	for sc.Scan() {
		select {
		case <-r.Context().Done():
			return
		default:
		}
		_ = sc.Text()
	}
}

// Waived detaches deliberately, with the reason on record.
func Waived(w http.ResponseWriter, r *http.Request) {
	ctx := context.Background() //sinr:serve-ok audit log write must outlive the request in this test
	_ = ctx
}
