// Package hot seeds escape-gate violations: a heap escape inside an
// annotated function, a fmt call on a hot path, an acknowledged
// amortized allocation, and an annotation no benchmark owns.
package hot

import "fmt"

// Escapes leaks a stack variable; the compiler moves it to the heap.
//
//sinr:hotpath
func Escapes(n int) *int {
	x := n
	return &x
}

// Grow reallocates only when capacity is exceeded; the alloc-ok
// directive acknowledges the amortized grow.
//
//sinr:hotpath
func Grow(buf []byte, n int) []byte {
	if cap(buf) < n {
		buf = make([]byte, n) //sinr:alloc-ok amortized grow for the test
	}
	return buf[:n]
}

// Printy calls fmt on a hot path: flagged statically, before the
// compiler even reports the boxed argument.
//
//sinr:hotpath
func Printy(v int) {
	fmt.Println(v)
}

// Orphan is annotated but owned by no benchmark in hotlist.txt.
//
//sinr:hotpath
func Orphan() int { return 1 }

// Clean is hot and allocation-free.
//
//sinr:hotpath
func Clean(a, b int) int {
	if a > b {
		return a
	}
	return b
}
