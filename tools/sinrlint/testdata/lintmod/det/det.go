// Package det seeds determinism violations and the benign patterns
// the analyzer must admit.
package det

import (
	"math/rand"
	"sort"
	"time"
)

// FirstKey leaks iteration order through an early return.
func FirstKey(m map[string]int) string {
	for k := range m {
		return k
	}
	return ""
}

// AppendNoSort accumulates keys in iteration order and never sorts.
func AppendNoSort(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// CollectThenSort is the admitted idiom: collect, then sort.
func CollectThenSort(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// MapAppend accumulates into a map value in encounter order.
func MapAppend(m map[int]int, by map[int][]int) {
	for k, v := range m {
		by[v] = append(by[v], k)
	}
}

// CountEvens is exact integer accumulation: admitted.
func CountEvens(m map[int]int) int {
	n := 0
	for _, v := range m {
		if v%2 == 0 {
			n++
		}
	}
	return n
}

// SumFloats accumulates floats, which does not commute.
func SumFloats(m map[int]float64) float64 {
	s := 0.0
	for _, v := range m {
		s += v
	}
	return s
}

// LastKey assigns the range variable to outer state.
func LastKey(m map[int]int) int {
	var k int
	for k = range m {
	}
	return k
}

// Stamp reads the wall clock.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// StampOK reads the wall clock with an acknowledged reason.
func StampOK() int64 {
	return time.Now().UnixNano() //sinr:nondeterministic-ok test telemetry waiver
}

// GlobalDraw uses the shared unseeded source.
func GlobalDraw() int {
	return rand.Intn(10)
}

// SeededDraw threads an explicit source: admitted.
func SeededDraw() int {
	r := rand.New(rand.NewSource(7))
	return r.Intn(10)
}

// Stale carries a directive that suppresses nothing.
func Stale(a int) int {
	//sinr:nondeterministic-ok nothing here violates anything
	return a + 1
}
