// Package badmodhotarg passes an argument to hotpath.
package badmodhotarg

// F returns its argument.
//
//sinr:hotpath because hot
func F(a int) int {
	return a
}
