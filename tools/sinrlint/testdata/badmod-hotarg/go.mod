module badmodhotarg

go 1.24
