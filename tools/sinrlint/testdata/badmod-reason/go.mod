module badmodreason

go 1.24
