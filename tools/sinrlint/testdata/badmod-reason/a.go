// Package badmodreason has a suppression with no reason.
package badmodreason

// F returns its argument.
func F(a int) int {
	//sinr:nondeterministic-ok
	return a
}
