package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// facadeSrc is a minimal stand-in facade package: two funcs, a type,
// a const, plus an unexported symbol that must never reach the
// baseline.
const facadeSrc = `package facade

type Widget struct{}

const MaxWidgets = 3

func NewWidget() *Widget { return nil }

func DynamicApply() {}

func internalHelper() {}
`

// writeFacade lays out a temp package dir and returns (dir, baseline
// path).
func writeFacade(t *testing.T) (string, string) {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "facade.go"), []byte(facadeSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir, filepath.Join(dir, "facade.txt")
}

// TestWriteThenCheckRoundTrips pins the happy path: -write produces a
// baseline the gate immediately accepts, covering exactly the
// exported symbols.
func TestWriteThenCheckRoundTrips(t *testing.T) {
	dir, baseline := writeFacade(t)
	if err := run(dir, baseline, true); err != nil {
		t.Fatalf("-write: %v", err)
	}
	data, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	want := "const MaxWidgets\nfunc DynamicApply\nfunc NewWidget\ntype Widget\n"
	if string(data) != want {
		t.Fatalf("baseline = %q, want %q", data, want)
	}
	if err := run(dir, baseline, false); err != nil {
		t.Fatalf("gate rejects its own -write output: %v", err)
	}
}

// TestRemovedSymbolFailsGate is the satellite regression case: a
// baseline symbol with no surviving declaration — an export removed
// without leaving a deprecated alias behind — must fail the gate.
func TestRemovedSymbolFailsGate(t *testing.T) {
	dir, baseline := writeFacade(t)
	if err := run(dir, baseline, true); err != nil {
		t.Fatal(err)
	}
	// Simulate the removal by deleting DynamicApply from the package
	// while the committed baseline still lists it.
	src := strings.Replace(facadeSrc, "func DynamicApply() {}\n", "", 1)
	if err := os.WriteFile(filepath.Join(dir, "facade.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(dir, baseline, false); err == nil {
		t.Fatal("gate passed with a baseline symbol removed and no alias left behind")
	}
}

// TestAddedSymbolFailsGate pins the other direction: new exports must
// be recorded in the baseline before the gate passes, so API growth
// stays a reviewed act.
func TestAddedSymbolFailsGate(t *testing.T) {
	dir, baseline := writeFacade(t)
	if err := run(dir, baseline, true); err != nil {
		t.Fatal(err)
	}
	src := facadeSrc + "\nfunc NewDynamicWidget() {}\n"
	if err := os.WriteFile(filepath.Join(dir, "facade.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(dir, baseline, false); err == nil {
		t.Fatal("gate passed with an unrecorded new export")
	}
}

// TestMissingBaselineFails pins the bootstrap error: checking against
// a baseline that was never written is an error, not a silent pass.
func TestMissingBaselineFails(t *testing.T) {
	dir, baseline := writeFacade(t)
	if err := run(dir, baseline, false); err == nil {
		t.Fatal("gate passed without a baseline file")
	}
}
