// Command apicheck is the facade API-compatibility gate: it lists the
// exported top-level symbols of the root sinrdiag package and compares
// them against the checked-in baseline api/facade.txt.
//
// The check fails when a baseline symbol is missing — removing an
// exported facade name without leaving a (possibly deprecated) alias
// behind breaks downstream code — and when a new exported symbol is
// not yet recorded, so API growth is a reviewed, explicit act:
//
//	go run ./tools/apicheck          # gate (CI runs this)
//	go run ./tools/apicheck -write   # regenerate the baseline
//
// The baseline is one "kind name" line per symbol (e.g. "func
// NewResolver", "type Locator", "const NoReception"), sorted, so API
// diffs read naturally in review.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"sort"
	"strings"
)

func main() {
	dir := flag.String("dir", ".", "directory of the facade package")
	baseline := flag.String("baseline", "api/facade.txt", "baseline symbol list")
	write := flag.Bool("write", false, "regenerate the baseline instead of checking")
	flag.Parse()

	if err := run(*dir, *baseline, *write); err != nil {
		fmt.Fprintln(os.Stderr, "apicheck:", err)
		os.Exit(1)
	}
}

func run(dir, baseline string, write bool) error {
	current, err := exportedSymbols(dir)
	if err != nil {
		return err
	}
	if write {
		out := strings.Join(current, "\n") + "\n"
		if err := os.WriteFile(baseline, []byte(out), 0o644); err != nil {
			return err
		}
		fmt.Printf("apicheck: wrote %s (%d symbols)\n", baseline, len(current))
		return nil
	}

	data, err := os.ReadFile(baseline)
	if err != nil {
		return fmt.Errorf("reading baseline (run with -write to create it): %w", err)
	}
	want := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		if line = strings.TrimSpace(line); line != "" {
			want[line] = true
		}
	}
	got := map[string]bool{}
	for _, s := range current {
		got[s] = true
	}

	var removed, added []string
	for s := range want {
		if !got[s] {
			removed = append(removed, s)
		}
	}
	for s := range got {
		if !want[s] {
			added = append(added, s)
		}
	}
	sort.Strings(removed)
	sort.Strings(added)

	if len(removed) > 0 {
		fmt.Fprintf(os.Stderr, "apicheck: %d exported facade symbol(s) removed without a deprecated alias:\n", len(removed))
		for _, s := range removed {
			fmt.Fprintf(os.Stderr, "  - %s\n", s)
		}
	}
	if len(added) > 0 {
		fmt.Fprintf(os.Stderr, "apicheck: %d new exported facade symbol(s) not in the baseline (run `go run ./tools/apicheck -write` and commit %s):\n", len(added), baseline)
		for _, s := range added {
			fmt.Fprintf(os.Stderr, "  + %s\n", s)
		}
	}
	if len(removed) > 0 || len(added) > 0 {
		return fmt.Errorf("facade API drifted from %s", baseline)
	}
	fmt.Printf("apicheck: facade API matches %s (%d symbols)\n", baseline, len(current))
	return nil
}

// exportedSymbols parses the non-test files of the package in dir and
// returns its exported top-level symbols as sorted "kind name" lines.
func exportedSymbols(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return nil, err
	}
	var syms []string
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					// Methods belong to their receiver type's API, and the
					// facade's types are aliases whose methods live in the
					// internal packages — only track package-level funcs.
					if d.Recv == nil && d.Name.IsExported() {
						syms = append(syms, "func "+d.Name.Name)
					}
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						switch sp := spec.(type) {
						case *ast.TypeSpec:
							if sp.Name.IsExported() {
								syms = append(syms, "type "+sp.Name.Name)
							}
						case *ast.ValueSpec:
							kind := "var"
							if d.Tok == token.CONST {
								kind = "const"
							}
							for _, name := range sp.Names {
								if name.IsExported() {
									syms = append(syms, kind+" "+name.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	sort.Strings(syms)
	return syms, nil
}
