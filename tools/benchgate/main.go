// Command benchgate is the CI benchmark-regression gate: it parses
// two `go test -bench` outputs (the PR head and its merge base),
// compares per-benchmark medians, and fails on
//
//   - a ns/op regression beyond -max-regress (default 20%) on any
//     benchmark present in both files, and
//   - any allocs/op increase — or, with -require-zero-allocs, any
//     nonzero allocs/op at head — on benchmarks matching the -hot
//     regexp (the locate hot path).
//
// Benchmarks new at head are reported but never fail the ns/op
// check (there is nothing to compare against); the allocs floor
// still applies to them. Benchmarks present at base but missing at
// head DO fail: deleting a gated benchmark must not bypass the gate.
//
// Usage:
//
//	go test -run xxx -bench ... -benchmem -count 6 > head.bench   # on the PR
//	go test -run xxx -bench ... -benchmem -count 6 > base.bench   # on the merge base
//	go run ./tools/benchgate -base base.bench -head head.bench
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// sample is the aggregated measurements of one benchmark name.
type sample struct {
	ns     []float64
	allocs []float64
}

func main() {
	base := flag.String("base", "", "bench output of the merge base")
	head := flag.String("head", "", "bench output of the PR head")
	maxRegress := flag.Float64("max-regress", 0.20, "maximum allowed ns/op regression (fraction)")
	hot := flag.String("hot", "BenchmarkQueryDS/|BenchmarkLocateScan|BenchmarkLocateNoIndex", "regexp of hot-path benchmarks held to the allocs/op rules")
	requireZero := flag.Bool("require-zero-allocs", true, "hot-path benchmarks must report 0 allocs/op at head")
	flag.Parse()

	if *head == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -head is required")
		os.Exit(2)
	}
	hotRe, err := regexp.Compile(*hot)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate: bad -hot regexp:", err)
		os.Exit(2)
	}
	headS, err := parse(*head)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	baseS := map[string]*sample{}
	if *base != "" {
		if baseS, err = parse(*base); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
	}

	names := make([]string, 0, len(headS))
	for name := range headS {
		names = append(names, name)
	}
	sort.Strings(names)

	violations := 0
	for _, name := range names {
		h := headS[name]
		hNs := median(h.ns)
		line := fmt.Sprintf("%-46s head %12.1f ns/op", name, hNs)
		if b, ok := baseS[name]; ok {
			bNs := median(b.ns)
			delta := (hNs - bNs) / bNs
			line += fmt.Sprintf("   base %12.1f ns/op   delta %+6.1f%%", bNs, 100*delta)
			if delta > *maxRegress {
				line += fmt.Sprintf("   FAIL (> %+.0f%%)", 100**maxRegress)
				violations++
			}
		} else {
			line += "   (new at head)"
		}
		if hotRe.MatchString(name) && len(h.allocs) > 0 {
			hAllocs := median(h.allocs)
			line += fmt.Sprintf("   %g allocs/op", hAllocs)
			if b, ok := baseS[name]; ok && len(b.allocs) > 0 && hAllocs > median(b.allocs) {
				line += fmt.Sprintf("   FAIL (allocs rose from %g)", median(b.allocs))
				violations++
			}
			if *requireZero && hAllocs > 0 {
				line += "   FAIL (hot path must not allocate)"
				violations++
			}
		}
		fmt.Println(line)
	}
	// A benchmark that existed at base but is gone at head is itself a
	// violation: deleting (or un-matching) a gated benchmark must not
	// silently bypass the gate.
	baseNames := make([]string, 0, len(baseS))
	for name := range baseS {
		baseNames = append(baseNames, name)
	}
	sort.Strings(baseNames)
	for _, name := range baseNames {
		if _, ok := headS[name]; !ok {
			fmt.Printf("%-46s FAIL (present at base, missing at head)\n", name)
			violations++
		}
	}
	if violations > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d violation(s)\n", violations)
		os.Exit(1)
	}
	fmt.Println("benchgate: no regressions")
}

// benchLine matches one `go test -bench` result line; the trailing
// measurement pairs ("123 ns/op", "0 allocs/op", ...) are parsed
// separately.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

// parse aggregates a bench output file per benchmark name (multiple
// -count runs append to the same sample).
func parse(path string) (map[string]*sample, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]*sample{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		s := out[m[1]]
		if s == nil {
			s = &sample{}
			out[m[1]] = s
		}
		fields := strings.Fields(m[2])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				s.ns = append(s.ns, v)
			case "allocs/op":
				s.allocs = append(s.allocs, v)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmark lines found", path)
	}
	return out, nil
}

// median returns the middle value (mean of the middle two for even
// counts); it is robust to the odd scheduling hiccup a mean is not.
func median(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}
