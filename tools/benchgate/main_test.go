package main

import (
	"os"
	"path/filepath"
	"testing"
)

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseAndMedian(t *testing.T) {
	dir := t.TempDir()
	p := write(t, dir, "b.bench", `
goos: linux
BenchmarkQueryDS/n=16-8     2000   110.0 ns/op   0 B/op   0 allocs/op
BenchmarkQueryDS/n=16-8     2000   120.0 ns/op   0 B/op   0 allocs/op
BenchmarkQueryDS/n=16-8     2000   300.0 ns/op   0 B/op   0 allocs/op
BenchmarkOther-8            1000   50.0 ns/op
PASS
`)
	s, err := parse(p)
	if err != nil {
		t.Fatal(err)
	}
	q := s["BenchmarkQueryDS/n=16"]
	if q == nil || len(q.ns) != 3 {
		t.Fatalf("parse lost runs: %+v", s)
	}
	if got := median(q.ns); got != 120 {
		t.Fatalf("median = %g, want 120 (outlier-robust)", got)
	}
	if got := median(q.allocs); got != 0 {
		t.Fatalf("allocs median = %g, want 0", got)
	}
	if s["BenchmarkOther"] == nil {
		t.Fatal("benchmark without -benchmem fields dropped")
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	dir := t.TempDir()
	p := write(t, dir, "empty.bench", "goos: linux\nPASS\n")
	if _, err := parse(p); err == nil {
		t.Fatal("empty bench file accepted")
	}
}

func TestMedianEven(t *testing.T) {
	if got := median([]float64{1, 2, 3, 100}); got != 2.5 {
		t.Fatalf("even median = %g, want 2.5", got)
	}
	if got := median(nil); got != 0 {
		t.Fatalf("empty median = %g, want 0", got)
	}
}

func TestMissingAtHeadFails(t *testing.T) {
	// Exercised through the parse+compare pieces: a base-only name must
	// be detectable. The main() wiring is covered by the CI dry run;
	// here we pin the parse side so the gate can see the deletion.
	dir := t.TempDir()
	base := write(t, dir, "base.bench", "BenchmarkGone-2  100  10.0 ns/op\n")
	head := write(t, dir, "head.bench", "BenchmarkKept-2  100  10.0 ns/op\n")
	b, err := parse(base)
	if err != nil {
		t.Fatal(err)
	}
	h, err := parse(head)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := h["BenchmarkGone"]; ok {
		t.Fatal("head should not contain the deleted benchmark")
	}
	if _, ok := b["BenchmarkGone"]; !ok {
		t.Fatal("base lost the benchmark")
	}
}
