package sinrdiag

// Benchmark harness: one benchmark per figure and theorem of the
// paper, as indexed in DESIGN.md and EXPERIMENTS.md. Run everything
// with
//
//	go test -bench=. -benchmem
//
// The benchmarks exercise the same code paths as the cmd/sinrbench
// experiment tables; here they measure throughput of the regeneration
// (per-op cost of reproducing each artifact).

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/diagram"
	"repro/internal/exp"
	"repro/internal/geom"
	"repro/internal/kdtree"
	"repro/internal/sched"
	"repro/internal/workload"
)

// benchNetwork builds a deterministic n-station uniform network.
func benchNetwork(b *testing.B, n int) *core.Network {
	b.Helper()
	gen := workload.NewGenerator(int64(90000 + n))
	pts, err := gen.UniformSeparated(n, geom.NewBox(geom.Pt(-5, -5), geom.Pt(5, 5)), 0.05)
	if err != nil {
		b.Fatal(err)
	}
	net, err := core.NewUniform(pts, 0.01, 3)
	if err != nil {
		b.Fatal(err)
	}
	return net
}

// BenchmarkFig1Reception regenerates the Figure 1 scenario outcomes
// (E1).
func BenchmarkFig1Reception(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := exp.Fig1Reception()
		if err != nil || !tbl.Pass {
			b.Fatalf("err=%v pass=%v", err, tbl != nil && tbl.Pass)
		}
	}
}

// BenchmarkFig2Cumulative regenerates the Figure 2 UDG false positive
// (E2).
func BenchmarkFig2Cumulative(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := exp.Fig2Cumulative()
		if err != nil || !tbl.Pass {
			b.Fatalf("err=%v", err)
		}
	}
}

// BenchmarkFig34StepSeries regenerates the Figures 3-4 progression
// (E3).
func BenchmarkFig34StepSeries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := exp.Fig34StepSeries()
		if err != nil || !tbl.Pass {
			b.Fatalf("err=%v", err)
		}
	}
}

// BenchmarkFig5NonConvex regenerates the Figure 5 non-convexity
// certificates (E4).
func BenchmarkFig5NonConvex(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := exp.Fig5NonConvex()
		if err != nil || !tbl.Pass {
			b.Fatalf("err=%v", err)
		}
	}
}

// BenchmarkConvexityValidation runs the Theorem 1 Sturm line test on a
// random network (E5): cost of one line-root count certificate.
func BenchmarkConvexityValidation(b *testing.B) {
	for _, n := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			net := benchNetwork(b, n)
			rng := rand.New(rand.NewSource(7))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				theta := rng.Float64() * 3.14159
				line := geom.Line{
					P: geom.Pt(rng.Float64()*8-4, rng.Float64()*8-4),
					D: geom.Pt(1, theta),
				}
				count, err := net.LineRootCount(0, line)
				if err != nil {
					b.Fatal(err)
				}
				if count > 2 {
					b.Fatalf("Theorem 1 violated: %d crossings", count)
				}
			}
		})
	}
}

// BenchmarkFatness measures the Theorem 2 fatness validation (E6):
// one full radial min/max measurement per op.
func BenchmarkFatness(b *testing.B) {
	for _, n := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			net := benchNetwork(b, n)
			z, err := net.Zone(0)
			if err != nil {
				b.Fatal(err)
			}
			bound, _ := core.FatnessBound(net.Beta())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				phi, err := z.MeasuredFatness(64, 1e-6)
				if err != nil {
					b.Fatal(err)
				}
				if phi > bound*(1+1e-6) {
					b.Fatalf("Theorem 2 violated: %v > %v", phi, bound)
				}
			}
		})
	}
}

// BenchmarkQDSBuild measures Theorem 3 preprocessing (E7): one full
// per-station structure build per op, across n and eps.
func BenchmarkQDSBuild(b *testing.B) {
	for _, n := range []int{4, 16, 64} {
		for _, eps := range []float64{0.2, 0.05} {
			b.Run(fmt.Sprintf("n=%d/eps=%.2f", n, eps), func(b *testing.B) {
				net := benchNetwork(b, n)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					q, err := net.BuildQDS(0, eps)
					if err != nil {
						b.Fatal(err)
					}
					_ = q.NumUncertainCells()
				}
			})
		}
	}
}

// BenchmarkQueryNaive / BenchmarkQueryVoronoi / BenchmarkQueryDS
// measure the three point-location algorithms (E8).
func BenchmarkQueryNaive(b *testing.B) {
	for _, n := range []int{4, 16, 64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			net := benchNetwork(b, n)
			gen := workload.NewGenerator(17)
			qs := gen.QueryPoints(1024, geom.NewBox(geom.Pt(-6, -6), geom.Pt(6, 6)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net.NaiveLocate(qs[i%len(qs)])
			}
		})
	}
}

func BenchmarkQueryVoronoi(b *testing.B) {
	for _, n := range []int{4, 16, 64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			net := benchNetwork(b, n)
			tree := kdtree.New(net.Stations())
			gen := workload.NewGenerator(17)
			qs := gen.QueryPoints(1024, geom.NewBox(geom.Pt(-6, -6), geom.Pt(6, 6)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net.VoronoiLocate(qs[i%len(qs)], tree)
			}
		})
	}
}

// benchLocators caches Theorem 3 structures across b.N re-runs (the
// n=256 build costs tens of seconds; rebuilding it for every
// benchmark iteration-count probe would dominate the suite).
var benchLocators = map[int]*core.Locator{}

func BenchmarkQueryDS(b *testing.B) {
	for _, n := range []int{4, 16, 64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			net := benchNetwork(b, n)
			loc := benchLocators[n]
			if loc == nil {
				var err error
				loc, err = net.BuildLocator(0.1)
				if err != nil {
					b.Fatal(err)
				}
				benchLocators[n] = loc
			}
			gen := workload.NewGenerator(17)
			qs := gen.QueryPoints(1024, geom.NewBox(geom.Pt(-6, -6), geom.Pt(6, 6)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				loc.Locate(qs[i%len(qs)])
			}
		})
	}
}

// BenchmarkLocateScan is the O(n) full-scan baseline of the locate
// hot path (E18): nearest station by linear scan, then that station's
// QDS classification. Compare against BenchmarkQueryDS (the indexed
// path on the identical locator and query mix) for the spatial-index
// speedup.
func BenchmarkLocateScan(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			net := benchNetwork(b, n)
			loc := benchLocators[n]
			if loc == nil {
				var err error
				loc, err = net.BuildLocator(0.1)
				if err != nil {
					b.Fatal(err)
				}
				benchLocators[n] = loc
			}
			gen := workload.NewGenerator(17)
			qs := gen.QueryPoints(1024, geom.NewBox(geom.Pt(-6, -6), geom.Pt(6, 6)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				loc.LocateScan(qs[i%len(qs)])
			}
		})
	}
}

// BenchmarkLocateNoIndex is the pre-index kd-tree-only path (a
// locator built with NoSpatialIndex), isolating what the sharded
// index adds on top of the nearest-station lookup. Small sizes only:
// the point is the per-query constant, not the build.
func BenchmarkLocateNoIndex(b *testing.B) {
	for _, n := range []int{16, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			net := benchNetwork(b, n)
			loc, err := net.BuildLocatorOpts(0.1, core.BuildOptions{NoSpatialIndex: true})
			if err != nil {
				b.Fatal(err)
			}
			gen := workload.NewGenerator(17)
			qs := gen.QueryPoints(1024, geom.NewBox(geom.Pt(-6, -6), geom.Pt(6, 6)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				loc.Locate(qs[i%len(qs)])
			}
		})
	}
}

// BenchmarkQueryDSBatch measures the batch query engine: one op is a
// full 1024-point LocateBatch sharded over the default worker pool.
// Compare ns/op against BenchmarkQueryDSBatchSerial (the same 1024
// queries answered point-by-point on one goroutine) for the
// concurrency speedup; on a k-core machine the batch path approaches
// k-fold throughput.
func BenchmarkQueryDSBatch(b *testing.B) {
	for _, n := range []int{4, 16, 64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			net := benchNetwork(b, n)
			loc := benchLocators[n]
			if loc == nil {
				var err error
				loc, err = net.BuildLocator(0.1)
				if err != nil {
					b.Fatal(err)
				}
				benchLocators[n] = loc
			}
			gen := workload.NewGenerator(17)
			qs := gen.QueryPoints(1024, geom.NewBox(geom.Pt(-6, -6), geom.Pt(6, 6)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				loc.LocateBatch(qs)
			}
			b.ReportMetric(float64(len(qs)), "queries/op")
		})
	}
}

// BenchmarkQueryDSBatchSerial is the single-goroutine baseline for
// BenchmarkQueryDSBatch: identical work, Workers: 1.
func BenchmarkQueryDSBatchSerial(b *testing.B) {
	for _, n := range []int{4, 16, 64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			net := benchNetwork(b, n)
			loc := benchLocators[n]
			if loc == nil {
				var err error
				loc, err = net.BuildLocator(0.1)
				if err != nil {
					b.Fatal(err)
				}
				benchLocators[n] = loc
			}
			gen := workload.NewGenerator(17)
			qs := gen.QueryPoints(1024, geom.NewBox(geom.Pt(-6, -6), geom.Pt(6, 6)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				loc.LocateBatchOpts(qs, core.BatchOptions{Workers: 1})
			}
			b.ReportMetric(float64(len(qs)), "queries/op")
		})
	}
}

// BenchmarkHeardByBatch measures the preprocessing-free batch path
// (brute-force SINR per point, sharded).
func BenchmarkHeardByBatch(b *testing.B) {
	for _, n := range []int{16, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			net := benchNetwork(b, n)
			gen := workload.NewGenerator(17)
			qs := gen.QueryPoints(1024, geom.NewBox(geom.Pt(-6, -6), geom.Pt(6, 6)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net.HeardByBatch(qs)
			}
			b.ReportMetric(float64(len(qs)), "queries/op")
		})
	}
}

// BenchmarkLocatorBuild measures the Theorem 3 full-network build —
// the O(n^3/eps) preprocessing the worker pool attacks — serial vs
// one-worker-per-CPU.
func BenchmarkLocatorBuild(b *testing.B) {
	for _, n := range []int{8, 24} {
		for _, mode := range []struct {
			name    string
			workers int
		}{{"serial", 1}, {"parallel", 0}} {
			b.Run(fmt.Sprintf("n=%d/%s", n, mode.name), func(b *testing.B) {
				net := benchNetwork(b, n)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					loc, err := net.BuildLocatorOpts(0.2, core.BuildOptions{Workers: mode.workers})
					if err != nil {
						b.Fatal(err)
					}
					_ = loc.NumUncertainCells()
				}
			})
		}
	}
}

// BenchmarkLocateStream pushes a sustained query stream through the
// ordered streaming engine (chunking, worker pool, in-order emit).
func BenchmarkLocateStream(b *testing.B) {
	net := benchNetwork(b, 16)
	loc, err := net.BuildLocator(0.1)
	if err != nil {
		b.Fatal(err)
	}
	gen := workload.NewGenerator(17)
	qs := gen.QueryPoints(4096, geom.NewBox(geom.Pt(-6, -6), geom.Pt(6, 6)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := make(chan geom.Point, 256)
		out := loc.LocateStream(context.Background(), in)
		go func() {
			for _, q := range qs {
				in <- q
			}
			close(in)
		}()
		got := 0
		for range out {
			got++
		}
		if got != len(qs) {
			b.Fatalf("stream dropped answers: %d/%d", got, len(qs))
		}
	}
	b.ReportMetric(float64(len(qs)), "queries/op")
}

// BenchmarkStarShape measures the Lemma 3.1 / Observation 2.2
// validation (E9).
func BenchmarkStarShape(b *testing.B) {
	net := benchNetwork(b, 16)
	rng := rand.New(rand.NewSource(9))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := net.StarShapeViolations(0, 4, 8, 8, rng)
		if err != nil {
			b.Fatal(err)
		}
		if v != 0 {
			b.Fatalf("star-shape violations: %d", v)
		}
	}
}

// BenchmarkSegmentTest measures the Section 5.1 segment-test primitive
// (E10): one Sturm-certified crossing count per op.
func BenchmarkSegmentTest(b *testing.B) {
	for _, n := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			net := benchNetwork(b, n)
			rng := rand.New(rand.NewSource(11))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				seg := geom.Seg(
					geom.Pt(rng.Float64()*8-4, rng.Float64()*8-4),
					geom.Pt(rng.Float64()*8-4, rng.Float64()*8-4),
				)
				if _, err := net.SegmentTest(0, seg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkThreeStationSturm measures the Section 3.2 quartic analysis
// (E10).
func BenchmarkThreeStationSturm(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s1 := geom.Pt(0.2+rng.Float64()*5, 1+rng.Float64()*5)
		s2 := geom.Pt(0.2+rng.Float64()*5, 1+rng.Float64()*5)
		rep, err := core.ThreeStationAnalysis(s1, s2)
		if err != nil {
			b.Fatal(err)
		}
		if rep.DistinctPos > 2 {
			b.Fatal("Lemma 3.3 violated")
		}
	}
}

// BenchmarkBRPTrace measures the boundary reconstruction trace (E11):
// one full boundary walk per op.
func BenchmarkBRPTrace(b *testing.B) {
	net := benchNetwork(b, 16)
	z, err := net.Zone(0)
	if err != nil {
		b.Fatal(err)
	}
	bounds, err := net.SampledBounds(0, 128)
	if err != nil {
		b.Fatal(err)
	}
	gamma := 0.1 * bounds.DeltaLower * bounds.DeltaLower / (core.GammaSafety * bounds.DeltaUpper)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := z.TraceBoundary(gamma, core.BRPOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) == 0 {
			b.Fatal("empty trace")
		}
	}
}

// BenchmarkBoundaryPoly measures construction of the degree-2n
// restricted boundary polynomial (the O(n^2) product/division path).
func BenchmarkBoundaryPoly(b *testing.B) {
	for _, n := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			net := benchNetwork(b, n)
			line := geom.Line{P: geom.Pt(-3, 0.2), D: geom.Pt(1, 0.1)}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := net.BoundaryPoly(0, line); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRenderFigure measures figure rasterization (the artifact
// regeneration path of cmd/sinrmap).
func BenchmarkRenderFigure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.RenderFigure("fig1a", 100, 100); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSampledBounds measures the convexity-certified bound
// computation that sizes the Theorem 3 grid (the E11 ablation's
// winning variant).
func BenchmarkSampledBounds(b *testing.B) {
	net := benchNetwork(b, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.SampledBounds(0, 128); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGeneralAlphaProbe measures the sampling-only convexity
// certificate used beyond alpha = 2 (experiment E12).
func BenchmarkGeneralAlphaProbe(b *testing.B) {
	net, err := core.NewNetwork(
		[]geom.Point{geom.Pt(0, 0), geom.Pt(2, 1), geom.Pt(-1, 2)},
		0.01, 2.5, core.WithAlpha(3))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(15))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := net.ProbeConvexity(0, 20, 8, rng)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Convex() {
			b.Fatal("unexpected violation")
		}
	}
}

// BenchmarkScheduling measures the E14 greedy scheduler on a 40-link
// instance under both models.
func BenchmarkScheduling(b *testing.B) {
	gen := workload.NewGenerator(99)
	box := geom.NewBox(geom.Pt(0, 0), geom.Pt(18, 18))
	senders := gen.UniformInBox(40, box)
	links := make([]sched.Link, len(senders))
	for i, s := range senders {
		links[i] = sched.Link{
			Sender:   s,
			Receiver: geom.PolarPoint(s, 0.5+gen.Float64(), gen.Float64()*6.28),
		}
	}
	sp, err := sched.NewSINRProblem(links, 0.0001, 2)
	if err != nil {
		b.Fatal(err)
	}
	order := sched.ByLength(links, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := sched.Greedy(sp, order)
		if err != nil {
			b.Fatal(err)
		}
		if s.NumSlots() == 0 {
			b.Fatal("empty schedule")
		}
	}
}

// BenchmarkDiagramBuild measures full-diagram measurement (per-zone
// polygonal geometry for every station).
func BenchmarkDiagramBuild(b *testing.B) {
	net := benchNetwork(b, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := diagram.Build(net, 64, 1e-5)
		if err != nil {
			b.Fatal(err)
		}
		if d.TotalArea() <= 0 {
			b.Fatal("empty diagram")
		}
	}
}

// BenchmarkCommunicationGraph measures the concurrent-transmission
// connectivity computation over the diagram.
func BenchmarkCommunicationGraph(b *testing.B) {
	net := benchNetwork(b, 64)
	d, err := diagram.Build(net, 32, 1e-4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		adj := d.CommunicationGraph()
		if len(adj) != 64 {
			b.Fatal("bad graph")
		}
	}
}
