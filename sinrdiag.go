// Package sinrdiag is a Go library reproducing "SINR Diagrams: Towards
// Algorithmically Usable SINR Models of Wireless Networks" (Avin,
// Emek, Kantor, Lotker, Peleg, Roditty — PODC 2009).
//
// It models wireless networks under the signal-to-interference-and-
// noise-ratio (SINR) rule, exposes their reception zones (the SINR
// diagram), certifies the paper's structural results — convexity
// (Theorem 1) and constant fatness (Theorem 2) of the zones of uniform
// power networks with path-loss 2 — and builds the approximate
// point-location data structure of Theorem 3: size O(n/eps), built in
// O(n^3/eps), answering queries in O(log n) with an eps-area
// uncertainty ring per zone.
//
// # Quick start
//
//	net, err := sinrdiag.NewUniform([]sinrdiag.Point{
//		{X: 0, Y: 0}, {X: 3, Y: 1}, {X: -1, Y: 2},
//	}, 0.01, 3) // noise N = 0.01, threshold beta = 3
//	if err != nil { ... }
//	heard, ok := net.HeardBy(sinrdiag.Pt(0.4, 0.2))
//
//	loc, err := net.BuildLocator(0.1) // Theorem 3 structure, eps = 0.1
//	answer := loc.Locate(sinrdiag.Pt(0.4, 0.2)) // H+ / H- / H?
//
// BuildLocator fans the per-station constructions out over one worker
// per CPU (tune with BuildLocatorOpts), and query traffic can be
// answered in bulk with LocateBatch / HeardByBatch or streamed through
// LocateStream; every concurrent path returns answers identical to the
// serial one. For serving query traffic as a long-running process, the
// sinrserve binary (internal/serve) exposes the same engine over HTTP
// with named-network registration, atomic hot swap and a single-flight
// locator cache.
//
// # The no-station answer, in both shapes
//
// "No station is heard at p" surfaces in two equivalent shapes,
// depending on the API's return style:
//
//   - Single-point comma-ok APIs — Network.HeardBy, Locator.HeardBy —
//     return (0, false). The index is meaningless when ok is false;
//     always branch on ok, never on the index.
//   - Batch, raster and serving APIs — HeardByBatch, HeardByBatchInto,
//     raster pixels, the sinrserve wire format — have no second return
//     per element, so they write the sentinel index NoStationHeard (-1)
//     instead. Any index >= 0 in a batch answer is a heard station.
//
// The two are interconvertible: comma-ok (i, true) corresponds to
// batch answer i, and (_, false) to NoStationHeard. Batch answers never
// use (0, false)'s ambiguous zero, so -1 is safe to compare directly.
//
// The facade re-exports the library's core types; the full API
// (geometry kit, polynomial/Sturm machinery, Voronoi diagrams, UDG
// baselines, rasterization, experiment harness) lives in the internal
// packages and is exercised by the binaries under cmd/ and the
// examples under examples/.
package sinrdiag

import (
	"repro/internal/core"
	"repro/internal/diagram"
	"repro/internal/geom"
)

// Point is a point in the Euclidean plane.
type Point = geom.Point

// Pt is shorthand for Point{X: x, Y: y}.
func Pt(x, y float64) Point { return geom.Pt(x, y) }

// Network is a wireless network <S, psi, N, beta> under the SINR rule.
type Network = core.Network

// Option customizes network construction (powers, path-loss alpha).
type Option = core.Option

// Zone is a handle on one station's reception zone H_i.
type Zone = core.Zone

// ZoneBounds packages delta/Delta bounds for a zone (Theorem 4.1 and
// the sampled refinements).
type ZoneBounds = core.ZoneBounds

// ConvexityReport summarizes a convexity certification run.
type ConvexityReport = core.ConvexityReport

// ThreeStationReport carries the Section 3.2 Sturm analysis artifacts.
type ThreeStationReport = core.ThreeStationReport

// QDS is the per-zone approximate point-location structure of
// Section 5.1.
type QDS = core.QDS

// Locator is the combined Theorem 3 point-location data structure.
// It is immutable once built: Locate, LocateBatch and LocateStream are
// safe for concurrent use from any number of goroutines.
type Locator = core.Locator

// BuildOptions tunes locator construction (worker count of the
// parallel per-station build; see Network.BuildLocatorOpts).
type BuildOptions = core.BuildOptions

// BatchOptions tunes batch query execution (worker count the query
// slice is sharded over; see Locator.LocateBatchOpts).
type BatchOptions = core.BatchOptions

// Location is a point-location answer.
type Location = core.Location

// LocationKind distinguishes H+, H- and H? answers.
type LocationKind = core.LocationKind

// CellType classifies grid cells (T+, T-, T?).
type CellType = core.CellType

// Grid is the gamma-spaced grid of Section 5.1.
type Grid = core.Grid

// Cell identifies one grid cell.
type Cell = core.Cell

// Location kinds and cell types, re-exported.
const (
	NoReception = core.NoReception
	Reception   = core.Reception
	Uncertain   = core.Uncertain

	TPlus     = core.TPlus
	TMinus    = core.TMinus
	TQuestion = core.TQuestion
)

// DefaultAlpha is the textbook path-loss exponent (2), the setting of
// the paper's theorems.
const DefaultAlpha = core.DefaultAlpha

// NoStationHeard is the sentinel index the batch primitives
// (Network.HeardByBatch, Locator.HeardByBatchInto) and the serving
// wire format report for points where no station is heard. It is the
// batch-shaped equivalent of the comma-ok (0, false) answer of
// Network.HeardBy — see the package comment for the mapping.
const NoStationHeard = core.NoStationHeard

// DefaultWorkers is the worker count used when a BuildOptions or
// BatchOptions leaves Workers at zero: one per schedulable CPU.
func DefaultWorkers() int { return core.DefaultWorkers() }

// NewNetwork builds a network with explicit noise and threshold;
// powers default to uniform 1 and alpha to 2 (see WithPowers and
// WithAlpha).
func NewNetwork(stations []Point, noise, beta float64, opts ...Option) (*Network, error) {
	return core.NewNetwork(stations, noise, beta, opts...)
}

// NewUniform builds a uniform power network <S, 1, N, beta> with
// alpha = 2 — the regime of Theorems 1, 2 and 3.
func NewUniform(stations []Point, noise, beta float64) (*Network, error) {
	return core.NewUniform(stations, noise, beta)
}

// WithAlpha overrides the path-loss exponent.
func WithAlpha(alpha float64) Option { return core.WithAlpha(alpha) }

// WithPowers sets per-station transmission powers.
func WithPowers(powers []float64) Option { return core.WithPowers(powers) }

// FatnessBound returns the Theorem 4.2 constant
// (sqrt(beta)+1)/(sqrt(beta)-1) bounding every zone's fatness.
func FatnessBound(beta float64) (float64, error) { return core.FatnessBound(beta) }

// MergeStations realizes the Lemma 3.10 two-stations-into-one
// construction.
func MergeStations(s1, s2, p1, p2 Point) (Point, error) {
	return core.MergeStations(s1, s2, p1, p2)
}

// ThreeStationAnalysis runs the Section 3.2 Sturm analysis of the
// three-station quartic.
func ThreeStationAnalysis(s1, s2 Point) (ThreeStationReport, error) {
	return core.ThreeStationAnalysis(s1, s2)
}

// Diagram is a measured SINR diagram: per-zone polygonal geometry and
// the communication graph induced by concurrent transmission.
type Diagram = diagram.Diagram

// ZoneInfo is the measured geometry of one reception zone.
type ZoneInfo = diagram.ZoneInfo

// BuildDiagram measures every reception zone of the network with the
// given boundary sample count and radial precision.
func BuildDiagram(net *Network, samples int, tol float64) (*Diagram, error) {
	return diagram.Build(net, samples, tol)
}
