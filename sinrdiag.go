// Package sinrdiag is a Go library reproducing "SINR Diagrams: Towards
// Algorithmically Usable SINR Models of Wireless Networks" (Avin,
// Emek, Kantor, Lotker, Peleg, Roditty — PODC 2009).
//
// It models wireless networks under the signal-to-interference-and-
// noise-ratio (SINR) rule, exposes their reception zones (the SINR
// diagram), certifies the paper's structural results — convexity
// (Theorem 1) and constant fatness (Theorem 2) of the zones of uniform
// power networks with path-loss 2 — and builds the approximate
// point-location data structure of Theorem 3: size O(n/eps), built in
// O(n^3/eps), answering queries in O(log n) with an eps-area
// uncertainty ring per zone.
//
// # Quick start
//
//	net, err := sinrdiag.NewUniform([]sinrdiag.Point{
//		{X: 0, Y: 0}, {X: 3, Y: 1}, {X: -1, Y: 2},
//	}, 0.01, 3) // noise N = 0.01, threshold beta = 3
//	if err != nil { ... }
//	heard, ok := net.HeardBy(sinrdiag.Pt(0.4, 0.2))
//
//	loc, err := net.BuildLocator(0.1) // Theorem 3 structure, eps = 0.1
//	answer := loc.Locate(sinrdiag.Pt(0.4, 0.2)) // H+ / H- / H?
//
// BuildLocator fans the per-station constructions out over one worker
// per CPU (tune with BuildLocatorOpts), and query traffic can be
// answered in bulk with LocateBatch / HeardByBatch or streamed through
// LocateStream; every concurrent path returns answers identical to the
// serial one. For serving query traffic as a long-running process, the
// sinrserve binary (internal/serve) exposes the same engine over HTTP
// with named-network registration, atomic hot swap and a single-flight
// resolver cache.
//
// # The Resolver API
//
// The question every algorithm in this package answers is the same —
// "which station is heard at p?" — and the Resolver interface is its
// one query surface: Resolve (single point), ResolveBatch (sharded
// slice), ResolveStream (ordered live pipeline) and Stats (backend
// metadata), over four interchangeable backends:
//
//	r, err := sinrdiag.NewResolver(sinrdiag.ResolverLocator, net,
//		sinrdiag.WithEpsilon(0.05), sinrdiag.WithWorkers(8))
//	answer := r.Resolve(ctx, sinrdiag.Pt(0.4, 0.2))
//
//	NewExactResolver    direct SINR evaluation (ground truth, O(n)/query)
//	NewLocatorResolver  Theorem 3 structure (O(log n)/query; exact
//	                    fallback for H? rings on by default, disable
//	                    with WithExactFallback(false); carries a
//	                    sharded spatial index over zone cover boxes —
//	                    points outside every zone resolve H- from one
//	                    allocation-free grid lookup — disable with
//	                    WithSpatialIndex(false))
//	NewVoronoiResolver  nearest-candidate + one SINR check (O(n)/query)
//	NewUDGResolver      graph-based UDG/protocol baseline (a different
//	                    reception model; WithRadius / WithInterfRadius)
//
// Construction is by functional options (WithWorkers, WithEpsilon,
// WithExactFallback, WithRadius, WithInterfRadius); network-level
// parameters (powers, alpha) stay on the network constructors
// (WithPowers, WithAlpha). The pre-Resolver entry points — HeardBy,
// Locate/LocateExact, the *Batch/*Stream families and the
// BuildOptions/BatchOptions structs — remain supported and delegate
// to the same kernels, but new code should prefer a Resolver; see the
// README migration table.
//
// # Migration: old API -> Resolver
//
//	Network.HeardBy(p)            NewExactResolver(net) + Resolve
//	Network.HeardByBatch(ps)      NewExactResolver(net) + ResolveBatch
//	Network.NaiveLocate(p)        NewExactResolver(net) + Resolve
//	Network.VoronoiLocate(p, t)   NewVoronoiResolver(net) + Resolve
//	BuildLocator + Locate         NewLocatorResolver(net, WithExactFallback(false))
//	BuildLocator + LocateExact    NewLocatorResolver(net)
//	BuildLocatorOpts{Workers}     NewLocatorResolver(net, WithWorkers(k))
//	Locator.LocateBatch(ps)       LocatorResolver.ResolveBatch
//	Locator.LocateStream(ctx,in)  LocatorResolver.ResolveStream
//	udg baselines (internal)      NewUDGResolver(net, WithRadius(r))
//
// # The no-station answer, in both shapes
//
// "No station is heard at p" surfaces in two equivalent shapes,
// depending on the API's return style:
//
//   - Single-point comma-ok APIs — Network.HeardBy, Locator.HeardBy —
//     return (0, false). The index is meaningless when ok is false;
//     always branch on ok, never on the index.
//   - Batch, raster and serving APIs — HeardByBatch, HeardByBatchInto,
//     raster pixels, the sinrserve wire format — have no second return
//     per element, so they write the sentinel index NoStationHeard (-1)
//     instead. Any index >= 0 in a batch answer is a heard station.
//
// The two are interconvertible: comma-ok (i, true) corresponds to
// batch answer i, and (_, false) to NoStationHeard. Batch answers never
// use (0, false)'s ambiguous zero, so -1 is safe to compare directly.
//
// # Dynamic networks
//
// Everything above answers for a fixed station set. When stations
// join, leave, or change power while queries are in flight, wrap the
// network in a dynamic engine and mutate it with deltas:
//
//	dyn, err := sinrdiag.NewDynamicNetwork(net)
//	snap, err := dyn.Apply(sinrdiag.DynamicDelta{
//		Add: []sinrdiag.DynamicStation{{Pos: sinrdiag.Pt(2, 1)}},
//	})
//	heard, ok := snap.HeardBy(sinrdiag.Pt(0.4, 0.2))
//
// Every Apply produces a fresh immutable epoch Snapshot without
// paying full-rebuild cost on the hot path (spatial structures are
// patched copy-on-write; a from-scratch rebuild is amortized over
// the churn threshold, see WithRebuildFraction), and snapshots answer
// point-for-point identically to a from-scratch build on the same
// final station set. NewDynamicResolver adapts an engine to the
// Resolver interface with epoch pinning: a batch or stream answers
// entirely from the epoch current when the call starts, however many
// deltas land while it runs. The sinrserve binary exposes the same
// engine over HTTP as PATCH /v1/networks/{name}; see the README's
// "Dynamic networks" section for the delta wire format.
//
// # Link scheduling
//
// The application the paper's introduction motivates — scheduling
// transmission links against the physical model — is exposed as a
// scheduling surface over both reception models:
//
//	links := sinrdiag.DeriveLinks(stations, nil, 1)
//	prob, err := sinrdiag.NewSINRScheduling(links, 0.01, 3)
//	s, err := sinrdiag.BuildSchedule(sinrdiag.SchedGreedy, prob, sinrdiag.ByLength(links, true))
//	err = s.Validate(prob) // re-check every slot independently
//
// A SchedulingProblem answers slot-feasibility questions; the SINR
// problem (NewSINRScheduling) and the protocol problem
// (NewProtocolScheduling) both maintain incremental per-slot state —
// adding a link to a slot costs O(members) with a spatial fast-reject
// rather than O(members²) — and both keep a naive scan path
// (SlotFeasibleScan) as the cross-checking oracle. Three schedulers
// build on that surface: greedy first-fit (SchedGreedy), the
// length-class scheduler (SchedLenClass), and greedy plus a
// local-search improver (SchedRepair); RepairSchedule heals an
// existing schedule after the link set changes instead of starting
// over. The sinrserve binary serves the same engines as POST
// /v1/networks/{name}/schedule with repair-on-churn caching, and
// experiment E20 (sinrbench -sched-*) tracks the incremental engine's
// speedup over the scan in BENCH_sched.json.
//
// The facade re-exports the library's core types; the full API
// (geometry kit, polynomial/Sturm machinery, Voronoi diagrams, UDG
// baselines, rasterization, experiment harness) lives in the internal
// packages and is exercised by the binaries under cmd/ and the
// examples under examples/.
package sinrdiag

import (
	"repro/internal/core"
	"repro/internal/diagram"
	"repro/internal/dynamic"
	"repro/internal/geom"
	"repro/internal/resolve"
	"repro/internal/sched"
)

// Point is a point in the Euclidean plane.
type Point = geom.Point

// Pt is shorthand for Point{X: x, Y: y}.
func Pt(x, y float64) Point { return geom.Pt(x, y) }

// Network is a wireless network <S, psi, N, beta> under the SINR rule.
type Network = core.Network

// Option customizes network construction (powers, path-loss alpha).
type Option = core.Option

// Zone is a handle on one station's reception zone H_i.
type Zone = core.Zone

// ZoneBounds packages delta/Delta bounds for a zone (Theorem 4.1 and
// the sampled refinements).
type ZoneBounds = core.ZoneBounds

// ConvexityReport summarizes a convexity certification run.
type ConvexityReport = core.ConvexityReport

// ThreeStationReport carries the Section 3.2 Sturm analysis artifacts.
type ThreeStationReport = core.ThreeStationReport

// QDS is the per-zone approximate point-location structure of
// Section 5.1.
type QDS = core.QDS

// Locator is the combined Theorem 3 point-location data structure.
// It is immutable once built: Locate, LocateBatch and LocateStream are
// safe for concurrent use from any number of goroutines.
type Locator = core.Locator

// BuildOptions tunes locator construction (worker count of the
// parallel per-station build; see Network.BuildLocatorOpts).
//
// Deprecated: new code should build a LocatorResolver with the
// functional options WithEpsilon and WithWorkers instead; this struct
// remains for the pre-Resolver entry points, which delegate to the
// same build kernel.
type BuildOptions = core.BuildOptions

// BatchOptions tunes batch query execution (worker count the query
// slice is sharded over; see Locator.LocateBatchOpts).
//
// Deprecated: new code should construct a Resolver with WithWorkers
// and call ResolveBatch/ResolveStream; this struct remains for the
// pre-Resolver entry points, which delegate to the same kernels.
type BatchOptions = core.BatchOptions

// Location is a point-location answer.
type Location = core.Location

// LocationKind distinguishes H+, H- and H? answers.
type LocationKind = core.LocationKind

// CellType classifies grid cells (T+, T-, T?).
type CellType = core.CellType

// Grid is the gamma-spaced grid of Section 5.1.
type Grid = core.Grid

// Cell identifies one grid cell.
type Cell = core.Cell

// Location kinds and cell types, re-exported.
const (
	NoReception = core.NoReception
	Reception   = core.Reception
	Uncertain   = core.Uncertain

	TPlus     = core.TPlus
	TMinus    = core.TMinus
	TQuestion = core.TQuestion
)

// DefaultAlpha is the textbook path-loss exponent (2), the setting of
// the paper's theorems.
const DefaultAlpha = core.DefaultAlpha

// NoStationHeard is the sentinel index the batch primitives
// (Network.HeardByBatch, Locator.HeardByBatchInto) and the serving
// wire format report for points where no station is heard. It is the
// batch-shaped equivalent of the comma-ok (0, false) answer of
// Network.HeardBy — see the package comment for the mapping.
const NoStationHeard = core.NoStationHeard

// DefaultWorkers is the worker count used when a BuildOptions or
// BatchOptions leaves Workers at zero: one per schedulable CPU.
func DefaultWorkers() int { return core.DefaultWorkers() }

// NewNetwork builds a network with explicit noise and threshold;
// powers default to uniform 1 and alpha to 2 (see WithPowers and
// WithAlpha).
func NewNetwork(stations []Point, noise, beta float64, opts ...Option) (*Network, error) {
	return core.NewNetwork(stations, noise, beta, opts...)
}

// NewUniform builds a uniform power network <S, 1, N, beta> with
// alpha = 2 — the regime of Theorems 1, 2 and 3.
func NewUniform(stations []Point, noise, beta float64) (*Network, error) {
	return core.NewUniform(stations, noise, beta)
}

// WithAlpha overrides the path-loss exponent.
func WithAlpha(alpha float64) Option { return core.WithAlpha(alpha) }

// WithPowers sets per-station transmission powers.
func WithPowers(powers []float64) Option { return core.WithPowers(powers) }

// FatnessBound returns the Theorem 4.2 constant
// (sqrt(beta)+1)/(sqrt(beta)-1) bounding every zone's fatness.
func FatnessBound(beta float64) (float64, error) { return core.FatnessBound(beta) }

// MergeStations realizes the Lemma 3.10 two-stations-into-one
// construction.
func MergeStations(s1, s2, p1, p2 Point) (Point, error) {
	return core.MergeStations(s1, s2, p1, p2)
}

// ThreeStationAnalysis runs the Section 3.2 Sturm analysis of the
// three-station quartic.
func ThreeStationAnalysis(s1, s2 Point) (ThreeStationReport, error) {
	return core.ThreeStationAnalysis(s1, s2)
}

// Resolver is the one query interface over every reception model:
// Resolve / ResolveBatch / ResolveStream answer "which station is
// heard at p?" and Stats reports the backend's kind, parameters and
// build cost. The no-station answer convention (NoReception vs the
// NoStationHeard sentinel) is documented once on the interface's
// package (internal/resolve) and in this package's comment.
type Resolver = resolve.Resolver

// ResolverKind identifies a resolver backend (exact, locator,
// voronoi, udg).
type ResolverKind = resolve.Kind

// ResolverStats is a resolver's self-description (kind, parameters,
// build cost).
type ResolverStats = resolve.Stats

// ResolverOption customizes resolver construction; options irrelevant
// to a backend are validated but ignored, so one option slice can
// configure any kind.
type ResolverOption = resolve.Option

// The four resolver backends.
const (
	ResolverExact   = resolve.KindExact
	ResolverLocator = resolve.KindLocator
	ResolverVoronoi = resolve.KindVoronoi
	ResolverUDG     = resolve.KindUDG
)

// DefaultResolverEpsilon is the Theorem 3 performance parameter used
// when a LocatorResolver is built without WithEpsilon.
const DefaultResolverEpsilon = resolve.DefaultEps

// ExactResolver answers by direct SINR evaluation — the ground truth.
type ExactResolver = resolve.ExactResolver

// LocatorResolver answers through the Theorem 3 structure, settling
// uncertainty rings exactly unless WithExactFallback(false).
type LocatorResolver = resolve.LocatorResolver

// VoronoiResolver answers via the nearest-candidate check of
// Observation 2.2 plus one SINR evaluation.
type VoronoiResolver = resolve.VoronoiResolver

// UDGResolver answers under the graph-based UDG/protocol rule — the
// baseline reception model the paper argues against.
type UDGResolver = resolve.UDGResolver

// NewResolver builds the backend named by kind — the registry entry
// point used when the kind arrives as data (a wire field, a flag).
func NewResolver(kind ResolverKind, net *Network, opts ...ResolverOption) (Resolver, error) {
	return resolve.New(kind, net, opts...)
}

// NewExactResolver wraps net in the ground-truth backend.
func NewExactResolver(net *Network, opts ...ResolverOption) (*ExactResolver, error) {
	return resolve.NewExact(net, opts...)
}

// NewLocatorResolver builds the Theorem 3 structure for net and wraps
// it (WithEpsilon, WithExactFallback, WithWorkers apply).
func NewLocatorResolver(net *Network, opts ...ResolverOption) (*LocatorResolver, error) {
	return resolve.NewLocator(net, opts...)
}

// NewVoronoiResolver builds the nearest-candidate baseline for net.
func NewVoronoiResolver(net *Network, opts ...ResolverOption) (*VoronoiResolver, error) {
	return resolve.NewVoronoi(net, opts...)
}

// NewUDGResolver builds the graph-based baseline over net's stations
// (WithRadius, WithInterfRadius, WithWorkers apply).
func NewUDGResolver(net *Network, opts ...ResolverOption) (*UDGResolver, error) {
	return resolve.NewUDG(net, opts...)
}

// ParseResolverKind maps a wire/flag name ("exact", "locator",
// "voronoi", "udg"; "" means locator) to its ResolverKind.
func ParseResolverKind(s string) (ResolverKind, error) { return resolve.ParseKind(s) }

// ResolverKinds lists every backend, in kind order.
func ResolverKinds() []ResolverKind { return resolve.Kinds() }

// WithWorkers sets the worker count used by ResolveBatch,
// ResolveStream and the locator build (0 = one per CPU, 1 = serial;
// answers are identical for every setting).
func WithWorkers(workers int) ResolverOption { return resolve.WithWorkers(workers) }

// WithEpsilon sets the Theorem 3 performance parameter of a
// LocatorResolver (default DefaultResolverEpsilon).
func WithEpsilon(eps float64) ResolverOption { return resolve.WithEpsilon(eps) }

// WithExactFallback controls whether a LocatorResolver settles H?
// answers exactly (default true) or surfaces Uncertain to the caller.
func WithExactFallback(on bool) ResolverOption { return resolve.WithExactFallback(on) }

// WithSpatialIndex controls whether a LocatorResolver's Theorem 3
// structure carries the sharded spatial index over per-station zone
// cover boxes (default true): queries outside every zone are answered
// H- from one grid-cell lookup, with the kd-tree nearest-station
// check as the residual filter for covered points. Answers are
// identical either way; the resolver's Stats describe the index
// (SpatialIndex, IndexCells, IndexOccupied, IndexMaxPerCell,
// IndexAvgPerCell). Disabling it exists for benchmarking the
// pre-index path.
func WithSpatialIndex(on bool) ResolverOption { return resolve.WithSpatialIndex(on) }

// WithRadius sets a UDGResolver's connectivity radius (and its
// interference radius, unless WithInterfRadius overrides it); zero
// means DefaultUDGRadius of the network.
func WithRadius(r float64) ResolverOption { return resolve.WithRadius(r) }

// WithInterfRadius sets a UDGResolver's interference radius
// independently (the Quasi-UDG model).
func WithInterfRadius(r float64) ResolverOption { return resolve.WithInterfRadius(r) }

// DefaultUDGRadius derives a comparison-worthy UDG radius from the
// network: the interference-free reception range of its weakest
// station, with documented fallbacks for noiseless networks.
func DefaultUDGRadius(net *Network) float64 { return resolve.DefaultUDGRadius(net) }

// StationIndex flattens a Location to the batch wire shape: the heard
// station's index, or NoStationHeard for a no-reception answer.
func StationIndex(loc Location) int { return resolve.StationIndex(loc) }

// DynamicNetwork is a versioned dynamic station set: Apply takes a
// DynamicDelta and produces a fresh immutable epoch DynamicSnapshot,
// patching the spatial structures copy-on-write below the churn
// threshold and rebuilding them amortized above it. Apply calls are
// serialized; snapshots are safe for concurrent use and queries
// against an older epoch are never disturbed by later mutations.
type DynamicNetwork = dynamic.Network

// DynamicSnapshot is one immutable epoch of a dynamic network: the
// station set after some prefix of the mutation log, answering
// HeardBy/Locate point-for-point identically to a from-scratch build
// on the same stations.
type DynamicSnapshot = dynamic.Snapshot

// DynamicDelta is one batch of mutations against a specific epoch:
// SetPower first, then Remove, then Add, all addressing stations by
// their index in the epoch the delta is applied to.
type DynamicDelta = dynamic.Delta

// DynamicStation is an arriving station of a DynamicDelta (zero Power
// means the uniform default 1).
type DynamicStation = dynamic.Station

// DynamicPowerUpdate changes the transmission power of one existing
// station.
type DynamicPowerUpdate = dynamic.PowerUpdate

// DynamicApplyStats describes how one epoch came to be: the
// maintenance path taken, the mutation counts, and the churn fraction
// against the amortized-rebuild threshold.
type DynamicApplyStats = dynamic.ApplyStats

// DynamicApplyPath says which maintenance path an Apply took
// (incremental or rebuild).
type DynamicApplyPath = dynamic.ApplyPath

// The two maintenance paths of a dynamic Apply.
const (
	DynamicPathIncremental = dynamic.PathIncremental
	DynamicPathRebuild     = dynamic.PathRebuild
)

// DefaultRebuildFraction is the churn threshold of the amortized
// rebuild: once mutations since the last full build exceed this
// fraction of the station count at that build, the next Apply
// rebuilds every derived structure from scratch.
const DefaultRebuildFraction = dynamic.DefaultRebuildFraction

// DynamicOption customizes dynamic-engine construction.
type DynamicOption = dynamic.Option

// WithRebuildFraction sets the churn threshold of the amortized
// rebuild (default DefaultRebuildFraction). Zero rebuilds on every
// Apply; +Inf never amortizes.
func WithRebuildFraction(f float64) DynamicOption { return dynamic.WithRebuildFraction(f) }

// NewDynamicNetwork wraps net in a dynamic engine at epoch 1.
func NewDynamicNetwork(net *Network, opts ...DynamicOption) (*DynamicNetwork, error) {
	return dynamic.New(net, opts...)
}

// DynamicResolver is the epoch-aware Resolver over a live dynamic
// network: every Resolve, ResolveBatch and ResolveStream call pins
// the epoch current when the call starts and answers entirely from
// it. Use Pin to hold one epoch across several calls.
type DynamicResolver = resolve.DynamicResolver

// SnapshotResolver answers every query from one pinned epoch snapshot
// of a dynamic network; construction is O(1).
type SnapshotResolver = resolve.SnapshotResolver

// ResolverDynamic identifies the dynamic epoch-snapshot backend.
// Unlike the static four it cannot be built from a bare *Network —
// use NewDynamicResolver or NewSnapshotResolver.
const ResolverDynamic = resolve.KindDynamic

// NewDynamicResolver wraps a dynamic engine in the epoch-aware
// Resolver (WithWorkers applies).
func NewDynamicResolver(dyn *DynamicNetwork, opts ...ResolverOption) (*DynamicResolver, error) {
	return resolve.NewDynamic(dyn, opts...)
}

// NewSnapshotResolver wraps one epoch snapshot (WithWorkers applies).
func NewSnapshotResolver(snap *DynamicSnapshot, opts ...ResolverOption) (*SnapshotResolver, error) {
	return resolve.NewDynamicSnapshot(snap, opts...)
}

// Link is one sender-to-receiver transmission request of a scheduling
// instance (zero Power means the uniform default 1).
type Link = sched.Link

// Schedule partitions a scheduling instance's links into slots; every
// slot is feasible under the instance's reception model. Validate
// re-checks a schedule independently of however it was built.
type Schedule = sched.Schedule

// SchedulingProblem is the feasibility surface every scheduler builds
// on: a link count plus the slot-feasibility predicate. Both concrete
// problems additionally maintain incremental slot state (adding a
// link costs O(slot members) with a spatial fast-reject, not
// O(members²)) and keep the naive scan as a cross-checking oracle.
type SchedulingProblem = sched.Feasibility

// SchedulingSlot is live incremental slot state: CanAdd/Add/Remove
// maintain per-member interference so trial placements avoid the full
// quadratic recheck.
type SchedulingSlot = sched.Slot

// SINRScheduling schedules links under the physical SINR model.
type SINRScheduling = sched.SINRProblem

// ProtocolScheduling schedules links under the graph-based
// UDG/protocol model — the baseline the paper argues against.
type ProtocolScheduling = sched.ProtocolProblem

// SchedulerKind identifies a scheduling algorithm (greedy, lenclass,
// repair).
type SchedulerKind = sched.Kind

// The three schedulers.
const (
	SchedGreedy   = sched.KindGreedy
	SchedLenClass = sched.KindLenClass
	SchedRepair   = sched.KindRepair
)

// RepairStats reports what RepairSchedule did: links kept in place,
// displaced, dropped as stale, placed fresh, and improver moves.
type RepairStats = sched.RepairStats

// DefaultSchedImprovePasses is the improver pass budget used by the
// repair scheduler.
const DefaultSchedImprovePasses = sched.DefaultImprovePasses

// NewSINRScheduling builds a SINR scheduling problem over links
// (alpha defaults to 2; set the Alpha field for other exponents).
func NewSINRScheduling(links []Link, noise, beta float64) (*SINRScheduling, error) {
	return sched.NewSINRProblem(links, noise, beta)
}

// NewProtocolScheduling builds a protocol-model scheduling problem:
// a link is feasible in a slot iff it is no longer than connRadius
// and no other sender or receiver is within interfRadius.
func NewProtocolScheduling(links []Link, connRadius, interfRadius float64) (*ProtocolScheduling, error) {
	return sched.NewProtocolProblem(links, connRadius, interfRadius)
}

// BuildSchedule runs the named scheduler: greedy first-fit in the
// given order, the length-class scheduler (order ignored), or greedy
// plus the local-search improver. A nil order means identity.
func BuildSchedule(kind SchedulerKind, f SchedulingProblem, order []int) (*Schedule, error) {
	return sched.BuildSchedule(kind, f, order)
}

// ImproveSchedule runs the local-search improver in place: links are
// moved into earlier slots and emptied slots deleted until a full
// pass moves nothing or maxPasses is exhausted. It returns the number
// of moves made.
func ImproveSchedule(f SchedulingProblem, s *Schedule, maxPasses int) (int, error) {
	return sched.Improve(f, s, maxPasses)
}

// RepairSchedule heals a schedule after the link set changed instead
// of scheduling from scratch: surviving assignments are kept where
// still feasible, stale links dropped, and displaced plus new links
// re-placed (then improved for improvePasses > 0). The input schedule
// is not modified.
func RepairSchedule(f SchedulingProblem, s *Schedule, improvePasses int) (*Schedule, RepairStats, error) {
	return sched.Repair(f, s, improvePasses)
}

// ByLength orders link indices by link length (ascending or
// descending), ties toward the lower index — shortest-first is the
// classic greedy order.
func ByLength(links []Link, ascending bool) []int { return sched.ByLength(links, ascending) }

// DeriveLinks derives one deterministic link per station: receivers
// are placed pseudo-randomly (a pure function of the station's
// coordinates) at distance [0.5, 1.5)·scale. It is how the serving
// layer turns a registered network into a scheduling instance, and
// how a client re-derives the same instance to validate served
// schedules; a nil powers slice means uniform power 1.
func DeriveLinks(stations []Point, powers []float64, scale float64) []Link {
	return sched.DeriveLinks(stations, powers, scale)
}

// ParseSchedulerKind maps a wire/flag name ("greedy", "lenclass",
// "repair"; "" means greedy) to its SchedulerKind.
func ParseSchedulerKind(s string) (SchedulerKind, error) { return sched.ParseKind(s) }

// SchedulerKinds lists every scheduler, in kind order.
func SchedulerKinds() []SchedulerKind { return sched.Kinds() }

// Diagram is a measured SINR diagram: per-zone polygonal geometry and
// the communication graph induced by concurrent transmission.
type Diagram = diagram.Diagram

// ZoneInfo is the measured geometry of one reception zone.
type ZoneInfo = diagram.ZoneInfo

// BuildDiagram measures every reception zone of the network with the
// given boundary sample count and radial precision.
func BuildDiagram(net *Network, samples int, tol float64) (*Diagram, error) {
	return diagram.Build(net, samples, tol)
}
