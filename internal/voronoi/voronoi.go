package voronoi

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/kdtree"
)

// Diagram is a Voronoi diagram of a fixed site set, clipped to a box.
type Diagram struct {
	sites []geom.Point
	cells []geom.Polygon
	box   geom.Box
	tree  *kdtree.Tree
}

// New builds the Voronoi diagram of sites clipped to box. It returns
// an error when fewer than one site is supplied or the box has zero
// area. Duplicate sites are legal; a duplicated site gets an empty
// cell (its twin wins ties arbitrarily).
func New(sites []geom.Point, box geom.Box) (*Diagram, error) {
	if len(sites) == 0 {
		return nil, fmt.Errorf("voronoi: need at least one site")
	}
	if box.Area() <= 0 {
		return nil, fmt.Errorf("voronoi: clip box %v has no area", box)
	}
	d := &Diagram{
		sites: append([]geom.Point(nil), sites...),
		cells: make([]geom.Polygon, len(sites)),
		box:   box,
		tree:  kdtree.New(sites),
	}
	corners := box.Corners()
	for i, s := range sites {
		cell := geom.Polygon(corners[:])
		for j, other := range sites {
			if i == j {
				continue
			}
			if geom.ApproxEqual(s, other, geom.Eps) {
				if j < i {
					// Duplicate handled by the earlier twin.
					cell = nil
					break
				}
				continue
			}
			cell = geom.ClipPolygon(cell, geom.HalfPlaneOf(s, other))
			if cell == nil {
				break
			}
		}
		d.cells[i] = cell
	}
	return d, nil
}

// NumSites returns the number of sites.
func (d *Diagram) NumSites() int { return len(d.sites) }

// Site returns the i-th site.
func (d *Diagram) Site(i int) geom.Point { return d.sites[i] }

// Cell returns the clipped Voronoi cell polygon of site i (nil for a
// duplicate site's shadowed cell).
func (d *Diagram) Cell(i int) geom.Polygon { return d.cells[i] }

// Box returns the clip box.
func (d *Diagram) Box() geom.Box { return d.box }

// Locate returns the index of the site whose cell contains p (i.e. the
// nearest site), using the kd-tree in O(log n) expected time.
func (d *Diagram) Locate(p geom.Point) int {
	idx, _, _ := d.tree.Nearest(p)
	return idx
}

// CellContains reports whether p belongs to the (closed) cell of site
// i, decided metrically: p is at least as close to site i as to every
// other site. This is exact regardless of polygon clipping.
func (d *Diagram) CellContains(i int, p geom.Point) bool {
	di := geom.Dist2(d.sites[i], p)
	for j, s := range d.sites {
		if j != i && geom.Dist2(s, p) < di-geom.Eps {
			return false
		}
	}
	return true
}

// TotalArea returns the summed area of all cells; for sites inside the
// box with adequate margins this equals the box area (a diagram-level
// sanity invariant used in tests).
func (d *Diagram) TotalArea() float64 {
	var a float64
	for _, c := range d.cells {
		a += c.Area()
	}
	return a
}
