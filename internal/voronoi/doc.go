// Package voronoi computes Voronoi diagrams of planar point sites.
// Cells are built by intersecting the half planes toward every other
// site (O(n) half planes per cell, O(n^2 log n) for the full diagram
// after a nearest-neighbor ordering), clipped to a caller-supplied
// bounding box so unbounded cells become finite polygons.
//
// Map to the paper: Observation 2.2 (every reception zone lies
// strictly inside its station's Voronoi cell, making "nearest
// station" a sound point-location pre-filter for Theorem 3) and the
// remark after Corollary 3.5 (a line's Voronoi boundary crossing
// bounds where the reception boundary can be).
package voronoi
