package voronoi

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
)

// TestObservation22ZoneInsideCell verifies Observation 2.2 with the
// explicit Voronoi polygons: every boundary sample of a reception zone
// lies strictly inside its station's Voronoi cell.
func TestObservation22ZoneInsideCell(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 8; trial++ {
		nSt := 3 + rng.Intn(6)
		sites := make([]geom.Point, nSt)
		for i := range sites {
			sites[i] = geom.Pt(rng.Float64()*8-4, rng.Float64()*8-4)
		}
		net, err := core.NewUniform(sites, 0.01, 1.5+rng.Float64()*4)
		if err != nil {
			t.Fatal(err)
		}
		if net.SharesLocation(0) {
			continue
		}
		d, err := New(sites, geom.NewBox(geom.Pt(-20, -20), geom.Pt(20, 20)))
		if err != nil {
			t.Fatal(err)
		}
		z, err := net.Zone(0)
		if err != nil {
			t.Fatal(err)
		}
		pts, err := z.SampleBoundary(64, 1e-8)
		if err != nil {
			t.Fatal(err)
		}
		cell := d.Cell(0)
		for _, p := range pts {
			if !cell.Contains(p) {
				t.Fatalf("trial %d: boundary point %v of zone 0 outside its Voronoi cell", trial, p)
			}
			if !d.CellContains(0, p) {
				t.Fatalf("trial %d: metric check fails for %v", trial, p)
			}
		}
	}
}

// TestVoronoiCrossingBoundsReception verifies the remark after
// Corollary 3.5: along a line, the reception boundary crossing comes
// no later than the Voronoi cell boundary crossing (the zone is inside
// the cell).
func TestVoronoiCrossingBoundsReception(t *testing.T) {
	sites := []geom.Point{geom.Pt(0, 0), geom.Pt(4, 0)}
	net, err := core.NewUniform(sites, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Along the x-axis from s0 toward s1: reception ends at
	// mu_r = 4/(1+2) = 4/3; the Voronoi bisector is at x = 2.
	z, err := net.Zone(0)
	if err != nil {
		t.Fatal(err)
	}
	r, err := z.RadialBoundary(0, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-4.0/3) > 1e-6 {
		t.Errorf("reception boundary at %v, want 4/3", r)
	}
	if r >= 2 {
		t.Errorf("reception boundary %v not before the Voronoi bisector at 2", r)
	}
}
