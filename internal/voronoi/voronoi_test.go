package voronoi

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestNewValidation(t *testing.T) {
	box := geom.NewBox(geom.Pt(0, 0), geom.Pt(1, 1))
	if _, err := New(nil, box); err == nil {
		t.Error("expected error for empty sites")
	}
	if _, err := New([]geom.Point{geom.Pt(0, 0)}, geom.Box{}); err == nil {
		t.Error("expected error for degenerate box")
	}
}

func TestSingleSiteCellIsBox(t *testing.T) {
	box := geom.NewBox(geom.Pt(-1, -1), geom.Pt(1, 1))
	d, err := New([]geom.Point{geom.Pt(0, 0)}, box)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Cell(0).Area(); math.Abs(got-4) > 1e-9 {
		t.Errorf("cell area = %v, want 4", got)
	}
}

func TestTwoSitesSplitBox(t *testing.T) {
	box := geom.NewBox(geom.Pt(-2, -2), geom.Pt(2, 2))
	d, err := New([]geom.Point{geom.Pt(-1, 0), geom.Pt(1, 0)}, box)
	if err != nil {
		t.Fatal(err)
	}
	// Each cell is half the box.
	for i := 0; i < 2; i++ {
		if got := d.Cell(i).Area(); math.Abs(got-8) > 1e-9 {
			t.Errorf("cell %d area = %v, want 8", i, got)
		}
	}
	// Every cell contains its own site.
	for i := 0; i < 2; i++ {
		if !d.Cell(i).Contains(d.Site(i)) {
			t.Errorf("cell %d misses its site", i)
		}
	}
}

func TestCellsPartitionBox(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	box := geom.NewBox(geom.Pt(0, 0), geom.Pt(10, 10))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(20)
		sites := make([]geom.Point, n)
		for i := range sites {
			sites[i] = geom.Pt(rng.Float64()*10, rng.Float64()*10)
		}
		d, err := New(sites, box)
		if err != nil {
			t.Fatal(err)
		}
		if got := d.TotalArea(); math.Abs(got-100) > 1e-6 {
			t.Fatalf("trial %d: total cell area = %v, want 100", trial, got)
		}
		for i := 0; i < n; i++ {
			cell := d.Cell(i)
			if cell == nil {
				t.Fatalf("trial %d: cell %d vanished", trial, i)
			}
			if !cell.IsConvex() {
				t.Fatalf("trial %d: cell %d not convex", trial, i)
			}
			if !cell.Contains(sites[i]) {
				t.Fatalf("trial %d: cell %d misses its site", trial, i)
			}
		}
	}
}

func TestLocateMatchesNearest(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	box := geom.NewBox(geom.Pt(0, 0), geom.Pt(10, 10))
	sites := make([]geom.Point, 30)
	for i := range sites {
		sites[i] = geom.Pt(rng.Float64()*10, rng.Float64()*10)
	}
	d, err := New(sites, box)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 100; k++ {
		q := geom.Pt(rng.Float64()*10, rng.Float64()*10)
		got := d.Locate(q)
		// Brute-force nearest.
		best, bestD := -1, math.Inf(1)
		for i, s := range sites {
			if dd := geom.Dist(s, q); dd < bestD {
				best, bestD = i, dd
			}
		}
		if geom.Dist(sites[got], q) > bestD+1e-9 {
			t.Fatalf("Locate(%v) = %d (dist %v), nearest is %d (dist %v)",
				q, got, geom.Dist(sites[got], q), best, bestD)
		}
		if !d.CellContains(got, q) {
			t.Fatalf("CellContains(%d, %v) = false for located cell", got, q)
		}
	}
}

func TestCellContainsMetric(t *testing.T) {
	box := geom.NewBox(geom.Pt(-5, -5), geom.Pt(5, 5))
	d, err := New([]geom.Point{geom.Pt(-1, 0), geom.Pt(1, 0)}, box)
	if err != nil {
		t.Fatal(err)
	}
	if !d.CellContains(0, geom.Pt(-2, 1)) {
		t.Error("(-2,1) belongs to site 0")
	}
	if d.CellContains(0, geom.Pt(2, 0)) {
		t.Error("(2,0) belongs to site 1")
	}
	// Bisector points belong to both closed cells.
	if !d.CellContains(0, geom.Pt(0, 3)) || !d.CellContains(1, geom.Pt(0, 3)) {
		t.Error("bisector point should belong to both closed cells")
	}
}

func TestDuplicateSites(t *testing.T) {
	box := geom.NewBox(geom.Pt(-1, -1), geom.Pt(1, 1))
	d, err := New([]geom.Point{geom.Pt(0, 0), geom.Pt(0, 0), geom.Pt(0.5, 0)}, box)
	if err != nil {
		t.Fatal(err)
	}
	// One of the duplicate cells is shadowed (nil); areas still sum to
	// the box area.
	if got := d.TotalArea(); math.Abs(got-4) > 1e-6 {
		t.Errorf("total area = %v, want 4", got)
	}
	if d.Cell(1) != nil {
		t.Errorf("shadowed duplicate should have nil cell, got %v", d.Cell(1))
	}
}

func TestAccessors(t *testing.T) {
	box := geom.NewBox(geom.Pt(0, 0), geom.Pt(1, 1))
	sites := []geom.Point{geom.Pt(0.2, 0.2), geom.Pt(0.8, 0.8)}
	d, err := New(sites, box)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumSites() != 2 {
		t.Errorf("NumSites = %d", d.NumSites())
	}
	if d.Site(1) != sites[1] {
		t.Errorf("Site(1) = %v", d.Site(1))
	}
	if d.Box() != box {
		t.Errorf("Box = %v", d.Box())
	}
}

func TestLatticeSitesSymmetry(t *testing.T) {
	// 2x2 lattice inside a symmetric box: all four cells have equal area.
	box := geom.NewBox(geom.Pt(0, 0), geom.Pt(4, 4))
	sites := []geom.Point{
		geom.Pt(1, 1), geom.Pt(3, 1), geom.Pt(1, 3), geom.Pt(3, 3),
	}
	d, err := New(sites, box)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if got := d.Cell(i).Area(); math.Abs(got-4) > 1e-9 {
			t.Errorf("cell %d area = %v, want 4", i, got)
		}
	}
}
