package resolve

import (
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/kdtree"
	"repro/internal/udg"
)

// ExactResolver answers every query by direct SINR evaluation
// (Network.HeardBy): O(n) per query, no preprocessing, exact by
// definition. It is the ground truth the other backends are measured
// against.
type ExactResolver struct {
	engine
	net *core.Network
}

// NewExact wraps net in an ExactResolver. Only WithWorkers applies.
func NewExact(net *core.Network, opts ...Option) (*ExactResolver, error) {
	c, err := newConfig(opts)
	if err != nil {
		return nil, err
	}
	r := &ExactResolver{net: net}
	r.engine = engine{
		fn:      net.NaiveLocate,
		workers: c.workers,
		stats: Stats{
			Kind:     KindExact,
			Stations: net.NumStations(),
			Workers:  c.workers,
		},
	}
	return r, nil
}

// Network returns the underlying network.
func (r *ExactResolver) Network() *core.Network { return r.net }

// LocatorResolver answers through the Theorem 3 structure: O(log n)
// per query after an O(n^3/eps) build. With exact fallback (the
// default) queries landing in an uncertainty ring are settled by one
// direct SINR evaluation — Locator.ResolveUncertain, the one shared
// H? code path — so answers match ExactResolver point-for-point;
// without it, H? surfaces as core.Uncertain.
type LocatorResolver struct {
	engine
	loc *core.Locator
}

// NewLocator builds the Theorem 3 structure for net and wraps it.
// WithEpsilon, WithExactFallback and WithWorkers apply; the network
// must satisfy the Theorem 3 preconditions (uniform power, alpha = 2,
// beta > 1).
func NewLocator(net *core.Network, opts ...Option) (*LocatorResolver, error) {
	c, err := newConfig(opts)
	if err != nil {
		return nil, err
	}
	start := time.Now() //sinr:nondeterministic-ok BuildCost wall-clock telemetry; never feeds resolver answers
	loc, err := net.BuildLocatorOpts(c.eps, core.BuildOptions{
		Workers:        c.workers,
		NoSpatialIndex: !c.spatialIndex,
	})
	if err != nil {
		return nil, err
	}
	return wrapLocator(loc, c, time.Since(start)), nil //sinr:nondeterministic-ok BuildCost wall-clock telemetry; never feeds resolver answers
}

func wrapLocator(loc *core.Locator, c config, buildCost time.Duration) *LocatorResolver {
	r := &LocatorResolver{loc: loc}
	fn := loc.Locate
	if c.exactFallback {
		fn = loc.LocateExact
	}
	stats := Stats{
		Kind:          KindLocator,
		Stations:      loc.NumStations(),
		Workers:       c.workers,
		Eps:           loc.Eps(),
		ExactFallback: c.exactFallback,
		UncertainSize: loc.NumUncertainCells(),
		BuildCost:     buildCost,
	}
	if sx := loc.SpatialIndex(); sx != nil {
		s := sx.Stats()
		stats.SpatialIndex = true
		stats.IndexCells = s.Cols * s.Rows
		stats.IndexOccupied = s.Occupied
		stats.IndexMaxPerCell = s.MaxPerCell
		stats.IndexAvgPerCell = s.AvgPerCell
	}
	r.engine = engine{fn: fn, workers: c.workers, stats: stats}
	return r
}

// Locator returns the underlying Theorem 3 structure.
func (r *LocatorResolver) Locator() *core.Locator { return r.loc }

// VoronoiResolver is the paper's O(n)-query baseline promoted to the
// common interface: a kd-tree nearest-station lookup identifies the
// unique candidate (Observation 2.2), and one direct SINR evaluation
// settles it. Exact, O(n log n) preprocessing, O(n) per query
// (the single SINR evaluation dominates the O(log n) lookup).
type VoronoiResolver struct {
	engine
	net  *core.Network
	tree *kdtree.Tree
}

// NewVoronoi builds the nearest-station index for net and wraps it.
// Only WithWorkers applies.
func NewVoronoi(net *core.Network, opts ...Option) (*VoronoiResolver, error) {
	c, err := newConfig(opts)
	if err != nil {
		return nil, err
	}
	start := time.Now() //sinr:nondeterministic-ok BuildCost wall-clock telemetry; never feeds resolver answers
	tree := kdtree.New(net.Stations())
	r := &VoronoiResolver{net: net, tree: tree}
	r.engine = engine{
		fn:      func(p geom.Point) core.Location { return net.VoronoiLocate(p, tree) },
		workers: c.workers,
		stats: Stats{
			Kind:      KindVoronoi,
			Stations:  net.NumStations(),
			Workers:   c.workers,
			BuildCost: time.Since(start), //sinr:nondeterministic-ok BuildCost wall-clock telemetry; never feeds resolver answers
		},
	}
	return r, nil
}

// Network returns the underlying network.
func (r *VoronoiResolver) Network() *core.Network { return r.net }

// UDGResolver answers under the graph-based UDG/protocol rule the
// paper argues against: station i is heard at p iff p is within the
// connectivity radius of s_i and no other station is within the
// interference radius of p. Unlike the other backends it is a
// different reception model, not an algorithm for the SINR one — its
// answers legitimately disagree with ExactResolver, and the
// disagreement rate is exactly what the Figure 2-4 experiments
// measure.
type UDGResolver struct {
	engine
	model *udg.Model
}

// NewUDG builds the graph-based baseline over net's stations.
// WithRadius, WithInterfRadius and WithWorkers apply; radii left
// unset default to DefaultUDGRadius(net).
func NewUDG(net *core.Network, opts ...Option) (*UDGResolver, error) {
	c, err := newConfig(opts)
	if err != nil {
		return nil, err
	}
	conn := c.connRadius
	if conn == 0 {
		conn = DefaultUDGRadius(net)
	}
	interf := c.interfRadius
	if interf == 0 {
		interf = conn
	}
	start := time.Now() //sinr:nondeterministic-ok BuildCost wall-clock telemetry; never feeds resolver answers
	m, err := udg.New(net.Stations(), conn, interf)
	if err != nil {
		return nil, err
	}
	r := &UDGResolver{model: m}
	r.engine = engine{
		fn: func(p geom.Point) core.Location {
			if i, ok := m.HeardBy(p); ok {
				return core.Location{Kind: core.Reception, Station: i}
			}
			return core.Location{Kind: core.NoReception}
		},
		workers: c.workers,
		stats: Stats{
			Kind:         KindUDG,
			Stations:     net.NumStations(),
			Workers:      c.workers,
			ConnRadius:   conn,
			InterfRadius: interf,
			BuildCost:    time.Since(start), //sinr:nondeterministic-ok BuildCost wall-clock telemetry; never feeds resolver answers
		},
	}
	return r, nil
}

// Model returns the underlying graph-based model.
func (r *UDGResolver) Model() *udg.Model { return r.model }

// DefaultUDGRadius derives a comparison-worthy UDG radius from the
// network: the interference-free reception range of the weakest
// station, i.e. the r solving psi_min / (N * r^alpha) = beta — the
// most generous disk a station could ever cover under the SINR rule.
// For noiseless networks (infinite free-space range) it falls back to
// the largest nearest-peer distance, so no station is isolated; a
// single noiseless station gets radius 1.
func DefaultUDGRadius(net *core.Network) float64 {
	if net.Noise() > 0 {
		psiMin := math.Inf(1)
		for i := 0; i < net.NumStations(); i++ {
			if p := net.Power(i); p < psiMin {
				psiMin = p
			}
		}
		return math.Pow(psiMin/(net.Noise()*net.Beta()), 1/net.Alpha())
	}
	maxKappa := 0.0
	for i := 0; i < net.NumStations(); i++ {
		if k := net.Kappa(i); k > maxKappa {
			maxKappa = k
		}
	}
	if maxKappa > 0 {
		return maxKappa
	}
	return 1
}
