package resolve

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/geom"
	"repro/internal/par"
)

// SnapshotResolver answers every query from one immutable epoch
// snapshot of a dynamic network. It is what a serving layer caches per
// (network, epoch): later mutations never change its answers, so a
// batch or stream handed to it is pinned to its epoch by construction.
// Construction is O(1) — the snapshot already carries every structure
// a query needs — which is what makes per-epoch resolver turnover
// cheap where the static backends would rebuild.
type SnapshotResolver struct {
	engine
	snap *dynamic.Snapshot
}

// NewDynamicSnapshot wraps one epoch snapshot. Only WithWorkers
// applies.
func NewDynamicSnapshot(snap *dynamic.Snapshot, opts ...Option) (*SnapshotResolver, error) {
	if snap == nil {
		return nil, fmt.Errorf("resolve: nil dynamic snapshot")
	}
	c, err := newConfig(opts)
	if err != nil {
		return nil, err
	}
	r := &SnapshotResolver{snap: snap}
	r.engine = engine{
		fn:      snap.Locate,
		workers: c.workers,
		stats:   dynamicStats(snap, c.workers),
	}
	return r, nil
}

// Snapshot returns the pinned epoch.
func (r *SnapshotResolver) Snapshot() *dynamic.Snapshot { return r.snap }

func dynamicStats(snap *dynamic.Snapshot, workers int) Stats {
	return Stats{
		Kind:         KindDynamic,
		Stations:     snap.NumStations(),
		Workers:      workers,
		Epoch:        snap.Epoch(),
		SpatialIndex: snap.GridEnabled(),
	}
}

// DynamicResolver is the epoch-aware Resolver over a live dynamic
// network: every Resolve, ResolveBatch and ResolveStream call pins the
// epoch current when the call starts and answers entirely from it, so
// an in-flight batch or stream is never torn between two station sets
// by a concurrent Apply — the same snapshot-consistency contract the
// serving layer gives hot swaps, at the library level. Use Pin to hold
// one epoch across several calls.
type DynamicResolver struct {
	dyn     *dynamic.Network
	workers int
}

// NewDynamic wraps a dynamic network engine. Only WithWorkers applies.
func NewDynamic(dyn *dynamic.Network, opts ...Option) (*DynamicResolver, error) {
	if dyn == nil {
		return nil, fmt.Errorf("resolve: nil dynamic network")
	}
	c, err := newConfig(opts)
	if err != nil {
		return nil, err
	}
	return &DynamicResolver{dyn: dyn, workers: c.workers}, nil
}

// Network returns the underlying dynamic engine.
func (r *DynamicResolver) Network() *dynamic.Network { return r.dyn }

// Pin returns a SnapshotResolver for the current epoch: answers frozen
// even across later mutations, for callers that must correlate several
// calls against one station set.
func (r *DynamicResolver) Pin() *SnapshotResolver {
	sr, _ := NewDynamicSnapshot(r.dyn.Snapshot(), WithWorkers(r.workers))
	return sr
}

// Resolve implements Resolver, answering from the epoch current at the
// call.
func (r *DynamicResolver) Resolve(_ context.Context, p geom.Point) core.Location {
	return r.dyn.Snapshot().Locate(p)
}

// ResolveBatch implements Resolver; the whole batch is answered from
// the epoch current when the call starts.
func (r *DynamicResolver) ResolveBatch(ctx context.Context, ps []geom.Point, dst []core.Location) error {
	e := engine{fn: r.dyn.Snapshot().Locate, workers: r.workers}
	return e.ResolveBatch(ctx, ps, dst)
}

// ResolveStream implements Resolver; the whole stream is answered from
// the epoch current when the call starts, however long it runs.
func (r *DynamicResolver) ResolveStream(ctx context.Context, in <-chan geom.Point) <-chan core.Location {
	return par.Stream(ctx, in, r.workers, r.dyn.Snapshot().Locate)
}

// Stats implements Resolver, describing the epoch current at the call.
func (r *DynamicResolver) Stats() Stats {
	return dynamicStats(r.dyn.Snapshot(), r.workers)
}
