package resolve

import (
	"fmt"
	"math"
)

// DefaultEps is the Theorem 3 performance parameter used when a
// LocatorResolver is built without WithEpsilon. It matches the serving
// layer's default so a bare NewLocator answers like a bare /v1/locate.
const DefaultEps = 0.05

// config is the merged result of the functional options.
type config struct {
	workers       int
	eps           float64
	exactFallback bool
	spatialIndex  bool
	connRadius    float64
	interfRadius  float64
}

// Option customizes resolver construction. Options irrelevant to a
// backend are validated (a NaN radius is an error everywhere) but
// otherwise ignored, so one option slice can configure any Kind —
// which is what keeps registry-style construction (New) uniform.
type Option func(*config) error

// newConfig applies opts over the defaults: one worker per CPU,
// DefaultEps, exact fallback on, UDG radii derived from the network.
func newConfig(opts []Option) (config, error) {
	c := config{eps: DefaultEps, exactFallback: true, spatialIndex: true}
	for _, opt := range opts {
		if err := opt(&c); err != nil {
			return c, err
		}
	}
	return c, nil
}

// WithWorkers sets the worker count used by ResolveBatch and
// ResolveStream, and by the Theorem 3 locator build. Zero (the
// default) means one worker per schedulable CPU; one forces the
// serial paths. Answers are identical for every setting.
func WithWorkers(workers int) Option {
	return func(c *config) error {
		if workers < 0 {
			return fmt.Errorf("resolve: negative worker count %d", workers)
		}
		c.workers = workers
		return nil
	}
}

// WithEpsilon sets the Theorem 3 performance parameter of a
// LocatorResolver (default DefaultEps): the structure has O(n/eps)
// size and each zone's uncertainty ring at most an eps fraction of
// its area. Other backends ignore it.
func WithEpsilon(eps float64) Option {
	return func(c *config) error {
		if !(eps > 0) || math.IsInf(eps, 0) {
			return fmt.Errorf("resolve: epsilon must be a positive finite number, got %g", eps)
		}
		c.eps = eps
		return nil
	}
}

// WithExactFallback controls how a LocatorResolver answers queries
// landing in an uncertainty ring (default true): with fallback, an H?
// hit is settled by one direct SINR evaluation through the single
// shared code path (Locator.ResolveUncertain), so every answer is
// exact; without it, the resolver surfaces core.Uncertain and the
// caller owns the ring. Other backends are exact by construction and
// ignore the option.
func WithExactFallback(on bool) Option {
	return func(c *config) error {
		c.exactFallback = on
		return nil
	}
}

// WithSpatialIndex controls whether a LocatorResolver's Theorem 3
// structure carries the sharded spatial index over per-station zone
// cover boxes (default true): with it, queries outside every zone —
// the common case over the mostly empty plane — are answered H- from
// one grid-cell lookup, and the kd-tree nearest-station check becomes
// the residual filter for covered points. Answers are identical with
// and without the index; disabling it exists for benchmarking the
// pre-index path. Other backends ignore the option.
func WithSpatialIndex(on bool) Option {
	return func(c *config) error {
		c.spatialIndex = on
		return nil
	}
}

// WithRadius sets a UDGResolver's connectivity radius, and its
// interference radius too unless WithInterfRadius overrides it.
// Unset (zero) means DefaultUDGRadius of the network. Other backends
// ignore it.
func WithRadius(r float64) Option {
	return func(c *config) error {
		if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return fmt.Errorf("resolve: radius must be a non-negative finite number, got %g", r)
		}
		c.connRadius = r
		return nil
	}
}

// WithInterfRadius sets a UDGResolver's interference radius
// independently of its connectivity radius (the Quasi-UDG model);
// it must be at least the connectivity radius. Unset means equal to
// the connectivity radius (classic UDG). Other backends ignore it.
func WithInterfRadius(r float64) Option {
	return func(c *config) error {
		if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return fmt.Errorf("resolve: interference radius must be a non-negative finite number, got %g", r)
		}
		c.interfRadius = r
		return nil
	}
}
