package resolve

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/workload"
)

func testNetwork(t *testing.T, n int, seed int64) *core.Network {
	t.Helper()
	gen := workload.NewGenerator(seed)
	box := geom.NewBox(geom.Pt(-5, -5), geom.Pt(5, 5))
	stations, err := gen.UniformSeparated(n, box, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	net, err := core.NewUniform(stations, 0.01, 3)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// testQueries mixes uniform points with the adversarial ones: the
// stations themselves and exact-tie midpoints.
func testQueries(t *testing.T, net *core.Network, n int, seed int64) []geom.Point {
	t.Helper()
	gen := workload.NewGenerator(seed)
	box := geom.NewBox(geom.Pt(-6, -6), geom.Pt(6, 6))
	pts := gen.QueryPoints(n, box)
	pts = append(pts, net.Stations()...)
	pts = append(pts, geom.Midpoint(net.Station(0), net.Station(1)))
	return pts
}

// batchOf runs ResolveBatch and fails the test on error.
func batchOf(t *testing.T, r Resolver, pts []geom.Point) []core.Location {
	t.Helper()
	dst := make([]core.Location, len(pts))
	if err := r.ResolveBatch(context.Background(), pts, dst); err != nil {
		t.Fatalf("%v ResolveBatch: %v", r.Stats().Kind, err)
	}
	return dst
}

// streamOf pushes pts through ResolveStream and collects the answers.
func streamOf(t *testing.T, r Resolver, pts []geom.Point) []core.Location {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	in := make(chan geom.Point)
	go func() {
		defer close(in)
		for _, p := range pts {
			in <- p
		}
	}()
	var out []core.Location
	for loc := range r.ResolveStream(ctx, in) {
		out = append(out, loc)
	}
	if len(out) != len(pts) {
		t.Fatalf("%v ResolveStream: %d answers for %d points", r.Stats().Kind, len(out), len(pts))
	}
	return out
}

// TestCrossBackendEquivalence is the cross-backend property test: on
// random uniform networks, ExactResolver, LocatorResolver with exact
// fallback and VoronoiResolver return identical answers point-for-
// point, and for EVERY resolver (UDG included) the single-point,
// batch and stream paths agree with each other.
func TestCrossBackendEquivalence(t *testing.T) {
	ctx := context.Background()
	for _, tc := range []struct {
		n    int
		seed int64
	}{
		{4, 101}, {12, 202}, {24, 303},
	} {
		net := testNetwork(t, tc.n, tc.seed)
		pts := testQueries(t, net, 1500, tc.seed+7)

		exact, err := NewExact(net)
		if err != nil {
			t.Fatal(err)
		}
		locator, err := NewLocator(net, WithEpsilon(0.1), WithExactFallback(true))
		if err != nil {
			t.Fatal(err)
		}
		voronoi, err := NewVoronoi(net)
		if err != nil {
			t.Fatal(err)
		}
		udgRes, err := NewUDG(net)
		if err != nil {
			t.Fatal(err)
		}

		want := batchOf(t, exact, pts)
		for _, r := range []Resolver{exact, locator, voronoi, udgRes} {
			kind := r.Stats().Kind
			batch := batchOf(t, r, pts)
			stream := streamOf(t, r, pts)
			for i, p := range pts {
				single := r.Resolve(ctx, p)
				if batch[i] != single {
					t.Fatalf("n=%d %v: batch[%d]=%v != single %v at %v", tc.n, kind, i, batch[i], single, p)
				}
				if stream[i] != single {
					t.Fatalf("n=%d %v: stream[%d]=%v != single %v at %v", tc.n, kind, i, stream[i], single, p)
				}
				// The exact backends must agree with the ground truth;
				// UDG is a different model and legitimately disagrees.
				if kind != KindUDG && single != want[i] {
					t.Fatalf("n=%d %v: answer %v != exact %v at %v", tc.n, kind, single, want[i], p)
				}
			}
		}
	}
}

// TestLocatorApproxMode checks WithExactFallback(false) surfaces H?
// answers and that resolving them through the shared code path
// (Locator.ResolveUncertain) reproduces the exact-fallback resolver.
func TestLocatorApproxMode(t *testing.T) {
	ctx := context.Background()
	net := testNetwork(t, 12, 404)
	pts := testQueries(t, net, 3000, 405)

	approx, err := NewLocator(net, WithEpsilon(0.3), WithExactFallback(false))
	if err != nil {
		t.Fatal(err)
	}
	exactFb, err := NewLocator(net, WithEpsilon(0.3), WithExactFallback(true))
	if err != nil {
		t.Fatal(err)
	}
	if approx.Stats().ExactFallback || !exactFb.Stats().ExactFallback {
		t.Fatalf("ExactFallback stats wrong: %+v vs %+v", approx.Stats(), exactFb.Stats())
	}
	uncertain := 0
	for _, p := range pts {
		a := approx.Resolve(ctx, p)
		if a.Kind == core.Uncertain {
			uncertain++
		}
		got := approx.Locator().ResolveUncertain(a, p)
		if want := exactFb.Resolve(ctx, p); got != want {
			t.Fatalf("ResolveUncertain(%v) = %v, exact-fallback resolver says %v at %v", a, got, want, p)
		}
	}
	if uncertain == 0 {
		t.Fatal("no H? answers sampled; approx mode not exercised (enlarge eps or query count)")
	}
}

// TestBatchCancellation checks an already-cancelled context aborts
// ResolveBatch with ctx.Err().
func TestBatchCancellation(t *testing.T) {
	net := testNetwork(t, 6, 505)
	r, err := NewExact(net)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pts := testQueries(t, net, 100, 506)
	if err := r.ResolveBatch(ctx, pts, make([]core.Location, len(pts))); err != context.Canceled {
		t.Fatalf("ResolveBatch on cancelled ctx = %v, want context.Canceled", err)
	}
	if err := r.ResolveBatch(context.Background(), pts, make([]core.Location, 1)); err == nil {
		t.Fatal("ResolveBatch accepted a mis-sized dst")
	}
}

// TestNewAndParseKind round-trips every kind through the registry
// constructor and the wire vocabulary.
func TestNewAndParseKind(t *testing.T) {
	net := testNetwork(t, 5, 606)
	for _, kind := range Kinds() {
		parsed, err := ParseKind(kind.String())
		if err != nil || parsed != kind {
			t.Fatalf("ParseKind(%q) = %v, %v", kind.String(), parsed, err)
		}
		r, err := New(kind, net, WithWorkers(2), WithEpsilon(0.2), WithRadius(1.5))
		if err != nil {
			t.Fatalf("New(%v): %v", kind, err)
		}
		st := r.Stats()
		if st.Kind != kind || st.Stations != net.NumStations() || st.Workers != 2 {
			t.Fatalf("New(%v).Stats() = %+v", kind, st)
		}
		switch kind {
		case KindLocator:
			if st.Eps != 0.2 || !st.ExactFallback || st.BuildCost <= 0 {
				t.Fatalf("locator stats = %+v", st)
			}
		case KindUDG:
			if st.ConnRadius != 1.5 || st.InterfRadius != 1.5 {
				t.Fatalf("udg stats = %+v", st)
			}
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Fatal("ParseKind accepted an unknown kind")
	}
	if k, err := ParseKind(""); err != nil || k != KindLocator {
		t.Fatalf("ParseKind(\"\") = %v, %v; want the locator default", k, err)
	}
}

// TestDefaultUDGRadius pins the derivation: noise-limited range when
// noise > 0, max nearest-peer distance when noiseless, 1 as the last
// resort.
func TestDefaultUDGRadius(t *testing.T) {
	noisy, err := core.NewUniform([]geom.Point{geom.Pt(0, 0), geom.Pt(3, 0)}, 0.01, 4)
	if err != nil {
		t.Fatal(err)
	}
	// r = (1 / (0.01 * 4))^(1/2) = 5.
	if got := DefaultUDGRadius(noisy); got < 4.999 || got > 5.001 {
		t.Fatalf("noisy radius = %g, want 5", got)
	}
	quiet, err := core.NewUniform([]geom.Point{geom.Pt(0, 0), geom.Pt(3, 0)}, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := DefaultUDGRadius(quiet); got != 3 {
		t.Fatalf("noiseless radius = %g, want 3 (max kappa)", got)
	}
	lone, err := core.NewUniform([]geom.Point{geom.Pt(0, 0)}, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := DefaultUDGRadius(lone); got != 1 {
		t.Fatalf("single-station radius = %g, want 1", got)
	}
}

// TestOptionValidation checks the option validators reject garbage.
func TestOptionValidation(t *testing.T) {
	net := testNetwork(t, 4, 707)
	for _, bad := range [][]Option{
		{WithWorkers(-1)},
		{WithEpsilon(0)},
		{WithEpsilon(-0.5)},
		{WithRadius(-2)},
		{WithInterfRadius(-2)},
	} {
		if _, err := NewExact(net, bad...); err == nil {
			t.Fatalf("options %v accepted", bad)
		}
	}
	// Quasi-UDG: interference radius below connectivity is rejected by
	// the model.
	if _, err := NewUDG(net, WithRadius(2), WithInterfRadius(1)); err == nil {
		t.Fatal("interf < conn accepted")
	}
	if r, err := NewUDG(net, WithRadius(1), WithInterfRadius(2)); err != nil || r.Stats().InterfRadius != 2 {
		t.Fatalf("quasi-UDG: %v, %+v", err, r.Stats())
	}
}

// TestWithSpatialIndex checks the index knob: on by default with
// stats exported, off on request, and answer-identical either way.
func TestWithSpatialIndex(t *testing.T) {
	net := testNetwork(t, 12, 808)
	on, err := NewLocator(net, WithWorkers(1), WithEpsilon(0.2))
	if err != nil {
		t.Fatal(err)
	}
	off, err := NewLocator(net, WithWorkers(1), WithEpsilon(0.2), WithSpatialIndex(false))
	if err != nil {
		t.Fatal(err)
	}
	if s := on.Stats(); !s.SpatialIndex || s.IndexCells <= 0 || s.IndexOccupied <= 0 ||
		s.IndexMaxPerCell <= 0 || s.IndexAvgPerCell <= 0 {
		t.Fatalf("default locator stats lack index description: %+v", s)
	}
	if s := off.Stats(); s.SpatialIndex || s.IndexCells != 0 || s.IndexOccupied != 0 {
		t.Fatalf("WithSpatialIndex(false) stats still describe an index: %+v", s)
	}
	if on.Locator().SpatialIndex() == nil || off.Locator().SpatialIndex() != nil {
		t.Fatal("index presence does not match the option")
	}
	ctx := context.Background()
	for _, p := range testQueries(t, net, 2000, 809) {
		if got, want := on.Resolve(ctx, p), off.Resolve(ctx, p); got != want {
			t.Fatalf("Resolve(%v) indexed %+v != plain %+v", p, got, want)
		}
	}
}
