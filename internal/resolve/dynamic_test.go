package resolve

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/geom"
	"repro/internal/workload"
)

func dynTestEngine(t *testing.T) (*dynamic.Network, geom.Box) {
	t.Helper()
	box := geom.NewBox(geom.Pt(-4, -4), geom.Pt(4, 4))
	pts, err := workload.NewGenerator(21).UniformSeparated(12, box, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	net, err := core.NewUniform(pts, 0.01, 3)
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := dynamic.New(net)
	if err != nil {
		t.Fatal(err)
	}
	return dyn, box
}

// TestDynamicKindWiring covers the Kind plumbing: the wire name
// round-trips, the static registry rejects it, and Kinds stays the
// four static backends.
func TestDynamicKindWiring(t *testing.T) {
	k, err := ParseKind("dynamic")
	if err != nil || k != KindDynamic {
		t.Fatalf("ParseKind(dynamic) = (%v, %v)", k, err)
	}
	if got := KindDynamic.String(); got != "dynamic" {
		t.Fatalf("KindDynamic.String() = %q", got)
	}
	net, err := core.NewUniform([]geom.Point{geom.Pt(0, 0), geom.Pt(2, 0)}, 0.01, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(KindDynamic, net); err == nil {
		t.Fatal("New(KindDynamic, net) accepted a bare network")
	}
	for _, k := range Kinds() {
		if k == KindDynamic {
			t.Fatal("Kinds() lists the dynamic backend")
		}
	}
}

// TestDynamicResolverMatchesExactAcrossEpochs: at every epoch, the
// dynamic resolver's single/batch/stream answers must match an
// ExactResolver built from scratch on the same station set.
func TestDynamicResolverMatchesExactAcrossEpochs(t *testing.T) {
	dyn, box := dynTestEngine(t)
	r, err := NewDynamic(dyn, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewGenerator(22)
	probes := gen.QueryPoints(200, box)
	ctx := context.Background()

	for _, ev := range gen.ChurnTrace(12, 10, box, 1, 1, 1, 0.3) {
		var d dynamic.Delta
		switch ev.Kind {
		case workload.ChurnArrive:
			d = dynamic.Delta{Add: []dynamic.Station{{Pos: ev.Pos, Power: ev.Power}}}
		case workload.ChurnDepart:
			d = dynamic.Delta{Remove: []int{ev.Station}}
		case workload.ChurnPower:
			d = dynamic.Delta{SetPower: []dynamic.PowerUpdate{{Station: ev.Station, Power: ev.Power}}}
		}
		snap, err := dyn.Apply(d)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := NewExact(snap.Network())
		if err != nil {
			t.Fatal(err)
		}
		batch := make([]core.Location, len(probes))
		if err := r.ResolveBatch(ctx, probes, batch); err != nil {
			t.Fatal(err)
		}
		in := make(chan geom.Point)
		go func() {
			defer close(in)
			for _, p := range probes {
				in <- p
			}
		}()
		i := 0
		for got := range r.ResolveStream(ctx, in) {
			if want := exact.Resolve(ctx, probes[i]); got != want {
				t.Fatalf("epoch %d: stream answer %d = %+v, want %+v", snap.Epoch(), i, got, want)
			}
			i++
		}
		if i != len(probes) {
			t.Fatalf("stream delivered %d answers, want %d", i, len(probes))
		}
		for j, p := range probes {
			want := exact.Resolve(ctx, p)
			if got := r.Resolve(ctx, p); got != want {
				t.Fatalf("epoch %d: Resolve(%v) = %+v, want %+v", snap.Epoch(), p, got, want)
			}
			if batch[j] != want {
				t.Fatalf("epoch %d: batch[%d] = %+v, want %+v", snap.Epoch(), j, batch[j], want)
			}
		}
		if st := r.Stats(); st.Kind != KindDynamic || st.Epoch != snap.Epoch() || st.Stations != snap.NumStations() {
			t.Fatalf("stats %+v out of step with epoch %d (%d stations)", st, snap.Epoch(), snap.NumStations())
		}
	}
}

// TestPinHoldsEpoch: a pinned snapshot resolver keeps answering from
// its epoch while the engine moves on; the live resolver follows.
func TestPinHoldsEpoch(t *testing.T) {
	dyn, box := dynTestEngine(t)
	r, err := NewDynamic(dyn)
	if err != nil {
		t.Fatal(err)
	}
	pinned := r.Pin()
	if pinned.Stats().Epoch != 1 {
		t.Fatalf("pinned epoch %d, want 1", pinned.Stats().Epoch)
	}
	probes := workload.NewGenerator(23).QueryPoints(100, box)
	ctx := context.Background()
	before := make([]core.Location, len(probes))
	for i, p := range probes {
		before[i] = pinned.Resolve(ctx, p)
	}
	// Drastic churn: remove most stations.
	if _, err := dyn.Apply(dynamic.Delta{Remove: []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}}); err != nil {
		t.Fatal(err)
	}
	for i, p := range probes {
		if got := pinned.Resolve(ctx, p); got != before[i] {
			t.Fatalf("pinned answer changed at %v: %+v -> %+v", p, before[i], got)
		}
	}
	if got := r.Stats(); got.Epoch != 2 || got.Stations != 2 {
		t.Fatalf("live resolver stats %+v, want epoch 2 with 2 stations", got)
	}
}
