// Package resolve defines the one query interface of the repository:
// a Resolver answers "which station is heard at point p?" for a fixed
// network, in three shapes (single point, batch, ordered stream), and
// reports its own metadata through Stats.
//
// The paper's point is that several very different algorithms answer
// this same question: direct SINR evaluation (the ground truth, O(n)
// per query), the Theorem 3 structure (O(log n) per query with an
// eps-area uncertainty ring), the Voronoi nearest-candidate check
// (Observation 2.2 plus one SINR evaluation), and the graph-based
// UDG/protocol model the paper argues against. This package gives each
// of them the same surface — ExactResolver, LocatorResolver,
// VoronoiResolver, UDGResolver — so serving paths, benchmarks and
// experiments can swap backends per request instead of per code path.
//
// All resolvers are immutable once constructed and safe for concurrent
// use from any number of goroutines. Construction goes through
// functional options (WithWorkers, WithEpsilon, WithExactFallback,
// WithRadius, WithInterfRadius); the generic constructor New builds
// any backend from its Kind, which is what registry-style callers
// (internal/serve's resolver cache) use.
//
// # The no-station answer, once and for all
//
// Every Resolver reports "no station is heard at p" the same way: a
// core.Location with Kind core.NoReception. The Station field of a
// NoReception answer is meaningless — branch on Kind, never on the
// index. When an answer is flattened to a bare station index (batch
// wire formats, raster pixels), NoReception maps to the sentinel
// core.NoStationHeard (-1) and any index >= 0 is a heard station; the
// comma-ok APIs of the underlying models (Network.HeardBy and friends)
// express the same answer as (0, false). This paragraph is the single
// authoritative statement of that contract; per-method docs refer here.
//
// Exact resolvers (ExactResolver, VoronoiResolver, LocatorResolver
// with exact fallback, UDGResolver) never return core.Uncertain; only
// a LocatorResolver built with WithExactFallback(false) surfaces the
// Theorem 3 H? ring to its caller.
package resolve
