package resolve

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/par"
)

// Kind identifies a resolver backend.
type Kind int

// The backends. KindLocator is the default of registry-style callers
// (zero value is KindExact so an uninitialized Kind is the ground
// truth, never an approximation). KindDynamic is the epoch-snapshot
// backend of a dynamic network: unlike the static four it cannot be
// built from a bare *core.Network — use NewDynamic / NewDynamicSnapshot
// with a dynamic engine — so it is not listed by Kinds().
const (
	KindExact   Kind = iota // direct SINR evaluation (ground truth)
	KindLocator             // Theorem 3 point-location structure
	KindVoronoi             // nearest-candidate + one SINR check
	KindUDG                 // graph-based UDG/protocol baseline
	KindDynamic             // dynamic-network epoch snapshot
)

// NumKinds is the number of defined backends. Kind values are dense
// (0..NumKinds-1), so per-kind tables — the serve layer's per-resolver
// metric arrays — can be plain arrays indexed by Kind.
const NumKinds = int(KindDynamic) + 1

// String implements fmt.Stringer; the names double as the wire and
// flag vocabulary ("exact", "locator", "voronoi", "udg").
func (k Kind) String() string {
	switch k {
	case KindExact:
		return "exact"
	case KindLocator:
		return "locator"
	case KindVoronoi:
		return "voronoi"
	case KindUDG:
		return "udg"
	case KindDynamic:
		return "dynamic"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Kinds lists every static backend, in Kind order — the iteration set
// of cross-backend comparisons and CI matrices. KindDynamic is not
// listed: it answers for a dynamic engine's current epoch, not for a
// fixed network, so it has no place in a fixed-network comparison.
func Kinds() []Kind { return []Kind{KindExact, KindLocator, KindVoronoi, KindUDG} }

// ParseKind maps a wire/flag name to its Kind. The empty string maps
// to KindLocator, the serving default.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "":
		return KindLocator, nil
	case "exact":
		return KindExact, nil
	case "locator":
		return KindLocator, nil
	case "voronoi":
		return KindVoronoi, nil
	case "udg":
		return KindUDG, nil
	case "dynamic":
		return KindDynamic, nil
	default:
		return 0, fmt.Errorf("resolve: unknown resolver kind %q (want exact, locator, voronoi, udg or dynamic)", s)
	}
}

// Stats is a resolver's self-description: what algorithm answers, how
// it was parameterized, and what its construction cost. Fields not
// applicable to a backend are zero (Eps and ExactFallback are
// locator-only; ConnRadius and InterfRadius are UDG-only).
type Stats struct {
	Kind     Kind
	Stations int
	Workers  int // batch/stream worker count (0 = one per CPU)

	// Epoch is the dynamic-network epoch the resolver answers from
	// (dynamic backend only; a DynamicResolver reports the epoch
	// current at the Stats call).
	Epoch uint64

	Eps           float64 // locator performance parameter
	ExactFallback bool    // locator: H? answers settled exactly
	UncertainSize int     // locator: total |T?| across stations

	// Spatial-index self-description (locator-only; zero when the
	// index is disabled or the backend has none). IndexCells is the
	// grid size, IndexOccupied the cells with at least one candidate
	// station, IndexMaxPerCell the worst-case candidate list a query
	// can hit and IndexAvgPerCell the mean over occupied cells.
	SpatialIndex    bool
	IndexCells      int
	IndexOccupied   int
	IndexMaxPerCell int
	IndexAvgPerCell float64

	ConnRadius   float64 // UDG connectivity radius
	InterfRadius float64 // UDG interference radius

	BuildCost time.Duration // wall time of construction
}

// Resolver is the one query interface over every reception model: it
// answers "which station is heard at p?" for a fixed network. The
// no-station answer convention is documented once in the package
// comment. Implementations are immutable and safe for concurrent use.
type Resolver interface {
	// Resolve answers one query. It never blocks on other queries;
	// ctx is consulted only by implementations with per-query work
	// worth cancelling (none of the built-in backends are).
	Resolve(ctx context.Context, p geom.Point) core.Location

	// ResolveBatch answers one query per input point, sharding the
	// slice over the resolver's worker pool and writing answers to
	// dst at the index of their query point. dst must have exactly
	// len(ps) entries. Answers are identical to calling Resolve
	// point-by-point; a ctx cancellation abandons unstarted shards
	// and returns ctx.Err() (dst is then partially written).
	ResolveBatch(ctx context.Context, ps []geom.Point, dst []core.Location) error

	// ResolveStream answers a live stream of queries: points read
	// from in are resolved on the worker pool and delivered on the
	// returned channel in input order. The channel closes after the
	// last answer or as soon as ctx is cancelled; abandoning the
	// stream without cancelling ctx leaks the pipeline goroutines.
	ResolveStream(ctx context.Context, in <-chan geom.Point) <-chan core.Location

	// Stats reports the backend's kind, parameters and build cost.
	Stats() Stats
}

// engine is the shared batch/stream machinery every backend embeds:
// a per-point answer function fanned out by par.Chunks and par.Stream.
type engine struct {
	fn      func(p geom.Point) core.Location
	workers int
	stats   Stats
}

// Resolve implements Resolver.
func (e *engine) Resolve(_ context.Context, p geom.Point) core.Location { return e.fn(p) }

// ResolveBatch implements Resolver.
func (e *engine) ResolveBatch(ctx context.Context, ps []geom.Point, dst []core.Location) error {
	if len(dst) != len(ps) {
		return fmt.Errorf("resolve: dst has %d entries for %d points", len(dst), len(ps))
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	var cancelled atomic.Bool
	par.Chunks(len(ps), e.workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			// Checking ctx.Err() costs a shared mutex lock on HTTP
			// request contexts, so probe it once per block rather
			// than per point — responsiveness within ~256 cheap
			// queries, without serializing the workers on one lock.
			if (i-lo)%256 == 0 && ctx.Err() != nil {
				cancelled.Store(true)
				return
			}
			dst[i] = e.fn(ps[i])
		}
	})
	if cancelled.Load() {
		return ctx.Err()
	}
	return nil
}

// ResolveStream implements Resolver.
func (e *engine) ResolveStream(ctx context.Context, in <-chan geom.Point) <-chan core.Location {
	return par.Stream(ctx, in, e.workers, e.fn)
}

// Stats implements Resolver.
func (e *engine) Stats() Stats { return e.stats }

// New constructs the backend named by kind for net — the registry
// entry point: a serving layer or benchmark that got "udg" off the
// wire calls New(KindUDG, net, opts...) and treats the result as any
// other Resolver.
func New(kind Kind, net *core.Network, opts ...Option) (Resolver, error) {
	switch kind {
	case KindExact:
		return NewExact(net, opts...)
	case KindLocator:
		return NewLocator(net, opts...)
	case KindVoronoi:
		return NewVoronoi(net, opts...)
	case KindUDG:
		return NewUDG(net, opts...)
	case KindDynamic:
		return nil, fmt.Errorf("resolve: the dynamic backend answers for a dynamic engine, not a bare network; use NewDynamic or NewDynamicSnapshot")
	default:
		return nil, fmt.Errorf("resolve: unknown resolver kind %v", kind)
	}
}

// StationIndex flattens a Location to the batch wire shape: the heard
// station's index, or core.NoStationHeard for a NoReception (or
// unresolved Uncertain) answer — see the package comment for the
// sentinel contract.
func StationIndex(loc core.Location) int {
	if loc.Kind == core.Reception {
		return loc.Station
	}
	return core.NoStationHeard
}
