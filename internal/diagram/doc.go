// Package diagram builds first-class SINR diagram objects: per-zone
// polygonal geometry with areas, perimeters and radii, whole-diagram
// coverage statistics, and the communication graph induced by
// concurrent transmission (which station hears which) — the object
// the paper names its central concept ("an SINR diagram is a
// reception map characterizing the reception zones of the stations").
//
// Map to the paper: the diagram itself is the Section 1/2 concept the
// title refers to; per-zone measurements feed the Theorem 2 fatness
// validations, and the communication graph realizes the connectivity
// view the introduction contrasts with graph-based models.
package diagram
