package diagram

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/geom"
)

// ZoneInfo is the measured geometry of one reception zone.
type ZoneInfo struct {
	Station    int
	Location   geom.Point
	Degenerate bool         // H_i = {s_i} (shared location)
	Boundary   geom.Polygon // polygonal approximation of ∂H_i (ccw)
	Area       float64
	Perimeter  float64
	RMin       float64 // delta(s_i, H_i) estimate
	RMax       float64 // Delta(s_i, H_i) estimate
}

// Fatness returns the zone's measured fatness parameter RMax/RMin
// (+Inf for degenerate zones).
func (z ZoneInfo) Fatness() float64 {
	if z.RMin == 0 {
		return math.Inf(1)
	}
	return z.RMax / z.RMin
}

// Diagram is a measured SINR diagram of a network.
type Diagram struct {
	net   *core.Network
	zones []ZoneInfo
}

// Build measures every reception zone with the given boundary sample
// count (>= 16; radial probes at tol precision). Requirements are
// those of bounded zones: a uniform power network with alpha = 2 and
// beta > 1... beta >= 1 with positive noise also works; the actual
// requirement enforced is that radial probing succeeds, so any
// uniform network with beta >= 1 and bounded zones is accepted.
func Build(net *core.Network, samples int, tol float64) (*Diagram, error) {
	if net == nil {
		return nil, errors.New("diagram: nil network")
	}
	if samples < 16 {
		samples = 64
	}
	d := &Diagram{net: net, zones: make([]ZoneInfo, net.NumStations())}
	for i := 0; i < net.NumStations(); i++ {
		info := ZoneInfo{Station: i, Location: net.Station(i)}
		if net.SharesLocation(i) {
			info.Degenerate = true
			d.zones[i] = info
			continue
		}
		z, err := net.Zone(i)
		if err != nil {
			return nil, err
		}
		pts, err := z.SampleBoundary(samples, tol)
		if err != nil {
			return nil, fmt.Errorf("diagram: zone %d: %w", i, err)
		}
		info.Boundary = geom.Polygon(pts)
		info.Area = math.Abs(info.Boundary.Area())
		info.Perimeter = info.Boundary.Perimeter()
		info.RMin, info.RMax = math.Inf(1), 0
		for _, p := range pts {
			r := geom.Dist(net.Station(i), p)
			if r < info.RMin {
				info.RMin = r
			}
			if r > info.RMax {
				info.RMax = r
			}
		}
		d.zones[i] = info
	}
	return d, nil
}

// Network returns the underlying network.
func (d *Diagram) Network() *core.Network { return d.net }

// NumZones returns the number of zones (== stations).
func (d *Diagram) NumZones() int { return len(d.zones) }

// Zone returns the measured info of zone i.
func (d *Diagram) Zone(i int) ZoneInfo { return d.zones[i] }

// TotalArea returns the summed reception area over all zones. Zones
// are pairwise disjoint for beta > 1, so the sum is the area where
// anybody is heard.
func (d *Diagram) TotalArea() float64 {
	var a float64
	for _, z := range d.zones {
		a += z.Area
	}
	return a
}

// CoverageFraction returns TotalArea divided by box area — the
// fraction of the deployment region with reception.
func (d *Diagram) CoverageFraction(box geom.Box) float64 {
	ba := box.Area()
	if ba <= 0 {
		return 0
	}
	return d.TotalArea() / ba
}

// MaxFatness returns the largest measured fatness over non-degenerate
// zones (0 when all zones are degenerate).
func (d *Diagram) MaxFatness() float64 {
	var m float64
	for _, z := range d.zones {
		if z.Degenerate {
			continue
		}
		if f := z.Fatness(); f > m {
			m = f
		}
	}
	return m
}

// CommunicationGraph returns the directed graph induced by concurrent
// transmission: edge i -> j iff station j successfully receives i's
// transmission at its own location while every station except j
// transmits (receivers are half-duplex, so j is not part of its own
// interference). This is the "real" connectivity a graph-based model
// tries to approximate.
func (d *Diagram) CommunicationGraph() [][]bool {
	n := d.net.NumStations()
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
		for j := range adj[i] {
			if i == j {
				continue
			}
			rx := d.net.Station(j)
			signal := d.net.Energy(i, rx)
			if math.IsInf(signal, 1) {
				// Transmitter colocated with the receiver: treat the
				// degenerate zero-distance link as connected.
				adj[i][j] = true
				continue
			}
			interference := 0.0
			for m := 0; m < n; m++ {
				if m == i || m == j {
					continue
				}
				interference += d.net.Energy(m, rx)
			}
			adj[i][j] = signal >= d.net.Beta()*(interference+d.net.Noise())
		}
	}
	return adj
}

// SymmetricLinks returns the pairs (i, j), i < j, connected in both
// directions of the communication graph — the bidirectional links a
// protocol could actually use.
func (d *Diagram) SymmetricLinks() [][2]int {
	adj := d.CommunicationGraph()
	var out [][2]int
	for i := range adj {
		for j := i + 1; j < len(adj); j++ {
			if adj[i][j] && adj[j][i] {
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out
}

// WeakComponents returns the weakly connected components of the
// communication graph (treating edges as undirected), as sorted index
// slices. With beta > 1, concurrent transmission usually shatters the
// network into many components — the capacity phenomenon behind the
// paper's scheduling references.
func (d *Diagram) WeakComponents() [][]int {
	n := d.net.NumStations()
	adj := d.CommunicationGraph()
	seen := make([]bool, n)
	var comps [][]int
	for start := 0; start < n; start++ {
		if seen[start] {
			continue
		}
		var comp []int
		stack := []int{start}
		seen[start] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, v)
			for w := 0; w < n; w++ {
				if !seen[w] && (adj[v][w] || adj[w][v]) {
					seen[w] = true
					stack = append(stack, w)
				}
			}
		}
		insertionSort(comp)
		comps = append(comps, comp)
	}
	return comps
}

func insertionSort(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
