package diagram

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
)

func twoStationNet(t *testing.T) *core.Network {
	t.Helper()
	n, err := core.NewUniform([]geom.Point{geom.Pt(0, 0), geom.Pt(1, 0)}, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, 64, 1e-6); err == nil {
		t.Error("nil network must fail")
	}
}

func TestBuildApolloniusGeometry(t *testing.T) {
	d, err := Build(twoStationNet(t), 256, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumZones() != 2 {
		t.Fatalf("zones = %d", d.NumZones())
	}
	z0 := d.Zone(0)
	// Known: disk of radius 2/3 -> area 4pi/9, perimeter 4pi/3,
	// rMin 1/3, rMax 1.
	if math.Abs(z0.Area-4*math.Pi/9) > 0.01*4*math.Pi/9 {
		t.Errorf("area = %v", z0.Area)
	}
	if math.Abs(z0.Perimeter-4*math.Pi/3) > 0.01*4*math.Pi/3 {
		t.Errorf("perimeter = %v", z0.Perimeter)
	}
	if math.Abs(z0.RMin-1.0/3) > 1e-3 || math.Abs(z0.RMax-1) > 1e-3 {
		t.Errorf("radii = [%v, %v]", z0.RMin, z0.RMax)
	}
	if math.Abs(z0.Fatness()-3) > 0.02 {
		t.Errorf("fatness = %v", z0.Fatness())
	}
	if !z0.Boundary.IsConvex() {
		t.Error("boundary sample of a convex zone should be convex")
	}
	// Symmetry: the two zones have equal areas.
	if z1 := d.Zone(1); math.Abs(z1.Area-z0.Area) > 0.01*z0.Area {
		t.Errorf("zone areas differ: %v vs %v", z0.Area, z1.Area)
	}
	if got := d.TotalArea(); math.Abs(got-2*z0.Area) > 1e-9 {
		t.Errorf("TotalArea = %v", got)
	}
}

func TestDegenerateZone(t *testing.T) {
	n, err := core.NewUniform(
		[]geom.Point{geom.Pt(0, 0), geom.Pt(0, 0), geom.Pt(3, 0)}, 0.01, 2)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Build(n, 64, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Zone(0).Degenerate || !d.Zone(1).Degenerate {
		t.Error("shared-location zones must be degenerate")
	}
	if d.Zone(2).Degenerate {
		t.Error("zone 2 must be measured")
	}
	if !math.IsInf(d.Zone(0).Fatness(), 1) {
		t.Error("degenerate fatness must be +Inf")
	}
}

func TestCoverageFraction(t *testing.T) {
	d, err := Build(twoStationNet(t), 128, 1e-7)
	if err != nil {
		t.Fatal(err)
	}
	box := geom.NewBox(geom.Pt(-3, -3), geom.Pt(3, 3))
	frac := d.CoverageFraction(box)
	want := d.TotalArea() / 36
	if math.Abs(frac-want) > 1e-12 {
		t.Errorf("coverage = %v, want %v", frac, want)
	}
	if got := d.CoverageFraction(geom.Box{}); got != 0 {
		t.Errorf("degenerate box coverage = %v", got)
	}
}

func TestMaxFatnessWithinBound(t *testing.T) {
	n, err := core.NewUniform([]geom.Point{
		geom.Pt(0, 0), geom.Pt(3, 1), geom.Pt(-2, 2), geom.Pt(1, -3),
	}, 0.01, 3)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Build(n, 128, 1e-7)
	if err != nil {
		t.Fatal(err)
	}
	bound, err := core.FatnessBound(3)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.MaxFatness(); got <= 0 || got > bound*(1+1e-6) {
		t.Errorf("MaxFatness = %v, bound %v", got, bound)
	}
}

func TestCommunicationGraph(t *testing.T) {
	// Two clusters of two nearby stations, clusters far apart: with
	// concurrent transmission, each station hears its close partner's
	// signal only if SINR clears beta. Here partners are at distance
	// 0.1 while the other cluster is 100 away: links inside clusters
	// are symmetric, across clusters absent.
	n, err := core.NewUniform([]geom.Point{
		geom.Pt(0, 0), geom.Pt(0.1, 0),
		geom.Pt(100, 0), geom.Pt(100.1, 0),
	}, 0.0001, 2)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Build(n, 64, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	adj := d.CommunicationGraph()
	if !adj[0][1] || !adj[1][0] || !adj[2][3] || !adj[3][2] {
		t.Errorf("intra-cluster links missing: %v", adj)
	}
	if adj[0][2] || adj[2][0] || adj[1][3] {
		t.Errorf("cross-cluster links present: %v", adj)
	}
	if adj[0][0] {
		t.Error("self loop")
	}
	links := d.SymmetricLinks()
	if len(links) != 2 {
		t.Errorf("symmetric links = %v", links)
	}
	comps := d.WeakComponents()
	if len(comps) != 2 {
		t.Fatalf("components = %v", comps)
	}
	if len(comps[0]) != 2 || len(comps[1]) != 2 {
		t.Errorf("component sizes: %v", comps)
	}
}

func TestCommunicationGraphJam(t *testing.T) {
	// Three colinear stations, middle one jammed from both sides: with
	// beta = 2 nobody hears anybody (symmetric interference).
	n, err := core.NewUniform([]geom.Point{
		geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0),
	}, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Build(n, 64, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	adj := d.CommunicationGraph()
	// Station 1 (middle) is 1 away from both others; each signal gets
	// SINR = (1)/(1/4 [other] + 0) = 4 >= 2? dist(0, s1)=1, interferer
	// s2 at dist 1 from s1: SINR(0, s1) = 1/(1) = 1 < 2: not heard.
	if adj[0][1] {
		t.Errorf("edge 0->1 should be jammed by station 2: %v", adj)
	}
	// Outer stations: s0 at s2's location: signal 1/4, interference
	// from s1 at dist 1 = 1: SINR = 0.25 < 2.
	if adj[0][2] {
		t.Error("edge 0->2 should be jammed")
	}
}
