// Package udg implements the graph-based wireless models the paper
// contrasts with the SINR model: the unit disk graph (UDG, also known
// as the protocol model), the Quasi-UDG of Kuhn et al., and the
// general two-graph connectivity/interference model. It also provides
// the comparator that classifies UDG-vs-SINR disagreements into false
// positives and false negatives.
//
// Map to the paper: Section 1's critique of graph-based models and
// Figures 2-4, where the UDG reception picture is laid over the SINR
// diagram and the disagreement regions are measured.
package udg
