package udg

import "sort"

// This file implements the derived graph concepts the paper's
// Section 1.1 credits graph-based models for making easy — maximal
// independent sets, dominating sets, and clustering — so that the
// examples and experiments can contrast "easy on the graph, wrong
// about the physics" with SINR-checked alternatives.

// MaximalIndependentSet returns a maximal independent set of the
// connectivity graph, greedily by ascending degree (a standard
// heuristic that also yields a small dominating set, since a maximal
// independent set dominates).
func (m *Model) MaximalIndependentSet() []int {
	n := len(m.stations)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	deg := make([]int, n)
	for i := range deg {
		deg[i] = m.Degree(i)
	}
	sort.SliceStable(order, func(a, b int) bool { return deg[order[a]] < deg[order[b]] })

	blocked := make([]bool, n)
	var mis []int
	for _, v := range order {
		if blocked[v] {
			continue
		}
		mis = append(mis, v)
		blocked[v] = true
		for _, w := range m.Neighbors(v) {
			blocked[w] = true
		}
	}
	sort.Ints(mis)
	return mis
}

// IsIndependent reports whether no two stations in set are adjacent.
func (m *Model) IsIndependent(set []int) bool {
	for i := 0; i < len(set); i++ {
		for j := i + 1; j < len(set); j++ {
			if m.Adjacent(set[i], set[j]) {
				return false
			}
		}
	}
	return true
}

// IsDominating reports whether every station is in set or adjacent to
// a member of set.
func (m *Model) IsDominating(set []int) bool {
	inSet := make(map[int]bool, len(set))
	for _, v := range set {
		inSet[v] = true
	}
	for v := range m.stations {
		if inSet[v] {
			continue
		}
		dominated := false
		for _, w := range m.Neighbors(v) {
			if inSet[w] {
				dominated = true
				break
			}
		}
		if !dominated {
			return false
		}
	}
	return true
}

// GreedyDominatingSet returns a dominating set built by the standard
// greedy max-coverage rule: repeatedly pick the station covering the
// most not-yet-dominated stations.
func (m *Model) GreedyDominatingSet() []int {
	n := len(m.stations)
	covered := make([]bool, n)
	remaining := n
	var ds []int
	for remaining > 0 {
		best, bestGain := -1, -1
		for v := 0; v < n; v++ {
			gain := 0
			if !covered[v] {
				gain++
			}
			for _, w := range m.Neighbors(v) {
				if !covered[w] {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = v, gain
			}
		}
		if bestGain <= 0 {
			break // isolated leftovers (cannot happen: self-cover counts)
		}
		ds = append(ds, best)
		if !covered[best] {
			covered[best] = true
			remaining--
		}
		for _, w := range m.Neighbors(best) {
			if !covered[w] {
				covered[w] = true
				remaining--
			}
		}
	}
	sort.Ints(ds)
	return ds
}

// Cluster groups stations around the members of a maximal independent
// set: every station joins its nearest (graph-adjacent, breaking ties
// by index) MIS head; MIS heads form singleton cores. Returns
// head-index -> member indices (heads included in their own cluster).
func (m *Model) Cluster() map[int][]int {
	heads := m.MaximalIndependentSet()
	isHead := make(map[int]bool, len(heads))
	for _, h := range heads {
		isHead[h] = true
	}
	clusters := make(map[int][]int, len(heads))
	for _, h := range heads {
		clusters[h] = append(clusters[h], h)
	}
	for v := range m.stations {
		if isHead[v] {
			continue
		}
		assigned := -1
		bestDist := 0.0
		for _, h := range heads {
			if !m.Adjacent(v, h) {
				continue
			}
			d := distBetween(m, v, h)
			if assigned == -1 || d < bestDist {
				assigned, bestDist = h, d
			}
		}
		if assigned == -1 {
			// Not adjacent to any head (isolated vertex): it is its own
			// cluster; a maximal independent set would have included it,
			// so this only happens for self-loops excluded by Adjacent.
			clusters[v] = append(clusters[v], v)
			continue
		}
		clusters[assigned] = append(clusters[assigned], v)
	}
	for h := range clusters {
		sort.Ints(clusters[h])
	}
	return clusters
}

func distBetween(m *Model, i, j int) float64 {
	d := m.stations[i].Sub(m.stations[j])
	return d.Norm()
}
