package udg

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/geom"
)

// Common validation errors.
var (
	ErrBadRadius = errors.New("udg: radii must be positive")
	ErrBadRange  = errors.New("udg: interference radius must be >= connectivity radius")
)

// Model is a two-graph graph-based reception model over a fixed
// station set: a transmission from station i is received at point p
// iff dist(s_i, p) <= ConnRadius and no other *transmitting* station
// lies within InterfRadius of p. Setting ConnRadius == InterfRadius
// yields the classic UDG / protocol model; InterfRadius > ConnRadius
// yields the Quasi-UDG model of [Kuhn-Wattenhofer-Zollinger 2003].
type Model struct {
	stations     []geom.Point
	connRadius   float64
	interfRadius float64
}

// New returns a graph-based model with the given radii. It returns an
// error unless 0 < connRadius <= interfRadius.
func New(stations []geom.Point, connRadius, interfRadius float64) (*Model, error) {
	if len(stations) == 0 {
		return nil, errors.New("udg: need at least one station")
	}
	if connRadius <= 0 || interfRadius <= 0 || math.IsNaN(connRadius) || math.IsNaN(interfRadius) {
		return nil, ErrBadRadius
	}
	if interfRadius < connRadius {
		return nil, ErrBadRange
	}
	return &Model{
		stations:     append([]geom.Point(nil), stations...),
		connRadius:   connRadius,
		interfRadius: interfRadius,
	}, nil
}

// NewUDG returns the classic unit disk graph model with radius r
// (connectivity and interference coincide).
func NewUDG(stations []geom.Point, r float64) (*Model, error) {
	return New(stations, r, r)
}

// NumStations returns the number of stations.
func (m *Model) NumStations() int { return len(m.stations) }

// Station returns the location of station i.
func (m *Model) Station(i int) geom.Point { return m.stations[i] }

// ConnRadius returns the connectivity radius.
func (m *Model) ConnRadius() float64 { return m.connRadius }

// InterfRadius returns the interference radius.
func (m *Model) InterfRadius() float64 { return m.interfRadius }

// Heard reports whether the transmission of station i is received at
// point p under the graph rule, assuming every station transmits.
func (m *Model) Heard(i int, p geom.Point) bool {
	return m.HeardAmong(i, p, nil)
}

// HeardAmong reports reception of station i at p when only the
// stations in transmitting (by index) are active. A nil set means all
// stations transmit. Station i itself must be in the transmitting set.
func (m *Model) HeardAmong(i int, p geom.Point, transmitting map[int]bool) bool {
	if transmitting != nil && !transmitting[i] {
		return false
	}
	if geom.Dist(m.stations[i], p) > m.connRadius {
		return false
	}
	for j, s := range m.stations {
		if j == i {
			continue
		}
		if transmitting != nil && !transmitting[j] {
			continue
		}
		if geom.Dist(s, p) <= m.interfRadius {
			return false
		}
	}
	return true
}

// HeardBy returns the station heard at p (and true), or (0, false).
// Under the graph rule at most one station can be heard when the
// interference radius is at least the connectivity radius.
func (m *Model) HeardBy(p geom.Point) (int, bool) {
	for i := range m.stations {
		if m.Heard(i, p) {
			return i, true
		}
	}
	return 0, false
}

// Adjacent reports whether stations i and j are neighbors in the
// connectivity graph (dist <= ConnRadius).
func (m *Model) Adjacent(i, j int) bool {
	if i == j {
		return false
	}
	return geom.Dist(m.stations[i], m.stations[j]) <= m.connRadius
}

// Neighbors returns the indices of station i's connectivity-graph
// neighbors.
func (m *Model) Neighbors(i int) []int {
	var out []int
	for j := range m.stations {
		if m.Adjacent(i, j) {
			out = append(out, j)
		}
	}
	return out
}

// Degree returns the number of connectivity-graph neighbors of i.
func (m *Model) Degree(i int) int { return len(m.Neighbors(i)) }

// AdjacencyMatrix returns the symmetric boolean adjacency matrix of
// the connectivity graph.
func (m *Model) AdjacencyMatrix() [][]bool {
	n := len(m.stations)
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
		for j := range adj[i] {
			adj[i][j] = m.Adjacent(i, j)
		}
	}
	return adj
}

// ConnectedComponents returns the connected components of the
// connectivity graph as slices of station indices.
func (m *Model) ConnectedComponents() [][]int {
	n := len(m.stations)
	seen := make([]bool, n)
	var comps [][]int
	for start := 0; start < n; start++ {
		if seen[start] {
			continue
		}
		var comp []int
		stack := []int{start}
		seen[start] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, v)
			for _, w := range m.Neighbors(v) {
				if !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

// Verdict classifies one UDG-vs-SINR comparison at a point.
type Verdict int

// Comparison outcomes.
const (
	Agree         Verdict = iota // same reception answer (incl. same station)
	FalsePositive                // UDG says heard, SINR says not
	FalseNegative                // UDG says not heard, SINR says heard
	Mismatch                     // both heard, but different stations
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case Agree:
		return "agree"
	case FalsePositive:
		return "false-positive"
	case FalseNegative:
		return "false-negative"
	case Mismatch:
		return "mismatch"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Compare evaluates both models at p and classifies the disagreement.
// The station sets of the two models must match.
func Compare(m *Model, n *core.Network, p geom.Point) (Verdict, error) {
	if m.NumStations() != n.NumStations() {
		return Agree, fmt.Errorf("udg: model has %d stations, network has %d",
			m.NumStations(), n.NumStations())
	}
	gi, gok := m.HeardBy(p)
	si, sok := n.HeardBy(p)
	switch {
	case gok && !sok:
		return FalsePositive, nil
	case !gok && sok:
		return FalseNegative, nil
	case gok && sok && gi != si:
		return Mismatch, nil
	default:
		return Agree, nil
	}
}

// DisagreementRate samples points on a grid over box and returns the
// fraction of points where the two models disagree (any non-Agree
// verdict), along with per-verdict counts indexed by Verdict.
func DisagreementRate(m *Model, n *core.Network, box geom.Box, gridSide int) (float64, [4]int, error) {
	if gridSide < 2 {
		gridSide = 2
	}
	var counts [4]int
	total := 0
	for i := 0; i < gridSide; i++ {
		for j := 0; j < gridSide; j++ {
			p := geom.Pt(
				box.Min.X+(float64(i)+0.5)*box.Width()/float64(gridSide),
				box.Min.Y+(float64(j)+0.5)*box.Height()/float64(gridSide),
			)
			v, err := Compare(m, n, p)
			if err != nil {
				return 0, counts, err
			}
			counts[v]++
			total++
		}
	}
	disagree := total - counts[Agree]
	return float64(disagree) / float64(total), counts, nil
}
