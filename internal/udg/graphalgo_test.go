package udg

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func randomModel(t *testing.T, rng *rand.Rand, n int, radius float64) *Model {
	t.Helper()
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*10, rng.Float64()*10)
	}
	m, err := NewUDG(pts, radius)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMaximalIndependentSetProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		m := randomModel(t, rng, 3+rng.Intn(40), 1.5+rng.Float64()*2)
		mis := m.MaximalIndependentSet()
		if len(mis) == 0 {
			t.Fatal("MIS cannot be empty on a non-empty graph")
		}
		if !m.IsIndependent(mis) {
			t.Fatalf("trial %d: MIS not independent: %v", trial, mis)
		}
		// Maximality == domination for independent sets.
		if !m.IsDominating(mis) {
			t.Fatalf("trial %d: MIS not maximal/dominating: %v", trial, mis)
		}
	}
}

func TestMISLineGraph(t *testing.T) {
	// Path 0-1-2-3-4 with unit spacing, radius 1: MIS of a path on 5
	// vertices has size >= 2 and <= 3.
	pts := []geom.Point{
		geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0), geom.Pt(3, 0), geom.Pt(4, 0),
	}
	m, err := NewUDG(pts, 1)
	if err != nil {
		t.Fatal(err)
	}
	mis := m.MaximalIndependentSet()
	if len(mis) < 2 || len(mis) > 3 {
		t.Errorf("path MIS = %v", mis)
	}
	if !m.IsIndependent(mis) || !m.IsDominating(mis) {
		t.Error("path MIS properties violated")
	}
}

func TestIsIndependentAndDominating(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(5, 0)}
	m, _ := NewUDG(pts, 1.2)
	if !m.IsIndependent([]int{0, 2}) {
		t.Error("{0,2} is independent")
	}
	if m.IsIndependent([]int{0, 1}) {
		t.Error("{0,1} is not independent")
	}
	if !m.IsDominating([]int{1, 2}) {
		t.Error("{1,2} dominates")
	}
	if m.IsDominating([]int{0}) {
		t.Error("{0} does not dominate the far vertex")
	}
	if !m.IsDominating([]int{0, 1, 2}) {
		t.Error("everything dominates")
	}
}

func TestGreedyDominatingSet(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 20; trial++ {
		m := randomModel(t, rng, 3+rng.Intn(40), 1.5+rng.Float64()*2)
		ds := m.GreedyDominatingSet()
		if !m.IsDominating(ds) {
			t.Fatalf("trial %d: greedy set %v does not dominate", trial, ds)
		}
		if len(ds) > m.NumStations() {
			t.Fatalf("trial %d: dominating set too large", trial)
		}
	}
}

func TestGreedyDominatingSetStar(t *testing.T) {
	// A star: center + 6 leaves within radius. Greedy must pick just
	// the center.
	pts := []geom.Point{geom.Pt(0, 0)}
	for k := 0; k < 6; k++ {
		pts = append(pts, geom.PolarPoint(geom.Pt(0, 0), 1, float64(k)))
	}
	m, err := NewUDG(pts, 1.01)
	if err != nil {
		t.Fatal(err)
	}
	ds := m.GreedyDominatingSet()
	if len(ds) != 1 || ds[0] != 0 {
		t.Errorf("star dominating set = %v, want [0]", ds)
	}
}

func TestClusterPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 15; trial++ {
		m := randomModel(t, rng, 3+rng.Intn(30), 2+rng.Float64()*2)
		clusters := m.Cluster()
		seen := map[int]int{}
		for head, members := range clusters {
			foundHead := false
			for _, v := range members {
				seen[v]++
				if v == head {
					foundHead = true
				}
			}
			if !foundHead {
				t.Fatalf("trial %d: head %d missing from its own cluster", trial, head)
			}
		}
		if len(seen) != m.NumStations() {
			t.Fatalf("trial %d: clusters cover %d of %d stations", trial, len(seen), m.NumStations())
		}
		for v, count := range seen {
			if count != 1 {
				t.Fatalf("trial %d: station %d in %d clusters", trial, v, count)
			}
		}
		// Heads form an independent set.
		heads := make([]int, 0, len(clusters))
		for h := range clusters {
			heads = append(heads, h)
		}
		if !m.IsIndependent(heads) {
			t.Fatalf("trial %d: cluster heads not independent", trial)
		}
	}
}

func TestClusterMembersAdjacentToHead(t *testing.T) {
	pts := []geom.Point{
		geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0.5, 0.5), // clique
		geom.Pt(10, 10), // singleton
	}
	m, err := NewUDG(pts, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	clusters := m.Cluster()
	for head, members := range clusters {
		for _, v := range members {
			if v != head && !m.Adjacent(v, head) {
				t.Errorf("member %d not adjacent to head %d", v, head)
			}
		}
	}
}
