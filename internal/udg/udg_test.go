package udg

import (
	"math"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
)

func TestNewValidation(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0)}
	if _, err := New(nil, 1, 1); err == nil {
		t.Error("empty stations must fail")
	}
	if _, err := New(pts, 0, 1); err == nil {
		t.Error("zero connectivity radius must fail")
	}
	if _, err := New(pts, 1, 0.5); err != ErrBadRange {
		t.Error("interference < connectivity must fail")
	}
	if _, err := New(pts, math.NaN(), 1); err == nil {
		t.Error("NaN radius must fail")
	}
}

func TestUDGHeardSingleTransmitter(t *testing.T) {
	m, err := NewUDG([]geom.Point{geom.Pt(0, 0)}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Heard(0, geom.Pt(1.5, 0)) {
		t.Error("point within radius should hear")
	}
	if !m.Heard(0, geom.Pt(2, 0)) {
		t.Error("boundary point should hear (closed disk)")
	}
	if m.Heard(0, geom.Pt(2.1, 0)) {
		t.Error("point beyond radius should not hear")
	}
}

func TestUDGCollision(t *testing.T) {
	// Two transmitters 1 apart, radius 2: every point near both is
	// jammed.
	m, err := NewUDG([]geom.Point{geom.Pt(0, 0), geom.Pt(1, 0)}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Heard(0, geom.Pt(0.5, 0)) || m.Heard(1, geom.Pt(0.5, 0)) {
		t.Error("midpoint should be jammed by the other transmitter")
	}
	if _, ok := m.HeardBy(geom.Pt(0.5, 0)); ok {
		t.Error("HeardBy should report nothing at a jammed point")
	}
	// A point close to s0 but out of s1's range: s0 at (-1.9, 0),
	// dist(s1) = 2.9 > 2.
	if !m.Heard(0, geom.Pt(-1.9, 0)) {
		t.Error("point out of interferer range should hear s0")
	}
}

func TestHeardAmongSubset(t *testing.T) {
	m, err := NewUDG([]geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(10, 0)}, 2)
	if err != nil {
		t.Fatal(err)
	}
	p := geom.Pt(0.5, 0)
	// All transmitting: jammed.
	if m.Heard(0, p) {
		t.Error("expected jam")
	}
	// Only s0 transmitting: heard.
	if !m.HeardAmong(0, p, map[int]bool{0: true}) {
		t.Error("sole transmitter should be heard")
	}
	// Silent station cannot be heard.
	if m.HeardAmong(1, p, map[int]bool{0: true}) {
		t.Error("silent station must not be heard")
	}
}

func TestQuasiUDGInterferenceWiderThanConnectivity(t *testing.T) {
	// Q-UDG: connectivity 1, interference 3. A receiver 0.5 from s0 and
	// 2.5 from s1 is connected to s0 but jammed by s1.
	m, err := New([]geom.Point{geom.Pt(0, 0), geom.Pt(3, 0)}, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Heard(0, geom.Pt(0.5, 0)) {
		t.Error("Q-UDG interference should jam")
	}
	// Same geometry under plain UDG radius 1: s1 is 2.5 away > 1, no jam.
	u, _ := NewUDG([]geom.Point{geom.Pt(0, 0), geom.Pt(3, 0)}, 1)
	if !u.Heard(0, geom.Pt(0.5, 0)) {
		t.Error("plain UDG should hear")
	}
}

func TestAdjacencyAndNeighbors(t *testing.T) {
	m, err := NewUDG([]geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(5, 0)}, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Adjacent(0, 1) || m.Adjacent(0, 2) || m.Adjacent(1, 1) {
		t.Error("adjacency wrong")
	}
	nb := m.Neighbors(0)
	if len(nb) != 1 || nb[0] != 1 {
		t.Errorf("Neighbors(0) = %v", nb)
	}
	if m.Degree(2) != 0 {
		t.Errorf("Degree(2) = %d", m.Degree(2))
	}
	adj := m.AdjacencyMatrix()
	if !adj[0][1] || !adj[1][0] || adj[0][2] {
		t.Error("adjacency matrix wrong")
	}
}

func TestConnectedComponents(t *testing.T) {
	m, err := NewUDG([]geom.Point{
		geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0), // chain component
		geom.Pt(10, 0), geom.Pt(11, 0), // second component
		geom.Pt(-20, 5), // singleton
	}, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	comps := m.ConnectedComponents()
	if len(comps) != 3 {
		t.Fatalf("got %d components: %v", len(comps), comps)
	}
	sizes := []int{len(comps[0]), len(comps[1]), len(comps[2])}
	sort.Ints(sizes)
	if sizes[0] != 1 || sizes[1] != 2 || sizes[2] != 3 {
		t.Errorf("component sizes = %v", sizes)
	}
}

func TestCompareVerdicts(t *testing.T) {
	// Figure 2 scenario (cumulative interference): receiver adjacent to
	// s1 in UDG, but three distant stations jointly raise the SINR
	// denominator enough to kill reception.
	stations := []geom.Point{
		geom.Pt(0, 0), // s1: the candidate transmitter
		geom.Pt(5, 5), // s2..s4: outside UDG range of the receiver
		geom.Pt(5, -5),
		geom.Pt(-5, 5),
	}
	p := geom.Pt(3.2, 0)
	m, err := NewUDG(stations, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Heard(0, p) {
		t.Fatal("UDG should hear s1 (within range, interferers out of range)")
	}
	n, err := core.NewUniform(stations, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if n.Heard(0, p) {
		t.Fatalf("SINR should reject due to cumulative interference (SINR=%v)", n.SINR(0, p))
	}
	v, err := Compare(m, n, p)
	if err != nil {
		t.Fatal(err)
	}
	if v != FalsePositive {
		t.Errorf("verdict = %v, want false-positive", v)
	}
}

func TestCompareFalseNegative(t *testing.T) {
	// Figure 4(A)/(B) scenario: two transmitters both in range of p
	// (UDG collision) but one much closer, so SINR still decodes it.
	stations := []geom.Point{geom.Pt(0, 0), geom.Pt(4, 0)}
	p := geom.Pt(0.5, 0)
	m, err := NewUDG(stations, 4.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.HeardBy(p); ok {
		t.Fatal("UDG should report collision")
	}
	n, err := core.NewUniform(stations, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !n.Heard(0, p) {
		t.Fatalf("SINR should decode the near station (SINR=%v)", n.SINR(0, p))
	}
	v, err := Compare(m, n, p)
	if err != nil {
		t.Fatal(err)
	}
	if v != FalseNegative {
		t.Errorf("verdict = %v, want false-negative", v)
	}
}

func TestCompareAgreeAndErrors(t *testing.T) {
	stations := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0)}
	m, _ := NewUDG(stations, 2)
	n, _ := core.NewUniform(stations, 0, 2)
	v, err := Compare(m, n, geom.Pt(0.5, 0))
	if err != nil {
		t.Fatal(err)
	}
	if v != Agree {
		t.Errorf("verdict = %v, want agree", v)
	}
	// Station count mismatch errors.
	m2, _ := NewUDG([]geom.Point{geom.Pt(0, 0)}, 2)
	if _, err := Compare(m2, n, geom.Pt(0, 0)); err == nil {
		t.Error("station count mismatch must error")
	}
}

func TestVerdictString(t *testing.T) {
	for v, want := range map[Verdict]string{
		Agree: "agree", FalsePositive: "false-positive",
		FalseNegative: "false-negative", Mismatch: "mismatch",
	} {
		if v.String() != want {
			t.Errorf("%d.String() = %q", v, v.String())
		}
	}
	if Verdict(9).String() == "" {
		t.Error("unknown verdict should render")
	}
}

func TestDisagreementRate(t *testing.T) {
	stations := []geom.Point{geom.Pt(0, 0), geom.Pt(3, 0)}
	m, _ := NewUDG(stations, 4) // everything within 4 of both: collisions everywhere
	n, _ := core.NewUniform(stations, 0, 2)
	box := geom.NewBox(geom.Pt(-1, -1), geom.Pt(4, 1))
	rate, counts, err := DisagreementRate(m, n, box, 30)
	if err != nil {
		t.Fatal(err)
	}
	if rate <= 0 {
		t.Error("expected some disagreement in the collision-heavy layout")
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 900 {
		t.Errorf("total = %d, want 900", total)
	}
	// False negatives must dominate: UDG jams everywhere, SINR decodes
	// near each station.
	if counts[FalseNegative] == 0 {
		t.Error("expected false negatives")
	}
}
