package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTransformIdentity(t *testing.T) {
	id := Identity()
	for _, p := range []Point{Origin, Pt(1, 2), Pt(-3, 0.5)} {
		if got := id.Apply(p); !ApproxEqual(got, p, 1e-15) {
			t.Errorf("Identity(%v) = %v", p, got)
		}
	}
}

func TestTranslation(t *testing.T) {
	tr := Translation(Pt(2, -1))
	if got := tr.Apply(Pt(1, 1)); !ApproxEqual(got, Pt(3, 0), 1e-15) {
		t.Errorf("got %v", got)
	}
}

func TestRotation(t *testing.T) {
	rot := Rotation(math.Pi / 2)
	if got := rot.Apply(Pt(1, 0)); !ApproxEqual(got, Pt(0, 1), 1e-12) {
		t.Errorf("rot90(1,0) = %v", got)
	}
	if got := rot.Apply(Pt(0, 1)); !ApproxEqual(got, Pt(-1, 0), 1e-12) {
		t.Errorf("rot90(0,1) = %v", got)
	}
}

func TestRotationAbout(t *testing.T) {
	rot := RotationAbout(Pt(1, 1), math.Pi)
	if got := rot.Apply(Pt(2, 1)); !ApproxEqual(got, Pt(0, 1), 1e-12) {
		t.Errorf("got %v", got)
	}
	// The center is a fixed point.
	if got := rot.Apply(Pt(1, 1)); !ApproxEqual(got, Pt(1, 1), 1e-12) {
		t.Errorf("center moved to %v", got)
	}
}

func TestScaling(t *testing.T) {
	sc := Scaling(3)
	if got := sc.Apply(Pt(1, -2)); !ApproxEqual(got, Pt(3, -6), 1e-15) {
		t.Errorf("got %v", got)
	}
	if got := sc.Scale(); !almostEqual(got, 3, 1e-15) {
		t.Errorf("Scale() = %v", got)
	}
}

func TestSimilarityPreservesDistanceRatios(t *testing.T) {
	f := Similarity(0.7, 2.5, Pt(3, -4))
	a, b, c := Pt(0, 0), Pt(1, 2), Pt(-3, 5)
	fa, fb, fc := f.Apply(a), f.Apply(b), f.Apply(c)
	// dist scales uniformly by sigma.
	if got, want := Dist(fa, fb), 2.5*Dist(a, b); !almostEqual(got, want, 1e-9) {
		t.Errorf("dist(fa,fb) = %v, want %v", got, want)
	}
	if got, want := Dist(fb, fc), 2.5*Dist(b, c); !almostEqual(got, want, 1e-9) {
		t.Errorf("dist(fb,fc) = %v, want %v", got, want)
	}
}

func TestComposeOrder(t *testing.T) {
	// t.Compose(u) must equal "apply u first, then t".
	rot := Rotation(math.Pi / 2)
	tr := Translation(Pt(1, 0))
	composed := tr.Compose(rot) // rotate then translate
	if got := composed.Apply(Pt(1, 0)); !ApproxEqual(got, Pt(1, 1), 1e-12) {
		t.Errorf("got %v, want (1,1)", got)
	}
	composed2 := rot.Compose(tr) // translate then rotate
	if got := composed2.Apply(Pt(1, 0)); !ApproxEqual(got, Pt(0, 2), 1e-12) {
		t.Errorf("got %v, want (0,2)", got)
	}
}

func TestInverse(t *testing.T) {
	f := Similarity(1.1, 0.5, Pt(-2, 7))
	inv, ok := f.Inverse()
	if !ok {
		t.Fatal("expected invertible")
	}
	for _, p := range []Point{Origin, Pt(1, 2), Pt(-5, 3)} {
		if got := inv.Apply(f.Apply(p)); !ApproxEqual(got, p, 1e-9) {
			t.Errorf("inv(f(%v)) = %v", p, got)
		}
	}
	if _, ok := Scaling(0).Inverse(); ok {
		t.Error("degenerate transform must not invert")
	}
}

func TestCanonicalFrame(t *testing.T) {
	p0, p1 := Pt(3, 4), Pt(6, 8)
	f, ok := CanonicalFrame(p0, p1)
	if !ok {
		t.Fatal("expected ok")
	}
	if got := f.Apply(p0); !ApproxEqual(got, Origin, 1e-9) {
		t.Errorf("f(p0) = %v, want origin", got)
	}
	got := f.Apply(p1)
	if !almostEqual(got.Y, 0, 1e-9) || got.X <= 0 {
		t.Errorf("f(p1) = %v, want on positive x-axis", got)
	}
	if !almostEqual(got.X, Dist(p0, p1), 1e-9) {
		t.Errorf("f(p1).X = %v, want %v", got.X, Dist(p0, p1))
	}
	if _, ok := CanonicalFrame(p0, p0); ok {
		t.Error("coincident points must fail")
	}
}

func TestApplyAll(t *testing.T) {
	tr := Translation(Pt(1, 1))
	in := []Point{Pt(0, 0), Pt(2, 3)}
	out := tr.ApplyAll(in)
	if len(out) != 2 || !ApproxEqual(out[0], Pt(1, 1), 0) || !ApproxEqual(out[1], Pt(3, 4), 0) {
		t.Errorf("out = %v", out)
	}
	// Input must be untouched.
	if in[0] != Pt(0, 0) {
		t.Error("input mutated")
	}
}

func TestTransformScalePropertyQuick(t *testing.T) {
	f := func(theta, rawSigma, dx, dy float64) bool {
		if math.IsNaN(theta) || math.IsInf(theta, 0) {
			return true
		}
		sigma := 0.1 + math.Mod(math.Abs(rawSigma), 10)
		if math.IsNaN(sigma) || math.IsNaN(dx) || math.IsNaN(dy) || math.IsInf(dx, 0) || math.IsInf(dy, 0) {
			return true
		}
		tr := Similarity(math.Mod(theta, math.Pi), sigma, Pt(math.Mod(dx, 100), math.Mod(dy, 100)))
		return almostEqual(tr.Scale(), sigma, 1e-9*(1+sigma))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
