package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestPointArithmetic(t *testing.T) {
	tests := []struct {
		name string
		got  Point
		want Point
	}{
		{"add", Pt(1, 2).Add(Pt(3, -4)), Pt(4, -2)},
		{"sub", Pt(1, 2).Sub(Pt(3, -4)), Pt(-2, 6)},
		{"scale", Pt(1, -2).Scale(2.5), Pt(2.5, -5)},
		{"neg", Pt(1, -2).Neg(), Pt(-1, 2)},
		{"perp", Pt(1, 0).Perp(), Pt(0, 1)},
		{"midpoint", Midpoint(Pt(0, 0), Pt(2, 4)), Pt(1, 2)},
		{"lerp0", Lerp(Pt(1, 1), Pt(3, 5), 0), Pt(1, 1)},
		{"lerp1", Lerp(Pt(1, 1), Pt(3, 5), 1), Pt(3, 5)},
		{"lerpHalf", Lerp(Pt(1, 1), Pt(3, 5), 0.5), Pt(2, 3)},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if !ApproxEqual(tc.got, tc.want, 1e-12) {
				t.Fatalf("got %v, want %v", tc.got, tc.want)
			}
		})
	}
}

func TestDotCrossNorm(t *testing.T) {
	if got := Pt(1, 2).Dot(Pt(3, 4)); got != 11 {
		t.Errorf("Dot = %v, want 11", got)
	}
	if got := Pt(1, 0).Cross(Pt(0, 1)); got != 1 {
		t.Errorf("Cross = %v, want 1", got)
	}
	if got := Pt(3, 4).Norm(); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
	if got := Pt(3, 4).Norm2(); got != 25 {
		t.Errorf("Norm2 = %v, want 25", got)
	}
}

func TestDist(t *testing.T) {
	tests := []struct {
		p, q Point
		want float64
	}{
		{Pt(0, 0), Pt(3, 4), 5},
		{Pt(1, 1), Pt(1, 1), 0},
		{Pt(-1, 0), Pt(1, 0), 2},
	}
	for _, tc := range tests {
		if got := Dist(tc.p, tc.q); !almostEqual(got, tc.want, 1e-12) {
			t.Errorf("Dist(%v, %v) = %v, want %v", tc.p, tc.q, got, tc.want)
		}
		if got := Dist2(tc.p, tc.q); !almostEqual(got, tc.want*tc.want, 1e-12) {
			t.Errorf("Dist2(%v, %v) = %v, want %v", tc.p, tc.q, got, tc.want*tc.want)
		}
	}
}

func TestDistSymmetryProperty(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a, b := Pt(ax, ay), Pt(bx, by)
		return Dist(a, b) == Dist(b, a) && Dist2(a, b) == Dist2(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTriangleInequalityProperty(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		// Restrict to a sane range to avoid overflow-dominated noise.
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 1e6)
		}
		a := Pt(clamp(ax), clamp(ay))
		b := Pt(clamp(bx), clamp(by))
		c := Pt(clamp(cx), clamp(cy))
		return Dist(a, c) <= Dist(a, b)+Dist(b, c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalize(t *testing.T) {
	if got := Pt(3, 4).Normalize(); !almostEqual(got.Norm(), 1, 1e-12) {
		t.Errorf("Normalize norm = %v, want 1", got.Norm())
	}
	if got := (Point{}).Normalize(); got != (Point{}) {
		t.Errorf("Normalize zero = %v, want origin", got)
	}
}

func TestPolarPoint(t *testing.T) {
	c := Pt(1, 2)
	for _, theta := range []float64{0, math.Pi / 4, math.Pi / 2, math.Pi, -math.Pi / 3} {
		p := PolarPoint(c, 2.5, theta)
		if !almostEqual(Dist(c, p), 2.5, 1e-12) {
			t.Errorf("theta=%v: dist = %v, want 2.5", theta, Dist(c, p))
		}
		if !almostEqual(math.Mod(p.Sub(c).Angle()-theta+4*math.Pi, 2*math.Pi), 0, 1e-9) &&
			!almostEqual(math.Mod(p.Sub(c).Angle()-theta+4*math.Pi, 2*math.Pi), 2*math.Pi, 1e-9) {
			t.Errorf("theta=%v: angle = %v", theta, p.Sub(c).Angle())
		}
	}
}

func TestOrientation(t *testing.T) {
	tests := []struct {
		name    string
		a, b, c Point
		want    int
	}{
		{"ccw", Pt(0, 0), Pt(1, 0), Pt(0, 1), 1},
		{"cw", Pt(0, 0), Pt(0, 1), Pt(1, 0), -1},
		{"collinear", Pt(0, 0), Pt(1, 1), Pt(2, 2), 0},
		{"collinearFar", Pt(0, 0), Pt(1e3, 1e3), Pt(2e3, 2e3), 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := Orientation(tc.a, tc.b, tc.c); got != tc.want {
				t.Fatalf("Orientation = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestCentroid(t *testing.T) {
	if got := Centroid(nil); got != (Point{}) {
		t.Errorf("Centroid(nil) = %v, want origin", got)
	}
	got := Centroid([]Point{Pt(0, 0), Pt(2, 0), Pt(1, 3)})
	if !ApproxEqual(got, Pt(1, 1), 1e-12) {
		t.Errorf("Centroid = %v, want (1,1)", got)
	}
}

func TestPerpIsOrthogonalProperty(t *testing.T) {
	f := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
			return true
		}
		if math.Abs(x) > 1e150 || math.Abs(y) > 1e150 {
			// x*y would overflow float64; skip (Inf - Inf is NaN).
			return true
		}
		p := Pt(x, y)
		return p.Dot(p.Perp()) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
