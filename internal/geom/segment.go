package geom

import (
	"fmt"
	"math"
)

// Segment is the closed line segment from A to B.
type Segment struct {
	A, B Point
}

// Seg is shorthand for Segment{a, b}.
func Seg(a, b Point) Segment { return Segment{A: a, B: b} }

// Length returns the Euclidean length of the segment.
func (s Segment) Length() float64 { return Dist(s.A, s.B) }

// Dir returns the (non-normalized) direction vector B - A.
func (s Segment) Dir() Point { return s.B.Sub(s.A) }

// At returns the point A + t*(B-A). At(0) == A, At(1) == B.
func (s Segment) At(t float64) Point { return Lerp(s.A, s.B, t) }

// Midpoint returns the midpoint of the segment.
func (s Segment) Midpoint() Point { return Midpoint(s.A, s.B) }

// Reverse returns the segment with endpoints swapped.
func (s Segment) Reverse() Segment { return Segment{A: s.B, B: s.A} }

// String implements fmt.Stringer.
func (s Segment) String() string { return fmt.Sprintf("[%v -> %v]", s.A, s.B) }

// ClosestParam returns the parameter t in [0, 1] minimizing
// dist(At(t), p), i.e. the projection of p clamped to the segment.
func (s Segment) ClosestParam(p Point) float64 {
	d := s.Dir()
	den := d.Norm2()
	if den == 0 {
		return 0
	}
	t := p.Sub(s.A).Dot(d) / den
	return math.Max(0, math.Min(1, t))
}

// ClosestPoint returns the point on the segment closest to p.
func (s Segment) ClosestPoint(p Point) Point { return s.At(s.ClosestParam(p)) }

// DistTo returns the distance from p to the segment.
func (s Segment) DistTo(p Point) float64 { return Dist(p, s.ClosestPoint(p)) }

// Contains reports whether p lies on the segment within tolerance eps.
func (s Segment) Contains(p Point, eps float64) bool { return s.DistTo(p) <= eps }

// Line is the infinite line through Origin-point P with direction D.
// D need not be normalized but must be nonzero for meaningful results.
type Line struct {
	P Point // a point on the line
	D Point // direction vector
}

// LineThrough returns the line through a and b.
func LineThrough(a, b Point) Line { return Line{P: a, D: b.Sub(a)} }

// LineOf returns the supporting line of segment s.
func (s Segment) LineOf() Line { return Line{P: s.A, D: s.Dir()} }

// At returns the point P + t*D.
func (l Line) At(t float64) Point { return l.P.Add(l.D.Scale(t)) }

// Project returns the parameter t such that At(t) is the orthogonal
// projection of p onto the line.
func (l Line) Project(p Point) float64 {
	den := l.D.Norm2()
	if den == 0 {
		return 0
	}
	return p.Sub(l.P).Dot(l.D) / den
}

// DistTo returns the distance from p to the line.
func (l Line) DistTo(p Point) float64 {
	den := l.D.Norm()
	if den == 0 {
		return Dist(l.P, p)
	}
	return math.Abs(l.D.Cross(p.Sub(l.P))) / den
}

// SeparationLine returns the perpendicular bisector of p1 and p2: the
// locus of points equidistant from both (Section 2.1 of the paper).
// The returned line passes through the midpoint with direction
// perpendicular to p2 - p1.
func SeparationLine(p1, p2 Point) Line {
	return Line{P: Midpoint(p1, p2), D: p2.Sub(p1).Perp()}
}

// IntersectLines returns the intersection parameters (t, u) such that
// a.At(t) == b.At(u), and ok=false when the lines are parallel (within
// a relative tolerance).
func IntersectLines(a, b Line) (t, u float64, ok bool) {
	den := a.D.Cross(b.D)
	scale := a.D.Norm() * b.D.Norm()
	if math.Abs(den) <= Eps*(1+scale) {
		return 0, 0, false
	}
	w := b.P.Sub(a.P)
	t = w.Cross(b.D) / den
	u = w.Cross(a.D) / den
	return t, u, true
}

// IntersectSegments returns the intersection point of two segments and
// ok=false when they do not intersect (parallel or out of range).
// Collinear overlapping segments report no intersection; callers that
// need overlap handling should test collinearity separately.
func IntersectSegments(s1, s2 Segment) (Point, bool) {
	t, u, ok := IntersectLines(s1.LineOf(), s2.LineOf())
	if !ok || t < -Eps || t > 1+Eps || u < -Eps || u > 1+Eps {
		return Point{}, false
	}
	return s1.At(t), true
}
