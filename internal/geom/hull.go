package geom

import (
	"math"
	"sort"
)

// ConvexHull returns the convex hull of pts in counterclockwise order
// using Andrew's monotone chain algorithm, O(n log n). Collinear points
// on the hull boundary are dropped. Degenerate inputs return what is
// available: fewer than three non-coincident points yield a hull with
// fewer than three vertices.
func ConvexHull(pts []Point) []Point {
	if len(pts) < 3 {
		out := make([]Point, len(pts))
		copy(out, pts)
		return out
	}
	sorted := make([]Point, len(pts))
	copy(sorted, pts)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].X != sorted[j].X {
			return sorted[i].X < sorted[j].X
		}
		return sorted[i].Y < sorted[j].Y
	})
	// Deduplicate coincident points.
	dedup := sorted[:1]
	for _, p := range sorted[1:] {
		if !ApproxEqual(p, dedup[len(dedup)-1], Eps) {
			dedup = append(dedup, p)
		}
	}
	sorted = dedup
	if len(sorted) < 3 {
		return sorted
	}

	var hull []Point
	// Lower hull.
	for _, p := range sorted {
		for len(hull) >= 2 && hull[len(hull)-1].Sub(hull[len(hull)-2]).Cross(p.Sub(hull[len(hull)-2])) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	// Upper hull.
	lower := len(hull) + 1
	for i := len(sorted) - 2; i >= 0; i-- {
		p := sorted[i]
		for len(hull) >= lower && hull[len(hull)-1].Sub(hull[len(hull)-2]).Cross(p.Sub(hull[len(hull)-2])) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	return hull[:len(hull)-1]
}

// Polygon is a simple polygon given by its vertices in order
// (counterclockwise for positive area).
type Polygon []Point

// Area returns the signed area via the shoelace formula: positive for
// counterclockwise orientation.
func (pg Polygon) Area() float64 {
	if len(pg) < 3 {
		return 0
	}
	var s float64
	for i, p := range pg {
		q := pg[(i+1)%len(pg)]
		s += p.Cross(q)
	}
	return s / 2
}

// Perimeter returns the total boundary length.
func (pg Polygon) Perimeter() float64 {
	if len(pg) < 2 {
		return 0
	}
	var s float64
	for i, p := range pg {
		s += Dist(p, pg[(i+1)%len(pg)])
	}
	return s
}

// Centroid returns the area centroid of the polygon (falling back to
// the vertex mean for degenerate polygons).
func (pg Polygon) Centroid() Point {
	a := pg.Area()
	if math.Abs(a) < Eps {
		return Centroid(pg)
	}
	var cx, cy float64
	for i, p := range pg {
		q := pg[(i+1)%len(pg)]
		w := p.Cross(q)
		cx += (p.X + q.X) * w
		cy += (p.Y + q.Y) * w
	}
	return Point{cx / (6 * a), cy / (6 * a)}
}

// IsConvex reports whether the polygon is convex (all turns the same
// orientation, collinear runs allowed).
func (pg Polygon) IsConvex() bool {
	n := len(pg)
	if n < 3 {
		return true
	}
	sign := 0
	for i := 0; i < n; i++ {
		o := Orientation(pg[i], pg[(i+1)%n], pg[(i+2)%n])
		if o == 0 {
			continue
		}
		if sign == 0 {
			sign = o
		} else if o != sign {
			return false
		}
	}
	return true
}

// Contains reports whether p lies inside or on the polygon boundary
// (even-odd rule with boundary tolerance).
func (pg Polygon) Contains(p Point) bool {
	n := len(pg)
	if n < 3 {
		return false
	}
	for i := 0; i < n; i++ {
		if Seg(pg[i], pg[(i+1)%n]).Contains(p, Eps) {
			return true
		}
	}
	inside := false
	for i, a := range pg {
		b := pg[(i+1)%n]
		if (a.Y > p.Y) != (b.Y > p.Y) {
			x := a.X + (p.Y-a.Y)*(b.X-a.X)/(b.Y-a.Y)
			if x > p.X {
				inside = !inside
			}
		}
	}
	return inside
}

// HalfPlane is the closed half plane {p : <p, N> <= C} with outward
// normal N.
type HalfPlane struct {
	N Point
	C float64
}

// HalfPlaneOf returns the half plane of points at least as close to a
// as to b, i.e. the side of the separation line of a and b containing
// a. This is the building block of Voronoi cells.
func HalfPlaneOf(a, b Point) HalfPlane {
	n := b.Sub(a)
	return HalfPlane{N: n, C: n.Dot(Midpoint(a, b))}
}

// Contains reports whether p satisfies the half-plane inequality.
func (h HalfPlane) Contains(p Point) bool { return h.N.Dot(p) <= h.C+Eps*(1+math.Abs(h.C)) }

// ClipPolygon clips a convex polygon by the half plane using the
// Sutherland-Hodgman step, returning the (possibly empty) clipped
// polygon. The input must be convex and counterclockwise; the output
// preserves both properties.
func ClipPolygon(pg Polygon, h HalfPlane) Polygon {
	if len(pg) == 0 {
		return nil
	}
	val := func(p Point) float64 { return h.N.Dot(p) - h.C }
	out := make(Polygon, 0, len(pg)+1)
	for i, cur := range pg {
		next := pg[(i+1)%len(pg)]
		vc, vn := val(cur), val(next)
		if vc <= 0 {
			out = append(out, cur)
		}
		if (vc < 0 && vn > 0) || (vc > 0 && vn < 0) {
			t := vc / (vc - vn)
			out = append(out, Lerp(cur, next, t))
		}
	}
	if len(out) < 3 {
		return nil
	}
	return out
}
