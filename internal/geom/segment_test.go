package geom

import (
	"testing"
)

func TestSegmentBasics(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(3, 4))
	if got := s.Length(); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Length = %v, want 5", got)
	}
	if got := s.At(0.5); !ApproxEqual(got, Pt(1.5, 2), 1e-12) {
		t.Errorf("At(0.5) = %v", got)
	}
	if got := s.Midpoint(); !ApproxEqual(got, Pt(1.5, 2), 1e-12) {
		t.Errorf("Midpoint = %v", got)
	}
	if got := s.Reverse(); got.A != s.B || got.B != s.A {
		t.Errorf("Reverse = %v", got)
	}
}

func TestSegmentClosestPoint(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(10, 0))
	tests := []struct {
		name string
		p    Point
		want Point
	}{
		{"interior", Pt(4, 3), Pt(4, 0)},
		{"beforeA", Pt(-5, 2), Pt(0, 0)},
		{"afterB", Pt(20, -1), Pt(10, 0)},
		{"onSegment", Pt(7, 0), Pt(7, 0)},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := s.ClosestPoint(tc.p); !ApproxEqual(got, tc.want, 1e-12) {
				t.Fatalf("ClosestPoint(%v) = %v, want %v", tc.p, got, tc.want)
			}
		})
	}
	// Degenerate segment.
	d := Seg(Pt(1, 1), Pt(1, 1))
	if got := d.ClosestPoint(Pt(5, 5)); !ApproxEqual(got, Pt(1, 1), 1e-12) {
		t.Errorf("degenerate ClosestPoint = %v", got)
	}
}

func TestSegmentContains(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(2, 2))
	if !s.Contains(Pt(1, 1), 1e-9) {
		t.Error("midpoint should be contained")
	}
	if s.Contains(Pt(1, 1.1), 1e-9) {
		t.Error("off-segment point should not be contained")
	}
	if s.Contains(Pt(3, 3), 1e-9) {
		t.Error("beyond-endpoint point should not be contained")
	}
}

func TestLineProjectAndDist(t *testing.T) {
	l := LineThrough(Pt(0, 1), Pt(2, 1)) // horizontal line y = 1
	if got := l.DistTo(Pt(5, 4)); !almostEqual(got, 3, 1e-12) {
		t.Errorf("DistTo = %v, want 3", got)
	}
	tproj := l.Project(Pt(5, 4))
	if got := l.At(tproj); !ApproxEqual(got, Pt(5, 1), 1e-12) {
		t.Errorf("projection = %v, want (5,1)", got)
	}
}

func TestSeparationLine(t *testing.T) {
	a, b := Pt(0, 0), Pt(4, 0)
	l := SeparationLine(a, b)
	// Every point on the separation line is equidistant from a and b.
	for _, tt := range []float64{-2, -0.5, 0, 1, 3.7} {
		p := l.At(tt)
		if da, db := Dist(a, p), Dist(b, p); !almostEqual(da, db, 1e-9) {
			t.Errorf("t=%v: dist(a)=%v dist(b)=%v", tt, da, db)
		}
	}
}

func TestIntersectLines(t *testing.T) {
	a := LineThrough(Pt(0, 0), Pt(1, 1))
	b := LineThrough(Pt(0, 2), Pt(1, 1)) // crosses at (1,1)
	tt, _, ok := IntersectLines(a, b)
	if !ok {
		t.Fatal("expected intersection")
	}
	if got := a.At(tt); !ApproxEqual(got, Pt(1, 1), 1e-9) {
		t.Errorf("intersection = %v, want (1,1)", got)
	}

	// Parallel lines.
	c := LineThrough(Pt(0, 0), Pt(1, 0))
	d := LineThrough(Pt(0, 1), Pt(1, 1))
	if _, _, ok := IntersectLines(c, d); ok {
		t.Error("parallel lines should not intersect")
	}
}

func TestIntersectSegments(t *testing.T) {
	tests := []struct {
		name   string
		s1, s2 Segment
		want   Point
		ok     bool
	}{
		{"cross", Seg(Pt(0, 0), Pt(2, 2)), Seg(Pt(0, 2), Pt(2, 0)), Pt(1, 1), true},
		{"touchEndpoint", Seg(Pt(0, 0), Pt(1, 1)), Seg(Pt(1, 1), Pt(2, 0)), Pt(1, 1), true},
		{"miss", Seg(Pt(0, 0), Pt(1, 0)), Seg(Pt(0, 1), Pt(1, 1)), Point{}, false},
		{"linesCrossOutside", Seg(Pt(0, 0), Pt(1, 1)), Seg(Pt(3, 0), Pt(4, -5)), Point{}, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := IntersectSegments(tc.s1, tc.s2)
			if ok != tc.ok {
				t.Fatalf("ok = %v, want %v", ok, tc.ok)
			}
			if ok && !ApproxEqual(got, tc.want, 1e-9) {
				t.Fatalf("point = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestSegmentDistToRange(t *testing.T) {
	// Distance from a point to a segment is never negative and never
	// exceeds the distance to either endpoint.
	s := Seg(Pt(-1, -1), Pt(2, 5))
	for _, p := range []Point{Pt(0, 0), Pt(10, 10), Pt(-3, 2), Pt(2, 5)} {
		d := s.DistTo(p)
		if d < 0 {
			t.Errorf("negative distance for %v", p)
		}
		if d > Dist(p, s.A)+1e-12 || d > Dist(p, s.B)+1e-12 {
			t.Errorf("distance %v exceeds endpoint distances for %v", d, p)
		}
	}
}

func TestLineAtMonotone(t *testing.T) {
	l := Line{P: Pt(1, 1), D: Pt(2, 0)}
	if got := l.At(0); !ApproxEqual(got, Pt(1, 1), 0) {
		t.Errorf("At(0) = %v", got)
	}
	if got := l.At(1); !ApproxEqual(got, Pt(3, 1), 0) {
		t.Errorf("At(1) = %v", got)
	}
	if got := l.At(-0.5); !ApproxEqual(got, Pt(0, 1), 0) {
		t.Errorf("At(-0.5) = %v", got)
	}
}
