package geom

import (
	"fmt"
	"math"
)

// Ball is the closed disk B(C, R) = {q : dist(C, q) <= R}
// (Section 2.1 of the paper).
type Ball struct {
	C Point   // center
	R float64 // radius, >= 0
}

// NewBall returns the ball centered at c with radius r. Negative radii
// are clamped to zero.
func NewBall(c Point, r float64) Ball {
	if r < 0 {
		r = 0
	}
	return Ball{C: c, R: r}
}

// Contains reports whether p is inside the closed ball.
func (b Ball) Contains(p Point) bool { return Dist2(b.C, p) <= b.R*b.R }

// ContainsBall reports whether the ball fully contains other.
func (b Ball) ContainsBall(other Ball) bool {
	return Dist(b.C, other.C)+other.R <= b.R+Eps
}

// Intersects reports whether the two closed balls share a point.
func (b Ball) Intersects(other Ball) bool {
	return Dist(b.C, other.C) <= b.R+other.R+Eps
}

// Area returns the area pi*R^2.
func (b Ball) Area() float64 { return math.Pi * b.R * b.R }

// Perimeter returns the circumference 2*pi*R.
func (b Ball) Perimeter() float64 { return 2 * math.Pi * b.R }

// String implements fmt.Stringer.
func (b Ball) String() string { return fmt.Sprintf("B(%v, %.6g)", b.C, b.R) }

// IntersectCircles returns the intersection points of the two circles
// bounding b1 and b2 (the boundaries, not the disks). It returns:
//
//   - 0 points when the circles are disjoint or one strictly contains
//     the other,
//   - 1 point when they are tangent (within tolerance),
//   - 2 points otherwise.
//
// This is the construction at the heart of Lemma 3.10 (merging two
// stations into one equal-energy station located on the intersection
// of two energy circles) and of the noise-removal reduction in
// Section 3.4 of the paper.
func IntersectCircles(b1, b2 Ball) []Point {
	d := Dist(b1.C, b2.C)
	if d < Eps && math.Abs(b1.R-b2.R) < Eps {
		// Coincident circles: infinitely many intersections; report none
		// and let callers handle the degenerate case.
		return nil
	}
	if d > b1.R+b2.R+Eps || d < math.Abs(b1.R-b2.R)-Eps || d == 0 {
		return nil
	}
	// a is the distance from b1.C to the chord midpoint along the
	// center line; h is the half chord length.
	a := (d*d + b1.R*b1.R - b2.R*b2.R) / (2 * d)
	h2 := b1.R*b1.R - a*a
	if h2 < 0 {
		if h2 < -Eps*(1+b1.R*b1.R) {
			return nil
		}
		h2 = 0
	}
	h := math.Sqrt(h2)
	dir := b2.C.Sub(b1.C).Scale(1 / d)
	mid := b1.C.Add(dir.Scale(a))
	if h <= Eps*(1+d) {
		return []Point{mid}
	}
	off := dir.Perp().Scale(h)
	return []Point{mid.Add(off), mid.Sub(off)}
}

// Box is an axis-aligned rectangle [MinX, MaxX] x [MinY, MaxY].
type Box struct {
	Min, Max Point
}

// NewBox returns the box spanned by the two corner points in any order.
func NewBox(a, b Point) Box {
	return Box{
		Min: Point{math.Min(a.X, b.X), math.Min(a.Y, b.Y)},
		Max: Point{math.Max(a.X, b.X), math.Max(a.Y, b.Y)},
	}
}

// BoxAround returns the bounding box of ball b.
func BoxAround(b Ball) Box {
	return Box{
		Min: Point{b.C.X - b.R, b.C.Y - b.R},
		Max: Point{b.C.X + b.R, b.C.Y + b.R},
	}
}

// BoundingBox returns the smallest box containing all points. The
// second return value is false for an empty slice.
func BoundingBox(pts []Point) (Box, bool) {
	if len(pts) == 0 {
		return Box{}, false
	}
	box := Box{Min: pts[0], Max: pts[0]}
	for _, p := range pts[1:] {
		box.Min.X = math.Min(box.Min.X, p.X)
		box.Min.Y = math.Min(box.Min.Y, p.Y)
		box.Max.X = math.Max(box.Max.X, p.X)
		box.Max.Y = math.Max(box.Max.Y, p.Y)
	}
	return box, true
}

// Contains reports whether p lies in the closed box.
func (b Box) Contains(p Point) bool {
	return p.X >= b.Min.X && p.X <= b.Max.X && p.Y >= b.Min.Y && p.Y <= b.Max.Y
}

// Width returns MaxX - MinX.
func (b Box) Width() float64 { return b.Max.X - b.Min.X }

// Height returns MaxY - MinY.
func (b Box) Height() float64 { return b.Max.Y - b.Min.Y }

// Area returns the box area.
func (b Box) Area() float64 { return b.Width() * b.Height() }

// Center returns the box center.
func (b Box) Center() Point { return Midpoint(b.Min, b.Max) }

// Expand returns the box grown by margin on every side.
func (b Box) Expand(margin float64) Box {
	return Box{
		Min: Point{b.Min.X - margin, b.Min.Y - margin},
		Max: Point{b.Max.X + margin, b.Max.Y + margin},
	}
}

// Corners returns the four corners in counterclockwise order starting
// from Min.
func (b Box) Corners() [4]Point {
	return [4]Point{
		b.Min,
		{b.Max.X, b.Min.Y},
		b.Max,
		{b.Min.X, b.Max.Y},
	}
}

// Edges returns the four boundary segments in counterclockwise order.
func (b Box) Edges() [4]Segment {
	c := b.Corners()
	return [4]Segment{
		{c[0], c[1]},
		{c[1], c[2]},
		{c[2], c[3]},
		{c[3], c[0]},
	}
}

// String implements fmt.Stringer.
func (b Box) String() string { return fmt.Sprintf("[%v .. %v]", b.Min, b.Max) }
