// Package geom provides the computational-geometry substrate used by
// the SINR-diagram library: points and vectors in the Euclidean plane,
// segments, lines, balls, boxes, similarity transforms, convex hulls,
// convex polygons, and circle intersection. Everything is implemented
// from scratch on float64 with explicit tolerance handling, because
// the paper's constructions need exactly these primitives.
//
// Map to the paper: similarity transforms realize Lemma 2.3 (SINR
// invariance under scaling with noise rescaled by 1/sigma^2), circle
// intersection backs the Lemma 3.10 merge construction, and the
// box/grid primitives carry the Section 5.1 gamma-grid.
package geom
