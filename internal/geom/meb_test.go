package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestCircumcircle(t *testing.T) {
	// Right triangle on the unit circle.
	b, ok := Circumcircle(Pt(1, 0), Pt(-1, 0), Pt(0, 1))
	if !ok {
		t.Fatal("expected a circumcircle")
	}
	if !ApproxEqual(b.C, Pt(0, 0), 1e-9) || math.Abs(b.R-1) > 1e-9 {
		t.Errorf("circumcircle = %v", b)
	}
	// Collinear points have none.
	if _, ok := Circumcircle(Pt(0, 0), Pt(1, 1), Pt(2, 2)); ok {
		t.Error("collinear points must fail")
	}
}

func TestMinEnclosingBallSmallCases(t *testing.T) {
	if b := MinEnclosingBall(nil, nil); b.R != 0 || b.C != Origin {
		t.Errorf("empty MEB = %v", b)
	}
	if b := MinEnclosingBall([]Point{Pt(2, 3)}, nil); b.R != 0 || b.C != Pt(2, 3) {
		t.Errorf("single-point MEB = %v", b)
	}
	b := MinEnclosingBall([]Point{Pt(0, 0), Pt(2, 0)}, nil)
	if !ApproxEqual(b.C, Pt(1, 0), 1e-9) || math.Abs(b.R-1) > 1e-9 {
		t.Errorf("two-point MEB = %v", b)
	}
}

func TestMinEnclosingBallKnown(t *testing.T) {
	// Square corners: MEB is the circumscribed circle.
	pts := []Point{Pt(0, 0), Pt(2, 0), Pt(2, 2), Pt(0, 2), Pt(1, 1)}
	b := MinEnclosingBall(pts, rand.New(rand.NewSource(1)))
	if !ApproxEqual(b.C, Pt(1, 1), 1e-6) || math.Abs(b.R-math.Sqrt2) > 1e-6 {
		t.Errorf("square MEB = %v, want center (1,1) radius sqrt2", b)
	}
	// Collinear points: diametral ball of the extremes.
	line := []Point{Pt(0, 0), Pt(1, 0), Pt(5, 0), Pt(3, 0)}
	b2 := MinEnclosingBall(line, nil)
	if !ApproxEqual(b2.C, Pt(2.5, 0), 1e-6) || math.Abs(b2.R-2.5) > 1e-6 {
		t.Errorf("collinear MEB = %v", b2)
	}
}

func TestMinEnclosingBallRandomContainsAllAndTight(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(60)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Pt(rng.Float64()*20-10, rng.Float64()*20-10)
		}
		b := MinEnclosingBall(pts, rng)
		// Containment.
		for _, p := range pts {
			if d := Dist(b.C, p); d > b.R*(1+1e-6)+1e-6 {
				t.Fatalf("trial %d: point %v outside MEB %v (d=%v)", trial, p, b, d)
			}
		}
		// Tightness: at least two points near the boundary (a smaller
		// ball would be determined by <= 1 point otherwise).
		onBoundary := 0
		for _, p := range pts {
			if math.Abs(Dist(b.C, p)-b.R) <= 1e-6*(1+b.R) {
				onBoundary++
			}
		}
		if onBoundary < 2 {
			t.Fatalf("trial %d: only %d boundary points; MEB %v not tight", trial, onBoundary, b)
		}
	}
}

func TestMinEnclosingBallMatchesBruteForcePairsTriples(t *testing.T) {
	// For small inputs the MEB is determined by a pair or a triple;
	// compare against exhaustive search.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(7)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Pt(rng.Float64()*10, rng.Float64()*10)
		}
		got := MinEnclosingBall(pts, rng)

		best := math.Inf(1)
		contains := func(b Ball) bool {
			for _, p := range pts {
				if Dist(b.C, p) > b.R*(1+1e-9)+1e-9 {
					return false
				}
			}
			return true
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if b := ballFrom2(pts[i], pts[j]); contains(b) && b.R < best {
					best = b.R
				}
				for k := j + 1; k < n; k++ {
					if b, ok := Circumcircle(pts[i], pts[j], pts[k]); ok && contains(b) && b.R < best {
						best = b.R
					}
				}
			}
		}
		if math.Abs(got.R-best) > 1e-6*(1+best) {
			t.Fatalf("trial %d: MEB radius %v, brute force %v", trial, got.R, best)
		}
	}
}
