package geom

import (
	"fmt"
	"math"
)

// Eps is the default absolute tolerance used by geometric predicates.
// It is deliberately coarse relative to float64 machine epsilon because
// the SINR boundary polynomials accumulate O(n^2) floating point error.
const Eps = 1e-9

// Point is a point (or free vector) in the Euclidean plane R^2.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Origin is the point (0, 0).
var Origin = Point{}

// Add returns p + q (vector addition).
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q (vector subtraction).
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns the scalar product c * p.
func (p Point) Scale(c float64) Point { return Point{c * p.X, c * p.Y} }

// Neg returns -p.
func (p Point) Neg() Point { return Point{-p.X, -p.Y} }

// Dot returns the inner product <p, q>.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z-component of the cross product p x q.
// It is positive when q lies counterclockwise from p.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Norm returns the Euclidean norm |p|.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Norm2 returns the squared Euclidean norm |p|^2.
func (p Point) Norm2() float64 { return p.X*p.X + p.Y*p.Y }

// Dist returns the Euclidean distance dist(p, q).
func Dist(p, q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Dist2 returns the squared Euclidean distance between p and q.
// The SINR energy formula with path-loss alpha = 2 consumes squared
// distances directly, avoiding a square root per station.
func Dist2(p, q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Midpoint returns the midpoint of the segment p q.
func Midpoint(p, q Point) Point { return Point{(p.X + q.X) / 2, (p.Y + q.Y) / 2} }

// Lerp returns the point (1-t)*p + t*q. Lerp(p, q, 0) == p and
// Lerp(p, q, 1) == q.
func Lerp(p, q Point, t float64) Point {
	return Point{p.X + t*(q.X-p.X), p.Y + t*(q.Y-p.Y)}
}

// Normalize returns the unit vector p / |p|. It returns the zero vector
// when |p| == 0.
func (p Point) Normalize() Point {
	n := p.Norm()
	if n == 0 {
		return Point{}
	}
	return Point{p.X / n, p.Y / n}
}

// Perp returns p rotated by +90 degrees, i.e. (-y, x).
func (p Point) Perp() Point { return Point{-p.Y, p.X} }

// Angle returns the polar angle of p in (-pi, pi].
func (p Point) Angle() float64 { return math.Atan2(p.Y, p.X) }

// PolarPoint returns the point at distance r from c in direction theta.
func PolarPoint(c Point, r, theta float64) Point {
	return Point{c.X + r*math.Cos(theta), c.Y + r*math.Sin(theta)}
}

// ApproxEqual reports whether p and q coincide within tolerance eps in
// each coordinate.
func ApproxEqual(p, q Point, eps float64) bool {
	return math.Abs(p.X-q.X) <= eps && math.Abs(p.Y-q.Y) <= eps
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.6g, %.6g)", p.X, p.Y) }

// Orientation classifies the turn a -> b -> c: +1 for counterclockwise,
// -1 for clockwise, 0 for collinear (within Eps scaled by magnitude).
func Orientation(a, b, c Point) int {
	cross := b.Sub(a).Cross(c.Sub(a))
	scale := b.Sub(a).Norm() * c.Sub(a).Norm()
	tol := Eps * (1 + scale)
	switch {
	case cross > tol:
		return 1
	case cross < -tol:
		return -1
	default:
		return 0
	}
}

// Centroid returns the arithmetic mean of the given points. It returns
// the origin for an empty slice.
func Centroid(pts []Point) Point {
	if len(pts) == 0 {
		return Point{}
	}
	var c Point
	for _, p := range pts {
		c = c.Add(p)
	}
	return c.Scale(1 / float64(len(pts)))
}
