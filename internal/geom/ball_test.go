package geom

import (
	"math"
	"sort"
	"testing"
)

func TestBallContains(t *testing.T) {
	b := NewBall(Pt(1, 1), 2)
	tests := []struct {
		p    Point
		want bool
	}{
		{Pt(1, 1), true},
		{Pt(3, 1), true}, // on boundary
		{Pt(3.1, 1), false},
		{Pt(1, -1), true}, // on boundary
		{Pt(-2, -2), false},
	}
	for _, tc := range tests {
		if got := b.Contains(tc.p); got != tc.want {
			t.Errorf("Contains(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestNewBallClampsNegativeRadius(t *testing.T) {
	if b := NewBall(Origin, -3); b.R != 0 {
		t.Errorf("R = %v, want 0", b.R)
	}
}

func TestBallContainment(t *testing.T) {
	big := NewBall(Origin, 5)
	small := NewBall(Pt(1, 0), 2)
	if !big.ContainsBall(small) {
		t.Error("big should contain small")
	}
	if small.ContainsBall(big) {
		t.Error("small should not contain big")
	}
	if !big.Intersects(small) {
		t.Error("nested balls intersect")
	}
	far := NewBall(Pt(100, 0), 1)
	if big.Intersects(far) {
		t.Error("distant balls should not intersect")
	}
}

func TestBallAreaPerimeter(t *testing.T) {
	b := NewBall(Origin, 2)
	if got := b.Area(); !almostEqual(got, 4*math.Pi, 1e-12) {
		t.Errorf("Area = %v", got)
	}
	if got := b.Perimeter(); !almostEqual(got, 4*math.Pi, 1e-12) {
		t.Errorf("Perimeter = %v", got)
	}
}

func TestIntersectCircles(t *testing.T) {
	tests := []struct {
		name   string
		b1, b2 Ball
		nWant  int
	}{
		{"twoPoints", NewBall(Pt(0, 0), 2), NewBall(Pt(2, 0), 2), 2},
		{"tangentExternal", NewBall(Pt(0, 0), 1), NewBall(Pt(2, 0), 1), 1},
		{"tangentInternal", NewBall(Pt(0, 0), 2), NewBall(Pt(1, 0), 1), 1},
		{"disjoint", NewBall(Pt(0, 0), 1), NewBall(Pt(5, 0), 1), 0},
		{"nested", NewBall(Pt(0, 0), 5), NewBall(Pt(1, 0), 1), 0},
		{"coincident", NewBall(Pt(0, 0), 1), NewBall(Pt(0, 0), 1), 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			pts := IntersectCircles(tc.b1, tc.b2)
			if len(pts) != tc.nWant {
				t.Fatalf("got %d points %v, want %d", len(pts), pts, tc.nWant)
			}
			for _, p := range pts {
				if d := Dist(tc.b1.C, p); !almostEqual(d, tc.b1.R, 1e-9) {
					t.Errorf("point %v not on circle 1: dist %v vs R %v", p, d, tc.b1.R)
				}
				if d := Dist(tc.b2.C, p); !almostEqual(d, tc.b2.R, 1e-9) {
					t.Errorf("point %v not on circle 2: dist %v vs R %v", p, d, tc.b2.R)
				}
			}
		})
	}
}

func TestIntersectCirclesKnownValues(t *testing.T) {
	// Circles of radius sqrt(2) centered at (0,0) and (2,0) meet at
	// (1, 1) and (1, -1).
	pts := IntersectCircles(NewBall(Pt(0, 0), math.Sqrt2), NewBall(Pt(2, 0), math.Sqrt2))
	if len(pts) != 2 {
		t.Fatalf("got %d points", len(pts))
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].Y > pts[j].Y })
	if !ApproxEqual(pts[0], Pt(1, 1), 1e-9) || !ApproxEqual(pts[1], Pt(1, -1), 1e-9) {
		t.Errorf("points = %v", pts)
	}
}

func TestBoxBasics(t *testing.T) {
	b := NewBox(Pt(2, 5), Pt(-1, 1)) // corners in arbitrary order
	if b.Min != Pt(-1, 1) || b.Max != Pt(2, 5) {
		t.Fatalf("box = %v", b)
	}
	if got := b.Width(); got != 3 {
		t.Errorf("Width = %v", got)
	}
	if got := b.Height(); got != 4 {
		t.Errorf("Height = %v", got)
	}
	if got := b.Area(); got != 12 {
		t.Errorf("Area = %v", got)
	}
	if got := b.Center(); !ApproxEqual(got, Pt(0.5, 3), 1e-12) {
		t.Errorf("Center = %v", got)
	}
	if !b.Contains(Pt(0, 2)) || b.Contains(Pt(3, 2)) {
		t.Error("Contains misclassification")
	}
	e := b.Expand(1)
	if e.Min != Pt(-2, 0) || e.Max != Pt(3, 6) {
		t.Errorf("Expand = %v", e)
	}
}

func TestBoundingBox(t *testing.T) {
	if _, ok := BoundingBox(nil); ok {
		t.Error("empty slice should report !ok")
	}
	box, ok := BoundingBox([]Point{Pt(1, 2), Pt(-3, 7), Pt(0, 0)})
	if !ok {
		t.Fatal("expected ok")
	}
	if box.Min != Pt(-3, 0) || box.Max != Pt(1, 7) {
		t.Errorf("box = %v", box)
	}
}

func TestBoxAround(t *testing.T) {
	box := BoxAround(NewBall(Pt(1, 2), 3))
	if box.Min != Pt(-2, -1) || box.Max != Pt(4, 5) {
		t.Errorf("box = %v", box)
	}
}

func TestBoxCornersAndEdges(t *testing.T) {
	b := NewBox(Pt(0, 0), Pt(2, 1))
	corners := b.Corners()
	want := [4]Point{Pt(0, 0), Pt(2, 0), Pt(2, 1), Pt(0, 1)}
	if corners != want {
		t.Errorf("corners = %v", corners)
	}
	edges := b.Edges()
	var perim float64
	for _, e := range edges {
		perim += e.Length()
	}
	if !almostEqual(perim, 6, 1e-12) {
		t.Errorf("perimeter = %v, want 6", perim)
	}
}
