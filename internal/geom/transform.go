package geom

import (
	"fmt"
	"math"
)

// Transform is a direct similarity transform of the plane: a rotation
// followed by a uniform scaling followed by a translation,
//
//	f(p) = sigma * R(theta) * p + t.
//
// These are exactly the mappings of Lemma 2.3 in the paper: they
// preserve SINR values provided the background noise is rescaled by
// 1/sigma^2. The transform is stored as the complex-like pair (a, b)
// with f(x, y) = (a*x - b*y + tx, b*x + a*y + ty), so sigma^2 = a^2+b^2.
type Transform struct {
	a, b   float64 // rotation+scale: a = sigma*cos(theta), b = sigma*sin(theta)
	tx, ty float64 // translation
}

// Identity returns the identity transform.
func Identity() Transform { return Transform{a: 1} }

// Translation returns the transform p -> p + d.
func Translation(d Point) Transform { return Transform{a: 1, tx: d.X, ty: d.Y} }

// Rotation returns the rotation by theta radians about the origin.
func Rotation(theta float64) Transform {
	return Transform{a: math.Cos(theta), b: math.Sin(theta)}
}

// RotationAbout returns the rotation by theta radians about center c.
func RotationAbout(c Point, theta float64) Transform {
	return Translation(c).Compose(Rotation(theta)).Compose(Translation(c.Neg()))
}

// Scaling returns the uniform scaling by sigma > 0 about the origin.
func Scaling(sigma float64) Transform { return Transform{a: sigma} }

// Similarity returns the transform that first rotates by theta, then
// scales by sigma, then translates by d.
func Similarity(theta, sigma float64, d Point) Transform {
	return Translation(d).Compose(Scaling(sigma)).Compose(Rotation(theta))
}

// Apply maps the point p through the transform.
func (t Transform) Apply(p Point) Point {
	return Point{
		X: t.a*p.X - t.b*p.Y + t.tx,
		Y: t.b*p.X + t.a*p.Y + t.ty,
	}
}

// ApplyAll maps every point in pts, returning a new slice.
func (t Transform) ApplyAll(pts []Point) []Point {
	out := make([]Point, len(pts))
	for i, p := range pts {
		out[i] = t.Apply(p)
	}
	return out
}

// Scale returns the scaling factor sigma of the transform.
func (t Transform) Scale() float64 { return math.Hypot(t.a, t.b) }

// Compose returns the transform "t after u": (t.Compose(u)).Apply(p) ==
// t.Apply(u.Apply(p)).
func (t Transform) Compose(u Transform) Transform {
	return Transform{
		a:  t.a*u.a - t.b*u.b,
		b:  t.b*u.a + t.a*u.b,
		tx: t.a*u.tx - t.b*u.ty + t.tx,
		ty: t.b*u.tx + t.a*u.ty + t.ty,
	}
}

// Inverse returns the inverse transform. The second return value is
// false when the transform is degenerate (sigma == 0).
func (t Transform) Inverse() (Transform, bool) {
	s2 := t.a*t.a + t.b*t.b
	if s2 == 0 {
		return Transform{}, false
	}
	ia, ib := t.a/s2, -t.b/s2
	return Transform{
		a:  ia,
		b:  ib,
		tx: -(ia*t.tx - ib*t.ty),
		ty: -(ib*t.tx + ia*t.ty),
	}, true
}

// CanonicalFrame returns the similarity transform that maps p0 to the
// origin and p1 onto the positive x-axis at distance dist(p0, p1).
// This is the normalization step used repeatedly in the paper's proofs
// ("we may assume s0 = (0,0) and p = (-1,0)", etc.).
func CanonicalFrame(p0, p1 Point) (Transform, bool) {
	d := p1.Sub(p0)
	if d.Norm() == 0 {
		return Transform{}, false
	}
	return Rotation(-d.Angle()).Compose(Translation(p0.Neg())), true
}

// String implements fmt.Stringer.
func (t Transform) String() string {
	return fmt.Sprintf("Transform{rot/scale=(%.6g,%.6g) shift=(%.6g,%.6g)}", t.a, t.b, t.tx, t.ty)
}
