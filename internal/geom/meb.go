package geom

import "math/rand"

// Circumcircle returns the circle through three points. ok is false
// when the points are (near-)collinear.
func Circumcircle(a, b, c Point) (Ball, bool) {
	// Solve the perpendicular-bisector intersection.
	abMid, bcMid := Midpoint(a, b), Midpoint(b, c)
	abDir := b.Sub(a).Perp()
	bcDir := c.Sub(b).Perp()
	t, _, ok := IntersectLines(Line{P: abMid, D: abDir}, Line{P: bcMid, D: bcDir})
	if !ok {
		return Ball{}, false
	}
	center := abMid.Add(abDir.Scale(t))
	return Ball{C: center, R: Dist(center, a)}, true
}

// ballFrom2 returns the smallest ball through two points.
func ballFrom2(a, b Point) Ball {
	return Ball{C: Midpoint(a, b), R: Dist(a, b) / 2}
}

// mebEps is the containment slack used inside the Welzl recursion so
// boundary points do not oscillate in float64.
const mebEps = 1e-9

func mebContains(b Ball, p Point) bool {
	return Dist(b.C, p) <= b.R*(1+mebEps)+mebEps
}

// MinEnclosingBall returns the smallest ball containing all points
// (Welzl's algorithm, expected O(n) after shuffling with rng; pass nil
// for a deterministic — still correct, possibly slower — run). An
// empty input yields the empty ball at the origin.
func MinEnclosingBall(pts []Point, rng *rand.Rand) Ball {
	if len(pts) == 0 {
		return Ball{}
	}
	work := make([]Point, len(pts))
	copy(work, pts)
	if rng != nil {
		rng.Shuffle(len(work), func(i, j int) { work[i], work[j] = work[j], work[i] })
	}
	b := Ball{C: work[0], R: 0}
	for i := 1; i < len(work); i++ {
		if mebContains(b, work[i]) {
			continue
		}
		// work[i] is on the boundary of the ball of the prefix.
		b = Ball{C: work[i], R: 0}
		for j := 0; j < i; j++ {
			if mebContains(b, work[j]) {
				continue
			}
			b = ballFrom2(work[i], work[j])
			for k := 0; k < j; k++ {
				if mebContains(b, work[k]) {
					continue
				}
				if cc, ok := Circumcircle(work[i], work[j], work[k]); ok {
					b = cc
				} else {
					// Collinear triple: the diametral ball of the two
					// extreme points covers the third.
					b = maxPairBall(work[i], work[j], work[k])
				}
			}
		}
	}
	return b
}

// maxPairBall returns the largest of the three diametral balls of a
// point triple (the correct MEB for collinear points).
func maxPairBall(a, b, c Point) Ball {
	best := ballFrom2(a, b)
	if cand := ballFrom2(a, c); cand.R > best.R {
		best = cand
	}
	if cand := ballFrom2(b, c); cand.R > best.R {
		best = cand
	}
	return best
}
