package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestConvexHullSquare(t *testing.T) {
	pts := []Point{
		Pt(0, 0), Pt(1, 0), Pt(1, 1), Pt(0, 1),
		Pt(0.5, 0.5), Pt(0.25, 0.75), // interior points
	}
	hull := ConvexHull(pts)
	if len(hull) != 4 {
		t.Fatalf("hull has %d vertices: %v", len(hull), hull)
	}
	if !Polygon(hull).IsConvex() {
		t.Error("hull not convex")
	}
	if got := Polygon(hull).Area(); !almostEqual(got, 1, 1e-12) {
		t.Errorf("area = %v, want 1", got)
	}
}

func TestConvexHullCollinear(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(1, 1), Pt(2, 2), Pt(3, 3)}
	hull := ConvexHull(pts)
	if len(hull) > 2 {
		t.Fatalf("collinear hull has %d vertices: %v", len(hull), hull)
	}
}

func TestConvexHullSmallInputs(t *testing.T) {
	if got := ConvexHull(nil); len(got) != 0 {
		t.Errorf("nil input: %v", got)
	}
	if got := ConvexHull([]Point{Pt(1, 2)}); len(got) != 1 {
		t.Errorf("single point: %v", got)
	}
	if got := ConvexHull([]Point{Pt(1, 2), Pt(3, 4)}); len(got) != 2 {
		t.Errorf("two points: %v", got)
	}
	// Duplicates collapse.
	if got := ConvexHull([]Point{Pt(1, 2), Pt(1, 2), Pt(1, 2)}); len(got) != 1 {
		t.Errorf("duplicates: %v", got)
	}
}

func TestConvexHullContainsAllPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		pts := make([]Point, 50)
		for i := range pts {
			pts[i] = Pt(rng.Float64()*10-5, rng.Float64()*10-5)
		}
		hull := Polygon(ConvexHull(pts))
		if !hull.IsConvex() {
			t.Fatalf("trial %d: hull not convex", trial)
		}
		for _, p := range pts {
			if !hull.Contains(p) {
				t.Fatalf("trial %d: hull misses point %v", trial, p)
			}
		}
	}
}

func TestPolygonArea(t *testing.T) {
	tests := []struct {
		name string
		pg   Polygon
		want float64
	}{
		{"ccwTriangle", Polygon{Pt(0, 0), Pt(2, 0), Pt(0, 2)}, 2},
		{"cwTriangle", Polygon{Pt(0, 0), Pt(0, 2), Pt(2, 0)}, -2},
		{"unitSquare", Polygon{Pt(0, 0), Pt(1, 0), Pt(1, 1), Pt(0, 1)}, 1},
		{"degenerate", Polygon{Pt(0, 0), Pt(1, 1)}, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.pg.Area(); !almostEqual(got, tc.want, 1e-12) {
				t.Fatalf("Area = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestPolygonPerimeter(t *testing.T) {
	sq := Polygon{Pt(0, 0), Pt(1, 0), Pt(1, 1), Pt(0, 1)}
	if got := sq.Perimeter(); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Perimeter = %v, want 4", got)
	}
	if got := (Polygon{Pt(1, 1)}).Perimeter(); got != 0 {
		t.Errorf("single-vertex perimeter = %v", got)
	}
}

func TestPolygonCentroid(t *testing.T) {
	sq := Polygon{Pt(0, 0), Pt(2, 0), Pt(2, 2), Pt(0, 2)}
	if got := sq.Centroid(); !ApproxEqual(got, Pt(1, 1), 1e-12) {
		t.Errorf("Centroid = %v, want (1,1)", got)
	}
}

func TestPolygonIsConvex(t *testing.T) {
	convex := Polygon{Pt(0, 0), Pt(2, 0), Pt(2, 2), Pt(0, 2)}
	if !convex.IsConvex() {
		t.Error("square should be convex")
	}
	nonConvex := Polygon{Pt(0, 0), Pt(2, 0), Pt(1, 0.5), Pt(2, 2), Pt(0, 2)}
	if nonConvex.IsConvex() {
		t.Error("dented polygon should not be convex")
	}
}

func TestPolygonContains(t *testing.T) {
	pg := Polygon{Pt(0, 0), Pt(4, 0), Pt(4, 4), Pt(0, 4)}
	tests := []struct {
		p    Point
		want bool
	}{
		{Pt(2, 2), true},
		{Pt(0, 0), true}, // vertex
		{Pt(2, 0), true}, // edge
		{Pt(5, 2), false},
		{Pt(-1, -1), false},
		{Pt(2, 4.001), false},
	}
	for _, tc := range tests {
		if got := pg.Contains(tc.p); got != tc.want {
			t.Errorf("Contains(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestHalfPlaneOf(t *testing.T) {
	a, b := Pt(0, 0), Pt(2, 0)
	h := HalfPlaneOf(a, b)
	if !h.Contains(a) {
		t.Error("half plane must contain its defining site a")
	}
	if h.Contains(b) && !h.Contains(Midpoint(a, b)) {
		t.Error("inconsistent half plane")
	}
	if !h.Contains(Midpoint(a, b)) {
		t.Error("boundary midpoint must be contained (closed half plane)")
	}
	if h.Contains(Pt(1.5, 0)) {
		t.Error("points nearer b must be excluded")
	}
}

func TestClipPolygon(t *testing.T) {
	sq := Polygon{Pt(0, 0), Pt(4, 0), Pt(4, 4), Pt(0, 4)}
	// Clip by half plane x <= 2.
	h := HalfPlane{N: Pt(1, 0), C: 2}
	clipped := ClipPolygon(sq, h)
	if got := clipped.Area(); !almostEqual(got, 8, 1e-9) {
		t.Fatalf("clipped area = %v, want 8", got)
	}
	if !clipped.IsConvex() {
		t.Error("clip must preserve convexity")
	}
	// Clip away everything.
	hAll := HalfPlane{N: Pt(1, 0), C: -1}
	if got := ClipPolygon(sq, hAll); got != nil {
		t.Errorf("expected empty clip, got %v", got)
	}
	// Clip that removes nothing.
	hNone := HalfPlane{N: Pt(1, 0), C: 100}
	if got := ClipPolygon(sq, hNone).Area(); !almostEqual(got, 16, 1e-9) {
		t.Errorf("no-op clip area = %v", got)
	}
	// Empty input.
	if got := ClipPolygon(nil, h); got != nil {
		t.Errorf("nil polygon clip = %v", got)
	}
}

func TestClipPolygonSequence(t *testing.T) {
	// Clipping a big square by the half planes of a ball approximation
	// should shrink the area monotonically toward the ball area.
	pg := Polygon{Pt(-10, -10), Pt(10, -10), Pt(10, 10), Pt(-10, 10)}
	prev := pg.Area()
	for k := 0; k < 16; k++ {
		theta := 2 * math.Pi * float64(k) / 16
		n := Pt(math.Cos(theta), math.Sin(theta))
		pg = ClipPolygon(pg, HalfPlane{N: n, C: 1})
		if pg == nil {
			t.Fatal("polygon vanished")
		}
		a := pg.Area()
		if a > prev+1e-9 {
			t.Fatalf("area increased: %v -> %v", prev, a)
		}
		prev = a
	}
	// The 16-gon circumscribing radius-1 ball has area 16*tan(pi/16).
	want := 16 * math.Tan(math.Pi/16)
	if !almostEqual(prev, want, 1e-6) {
		t.Errorf("final area = %v, want %v", prev, want)
	}
}
