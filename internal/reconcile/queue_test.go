package reconcile

import (
	"sync"
	"testing"
	"time"
)

func mustGet(t *testing.T, q *workqueue) string {
	t.Helper()
	type got struct {
		key string
		ok  bool
	}
	ch := make(chan got, 1)
	go func() {
		key, _, ok := q.Get()
		ch <- got{key, ok}
	}()
	select {
	case g := <-ch:
		if !g.ok {
			t.Fatal("Get returned ok=false")
		}
		return g.key
	case <-time.After(5 * time.Second):
		t.Fatal("Get blocked")
		return ""
	}
}

func TestWorkqueueDedup(t *testing.T) {
	q := newWorkqueue()
	q.Add("x")
	q.Add("x")
	q.Add("y")
	if q.Len() != 2 {
		t.Fatalf("Len = %d after duplicate Add, want 2", q.Len())
	}
	if k := mustGet(t, q); k != "x" {
		t.Fatalf("first Get = %q, want x", k)
	}
	if k := mustGet(t, q); k != "y" {
		t.Fatalf("second Get = %q, want y", k)
	}
}

// A key added while being processed must not be handed to a second
// worker, and must come back exactly once after Done.
func TestWorkqueueRequeueAfterDone(t *testing.T) {
	q := newWorkqueue()
	q.Add("x")
	if k := mustGet(t, q); k != "x" {
		t.Fatalf("Get = %q", k)
	}
	q.Add("x") // while processing: marks dirty, does not queue
	if q.Len() != 0 {
		t.Fatalf("Len = %d while x is processing, want 0", q.Len())
	}
	q.Done("x")
	if q.Len() != 1 {
		t.Fatalf("Len = %d after Done of a dirty key, want 1", q.Len())
	}
	if k := mustGet(t, q); k != "x" {
		t.Fatalf("requeued Get = %q", k)
	}
	q.Done("x")
	if q.Len() != 0 {
		t.Fatalf("Len = %d after clean Done, want 0", q.Len())
	}
}

func TestWorkqueueAddAfter(t *testing.T) {
	q := newWorkqueue()
	q.AddAfter("x", 2*time.Millisecond)
	if k := mustGet(t, q); k != "x" {
		t.Fatalf("Get = %q", k)
	}
	q.AddAfter("y", 0) // non-positive delay adds immediately
	if k := mustGet(t, q); k != "y" {
		t.Fatalf("Get = %q", k)
	}
}

func TestWorkqueueShutdownDrains(t *testing.T) {
	q := newWorkqueue()
	q.Add("a")
	q.Add("b")
	q.ShutDown()
	if k := mustGet(t, q); k != "a" {
		t.Fatalf("Get = %q", k)
	}
	if k := mustGet(t, q); k != "b" {
		t.Fatalf("Get = %q", k)
	}
	if _, _, ok := q.Get(); ok {
		t.Fatal("Get after drain returned ok=true")
	}
	q.Add("c") // post-shutdown Add is a no-op
	if q.Len() != 0 {
		t.Fatal("Add after shutdown queued a key")
	}
}

func TestWorkqueueShutdownWakesBlockedGet(t *testing.T) {
	q := newWorkqueue()
	done := make(chan bool, 1)
	go func() {
		_, _, ok := q.Get()
		done <- ok
	}()
	time.Sleep(5 * time.Millisecond)
	q.ShutDown()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("blocked Get returned ok=true after shutdown")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Get still blocked after ShutDown")
	}
}

// TestKeyLockExcludes drives unsynchronized counters that are only
// protected by the per-name locks; under -race this fails loudly if
// two holders of the same key ever overlap, while distinct keys
// proceed concurrently.
func TestKeyLockExcludes(t *testing.T) {
	kl := newKeyLock()
	const goroutines, iters = 8, 500
	var a, b int // protected only by keyLock("a") / keyLock("b")
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				kl.lock("a")
				a++
				kl.unlock("a")
			}
		}()
		go func() {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				kl.lock("b")
				b++
				kl.unlock("b")
			}
		}()
	}
	wg.Wait()
	if a != goroutines*iters || b != goroutines*iters {
		t.Fatalf("counters a=%d b=%d, want both %d", a, b, goroutines*iters)
	}
}
