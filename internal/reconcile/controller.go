package reconcile

import (
	"context"
	"io"
	"log"
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/serve"
	"repro/internal/trace"
)

// Registry is the registry surface the controller converges. A
// *serve.Server satisfies it; tests wrap one to inject transient
// failures.
type Registry interface {
	// ApplySpec converges one network toward spec with the cheapest
	// operation (see serve.Server.ApplySpec). Must be idempotent.
	ApplySpec(spec *serve.NetworkSpec) (serve.SpecResult, error)
	// DeleteNetwork removes name and everything cached under it,
	// reporting whether it existed.
	DeleteNetwork(name string) bool
	// SpecHashOf reports the content hash of the spec behind name's
	// live generation, if any — the differ's entire view of liveness.
	SpecHashOf(name string) (string, bool)
}

var _ Registry = (*serve.Server)(nil)

// Options configures a Controller. The zero value of every field is a
// usable default except Dir, which is required.
type Options struct {
	// Dir is the spec directory to watch (required).
	Dir string
	// Interval is the poll/resync period (default 2s).
	Interval time.Duration
	// Workers is the number of concurrent reconcilers (default 2).
	// Per-name keyed locks make any worker count safe.
	Workers int
	// MaxRetries is how many consecutive failures park a network in
	// the terminal-failure state (default 5). Terminal networks are
	// left alone until their spec content changes.
	MaxRetries int
	// BackoffBase and BackoffMax bound the per-item exponential retry
	// backoff (defaults 100ms and 30s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Metrics receives the controller's instruments. Pass the serving
	// registry (serve.Server.Metrics()) to surface them on /metrics;
	// nil gets a private registry.
	Metrics *metrics.Registry
	// Recorder receives a per-Sync trace (list and diff spans) in its
	// "reconcile" lane. Pass the serving recorder
	// (serve.Server.Recorder()) to surface sync passes on
	// /debug/requests; nil disables sync tracing.
	Recorder *trace.Recorder
	// Logger receives reconcile events; nil discards them.
	Logger *log.Logger
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Interval <= 0 {
		out.Interval = 2 * time.Second
	}
	if out.Workers <= 0 {
		out.Workers = 2
	}
	if out.MaxRetries <= 0 {
		out.MaxRetries = 5
	}
	if out.BackoffBase <= 0 {
		out.BackoffBase = 100 * time.Millisecond
	}
	if out.BackoffMax <= 0 {
		out.BackoffMax = 30 * time.Second
	}
	if out.Logger == nil {
		out.Logger = log.New(io.Discard, "", 0)
	}
	return out
}

// outcomeResults is the label vocabulary of
// sinr_reconcile_outcomes_total: the four serve.SpecOutcome names plus
// the controller's own deleted / error / terminal results. All series
// are pre-registered so a scrape shows explicit zeroes.
var outcomeResults = []string{
	"unchanged", "created", "patched", "replaced", "deleted", "error", "terminal",
}

// Controller converges a Registry toward the spec directory: a
// polling lister computes per-name drift by content hash, a
// deduplicating workqueue with per-item exponential backoff carries
// drifted names to workers, and per-name keyed locks keep at most one
// worker on a network at a time.
type Controller struct {
	reg   Registry
	opt   Options
	log   *log.Logger
	q     *workqueue
	locks *keyLock

	mu       sync.Mutex
	desired  map[string]specFile // network name -> winning spec file
	lastGood map[string]specFile // file path -> last successful parse
	adopted  map[string]struct{} // names this controller has created or updated
	terminal map[string]string   // name -> spec hash parked after MaxRetries
	failures map[string]int      // name -> consecutive failures
	drift    map[string]*metrics.Gauge

	mreg     *metrics.Registry
	outcomes map[string]*metrics.Counter
	retries  *metrics.Counter
	specErrs *metrics.Counter
	syncs    *metrics.Counter
	latency  *metrics.Histogram

	// Sync tracing: the flight-recorder lane named "reconcile" (index
	// resolved once at construction) and the controller's own trace-ID
	// source. Both nil/-1 when no Recorder was configured.
	rec      *trace.Recorder
	recRoute int
	ids      *trace.IDSource
}

// New builds a Controller converging reg toward opt.Dir. Call Run to
// start it, or drive it manually with Sync for deterministic tests.
func New(reg Registry, opt Options) *Controller {
	opt = opt.withDefaults()
	mreg := opt.Metrics
	if mreg == nil {
		mreg = metrics.NewRegistry()
	}
	c := &Controller{
		reg:      reg,
		opt:      opt,
		log:      opt.Logger,
		q:        newWorkqueue(),
		locks:    newKeyLock(),
		desired:  make(map[string]specFile),
		lastGood: make(map[string]specFile),
		adopted:  make(map[string]struct{}),
		terminal: make(map[string]string),
		failures: make(map[string]int),
		drift:    make(map[string]*metrics.Gauge),
		mreg:     mreg,
		outcomes: make(map[string]*metrics.Counter, len(outcomeResults)),
		rec:      opt.Recorder,
		recRoute: opt.Recorder.RouteIndex("reconcile"),
		ids:      trace.NewIDSource(),
	}
	for _, r := range outcomeResults {
		c.outcomes[r] = mreg.Counter("sinr_reconcile_outcomes_total",
			"Reconcile attempts by result.", metrics.L("result", r))
	}
	c.retries = mreg.Counter("sinr_reconcile_retries_total",
		"Reconcile retries scheduled after transient failures.")
	c.specErrs = mreg.Counter("sinr_reconcile_spec_errors_total",
		"Spec files that failed to read, parse, or validate (including duplicate names).")
	c.syncs = mreg.Counter("sinr_reconcile_syncs_total",
		"Spec-directory listings performed.")
	c.latency = mreg.Histogram("sinr_reconcile_queue_latency_seconds",
		"Time reconcile keys spent waiting in the workqueue.", nil)
	mreg.GaugeFunc("sinr_reconcile_queue_depth",
		"Reconcile keys waiting in the workqueue.",
		func() float64 { return float64(c.q.Len()) })
	return c
}

// Run syncs immediately, then keeps syncing every Interval until ctx
// is cancelled, at which point the queue is drained and every worker
// has returned before Run does.
func (c *Controller) Run(ctx context.Context) {
	c.Sync()
	var wg sync.WaitGroup
	for i := 0; i < c.opt.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.worker()
		}()
	}
	ticker := time.NewTicker(c.opt.Interval) //sinr:nondeterministic-ok poll-interval pacing, not a diff decision
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			c.q.ShutDown()
			wg.Wait()
			return
		case <-ticker.C:
			c.Sync()
		}
	}
}

// Sync performs one list-and-diff pass: parse the spec directory,
// fold results into the last-good state, rebuild the desired set, and
// enqueue every drifted or removed name. Exported so tests and tools
// can drive the controller without the wall-clock ticker; drift is a
// pure function of spec hashes, so Sync is idempotent.
func (c *Controller) Sync() {
	// Trace the pass when a recorder is wired. The trace never feeds a
	// decision — timings are recorded by internal/trace against its own
	// clock, keeping this package free of wall-clock reads.
	var trStore trace.Trace
	var tr *trace.Trace
	if c.rec != nil && c.recRoute >= 0 {
		tr = &trStore
		tr.Begin(c.ids.TraceID(c.ids.Next()), trace.SpanID{}, "reconcile")
	}

	ls := tr.Start("list")
	files, errs := loadSpecDir(c.opt.Dir)
	tr.End(ls)
	c.syncs.Inc()
	for _, e := range errs {
		c.specErrs.Inc()
		c.log.Printf("reconcile: spec error at %s: %v", e.path, e.err)
	}
	// A failed directory listing is the one error that must not look
	// like "every file vanished": keep the previous last-good state.
	dirGone := len(files) == 0 && len(errs) == 1 && errs[0].path == c.opt.Dir

	ds := tr.Start("diff")
	c.mu.Lock()
	present := make(map[string]bool, len(files))
	for _, f := range files {
		present[f.path] = true
		c.lastGood[f.path] = f
	}
	badPath := make(map[string]bool, len(errs))
	for _, e := range errs {
		badPath[e.path] = true
	}
	if !dirGone {
		// A path gone from the listing loses its last-good spec (its
		// network becomes undesired); a path that merely stopped
		// parsing keeps it — parse errors never cascade into deletes.
		for _, path := range sortedKeys(c.lastGood) {
			if !present[path] && !badPath[path] {
				delete(c.lastGood, path)
			}
		}
	}

	// Desired state by network name; on duplicate names the
	// lexicographically-first path wins, later ones are spec errors.
	next := make(map[string]specFile, len(c.lastGood))
	var dup int
	for _, path := range sortedKeys(c.lastGood) {
		f := c.lastGood[path]
		if win, taken := next[f.spec.Name]; taken {
			dup++
			c.log.Printf("reconcile: duplicate network %q at %s (keeping %s)", f.spec.Name, path, win.path)
			continue
		}
		next[f.spec.Name] = f
	}
	c.desired = next

	// Diff desired against live, name by name.
	names := sortedKeys(c.desired)
	for _, name := range sortedKeys(c.adopted) {
		if _, ok := c.desired[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var enqueue []string
	for _, name := range names {
		f, want := c.desired[name]
		liveHash, live := c.reg.SpecHashOf(name)
		if !want {
			// Adopted but no longer desired: converge by deletion. The
			// worker also handles the already-gone case.
			delete(c.terminal, name)
			delete(c.failures, name)
			if live {
				c.driftGaugeLocked(name).Set(1)
			}
			enqueue = append(enqueue, name)
			continue
		}
		drifted := !live || liveHash != f.hash
		g := c.driftGaugeLocked(name)
		if parked, ok := c.terminal[name]; ok {
			if parked == f.hash {
				continue // parked until the spec content changes
			}
			delete(c.terminal, name)
			delete(c.failures, name)
		}
		if drifted {
			g.Set(1)
			enqueue = append(enqueue, name)
		} else {
			g.Set(0)
		}
	}
	c.mu.Unlock()
	tr.End(ds)

	for i := 0; i < dup; i++ {
		c.specErrs.Inc()
	}
	for _, name := range enqueue {
		c.q.Add(name)
	}

	if tr != nil {
		status := 200
		if len(errs) > 0 || dup > 0 {
			// Spec errors surface the pass in the recorder's error lane.
			status = 500
		}
		tr.Finish(status)
		c.rec.Offer(c.recRoute, tr)
	}
}

func (c *Controller) worker() {
	for {
		key, waited, ok := c.q.Get()
		if !ok {
			return
		}
		c.latency.Observe(waited.Seconds())
		c.reconcile(key)
		c.q.Done(key)
	}
}

// reconcile converges one network: apply its desired spec, or delete
// it when it is adopted but no longer desired. The keyed lock
// serializes reconciles of the same name across workers.
func (c *Controller) reconcile(name string) {
	c.locks.lock(name)
	defer c.locks.unlock(name)

	c.mu.Lock()
	f, want := c.desired[name]
	_, isAdopted := c.adopted[name]
	parkedHash, parked := c.terminal[name]
	c.mu.Unlock()

	if want && parked && parkedHash == f.hash {
		// A retry landed after the name parked terminally: stay parked
		// until the spec content changes.
		return
	}
	if !want {
		if !isAdopted {
			return // never ours: leave imperatively-created networks alone
		}
		deleted := c.reg.DeleteNetwork(name)
		c.mu.Lock()
		delete(c.adopted, name)
		delete(c.failures, name)
		delete(c.terminal, name)
		c.dropDriftGaugeLocked(name)
		c.mu.Unlock()
		if deleted {
			c.outcomes["deleted"].Inc()
			c.log.Printf("reconcile: deleted network %q", name)
		}
		return
	}

	// The registry stores the applied spec in its snapshot; hand it a
	// copy so desired state and served state never share slices.
	res, err := c.reg.ApplySpec(cloneSpec(f.spec))
	if err != nil {
		c.fail(name, f.hash, err)
		return
	}
	c.mu.Lock()
	c.adopted[name] = struct{}{}
	delete(c.failures, name)
	delete(c.terminal, name)
	c.driftGaugeLocked(name).Set(0)
	c.mu.Unlock()
	c.outcomes[res.Outcome.String()].Inc()
	if res.Outcome != serve.SpecUnchanged {
		c.log.Printf("reconcile: %s network %q -> v%d (%d stations, %s)",
			res.Outcome, name, res.Version, res.Stations, res.Resolver)
	}
}

// fail records a reconcile failure: retry with exponential backoff,
// or park the name terminally once MaxRetries consecutive failures
// accumulate. The terminal state is keyed by spec hash, so editing
// the spec file un-parks the network on the next sync.
func (c *Controller) fail(name, hash string, err error) {
	c.mu.Lock()
	c.failures[name]++
	n := c.failures[name]
	parked := n >= c.opt.MaxRetries
	if parked {
		c.terminal[name] = hash
	}
	c.mu.Unlock()
	if parked {
		c.outcomes["terminal"].Inc()
		c.log.Printf("reconcile: network %q: giving up after %d attempts: %v", name, n, err)
		return
	}
	c.outcomes["error"].Inc()
	c.retries.Inc()
	delay := backoff(c.opt.BackoffBase, c.opt.BackoffMax, n)
	c.log.Printf("reconcile: network %q: attempt %d failed, retrying in %s: %v", name, n, delay, err)
	c.q.AddAfter(name, delay)
}

// backoff is the per-item exponential retry delay: base doubled per
// consecutive failure, capped at max.
func backoff(base, max time.Duration, failures int) time.Duration {
	d := base
	for i := 1; i < failures; i++ {
		d *= 2
		if d >= max {
			return max
		}
	}
	if d > max {
		return max
	}
	return d
}

// driftGaugeLocked returns (registering on first use) the per-network
// drift gauge. Caller holds c.mu.
func (c *Controller) driftGaugeLocked(name string) *metrics.Gauge {
	g, ok := c.drift[name]
	if !ok {
		g = c.mreg.Gauge("sinr_network_drift",
			"1 while the network's live generation differs from its desired spec.",
			metrics.L("network", name))
		c.drift[name] = g
	}
	return g
}

// dropDriftGaugeLocked unregisters a removed network's drift gauge so
// /metrics does not accumulate series for names that no longer exist.
// Caller holds c.mu.
func (c *Controller) dropDriftGaugeLocked(name string) {
	if _, ok := c.drift[name]; ok {
		c.mreg.Unregister("sinr_network_drift", metrics.L("network", name))
		delete(c.drift, name)
	}
}

// Stats is a point-in-time controller summary for tools and tests.
type Stats struct {
	Desired    int               // networks described by the spec directory
	Adopted    int               // networks this controller manages
	Terminal   int               // networks parked after MaxRetries
	QueueDepth int               // keys waiting in the workqueue
	Outcomes   map[string]uint64 // reconcile outcome counters by result
}

// Stats reports the controller's current bookkeeping and outcome
// counters.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	s := Stats{
		Desired:  len(c.desired),
		Adopted:  len(c.adopted),
		Terminal: len(c.terminal),
	}
	c.mu.Unlock()
	s.QueueDepth = c.q.Len()
	s.Outcomes = make(map[string]uint64, len(outcomeResults))
	for _, r := range outcomeResults {
		s.Outcomes[r] = c.outcomes[r].Value()
	}
	return s
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
