package reconcile

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/serve"
)

func TestParseYAMLGenericTree(t *testing.T) {
	doc := `
# a full-line comment
name: demo
count: 3
ratio: -1.5
flag: true
off: false
nothing: null
quoted: "a: b # not a comment"
single: 'it''s'
nested:
  inner: 1
  deeper:
    leaf: ok
list:
  - 1
  - two
  - x: 0
    y: 2.5
empty:
trailing: value # trailing comment
`
	got, err := parseYAML([]byte(doc))
	if err != nil {
		t.Fatalf("parseYAML: %v", err)
	}
	want := map[string]any{
		"name":    "demo",
		"count":   3.0,
		"ratio":   -1.5,
		"flag":    true,
		"off":     false,
		"nothing": nil,
		"quoted":  "a: b # not a comment",
		"single":  "it's",
		"nested": map[string]any{
			"inner":  1.0,
			"deeper": map[string]any{"leaf": "ok"},
		},
		"list":     []any{1.0, "two", map[string]any{"x": 0.0, "y": 2.5}},
		"empty":    nil,
		"trailing": "value",
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parseYAML mismatch:\n got %#v\nwant %#v", got, want)
	}
}

func TestParseYAMLErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"tab indentation", "name: x\n\tbad: 1\n", "tabs"},
		{"duplicate key", "a: 1\na: 2\n", "duplicate key"},
		{"second document", "---\na: 1\n---\nb: 2\n", "multiple documents"},
		{"empty document", "\n# only a comment\n", "empty document"},
		{"bad dedent", "a:\n    b: 1\n  c: 2\n", "indentation"},
		{"unterminated quote", `a: "oops` + "\n", "quoted string"},
		{"key with brace", "{a: 1}\nextra: 2\n", "expected"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseYAML([]byte(tc.doc))
			if err == nil {
				t.Fatalf("parseYAML(%q) succeeded, want error containing %q", tc.doc, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// TestParseSpecFormatEquivalence pins the YAML and JSON front doors to
// one canonical form: the same network described in either format must
// normalize to identical canonical bytes and hash.
func TestParseSpecFormatEquivalence(t *testing.T) {
	yamlDoc := `
name: paper
noise: 0.2          # N
beta: 1.5           # SINR threshold
resolver: exact
stations:
  - x: 0
    y: 0
  - x: 3
    y: 4
    power: 2
schedule:
  scheduler: greedy
  order: id
`
	jsonDoc := `{
  "name": "paper",
  "stations": [{"x":0,"y":0},{"x":3,"y":4,"power":2}],
  "noise": 0.2,
  "beta": 1.5,
  "resolver": "exact",
  "schedule": {"scheduler":"greedy","order":"id"}
}`
	fromYAML, err := ParseSpec([]byte(yamlDoc))
	if err != nil {
		t.Fatalf("ParseSpec(yaml): %v", err)
	}
	fromJSON, err := ParseSpec([]byte(jsonDoc))
	if err != nil {
		t.Fatalf("ParseSpec(json): %v", err)
	}
	cy, err := fromYAML.CanonicalJSON()
	if err != nil {
		t.Fatalf("CanonicalJSON(yaml): %v", err)
	}
	cj, err := fromJSON.CanonicalJSON()
	if err != nil {
		t.Fatalf("CanonicalJSON(json): %v", err)
	}
	if string(cy) != string(cj) {
		t.Fatalf("canonical forms differ:\n yaml %s\n json %s", cy, cj)
	}
	if serve.SpecHash(cy) != serve.SpecHash(cj) {
		t.Fatal("hashes differ for equivalent specs")
	}
}

func TestParseSpecStrict(t *testing.T) {
	if _, err := ParseSpec([]byte(`{"name":"x","stations":[],"noise":0,"beta":1,"typo_field":3}`)); err == nil {
		t.Fatal("unknown JSON field accepted")
	}
	if _, err := ParseSpec([]byte("name: x\ntypo_field: 3\n")); err == nil {
		t.Fatal("unknown YAML field accepted")
	}
	if _, err := ParseSpec([]byte("   \n")); err == nil {
		t.Fatal("empty spec accepted")
	}
	if _, err := ParseSpec([]byte(`{"name":"x"} {"name":"y"}`)); err == nil {
		t.Fatal("trailing JSON document accepted")
	}
}
