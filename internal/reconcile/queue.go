package reconcile

import (
	"sync"
	"time"
)

// workqueue is a deduplicating work queue in the Kubernetes
// client-go shape: Add marks a key dirty and queues it unless it is
// already waiting; a key handed out by Get moves to processing and is
// NOT re-queued by concurrent Adds until Done — instead the dirty mark
// survives and Done re-queues it once. The combination guarantees a
// key is never held by two workers at once while never losing a
// change notification.
type workqueue struct {
	mu         sync.Mutex
	cond       *sync.Cond
	order      []string
	dirty      map[string]struct{}
	processing map[string]struct{}
	added      map[string]time.Time // enqueue instant, for the latency metric
	shutdown   bool
}

func newWorkqueue() *workqueue {
	q := &workqueue{
		dirty:      make(map[string]struct{}),
		processing: make(map[string]struct{}),
		added:      make(map[string]time.Time),
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Add queues key unless it is already queued. If key is currently
// being processed, the dirty mark is recorded and Done re-queues it.
func (q *workqueue) Add(key string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.shutdown {
		return
	}
	if _, ok := q.dirty[key]; ok {
		return
	}
	q.dirty[key] = struct{}{}
	if _, ok := q.added[key]; !ok {
		q.added[key] = time.Now() //sinr:nondeterministic-ok queue-latency metric bookkeeping, not a diff decision
	}
	if _, ok := q.processing[key]; ok {
		return
	}
	q.order = append(q.order, key)
	q.cond.Signal()
}

// AddAfter re-queues key after delay — the retry/backoff edge. The
// timer outlives a shutdown harmlessly: a post-shutdown Add no-ops.
func (q *workqueue) AddAfter(key string, delay time.Duration) {
	if delay <= 0 {
		q.Add(key)
		return
	}
	time.AfterFunc(delay, func() { q.Add(key) }) //sinr:nondeterministic-ok retry backoff pacing, not a diff decision
}

// Get blocks for the next key, reporting how long it waited in the
// queue. ok is false only after ShutDown drains the queue empty.
func (q *workqueue) Get() (key string, waited time.Duration, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.order) == 0 && !q.shutdown {
		q.cond.Wait()
	}
	if len(q.order) == 0 {
		return "", 0, false
	}
	key = q.order[0]
	q.order = q.order[1:]
	q.processing[key] = struct{}{}
	delete(q.dirty, key)
	if t, tracked := q.added[key]; tracked {
		waited = time.Since(t) //sinr:nondeterministic-ok queue-latency metric bookkeeping, not a diff decision
		delete(q.added, key)
	}
	return key, waited, true
}

// Done releases key after processing; if it went dirty again while
// being processed, it is re-queued exactly once.
func (q *workqueue) Done(key string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	delete(q.processing, key)
	if _, ok := q.dirty[key]; ok && !q.shutdown {
		q.order = append(q.order, key)
		q.cond.Signal()
	}
}

// Len reports keys waiting (not ones being processed) — the queue
// depth gauge.
func (q *workqueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.order)
}

// ShutDown wakes every blocked Get; workers drain the remaining keys
// and then observe ok == false.
func (q *workqueue) ShutDown() {
	q.mu.Lock()
	q.shutdown = true
	q.mu.Unlock()
	q.cond.Broadcast()
}
