package reconcile

import (
	"fmt"
	"strconv"
	"strings"
)

// A minimal YAML-subset parser, dependency-free by design (the module
// vendors nothing): enough YAML for declarative network specs and no
// more. Supported: block mappings (key: value / key: + nested block),
// block sequences ("- " items, including inline "- key: value"
// mapping starts), scalars (null, booleans, numbers, bare and quoted
// strings), full-line and trailing comments, and blank lines.
// Unsupported (rejected or misparsed, use JSON instead): anchors,
// aliases, tags, multi-line scalars, flow collections, and multiple
// documents. The parse result converts to the same generic shape a
// JSON decode produces, so both formats funnel through one
// NetworkSpec decode path.

type yamlLine struct {
	indent int
	text   string // content without indentation or trailing comment
	num    int    // 1-based source line, for errors
}

type yamlParser struct {
	lines []yamlLine
	pos   int
}

// parseYAML parses one document into the generic any-tree
// (map[string]any / []any / scalars).
func parseYAML(data []byte) (any, error) {
	raw := strings.Split(string(data), "\n")
	lines := make([]yamlLine, 0, len(raw))
	for i, line := range raw {
		if strings.ContainsRune(line, '\t') {
			return nil, fmt.Errorf("yaml line %d: tabs are not allowed in indentation", i+1)
		}
		trimmed := strings.TrimLeft(line, " ")
		indent := len(line) - len(trimmed)
		trimmed = stripComment(trimmed)
		trimmed = strings.TrimRight(trimmed, " ")
		if trimmed == "" {
			continue
		}
		if trimmed == "---" {
			if len(lines) > 0 {
				return nil, fmt.Errorf("yaml line %d: multiple documents are not supported", i+1)
			}
			continue
		}
		lines = append(lines, yamlLine{indent: indent, text: trimmed, num: i + 1})
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("yaml: empty document")
	}
	p := &yamlParser{lines: lines}
	v, err := p.parseBlock(lines[0].indent)
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		l := p.lines[p.pos]
		return nil, fmt.Errorf("yaml line %d: unexpected content %q (bad indentation?)", l.num, l.text)
	}
	return v, nil
}

// stripComment removes a trailing " #..." comment (or a whole-line
// comment) outside of quotes.
func stripComment(s string) string {
	if strings.HasPrefix(s, "#") {
		return ""
	}
	inSingle, inDouble := false, false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\'':
			if !inDouble {
				inSingle = !inSingle
			}
		case '"':
			if !inSingle {
				inDouble = !inDouble
			}
		case '#':
			if !inSingle && !inDouble && i > 0 && s[i-1] == ' ' {
				return s[:i]
			}
		}
	}
	return s
}

// parseBlock parses the node starting at the current line, which must
// sit at exactly indent.
func (p *yamlParser) parseBlock(indent int) (any, error) {
	l := p.lines[p.pos]
	if l.indent != indent {
		return nil, fmt.Errorf("yaml line %d: unexpected indentation", l.num)
	}
	if l.text == "-" || strings.HasPrefix(l.text, "- ") {
		return p.parseSequence(indent)
	}
	if key, _, ok := splitKey(l.text); ok && key != "" {
		return p.parseMapping(indent)
	}
	// A single scalar document/value.
	p.pos++
	return parseScalar(l.text)
}

func (p *yamlParser) parseMapping(indent int) (any, error) {
	m := make(map[string]any)
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, fmt.Errorf("yaml line %d: unexpected indentation", l.num)
		}
		key, rest, ok := splitKey(l.text)
		if !ok {
			return nil, fmt.Errorf("yaml line %d: expected \"key: value\", got %q", l.num, l.text)
		}
		if _, dup := m[key]; dup {
			return nil, fmt.Errorf("yaml line %d: duplicate key %q", l.num, key)
		}
		p.pos++
		if rest != "" {
			v, err := parseScalar(rest)
			if err != nil {
				return nil, fmt.Errorf("yaml line %d: %w", l.num, err)
			}
			m[key] = v
			continue
		}
		// "key:" with the value as a nested block (or empty).
		if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
			v, err := p.parseBlock(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			m[key] = v
		} else {
			m[key] = nil
		}
	}
	return m, nil
}

func (p *yamlParser) parseSequence(indent int) (any, error) {
	seq := []any{}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent != indent || (l.text != "-" && !strings.HasPrefix(l.text, "- ")) {
			if l.indent >= indent && l.text != "" {
				if l.indent == indent {
					break // a mapping key at this indent ends the sequence for the caller
				}
				return nil, fmt.Errorf("yaml line %d: unexpected indentation in sequence", l.num)
			}
			break
		}
		if l.text == "-" {
			// The item is the following more-indented block.
			p.pos++
			if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
				v, err := p.parseBlock(p.lines[p.pos].indent)
				if err != nil {
					return nil, err
				}
				seq = append(seq, v)
			} else {
				seq = append(seq, nil)
			}
			continue
		}
		// "- content": rewrite the dash line as its content at the
		// item's indentation and parse a block there, so "- x: 0"
		// followed by deeper "y: 1" lines forms one mapping item.
		p.lines[p.pos] = yamlLine{indent: indent + 2, text: l.text[2:], num: l.num}
		v, err := p.parseBlock(indent + 2)
		if err != nil {
			return nil, err
		}
		seq = append(seq, v)
	}
	return seq, nil
}

// splitKey splits "key: value" / "key:"; keys may be bare words only.
func splitKey(s string) (key, rest string, ok bool) {
	i := strings.Index(s, ":")
	if i <= 0 {
		return "", "", false
	}
	key = s[:i]
	if strings.ContainsAny(key, "\"' {}[],") {
		return "", "", false
	}
	rest = strings.TrimLeft(s[i+1:], " ")
	if rest != "" && !strings.HasPrefix(s[i+1:], " ") {
		// "a:b" is a scalar, not a mapping.
		return "", "", false
	}
	return key, rest, true
}

func parseScalar(s string) (any, error) {
	switch s {
	case "null", "~", "":
		return nil, nil
	case "true":
		return true, nil
	case "false":
		return false, nil
	}
	if strings.HasPrefix(s, `"`) {
		u, err := strconv.Unquote(s)
		if err != nil {
			return nil, fmt.Errorf("bad quoted string %s", s)
		}
		return u, nil
	}
	if strings.HasPrefix(s, "'") {
		if len(s) < 2 || !strings.HasSuffix(s, "'") {
			return nil, fmt.Errorf("bad quoted string %s", s)
		}
		return strings.ReplaceAll(s[1:len(s)-1], "''", "'"), nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f, nil
	}
	return s, nil
}
