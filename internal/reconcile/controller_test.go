package reconcile

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/serve"
)

// flakyRegistry wraps a serve.Server and fails ApplySpec a configured
// number of times per network — the transient-failure injection hook
// of the convergence property test.
type flakyRegistry struct {
	inner *serve.Server

	mu       sync.Mutex
	failures map[string]int // remaining injected failures per name
	applies  map[string]int // total ApplySpec attempts per name
}

func newFlakyRegistry(inner *serve.Server) *flakyRegistry {
	return &flakyRegistry{inner: inner, failures: map[string]int{}, applies: map[string]int{}}
}

func (f *flakyRegistry) inject(name string, n int) {
	f.mu.Lock()
	f.failures[name] += n
	f.mu.Unlock()
}

func (f *flakyRegistry) clear(name string) {
	f.mu.Lock()
	delete(f.failures, name)
	f.mu.Unlock()
}

func (f *flakyRegistry) attempts(name string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.applies[name]
}

func (f *flakyRegistry) ApplySpec(spec *serve.NetworkSpec) (serve.SpecResult, error) {
	f.mu.Lock()
	f.applies[spec.Name]++
	if f.failures[spec.Name] > 0 {
		f.failures[spec.Name]--
		f.mu.Unlock()
		return serve.SpecResult{}, errors.New("injected transient failure")
	}
	f.mu.Unlock()
	return f.inner.ApplySpec(spec)
}

func (f *flakyRegistry) DeleteNetwork(name string) bool { return f.inner.DeleteNetwork(name) }

func (f *flakyRegistry) SpecHashOf(name string) (string, bool) { return f.inner.SpecHashOf(name) }

// fastOptions returns controller options tuned for tests: tight
// pacing, plenty of retries.
func fastOptions(dir string) Options {
	return Options{
		Dir:         dir,
		Interval:    3 * time.Millisecond,
		Workers:     3,
		MaxRetries:  1000,
		BackoffBase: time.Millisecond,
		BackoffMax:  4 * time.Millisecond,
	}
}

// startController runs c until the test ends, waiting for a clean
// drain on cleanup.
func startController(t *testing.T, c *Controller) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Error("controller did not drain after cancel")
		}
	})
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// writeSpecFile lands content at dir/base atomically (write to a
// dotfile the lister skips, then rename), the way real producers
// should.
func writeSpecFile(t *testing.T, dir, base, content string) {
	t.Helper()
	tmp := filepath.Join(dir, "."+base+".tmp")
	if err := os.WriteFile(tmp, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, base)); err != nil {
		t.Fatal(err)
	}
}

func specJSON(t *testing.T, sp *serve.NetworkSpec) string {
	t.Helper()
	b, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// specYAML renders a spec in the YAML subset, exercising the second
// parser front door with the same content the JSON path carries.
func specYAML(sp *serve.NetworkSpec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "name: %s\n", sp.Name)
	fmt.Fprintf(&b, "noise: %g\n", sp.Noise)
	fmt.Fprintf(&b, "beta: %g\n", sp.Beta)
	if sp.Resolver != "" {
		fmt.Fprintf(&b, "resolver: %s\n", sp.Resolver)
	}
	b.WriteString("stations:\n")
	for _, st := range sp.Stations {
		fmt.Fprintf(&b, "  - x: %g\n    y: %g\n", st.X, st.Y)
		if st.Power != 0 {
			fmt.Fprintf(&b, "    power: %g\n", st.Power)
		}
	}
	return b.String()
}

func hashOf(t *testing.T, sp *serve.NetworkSpec) string {
	t.Helper()
	canonical, err := cloneSpec(sp).CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	return serve.SpecHash(canonical)
}

func randomSpec(rng *rand.Rand, name string) *serve.NetworkSpec {
	stations := make([]serve.SpecStation, 1+rng.Intn(6))
	for i := range stations {
		stations[i] = serve.SpecStation{
			X: float64(rng.Intn(200)) / 10,
			Y: float64(rng.Intn(200)) / 10,
		}
		if rng.Intn(3) == 0 {
			stations[i].Power = 1 + float64(rng.Intn(4))
		}
	}
	return &serve.NetworkSpec{
		Name:     name,
		Stations: stations,
		Noise:    0.1,
		Beta:     1 + float64(rng.Intn(3)),
		Resolver: "exact",
	}
}

func TestControllerCreatesAndDeletes(t *testing.T) {
	dir := t.TempDir()
	srv := serve.NewServer(serve.Options{})
	c := New(srv, fastOptions(dir))
	startController(t, c)

	sp := &serve.NetworkSpec{
		Name:     "basic",
		Stations: []serve.SpecStation{{X: 0, Y: 0}, {X: 3, Y: 4, Power: 2}},
		Noise:    0.2, Beta: 1.5, Resolver: "exact",
	}
	writeSpecFile(t, dir, "basic.json", specJSON(t, sp))
	want := hashOf(t, sp)
	waitFor(t, "creation", func() bool {
		h, ok := srv.SpecHashOf("basic")
		return ok && h == want
	})
	if got := c.Stats().Outcomes["created"]; got != 1 {
		t.Fatalf("created outcomes = %d, want 1", got)
	}

	// An edit that only moves a station should converge via the PATCH
	// path, not a rebuild.
	sp.Stations = append(sp.Stations, serve.SpecStation{X: 7, Y: 1})
	writeSpecFile(t, dir, "basic.json", specJSON(t, sp))
	want = hashOf(t, sp)
	waitFor(t, "patch convergence", func() bool {
		h, ok := srv.SpecHashOf("basic")
		return ok && h == want
	})
	if got := c.Stats().Outcomes["patched"]; got != 1 {
		t.Fatalf("patched outcomes = %d, want 1", got)
	}

	if err := os.Remove(filepath.Join(dir, "basic.json")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "deletion", func() bool {
		_, ok := srv.SpecHashOf("basic")
		return !ok
	})
	if got := c.Stats().Outcomes["deleted"]; got != 1 {
		t.Fatalf("deleted outcomes = %d, want 1", got)
	}
}

// TestControllerLeavesImperativeNetworksAlone: networks created
// through the API (never by the controller) are not its to delete.
func TestControllerLeavesImperativeNetworksAlone(t *testing.T) {
	dir := t.TempDir()
	srv := serve.NewServer(serve.Options{})
	manual := &serve.NetworkSpec{
		Name: "manual", Stations: []serve.SpecStation{{X: 1, Y: 1}}, Noise: 0.1, Beta: 1,
	}
	if _, err := srv.ApplySpec(manual); err != nil {
		t.Fatal(err)
	}
	c := New(srv, fastOptions(dir))
	startController(t, c)
	waitFor(t, "a few sync passes", func() bool { return c.Stats().Outcomes["deleted"] == 0 && syncedAtLeast(c, 3) })
	if _, ok := srv.SpecHashOf("manual"); !ok {
		t.Fatal("controller deleted an imperatively-created network")
	}
}

func syncedAtLeast(c *Controller, n uint64) bool { return c.syncs.Value() >= n }

// TestParseErrorKeepsLastGood: a spec file that stops parsing keeps
// its network alive on the last good spec; only removing the file
// deletes it.
func TestParseErrorKeepsLastGood(t *testing.T) {
	dir := t.TempDir()
	srv := serve.NewServer(serve.Options{})
	c := New(srv, fastOptions(dir))
	startController(t, c)

	sp := &serve.NetworkSpec{
		Name: "keep", Stations: []serve.SpecStation{{X: 0, Y: 0}}, Noise: 0.1, Beta: 1,
	}
	writeSpecFile(t, dir, "keep.yaml", specYAML(sp))
	want := hashOf(t, sp)
	waitFor(t, "creation", func() bool {
		h, ok := srv.SpecHashOf("keep")
		return ok && h == want
	})

	base := c.syncs.Value()
	writeSpecFile(t, dir, "keep.yaml", "name: keep\n\tbroken")
	waitFor(t, "syncs over the broken file", func() bool { return syncedAtLeast(c, base+3) })
	if h, ok := srv.SpecHashOf("keep"); !ok || h != want {
		t.Fatalf("network drifted on a parse error: ok=%v hash=%q", ok, h)
	}
	if c.specErrs.Value() == 0 {
		t.Fatal("spec error was not counted")
	}
	if st := c.Stats(); st.Desired != 1 {
		t.Fatalf("Desired = %d with a broken-but-remembered spec, want 1", st.Desired)
	}

	if err := os.Remove(filepath.Join(dir, "keep.yaml")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "deletion after file removal", func() bool {
		_, ok := srv.SpecHashOf("keep")
		return !ok
	})
}

// TestDuplicateNameFirstPathWins: two files declaring the same
// network name resolve to the lexicographically-first path.
func TestDuplicateNameFirstPathWins(t *testing.T) {
	dir := t.TempDir()
	srv := serve.NewServer(serve.Options{})
	c := New(srv, fastOptions(dir))
	startController(t, c)

	first := &serve.NetworkSpec{
		Name: "dup", Stations: []serve.SpecStation{{X: 1, Y: 0}}, Noise: 0.1, Beta: 1,
	}
	second := &serve.NetworkSpec{
		Name: "dup", Stations: []serve.SpecStation{{X: 9, Y: 9}}, Noise: 0.1, Beta: 2,
	}
	writeSpecFile(t, dir, "a.json", specJSON(t, first))
	writeSpecFile(t, dir, "b.json", specJSON(t, second))
	wantFirst := hashOf(t, first)
	waitFor(t, "first path winning", func() bool {
		h, ok := srv.SpecHashOf("dup")
		return ok && h == wantFirst
	})
	if c.specErrs.Value() == 0 {
		t.Fatal("duplicate name was not counted as a spec error")
	}

	// Removing the winner promotes the survivor.
	if err := os.Remove(filepath.Join(dir, "a.json")); err != nil {
		t.Fatal(err)
	}
	wantSecond := hashOf(t, second)
	waitFor(t, "survivor promotion", func() bool {
		h, ok := srv.SpecHashOf("dup")
		return ok && h == wantSecond
	})
}

// TestTerminalFailureParksUntilSpecChanges: MaxRetries consecutive
// failures park the name (exactly MaxRetries attempts, no more), and
// only a content change un-parks it.
func TestTerminalFailureParksUntilSpecChanges(t *testing.T) {
	dir := t.TempDir()
	srv := serve.NewServer(serve.Options{})
	flaky := newFlakyRegistry(srv)
	flaky.inject("stuck", 1<<20)
	opt := fastOptions(dir)
	opt.Workers = 1
	opt.MaxRetries = 3
	c := New(flaky, opt)
	startController(t, c)

	sp := &serve.NetworkSpec{
		Name: "stuck", Stations: []serve.SpecStation{{X: 0, Y: 0}}, Noise: 0.1, Beta: 1,
	}
	writeSpecFile(t, dir, "stuck.json", specJSON(t, sp))
	waitFor(t, "terminal parking", func() bool { return c.Stats().Terminal == 1 })

	st := c.Stats()
	if st.Outcomes["terminal"] != 1 || st.Outcomes["error"] != 2 {
		t.Fatalf("outcomes after parking: terminal=%d error=%d, want 1/2",
			st.Outcomes["terminal"], st.Outcomes["error"])
	}
	if got := c.retries.Value(); got != 2 {
		t.Fatalf("retries = %d, want 2", got)
	}

	// Parked means parked: syncs keep running but no further attempts,
	// even though the registry would now succeed.
	flaky.clear("stuck")
	base := c.syncs.Value()
	waitFor(t, "post-park syncs", func() bool { return syncedAtLeast(c, base+5) })
	if got := flaky.attempts("stuck"); got != 3 {
		t.Fatalf("ApplySpec attempts while parked = %d, want 3", got)
	}
	if _, ok := srv.SpecHashOf("stuck"); ok {
		t.Fatal("parked network appeared in the registry")
	}

	// Editing the spec content un-parks and converges.
	sp.Stations = append(sp.Stations, serve.SpecStation{X: 2, Y: 2})
	writeSpecFile(t, dir, "stuck.json", specJSON(t, sp))
	want := hashOf(t, sp)
	waitFor(t, "un-park convergence", func() bool {
		h, ok := srv.SpecHashOf("stuck")
		return ok && h == want
	})
	if st := c.Stats(); st.Terminal != 0 {
		t.Fatalf("Terminal = %d after spec change, want 0", st.Terminal)
	}
}

// TestDriftGaugeLifecycle: the per-network drift gauge reads 0 once
// converged and disappears from the scrape when the network goes.
func TestDriftGaugeLifecycle(t *testing.T) {
	dir := t.TempDir()
	srv := serve.NewServer(serve.Options{})
	opt := fastOptions(dir)
	opt.Metrics = metrics.NewRegistry()
	c := New(srv, opt)
	startController(t, c)

	sp := &serve.NetworkSpec{
		Name: "gauged", Stations: []serve.SpecStation{{X: 0, Y: 0}}, Noise: 0.1, Beta: 1,
	}
	writeSpecFile(t, dir, "gauged.json", specJSON(t, sp))
	want := hashOf(t, sp)
	waitFor(t, "creation", func() bool {
		h, ok := srv.SpecHashOf("gauged")
		return ok && h == want
	})
	scrape := func() string {
		var b bytes.Buffer
		if err := opt.Metrics.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	waitFor(t, "drift gauge at zero", func() bool {
		return strings.Contains(scrape(), `sinr_network_drift{network="gauged"} 0`)
	})

	if err := os.Remove(filepath.Join(dir, "gauged.json")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "drift gauge removal", func() bool {
		return !strings.Contains(scrape(), `sinr_network_drift{network="gauged"}`)
	})
}

// TestConvergenceProperty is the pinned property: any interleaving of
// spec writes, edits and removals — with transient registry failures
// injected mid-reconcile — ends with the registry in exactly the
// state a from-scratch build of the final specs produces: same
// networks, byte-identical spec readbacks, identical query answers.
func TestConvergenceProperty(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			runConvergenceTrial(t, seed)
		})
	}
}

func runConvergenceTrial(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	dir := t.TempDir()
	srv := serve.NewServer(serve.Options{})
	flaky := newFlakyRegistry(srv)
	c := New(flaky, fastOptions(dir))
	startController(t, c)

	names := []string{"alpha", "bravo", "charlie", "delta"}
	desired := map[string]*serve.NetworkSpec{}
	for op := 0; op < 40; op++ {
		name := names[rng.Intn(len(names))]
		if rng.Intn(3) == 0 {
			flaky.inject(name, 1+rng.Intn(3))
		}
		if desired[name] != nil && rng.Intn(4) == 0 {
			delete(desired, name)
			for _, ext := range []string{".json", ".yaml"} {
				if err := os.Remove(filepath.Join(dir, name+ext)); err != nil && !os.IsNotExist(err) {
					t.Fatal(err)
				}
			}
		} else {
			sp := randomSpec(rng, name)
			desired[name] = sp
			// Alternate formats; drop the other-format file first so
			// the name never appears twice.
			if rng.Intn(2) == 0 {
				if err := os.Remove(filepath.Join(dir, name+".yaml")); err != nil && !os.IsNotExist(err) {
					t.Fatal(err)
				}
				writeSpecFile(t, dir, name+".json", specJSON(t, sp))
			} else {
				if err := os.Remove(filepath.Join(dir, name+".json")); err != nil && !os.IsNotExist(err) {
					t.Fatal(err)
				}
				writeSpecFile(t, dir, name+".yaml", specYAML(sp))
			}
		}
		if rng.Intn(2) == 0 {
			time.Sleep(time.Duration(rng.Intn(6)) * time.Millisecond)
		}
	}

	// Converge: every desired network live at its spec hash, every
	// removed one gone.
	wantHash := map[string]string{}
	for name, sp := range desired {
		wantHash[name] = hashOf(t, sp)
	}
	waitFor(t, "full convergence", func() bool {
		for _, name := range names {
			h, ok := srv.SpecHashOf(name)
			want, isDesired := wantHash[name]
			if isDesired != ok || (ok && h != want) {
				return false
			}
		}
		return true
	})

	// Reference: a fresh server built from scratch with the final
	// specs only.
	fresh := serve.NewServer(serve.Options{})
	for _, sp := range desired {
		if _, err := fresh.ApplySpec(cloneSpec(sp)); err != nil {
			t.Fatalf("fresh ApplySpec: %v", err)
		}
	}
	for name := range desired {
		got, _, ok := srv.NetworkSpecJSON(name)
		if !ok {
			t.Fatalf("converged server lost %q", name)
		}
		want, _, ok := fresh.NetworkSpecJSON(name)
		if !ok {
			t.Fatalf("fresh server missing %q", name)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("spec readback for %q differs from from-scratch build:\n got %s\nwant %s", name, got, want)
		}
	}

	// And the two servers answer queries identically.
	tsConverged := httptest.NewServer(srv)
	defer tsConverged.Close()
	tsFresh := httptest.NewServer(fresh)
	defer tsFresh.Close()
	var points []serve.PointJSON
	for x := 0.0; x <= 20; x += 4 {
		for y := 0.0; y <= 20; y += 4 {
			points = append(points, serve.PointJSON{X: x, Y: y})
		}
	}
	for name := range desired {
		a := locateResults(t, tsConverged.URL, name, points)
		b := locateResults(t, tsFresh.URL, name, points)
		if !sameResults(a, b) {
			t.Fatalf("locate answers for %q diverge:\n converged %v\n fresh %v", name, a, b)
		}
	}
}

func sameResults(a, b []serve.LocateResult) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func locateResults(t *testing.T, base, network string, points []serve.PointJSON) []serve.LocateResult {
	t.Helper()
	body, err := json.Marshal(serve.LocateRequest{Network: network, Resolver: "exact", Points: points})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/locate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("locate %q: status %d", network, resp.StatusCode)
	}
	var lr serve.LocateResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		t.Fatal(err)
	}
	return lr.Results
}
