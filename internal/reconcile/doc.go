// Package reconcile converges a serve.Server registry toward a
// directory of declarative network specs.
//
// The controller follows the informer → rate-limited-workqueue →
// keyed-worker shape of Kubernetes-style controllers: a polling
// lister parses every spec file (JSON or a YAML subset, one canonical
// serve.NetworkSpec per file) and computes drift by content hash
// against the live registry; drifted or removed names are enqueued;
// workers — at most one per name at a time, enforced by per-name
// keyed locks — apply the cheapest convergent operation through
// serve's ApplySpec (create, dynamic.Delta patch, or rebuild) or
// DeleteNetwork. Failures retry with per-item exponential backoff
// until MaxRetries, after which the name parks in a terminal-failure
// state until its spec content changes.
//
// Reconcile-loop invariants (see CONTRIBUTING.md):
//
//   - Reconciling is idempotent: applying the same spec twice leaves
//     the second application unchanged, so a crash between enqueue and
//     apply is always safe to re-drive.
//   - Diff decisions never consult the wall clock: drift is a pure
//     function of spec content hash vs registry state. Time appears
//     only in pacing (poll interval, backoff, queue latency metrics),
//     each use waived explicitly for the sinrlint determinism pass,
//     which covers this package.
//   - Spec parse errors never cascade into deletes: a previously-good
//     file that stops parsing keeps its last good spec in the desired
//     set (and is counted in sinr_reconcile_spec_errors_total) rather
//     than making its network look removed.
package reconcile
