package reconcile

import "sync"

// keyLock is a set of named mutexes: lock(name) excludes every other
// lock(name) while letting distinct names proceed concurrently — the
// guarantee that two workers never reconcile the same network at the
// same time, without serializing the whole fleet behind one lock.
// Mutexes are created on first use and kept for the controller's
// lifetime; the population is bounded by the number of network names
// ever seen in the spec directory, so there is nothing to reap.
type keyLock struct {
	mu    sync.Mutex
	locks map[string]*sync.Mutex
}

func newKeyLock() *keyLock {
	return &keyLock{locks: make(map[string]*sync.Mutex)}
}

func (k *keyLock) lock(key string) {
	k.mu.Lock()
	m, ok := k.locks[key]
	if !ok {
		m = &sync.Mutex{}
		k.locks[key] = m
	}
	k.mu.Unlock()
	m.Lock()
}

func (k *keyLock) unlock(key string) {
	k.mu.Lock()
	m := k.locks[key]
	k.mu.Unlock()
	m.Unlock()
}
