package reconcile

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/serve"
)

// ParseSpec decodes one spec document — JSON or the YAML subset,
// sniffed by the first non-space byte — into a NetworkSpec. Decoding
// is strict: unknown fields are errors, so a typoed key fails loudly
// instead of silently describing a different network.
func ParseSpec(data []byte) (*serve.NetworkSpec, error) {
	trimmed := bytes.TrimSpace(data)
	if len(trimmed) == 0 {
		return nil, fmt.Errorf("empty spec")
	}
	if trimmed[0] != '{' {
		tree, err := parseYAML(data)
		if err != nil {
			return nil, err
		}
		// Round-trip the generic tree through JSON so both formats share
		// one strict decode path.
		trimmed, err = json.Marshal(tree)
		if err != nil {
			return nil, err
		}
	}
	dec := json.NewDecoder(bytes.NewReader(trimmed))
	dec.DisallowUnknownFields()
	var spec serve.NetworkSpec
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("bad spec: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("bad spec: trailing content after document")
	}
	return &spec, nil
}

// specFile is one successfully parsed spec file: the normalized spec
// and the content hash its registry generation will carry.
type specFile struct {
	path string
	spec *serve.NetworkSpec
	hash string
}

// specError is one file the lister could not turn into a spec.
type specError struct {
	path string
	err  error
}

// isSpecPath reports whether a directory entry looks like a spec file:
// a regular .json/.yaml/.yml file that is not hidden and not an
// editor/atomic-write artifact (*.tmp and dotfiles are skipped so
// write-then-rename producers never expose half files).
func isSpecPath(name string) bool {
	if strings.HasPrefix(name, ".") {
		return false
	}
	switch strings.ToLower(filepath.Ext(name)) {
	case ".json", ".yaml", ".yml":
		return true
	}
	return false
}

// loadSpecDir lists dir and parses every spec file, in lexical path
// order. Files that fail to read, parse, or normalize are reported as
// specErrors, never dropped silently. A missing or unreadable
// directory is one specError for the directory itself — the caller
// treats it like "no files listed", keeping last-good state alive.
func loadSpecDir(dir string) ([]specFile, []specError) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, []specError{{path: dir, err: err}}
	}
	var files []specFile
	var errs []specError
	for _, e := range entries {
		if e.IsDir() || !isSpecPath(e.Name()) {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			errs = append(errs, specError{path: path, err: err})
			continue
		}
		spec, err := ParseSpec(data)
		if err != nil {
			errs = append(errs, specError{path: path, err: err})
			continue
		}
		canonical, err := spec.CanonicalJSON()
		if err != nil {
			errs = append(errs, specError{path: path, err: err})
			continue
		}
		files = append(files, specFile{path: path, spec: spec, hash: serve.SpecHash(canonical)})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].path < files[j].path })
	return files, errs
}

// cloneSpec deep-copies a spec so the controller's desired state and
// the registry's stored snapshot never alias each other's slices.
func cloneSpec(sp *serve.NetworkSpec) *serve.NetworkSpec {
	out := *sp
	out.Stations = append([]serve.SpecStation(nil), sp.Stations...)
	if sp.Powers != nil {
		out.Powers = append([]float64(nil), sp.Powers...)
	}
	if sp.Schedule != nil {
		pol := *sp.Schedule
		out.Schedule = &pol
	}
	return &out
}
