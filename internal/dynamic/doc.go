// Package dynamic is the dynamic-network engine: it maintains a
// station set under a log of single- or multi-station mutations
// (arrivals, departures, power updates) and materializes each state as
// an immutable epoch Snapshot, without paying full-rebuild cost per
// mutation on the hot path.
//
// The paper's machinery (and the rest of this repository before this
// package) assumes a static station set: every change used to mean a
// fresh core.NewNetwork plus a fresh locator and spatial index. Under
// churn workloads — stations joining, leaving and re-tuning power
// while queries are in flight — that is O(full rebuild) per event.
// Here a mutation instead flows through Network.Apply, which patches
// the derived structures copy-on-write:
//
//   - the canonical station/power slices are copied (O(n) memcpy, the
//     floor any index-compacting representation pays);
//   - each station owns a stable slot whose location, power and
//     conservative zone cover box never change, so an arrival or
//     departure touches exactly the grid cells of its own box
//     (shardindex.DynIndex, a persistent copy-on-write grid);
//   - the kd-tree is not rebuilt: the base tree of the last full build
//     answers through an index-remapping filter (kdtree.NearestMapped)
//     and stations admitted since are scanned as a small overlay.
//
// Once cumulative churn exceeds a threshold fraction of the station
// count at the last full build (WithRebuildFraction), the next Apply
// rebuilds everything from scratch and resets the accounting — the
// classic static-dynamic amortization, keeping the overlay small and
// query cost bounded. ApplyStats on every snapshot says which path ran.
//
// Snapshots answer queries exactly (Snapshot.Locate / HeardBy): one
// grid lookup certifies most of the plane H-, the Observation 2.2
// nearest-station reduction plus a single SINR evaluation settles
// covered points of uniform beta > 1 networks, and other networks fall
// back to the exact scan. Answers equal a from-scratch build on the
// same station set point-for-point — the property tests pin this
// against core.BuildLocator with and without its spatial index.
//
// The epoch-pinning query surface (Resolver interface, batch/stream)
// lives in internal/resolve (DynamicResolver); the serving layer's
// PATCH /v1/networks/{name} mutation API in internal/serve.
package dynamic
