package dynamic

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/kdtree"
	"repro/internal/shardindex"
)

// DefaultRebuildFraction is the churn threshold of the amortized
// rebuild: once the mutations applied since the last full build exceed
// this fraction of the station count at that build, the next Apply
// rebuilds every derived structure from scratch instead of patching.
// Below it, single-station deltas stay on the incremental path, whose
// cost is O(n) copy-on-write bookkeeping instead of the O(n log n)
// kd-tree sort plus grid construction of a full build.
const DefaultRebuildFraction = 0.25

// Station describes one station of a delta: its location and
// transmission power. A zero Power means the uniform default 1.
type Station struct {
	Pos   geom.Point
	Power float64
}

// PowerUpdate changes the transmission power of one existing station.
type PowerUpdate struct {
	Station int // index into the epoch the delta is applied to
	Power   float64
}

// Delta is one batch of mutations against a specific epoch. It is
// applied in three phases — SetPower first, then Remove, then Add —
// and both SetPower and Remove address stations by their index in the
// epoch the delta is applied to (pre-delta indices throughout, so the
// phases cannot shift each other's targets). Removals compact the
// surviving stations in order; additions append in order. Duplicate
// SetPower entries for one station apply in order (last wins).
type Delta struct {
	SetPower []PowerUpdate
	Remove   []int
	Add      []Station
}

// ApplyPath says which maintenance path an Apply took.
type ApplyPath int

// The two paths: incremental (copy-on-write patching of the previous
// epoch's structures) and rebuild (everything derived from scratch —
// the amortized path above the churn threshold, and the path of the
// initial build).
const (
	PathIncremental ApplyPath = iota
	PathRebuild
)

// String implements fmt.Stringer ("incremental", "rebuild") — the
// vocabulary of the serve layer's apply_path wire field.
func (p ApplyPath) String() string {
	switch p {
	case PathIncremental:
		return "incremental"
	case PathRebuild:
		return "rebuild"
	default:
		return fmt.Sprintf("ApplyPath(%d)", int(p))
	}
}

// ApplyStats describes how one epoch came to be.
type ApplyStats struct {
	Epoch    uint64
	Path     ApplyPath
	Stations int // station count of the epoch

	Added     int // stations added by the delta
	Removed   int // stations removed by the delta
	Repowered int // power updates applied by the delta

	// GridCellsTouched is the number of spatial-index cells the
	// incremental path privatized (0 when the grid is disabled or the
	// path was a rebuild).
	GridCellsTouched int
	// ChurnFraction is the cumulative mutation count since the last
	// rebuild — including this delta — over the station count at that
	// rebuild; crossing the rebuild threshold flips Path to rebuild.
	ChurnFraction float64
}

// slots is the append-only stable-slot table behind one rebuild
// generation: a station admitted to the network gets a slot id whose
// location, power and cover box never change (a power update admits a
// fresh slot at the same network position). Slots are appended under
// the engine mutex; snapshots capture bounded views, so concurrent
// readers never observe an append.
type slots struct {
	pts    []geom.Point
	powers []float64
	boxes  []shardindex.Box
}

// add appends a slot and returns its id.
func (t *slots) add(p geom.Point, power float64, noise, beta, alpha float64) int32 {
	t.pts = append(t.pts, p)
	t.powers = append(t.powers, power)
	t.boxes = append(t.boxes, coverBox(p, power, noise, beta, alpha))
	return int32(len(t.pts) - 1)
}

// coverBox bounds station's reception zone by the necessary condition
// E >= beta*N: the zone lies in the square of half-side
// (psi/(beta*N))^(1/alpha) around the station, whatever the other
// stations do — which is what makes the box independent of churn
// elsewhere and lets arrivals and departures touch only their own
// boxes. A noiseless network has unbounded interference-free range;
// its non-finite box disables the grid (BuildDyn returns nil) and the
// snapshot answers without the fast H- exit.
func coverBox(p geom.Point, power, noise, beta, alpha float64) shardindex.Box {
	if noise <= 0 {
		inf := math.Inf(1)
		return shardindex.Box{MinX: -inf, MinY: -inf, MaxX: inf, MaxY: inf}
	}
	r := math.Pow(power/(beta*noise), 1/alpha)
	return shardindex.Box{MinX: p.X - r, MinY: p.Y - r, MaxX: p.X + r, MaxY: p.Y + r}
}

// Snapshot is one immutable epoch of a dynamic network: the station
// set after some prefix of the mutation log, with every structure a
// query needs. Queries against a Snapshot are unaffected by later
// Apply calls — in-flight batches and streams pin the epoch they
// started on and finish on it. Safe for concurrent use.
type Snapshot struct {
	epoch uint64
	net   *core.Network
	stats ApplyStats

	// Bounded views of the slot table (immutable).
	pts    []geom.Point
	powers []float64
	boxes  []shardindex.Box

	curToID []int32 // network index -> slot id, canonical order
	idToCur []int32 // slot id -> network index, -1 = departed

	// Base kd-tree overlay: base indexes the stations of the last
	// rebuild (in that epoch's order); remap translates its indices to
	// this epoch's, filtering departed stations; extras lists the slot
	// ids admitted since, scanned linearly.
	base    *kdtree.Tree
	baseIDs []int32
	remap   func(int) (int, bool)
	extras  []int32

	grid *shardindex.DynIndex // nil = disabled (unbounded cover boxes)
}

// Epoch returns the snapshot's epoch number (1 for the initial build,
// +1 per Apply).
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// Network returns the epoch's station set as an immutable core
// network — the exact object a from-scratch build on the same
// stations would produce.
func (s *Snapshot) Network() *core.Network { return s.net }

// NumStations returns the epoch's station count.
func (s *Snapshot) NumStations() int { return len(s.curToID) }

// ApplyStats reports how this epoch was produced.
func (s *Snapshot) ApplyStats() ApplyStats { return s.stats }

// GridEnabled reports whether the epoch carries the incremental
// spatial index (false for noiseless networks, whose cover boxes are
// unbounded).
func (s *Snapshot) GridEnabled() bool { return s.grid != nil }

// Locate answers "which station is heard at p?" for this epoch,
// exactly. The fast path is one grid-cell lookup over the per-station
// cover boxes — a point outside every box is certified H- without
// touching a station — then, for uniform networks with beta > 1, the
// nearest-station reduction of Observation 2.2: the base-tree overlay
// finds the nearest station and one SINR evaluation settles it. Other
// networks (non-uniform power, beta <= 1) fall back to the exact scan.
// Answers are identical to a from-scratch Network.HeardBy — and, for
// locator-eligible networks, to a from-scratch Theorem 3 locator's
// LocateExact. The hot path performs no allocations.
//
//sinr:hotpath
func (s *Snapshot) Locate(p geom.Point) core.Location {
	if s.grid != nil && !s.grid.Covers(p.X, p.Y) {
		return core.Location{Kind: core.NoReception}
	}
	if s.net.IsUniform() && s.net.Beta() > 1 {
		// At most one station can be heard, and only the nearest
		// (ties are never heard: an equidistant interferer caps the
		// SINR at 1 < beta).
		idx, ok := s.nearest(p)
		if ok && s.net.Heard(idx, p) {
			return core.Location{Kind: core.Reception, Station: idx}
		}
		return core.Location{Kind: core.NoReception}
	}
	if i, ok := s.net.HeardBy(p); ok {
		return core.Location{Kind: core.Reception, Station: i}
	}
	return core.Location{Kind: core.NoReception}
}

// HeardBy reports the station heard at p, comma-ok style, agreeing
// with Network.HeardBy on every point (so a Snapshot satisfies the
// same reception-model shape as Network and Locator).
func (s *Snapshot) HeardBy(p geom.Point) (int, bool) {
	loc := s.Locate(p)
	if loc.Kind != core.Reception {
		return 0, false
	}
	return loc.Station, true
}

// nearest returns the current index of the station closest to p,
// minimizing (distance, index) over the base-tree overlay (base tree
// with departed stations filtered out, plus a linear scan of the
// stations admitted since the last rebuild). The combined order is
// exactly the order a from-scratch kd-tree over the current stations
// would use, so tie-breaks agree point-for-point.
//
//sinr:hotpath
func (s *Snapshot) nearest(p geom.Point) (int, bool) {
	best := -1
	bestD2 := math.Inf(1)
	if s.base != nil {
		if m, d2, ok := s.base.NearestMapped(p, s.remap); ok {
			best, bestD2 = m, d2
		}
	}
	for _, id := range s.extras {
		cur := int(s.idToCur[id])
		d2 := geom.Dist2(s.pts[id], p)
		if d2 < bestD2 || (d2 == bestD2 && (best < 0 || cur < best)) {
			best, bestD2 = cur, d2
		}
	}
	return best, best >= 0
}

// Option customizes a dynamic network engine.
type Option func(*Network) error

// WithRebuildFraction sets the churn threshold of the amortized
// rebuild (default DefaultRebuildFraction). Zero rebuilds on every
// Apply (the from-scratch baseline); math.Inf(1) never amortizes
// (every Apply stays incremental) — both are useful for benchmarks
// and the equivalence tests.
func WithRebuildFraction(f float64) Option {
	return func(d *Network) error {
		if f < 0 || math.IsNaN(f) {
			return fmt.Errorf("dynamic: rebuild fraction must be non-negative, got %g", f)
		}
		d.rebuildFraction = f
		return nil
	}
}

// Network is a versioned dynamic station set: Apply takes a Delta and
// produces a fresh immutable epoch Snapshot, patching the spatial
// structures copy-on-write on the hot path and rebuilding them
// amortized once churn since the last rebuild exceeds the threshold.
// Apply calls are serialized; Snapshot and the snapshots themselves
// are safe for concurrent use, and queries running against an older
// epoch are never disturbed by later mutations.
type Network struct {
	mu  sync.Mutex // serializes Apply and the slot-table appends
	cur atomic.Pointer[Snapshot]

	rebuildFraction float64
	tab             *slots // current rebuild generation's slot table
	baseN           int    // station count at the last rebuild
	opsSinceRebuild int    // mutations applied since
}

// New wraps net in a dynamic engine at epoch 1 (a full build: kd-tree,
// cover boxes and — for noisy networks — the incremental grid).
func New(net *core.Network, opts ...Option) (*Network, error) {
	d := &Network{rebuildFraction: DefaultRebuildFraction}
	for _, opt := range opts {
		if err := opt(d); err != nil {
			return nil, err
		}
	}
	d.rebuild(net, 1, ApplyStats{Epoch: 1, Path: PathRebuild, Stations: net.NumStations()})
	return d, nil
}

// Snapshot returns the current epoch.
func (d *Network) Snapshot() *Snapshot { return d.cur.Load() }

// Epoch returns the current epoch number.
func (d *Network) Epoch() uint64 { return d.cur.Load().epoch }

// rebuild installs a from-scratch snapshot for net (the amortized path
// and the initial build), resetting the churn accounting. Callers hold
// d.mu (or are the constructor).
func (d *Network) rebuild(net *core.Network, epoch uint64, stats ApplyStats) {
	n := net.NumStations()
	tab := &slots{
		pts:    make([]geom.Point, 0, 2*n),
		powers: make([]float64, 0, 2*n),
		boxes:  make([]shardindex.Box, 0, 2*n),
	}
	curToID := make([]int32, n)
	idToCur := make([]int32, n)
	for i := 0; i < n; i++ {
		id := tab.add(net.Station(i), net.Power(i), net.Noise(), net.Beta(), net.Alpha())
		curToID[i] = id
		idToCur[id] = int32(i)
	}
	snap := &Snapshot{
		epoch:   epoch,
		net:     net,
		stats:   stats,
		pts:     tab.pts[:n:n],
		powers:  tab.powers[:n:n],
		boxes:   tab.boxes[:n:n],
		curToID: curToID,
		idToCur: idToCur,
		base:    kdtree.New(tab.pts[:n]),
		baseIDs: curToID, // identity: base order is canonical order
		extras:  nil,
		grid:    shardindex.BuildDyn(tab.boxes[:n:n], curToID),
	}
	snap.remap = remapFunc(snap)
	d.tab = tab
	d.baseN = n
	d.opsSinceRebuild = 0
	d.cur.Store(snap)
}

// remapFunc builds the base-tree translation closure for snap: base
// index -> slot id -> current index, rejecting departed stations.
func remapFunc(snap *Snapshot) func(int) (int, bool) {
	return func(i int) (int, bool) {
		cur := snap.idToCur[snap.baseIDs[i]]
		return int(cur), cur >= 0
	}
}

// validate checks delta against a station count of n and returns the
// removal mask.
func validate(n int, delta Delta) ([]bool, error) {
	for _, pu := range delta.SetPower {
		if pu.Station < 0 || pu.Station >= n {
			return nil, fmt.Errorf("dynamic: power update targets station %d of %d", pu.Station, n)
		}
		if pu.Power <= 0 || math.IsNaN(pu.Power) || math.IsInf(pu.Power, 0) {
			return nil, fmt.Errorf("dynamic: power update for station %d must be a positive finite number, got %g", pu.Station, pu.Power)
		}
	}
	removed := make([]bool, n)
	for _, i := range delta.Remove {
		if i < 0 || i >= n {
			return nil, fmt.Errorf("dynamic: removal targets station %d of %d", i, n)
		}
		if removed[i] {
			return nil, fmt.Errorf("dynamic: station %d removed twice in one delta", i)
		}
		removed[i] = true
	}
	for _, st := range delta.Add {
		if math.IsNaN(st.Pos.X) || math.IsNaN(st.Pos.Y) || math.IsInf(st.Pos.X, 0) || math.IsInf(st.Pos.Y, 0) {
			return nil, fmt.Errorf("dynamic: arriving station at non-finite location %v", st.Pos)
		}
		if st.Power < 0 || math.IsNaN(st.Power) || math.IsInf(st.Power, 0) {
			return nil, fmt.Errorf("dynamic: arriving station power must be a non-negative finite number (0 = uniform default), got %g", st.Power)
		}
	}
	if n-len(delta.Remove)+len(delta.Add) < 1 {
		return nil, fmt.Errorf("dynamic: delta would leave no stations")
	}
	return removed, nil
}

// addPower resolves the Station.Power convention (0 = uniform 1).
func addPower(st Station) float64 {
	if st.Power == 0 {
		return 1
	}
	return st.Power
}

// Apply applies delta to the current epoch and installs the resulting
// snapshot as epoch+1, returning it. Below the churn threshold the
// derived structures are patched copy-on-write (re-inserting only the
// affected cover boxes and overlaying the kd-tree); above it — or when
// an arrival falls outside the grid's extent — everything is rebuilt
// from scratch and the accounting resets. The returned snapshot's
// ApplyStats say which path was taken. On error the network is
// unchanged.
func (d *Network) Apply(delta Delta) (*Snapshot, error) {
	d.mu.Lock()
	defer d.mu.Unlock()

	old := d.cur.Load()
	n := old.NumStations()
	removedMask, err := validate(n, delta)
	if err != nil {
		return nil, err
	}

	net := old.net
	ops := len(delta.SetPower) + len(delta.Remove) + len(delta.Add)
	d.opsSinceRebuild += ops
	churn := float64(d.opsSinceRebuild) / float64(max(d.baseN, 1))
	stats := ApplyStats{
		Epoch:         old.epoch + 1,
		Path:          PathIncremental,
		Added:         len(delta.Add),
		Removed:       len(delta.Remove),
		Repowered:     len(delta.SetPower),
		ChurnFraction: churn,
	}

	if churn <= d.rebuildFraction {
		snap, newNet, ok, err := d.applyIncremental(old, delta, removedMask, stats)
		if err != nil {
			d.opsSinceRebuild -= ops
			return nil, err
		}
		if ok {
			d.cur.Store(snap)
			return snap, nil
		}
		net = newNet // reuse the already-built network for the rebuild
	}

	// Amortized path: from-scratch build on the final station set.
	if net == old.net {
		pts, powers := finalSets(old, delta, removedMask)
		net, err = newCore(old.net, pts, powers)
		if err != nil {
			d.opsSinceRebuild -= ops
			return nil, err
		}
	}
	stats.Path = PathRebuild
	stats.Stations = net.NumStations()
	d.rebuild(net, old.epoch+1, stats)
	return d.cur.Load(), nil
}

// finalSets applies delta to old's canonical station/power arrays.
func finalSets(old *Snapshot, delta Delta, removedMask []bool) ([]geom.Point, []float64) {
	n := old.NumStations()
	pts := make([]geom.Point, 0, n+len(delta.Add))
	powers := make([]float64, 0, n+len(delta.Add))
	for i := 0; i < n; i++ {
		pts = append(pts, old.net.Station(i))
		powers = append(powers, old.net.Power(i))
	}
	for _, pu := range delta.SetPower {
		powers[pu.Station] = pu.Power
	}
	out, outP := pts[:0], powers[:0]
	for i := 0; i < n; i++ {
		if !removedMask[i] {
			out = append(out, pts[i])
			outP = append(outP, powers[i])
		}
	}
	for _, st := range delta.Add {
		out = append(out, st.Pos)
		outP = append(outP, addPower(st))
	}
	return out, outP
}

// newCore builds the canonical immutable network for a station set,
// carrying over noise, beta and alpha from prev.
func newCore(prev *core.Network, pts []geom.Point, powers []float64) (*core.Network, error) {
	return core.NewNetwork(pts, prev.Noise(), prev.Beta(),
		core.WithAlpha(prev.Alpha()), core.WithPowers(powers))
}

// applyIncremental patches old into the next epoch copy-on-write.
// ok = false (with the already-built network) means the grid could not
// absorb the delta — an arrival outside its extent — and the caller
// must take the rebuild path. Callers hold d.mu.
func (d *Network) applyIncremental(old *Snapshot, delta Delta, removedMask []bool, stats ApplyStats) (*Snapshot, *core.Network, bool, error) {
	tab := d.tab
	n := old.NumStations()
	noise, beta, alpha := old.net.Noise(), old.net.Beta(), old.net.Alpha()

	// Working copy of the canonical order; repowers swap in fresh slots
	// at the same position, removals and additions reshape it below.
	curID := append(make([]int32, 0, n+len(delta.Add)), old.curToID...)
	var removedIDs, addedIDs []int32
	for _, pu := range delta.SetPower {
		oldID := curID[pu.Station]
		if tab.powers[oldID] == pu.Power {
			continue // no-op update: keep the slot, touch nothing
		}
		newID := tab.add(tab.pts[oldID], pu.Power, noise, beta, alpha)
		curID[pu.Station] = newID
		removedIDs = append(removedIDs, oldID)
		addedIDs = append(addedIDs, newID)
	}
	out := curID[:0]
	for i := 0; i < n; i++ {
		if removedMask[i] {
			removedIDs = append(removedIDs, curID[i])
		} else {
			out = append(out, curID[i])
		}
	}
	curID = out
	for _, st := range delta.Add {
		id := tab.add(st.Pos, addPower(st), noise, beta, alpha)
		curID = append(curID, id)
		addedIDs = append(addedIDs, id)
	}

	nIDs := len(tab.pts)
	idToCur := make([]int32, nIDs)
	for i := range idToCur {
		idToCur[i] = -1
	}
	for cur, id := range curID {
		idToCur[id] = int32(cur)
	}

	// Grid deltas in live terms: a slot admitted and retired within
	// this one delta (a repowered station repowered again, or removed)
	// was never in the grid — cancel both sides instead of patching.
	oldNIDs := len(old.idToCur)
	gridRemoved := removedIDs[:0]
	for _, id := range removedIDs {
		if int(id) < oldNIDs {
			gridRemoved = append(gridRemoved, id)
		}
	}
	gridAdded := make([]int32, 0, len(addedIDs))
	for _, id := range addedIDs {
		if idToCur[id] >= 0 {
			gridAdded = append(gridAdded, id)
		}
	}

	grid := old.grid
	if grid != nil {
		var touched int
		var ok bool
		grid, touched, ok = grid.Update(tab.boxes[:nIDs:nIDs], gridRemoved, gridAdded)
		if !ok {
			// The arrival fell outside the grid extent; hand the caller
			// the network so the rebuild does not recompute it.
			pts, powers := finalSets(old, delta, removedMask)
			net, err := newCore(old.net, pts, powers)
			return nil, net, false, err
		}
		stats.GridCellsTouched = touched
	}

	pts := make([]geom.Point, len(curID))
	powers := make([]float64, len(curID))
	for i, id := range curID {
		pts[i] = tab.pts[id]
		powers[i] = tab.powers[id]
	}
	net, err := newCore(old.net, pts, powers)
	if err != nil {
		return nil, nil, false, err
	}

	extras := make([]int32, 0, len(old.extras)+len(gridAdded))
	for _, id := range old.extras {
		if idToCur[id] >= 0 {
			extras = append(extras, id)
		}
	}
	extras = append(extras, gridAdded...)

	stats.Stations = len(curID)
	snap := &Snapshot{
		epoch:   stats.Epoch,
		net:     net,
		stats:   stats,
		pts:     tab.pts[:nIDs:nIDs],
		powers:  tab.powers[:nIDs:nIDs],
		boxes:   tab.boxes[:nIDs:nIDs],
		curToID: curID,
		idToCur: idToCur,
		base:    old.base,
		baseIDs: old.baseIDs,
		extras:  extras,
		grid:    grid,
	}
	snap.remap = remapFunc(snap)
	return snap, nil, true, nil
}
