package dynamic

import (
	"math"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/workload"
)

const (
	testNoise = 0.01
	testBeta  = 3
	testEps   = 0.3
)

var testBox = geom.NewBox(geom.Pt(-5, -5), geom.Pt(5, 5))

// startNet builds a deterministic uniform starting network.
func startNet(t testing.TB, n int, seed int64) *core.Network {
	t.Helper()
	gen := workload.NewGenerator(seed)
	pts, err := gen.UniformSeparated(n, testBox, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	net, err := core.NewUniform(pts, testNoise, testBeta)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// queryGrid returns a grid of probe points over an area larger than
// the deployment box, plus points near every station (zone boundaries
// live there).
func queryGrid(net *core.Network) []geom.Point {
	var pts []geom.Point
	for x := -7.0; x <= 7.0; x += 0.5 {
		for y := -7.0; y <= 7.0; y += 0.5 {
			pts = append(pts, geom.Pt(x, y))
		}
	}
	for i := 0; i < net.NumStations(); i++ {
		s := net.Station(i)
		pts = append(pts, s, geom.Pt(s.X+0.03, s.Y), geom.Pt(s.X, s.Y-0.07), geom.Pt(s.X+0.4, s.Y+0.4))
	}
	return pts
}

// deltaFromEvent converts one churn event to a single-station Delta.
func deltaFromEvent(ev workload.ChurnEvent) Delta {
	switch ev.Kind {
	case workload.ChurnArrive:
		return Delta{Add: []Station{{Pos: ev.Pos, Power: ev.Power}}}
	case workload.ChurnDepart:
		return Delta{Remove: []int{ev.Station}}
	default:
		return Delta{SetPower: []PowerUpdate{{Station: ev.Station, Power: ev.Power}}}
	}
}

// scratchNet rebuilds the snapshot's station set from scratch.
func scratchNet(t *testing.T, snap *Snapshot) *core.Network {
	t.Helper()
	n := snap.NumStations()
	pts := make([]geom.Point, n)
	powers := make([]float64, n)
	for i := 0; i < n; i++ {
		pts[i] = snap.Network().Station(i)
		powers[i] = snap.Network().Power(i)
	}
	net, err := core.NewNetwork(pts, testNoise, testBeta, core.WithPowers(powers))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// TestApplyEquivalentToFromScratch is the pinning property test: after
// ANY delta sequence, a snapshot must answer every query point exactly
// like a from-scratch build on the same final station set — both the
// exact Network.HeardBy and, for locator-eligible (uniform) states,
// the Theorem 3 locator with and without its spatial index. It runs
// the engine in three modes: amortizing (default threshold), purely
// incremental (threshold Inf) and always-rebuilding (threshold 0), so
// both maintenance paths and their interleavings are pinned.
func TestApplyEquivalentToFromScratch(t *testing.T) {
	modes := []struct {
		name     string
		fraction float64
	}{
		{"amortized", DefaultRebuildFraction},
		{"incremental", math.Inf(1)},
		{"rebuild", 0},
	}
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				net := startNet(t, 10, seed)
				dyn, err := New(net, WithRebuildFraction(mode.fraction))
				if err != nil {
					t.Fatal(err)
				}
				// Arrival/departure-only trace keeps the network uniform, so
				// every epoch is locator-eligible.
				gen := workload.NewGenerator(100 + seed)
				trace := gen.ChurnTrace(10, 40, testBox, 1, 1, 0, 0)
				sawInc, sawReb := false, false
				for evi, ev := range trace {
					snap, err := dyn.Apply(deltaFromEvent(ev))
					if err != nil {
						t.Fatalf("event %d (%+v): %v", evi, ev, err)
					}
					switch snap.ApplyStats().Path {
					case PathIncremental:
						sawInc = true
					case PathRebuild:
						sawReb = true
					}
					// Check a few epochs densely, not all (locator builds are
					// the expensive part of this test).
					if evi%8 != 0 && evi != len(trace)-1 {
						continue
					}
					scratch := scratchNet(t, snap)
					loc, err := scratch.BuildLocator(testEps)
					if err != nil {
						t.Fatalf("event %d: from-scratch locator: %v", evi, err)
					}
					noIdx, err := scratch.BuildLocatorOpts(testEps, core.BuildOptions{NoSpatialIndex: true})
					if err != nil {
						t.Fatal(err)
					}
					for _, p := range queryGrid(scratch) {
						got := snap.Locate(p)
						if want := loc.LocateExact(p); got != want {
							t.Fatalf("mode %s seed %d event %d: Locate(%v) = %+v, from-scratch locator %+v",
								mode.name, seed, evi, p, got, want)
						}
						if want := noIdx.LocateExact(p); got != want {
							t.Fatalf("mode %s seed %d event %d: Locate(%v) = %+v, NoSpatialIndex locator %+v",
								mode.name, seed, evi, p, got, want)
						}
						gi, gok := snap.HeardBy(p)
						wi, wok := scratch.HeardBy(p)
						if gok != wok || (gok && gi != wi) {
							t.Fatalf("mode %s seed %d event %d: HeardBy(%v) = (%d, %v), want (%d, %v)",
								mode.name, seed, evi, p, gi, gok, wi, wok)
						}
					}
				}
				switch mode.name {
				case "incremental":
					if sawReb {
						t.Fatal("threshold Inf took a rebuild")
					}
				case "rebuild":
					if sawInc {
						t.Fatal("threshold 0 took an incremental apply")
					}
				case "amortized":
					if !sawInc || !sawReb {
						t.Fatalf("amortized mode exercised inc=%v reb=%v, want both", sawInc, sawReb)
					}
				}
			}
		})
	}
}

// TestApplyPowerWalkEquivalence extends the property to power-walk
// deltas (non-uniform epochs, exact-scan query path): snapshots must
// agree with from-scratch Network.HeardBy point-for-point.
func TestApplyPowerWalkEquivalence(t *testing.T) {
	net := startNet(t, 8, 5)
	dyn, err := New(net)
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewGenerator(77)
	trace := gen.ChurnTrace(8, 30, testBox, 1, 1, 2, 0.4)
	for evi, ev := range trace {
		snap, err := dyn.Apply(deltaFromEvent(ev))
		if err != nil {
			t.Fatalf("event %d: %v", evi, err)
		}
		if evi%6 != 0 && evi != len(trace)-1 {
			continue
		}
		scratch := scratchNet(t, snap)
		for _, p := range queryGrid(scratch) {
			gi, gok := snap.HeardBy(p)
			wi, wok := scratch.HeardBy(p)
			if gok != wok || (gok && gi != wi) {
				t.Fatalf("event %d: HeardBy(%v) = (%d, %v), want (%d, %v)", evi, p, gi, gok, wi, wok)
			}
		}
	}
}

// TestSnapshotIsolation: an epoch captured before further churn must
// keep answering from its own station set, bit-for-bit, no matter how
// much the engine moves on (including across amortized rebuilds).
func TestSnapshotIsolation(t *testing.T) {
	net := startNet(t, 6, 9)
	dyn, err := New(net)
	if err != nil {
		t.Fatal(err)
	}
	pinned := dyn.Snapshot()
	pinnedNet := scratchNet(t, pinned)
	probes := queryGrid(pinnedNet)
	want := make([]core.Location, len(probes))
	for i, p := range probes {
		want[i] = pinned.Locate(p)
	}

	gen := workload.NewGenerator(31)
	for _, ev := range gen.ChurnTrace(6, 60, testBox, 2, 1, 1, 0.3) {
		if _, err := dyn.Apply(deltaFromEvent(ev)); err != nil {
			t.Fatal(err)
		}
	}
	if dyn.Epoch() != 61 {
		t.Fatalf("epoch %d after 60 applies, want 61", dyn.Epoch())
	}
	for i, p := range probes {
		if got := pinned.Locate(p); got != want[i] {
			t.Fatalf("pinned epoch answer changed at %v: %+v -> %+v", p, want[i], got)
		}
	}
	if pinned.Epoch() != 1 || pinned.NumStations() != 6 {
		t.Fatalf("pinned snapshot mutated: epoch %d stations %d", pinned.Epoch(), pinned.NumStations())
	}
}

// TestApplyValidation: bad deltas are rejected and leave the engine
// untouched.
func TestApplyValidation(t *testing.T) {
	net := startNet(t, 4, 2)
	dyn, err := New(net)
	if err != nil {
		t.Fatal(err)
	}
	before := dyn.Snapshot()
	bad := []Delta{
		{Remove: []int{4}},
		{Remove: []int{-1}},
		{Remove: []int{1, 1}},
		{Remove: []int{0, 1, 2, 3}},
		{SetPower: []PowerUpdate{{Station: 9, Power: 2}}},
		{SetPower: []PowerUpdate{{Station: 0, Power: 0}}},
		{SetPower: []PowerUpdate{{Station: 0, Power: math.NaN()}}},
		{Add: []Station{{Pos: geom.Pt(math.Inf(1), 0)}}},
		{Add: []Station{{Pos: geom.Pt(0, 0), Power: -1}}},
	}
	for i, d := range bad {
		if _, err := dyn.Apply(d); err == nil {
			t.Fatalf("bad delta %d accepted: %+v", i, d)
		}
	}
	if got := dyn.Snapshot(); got != before {
		t.Fatal("failed Apply replaced the snapshot")
	}
	// The rejected deltas must not have skewed the churn accounting:
	// a subsequent small delta stays incremental.
	snap, err := dyn.Apply(Delta{Add: []Station{{Pos: geom.Pt(1.23, -2.1)}}})
	if err != nil {
		t.Fatal(err)
	}
	if snap.ApplyStats().Path != PathIncremental {
		t.Fatalf("apply after rejected deltas took %v, want incremental", snap.ApplyStats().Path)
	}
	if snap.Epoch() != 2 {
		t.Fatalf("epoch %d, want 2 (rejected deltas must not consume epochs)", snap.Epoch())
	}
}

// TestApplyStatsAndSemantics covers the delta phase semantics
// (pre-delta indices, last-wins power updates, repower+remove in one
// delta) and the ApplyStats bookkeeping.
func TestApplyStatsAndSemantics(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(3, 0), geom.Pt(0, 3), geom.Pt(3, 3)}
	net, err := core.NewUniform(pts, testNoise, testBeta)
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := New(net, WithRebuildFraction(math.Inf(1)))
	if err != nil {
		t.Fatal(err)
	}
	// Power steps stay modest so the updated cover boxes fit the grid
	// extent and the apply stays on the incremental path (a large jump
	// legitimately escapes the grid and amortizes — see
	// TestOutOfExtentArrivalForcesRebuild).
	snap, err := dyn.Apply(Delta{
		SetPower: []PowerUpdate{{Station: 1, Power: 1.2}, {Station: 1, Power: 1.3}, {Station: 2, Power: 1.25}},
		Remove:   []int{2, 0},
		Add:      []Station{{Pos: geom.Pt(-3, -3)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := snap.ApplyStats()
	if st.Epoch != 2 || st.Path != PathIncremental || st.Stations != 3 ||
		st.Added != 1 || st.Removed != 2 || st.Repowered != 3 {
		t.Fatalf("stats %+v", st)
	}
	if st.GridCellsTouched == 0 {
		t.Fatal("incremental apply touched no grid cells")
	}
	// Survivors compact in order: [s1(power 4), s3(power 1)], then the
	// arrival appends.
	got := snap.Network()
	wantPts := []geom.Point{geom.Pt(3, 0), geom.Pt(3, 3), geom.Pt(-3, -3)}
	wantPow := []float64{1.3, 1, 1}
	if got.NumStations() != 3 {
		t.Fatalf("stations %d, want 3", got.NumStations())
	}
	for i := range wantPts {
		if got.Station(i) != wantPts[i] || got.Power(i) != wantPow[i] {
			t.Fatalf("station %d = %v @%g, want %v @%g", i, got.Station(i), got.Power(i), wantPts[i], wantPow[i])
		}
	}
}

// TestNoiselessNetworkDisablesGrid: unbounded cover boxes must disable
// the fast H- exit, not corrupt answers.
func TestNoiselessNetworkDisablesGrid(t *testing.T) {
	net, err := core.NewUniform([]geom.Point{geom.Pt(-1, 0), geom.Pt(1, 0)}, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := New(net)
	if err != nil {
		t.Fatal(err)
	}
	snap := dyn.Snapshot()
	if snap.GridEnabled() {
		t.Fatal("grid enabled for a noiseless network")
	}
	snap, err = dyn.Apply(Delta{Add: []Station{{Pos: geom.Pt(0, 5)}}})
	if err != nil {
		t.Fatal(err)
	}
	scratch, err := core.NewUniform([]geom.Point{geom.Pt(-1, 0), geom.Pt(1, 0), geom.Pt(0, 5)}, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range queryGrid(scratch) {
		gi, gok := snap.HeardBy(p)
		wi, wok := scratch.HeardBy(p)
		if gok != wok || (gok && gi != wi) {
			t.Fatalf("HeardBy(%v) = (%d, %v), want (%d, %v)", p, gi, gok, wi, wok)
		}
	}
}

// TestOutOfExtentArrivalForcesRebuild: an arrival far outside the
// grid's padded extent cannot be absorbed incrementally; the engine
// must take the rebuild path and keep answering correctly.
func TestOutOfExtentArrivalForcesRebuild(t *testing.T) {
	net := startNet(t, 8, 3)
	dyn, err := New(net, WithRebuildFraction(math.Inf(1)))
	if err != nil {
		t.Fatal(err)
	}
	far := geom.Pt(500, 500)
	snap, err := dyn.Apply(Delta{Add: []Station{{Pos: far}}})
	if err != nil {
		t.Fatal(err)
	}
	if snap.ApplyStats().Path != PathRebuild {
		t.Fatalf("far arrival took %v, want rebuild", snap.ApplyStats().Path)
	}
	if !snap.GridEnabled() {
		t.Fatal("grid disabled after rebuild")
	}
	if i, ok := snap.HeardBy(far); !ok || i != 8 {
		t.Fatalf("HeardBy(far station) = (%d, %v), want (8, true)", i, ok)
	}
}

// TestConcurrentQueriesDuringChurn hammers snapshots from many
// goroutines while the engine churns; run with -race. Each goroutine
// pins one snapshot per pass and checks internal consistency against
// that snapshot's own network.
func TestConcurrentQueriesDuringChurn(t *testing.T) {
	net := startNet(t, 8, 4)
	dyn, err := New(net)
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewGenerator(55)
	trace := gen.ChurnTrace(8, 80, testBox, 1, 1, 1, 0.3)
	probeGen := workload.NewGenerator(56)
	probes := probeGen.QueryPoints(64, testBox)

	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pass := 0; pass < 50; pass++ {
				snap := dyn.Snapshot()
				for _, p := range probes {
					got := snap.Locate(p)
					wi, wok := snap.Network().HeardBy(p)
					if (got.Kind == core.Reception) != wok || (wok && got.Station != wi) {
						errs <- "snapshot disagrees with its own network"
						return
					}
				}
			}
		}()
	}
	for _, ev := range trace {
		if _, err := dyn.Apply(deltaFromEvent(ev)); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
}

// TestLocateAllocationFree pins the query hot path at zero allocations
// for both the grid fast exit and the nearest+check path, on an epoch
// with overlay extras (the post-churn shape).
func TestLocateAllocationFree(t *testing.T) {
	net := startNet(t, 32, 8)
	dyn, err := New(net, WithRebuildFraction(math.Inf(1)))
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewGenerator(60)
	for _, ev := range gen.ChurnTrace(32, 6, testBox, 1, 1, 0, 0) {
		if _, err := dyn.Apply(deltaFromEvent(ev)); err != nil {
			t.Fatal(err)
		}
	}
	snap := dyn.Snapshot()
	probes := append(probeGenPoints(61, 128), geom.Pt(400, 400)) // covered + far outside
	allocs := testing.AllocsPerRun(50, func() {
		for _, p := range probes {
			snap.Locate(p)
		}
	})
	if allocs != 0 {
		t.Fatalf("Locate allocates: %g allocs per %d-query run", allocs, len(probes))
	}
}

func probeGenPoints(seed int64, n int) []geom.Point {
	return workload.NewGenerator(seed).QueryPoints(n, testBox)
}
