package dynamic

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/workload"
)

// benchNet builds a constant-density uniform network (the E18/E19
// serving regime: box side grows with sqrt(n)).
func benchNet(b *testing.B, n int) (*core.Network, geom.Box) {
	b.Helper()
	side := 3 * math.Sqrt(float64(n))
	box := geom.NewBox(geom.Pt(-side/2, -side/2), geom.Pt(side/2, side/2))
	gen := workload.NewGenerator(int64(9000 * n))
	pts, err := gen.UniformSeparated(n, box, 0.05)
	if err != nil {
		b.Fatal(err)
	}
	net, err := core.NewUniform(pts, 0.01, 3)
	if err != nil {
		b.Fatal(err)
	}
	return net, box
}

// BenchmarkDynamicApply measures one single-station incremental delta
// (the churn hot path): an arrival and a departure alternate so the
// station count stays fixed. The rebuild threshold is disabled so the
// measurement is purely the incremental path.
func BenchmarkDynamicApply(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			net, box := benchNet(b, n)
			dyn, err := New(net, WithRebuildFraction(math.Inf(1)))
			if err != nil {
				b.Fatal(err)
			}
			gen := workload.NewGenerator(1)
			arrivals := gen.QueryPoints(b.N+1, box)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%2 == 0 {
					_, err = dyn.Apply(Delta{Add: []Station{{Pos: arrivals[i/2]}}})
				} else {
					_, err = dyn.Apply(Delta{Remove: []int{n}})
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDynamicRebuild measures the from-scratch baseline an
// incremental Apply replaces: building the whole engine (network copy,
// kd-tree, cover boxes, grid) on an unchanged station set.
func BenchmarkDynamicRebuild(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			net, _ := benchNet(b, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := New(net); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDynamicLocate measures the epoch-snapshot query hot path on
// a post-churn snapshot (base tree + overlay extras + patched grid).
// It must report 0 allocs/op — the CI bench gate enforces it.
func BenchmarkDynamicLocate(b *testing.B) {
	for _, n := range []int{64, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			net, box := benchNet(b, n)
			dyn, err := New(net, WithRebuildFraction(math.Inf(1)))
			if err != nil {
				b.Fatal(err)
			}
			gen := workload.NewGenerator(2)
			for _, ev := range gen.ChurnTrace(n, n/16+4, box, 1, 1, 0, 0) {
				var d Delta
				switch ev.Kind {
				case workload.ChurnArrive:
					d = Delta{Add: []Station{{Pos: ev.Pos, Power: ev.Power}}}
				case workload.ChurnDepart:
					d = Delta{Remove: []int{ev.Station}}
				}
				if _, err := dyn.Apply(d); err != nil {
					b.Fatal(err)
				}
			}
			snap := dyn.Snapshot()
			pts := gen.QueryPoints(4096, box)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				snap.Locate(pts[i%len(pts)])
			}
		})
	}
}
