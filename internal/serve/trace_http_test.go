package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/trace"
)

// locateTraced posts one small locate batch carrying traceparent (when
// non-empty) and returns the response after asserting 200.
func locateTraced(t *testing.T, ts *httptest.Server, network, traceparent string) *http.Response {
	t.Helper()
	req := LocateRequest{Network: network, Eps: 0.1, Points: []PointJSON{{X: 0.5, Y: 0.5}, {X: -1, Y: 2}}}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/locate", strings.NewReader(string(b)))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	if traceparent != "" {
		hreq.Header.Set("Traceparent", traceparent)
	}
	resp, err := ts.Client().Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("locate: %s", resp.Status)
	}
	return resp
}

func TestTraceparentAdoptionAndFlightRecorder(t *testing.T) {
	stations := testStations(t, 16, 5)
	srv := NewServer(Options{EnableDebugRequests: true})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp := postJSON(t, ts, "/v1/networks", registerReq("traced", stations, 0.01, 3))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register: %s", resp.Status)
	}
	resp.Body.Close()

	const sent = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	sentID, sentSpan, ok := trace.ParseTraceparent(sent)
	if !ok {
		t.Fatal("test traceparent does not parse")
	}
	resp = locateTraced(t, ts, "traced", sent)
	echo := resp.Header.Get("Traceparent")
	resp.Body.Close()
	echoID, echoSpan, ok := trace.ParseTraceparent(echo)
	if !ok {
		t.Fatalf("response traceparent %q does not parse", echo)
	}
	if echoID != sentID {
		t.Fatalf("trace ID not adopted: sent %s, echoed %s", sentID, echoID)
	}
	if echoSpan == sentSpan {
		t.Fatalf("server echoed the caller's span ID %s instead of its own", echoSpan)
	}

	dresp, err := ts.Client().Get(ts.URL + "/debug/requests?route=locate")
	if err != nil {
		t.Fatal(err)
	}
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/requests: %s", dresp.Status)
	}
	caps := decodeJSON[[]trace.Captured](t, dresp)
	var got *trace.Captured
	for i := range caps {
		if caps[i].TraceID == sentID.String() {
			got = &caps[i]
			break
		}
	}
	if got == nil {
		t.Fatalf("trace %s not in the flight recorder (%d captured)", sentID, len(caps))
	}
	if got.Route != "locate" || got.Network != "traced" || got.Status != http.StatusOK {
		t.Fatalf("captured = %+v", got)
	}
	names := make(map[string]bool, len(got.Spans))
	for _, sp := range got.Spans {
		names[sp.Name] = true
		if sp.DurationMS < 0 || sp.StartMS < 0 {
			t.Fatalf("span %q has negative timing: %+v", sp.Name, sp)
		}
	}
	for _, want := range []string{"resolver.build", "resolve.batch", "encode"} {
		if !names[want] {
			t.Errorf("span %q missing from captured trace, have %v", want, names)
		}
	}

	// A second locate hits the cached resolver: its trace records the
	// hit span, not a build.
	resp = locateTraced(t, ts, "traced", "")
	tp := resp.Header.Get("Traceparent")
	resp.Body.Close()
	id2, _, ok := trace.ParseTraceparent(tp)
	if !ok {
		t.Fatalf("generated traceparent %q does not parse", tp)
	}
	dresp, err = ts.Client().Get(ts.URL + "/debug/requests?route=locate")
	if err != nil {
		t.Fatal(err)
	}
	caps = decodeJSON[[]trace.Captured](t, dresp)
	found := false
	for _, c := range caps {
		if c.TraceID != id2.String() {
			continue
		}
		found = true
		for _, sp := range c.Spans {
			if sp.Name == "resolver.build" {
				t.Errorf("cache-hit request recorded a build span: %+v", c.Spans)
			}
		}
	}
	if !found {
		t.Fatalf("generated trace %s not captured", id2)
	}

	// An unreachable min duration yields an empty array, not null.
	dresp, err = ts.Client().Get(ts.URL + "/debug/requests?route=locate&min=1h")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(dresp.Body)
	dresp.Body.Close()
	if got := strings.TrimSpace(string(body)); got != "[]" {
		t.Fatalf("min=1h snapshot = %q, want []", got)
	}

	// Malformed min is a client error; non-GET is rejected.
	dresp, err = ts.Client().Get(ts.URL + "/debug/requests?min=bogus")
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusBadRequest {
		t.Errorf("min=bogus: %s, want 400", dresp.Status)
	}
	dresp, err = ts.Client().Post(ts.URL+"/debug/requests", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /debug/requests: %s, want 405", dresp.Status)
	}
}

// TestDeleteNetworkDropsFlightRecorderAndExemplars is the regression
// test for observability eviction: after DELETE /v1/networks/{name}
// (the same path reconcile eviction takes), the flight recorder holds
// no trace for the network and the latency histograms carry no
// exemplar captured under it.
func TestDeleteNetworkDropsFlightRecorderAndExemplars(t *testing.T) {
	stations := testStations(t, 16, 7)
	srv := NewServer(Options{EnableDebugRequests: true})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp := postJSON(t, ts, "/v1/networks", registerReq("victim", stations, 0.01, 3))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register: %s", resp.Status)
	}
	resp.Body.Close()
	locateTraced(t, ts, "victim", "").Body.Close()

	scrape := func() string {
		t.Helper()
		// Exemplars only ride the negotiated OpenMetrics exposition.
		mreq, err := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
		if err != nil {
			t.Fatal(err)
		}
		mreq.Header.Set("Accept", "application/openmetrics-text")
		mresp, err := ts.Client().Do(mreq)
		if err != nil {
			t.Fatal(err)
		}
		defer mresp.Body.Close()
		b, err := io.ReadAll(mresp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	locateExemplar := func(exposition string) bool {
		for _, line := range strings.Split(exposition, "\n") {
			if strings.Contains(line, `route="locate"`) && strings.Contains(line, `# {trace_id=`) {
				return true
			}
		}
		return false
	}

	// Preconditions: the load left a captured trace and an exemplar.
	if caps := srv.recorder.Snapshot("locate", 0); len(caps) == 0 || caps[0].Network != "victim" {
		t.Fatalf("precondition: recorder snapshot = %+v", caps)
	}
	if !locateExemplar(scrape()) {
		t.Fatal("precondition: no exemplar on the locate latency histogram")
	}

	dreq, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/networks/victim", nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := ts.Client().Do(dreq)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %s", dresp.Status)
	}

	for _, c := range srv.recorder.Snapshot("", 0) {
		if c.Network == "victim" {
			t.Errorf("deleted network still in the flight recorder: %+v", c)
		}
	}
	after := scrape()
	if locateExemplar(after) {
		t.Error("deleted network's exemplar still on the locate latency histogram")
	}
	// The request counters themselves survive the eviction — only the
	// exemplar references go.
	if !strings.Contains(after, `route="locate"`) {
		t.Error("locate series vanished entirely; only exemplars should drop")
	}

	// The recorder keeps serving other networks' traces after a drop.
	resp = postJSON(t, ts, "/v1/networks", registerReq("keeper", stations, 0.01, 3))
	resp.Body.Close()
	locateTraced(t, ts, "keeper", "").Body.Close()
	caps := srv.recorder.Snapshot("locate", 0)
	if len(caps) == 0 || caps[0].Network != "keeper" {
		t.Fatalf("post-delete snapshot = %+v", caps)
	}
	if !locateExemplar(scrape()) {
		t.Error("no exemplar recorded for the surviving network")
	}
}

// TestDebugSurfacesAreOptIn pins the debug-surface policy: with default
// options neither /debug/requests nor /debug/pprof is mounted, and the
// classic /metrics exposition carries no exemplar syntax.
func TestDebugSurfacesAreOptIn(t *testing.T) {
	stations := testStations(t, 16, 13)
	srv := NewServer(Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp := postJSON(t, ts, "/v1/networks", registerReq("closed", stations, 0.01, 3))
	resp.Body.Close()
	locateTraced(t, ts, "closed", "").Body.Close()

	dresp, err := ts.Client().Get(ts.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNotFound {
		t.Errorf("/debug/requests without opt-in: %s, want 404", dresp.Status)
	}

	mresp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("default /metrics Content-Type = %q", ct)
	}
	if strings.Contains(string(body), "# {trace_id=") || strings.Contains(string(body), "# EOF") {
		t.Errorf("OpenMetrics syntax leaked into the text/plain scrape:\n%s", body)
	}
}

// TestDebugRequestsMinFilter drives the min-duration filter through a
// real captured trace: min=0 includes it, a just-above-total min
// excludes it.
func TestDebugRequestsMinFilter(t *testing.T) {
	stations := testStations(t, 16, 11)
	srv := NewServer(Options{EnableDebugRequests: true})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp := postJSON(t, ts, "/v1/networks", registerReq("f", stations, 0.01, 3))
	resp.Body.Close()
	locateTraced(t, ts, "f", "").Body.Close()

	caps := srv.recorder.Snapshot("locate", 0)
	if len(caps) != 1 {
		t.Fatalf("snapshot = %+v", caps)
	}
	over := time.Duration((caps[0].DurationMS+1)*float64(time.Millisecond)) + time.Millisecond
	dresp, err := ts.Client().Get(ts.URL + "/debug/requests?route=locate&min=" + over.String())
	if err != nil {
		t.Fatal(err)
	}
	if got := decodeJSON[[]trace.Captured](t, dresp); len(got) != 0 {
		t.Fatalf("min=%v returned %+v", over, got)
	}
}
