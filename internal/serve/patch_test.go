package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/workload"
)

// patchJSON issues a PATCH /v1/networks/{name} with the given delta.
func patchJSON(t *testing.T, ts *httptest.Server, name string, delta NetworkDeltaRequest) *http.Response {
	t.Helper()
	b, err := json.Marshal(delta)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPatch, ts.URL+"/v1/networks/"+name, bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestPatchLifecycle drives the mutation API end to end: register,
// apply deltas (add / remove / set_power), and after each delta check
// the version bumps, the epoch tracks it, and every resolver kind
// answers /v1/locate exactly like a from-scratch network on the
// current station set.
func TestPatchLifecycle(t *testing.T) {
	srv := NewServer(Options{Workers: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	stations := testStations(t, 8, 41)
	resp := postJSON(t, ts, "/v1/networks", registerReq("churn", stations, 0.01, 3))
	reg := decodeJSON[NetworkResponse](t, resp)
	if reg.Version != 1 {
		t.Fatalf("registered version %d, want 1", reg.Version)
	}

	// Mirror of the server-side station set.
	pts := append([]geom.Point(nil), stations...)
	powers := make([]float64, len(pts))
	for i := range powers {
		powers[i] = 1
	}

	deltas := []NetworkDeltaRequest{
		{Add: []DeltaStationJSON{{X: 1.25, Y: -3.5}}},
		{Remove: []int{2}},
		{SetPower: []PowerUpdateJSON{{Station: 1, Power: 1.4}}},
		{SetPower: []PowerUpdateJSON{{Station: 0, Power: 1.2}}, Remove: []int{4}, Add: []DeltaStationJSON{{X: -2, Y: 2, Power: 1.1}}},
	}
	probes := workload.NewGenerator(42).QueryPoints(150, geom.NewBox(geom.Pt(-6, -6), geom.Pt(6, 6)))

	for di, d := range deltas {
		// Apply to the mirror with the documented phase semantics.
		for _, pu := range d.SetPower {
			powers[pu.Station] = pu.Power
		}
		for _, i := range d.Remove {
			pts = append(pts[:i:i], pts[i+1:]...)
			powers = append(powers[:i:i], powers[i+1:]...)
		}
		for _, st := range d.Add {
			p := st.Power
			if p == 0 {
				p = 1
			}
			pts = append(pts, geom.Pt(st.X, st.Y))
			powers = append(powers, p)
		}

		got := decodeJSON[NetworkResponse](t, patchJSON(t, ts, "churn", d))
		wantVersion := uint64(2 + di)
		if got.Version != wantVersion || got.Epoch != wantVersion || got.Stations != len(pts) {
			t.Fatalf("delta %d: response %+v, want version=epoch=%d stations=%d", di, got, wantVersion, len(pts))
		}
		if got.ApplyPath != "incremental" && got.ApplyPath != "rebuild" {
			t.Fatalf("delta %d: apply_path %q", di, got.ApplyPath)
		}

		scratch, err := core.NewNetwork(pts, 0.01, 3, core.WithPowers(powers))
		if err != nil {
			t.Fatal(err)
		}
		kinds := []string{"dynamic", "exact", "voronoi"}
		if scratch.IsUniform() {
			kinds = append(kinds, "locator")
		}
		for _, kind := range kinds {
			req := LocateRequest{Network: "churn", Resolver: kind}
			for _, p := range probes {
				req.Points = append(req.Points, PointJSON{X: p.X, Y: p.Y})
			}
			lr := decodeJSON[LocateResponse](t, postJSON(t, ts, "/v1/locate", req))
			if lr.Version != wantVersion {
				t.Fatalf("delta %d kind %s: answered from version %d, want %d", di, kind, lr.Version, wantVersion)
			}
			for i, p := range probes {
				want := NoStationHeard
				if idx, ok := scratch.HeardBy(p); ok {
					want = idx
				}
				if lr.Results[i].Station != want {
					t.Fatalf("delta %d kind %s: station %d at %v, want %d", di, kind, lr.Results[i].Station, p, want)
				}
			}
		}
	}
}

// TestPatchErrors covers the failure surface: unknown network, bad
// delta documents, and non-PATCH methods on the name route.
func TestPatchErrors(t *testing.T) {
	srv := NewServer(Options{Workers: 1})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	if resp := patchJSON(t, ts, "ghost", NetworkDeltaRequest{Remove: []int{0}}); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("patch of unknown network: %s", resp.Status)
	} else {
		resp.Body.Close()
	}

	resp := postJSON(t, ts, "/v1/networks", registerReq("p", testStations(t, 4, 43), 0.01, 3))
	resp.Body.Close()

	bad := []NetworkDeltaRequest{
		{Remove: []int{9}},
		{Remove: []int{0, 0}},
		{Remove: []int{0, 1, 2, 3}},
		{SetPower: []PowerUpdateJSON{{Station: 0, Power: -2}}},
	}
	for i, d := range bad {
		resp := patchJSON(t, ts, "p", d)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad delta %d: %s", i, resp.Status)
		}
		resp.Body.Close()
	}
	// Rejected deltas must not consume versions.
	got := decodeJSON[NetworkResponse](t, patchJSON(t, ts, "p", NetworkDeltaRequest{Add: []DeltaStationJSON{{X: 0.5, Y: 0.5}}}))
	if got.Version != 2 {
		t.Fatalf("version %d after rejected deltas, want 2", got.Version)
	}
}

// TestPatchDuringStreamPinsEpochAndReleasesResolver is the
// PATCH-vs-stream race test: an NDJSON stream starts on one
// generation, a delta lands mid-stream, and the stream must (a) finish
// every answer on its pinned epoch, (b) leak no goroutines, and (c)
// leave the superseded generation's resolver released from the cache
// once new traffic lands. Run with -race.
func TestPatchDuringStreamPinsEpochAndReleasesResolver(t *testing.T) {
	srv := NewServer(Options{Workers: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	stations := testStations(t, 6, 44)
	resp := postJSON(t, ts, "/v1/networks", registerReq("pin", stations, 0.01, 3))
	resp.Body.Close()

	net, err := core.NewUniform(stations, 0.01, 3)
	if err != nil {
		t.Fatal(err)
	}
	const queries = 400
	probes := workload.NewGenerator(45).QueryPoints(queries, geom.NewBox(geom.Pt(-6, -6), geom.Pt(6, 6)))
	truth := make([]int, queries)
	for i, p := range probes {
		truth[i] = NoStationHeard
		if idx, ok := net.HeardBy(p); ok {
			truth[i] = idx
		}
	}

	ts.Client().CloseIdleConnections()
	before := runtime.NumGoroutine()

	// Full-duplex stream: feed the first half, wait for answers (so the
	// stream is provably mid-flight), PATCH, then feed the rest.
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/locate/stream?network=pin&resolver=dynamic", pr)
	if err != nil {
		t.Fatal(err)
	}
	respCh := make(chan *http.Response, 1)
	errCh := make(chan error, 1)
	go func() {
		resp, err := ts.Client().Do(req)
		if err != nil {
			errCh <- err
			return
		}
		respCh <- resp
	}()

	writeProbe := func(p geom.Point) {
		if _, err := fmt.Fprintf(pw, "{\"x\":%g,\"y\":%g}\n", p.X, p.Y); err != nil {
			t.Errorf("writing stream: %v", err)
		}
	}
	for _, p := range probes[:queries/2] {
		writeProbe(p)
	}

	var streamResp *http.Response
	select {
	case streamResp = <-respCh:
	case err := <-errCh:
		t.Fatal(err)
	case <-time.After(10 * time.Second):
		t.Fatal("stream never produced response headers")
	}
	defer streamResp.Body.Close()
	if v := streamResp.Header.Get("Sinr-Network-Version"); v != "1" {
		t.Fatalf("stream pinned to version %s, want 1", v)
	}

	sc := bufio.NewScanner(streamResp.Body)
	read := 0
	readAnswer := func() LocateResult {
		if !sc.Scan() {
			t.Fatalf("stream ended after %d answers: %v", read, sc.Err())
		}
		var res LocateResult
		if err := json.Unmarshal(sc.Bytes(), &res); err != nil {
			t.Fatalf("answer %d: %v (%s)", read, err, sc.Bytes())
		}
		read++
		return res
	}
	for i := 0; i < queries/2; i++ {
		if res := readAnswer(); res.Station != truth[i] {
			t.Fatalf("pre-patch answer %d: station %d, want %d", i, res.Station, truth[i])
		}
	}

	// Mid-stream: move every station. The stream must not notice.
	delta := NetworkDeltaRequest{Add: []DeltaStationJSON{{X: 0.1, Y: 0.2}}}
	for i := range stations {
		delta.Remove = append(delta.Remove, i)
	}
	got := decodeJSON[NetworkResponse](t, patchJSON(t, ts, "pin", delta))
	if got.Version != 2 || got.Stations != 1 {
		t.Fatalf("patch response %+v", got)
	}

	for _, p := range probes[queries/2:] {
		writeProbe(p)
	}
	pw.Close()
	for i := queries / 2; i < queries; i++ {
		if res := readAnswer(); res.Station != truth[i] {
			t.Fatalf("post-patch answer %d: station %d, want %d — stream not pinned to its epoch", i, res.Station, truth[i])
		}
	}
	if sc.Scan() {
		t.Fatalf("unexpected trailing line: %s", sc.Bytes())
	}

	// New traffic lands on the new generation and, with the swap done,
	// the superseded generation's resolver is released from the cache.
	lr := decodeJSON[LocateResponse](t, postJSON(t, ts, "/v1/locate",
		LocateRequest{Network: "pin", Resolver: "dynamic", Points: []PointJSON{{X: 0.1, Y: 0.2}}}))
	if lr.Version != 2 {
		t.Fatalf("post-patch batch answered from version %d, want 2", lr.Version)
	}
	if lr.Results[0].Station != 0 {
		t.Fatalf("post-patch network answers station %d at its own station, want 0", lr.Results[0].Station)
	}
	if got := srv.cache.Len(); got != 1 {
		t.Fatalf("cache holds %d resolvers after the swap, want 1 (superseded epoch released)", got)
	}

	// Every stream goroutine must be gone. Idle keep-alive connections
	// hold goroutines of their own; close them so the count isolates
	// the stream pipeline (plus a generous margin for other tests'
	// stragglers winding down).
	streamResp.Body.Close()
	ts.Client().CloseIdleConnections()
	if after := waitForServeGoroutines(before, 5*time.Second); after > before+3 {
		t.Fatalf("goroutines: %d before stream, %d after — PATCH racing a stream leaks", before, after)
	}
}

// waitForServeGoroutines polls until the goroutine count returns to
// roughly base, absorbing scheduler lag.
func waitForServeGoroutines(base int, deadline time.Duration) int {
	var n int
	for end := time.Now().Add(deadline); time.Now().Before(end); {
		n = runtime.NumGoroutine()
		if n <= base+3 {
			return n
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
	return n
}
