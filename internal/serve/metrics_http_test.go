package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"regexp"
	"testing"

	"repro/internal/metrics"
)

// TestMetricsEndpointCounts drives known traffic through the server
// and asserts the exposition reports exactly it: request counts by
// route and status class, per-resolver query and latency series, the
// resolver-cache counters, the per-network gauges, and the epoch-lag
// histogram all line up with what actually happened.
func TestMetricsEndpointCounts(t *testing.T) {
	_, ts := admissionServer(t, Options{}, "m")

	locate := func(points int) {
		req := LocateRequest{Network: "m", Resolver: "exact"}
		req.Points = make([]PointJSON, points)
		resp := postJSON(t, ts, "/v1/locate", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("locate: %s", resp.Status)
		}
		resp.Body.Close()
	}
	locate(2)
	locate(2)
	locate(2)

	// One 404 for the 4xx class.
	resp := postJSON(t, ts, "/v1/locate", LocateRequest{Network: "nope", Points: []PointJSON{{}}})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown network: %s", resp.Status)
	}
	resp.Body.Close()

	samples := scrapeMetrics(t, ts)

	checks := []struct {
		name   string
		labels []metrics.Label
		want   float64
	}{
		{"sinr_http_requests_total", []metrics.Label{metrics.L("route", "locate"), metrics.L("code", "2xx")}, 3},
		{"sinr_http_requests_total", []metrics.Label{metrics.L("route", "locate"), metrics.L("code", "4xx")}, 1},
		{"sinr_http_requests_total", []metrics.Label{metrics.L("route", "networks"), metrics.L("code", "2xx")}, 1},
		{"sinr_http_request_seconds_count", []metrics.Label{metrics.L("route", "locate")}, 4},
		{"sinr_locate_queries_total", []metrics.Label{metrics.L("resolver", "exact")}, 6},
		{"sinr_resolve_seconds_count", []metrics.Label{metrics.L("resolver", "exact")}, 3},
		{"sinr_resolver_cache_misses_total", nil, 1},
		{"sinr_resolver_cache_hits_total", nil, 2},
		{"sinr_resolver_cache_entries", nil, 1},
		{"sinr_network_stations", []metrics.Label{metrics.L("network", "m")}, 8},
		{"sinr_network_version", []metrics.Label{metrics.L("network", "m")}, 1},
		{"sinr_locate_epoch_lag_count", nil, 3},
		// The scrape request itself is mid-flight while the document is
		// written, so the gauge reads exactly 1.
		{"sinr_http_inflight", nil, 1},
		{"sinr_admission_queued", nil, 0},
	}
	for _, c := range checks {
		if v := mustValue(t, samples, c.name, c.labels...); v != c.want {
			t.Errorf("%s%v = %g, want %g", c.name, c.labels, v, c.want)
		}
	}

	// Steady state: every lag observation landed in the le="0" bucket.
	buckets := metrics.Buckets(samples, "sinr_locate_epoch_lag")
	if len(buckets) == 0 || buckets[0].LE != 0 || buckets[0].Count != 3 {
		t.Errorf("epoch lag buckets = %v, want le=0 count=3 first", buckets)
	}

	// The runtime gauges ride along on every scrape.
	if v := mustValue(t, samples, "go_goroutines"); v <= 0 {
		t.Errorf("go_goroutines = %g, want > 0", v)
	}

	// The scrape itself is instrumented: a second scrape sees the first.
	again := scrapeMetrics(t, ts)
	if v := mustValue(t, again, "sinr_http_requests_total",
		metrics.L("route", "metrics"), metrics.L("code", "2xx")); v != 1 {
		t.Errorf("metrics route counter = %g after one scrape, want 1", v)
	}
}

// TestMetricsLatencyBucketsMonotone sanity-checks the histogram shape
// on the wire: cumulative bucket counts are non-decreasing and the
// +Inf bucket equals the series count.
func TestMetricsLatencyBucketsMonotone(t *testing.T) {
	_, ts := admissionServer(t, Options{}, "m")
	for i := 0; i < 5; i++ {
		resp := postJSON(t, ts, "/v1/locate",
			LocateRequest{Network: "m", Resolver: "exact", Points: []PointJSON{{X: 1}}})
		resp.Body.Close()
	}
	samples := scrapeMetrics(t, ts)
	buckets := metrics.Buckets(samples, "sinr_http_request_seconds", metrics.L("route", "locate"))
	if len(buckets) == 0 {
		t.Fatal("no latency buckets for route=locate")
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i].Count < buckets[i-1].Count {
			t.Fatalf("bucket counts not cumulative: %v", buckets)
		}
	}
	if total := buckets[len(buckets)-1].Count; total != 5 {
		t.Fatalf("+Inf bucket = %g, want 5", total)
	}
	count := mustValue(t, samples, "sinr_http_request_seconds_count", metrics.L("route", "locate"))
	if count != buckets[len(buckets)-1].Count {
		t.Fatalf("series count %g != +Inf bucket %g", count, buckets[len(buckets)-1].Count)
	}
	// The server-side median of five sub-second requests is a sane
	// sub-second number — the estimator sinrload uses on scrapes.
	if p50 := metrics.BucketQuantile(0.5, buckets); !(p50 >= 0 && p50 <= 10) {
		t.Fatalf("p50 estimate %g out of range", p50)
	}
}

// TestMetricsMethodNotAllowed: the exposition is GET-only.
func TestMetricsMethodNotAllowed(t *testing.T) {
	_, ts := admissionServer(t, Options{})
	resp, err := ts.Client().Post(ts.URL+"/metrics", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metrics: %s, want 405", resp.Status)
	}
}

// TestAccessLogAndRequestID: with an access logger configured every
// response carries an X-Request-Id and emits one structured log line
// whose fields match the request; without one, no ID header is set.
func TestAccessLogAndRequestID(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	_, ts := admissionServer(t, Options{AccessLog: logger}, "m")

	resp := postJSON(t, ts, "/v1/locate",
		LocateRequest{Network: "m", Resolver: "exact", Points: []PointJSON{{X: 1}}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("locate: %s", resp.Status)
	}
	id := resp.Header.Get("X-Request-Id")
	resp.Body.Close()
	if !regexp.MustCompile(`^[0-9a-f]{8}-\d{6}$`).MatchString(id) {
		t.Fatalf("X-Request-Id %q does not match <hex8>-<seq6>", id)
	}

	type line struct {
		Msg    string `json:"msg"`
		ID     string `json:"id"`
		Method string `json:"method"`
		Path   string `json:"path"`
		Route  string `json:"route"`
		Status int    `json:"status"`
	}
	var got *line
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for sc.Scan() {
		var l line
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad log line %s: %v", sc.Bytes(), err)
		}
		if l.ID == id {
			got = &l
			break
		}
	}
	if got == nil {
		t.Fatalf("no log line with id %s in %q", id, buf.String())
	}
	if got.Msg != "request" || got.Method != http.MethodPost ||
		got.Path != "/v1/locate" || got.Route != "locate" || got.Status != http.StatusOK {
		t.Fatalf("log line %+v", got)
	}

	// Logging off: no ID header.
	_, plain := admissionServer(t, Options{}, "p")
	resp = postJSON(t, plain, "/v1/locate",
		LocateRequest{Network: "p", Resolver: "exact", Points: []PointJSON{{X: 1}}})
	if h := resp.Header.Get("X-Request-Id"); h != "" {
		t.Fatalf("X-Request-Id %q set without access logging", h)
	}
	resp.Body.Close()
}
