package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/geom"
)

func TestSpecNormalize(t *testing.T) {
	// The deprecated parallel Powers array folds into per-station
	// fields, default powers (1) zero out, and a zero schedule policy
	// drops — so every way of writing the same network hashes alike.
	a := &NetworkSpec{
		Name:     "n",
		Stations: []SpecStation{{X: 1}, {X: 2}},
		Noise:    0.1, Beta: 2,
		Powers:   []float64{1, 3},
		Schedule: &SchedulePolicy{},
	}
	b := &NetworkSpec{
		Name:     "n",
		Stations: []SpecStation{{X: 1, Power: 1}, {X: 2, Power: 3}},
		Noise:    0.1, Beta: 2,
	}
	ha, err := a.Hash()
	if err != nil {
		t.Fatal(err)
	}
	hb, err := b.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Fatalf("equivalent specs hash differently:\n%s\n%s", ha, hb)
	}
	if a.Powers != nil || a.Schedule != nil || a.Stations[1].Power != 3 || a.Stations[0].Power != 0 {
		t.Fatalf("normalization left %+v", a)
	}

	bad := &NetworkSpec{Name: "n", Stations: []SpecStation{{X: 1}}, Powers: []float64{1, 2}}
	if err := bad.Normalize(); err == nil {
		t.Fatal("powers/stations length mismatch accepted")
	}
	if err := (&NetworkSpec{Stations: []SpecStation{{X: 1}}}).Normalize(); err == nil {
		t.Fatal("missing name accepted")
	}
	if err := (&NetworkSpec{Name: "n", Resolver: "bogus"}).Normalize(); err == nil {
		t.Fatal("unknown resolver accepted")
	}
	if err := (&NetworkSpec{Name: "n", Schedule: &SchedulePolicy{Order: "bogus"}}).Normalize(); err == nil {
		t.Fatal("unknown schedule order accepted")
	}
}

func TestDiffStations(t *testing.T) {
	a := SpecStation{X: 0, Y: 0}
	b := SpecStation{X: 1, Y: 0}
	c := SpecStation{X: 2, Y: 0}
	d := SpecStation{X: 3, Y: 0}

	// Identical lists: an empty delta.
	delta, ok := diffStations([]SpecStation{a, b}, []SpecStation{a, b})
	if !ok || len(delta.SetPower)+len(delta.Remove)+len(delta.Add) != 0 {
		t.Fatalf("identical lists: delta %+v ok=%v", delta, ok)
	}

	// Power drift only: SetPower, no membership change.
	b2 := b
	b2.Power = 5
	delta, ok = diffStations([]SpecStation{a, b}, []SpecStation{a, b2})
	if !ok || len(delta.Remove) != 0 || len(delta.Add) != 0 || len(delta.SetPower) != 1 {
		t.Fatalf("power drift: delta %+v ok=%v", delta, ok)
	}
	if delta.SetPower[0].Station != 1 || delta.SetPower[0].Power != 5 {
		t.Fatalf("power drift targeted %+v", delta.SetPower[0])
	}

	// Remove middle, append new: survivors keep order, tail appends.
	delta, ok = diffStations([]SpecStation{a, b, c}, []SpecStation{a, c, d})
	if !ok {
		t.Fatal("remove+append not delta-shaped")
	}
	if len(delta.Remove) != 1 || delta.Remove[0] != 1 {
		t.Fatalf("remove = %v, want [1]", delta.Remove)
	}
	if len(delta.Add) != 1 || delta.Add[0].Pos != geom.Pt(3, 0) {
		t.Fatalf("add = %+v", delta.Add)
	}

	// A reorder is still delta-shaped when the displaced stations can
	// ride as trailing additions: keep c, remove a and b, re-add a.
	delta, ok = diffStations([]SpecStation{a, b, c}, []SpecStation{c, a})
	if !ok || len(delta.Remove) != 2 || len(delta.Add) != 1 || delta.Add[0].Pos != geom.Pt(0, 0) {
		t.Fatalf("reorder: delta %+v ok=%v", delta, ok)
	}

	// But when nothing survives in place, a rebuild is the answer.
	if _, ok = diffStations([]SpecStation{a, b, c}, []SpecStation{d, a}); ok {
		t.Fatal("no-survivor diff reported delta-shaped")
	}

	// Duplicate positions match in order.
	delta, ok = diffStations([]SpecStation{a, a}, []SpecStation{a, a, a})
	if !ok || len(delta.Remove) != 0 || len(delta.Add) != 1 {
		t.Fatalf("duplicate positions: delta %+v ok=%v", delta, ok)
	}
}

func getSpec(t *testing.T, ts *httptest.Server, name string) (*http.Response, []byte) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/v1/networks/" + name)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestSpecReadbackRoundTrip(t *testing.T) {
	srv := NewServer(Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	spec := NetworkSpec{
		Name:     "rt",
		Stations: []SpecStation{{X: 0, Y: 0}, {X: 1, Y: 1, Power: 2}},
		Noise:    0.05, Beta: 2, Resolver: "exact",
		Schedule: &SchedulePolicy{Order: "id"},
	}
	want, err := spec.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	resp := postJSON(t, ts, "/v1/networks", spec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register: %s", resp.Status)
	}
	resp.Body.Close()

	got, body := getSpec(t, ts, "rt")
	if got.StatusCode != http.StatusOK {
		t.Fatalf("readback: %s", got.Status)
	}
	if !bytes.Equal(body, want) {
		t.Fatalf("readback not byte-stable:\n got %s\nwant %s", body, want)
	}
	if v := got.Header.Get("Sinr-Network-Version"); v != "1" {
		t.Fatalf("version header = %q", v)
	}
	if h := got.Header.Get("Sinr-Spec-Hash"); h != SpecHash(want) {
		t.Fatalf("hash header = %q, want %q", h, SpecHash(want))
	}

	// The deprecated wire shape (parallel powers array) reads back in
	// canonical form — same bytes as the per-station equivalent.
	legacy := `{"name":"rt2","stations":[{"x":0,"y":0},{"x":1,"y":1}],"noise":0.05,"beta":2,"powers":[1,2]}`
	resp, err = ts.Client().Post(ts.URL+"/v1/networks", "application/json", strings.NewReader(legacy))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	canonical := NetworkSpec{
		Name:     "rt2",
		Stations: []SpecStation{{X: 0, Y: 0}, {X: 1, Y: 1, Power: 2}},
		Noise:    0.05, Beta: 2,
	}
	want, err = canonical.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if _, body = getSpec(t, ts, "rt2"); !bytes.Equal(body, want) {
		t.Fatalf("legacy shape readback:\n got %s\nwant %s", body, want)
	}

	// Unknown name: 404.
	if resp, _ := getSpec(t, ts, "nope"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown network readback: %s", resp.Status)
	}
}

func TestApplySpecConvergence(t *testing.T) {
	srv := NewServer(Options{})
	stations := testStations(t, 8, 11)

	spec := &NetworkSpec{Name: "c", Noise: 0.01, Beta: 2}
	for _, p := range stations {
		spec.Stations = append(spec.Stations, SpecStation{X: p.X, Y: p.Y})
	}
	res, err := srv.ApplySpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != SpecCreated || res.Version != 1 {
		t.Fatalf("first apply = %+v", res)
	}

	// Idempotent: the same spec converges to unchanged, same version.
	again := *spec
	res, err = srv.ApplySpec(&again)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != SpecUnchanged || res.Version != 1 {
		t.Fatalf("re-apply = %+v", res)
	}

	// Station drift rides the PATCH path.
	edited := *spec
	edited.Stations = append([]SpecStation(nil), spec.Stations...)
	edited.Stations[2].Power = 4
	edited.Stations = append(edited.Stations, SpecStation{X: 9, Y: 9})
	res, err = srv.ApplySpec(&edited)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != SpecPatched || res.Version != 2 || res.Stations != len(stations)+1 {
		t.Fatalf("edited apply = %+v", res)
	}

	// Metadata-only drift also patches (no engine churn).
	meta := edited
	meta.Resolver = "exact"
	res, err = srv.ApplySpec(&meta)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != SpecPatched || res.Version != 3 || res.Resolver != "exact" {
		t.Fatalf("metadata apply = %+v", res)
	}

	// Physics drift forces a rebuild.
	phys := meta
	phys.Beta = 3
	res, err = srv.ApplySpec(&phys)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != SpecReplaced || res.Version != 4 {
		t.Fatalf("physics apply = %+v", res)
	}

	// The converged state equals a from-scratch build of the final
	// spec: identical canonical readback and identical served answers.
	fresh := NewServer(Options{})
	scratch := phys
	if _, err := fresh.ApplySpec(&scratch); err != nil {
		t.Fatal(err)
	}
	gotJSON, _, _ := srv.NetworkSpecJSON("c")
	wantJSON, _, _ := fresh.NetworkSpecJSON("c")
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatalf("converged spec differs from scratch build:\n got %s\nwant %s", gotJSON, wantJSON)
	}
	tsA := httptest.NewServer(srv)
	defer tsA.Close()
	tsB := httptest.NewServer(fresh)
	defer tsB.Close()
	req := LocateRequest{Network: "c", Resolver: "exact"}
	for _, p := range testStations(t, 32, 12) {
		req.Points = append(req.Points, PointJSON{X: p.X, Y: p.Y})
	}
	outA := decodeJSON[LocateResponse](t, postJSON(t, tsA, "/v1/locate", req))
	outB := decodeJSON[LocateResponse](t, postJSON(t, tsB, "/v1/locate", req))
	if len(outA.Results) == 0 || len(outA.Results) != len(outB.Results) {
		t.Fatalf("result lengths %d vs %d", len(outA.Results), len(outB.Results))
	}
	for i := range outA.Results {
		if outA.Results[i] != outB.Results[i] {
			t.Fatalf("answer %d: converged %+v, scratch %+v", i, outA.Results[i], outB.Results[i])
		}
	}
}

// TestDeleteEvictsEverything is the create→delete→scrape regression:
// deleting a network must evict its resolver and schedule cache
// entries and drop its per-network gauges from /metrics — without the
// unregister, gauges for dead networks would dangle forever.
func TestDeleteEvictsEverything(t *testing.T) {
	srv := NewServer(Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	stations := testStations(t, 8, 21)
	resp := postJSON(t, ts, "/v1/networks", registerReq("doomed", stations, 0.01, 2))
	resp.Body.Close()

	// Populate both caches.
	resp = postJSON(t, ts, "/v1/locate", LocateRequest{
		Network: "doomed", Resolver: "exact", Points: []PointJSON{{X: 0.5, Y: 0.5}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("locate: %s", resp.Status)
	}
	resp.Body.Close()
	resp = postJSON(t, ts, "/v1/networks/doomed/schedule", ScheduleRequest{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("schedule: %s", resp.Status)
	}
	resp.Body.Close()
	if srv.cache.Len() == 0 || srv.schedules.Len() == 0 {
		t.Fatalf("caches not populated: resolvers %d, schedules %d", srv.cache.Len(), srv.schedules.Len())
	}

	scrape := func() string {
		t.Helper()
		r, err := ts.Client().Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		b, err := io.ReadAll(r.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if !strings.Contains(scrape(), `sinr_network_stations{network="doomed"} 8`) {
		t.Fatal("per-network gauge missing before delete")
	}

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/networks/doomed", nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	ack := decodeJSON[DeleteResponse](t, dresp)
	if !ack.Deleted || ack.Name != "doomed" {
		t.Fatalf("delete ack = %+v", ack)
	}

	if got := scrape(); strings.Contains(got, `network="doomed"`) {
		t.Fatalf("per-network series survived delete:\n%s", got)
	}
	if srv.cache.Len() != 0 {
		t.Fatalf("%d resolver cache entries survived delete", srv.cache.Len())
	}
	if srv.schedules.Len() != 0 {
		t.Fatalf("%d schedule cache entries survived delete", srv.schedules.Len())
	}

	// The name is gone from every read surface.
	if r, _ := getSpec(t, ts, "doomed"); r.StatusCode != http.StatusNotFound {
		t.Fatalf("spec readback after delete: %s", r.Status)
	}
	resp = postJSON(t, ts, "/v1/locate", LocateRequest{Network: "doomed", Points: []PointJSON{{}}})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("locate after delete: %s", resp.Status)
	}
	resp.Body.Close()

	// Deleting again is a 404, not a panic.
	dresp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if dresp.StatusCode != http.StatusNotFound {
		t.Fatalf("double delete: %s", dresp.Status)
	}
	dresp.Body.Close()

	// Re-creating the name re-registers fresh gauges.
	resp = postJSON(t, ts, "/v1/networks", registerReq("doomed", stations[:4], 0.01, 2))
	resp.Body.Close()
	if !strings.Contains(scrape(), `sinr_network_stations{network="doomed"} 4`) {
		t.Fatal("per-network gauge missing after re-create")
	}
}

// TestPatchKeepsSpecReadbackFresh: an imperative PATCH delta must
// update the stored declarative identity, so a GET readback describes
// the post-delta network and a convergent ApplySpec of that readback
// is a no-op.
func TestPatchKeepsSpecReadbackFresh(t *testing.T) {
	srv := NewServer(Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	stations := testStations(t, 6, 31)
	resp := postJSON(t, ts, "/v1/networks", registerReq("p", stations, 0.01, 2))
	resp.Body.Close()

	body, _ := json.Marshal(NetworkDeltaRequest{
		Remove: []int{0},
		Add:    []DeltaStationJSON{{X: 7, Y: 7, Power: 3}},
	})
	preq, err := http.NewRequest(http.MethodPatch, ts.URL+"/v1/networks/p", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	presp, err := ts.Client().Do(preq)
	if err != nil {
		t.Fatal(err)
	}
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("patch: %s", presp.Status)
	}
	presp.Body.Close()

	_, bodyJSON := getSpec(t, ts, "p")
	var got NetworkSpec
	if err := json.Unmarshal(bodyJSON, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Stations) != len(stations) {
		t.Fatalf("readback has %d stations, want %d", len(got.Stations), len(stations))
	}
	last := got.Stations[len(got.Stations)-1]
	if last.X != 7 || last.Y != 7 || last.Power != 3 {
		t.Fatalf("appended station readback = %+v", last)
	}

	// Re-applying the readback converges to unchanged.
	res, err := srv.ApplySpec(&got)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != SpecUnchanged {
		t.Fatalf("re-apply of readback = %+v", res)
	}
}

func TestSchedulePolicyDefaults(t *testing.T) {
	srv := NewServer(Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	spec := registerReq("pol", testStations(t, 6, 41), 0.01, 2)
	spec.Schedule = &SchedulePolicy{Order: "id", LinkLen: 2}
	resp := postJSON(t, ts, "/v1/networks", spec)
	resp.Body.Close()

	// An empty request inherits the declared policy...
	out := decodeJSON[ScheduleResponse](t, postJSON(t, ts, "/v1/networks/pol/schedule", ScheduleRequest{}))
	if out.Order != "id" || out.LinkLen != 2 {
		t.Fatalf("policy defaults not applied: %+v", out)
	}
	// ...and explicit knobs still win.
	out = decodeJSON[ScheduleResponse](t, postJSON(t, ts, "/v1/networks/pol/schedule", ScheduleRequest{Order: "short"}))
	if out.Order != "short" || out.LinkLen != 2 {
		t.Fatalf("explicit knob lost to policy: %+v", out)
	}
}
