// Package serve is the query-serving subsystem: a long-running HTTP
// service that owns a registry of named networks, builds query
// resolvers (internal/resolve) on demand behind a single-flight LRU
// cache, and answers point-location traffic in batches and streams
// through any of the four backends.
//
// # Endpoints
//
//	POST   /v1/networks        register or replace a named network (NetworkSpec body)
//	GET    /v1/networks        list registered networks
//	GET    /v1/networks/{name} canonical spec readback (byte-stable; version + hash headers)
//	DELETE /v1/networks/{name} remove a network, its cached resolvers/schedules, and its gauges
//	PATCH  /v1/networks/{name} apply a station delta (add/remove/set_power)
//	POST   /v1/locate          JSON batch of points -> exact answers
//	POST   /v1/locate/stream   NDJSON points in -> NDJSON answers out
//	GET    /healthz            liveness probe
//
// # Declarative networks
//
// NetworkSpec (spec.go) is the one canonical description of a
// network; the server stores each generation's normalized spec, its
// canonical serialization, and its content hash. GET
// /v1/networks/{name} returns those stored bytes verbatim — creating
// a network from a spec and reading it back is byte-identical — with
// the generation in a Sinr-Network-Version header and the hash in
// Sinr-Spec-Hash. ApplySpec converges a name toward a spec with the
// cheapest operation (no-op on hash match, the delta path for
// station/power/metadata drift, rebuild for physics changes), which
// is what the reconcile controller (internal/reconcile) drives.
//
// # Resolver selection
//
// Every query names its backend through the "resolver" field of the
// /v1/locate body (or the resolver query parameter of the stream
// endpoint): "exact" (direct SINR evaluation), "locator" (the
// Theorem 3 structure with exact fallback), "voronoi" (nearest-
// candidate + one SINR check), "udg" (the graph-based baseline) or
// "dynamic" (the current dynamic-engine epoch snapshot: exact answers,
// O(1) resolver turnover per PATCH instead of a backend rebuild).
// A network registration may set its own default backend (and a
// default UDG radius) via the same "resolver"/"radius" fields; a
// request that names neither uses the network's default, which is
// "locator" when unset — the wire behavior of the pre-resolver API.
// "eps" applies to the locator backend and "radius" to the UDG
// backend; knobs irrelevant to the chosen backend are ignored, and
// a zero UDG radius is derived via resolve.DefaultUDGRadius.
//
// # Hot swap and deltas
//
// Re-registering a name atomically replaces the network snapshot
// (stations, default backend, defaults) and bumps its version.
// PATCH /v1/networks/{name} mutates it instead: the delta document
// (internal/dynamic wire shape: set_power, remove, add — pre-delta
// indices throughout) flows through the network's dynamic engine,
// which patches its spatial structures copy-on-write below the churn
// threshold and rebuilds amortized above it, and the resulting epoch
// snapshot is swapped in as the next version. The response echoes the
// epoch and which apply path ran; the Sinr-Network-Version header of
// streams (and the "version" of batch replies) reflects epochs, so
// clients can pin any answer to the exact station set that produced
// it.
// Queries capture the snapshot once at the start of a request, so
// in-flight batches and streams finish against the resolver they
// started with while new requests see the new network — mobility
// updates never drop traffic. Resolvers are cached per (network,
// version, kind, eps, radius); concurrent first requests for the same
// key share one build (single-flight — the O(n^3/eps) locator build
// is the expensive case), and the cache evicts least-recently-used
// resolvers beyond its capacity, which also ages out resolvers of
// replaced network versions.
//
// # Answer convention
//
// Served answers use the batch sentinel convention: "station" is the
// index of the heard station, or NoStationHeard (-1) when no station
// is heard — the JSON shape of core.NoStationHeard. Batch and stream
// answers are exact for every backend (the locator resolves its
// uncertainty rings via exact fallback), so "exact", "locator" and
// "voronoi" are identical to Network.HeardBy on every point, while
// "udg" answers its own graph-based reception model.
//
// A stream whose input contains a malformed line is truncated: the
// answers for the points accepted so far are followed by one trailing
// NDJSON object of the shape {"error": "..."} (the 200 status is
// already on the wire by then). Clients should treat any line with an
// "error" key as a truncation marker, not an answer.
package serve
