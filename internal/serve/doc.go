// Package serve is the query-serving subsystem: a long-running HTTP
// service that owns a registry of named networks, builds Theorem 3
// locators on demand behind a single-flight LRU cache, and answers
// point-location traffic in batches and streams.
//
// # Endpoints
//
//	POST /v1/networks       register or replace a named network
//	GET  /v1/networks       list registered networks
//	POST /v1/locate         JSON batch of points -> exact answers
//	POST /v1/locate/stream  NDJSON points in -> NDJSON answers out
//	GET  /healthz           liveness probe
//
// # Hot swap
//
// Re-registering a name atomically replaces the network snapshot and
// bumps its version. Queries capture the snapshot once at the start of
// a request, so in-flight batches and streams finish against the
// locator they started with while new requests see the new network —
// mobility updates never drop traffic. Locators are cached per
// (network, version, eps); concurrent first requests for the same key
// share one O(n^3/eps) build (single-flight), and the cache evicts
// least-recently-used locators beyond its capacity, which also ages
// out locators of replaced network versions.
//
// # Answer convention
//
// Served answers use the batch sentinel convention: "station" is the
// index of the heard station, or NoStationHeard (-1) when no station
// is heard — the JSON shape of core.NoStationHeard. Batch and stream
// answers are exact (uncertainty rings are resolved by one direct SINR
// evaluation), so they are identical to Network.HeardBy on every
// point.
//
// A stream whose input contains a malformed line is truncated: the
// answers for the points accepted so far are followed by one trailing
// NDJSON object of the shape {"error": "..."} (the 200 status is
// already on the wire by then). Clients should treat any line with an
// "error" key as a truncation marker, not an answer.
package serve
