package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/resolve"
	"repro/internal/workload"
)

// swapStations returns the station set of generation v — each
// generation is a different geometry, so answers distinguish versions.
func swapStations(t *testing.T, v uint64) []geom.Point {
	t.Helper()
	return testStations(t, 5, int64(4000+v))
}

// swapNet rebuilds generation v's network exactly as the server does
// (the wire round-trips float64 coordinates losslessly).
func swapNet(t *testing.T, v uint64) *core.Network {
	t.Helper()
	net, err := core.NewUniform(swapStations(t, v), 0.01, 3)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// TestStreamHotSwapConsistency is the spatial-index/hot-swap race
// test: goroutines stream locator-backend queries while the main
// goroutine keeps replacing the network. Every stream must answer
// entirely from the snapshot it started on — the echoed
// Sinr-Network-Version pins which generation that was, and every
// answer line must equal the exact ground truth of that generation
// (the locator backend resolves H? exactly, so any index/network
// mismatch would surface as a wrong station). Run with -race.
func TestStreamHotSwapConsistency(t *testing.T) {
	srv := NewServer(Options{Workers: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const (
		generations = 6
		streams     = 4
		queries     = 200
	)

	// Ground truth per generation, computed before any traffic.
	truth := make(map[uint64][]int, generations)
	gen := workload.NewGenerator(999)
	pts := gen.QueryPoints(queries, geom.NewBox(geom.Pt(-6, -6), geom.Pt(6, 6)))
	var payload bytes.Buffer
	for _, p := range pts {
		fmt.Fprintf(&payload, "{\"x\":%g,\"y\":%g}\n", p.X, p.Y)
	}
	for v := uint64(1); v <= generations; v++ {
		net := swapNet(t, v)
		ans := make([]int, len(pts))
		for i, p := range pts {
			ans[i] = NoStationHeard
			if idx, ok := net.HeardBy(p); ok {
				ans[i] = idx
			}
		}
		truth[v] = ans
	}

	register := func(v uint64) {
		resp := postJSON(t, ts, "/v1/networks", registerReq("swap", swapStations(t, v), 0.01, 3))
		got := decodeJSON[NetworkResponse](t, resp)
		if got.Version != v {
			t.Errorf("registered generation %d got version %d", v, got.Version)
		}
	}
	register(1)

	var wg sync.WaitGroup
	// Roomy enough for every goroutine's worst case (several errors
	// per round), so a broadly failing server reports instead of
	// deadlocking the senders.
	errs := make(chan error, streams*3*4)
	for s := 0; s < streams; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker opens streams back to back while swaps are
			// happening; every stream is checked against the snapshot
			// version it reports.
			for round := 0; round < 3; round++ {
				resp, err := ts.Client().Post(
					ts.URL+"/v1/locate/stream?network=swap&resolver=locator&eps=0.3",
					"application/x-ndjson", bytes.NewReader(payload.Bytes()))
				if err != nil {
					errs <- err
					return
				}
				v, err := strconv.ParseUint(resp.Header.Get("Sinr-Network-Version"), 10, 64)
				if err != nil {
					resp.Body.Close()
					errs <- fmt.Errorf("bad version header %q: %v", resp.Header.Get("Sinr-Network-Version"), err)
					return
				}
				want, ok := truth[v]
				if !ok {
					resp.Body.Close()
					errs <- fmt.Errorf("stream reports unknown version %d", v)
					return
				}
				sc := bufio.NewScanner(resp.Body)
				i := 0
				for sc.Scan() {
					var res LocateResult
					if err := json.Unmarshal(sc.Bytes(), &res); err != nil {
						errs <- fmt.Errorf("line %d: %v (%s)", i, err, sc.Bytes())
						break
					}
					if i >= len(want) {
						errs <- fmt.Errorf("version %d: more answers than queries", v)
						break
					}
					if res.Station != want[i] {
						errs <- fmt.Errorf("version %d, point %d: got station %d, want %d — answer does not match the stream's snapshot",
							v, i, res.Station, want[i])
						break
					}
					i++
				}
				resp.Body.Close()
				if i != len(want) {
					errs <- fmt.Errorf("version %d: stream truncated at %d/%d", v, i, len(want))
					return
				}
			}
		}()
	}

	// Hot-swap through the remaining generations while the streams run.
	for v := uint64(2); v <= generations; v++ {
		register(v)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestCacheEvictionLifecycle covers the resolver cache's eviction
// rules directly: in-flight builds survive a capacity squeeze, failed
// builds are retried, and invalidation drops only stale generations.
func TestCacheEvictionLifecycle(t *testing.T) {
	c := newResolverCache(1)

	// An in-flight build must not be evicted while a second key churns
	// the LRU past capacity.
	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	slowKey := cacheKey{name: "a", version: 1}
	go func() {
		defer wg.Done()
		_, _ = c.get(slowKey, func() (resolve.Resolver, error) {
			close(started)
			<-release
			return nil, nil
		})
	}()
	<-started
	for i := 0; i < 3; i++ {
		if _, err := c.get(cacheKey{name: "b", version: uint64(i)}, func() (resolve.Resolver, error) {
			return nil, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() < 2 {
		t.Fatalf("in-flight build was evicted: cache len %d", c.Len())
	}
	close(release)
	wg.Wait()

	// Once complete, the over-cap survivors age out on the next insert.
	if _, err := c.get(cacheKey{name: "c", version: 9}, func() (resolve.Resolver, error) {
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	if c.Len() > 1 {
		t.Fatalf("completed entries not evicted: cache len %d, cap 1", c.Len())
	}

	// A failed build is dropped so the next get retries it.
	fails := 0
	for i := 0; i < 2; i++ {
		_, _ = c.get(cacheKey{name: "err", version: 1}, func() (resolve.Resolver, error) {
			fails++
			return nil, fmt.Errorf("boom")
		})
	}
	if fails != 2 {
		t.Fatalf("failed build cached: %d build calls, want 2", fails)
	}

	// invalidate removes only versions below the cutoff for the name.
	c2 := newResolverCache(8)
	for v := uint64(1); v <= 3; v++ {
		if _, err := c2.get(cacheKey{name: "n", version: v}, func() (resolve.Resolver, error) {
			return nil, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c2.get(cacheKey{name: "other", version: 1}, func() (resolve.Resolver, error) {
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	c2.invalidate("n", 3)
	if got := c2.Len(); got != 2 {
		t.Fatalf("after invalidate: cache len %d, want 2 (n@3 and other@1)", got)
	}
	builds := c2.Builds()
	if _, err := c2.get(cacheKey{name: "n", version: 3}, func() (resolve.Resolver, error) {
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	if c2.Builds() != builds {
		t.Fatal("current generation was invalidated (rebuild observed)")
	}
}

// TestHTTPEvictionRebuildsCurrentSnapshot drives eviction through the
// HTTP surface across hot swaps: old generations are invalidated on
// swap and never resurrect, and answers always follow the latest
// registration.
func TestHTTPEvictionRebuildsCurrentSnapshot(t *testing.T) {
	srv := NewServer(Options{MaxLocators: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	query := LocateRequest{Network: "evict", Points: []PointJSON{{X: 0.05, Y: -0.1}}}
	for v := uint64(1); v <= 4; v++ {
		resp := postJSON(t, ts, "/v1/networks", registerReq("evict", swapStations(t, v), 0.01, 3))
		resp.Body.Close()
		got := decodeJSON[LocateResponse](t, postJSON(t, ts, "/v1/locate", query))
		if got.Version != v {
			t.Fatalf("swap %d: answered from version %d", v, got.Version)
		}
		net := swapNet(t, v)
		want := NoStationHeard
		if idx, ok := net.HeardBy(geom.Pt(0.05, -0.1)); ok {
			want = idx
		}
		if got.Results[0].Station != want {
			t.Fatalf("swap %d: station %d, want %d", v, got.Results[0].Station, want)
		}
	}
	if got := srv.cache.Len(); got > 2 {
		t.Fatalf("cache len %d exceeds cap 2 after swaps", got)
	}
}

// TestPooledRequestScratchDoesNotLeak pins the pooled-scratch
// hygiene of the batch handler: a request with omitted point fields
// must decode them as zero, never inherit coordinates a previous
// request left in the recycled Points array.
func TestPooledRequestScratchDoesNotLeak(t *testing.T) {
	srv := NewServer(Options{Workers: 1})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	stations := []geom.Point{{X: 0, Y: 0}, {X: 0, Y: 5}}
	resp := postJSON(t, ts, "/v1/networks", registerReq("leak", stations, 0.01, 2))
	resp.Body.Close()

	net, err := core.NewUniform(stations, 0.01, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantAt := func(p geom.Point) int {
		if idx, ok := net.HeardBy(p); ok {
			return idx
		}
		return NoStationHeard
	}

	// Serial requests share the one pooled scratch. The first fills
	// the Points array with y=5 coordinates; the second omits "y"
	// entirely, which must mean y=0 — answered by station 0, not the
	// station 1 a leaked y=5 would pick.
	first := decodeJSON[LocateResponse](t, postJSON(t, ts, "/v1/locate",
		LocateRequest{Network: "leak", Points: []PointJSON{{X: 0.2, Y: 5}, {X: 0.1, Y: 4.9}}}))
	if got, want := first.Results[0].Station, wantAt(geom.Pt(0.2, 5)); got != want {
		t.Fatalf("warm-up answer %d, want %d", got, want)
	}
	var second LocateResponse
	{
		resp, err := ts.Client().Post(ts.URL+"/v1/locate", "application/json",
			bytes.NewReader([]byte(`{"network":"leak","points":[{"x":0.2}]}`)))
		if err != nil {
			t.Fatal(err)
		}
		second = decodeJSON[LocateResponse](t, resp)
	}
	if got, want := second.Results[0].Station, wantAt(geom.Pt(0.2, 0)); got != want {
		t.Fatalf("omitted-y point answered %d, want %d — pooled scratch leaked a previous request's coordinates", got, want)
	}
}
