package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/resolve"
	"repro/internal/sched"
	"repro/internal/trace"
)

// The declarative half of the v1 API: NetworkSpec is the one canonical
// description of a network, consumed identically by POST /v1/networks,
// by the reconcile controller's spec files, and read back byte-stably
// from GET /v1/networks/{name}. The server stores the canonical
// serialization (and its hash) with every generation, so "is the live
// network what this spec describes" is a string compare, not a deep
// walk — which is exactly what a polling differ needs.

// SpecStation is one station of a NetworkSpec. A zero (or omitted)
// Power means the uniform default 1.
type SpecStation struct {
	X     float64 `json:"x"`
	Y     float64 `json:"y"`
	Power float64 `json:"power,omitempty"`
}

// SchedulePolicy is a network's declared scheduling defaults: requests
// to POST /v1/networks/{name}/schedule that omit a knob inherit it
// from here before the server's own defaults apply. All fields are
// optional; the zero policy is normalized away entirely.
type SchedulePolicy struct {
	Scheduler string  `json:"scheduler,omitempty"`
	Model     string  `json:"model,omitempty"`
	Order     string  `json:"order,omitempty"`
	LinkLen   float64 `json:"link_len,omitempty"`
}

// NetworkSpec is the canonical declarative description of one network:
// the POST /v1/networks body, the reconcile controller's file format,
// and the GET /v1/networks/{name} readback. Resolver sets the
// network's default backend ("exact", "locator", "voronoi", "udg" or
// "dynamic"; empty means "locator") and Radius its default UDG
// connectivity radius (0 means derived via resolve.DefaultUDGRadius).
//
// Powers is the deprecated pre-spec wire shape (one parallel array
// instead of per-station fields); Normalize folds it into the
// per-station Power fields, so old clients keep working and the
// canonical form has a single source of truth.
type NetworkSpec struct {
	Name     string          `json:"name"`
	Stations []SpecStation   `json:"stations"`
	Noise    float64         `json:"noise"`
	Beta     float64         `json:"beta"`
	Powers   []float64       `json:"powers,omitempty"` // Deprecated: use SpecStation.Power.
	Alpha    float64         `json:"alpha,omitempty"`
	Resolver string          `json:"resolver,omitempty"`
	Radius   float64         `json:"radius,omitempty"`
	Schedule *SchedulePolicy `json:"schedule,omitempty"`
}

// NetworkRequest is the deprecated name of the POST /v1/networks body.
//
// Deprecated: use NetworkSpec. The wire shape is unchanged — the old
// {x,y} station objects parse into SpecStation with the default power,
// and the parallel Powers array still folds in — so existing clients
// need no changes.
type NetworkRequest = NetworkSpec

func finiteField(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// effPower maps the wire's "zero means default" power convention to
// the physical value.
func effPower(p float64) float64 {
	if p == 0 {
		return 1
	}
	return p
}

// Normalize validates the spec and rewrites it into canonical form:
// the deprecated Powers array folds into per-station Power fields,
// powers equal to the uniform default 1 are zeroed (so explicit and
// omitted defaults hash alike), a nil station list becomes empty, and
// an all-zero SchedulePolicy is dropped. Normalize is idempotent; a
// normalized spec marshals to its canonical JSON.
func (sp *NetworkSpec) Normalize() error {
	if sp.Name == "" {
		return errors.New("network name is required")
	}
	if sp.Powers != nil {
		if len(sp.Powers) != len(sp.Stations) {
			return fmt.Errorf("%d powers for %d stations", len(sp.Powers), len(sp.Stations))
		}
		for i, p := range sp.Powers {
			sp.Stations[i].Power = p
		}
		sp.Powers = nil
	}
	if sp.Stations == nil {
		sp.Stations = []SpecStation{}
	}
	for i := range sp.Stations {
		st := &sp.Stations[i]
		if !finiteField(st.X) || !finiteField(st.Y) {
			return fmt.Errorf("station %d has a non-finite coordinate", i)
		}
		if st.Power < 0 || !finiteField(st.Power) {
			return fmt.Errorf("station %d power must be a non-negative finite number, got %g", i, st.Power)
		}
		if st.Power == 1 {
			st.Power = 0
		}
	}
	if !finiteField(sp.Noise) || !finiteField(sp.Beta) || !finiteField(sp.Alpha) {
		return errors.New("noise, beta and alpha must be finite numbers")
	}
	if _, err := resolve.ParseKind(sp.Resolver); err != nil {
		return err
	}
	if sp.Radius < 0 || !finiteField(sp.Radius) {
		return fmt.Errorf("radius must be a non-negative finite number, got %g", sp.Radius)
	}
	if sp.Schedule != nil {
		if *sp.Schedule == (SchedulePolicy{}) {
			sp.Schedule = nil
		} else if err := sp.Schedule.validate(); err != nil {
			return err
		}
	}
	return nil
}

func (p *SchedulePolicy) validate() error {
	if _, err := sched.ParseKind(p.Scheduler); err != nil {
		return err
	}
	switch p.Model {
	case "", "sinr", "protocol":
	default:
		return fmt.Errorf("unknown schedule model %q (want sinr or protocol)", p.Model)
	}
	switch p.Order {
	case "", "short", "long", "id":
	default:
		return fmt.Errorf("unknown schedule order %q (want short, long or id)", p.Order)
	}
	if p.LinkLen < 0 || !finiteField(p.LinkLen) {
		return fmt.Errorf("schedule link_len must be a non-negative finite number, got %g", p.LinkLen)
	}
	return nil
}

// CanonicalJSON normalizes the spec and returns its canonical
// serialization — the exact bytes GET /v1/networks/{name} reads back
// after this spec is applied, and the bytes whose hash the reconcile
// differ compares.
func (sp *NetworkSpec) CanonicalJSON() ([]byte, error) {
	if err := sp.Normalize(); err != nil {
		return nil, err
	}
	return json.Marshal(sp)
}

// SpecHash returns the content hash of a canonical spec serialization.
func SpecHash(canonical []byte) string {
	sum := sha256.Sum256(canonical)
	return hex.EncodeToString(sum[:])
}

// Hash normalizes the spec and returns its content hash.
func (sp *NetworkSpec) Hash() (string, error) {
	b, err := sp.CanonicalJSON()
	if err != nil {
		return "", err
	}
	return SpecHash(b), nil
}

// structuralEqual reports whether two normalized specs agree on the
// physics parameters the dynamic engine is constructed with. Anything
// else (stations, powers, resolver, radius, schedule policy) can
// change on the PATCH path; these cannot.
func structuralEqual(a, b *NetworkSpec) bool {
	return a.Noise == b.Noise && a.Beta == b.Beta && a.Alpha == b.Alpha
}

// diffStations computes the dynamic.Delta that transforms the station
// list old into new, reporting whether such a delta exists. A delta
// removes unmatched stations (compacting survivors in order), adjusts
// survivor powers, and appends additions — so new must be "survivors
// in old order, then additions". Matching is by position (powers are
// adjustable via SetPower); the longest matchable prefix of new is
// matched greedily as a subsequence of old. An empty returned delta
// means the station lists are identical.
func diffStations(old, new []SpecStation) (dynamic.Delta, bool) {
	type pos struct{ x, y float64 }
	byPos := make(map[pos][]int, len(old))
	for i, st := range old {
		p := pos{st.X, st.Y}
		byPos[p] = append(byPos[p], i)
	}
	matched := make([]int, 0, len(new))
	last := -1
	k := 0
	for ; k < len(new); k++ {
		p := pos{new[k].X, new[k].Y}
		idxs := byPos[p]
		j := -1
		for len(idxs) > 0 {
			cand := idxs[0]
			idxs = idxs[1:]
			if cand > last {
				j = cand
				break
			}
		}
		byPos[p] = idxs
		if j < 0 {
			break
		}
		matched = append(matched, j)
		last = j
	}
	if len(matched) == 0 && len(old) > 0 && len(new) > 0 {
		// Nothing survives in place: a rebuild is at least as cheap as
		// remove-everything-add-everything through the engine.
		return dynamic.Delta{}, false
	}
	var d dynamic.Delta
	survives := make([]bool, len(old))
	for mi, j := range matched {
		survives[j] = true
		if effPower(old[j].Power) != effPower(new[mi].Power) {
			d.SetPower = append(d.SetPower, dynamic.PowerUpdate{Station: j, Power: effPower(new[mi].Power)})
		}
	}
	for j := range old {
		if !survives[j] {
			d.Remove = append(d.Remove, j)
		}
	}
	for _, st := range new[k:] {
		d.Add = append(d.Add, dynamic.Station{Pos: geom.Pt(st.X, st.Y), Power: st.Power})
	}
	return d, true
}

// respec derives the declarative identity of a post-delta generation:
// metadata and physics fields carry over from the (already normalized)
// base spec; stations and powers are re-read from the new network.
// The result is canonical — identical to what normalizing a fresh spec
// with these stations would produce.
func respec(base *NetworkSpec, net *core.Network) (*NetworkSpec, []byte, string) {
	sp := *base
	pts := net.Stations()
	stations := make([]SpecStation, len(pts))
	for i := range stations {
		p := net.Power(i)
		if p == 1 {
			p = 0
		}
		stations[i] = SpecStation{X: pts[i].X, Y: pts[i].Y, Power: p}
	}
	sp.Stations = stations
	canonical, err := json.Marshal(&sp)
	if err != nil {
		// Unreachable for a normalized base (all fields finite), but a
		// nil identity only disables readback, never serving.
		return nil, nil, ""
	}
	return &sp, canonical, SpecHash(canonical)
}

// SpecOutcome says what applying a spec did to the registry.
type SpecOutcome int

const (
	// SpecUnchanged: the live generation already matches the spec hash.
	SpecUnchanged SpecOutcome = iota
	// SpecCreated: the name was new; a network was built from scratch.
	SpecCreated
	// SpecPatched: drift was absorbed through the dynamic.Delta path
	// (station/power changes, or a metadata-only swap).
	SpecPatched
	// SpecReplaced: the network was rebuilt wholesale (physics
	// parameters changed, or the station diff was not delta-shaped).
	SpecReplaced
)

var specOutcomeNames = [...]string{"unchanged", "created", "patched", "replaced"}

// String implements fmt.Stringer — the reconcile outcome metric's
// label vocabulary.
func (o SpecOutcome) String() string {
	if int(o) >= 0 && int(o) < len(specOutcomeNames) {
		return specOutcomeNames[o]
	}
	return "unknown"
}

// SpecResult reports one ApplySpec: the outcome taken, the resulting
// generation, and the served shape.
type SpecResult struct {
	Name     string
	Outcome  SpecOutcome
	Version  uint64
	Stations int
	Resolver string
}

// ApplySpec converges the registry toward spec with the cheapest
// available operation: a no-op when the live generation's spec hash
// already matches, the dynamic.Delta PATCH path when only stations,
// powers or serving metadata drifted, and a full rebuild otherwise
// (including creation). It is idempotent — applying the same spec
// twice leaves the second call unchanged — which is what makes it a
// safe reconcile target. The imperative POST /v1/networks keeps its
// historical replace semantics (every call bumps the generation) by
// going through the force path instead.
func (s *Server) ApplySpec(spec *NetworkSpec) (SpecResult, error) {
	return s.applySpec(spec, true)
}

func (s *Server) applySpec(spec *NetworkSpec, convergent bool) (SpecResult, error) {
	canonical, err := spec.CanonicalJSON()
	if err != nil {
		return SpecResult{}, err
	}
	hash := SpecHash(canonical)
	kind, err := resolve.ParseKind(spec.Resolver)
	if err != nil {
		return SpecResult{}, err
	}

	if convergent {
		if entry, ok := s.entryFor(spec.Name); ok {
			if res, done, err := s.tryConverge(spec, canonical, hash, kind, entry); done {
				return res, err
			}
		}
	}
	return s.rebuildFromSpec(spec, canonical, hash, kind)
}

// tryConverge attempts the cheap convergence paths against an existing
// entry: unchanged (hash match) or the delta/metadata PATCH path. done
// is false when the caller must fall back to a full rebuild.
func (s *Server) tryConverge(spec *NetworkSpec, canonical []byte, hash string, kind resolve.Kind, entry *netEntry) (SpecResult, bool, error) {
	entry.mu.Lock()
	defer entry.mu.Unlock()
	old := entry.snap.Load()
	if old == nil || old.spec == nil || entry.dyn == nil {
		return SpecResult{}, false, nil
	}
	if old.specHash == hash {
		return SpecResult{
			Name: spec.Name, Outcome: SpecUnchanged, Version: old.version,
			Stations: old.net.NumStations(), Resolver: old.kind.String(),
		}, true, nil
	}
	if !structuralEqual(old.spec, spec) {
		return SpecResult{}, false, nil
	}
	delta, ok := diffStations(old.spec.Stations, spec.Stations)
	if !ok {
		return SpecResult{}, false, nil
	}
	version := old.version + 1
	next := &snapshot{
		version: version, kind: kind, radius: spec.Radius,
		spec: spec, specJSON: canonical, specHash: hash,
	}
	if len(delta.SetPower) == 0 && len(delta.Remove) == 0 && len(delta.Add) == 0 {
		// Stations identical: only serving metadata (resolver, radius,
		// schedule policy) drifted — swap the snapshot, keep the engine.
		next.net, next.epoch = old.net, old.epoch
	} else {
		es, err := entry.dyn.Apply(delta)
		if err != nil {
			// A delta the engine rejects (should not happen for a diff we
			// derived) falls back to the rebuild path rather than failing
			// the reconcile.
			return SpecResult{}, false, nil
		}
		next.net, next.epoch = es.Network(), es
	}
	entry.snap.Store(next)
	s.cache.invalidate(spec.Name, version)
	return SpecResult{
		Name: spec.Name, Outcome: SpecPatched, Version: version,
		Stations: next.net.NumStations(), Resolver: kind.String(),
	}, true, nil
}

// rebuildFromSpec builds the network from scratch and installs it as a
// new generation (creating the registry slot on first sighting).
func (s *Server) rebuildFromSpec(spec *NetworkSpec, canonical []byte, hash string, kind resolve.Kind) (SpecResult, error) {
	stations := make([]geom.Point, len(spec.Stations))
	nonUniform := false
	for i, st := range spec.Stations {
		stations[i] = geom.Pt(st.X, st.Y)
		if st.Power != 0 {
			nonUniform = true
		}
	}
	var opts []core.Option
	if nonUniform {
		powers := make([]float64, len(spec.Stations))
		for i, st := range spec.Stations {
			powers[i] = effPower(st.Power)
		}
		opts = append(opts, core.WithPowers(powers))
	}
	if spec.Alpha != 0 {
		opts = append(opts, core.WithAlpha(spec.Alpha))
	}
	net, err := core.NewNetwork(stations, spec.Noise, spec.Beta, opts...)
	if err != nil {
		return SpecResult{}, fmt.Errorf("invalid network: %w", err)
	}
	dyn, err := dynamic.New(net)
	if err != nil {
		return SpecResult{}, fmt.Errorf("invalid network: %w", err)
	}

	s.mu.Lock()
	entry, ok := s.nets[spec.Name]
	if !ok {
		entry = &netEntry{}
		if s.opt.MaxConcurrent > 0 {
			entry.sem = make(chan struct{}, s.opt.MaxConcurrent)
		}
		s.nets[spec.Name] = entry
		// First sighting of this name: publish its generation gauges
		// under s.mu so a racing DeleteNetwork cannot unregister them
		// after we register (delete holds s.mu for its unregister).
		s.m.registerNetworkGauges(spec.Name, entry)
	}
	s.mu.Unlock()

	outcome := SpecCreated
	entry.mu.Lock()
	version := uint64(1)
	if old := entry.snap.Load(); old != nil {
		version = old.version + 1
		outcome = SpecReplaced
	}
	entry.dyn = dyn
	entry.snap.Store(&snapshot{
		net: net, version: version, kind: kind, radius: spec.Radius, epoch: dyn.Snapshot(),
		spec: spec, specJSON: canonical, specHash: hash,
	})
	entry.mu.Unlock()

	s.cache.invalidate(spec.Name, version)
	return SpecResult{
		Name: spec.Name, Outcome: outcome, Version: version,
		Stations: net.NumStations(), Resolver: kind.String(),
	}, nil
}

// DeleteNetwork removes name from the registry, reporting whether it
// existed: the slot disappears (later requests 404), every cached
// resolver and schedule for the name is evicted, and the per-network
// gauges leave /metrics — a scrape after a delete carries no trace of
// the network. In-flight requests that captured the entry finish
// normally on their pinned snapshot.
func (s *Server) DeleteNetwork(name string) bool {
	s.mu.Lock()
	_, ok := s.nets[name]
	if ok {
		delete(s.nets, name)
		// Unregister under s.mu so a concurrent re-registration of the
		// same name cannot interleave (its gauge registration also runs
		// under s.mu).
		s.m.unregisterNetworkGauges(name)
	}
	s.mu.Unlock()
	if !ok {
		return false
	}
	s.cache.invalidate(name, math.MaxUint64)
	s.schedules.invalidateName(name)
	// The observability surface forgets the network too: captured
	// traces leave the flight recorder and its exemplars leave the
	// latency histograms, mirroring the gauge eviction above — both
	// HTTP DELETE and reconcile eviction land here.
	s.recorder.DropNetwork(name)
	s.m.dropExemplars(name)
	return true
}

// SpecHashOf returns the content hash of the spec behind name's live
// generation — the reconcile differ's drift probe.
func (s *Server) SpecHashOf(name string) (string, bool) {
	entry, ok := s.entryFor(name)
	if !ok {
		return "", false
	}
	snap := entry.snap.Load()
	if snap == nil || snap.specHash == "" {
		return "", false
	}
	return snap.specHash, true
}

// NetworkSpecJSON returns the canonical serialization of the spec
// behind name's live generation and that generation's version. The
// bytes are exactly what produced the network: a spec round-trips
// byte-stably through create and readback.
func (s *Server) NetworkSpecJSON(name string) ([]byte, uint64, bool) {
	entry, ok := s.entryFor(name)
	if !ok {
		return nil, 0, false
	}
	snap := entry.snap.Load()
	if snap == nil || snap.specJSON == nil {
		return nil, 0, false
	}
	return snap.specJSON, snap.version, true
}

// Metrics returns the server's metrics registry, so embedding layers
// (the reconcile controller) publish their instruments into the same
// /metrics document the server already serves.
func (s *Server) Metrics() *metrics.Registry { return s.m.reg }

// Recorder returns the server's trace flight recorder, so embedding
// layers (the reconcile controller) capture their sync-pass traces
// into the same /debug/requests timeline the server already serves.
func (s *Server) Recorder() *trace.Recorder { return s.recorder }
