package serve

import (
	"container/list"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sched"
)

// Link scheduling over the serving stack: POST
// /v1/networks/{name}/schedule builds a schedule for the network's
// derived link set (sched.DeriveLinks over the served snapshot's
// stations, so server and clients agree on the links without shipping
// them). Schedules are cached per parameter set; the cache key
// deliberately omits the network generation, so after a PATCH delta
// the next request finds the superseded schedule and REPAIRS it
// through the improver — cost proportional to the delta — instead of
// recomputing from scratch.

// ScheduleRequest is the POST /v1/networks/{name}/schedule body.
// Scheduler is "greedy", "lenclass" or "repair" (empty means greedy);
// Model is "sinr" or "protocol" (empty means sinr); Order is "short",
// "long" or "id" (empty means short). LinkLen scales the derived link
// lengths (0 means 1). Beta and Noise override the network's
// registered values for the SINR model; ConnRadius and InterfRadius
// set the protocol model's radii (0 means 1.5x and 3x the link scale).
type ScheduleRequest struct {
	Scheduler    string  `json:"scheduler,omitempty"`
	Model        string  `json:"model,omitempty"`
	Order        string  `json:"order,omitempty"`
	LinkLen      float64 `json:"link_len,omitempty"`
	Beta         float64 `json:"beta,omitempty"`
	Noise        float64 `json:"noise,omitempty"`
	ConnRadius   float64 `json:"conn_radius,omitempty"`
	InterfRadius float64 `json:"interf_radius,omitempty"`
}

// ScheduleResponse is the schedule reply. Path says how the answer was
// produced: "computed" (fresh build), "repaired" (a superseded cached
// schedule reconciled with the new generation via sched.Repair) or
// "cached" (served verbatim from cache); Repair carries the repair
// stats on the repaired path. Version is the network generation the
// slots are valid for.
type ScheduleResponse struct {
	Network   string             `json:"network"`
	Version   uint64             `json:"version"`
	Scheduler string             `json:"scheduler"`
	Model     string             `json:"model"`
	Order     string             `json:"order"`
	LinkLen   float64            `json:"link_len"`
	NumLinks  int                `json:"num_links"`
	NumSlots  int                `json:"num_slots"`
	Path      string             `json:"path"`
	Repair    *sched.RepairStats `json:"repair,omitempty"`
	Slots     [][]int            `json:"slots"`
}

// schedKey identifies one schedule computation up to the network
// generation. All parameters are normalized (defaults resolved,
// model-irrelevant knobs zeroed) before the lookup, so requests
// differing only in an ignored knob share a slot.
type schedKey struct {
	name    string
	kind    sched.Kind
	model   string
	order   string
	linkLen float64
	beta    float64
	noise   float64
	conn    float64
	interf  float64
}

// schedResult is one computed schedule plus what produced it. links is
// kept so a later repair can carry surviving assignments over to the
// next generation's link set.
type schedResult struct {
	version  uint64
	links    []sched.Link
	schedule *sched.Schedule
	path     string // "computed" or "repaired"
	repair   *sched.RepairStats
}

// schedEntry is one cached (possibly still building) schedule.
type schedEntry struct {
	ready chan struct{}
	res   *schedResult
	err   error
}

type schedKV struct {
	key schedKey
	e   *schedEntry
}

// schedCache is a single-flight LRU cache of schedules. Unlike
// resolverCache its keys are generation-free: a superseded entry is
// not dropped but handed to the rebuild as the repair baseline.
type schedCache struct {
	mu      sync.Mutex
	cap     int
	entries map[schedKey]*list.Element
	lru     *list.List // of *schedKV, front = most recently used
	hits    atomic.Int64
	builds  atomic.Int64
	repairs atomic.Int64
}

func newSchedCache(capacity int) *schedCache {
	if capacity < 1 {
		capacity = 1
	}
	return &schedCache{
		cap:     capacity,
		entries: make(map[schedKey]*list.Element),
		lru:     list.New(),
	}
}

// get returns the schedule for key at network generation >= version,
// building (or repairing a superseded cached result) with build on a
// miss. build receives the previous generation's result, or nil, and
// must itself load the network's current snapshot — so a winner's
// result can only be newer than a waiter asked for, never older, and
// the loop below terminates because versions are monotone. The bool
// reports whether the answer came straight from cache.
func (c *schedCache) get(key schedKey, version uint64, build func(prev *schedResult) (*schedResult, error)) (*schedResult, bool, error) {
	for {
		c.mu.Lock()
		el, ok := c.entries[key]
		if !ok {
			e := &schedEntry{ready: make(chan struct{})}
			c.entries[key] = c.lru.PushFront(&schedKV{key: key, e: e})
			c.evictLocked()
			c.mu.Unlock()
			return c.run(key, e, nil, build)
		}
		kv := el.Value.(*schedKV)
		e := kv.e
		c.lru.MoveToFront(el)
		c.mu.Unlock()
		<-e.ready
		if e.err == nil && e.res.version >= version {
			c.hits.Add(1)
			return e.res, true, nil
		}
		// Superseded (or failed): swap in a fresh in-flight entry if no
		// one else has yet, otherwise loop and wait on the winner's.
		c.mu.Lock()
		el2, ok2 := c.entries[key]
		if ok2 && el2.Value.(*schedKV).e == e {
			ne := &schedEntry{ready: make(chan struct{})}
			el2.Value.(*schedKV).e = ne
			c.mu.Unlock()
			var prev *schedResult
			if e.err == nil {
				prev = e.res
			}
			return c.run(key, ne, prev, build)
		}
		c.mu.Unlock()
	}
}

// run executes build outside the lock and publishes the outcome;
// failed builds are dropped so a later request retries.
func (c *schedCache) run(key schedKey, e *schedEntry, prev *schedResult, build func(prev *schedResult) (*schedResult, error)) (*schedResult, bool, error) {
	c.builds.Add(1)
	res, err := build(prev)
	if err == nil && res.path == "repaired" {
		c.repairs.Add(1)
	}
	c.mu.Lock()
	e.res, e.err = res, err
	if err != nil {
		if el, ok := c.entries[key]; ok && el.Value.(*schedKV).e == e {
			c.lru.Remove(el)
			delete(c.entries, key)
		}
	}
	c.mu.Unlock()
	close(e.ready)
	return res, false, err
}

// evictLocked trims least-recently-used entries beyond capacity.
// Waiters on an evicted in-flight entry still hold its pointer and
// complete normally; the entry simply stops being findable.
func (c *schedCache) evictLocked() {
	for el := c.lru.Back(); el != nil && len(c.entries) > c.cap; {
		prev := el.Prev()
		kv := el.Value.(*schedKV)
		c.lru.Remove(el)
		delete(c.entries, kv.key)
		el = prev
	}
}

// invalidateName drops every cached schedule of one network — the
// delete path. Schedule keys are generation-free (supersession is
// repaired, not evicted), so without this a deleted network's
// schedules would sit in cache until LRU pressure aged them out, and a
// re-created namesake could answer from the dead network's slots via
// the repair path.
func (c *schedCache) invalidateName(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.lru.Front(); el != nil; {
		next := el.Next()
		kv := el.Value.(*schedKV)
		if kv.key.name == name {
			c.lru.Remove(el)
			delete(c.entries, kv.key)
		}
		el = next
	}
}

// Hits returns cache hits (current-generation answers served without
// a build).
func (c *schedCache) Hits() int64 { return c.hits.Load() }

// Builds returns schedule builds started (fresh computes and repairs).
func (c *schedCache) Builds() int64 { return c.builds.Load() }

// Repairs returns how many builds took the repair path instead of
// recomputing.
func (c *schedCache) Repairs() int64 { return c.repairs.Load() }

// Len returns the number of cached (or building) schedules.
func (c *schedCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// finiteNonNeg rejects NaN/Inf/negative knobs before they can reach a
// cache key (a NaN map key never matches on lookup, leaking entries).
func finiteNonNeg(v float64) bool {
	return v >= 0 && !math.IsInf(v, 1)
}

// handleSchedule serves POST /v1/networks/{name}/schedule.
func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req ScheduleRequest
	if !decodeBody(w, r, s.opt.MaxBodyBytes, &req) {
		return
	}
	entry, ok := s.entryFor(name)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown network %q", name)
		return
	}
	// Knobs the request omits inherit the network's declared schedule
	// policy (NetworkSpec.Schedule) before the server defaults apply.
	if snap := entry.snap.Load(); snap != nil && snap.spec != nil && snap.spec.Schedule != nil {
		pol := snap.spec.Schedule
		if req.Scheduler == "" {
			req.Scheduler = pol.Scheduler
		}
		if req.Model == "" {
			req.Model = pol.Model
		}
		if req.Order == "" {
			req.Order = pol.Order
		}
		if req.LinkLen == 0 {
			req.LinkLen = pol.LinkLen
		}
	}
	kind, err := sched.ParseKind(req.Scheduler)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	model := req.Model
	switch model {
	case "":
		model = "sinr"
	case "sinr", "protocol":
	default:
		writeError(w, http.StatusBadRequest, "unknown model %q (want sinr or protocol)", model)
		return
	}
	order := req.Order
	switch order {
	case "":
		order = "short"
	case "short", "long", "id":
	default:
		writeError(w, http.StatusBadRequest, "unknown order %q (want short, long or id)", order)
		return
	}
	linkLen := req.LinkLen
	if linkLen == 0 {
		linkLen = 1
	}
	if !(linkLen > 0) || math.IsInf(linkLen, 1) {
		writeError(w, http.StatusBadRequest, "link_len must be a positive finite number, got %g", req.LinkLen)
		return
	}
	if !finiteNonNeg(req.Beta) || !finiteNonNeg(req.Noise) ||
		!finiteNonNeg(req.ConnRadius) || !finiteNonNeg(req.InterfRadius) {
		writeError(w, http.StatusBadRequest, "beta, noise and radii must be non-negative finite numbers")
		return
	}
	key := schedKey{name: name, kind: kind, model: model, order: order, linkLen: linkLen}
	switch model {
	case "sinr":
		key.beta, key.noise = req.Beta, req.Noise
	case "protocol":
		key.conn, key.interf = req.ConnRadius, req.InterfRadius
		if key.conn == 0 {
			key.conn = 1.5 * linkLen
		}
		if key.interf == 0 {
			key.interf = 2 * key.conn
		}
		if key.interf < key.conn {
			writeError(w, http.StatusBadRequest,
				"interf_radius %g below conn_radius %g", key.interf, key.conn)
			return
		}
	}

	// Admission gates the build: scheduling is the most expensive
	// request the server takes, so it shares the network's concurrency
	// slots with locate traffic.
	if !s.admit(w, r, routeSchedule, entry) {
		return
	}
	defer entry.release()
	snap := entry.snap.Load()
	if n := snap.net.NumStations(); n > s.opt.MaxSchedLinks {
		writeError(w, http.StatusRequestEntityTooLarge,
			"network has %d stations, scheduling is capped at %d links", n, s.opt.MaxSchedLinks)
		return
	}

	// The span starts as a cache hit and is renamed to the path the
	// build actually took (computed fresh or repaired) once known.
	tr := traceOf(w)
	tr.SetNetwork(name)
	bs := tr.Start("sched.cached")
	t0 := time.Now()
	res, cached, err := s.schedules.get(key, snap.version, func(prev *schedResult) (*schedResult, error) {
		// Load the snapshot inside the build so a winner never caches a
		// generation older than any waiter's.
		return buildSchedule(key, entry.snap.Load(), prev)
	})
	tr.End(bs)
	if err != nil {
		writeError(w, http.StatusBadRequest, "cannot schedule: %v", err)
		return
	}
	ki := schedKindIdx(kind)
	s.observeSched(ki, time.Since(t0).Seconds(), tr)
	s.m.schedRequests[ki].Inc()
	path := res.path
	if cached {
		path = "cached"
	}
	tr.SetName(bs, "sched."+path)
	s.m.schedResults[schedPathIdx(path)].Inc()
	writeJSON(w, http.StatusOK, ScheduleResponse{
		Network:   name,
		Version:   res.version,
		Scheduler: kind.String(),
		Model:     model,
		Order:     order,
		LinkLen:   linkLen,
		NumLinks:  len(res.links),
		NumSlots:  res.schedule.NumSlots(),
		Path:      path,
		Repair:    res.repair,
		Slots:     res.schedule.Slots,
	})
}

// buildSchedule computes (or repairs) the schedule for key against
// snap. prev, when non-nil and older than snap, seeds a repair: its
// surviving slot assignments are carried over by sender identity and
// reconciled with sched.Repair, so the work scales with the delta.
func buildSchedule(key schedKey, snap *snapshot, prev *schedResult) (*schedResult, error) {
	net := snap.net
	powers := make([]float64, net.NumStations())
	for i := range powers {
		powers[i] = net.Power(i)
	}
	links := sched.DeriveLinks(net.Stations(), powers, key.linkLen)

	var f sched.Feasibility
	switch key.model {
	case "protocol":
		p, err := sched.NewProtocolProblem(links, key.conn, key.interf)
		if err != nil {
			return nil, err
		}
		f = p
	default:
		beta, noise := key.beta, key.noise
		if beta == 0 {
			beta = net.Beta()
		}
		if noise == 0 {
			noise = net.Noise()
		}
		p, err := sched.NewSINRProblem(links, noise, beta)
		if err != nil {
			return nil, err
		}
		p.Alpha = net.Alpha()
		f = p
	}

	var order []int
	switch key.order {
	case "short":
		order = sched.ByLength(links, true)
	case "long":
		order = sched.ByLength(links, false)
	}

	res := &schedResult{version: snap.version, links: links}
	if prev != nil && prev.version < snap.version {
		if tentative, ok := carryOver(prev, links); ok {
			if repaired, stats, err := sched.Repair(f, tentative, 1); err == nil {
				res.schedule, res.path, res.repair = repaired, "repaired", &stats
				return res, nil
			}
			// A failed repair (e.g. a link infeasible even alone under
			// new parameters) falls through to a fresh compute.
		}
	}
	schedule, err := sched.BuildSchedule(key.kind, f, order)
	if err != nil {
		return nil, err
	}
	res.schedule, res.path = schedule, "computed"
	return res, nil
}

// carryOver maps a previous generation's slot assignments onto the new
// link set by sender identity (position and power). Deltas never move
// stations, so a surviving station keeps its exact derived link; the
// tentative schedule starts from every surviving assignment, and
// Repair places only what changed.
func carryOver(prev *schedResult, links []sched.Link) (*sched.Schedule, bool) {
	type ident struct{ x, y, p float64 }
	slotOf := make(map[ident]int, len(prev.links))
	for si, slot := range prev.schedule.Slots {
		for _, li := range slot {
			l := prev.links[li]
			slotOf[ident{l.Sender.X, l.Sender.Y, l.Power}] = si
		}
	}
	tentative := &sched.Schedule{Slots: make([][]int, prev.schedule.NumSlots())}
	matched := 0
	for j, l := range links {
		if si, ok := slotOf[ident{l.Sender.X, l.Sender.Y, l.Power}]; ok {
			tentative.Slots[si] = append(tentative.Slots[si], j)
			matched++
		}
	}
	return tentative, matched > 0
}
