package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/resolve"
	"repro/internal/workload"
)

func testStations(t *testing.T, n int, seed int64) []geom.Point {
	t.Helper()
	gen := workload.NewGenerator(seed)
	box := geom.NewBox(geom.Pt(-5, -5), geom.Pt(5, 5))
	pts, err := gen.UniformSeparated(n, box, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	return pts
}

func registerReq(name string, stations []geom.Point, noise, beta float64) NetworkRequest {
	req := NetworkRequest{Name: name, Noise: noise, Beta: beta}
	req.Stations = make([]SpecStation, len(stations))
	for i, s := range stations {
		req.Stations[i] = SpecStation{X: s.X, Y: s.Y}
	}
	return req
}

func postJSON(t *testing.T, ts *httptest.Server, path string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeJSON[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestRegisterAndLocateMatchesHeardBy(t *testing.T) {
	stations := testStations(t, 16, 3)
	net, err := core.NewUniform(stations, 0.01, 3)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp := postJSON(t, ts, "/v1/networks", registerReq("demo", stations, 0.01, 3))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register: %s", resp.Status)
	}
	ack := decodeJSON[NetworkResponse](t, resp)
	if ack.Version != 1 || ack.Stations != 16 {
		t.Fatalf("ack = %+v", ack)
	}

	gen := workload.NewGenerator(9)
	box := geom.NewBox(geom.Pt(-6, -6), geom.Pt(6, 6))
	pts := gen.QueryPoints(2000, box)
	// Include the stations themselves and exact-tie midpoints.
	pts = append(pts, stations...)
	pts = append(pts, geom.Midpoint(stations[0], stations[1]))

	req := LocateRequest{Network: "demo", Eps: 0.1}
	req.Points = make([]PointJSON, len(pts))
	for i, p := range pts {
		req.Points[i] = PointJSON{X: p.X, Y: p.Y}
	}
	resp = postJSON(t, ts, "/v1/locate", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("locate: %s", resp.Status)
	}
	out := decodeJSON[LocateResponse](t, resp)
	if len(out.Results) != len(pts) {
		t.Fatalf("%d results for %d points", len(out.Results), len(pts))
	}
	want := net.HeardByBatch(pts)
	for i := range want {
		if out.Results[i].Station != want[i] {
			t.Fatalf("point %v: served %d, HeardBy %d", pts[i], out.Results[i].Station, want[i])
		}
		wantKind := "H-"
		if want[i] != core.NoStationHeard {
			wantKind = "H+"
		}
		if out.Results[i].Kind != wantKind {
			t.Fatalf("point %v: kind %q, want %q", pts[i], out.Results[i].Kind, wantKind)
		}
	}
}

func TestLocateErrors(t *testing.T) {
	srv := NewServer(Options{MaxBatch: 4})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Unknown network -> 404.
	resp := postJSON(t, ts, "/v1/locate", LocateRequest{Network: "nope", Points: []PointJSON{{}}})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown network: %s", resp.Status)
	}
	resp.Body.Close()

	// Invalid network spec -> 400.
	resp = postJSON(t, ts, "/v1/networks", NetworkRequest{Name: "bad", Beta: -1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid network: %s", resp.Status)
	}
	resp.Body.Close()

	// Oversized batch -> 413.
	stations := testStations(t, 4, 5)
	resp = postJSON(t, ts, "/v1/networks", registerReq("small", stations, 0.01, 3))
	resp.Body.Close()
	req := LocateRequest{Network: "small", Points: make([]PointJSON, 5)}
	resp = postJSON(t, ts, "/v1/locate", req)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized batch: %s", resp.Status)
	}
	resp.Body.Close()

	// Bad eps -> 400 (locator build rejects eps >= 1).
	req = LocateRequest{Network: "small", Eps: 7, Points: []PointJSON{{X: 1}}}
	resp = postJSON(t, ts, "/v1/locate", req)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad eps: %s", resp.Status)
	}
	resp.Body.Close()

	// eps below the server floor -> 400 before any build starts.
	before := srv.LocatorBuilds()
	req = LocateRequest{Network: "small", Eps: 1e-9, Points: []PointJSON{{X: 1}}}
	resp = postJSON(t, ts, "/v1/locate", req)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("tiny eps: %s", resp.Status)
	}
	resp.Body.Close()
	if got := srv.LocatorBuilds(); got != before {
		t.Errorf("tiny eps started %d builds, want 0", got-before)
	}

	// Trailing garbage on the stream eps -> 400 (strict float parse).
	resp, err := ts.Client().Post(ts.URL+"/v1/locate/stream?network=small&eps=0.1x5",
		"application/x-ndjson", strings.NewReader("{\"x\":0,\"y\":0}\n"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed stream eps: %s", resp.Status)
	}
	resp.Body.Close()
}

// TestBodySizeLimit checks oversized request bodies are rejected with
// 413 before being decoded, not allocated wholesale.
func TestBodySizeLimit(t *testing.T) {
	srv := NewServer(Options{MaxBodyBytes: 256})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	big := registerReq("big", testStations(t, 64, 37), 0.01, 3)
	resp := postJSON(t, ts, "/v1/networks", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized register body: %s", resp.Status)
	}
	resp.Body.Close()

	req := LocateRequest{Network: "big", Points: make([]PointJSON, 64)}
	resp = postJSON(t, ts, "/v1/locate", req)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized locate body: %s", resp.Status)
	}
	resp.Body.Close()
}

// TestSingleFlightBuildDedup fires many concurrent first-touch requests
// for the same (network, eps) and asserts the O(n^3/eps) build ran
// exactly once.
func TestSingleFlightBuildDedup(t *testing.T) {
	stations := testStations(t, 12, 7)
	srv := NewServer(Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp := postJSON(t, ts, "/v1/networks", registerReq("dedup", stations, 0.01, 3))
	resp.Body.Close()

	const clients = 16
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, _ := json.Marshal(LocateRequest{
				Network: "dedup", Eps: 0.1,
				Points: []PointJSON{{X: 0.5, Y: 0.5}},
			})
			resp, err := ts.Client().Post(ts.URL+"/v1/locate", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %s", resp.Status)
				return
			}
			io.Copy(io.Discard, resp.Body)
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := srv.LocatorBuilds(); got != 1 {
		t.Errorf("LocatorBuilds = %d, want 1 (single-flight dedup)", got)
	}
}

// TestHotSwapUnderConcurrentQueries replaces the network while query
// traffic is in flight: no request may fail, every answer must match
// direct evaluation (old and new snapshots give identical answers here
// because the stations are unchanged), and the version observed in
// responses must advance.
func TestHotSwapUnderConcurrentQueries(t *testing.T) {
	stations := testStations(t, 10, 11)
	net, err := core.NewUniform(stations, 0.01, 3)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	reg := registerReq("swap", stations, 0.01, 3)
	resp := postJSON(t, ts, "/v1/networks", reg)
	resp.Body.Close()

	gen := workload.NewGenerator(13)
	box := geom.NewBox(geom.Pt(-6, -6), geom.Pt(6, 6))
	pts := gen.QueryPoints(200, box)
	want := net.HeardByBatch(pts)
	reqBody, _ := json.Marshal(func() LocateRequest {
		r := LocateRequest{Network: "swap", Eps: 0.1}
		r.Points = make([]PointJSON, len(pts))
		for i, p := range pts {
			r.Points[i] = PointJSON{X: p.X, Y: p.Y}
		}
		return r
	}())

	const clients = 8
	const rounds = 20
	var maxVersion sync.Map
	var wg sync.WaitGroup
	errs := make(chan error, clients*rounds)
	stop := make(chan struct{})

	// Swapper: keep re-registering while queries fly.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			select {
			case <-stop:
				return
			default:
			}
			b, _ := json.Marshal(reg)
			resp, err := ts.Client().Post(ts.URL+"/v1/networks", "application/json", bytes.NewReader(b))
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			time.Sleep(2 * time.Millisecond)
		}
	}()

	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				resp, err := ts.Client().Post(ts.URL+"/v1/locate", "application/json", bytes.NewReader(reqBody))
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("hot swap dropped a request: %s", resp.Status)
					resp.Body.Close()
					return
				}
				var out LocateResponse
				if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
					errs <- err
					resp.Body.Close()
					return
				}
				resp.Body.Close()
				maxVersion.Store(out.Version, true)
				for i := range want {
					if out.Results[i].Station != want[i] {
						errs <- fmt.Errorf("answer changed under hot swap at %v: %d != %d",
							pts[i], out.Results[i].Station, want[i])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	versions := 0
	maxVersion.Range(func(k, v any) bool { versions++; return true })
	if versions < 2 {
		t.Errorf("observed %d distinct versions; hot swap did not take effect under load", versions)
	}
}

// TestLocateStreamEndpoint round-trips an NDJSON stream and checks the
// answers against direct evaluation.
func TestLocateStreamEndpoint(t *testing.T) {
	stations := testStations(t, 8, 17)
	net, err := core.NewUniform(stations, 0.01, 3)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp := postJSON(t, ts, "/v1/networks", registerReq("stream", stations, 0.01, 3))
	resp.Body.Close()

	gen := workload.NewGenerator(19)
	box := geom.NewBox(geom.Pt(-6, -6), geom.Pt(6, 6))
	pts := gen.QueryPoints(1500, box)
	var in bytes.Buffer
	for _, p := range pts {
		fmt.Fprintf(&in, "{\"x\":%g,\"y\":%g}\n", p.X, p.Y)
	}
	resp, err = ts.Client().Post(ts.URL+"/v1/locate/stream?network=stream&eps=0.1", "application/x-ndjson", &in)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: %s", resp.Status)
	}
	want := net.HeardByBatch(pts)
	sc := bufio.NewScanner(resp.Body)
	i := 0
	for sc.Scan() {
		var r LocateResult
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatal(err)
		}
		if i >= len(want) {
			t.Fatalf("more answers than points (%d)", i)
		}
		if r.Station != want[i] {
			t.Fatalf("stream answer %d: served %d, HeardBy %d", i, r.Station, want[i])
		}
		i++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if i != len(pts) {
		t.Fatalf("got %d answers for %d points", i, len(pts))
	}
}

// TestLocateStreamLockstepClient drives the stream one point at a
// time, waiting for each answer before sending the next: the server
// must flush idle answers immediately instead of sitting on its
// response buffer.
func TestLocateStreamLockstepClient(t *testing.T) {
	stations := testStations(t, 6, 41)
	net, err := core.NewUniform(stations, 0.01, 3)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp := postJSON(t, ts, "/v1/networks", registerReq("lock", stations, 0.01, 3))
	resp.Body.Close()

	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/locate/stream?network=lock&eps=0.1", pr)
	if err != nil {
		t.Fatal(err)
	}
	respCh := make(chan *http.Response, 1)
	errCh := make(chan error, 1)
	go func() {
		resp, err := ts.Client().Do(req)
		if err != nil {
			errCh <- err
			return
		}
		respCh <- resp
	}()

	// The response header is only sent once the locator is ready; write
	// the first point to get things moving, then lockstep.
	pts := []geom.Point{stations[0], geom.Pt(50, 50), stations[3]}
	done := make(chan error, 1)
	go func() {
		var resp *http.Response
		select {
		case resp = <-respCh:
		case err := <-errCh:
			done <- err
			return
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		for i, p := range pts {
			if i > 0 { // first point is written below before headers arrive
				fmt.Fprintf(pw, "{\"x\":%g,\"y\":%g}\n", p.X, p.Y)
			}
			if !sc.Scan() {
				done <- fmt.Errorf("stream ended before answer %d: %v", i, sc.Err())
				return
			}
			var r LocateResult
			if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
				done <- err
				return
			}
			want, ok := net.HeardBy(p)
			if !ok {
				want = core.NoStationHeard
			}
			if r.Station != want {
				done <- fmt.Errorf("lockstep answer %d: served %d, want %d", i, r.Station, want)
				return
			}
		}
		pw.Close()
		done <- nil
	}()
	fmt.Fprintf(pw, "{\"x\":%g,\"y\":%g}\n", pts[0].X, pts[0].Y)

	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("lockstep client starved: idle answers were not flushed")
	}
}

// TestLocateStreamMalformedLine checks a malformed NDJSON line yields
// the answers accepted so far plus a trailing {"error": ...} object,
// so truncation is distinguishable from completion.
func TestLocateStreamMalformedLine(t *testing.T) {
	stations := testStations(t, 6, 43)
	srv := NewServer(Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp := postJSON(t, ts, "/v1/networks", registerReq("mal", stations, 0.01, 3))
	resp.Body.Close()

	body := "{\"x\":0.1,\"y\":0.2}\n{\"x\":0.3,\"y\":0.1}\nnot json\n{\"x\":1,\"y\":1}\n"
	resp, err := ts.Client().Post(ts.URL+"/v1/locate/stream?network=mal&eps=0.1",
		"application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var answers, errLines int
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var probe map[string]any
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			t.Fatal(err)
		}
		if _, isErr := probe["error"]; isErr {
			errLines++
		} else {
			answers++
		}
	}
	if answers != 2 || errLines != 1 {
		t.Fatalf("got %d answers and %d error lines, want 2 answers then 1 error marker", answers, errLines)
	}
}

// TestLocateStreamClientDisconnect cancels the request mid-stream and
// checks the server tears the pipeline down instead of hanging.
func TestLocateStreamClientDisconnect(t *testing.T) {
	stations := testStations(t, 8, 23)
	srv := NewServer(Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp := postJSON(t, ts, "/v1/networks", registerReq("disc", stations, 0.01, 3))
	resp.Body.Close()

	// An endless request body: the stream would run forever without the
	// client-side cancel.
	pr, pw := io.Pipe()
	go func() {
		for i := 0; ; i++ {
			if _, err := fmt.Fprintf(pw, "{\"x\":%g,\"y\":%g}\n", float64(i%10)-5, float64(i%7)-3); err != nil {
				return // request side closed after cancellation
			}
		}
	}()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/locate/stream?network=disc&eps=0.1", pr)
	if err != nil {
		t.Fatal(err)
	}
	respCh := make(chan error, 1)
	go func() {
		resp, err := ts.Client().Do(req)
		if err != nil {
			respCh <- err
			return
		}
		// Read a few answers, then abandon the stream.
		buf := make([]byte, 4096)
		_, _ = resp.Body.Read(buf)
		cancel()
		resp.Body.Close()
		respCh <- nil
	}()

	select {
	case err := <-respCh:
		if err != nil && !strings.Contains(err.Error(), "context canceled") {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("client goroutine stuck")
	}
	pw.Close()

	// The server handler must finish; httptest.Server.Close blocks on
	// outstanding handlers, so a leaked stream would hang Close. Guard
	// it with a timeout.
	done := make(chan struct{})
	go func() {
		ts.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("server did not tear down the cancelled stream")
	}
}

// TestLRUEviction fills the cache past its capacity and checks old
// locators are evicted while the server keeps answering.
func TestLRUEviction(t *testing.T) {
	stations := testStations(t, 6, 29)
	srv := NewServer(Options{MaxLocators: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp := postJSON(t, ts, "/v1/networks", registerReq("lru", stations, 0.01, 3))
	resp.Body.Close()

	for _, eps := range []float64{0.3, 0.2, 0.1, 0.3} {
		req := LocateRequest{Network: "lru", Eps: eps, Points: []PointJSON{{X: 0.1, Y: 0.2}}}
		resp := postJSON(t, ts, "/v1/locate", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("eps %g: %s", eps, resp.Status)
		}
		resp.Body.Close()
	}
	if got := srv.cache.Len(); got > 2 {
		t.Errorf("cache holds %d locators, cap 2", got)
	}
	// eps 0.3 was evicted by 0.1 and had to rebuild: 4 builds total.
	if got := srv.LocatorBuilds(); got != 4 {
		t.Errorf("LocatorBuilds = %d, want 4 (3 distinct + 1 rebuild after eviction)", got)
	}
}

func TestListNetworks(t *testing.T) {
	stations := testStations(t, 4, 31)
	srv := NewServer(Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for _, name := range []string{"b", "a"} {
		resp := postJSON(t, ts, "/v1/networks", registerReq(name, stations, 0.01, 3))
		resp.Body.Close()
	}
	resp, err := ts.Client().Get(ts.URL + "/v1/networks")
	if err != nil {
		t.Fatal(err)
	}
	list := decodeJSON[[]NetworkResponse](t, resp)
	if len(list) != 2 || list[0].Name != "a" || list[1].Name != "b" {
		t.Fatalf("list = %+v", list)
	}
}

// TestLocateEveryResolverKind answers the same batch through all four
// backends over /v1/locate and checks each against its locally built
// resolver: the three exact backends must match Network.HeardBy, the
// UDG baseline must match the local UDG model (and, being a different
// reception model, is allowed to disagree with SINR).
func TestLocateEveryResolverKind(t *testing.T) {
	stations := testStations(t, 12, 47)
	net, err := core.NewUniform(stations, 0.01, 3)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp := postJSON(t, ts, "/v1/networks", registerReq("kinds", stations, 0.01, 3))
	resp.Body.Close()

	gen := workload.NewGenerator(53)
	box := geom.NewBox(geom.Pt(-6, -6), geom.Pt(6, 6))
	pts := gen.QueryPoints(600, box)
	pts = append(pts, stations...)
	sinrWant := net.HeardByBatch(pts)

	for _, kind := range resolve.Kinds() {
		local, err := resolve.New(kind, net)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]core.Location, len(pts))
		if err := local.ResolveBatch(context.Background(), pts, want); err != nil {
			t.Fatal(err)
		}
		req := LocateRequest{Network: "kinds", Resolver: kind.String()}
		req.Points = make([]PointJSON, len(pts))
		for i, p := range pts {
			req.Points[i] = PointJSON{X: p.X, Y: p.Y}
		}
		resp := postJSON(t, ts, "/v1/locate", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%v: %s", kind, resp.Status)
		}
		out := decodeJSON[LocateResponse](t, resp)
		if out.Resolver != kind.String() {
			t.Fatalf("response resolver %q, want %q", out.Resolver, kind.String())
		}
		if kind == resolve.KindLocator && out.Eps != DefaultEps {
			t.Fatalf("locator response eps %g, want default %g", out.Eps, DefaultEps)
		}
		for i := range pts {
			if out.Results[i].Station != resolve.StationIndex(want[i]) {
				t.Fatalf("%v: point %v served %d, local backend %d",
					kind, pts[i], out.Results[i].Station, resolve.StationIndex(want[i]))
			}
			if kind != resolve.KindUDG && out.Results[i].Station != sinrWant[i] {
				t.Fatalf("%v: point %v served %d, HeardBy %d", kind, pts[i], out.Results[i].Station, sinrWant[i])
			}
		}
	}
}

// TestPerNetworkDefaultResolver registers a network whose default
// backend is voronoi and checks a resolver-less request uses it,
// while an explicit per-request "locator" still overrides.
func TestPerNetworkDefaultResolver(t *testing.T) {
	stations := testStations(t, 8, 59)
	srv := NewServer(Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	reg := registerReq("dflt", stations, 0.01, 3)
	reg.Resolver = "voronoi"
	resp := postJSON(t, ts, "/v1/networks", reg)
	ack := decodeJSON[NetworkResponse](t, resp)
	if ack.Resolver != "voronoi" {
		t.Fatalf("register ack resolver %q, want voronoi", ack.Resolver)
	}

	req := LocateRequest{Network: "dflt", Points: []PointJSON{{X: 0.3, Y: 0.4}}}
	out := decodeJSON[LocateResponse](t, postJSON(t, ts, "/v1/locate", req))
	if out.Resolver != "voronoi" {
		t.Fatalf("default resolver %q, want voronoi", out.Resolver)
	}
	req.Resolver = "locator"
	out = decodeJSON[LocateResponse](t, postJSON(t, ts, "/v1/locate", req))
	if out.Resolver != "locator" {
		t.Fatalf("override resolver %q, want locator", out.Resolver)
	}
}

// TestResolverHotSwapBetweenBackends hot-swaps a network's default
// backend from locator to udg under traffic: answers before the swap
// are SINR-exact, answers after follow the UDG model, and no request
// fails in between.
func TestResolverHotSwapBetweenBackends(t *testing.T) {
	stations := testStations(t, 10, 61)
	net, err := core.NewUniform(stations, 0.01, 3)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	reg := registerReq("swapkind", stations, 0.01, 3)
	resp := postJSON(t, ts, "/v1/networks", reg)
	resp.Body.Close()

	gen := workload.NewGenerator(67)
	box := geom.NewBox(geom.Pt(-6, -6), geom.Pt(6, 6))
	pts := gen.QueryPoints(300, box)
	req := LocateRequest{Network: "swapkind"}
	req.Points = make([]PointJSON, len(pts))
	for i, p := range pts {
		req.Points[i] = PointJSON{X: p.X, Y: p.Y}
	}

	out := decodeJSON[LocateResponse](t, postJSON(t, ts, "/v1/locate", req))
	if out.Resolver != "locator" {
		t.Fatalf("pre-swap resolver %q", out.Resolver)
	}
	sinrWant := net.HeardByBatch(pts)
	for i := range pts {
		if out.Results[i].Station != sinrWant[i] {
			t.Fatalf("pre-swap answer %d: %d != %d", i, out.Results[i].Station, sinrWant[i])
		}
	}

	// Swap the same stations to a UDG default backend.
	reg.Resolver = "udg"
	resp = postJSON(t, ts, "/v1/networks", reg)
	resp.Body.Close()

	udgLocal, err := resolve.NewUDG(net)
	if err != nil {
		t.Fatal(err)
	}
	udgWant := make([]core.Location, len(pts))
	if err := udgLocal.ResolveBatch(context.Background(), pts, udgWant); err != nil {
		t.Fatal(err)
	}
	out = decodeJSON[LocateResponse](t, postJSON(t, ts, "/v1/locate", req))
	if out.Resolver != "udg" || out.Version != 2 {
		t.Fatalf("post-swap resolver %q version %d", out.Resolver, out.Version)
	}
	differs := false
	for i := range pts {
		if out.Results[i].Station != resolve.StationIndex(udgWant[i]) {
			t.Fatalf("post-swap answer %d: %d != udg %d", i, out.Results[i].Station, resolve.StationIndex(udgWant[i]))
		}
		if out.Results[i].Station != sinrWant[i] {
			differs = true
		}
	}
	if !differs {
		t.Log("note: UDG and SINR agreed on every sampled point (possible but unusual)")
	}
}

// TestStreamResolverParam drives the NDJSON stream through a
// non-default backend and checks the answers match the local one.
func TestStreamResolverParam(t *testing.T) {
	stations := testStations(t, 8, 71)
	net, err := core.NewUniform(stations, 0.01, 3)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp := postJSON(t, ts, "/v1/networks", registerReq("streamkind", stations, 0.01, 3))
	resp.Body.Close()

	gen := workload.NewGenerator(73)
	box := geom.NewBox(geom.Pt(-6, -6), geom.Pt(6, 6))
	pts := gen.QueryPoints(500, box)
	var in bytes.Buffer
	for _, p := range pts {
		fmt.Fprintf(&in, "{\"x\":%g,\"y\":%g}\n", p.X, p.Y)
	}
	resp, err = ts.Client().Post(ts.URL+"/v1/locate/stream?network=streamkind&resolver=exact",
		"application/x-ndjson", &in)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: %s", resp.Status)
	}
	want := net.HeardByBatch(pts)
	sc := bufio.NewScanner(resp.Body)
	i := 0
	for sc.Scan() {
		var r LocateResult
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatal(err)
		}
		if r.Station != want[i] {
			t.Fatalf("stream answer %d: served %d, want %d", i, r.Station, want[i])
		}
		i++
	}
	if i != len(pts) {
		t.Fatalf("got %d answers for %d points", i, len(pts))
	}
}

// TestResolverErrors covers the new failure modes: unknown resolver
// names (register and locate), negative radii, and eps irrelevance
// for non-locator backends.
func TestResolverErrors(t *testing.T) {
	stations := testStations(t, 4, 79)
	srv := NewServer(Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	bad := registerReq("bad", stations, 0.01, 3)
	bad.Resolver = "psychic"
	resp := postJSON(t, ts, "/v1/networks", bad)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown register resolver: %s", resp.Status)
	}
	resp.Body.Close()

	neg := registerReq("neg", stations, 0.01, 3)
	neg.Radius = -1
	resp = postJSON(t, ts, "/v1/networks", neg)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative register radius: %s", resp.Status)
	}
	resp.Body.Close()

	resp = postJSON(t, ts, "/v1/networks", registerReq("ok", stations, 0.01, 3))
	resp.Body.Close()

	req := LocateRequest{Network: "ok", Resolver: "psychic", Points: []PointJSON{{X: 1}}}
	resp = postJSON(t, ts, "/v1/locate", req)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown locate resolver: %s", resp.Status)
	}
	resp.Body.Close()

	req = LocateRequest{Network: "ok", Resolver: "udg", Radius: -2, Points: []PointJSON{{X: 1}}}
	resp = postJSON(t, ts, "/v1/locate", req)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative locate radius: %s", resp.Status)
	}
	resp.Body.Close()

	// A tiny eps is only a locator concern: the exact backend must
	// ignore it instead of rejecting the request.
	before := srv.LocatorBuilds()
	req = LocateRequest{Network: "ok", Resolver: "exact", Eps: 1e-9, Points: []PointJSON{{X: 1}}}
	resp = postJSON(t, ts, "/v1/locate", req)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("exact backend rejected an (irrelevant) tiny eps: %s", resp.Status)
	}
	resp.Body.Close()
	if got := srv.LocatorBuilds(); got != before+1 {
		t.Errorf("exact build count advanced by %d, want 1", got-before)
	}

	// Requests differing only in an ignored knob share one resolver.
	req = LocateRequest{Network: "ok", Resolver: "exact", Eps: 0.3, Points: []PointJSON{{X: 1}}}
	resp = postJSON(t, ts, "/v1/locate", req)
	resp.Body.Close()
	if got := srv.LocatorBuilds(); got != before+1 {
		t.Errorf("ignored eps split the cache: %d builds, want 1", got-before)
	}
}

// TestNaNKnobsRejectedBeforeCaching checks NaN/Inf eps and radius are
// rejected before they can become cache-key material: a NaN float in
// a map key never matches on lookup or delete, so an accepted NaN
// would mean one fresh build plus one permanently leaked cache entry
// per request.
func TestNaNKnobsRejectedBeforeCaching(t *testing.T) {
	stations := testStations(t, 4, 83)
	srv := NewServer(Options{MaxLocators: 4})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp := postJSON(t, ts, "/v1/networks", registerReq("nan", stations, 0.01, 3))
	resp.Body.Close()

	for _, url := range []string{
		"/v1/locate/stream?network=nan&resolver=udg&radius=NaN",
		"/v1/locate/stream?network=nan&resolver=udg&radius=+Inf",
		"/v1/locate/stream?network=nan&resolver=locator&eps=NaN",
	} {
		for i := 0; i < 5; i++ {
			resp, err := ts.Client().Post(ts.URL+url, "application/x-ndjson", strings.NewReader("{\"x\":0,\"y\":0}\n"))
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("%s: %s, want 400", url, resp.Status)
			}
			resp.Body.Close()
		}
	}
	if got := srv.LocatorBuilds(); got != 0 {
		t.Errorf("NaN knobs started %d builds, want 0", got)
	}
	if got := srv.cache.Len(); got != 0 {
		t.Errorf("NaN knobs leaked %d cache entries, want 0", got)
	}

	// A non-finite register-time radius is rejected too; JSON itself
	// cannot carry NaN, so an overflowing literal stands in for it
	// (rejected at decode or at the finite-radius check — 400 either
	// way).
	resp, err := ts.Client().Post(ts.URL+"/v1/networks", "application/json",
		strings.NewReader(`{"name":"inf","stations":[{"x":0,"y":0}],"noise":0.01,"beta":3,"radius":1e400}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("Inf register radius: %s, want 400", resp.Status)
	}
	resp.Body.Close()
}
