package serve

import (
	"container/list"
	"sync"
	"sync/atomic"

	"repro/internal/resolve"
)

// cacheKey identifies one resolver build: a network name at a specific
// registration version, answered by a specific backend with its
// parameters. eps is zero for non-locator kinds and radius is zero for
// non-UDG kinds (normalized by the caller), so e.g. "exact at eps 0.1"
// and "exact at eps 0.2" share one cache slot.
type cacheKey struct {
	name    string
	version uint64
	kind    resolve.Kind
	eps     float64
	radius  float64
}

// cacheEntry is one cached (possibly still building) resolver. ready
// is closed when res/err are final; done mirrors the close under the
// cache mutex so eviction can skip in-flight builds without waiting.
type cacheEntry struct {
	key   cacheKey
	ready chan struct{}
	done  bool
	res   resolve.Resolver
	err   error
}

// resolverCache is a single-flight LRU cache of query resolvers.
// A cached locator owns its sharded spatial index, so the index is
// versioned with the snapshot that built it: a hot swap bumps the
// version, misses the cache, and builds a fresh locator+index pair,
// while requests still holding the old snapshot keep answering from
// the old pair — index and network can never disagree mid-request.
// Concurrent get calls for the same key share one build: the first
// caller builds while the rest wait on the entry's ready channel.
// Completed entries beyond cap are evicted least-recently-used;
// in-flight builds are never evicted, so the cache can transiently
// exceed cap under a burst of distinct first-time keys. The expensive
// occupant is the Theorem 3 locator (O(n^3/eps) build, O(n/eps)
// memory); the baseline backends are cheap but cached all the same so
// every kind flows through one code path.
type resolverCache struct {
	mu      sync.Mutex
	cap     int
	entries map[cacheKey]*list.Element
	lru     *list.List // of *cacheEntry, front = most recently used
	builds  atomic.Int64
	hits    atomic.Int64
	evicted atomic.Int64 // LRU evictions (capacity pressure)
	invalid atomic.Int64 // invalidations (superseded generations)
}

func newResolverCache(capacity int) *resolverCache {
	if capacity < 1 {
		capacity = 1
	}
	return &resolverCache{
		cap:     capacity,
		entries: make(map[cacheKey]*list.Element),
		lru:     list.New(),
	}
}

// get returns the resolver for key, building it with build on a miss.
// Exactly one caller runs build per key generation; a failed build is
// dropped from the cache so a later request retries it.
func (c *resolverCache) get(key cacheKey, build func() (resolve.Resolver, error)) (resolve.Resolver, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		c.mu.Unlock()
		// Joining an in-flight build counts as a hit too: the caller
		// paid a wait, not a build.
		c.hits.Add(1)
		<-e.ready
		return e.res, e.err
	}
	e := &cacheEntry{key: key, ready: make(chan struct{})}
	c.entries[key] = c.lru.PushFront(e)
	c.evictLocked()
	c.mu.Unlock()

	c.builds.Add(1)
	res, err := build()

	c.mu.Lock()
	e.res, e.err, e.done = res, err, true
	if err != nil {
		if el, ok := c.entries[key]; ok && el.Value.(*cacheEntry) == e {
			c.lru.Remove(el)
			delete(c.entries, key)
		}
	}
	c.mu.Unlock()
	close(e.ready)
	return res, err
}

// evictLocked removes completed least-recently-used entries until the
// cache is within capacity. Callers hold c.mu.
func (c *resolverCache) evictLocked() {
	for el := c.lru.Back(); el != nil && len(c.entries) > c.cap; {
		prev := el.Prev()
		if e := el.Value.(*cacheEntry); e.done {
			c.lru.Remove(el)
			delete(c.entries, e.key)
			c.evicted.Add(1)
		}
		el = prev
	}
}

// invalidate drops every completed entry for name with a version below
// beforeVersion (stale snapshots after a hot swap). In-flight builds
// for stale versions finish and are then aged out by the LRU.
func (c *resolverCache) invalidate(name string, beforeVersion uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.lru.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*cacheEntry)
		if e.done && e.key.name == name && e.key.version < beforeVersion {
			c.lru.Remove(el)
			delete(c.entries, e.key)
			c.invalid.Add(1)
		}
		el = next
	}
}

// Builds returns the number of resolver builds started (cache
// misses); the handler tests use it to assert single-flight dedup.
func (c *resolverCache) Builds() int64 { return c.builds.Load() }

// Hits returns the number of get calls answered without a build
// (including waits on an in-flight build).
func (c *resolverCache) Hits() int64 { return c.hits.Load() }

// Evicted returns the number of LRU capacity evictions.
func (c *resolverCache) Evicted() int64 { return c.evicted.Load() }

// Invalidated returns the number of entries dropped because their
// generation was superseded by a hot swap or PATCH delta.
func (c *resolverCache) Invalidated() int64 { return c.invalid.Load() }

// Len returns the number of cached (or building) resolvers.
func (c *resolverCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
