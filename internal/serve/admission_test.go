package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
)

// admissionServer boots a test server with the given options and one
// registered 8-station network per name.
func admissionServer(t *testing.T, opt Options, names ...string) (*Server, *httptest.Server) {
	t.Helper()
	srv := NewServer(opt)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	stations := testStations(t, 8, 11)
	for _, name := range names {
		resp := postJSON(t, ts, "/v1/networks", registerReq(name, stations, 0.01, 3))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("register %s: %s", name, resp.Status)
		}
		resp.Body.Close()
	}
	return srv, ts
}

// holdSlot occupies one of network's concurrency slots by opening an
// NDJSON stream and reading its first answer (which proves the handler
// is past admission and mid-stream). The returned release ends the
// stream and waits for the response to finish, freeing the slot.
func holdSlot(t *testing.T, ts *httptest.Server, network string) (release func()) {
	t.Helper()
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost,
		ts.URL+"/v1/locate/stream?network="+network+"&resolver=exact", pr)
	if err != nil {
		t.Fatal(err)
	}
	respCh := make(chan *http.Response, 1)
	errCh := make(chan error, 1)
	go func() {
		resp, err := ts.Client().Do(req)
		if err != nil {
			errCh <- err
			return
		}
		respCh <- resp
	}()
	if _, err := io.WriteString(pw, "{\"x\":0,\"y\":0}\n"); err != nil {
		t.Fatal(err)
	}
	var resp *http.Response
	select {
	case resp = <-respCh:
	case err := <-errCh:
		t.Fatal(err)
	case <-time.After(10 * time.Second):
		t.Fatal("stream never produced response headers")
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %s", resp.Status)
	}
	return func() {
		pw.Close()
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// locateAsync fires a single-point locate without blocking the test
// goroutine, delivering the response (or transport error) on channels.
func locateAsync(t *testing.T, ts *httptest.Server, network string) (<-chan *http.Response, <-chan error) {
	t.Helper()
	body, err := json.Marshal(LocateRequest{
		Network: network, Resolver: "exact", Points: []PointJSON{{X: 1, Y: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	respCh := make(chan *http.Response, 1)
	errCh := make(chan error, 1)
	go func() {
		resp, err := ts.Client().Post(ts.URL+"/v1/locate", "application/json", bytes.NewReader(body))
		if err != nil {
			errCh <- err
			return
		}
		respCh <- resp
	}()
	return respCh, errCh
}

// waitUntil polls cond to true within deadline or fails the test.
func waitUntil(t *testing.T, deadline time.Duration, cond func() bool, msg string) {
	t.Helper()
	for end := time.Now().Add(deadline); time.Now().Before(end); {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal(msg)
}

// scrapeMetrics fetches and parses the server's /metrics exposition.
func scrapeMetrics(t *testing.T, ts *httptest.Server) []metrics.Sample {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	samples, err := metrics.Parse(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return samples
}

// mustValue asserts a sample exists and returns its value.
func mustValue(t *testing.T, samples []metrics.Sample, name string, labels ...metrics.Label) float64 {
	t.Helper()
	v, ok := metrics.Value(samples, name, labels...)
	if !ok {
		t.Fatalf("metric %s%v not exposed", name, labels)
	}
	return v
}

// TestAdmissionQueueAndShed drives the limiter through its three
// regimes: a query that finds a free slot runs, a query that finds the
// slots full queues (visible on the queued gauge), and a query that
// finds the queue full too is shed with 429 + Retry-After, counted by
// the shed counter and the 429 status class. Releasing the slot lets
// the queued query complete normally.
func TestAdmissionQueueAndShed(t *testing.T) {
	srv, ts := admissionServer(t, Options{
		MaxConcurrent: 1, MaxQueue: 1, RetryAfter: 2 * time.Second,
	}, "hot")

	release := holdSlot(t, ts, "hot")
	defer release()

	// Second query: every slot busy, joins the queue.
	queuedResp, queuedErr := locateAsync(t, ts, "hot")
	waitUntil(t, 5*time.Second, func() bool { return srv.m.queued.Value() == 1 },
		"queued gauge never reached 1")

	// Third query: queue full, shed immediately.
	resp, err := ts.Client().Post(ts.URL+"/v1/locate", "application/json",
		strings.NewReader(`{"network":"hot","resolver":"exact","points":[{"x":1,"y":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-limit query: %s, want 429", resp.Status)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After %q, want \"2\"", ra)
	}
	shed := decodeJSON[errorResponse](t, resp)
	if !strings.Contains(shed.Error, "overloaded") {
		t.Fatalf("shed body %q", shed.Error)
	}

	samples := scrapeMetrics(t, ts)
	if v := mustValue(t, samples, "sinr_admission_shed_total", metrics.L("route", "locate")); v != 1 {
		t.Fatalf("shed counter = %g, want 1", v)
	}
	if v := mustValue(t, samples, "sinr_http_requests_total",
		metrics.L("route", "locate"), metrics.L("code", "429")); v != 1 {
		t.Fatalf("429 request counter = %g, want 1", v)
	}
	if v := mustValue(t, samples, "sinr_admission_queued"); v != 1 {
		t.Fatalf("queued gauge = %g, want 1", v)
	}

	// Free the slot: the queued query must run to a normal 200.
	release()
	select {
	case resp := <-queuedResp:
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("queued query: %s, want 200", resp.Status)
		}
		out := decodeJSON[LocateResponse](t, resp)
		if len(out.Results) != 1 {
			t.Fatalf("queued query answered %d results", len(out.Results))
		}
	case err := <-queuedErr:
		t.Fatal(err)
	case <-time.After(10 * time.Second):
		t.Fatal("queued query never completed after release")
	}
	waitUntil(t, 5*time.Second, func() bool { return srv.m.queued.Value() == 0 },
		"queued gauge never drained to 0")
}

// TestAdmissionPerNetworkIsolation pins the isolation property: a
// network with every slot busy cannot delay another network's queries,
// because slots are per-network and only the overflow queue is shared.
func TestAdmissionPerNetworkIsolation(t *testing.T) {
	srv, ts := admissionServer(t, Options{MaxConcurrent: 1, MaxQueue: 4}, "hot", "cold")

	release := holdSlot(t, ts, "hot")
	defer release()

	respCh, errCh := locateAsync(t, ts, "cold")
	select {
	case resp := <-respCh:
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("cold query behind hot network: %s, want 200", resp.Status)
		}
		resp.Body.Close()
	case err := <-errCh:
		t.Fatal(err)
	case <-time.After(10 * time.Second):
		t.Fatal("cold network query stalled behind hot network's slots")
	}
	if q := srv.m.queued.Value(); q != 0 {
		t.Fatalf("cold query queued (gauge %d), want direct admission", q)
	}
}

// TestAdmissionDisabled: with no MaxConcurrent the limiter is inert —
// no queueing, no shedding, streams and batches admit unconditionally.
func TestAdmissionDisabled(t *testing.T) {
	srv, ts := admissionServer(t, Options{}, "open")
	r1 := holdSlot(t, ts, "open")
	defer r1()
	r2 := holdSlot(t, ts, "open")
	defer r2()
	respCh, errCh := locateAsync(t, ts, "open")
	select {
	case resp := <-respCh:
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("locate: %s", resp.Status)
		}
		resp.Body.Close()
	case err := <-errCh:
		t.Fatal(err)
	case <-time.After(10 * time.Second):
		t.Fatal("locate stalled with admission disabled")
	}
	if q := srv.m.queued.Value(); q != 0 {
		t.Fatalf("queued gauge = %d with admission disabled", q)
	}
	samples := scrapeMetrics(t, ts)
	if v := mustValue(t, samples, "sinr_admission_shed_total", metrics.L("route", "locate")); v != 0 {
		t.Fatalf("shed counter = %g with admission disabled", v)
	}
}
