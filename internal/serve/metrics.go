package serve

import (
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/resolve"
	"repro/internal/sched"
	"repro/internal/trace"
)

// route indexes the server's instrumented endpoints — the fixed label
// vocabulary of the per-route metrics, resolved at registration so
// the per-request cost is an array index, not a map lookup.
type route int

const (
	routeNetworks route = iota // POST/GET /v1/networks
	routeSpec                  // GET /v1/networks/{name}
	routeDelete                // DELETE /v1/networks/{name}
	routePatch                 // PATCH /v1/networks/{name}
	routeSchedule              // POST /v1/networks/{name}/schedule
	routeLocate                // POST /v1/locate
	routeStream                // POST /v1/locate/stream
	routeHealth                // GET /healthz
	routeReady                 // GET /readyz
	routeMetrics               // GET /metrics
	routeDebug                 // GET /debug/requests
	numRoutes
)

var routeNames = [numRoutes]string{
	"networks", "spec", "delete", "patch", "schedule", "locate", "stream", "healthz", "readyz", "metrics", "debug",
}

// reconcileTraceRoute is the flight-recorder lane for controller sync
// passes — not an HTTP route, but traced like one.
const reconcileTraceRoute = "reconcile"

// recorderRoutes returns the flight-recorder lane names: one per HTTP
// route plus the reconcile lane, indexed so lane i == route i.
func recorderRoutes() []string {
	return append(routeNames[:numRoutes:numRoutes], reconcileTraceRoute)
}

// Flight-recorder sizing: per route, keep the slowest flightSlowN
// completed traces plus the flightErrN most recent errored/shed ones.
const (
	flightSlowN = 8
	flightErrN  = 8
)

// codeClass buckets response statuses for the request counters. 429
// gets its own class: it is the admission-control shed signal, and
// folding it into 4xx would hide exactly the number operators watch.
type codeClass int

const (
	class2xx codeClass = iota
	class3xx
	class4xx
	class429
	class5xx
	numClasses
)

var classNames = [numClasses]string{"2xx", "3xx", "4xx", "429", "5xx"}

func classOf(status int) codeClass {
	switch {
	case status == http.StatusTooManyRequests:
		return class429
	case status >= 500:
		return class5xx
	case status >= 400:
		return class4xx
	case status >= 300:
		return class3xx
	default:
		return class2xx
	}
}

// epochLagBounds buckets how many generations behind the latest a
// request's pinned snapshot was by the time it answered — 0 for the
// steady state, small integers while a swap or PATCH races traffic.
var epochLagBounds = []float64{0, 1, 2, 4, 8, 16}

// serveMetrics is the server's metric surface: every instrument the
// handlers record into, resolved to direct pointers at construction
// so the hot path touches only atomics.
type serveMetrics struct {
	reg *metrics.Registry

	requests [numRoutes][numClasses]*metrics.Counter // sinr_http_requests_total
	latency  [numRoutes]*metrics.Histogram           // sinr_http_request_seconds
	inflight *metrics.Gauge                          // sinr_http_inflight
	queued   *metrics.Gauge                          // sinr_admission_queued
	shed     [numRoutes]*metrics.Counter             // sinr_admission_shed_total

	queries        [resolve.NumKinds]*metrics.Counter   // sinr_locate_queries_total
	resolveSeconds [resolve.NumKinds]*metrics.Histogram // sinr_resolve_seconds
	epochLag       *metrics.Histogram                   // sinr_locate_epoch_lag

	schedRequests [sched.NumKinds]*metrics.Counter   // sinr_schedule_requests_total
	schedSeconds  [sched.NumKinds]*metrics.Histogram // sinr_schedule_seconds
	schedResults  [numSchedPaths]*metrics.Counter    // sinr_schedule_results_total
}

// schedPathNames label how a schedule answer was produced; dense
// indices for the per-path result counters.
var schedPathNames = [...]string{"computed", "repaired", "cached"}

const numSchedPaths = len(schedPathNames)

func schedPathIdx(path string) int {
	for i, p := range schedPathNames {
		if p == path {
			return i
		}
	}
	return 0
}

// schedKindIdx maps a scheduler Kind to its metric-array slot,
// clamping unknown values to 0 rather than indexing out of bounds.
func schedKindIdx(k sched.Kind) int {
	if i := int(k); i >= 0 && i < sched.NumKinds {
		return i
	}
	return 0
}

func newServeMetrics(cache *resolverCache, schedules *schedCache) *serveMetrics {
	reg := metrics.NewRegistry()
	m := &serveMetrics{reg: reg}
	for rt := route(0); rt < numRoutes; rt++ {
		for cl := codeClass(0); cl < numClasses; cl++ {
			m.requests[rt][cl] = reg.Counter("sinr_http_requests_total",
				"HTTP requests by route and status class.",
				metrics.L("route", routeNames[rt]), metrics.L("code", classNames[cl]))
		}
		m.latency[rt] = reg.Histogram("sinr_http_request_seconds",
			"HTTP request latency by route.", nil, metrics.L("route", routeNames[rt]))
		m.shed[rt] = reg.Counter("sinr_admission_shed_total",
			"Requests rejected by admission control (429 shed or drain 503) by route.",
			metrics.L("route", routeNames[rt]))
	}
	m.inflight = reg.Gauge("sinr_http_inflight", "Requests currently being served.")
	m.queued = reg.Gauge("sinr_admission_queued",
		"Queries queued for a per-network concurrency slot (global, all networks).")
	for k := 0; k < resolve.NumKinds; k++ {
		name := resolve.Kind(k).String()
		m.queries[k] = reg.Counter("sinr_locate_queries_total",
			"Individual point queries answered, by resolver backend.",
			metrics.L("resolver", name))
		m.resolveSeconds[k] = reg.Histogram("sinr_resolve_seconds",
			"Server-side batch resolve wall time, by resolver backend.", nil,
			metrics.L("resolver", name))
	}
	m.epochLag = reg.Histogram("sinr_locate_epoch_lag",
		"Generations the answering snapshot was behind the newest at response time.",
		epochLagBounds)
	for k := 0; k < sched.NumKinds; k++ {
		name := sched.Kind(k).String()
		m.schedRequests[k] = reg.Counter("sinr_schedule_requests_total",
			"Schedule requests answered, by scheduler kind.",
			metrics.L("scheduler", name))
		m.schedSeconds[k] = reg.Histogram("sinr_schedule_seconds",
			"Server-side schedule answer wall time (including cache hits), by scheduler kind.", nil,
			metrics.L("scheduler", name))
	}
	for i, path := range schedPathNames {
		m.schedResults[i] = reg.Counter("sinr_schedule_results_total",
			"Schedule answers by production path: computed fresh, repaired from a superseded generation, or served from cache.",
			metrics.L("path", path))
	}
	reg.CounterFunc("sinr_schedule_cache_hits_total",
		"Schedule cache hits (current-generation answers without a build).",
		func() uint64 { return uint64(schedules.Hits()) })
	reg.CounterFunc("sinr_schedule_cache_builds_total",
		"Schedule builds started (fresh computes plus repairs).",
		func() uint64 { return uint64(schedules.Builds()) })
	reg.CounterFunc("sinr_schedule_cache_repairs_total",
		"Schedule builds that repaired a superseded schedule instead of recomputing.",
		func() uint64 { return uint64(schedules.Repairs()) })
	reg.GaugeFunc("sinr_schedule_cache_entries",
		"Schedules currently cached or building.",
		func() float64 { return float64(schedules.Len()) })

	reg.CounterFunc("sinr_resolver_cache_hits_total",
		"Resolver cache hits (including waits on an in-flight single-flight build).",
		func() uint64 { return uint64(cache.Hits()) })
	reg.CounterFunc("sinr_resolver_cache_misses_total",
		"Resolver cache misses, i.e. resolver builds started.",
		func() uint64 { return uint64(cache.Builds()) })
	reg.CounterFunc("sinr_resolver_cache_evicted_total",
		"Resolver cache LRU capacity evictions.",
		func() uint64 { return uint64(cache.Evicted()) })
	reg.CounterFunc("sinr_resolver_cache_invalidated_total",
		"Resolver cache entries dropped for superseded network generations.",
		func() uint64 { return uint64(cache.Invalidated()) })
	reg.GaugeFunc("sinr_resolver_cache_entries",
		"Resolvers currently cached or building.",
		func() float64 { return float64(cache.Len()) })

	metrics.RegisterGoRuntime(reg)
	return m
}

// registerNetworkGauges publishes the per-network generation gauges.
// Idempotent: re-registering a name keeps the first closures, which
// read through the long-lived entry and so always see the newest
// snapshot.
func (m *serveMetrics) registerNetworkGauges(name string, entry *netEntry) {
	label := metrics.L("network", name)
	m.reg.GaugeFunc("sinr_network_epoch",
		"Current dynamic-engine epoch of the network's served snapshot.",
		func() float64 {
			if snap := entry.snap.Load(); snap != nil && snap.epoch != nil {
				return float64(snap.epoch.Epoch())
			}
			return 0
		}, label)
	m.reg.GaugeFunc("sinr_network_version",
		"Current registry generation (registrations + deltas) of the network.",
		func() float64 {
			if snap := entry.snap.Load(); snap != nil {
				return float64(snap.version)
			}
			return 0
		}, label)
	m.reg.GaugeFunc("sinr_network_stations",
		"Stations in the network's served snapshot.",
		func() float64 {
			if snap := entry.snap.Load(); snap != nil {
				return float64(snap.net.NumStations())
			}
			return 0
		}, label)
}

// unregisterNetworkGauges drops the per-network generation gauges —
// the delete-path counterpart of registerNetworkGauges, without which
// a scrape would report versions and station counts for networks that
// no longer exist, forever.
func (m *serveMetrics) unregisterNetworkGauges(name string) {
	label := metrics.L("network", name)
	m.reg.Unregister("sinr_network_epoch", label)
	m.reg.Unregister("sinr_network_version", label)
	m.reg.Unregister("sinr_network_stations", label)
}

// observeResolve records a batch-resolve duration, attaching the
// request's trace as a bucket exemplar when the handler ran under the
// middleware (tr nil otherwise, e.g. in unit tests).
func (s *Server) observeResolve(ki int, secs float64, tr *trace.Trace) {
	if tr != nil && !tr.ID.IsZero() {
		s.m.resolveSeconds[ki].ObserveEx(secs, [16]byte(tr.ID), tr.Network)
		return
	}
	s.m.resolveSeconds[ki].Observe(secs)
}

// observeSched is observeResolve's schedule-endpoint counterpart.
func (s *Server) observeSched(ki int, secs float64, tr *trace.Trace) {
	if tr != nil && !tr.ID.IsZero() {
		s.m.schedSeconds[ki].ObserveEx(secs, [16]byte(tr.ID), tr.Network)
		return
	}
	s.m.schedSeconds[ki].Observe(secs)
}

// dropExemplars invalidates every histogram exemplar owned by the
// named network — the exemplar counterpart of unregisterNetworkGauges:
// without it a scrape could keep pointing at traces of a deleted
// network indefinitely.
func (m *serveMetrics) dropExemplars(name string) {
	for rt := route(0); rt < numRoutes; rt++ {
		m.latency[rt].DropExemplars(name)
	}
	for k := 0; k < resolve.NumKinds; k++ {
		m.resolveSeconds[k].DropExemplars(name)
	}
	for k := 0; k < sched.NumKinds; k++ {
		m.schedSeconds[k].DropExemplars(name)
	}
}

// kindIdx maps a Kind to its metric-array slot, clamping unknown
// values to 0 (exact) rather than indexing out of bounds.
func kindIdx(k resolve.Kind) int {
	if i := int(k); i >= 0 && i < resolve.NumKinds {
		return i
	}
	return 0
}

// statusWriter wraps the real ResponseWriter to capture the status
// code and byte count for the middleware; Unwrap keeps
// http.ResponseController (the stream handler's full-duplex and flush
// path) working through the wrapper. Instances are pooled so the
// steady-state request path allocates nothing — and because the
// request trace is embedded by value, its span buffer rides the same
// pool: span recording reuses storage across requests for free.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
	tr     trace.Trace
}

// traceOf recovers the request trace from the middleware's wrapper.
// Handlers invoked outside instrument (unit tests driving them with a
// bare httptest recorder) get nil, which every trace method accepts.
func traceOf(w http.ResponseWriter) *trace.Trace {
	if sw, ok := w.(*statusWriter); ok {
		return &sw.tr
	}
	return nil
}

var swPool = sync.Pool{New: func() any { return new(statusWriter) }}

func (w *statusWriter) reset(inner http.ResponseWriter) {
	w.ResponseWriter = inner
	w.status = 0
	w.bytes = 0
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// formatRequestID renders the X-Request-Id wire form of one (prefix,
// seq) identity — the same pair whose big-endian concatenation is the
// request's 16-byte trace ID, so logs and traces correlate by
// inspection. Only materialized when access logging is on.
func formatRequestID(prefix, seq uint64) string {
	return fmt.Sprintf("%08x-%06d", uint32(prefix), seq)
}

// instrument wraps h with the observability middleware: the inflight
// gauge, the per-route request counter and latency histogram, the
// request trace (begun from an inbound W3C traceparent when one is
// valid, minted from the server's IDSource otherwise, echoed back as
// a response traceparent, finished and offered to the flight
// recorder), and — when an access logger is configured — a
// per-request ID (echoed as X-Request-Id) and one structured JSON log
// line per request. With logging off the added steady-state work is a
// pool round-trip, the clock reads, a handful of atomics and one
// 55-byte header: per-request, never per-point, which is what keeps
// BenchmarkServeBatch on the CI 0-alloc list with tracing enabled.
func (s *Server) instrument(rt route, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.m.inflight.Inc()
		sw := swPool.Get().(*statusWriter)
		sw.reset(w)

		seq := s.ids.Next()
		tid := s.ids.TraceID(seq)
		var parent trace.SpanID
		if tp := r.Header.Get("traceparent"); tp != "" {
			if pid, psp, ok := trace.ParseTraceparent(tp); ok {
				tid, parent = pid, psp
			}
		}
		sw.tr.Begin(tid, parent, routeNames[rt])
		sw.Header().Set("Traceparent", trace.FormatTraceparent(tid, s.ids.SpanIDFor(seq)))

		var id string
		if s.opt.AccessLog != nil {
			id = formatRequestID(s.ids.Prefix(), seq)
			sw.Header().Set("X-Request-Id", id)
		}

		h(sw, r)

		status := sw.status
		if status == 0 {
			// The handler wrote nothing (e.g. the client vanished
			// mid-batch); account it as the 200 the empty response
			// implies.
			status = http.StatusOK
		}
		elapsed := sw.tr.Finish(status)
		network := sw.tr.Network
		bytes := sw.bytes
		s.recorder.Offer(int(rt), &sw.tr)
		s.m.latency[rt].ObserveEx(elapsed.Seconds(), [16]byte(tid), network)
		swPool.Put(sw)
		s.m.inflight.Dec()
		s.m.requests[rt][classOf(status)].Inc()

		if lg := s.opt.AccessLog; lg != nil {
			lvl := slog.LevelInfo
			switch {
			case status >= 500:
				lvl = slog.LevelError
			case status >= 400:
				lvl = slog.LevelWarn
			}
			lg.LogAttrs(r.Context(), lvl, "request",
				slog.String("id", id),
				slog.String("trace_id", tid.String()),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.String("route", routeNames[rt]),
				slog.Int("status", status),
				slog.Int64("bytes", bytes),
				slog.Duration("elapsed", elapsed),
			)
		}
	}
}

// handleDebugRequests serves the flight recorder: the slowest and most
// recently errored captured traces, as a JSON timeline. Query
// parameters: route=<name> restricts to one route's lane, min=<dur>
// (Go duration syntax, e.g. 50ms) drops faster traces.
func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	q := r.URL.Query()
	var min time.Duration
	if v := q.Get("min"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad min duration %q: %v", v, err)
			return
		}
		min = d
	}
	caps := s.recorder.Snapshot(q.Get("route"), min)
	if caps == nil {
		caps = []trace.Captured{}
	}
	writeJSON(w, http.StatusOK, caps)
}

// handleMetrics serves the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	s.m.reg.Handler().ServeHTTP(w, r)
}

// handleReady answers the readiness probe: 200 while accepting work,
// 503 once draining — the signal that tells a load balancer to stop
// routing here before shutdown starts severing streams.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	if s.ready.Load() {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
		return
	}
	w.Header().Set("Retry-After", s.retryAfterSecs)
	writeError(w, http.StatusServiceUnavailable, "draining")
}
