package serve

import (
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
)

// TestDrainCancelsStream: Drain must sever an in-flight NDJSON stream
// promptly (its context cancels, the pipeline closes, the handler
// returns), and the stream's goroutines must not leak. Readiness flips
// to 503 so load balancers stop routing before the cut.
func TestDrainCancelsStream(t *testing.T) {
	srv, ts := admissionServer(t, Options{}, "d")

	if resp, err := ts.Client().Get(ts.URL + "/readyz"); err != nil {
		t.Fatal(err)
	} else {
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("readyz before drain: %s, want 200", resp.Status)
		}
		resp.Body.Close()
	}

	ts.Client().CloseIdleConnections()
	before := runtime.NumGoroutine()

	release := holdSlot(t, ts, "d")

	srv.Drain()

	// The held stream must end without the client closing anything:
	// release blocks until the response body drains, which only happens
	// because drain cancelled the stream context server-side.
	done := make(chan struct{})
	go func() {
		release()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("stream still alive 5s after Drain")
	}

	if resp, err := ts.Client().Get(ts.URL + "/readyz"); err != nil {
		t.Fatal(err)
	} else {
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("readyz after drain: %s, want 503", resp.Status)
		}
		if ra := resp.Header.Get("Retry-After"); ra == "" {
			t.Fatal("readyz 503 missing Retry-After")
		}
		resp.Body.Close()
	}

	// Liveness is unaffected: the process is healthy, just not ready.
	if resp, err := ts.Client().Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz after drain: %s, want 200", resp.Status)
		}
		resp.Body.Close()
	}

	ts.Client().CloseIdleConnections()
	if after := waitForServeGoroutines(before, 5*time.Second); after > before+3 {
		t.Fatalf("goroutines: %d before stream, %d after drain — stream teardown leaks", before, after)
	}
}

// TestDrainRejectsQueued: a query waiting in the admission queue when
// Drain fires is rejected with 503 + Retry-After (it never got a slot,
// so there is nothing to finish) and counted as shed.
func TestDrainRejectsQueued(t *testing.T) {
	srv, ts := admissionServer(t, Options{MaxConcurrent: 1, MaxQueue: 4}, "d")

	release := holdSlot(t, ts, "d")
	defer release()

	respCh, errCh := locateAsync(t, ts, "d")
	waitUntil(t, 5*time.Second, func() bool { return srv.m.queued.Value() == 1 },
		"queued gauge never reached 1")

	srv.Drain()

	select {
	case resp := <-respCh:
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("queued query at drain: %s, want 503", resp.Status)
		}
		if ra := resp.Header.Get("Retry-After"); ra == "" {
			t.Fatal("drain 503 missing Retry-After")
		}
		out := decodeJSON[errorResponse](t, resp)
		if !strings.Contains(out.Error, "draining") {
			t.Fatalf("drain body %q", out.Error)
		}
	case err := <-errCh:
		t.Fatal(err)
	case <-time.After(10 * time.Second):
		t.Fatal("queued query never rejected after Drain")
	}

	samples := scrapeMetrics(t, ts)
	if v := mustValue(t, samples, "sinr_admission_shed_total", metrics.L("route", "locate")); v != 1 {
		t.Fatalf("shed counter = %g, want 1", v)
	}
}

// TestDrainKeepsBatches: Drain is deliberately gentle to batch
// requests — one racing Drain still answers 200, because only
// http.Server.Shutdown (closing the listener) stops new work, and
// in-flight batches run to completion.
func TestDrainKeepsBatches(t *testing.T) {
	srv, ts := admissionServer(t, Options{MaxConcurrent: 2}, "d")

	respCh, errCh := locateAsync(t, ts, "d")
	srv.Drain()
	select {
	case resp := <-respCh:
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("batch racing drain: %s, want 200", resp.Status)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	case err := <-errCh:
		t.Fatal(err)
	case <-time.After(10 * time.Second):
		t.Fatal("batch racing drain never completed")
	}

	// Drain is idempotent.
	srv.Drain()
	srv.Drain()
}
