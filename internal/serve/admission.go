package serve

import (
	"net/http"
)

// Admission control bounds what one network's query traffic can do to
// the process: each network gets a fixed number of concurrent
// execution slots (Options.MaxConcurrent, a buffered-channel
// semaphore per registry entry), and queries that find every slot
// taken wait in a single global queue bounded by Options.MaxQueue.
// A query that would push the queue past its bound is shed
// immediately with 429 and a Retry-After hint instead of queueing
// unboundedly — under overload the server degrades to a bounded
// amount of buffered work plus fast rejections, never to an unbounded
// pile of goroutines all holding request state.
//
// The two knobs compose into the isolation property the tests pin:
// a hot network can exhaust its own slots and fill the shared queue,
// but it can never occupy another network's slots — a query for a
// cold network admits immediately whenever its own semaphore has
// room, regardless of who is queueing.

// admit reserves an execution slot for one query against entry,
// reporting whether the caller may proceed (it must release the entry
// after serving). On false the response — 429 shed, 503 draining —
// has been written unless the client itself vanished. With admission
// disabled (no semaphore) admit is a nil check.
func (s *Server) admit(w http.ResponseWriter, r *http.Request, rt route, entry *netEntry) bool {
	if entry.sem == nil {
		return true
	}
	select {
	case entry.sem <- struct{}{}:
		return true
	default:
	}
	// Every slot is busy: join the global queue if it has room. The
	// queued gauge doubles as the depth counter, so the metric can
	// never drift from the limiter's own arithmetic.
	if depth := s.m.queued.Add(1); depth > int64(s.opt.MaxQueue) {
		s.m.queued.Add(-1)
		s.m.shed[rt].Inc()
		w.Header().Set("Retry-After", s.retryAfterSecs)
		writeError(w, http.StatusTooManyRequests,
			"overloaded: %d queries already queued; retry after %ss", s.opt.MaxQueue, s.retryAfterSecs)
		return false
	}
	defer s.m.queued.Add(-1)
	// The queue wait is the admission span: requests that admit on the
	// fast path above record nothing, so a trace with an
	// admission.queue span is exactly a request that found every slot
	// busy.
	tr := traceOf(w)
	qs := tr.Start("admission.queue")
	defer tr.End(qs)
	select {
	case entry.sem <- struct{}{}:
		return true
	case <-r.Context().Done():
		// The client gave up while queued; nothing to write.
		return false
	case <-s.drainCh:
		s.m.shed[rt].Inc()
		w.Header().Set("Retry-After", s.retryAfterSecs)
		writeError(w, http.StatusServiceUnavailable, "draining: not accepting new queries")
		return false
	}
}

// release returns the slot taken by a successful admit. Safe to call
// with admission disabled.
func (e *netEntry) release() {
	if e.sem != nil {
		<-e.sem
	}
}
