package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/geom"
	"repro/internal/resolve"
	"repro/internal/trace"
)

// NoStationHeard is the served sentinel for "no station heard",
// re-exported from core so clients of the wire format and users of the
// library see the same -1 convention.
const NoStationHeard = core.NoStationHeard

// DefaultEps is the locator performance parameter used when a request
// does not specify one — the same default a bare resolve.NewLocator
// uses, so library and server answer alike out of the box.
const DefaultEps = resolve.DefaultEps

// Options configures a Server.
type Options struct {
	// MaxLocators caps the locator cache (default 8). Each cached
	// locator is O(n/eps) memory.
	MaxLocators int
	// DefaultEps is the eps used by requests that omit it (default
	// DefaultEps).
	DefaultEps float64
	// Workers is the worker count for locator builds and batch
	// queries; 0 means one per schedulable CPU.
	Workers int
	// MaxBatch caps the number of points accepted in one /v1/locate
	// request (default 1<<20).
	MaxBatch int
	// MaxBodyBytes caps request body sizes before decoding (default
	// 64 MiB), so oversized payloads are rejected instead of allocated.
	MaxBodyBytes int64
	// MinEps is the smallest client-supplied eps accepted (default
	// 0.01). Locator builds cost O(n^3/eps) time and O(n/eps) memory,
	// so an unbounded floor would let one request monopolize the
	// server.
	MinEps float64

	// MaxSchedLinks caps the network size accepted by the schedule
	// endpoint (default 1<<17 links). Schedule builds are the most
	// expensive request the server takes; beyond the cap they get 413
	// instead of a slot.
	MaxSchedLinks int
	// MaxSchedules caps the schedule cache (default 32 entries).
	MaxSchedules int

	// MaxConcurrent bounds concurrently executing queries (batch and
	// stream) per network; 0 disables admission control. Each network
	// gets its own slots, so one hot network can never starve
	// another's queries.
	MaxConcurrent int
	// MaxQueue caps queries queued globally (across networks) waiting
	// for a per-network slot; a query beyond it is shed with 429 and
	// a Retry-After hint instead of queueing unboundedly. Default 128
	// when admission is enabled.
	MaxQueue int
	// RetryAfter is the Retry-After hint written on shed responses
	// (default 1s; sub-second values round up to 1s on the wire).
	RetryAfter time.Duration
	// AccessLog, when set, enables structured per-request logging:
	// one record per request with a process-unique request ID (echoed
	// as X-Request-Id), method, route, status, bytes and latency.
	// Leave nil to keep the request path allocation-free.
	AccessLog *slog.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof/ — opt-in
	// because profiling endpoints on a production port are a choice
	// the operator should make explicitly.
	EnablePprof bool
	// EnableDebugRequests mounts the flight recorder at GET
	// /debug/requests. Opt-in for the same reason as EnablePprof:
	// captured traces expose network names, request timings and trace
	// IDs to anyone who can reach the serving port. Traces are
	// recorded either way (DELETE eviction still drops them); only
	// the HTTP surface is gated.
	EnableDebugRequests bool
}

// snapshot is one immutable registered generation of a network.
// Requests capture a snapshot once and serve entirely from it, so a
// concurrent hot swap or PATCH delta never changes answers
// mid-request. kind and radius are the network's registered defaults;
// a request's own "resolver"/"radius" fields override them per query.
// epoch is the dynamic-engine epoch snapshot behind this generation —
// the station set net was materialized from — and is what the dynamic
// resolver kind answers with.
type snapshot struct {
	net     *core.Network
	version uint64
	kind    resolve.Kind
	radius  float64
	epoch   *dynamic.Snapshot
	// Declarative identity: the normalized spec this generation serves,
	// its canonical serialization (the GET /v1/networks/{name} readback,
	// byte-stable through create) and the content hash the reconcile
	// differ compares. A PATCH delta re-derives all three from the new
	// epoch so readback never goes stale.
	spec     *NetworkSpec
	specJSON []byte
	specHash string
}

// netEntry is a registry slot for one network name; the snapshot
// pointer is swapped atomically on replacement. mu serializes the
// writers — full re-registrations and PATCH deltas — so version
// numbers are strictly increasing per name; readers never take it.
// dyn is the mutation engine PATCH deltas flow through; a full POST
// replaces it wholesale. sem is the network's admission semaphore
// (nil when admission is disabled); it belongs to the name, not the
// generation, so hot swaps don't reset in-flight accounting.
type netEntry struct {
	snap atomic.Pointer[snapshot]
	mu   sync.Mutex
	dyn  *dynamic.Network
	sem  chan struct{}
}

// Server owns the network registry and locator cache and implements
// http.Handler. Create one with NewServer; it is safe for concurrent
// use.
type Server struct {
	opt       Options
	mux       *http.ServeMux
	cache     *resolverCache
	schedules *schedCache
	m         *serveMetrics
	ids       *trace.IDSource
	recorder  *trace.Recorder

	mu   sync.RWMutex // guards nets map shape and version bumps
	nets map[string]*netEntry

	// Drain state: ready answers /readyz; drainCh closes once Drain
	// is called, cancelling in-flight streams and queued admissions.
	ready          atomic.Bool
	drainCh        chan struct{}
	drainOnce      sync.Once
	retryAfterSecs string
}

// NewServer returns a Server with the given options.
func NewServer(opt Options) *Server {
	if opt.MaxLocators <= 0 {
		opt.MaxLocators = 8
	}
	if opt.DefaultEps <= 0 {
		opt.DefaultEps = DefaultEps
	}
	if opt.MaxBatch <= 0 {
		opt.MaxBatch = 1 << 20
	}
	if opt.MaxBodyBytes <= 0 {
		opt.MaxBodyBytes = 64 << 20
	}
	if opt.MinEps <= 0 {
		opt.MinEps = 0.01
	}
	if opt.MaxSchedLinks <= 0 {
		opt.MaxSchedLinks = 1 << 17
	}
	if opt.MaxSchedules <= 0 {
		opt.MaxSchedules = 32
	}
	if opt.MaxConcurrent > 0 && opt.MaxQueue <= 0 {
		opt.MaxQueue = 128
	}
	if opt.RetryAfter <= 0 {
		opt.RetryAfter = time.Second
	}
	s := &Server{
		opt:       opt,
		mux:       http.NewServeMux(),
		cache:     newResolverCache(opt.MaxLocators),
		schedules: newSchedCache(opt.MaxSchedules),
		nets:      make(map[string]*netEntry),
		ids:       trace.NewIDSource(),
		recorder:  trace.NewRecorder(recorderRoutes(), flightSlowN, flightErrN),
		drainCh:   make(chan struct{}),
	}
	s.m = newServeMetrics(s.cache, s.schedules)
	s.ready.Store(true)
	// Retry-After is whole seconds on the wire; round sub-second
	// hints up so a shed client never retries inside the same window.
	s.retryAfterSecs = strconv.FormatInt(int64((opt.RetryAfter+time.Second-1)/time.Second), 10)

	s.mux.HandleFunc("/v1/networks", s.instrument(routeNetworks, s.handleNetworks))
	s.mux.HandleFunc("GET /v1/networks/{name}", s.instrument(routeSpec, s.handleGetNetwork))
	s.mux.HandleFunc("DELETE /v1/networks/{name}", s.instrument(routeDelete, s.handleDeleteNetwork))
	s.mux.HandleFunc("PATCH /v1/networks/{name}", s.instrument(routePatch, s.handlePatchNetwork))
	s.mux.HandleFunc("POST /v1/networks/{name}/schedule", s.instrument(routeSchedule, s.handleSchedule))
	s.mux.HandleFunc("/v1/locate", s.instrument(routeLocate, s.handleLocate))
	s.mux.HandleFunc("/v1/locate/stream", s.instrument(routeStream, s.handleLocateStream))
	s.mux.HandleFunc("/healthz", s.instrument(routeHealth, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	}))
	s.mux.HandleFunc("/readyz", s.instrument(routeReady, s.handleReady))
	s.mux.HandleFunc("/metrics", s.instrument(routeMetrics, s.handleMetrics))
	if opt.EnableDebugRequests {
		s.mux.HandleFunc("/debug/requests", s.instrument(routeDebug, s.handleDebugRequests))
	}
	if opt.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

// SetReady flips the /readyz answer — the hook a supervisor uses to
// pull the replica out of rotation (readiness 503) before starting
// the drain proper, while /healthz keeps reporting liveness.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// Drain begins shutdown of long-lived work: /readyz turns 503,
// queries queued in admission are rejected, and in-flight NDJSON
// streams are cancelled so their connections can close. In-flight
// batch requests are NOT cancelled — they run to completion and are
// waited out by http.Server.Shutdown. Idempotent; the caller decides
// the deadline by choosing when to call it (typically a timer after
// SIGTERM, giving streams a grace period to finish naturally).
func (s *Server) Drain() {
	s.drainOnce.Do(func() {
		s.ready.Store(false)
		close(s.drainCh)
	})
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// LocatorBuilds returns the number of resolver builds the server has
// started — a cache-efficiency counter (and the single-flight test
// hook). The name predates the pluggable-resolver API: since every
// backend now flows through the same cache, the counter covers the
// cheap baselines too, not just Theorem 3 locators.
func (s *Server) LocatorBuilds() int64 { return s.cache.Builds() }

// Wire types.

// PointJSON is a point on the wire.
type PointJSON struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// The POST /v1/networks body is NetworkSpec (see spec.go); the old
// NetworkRequest name survives as a deprecated alias of it.

// NetworkResponse acknowledges a registration or a PATCH delta.
// Epoch and ApplyPath are set by PATCH responses: Epoch is the
// dynamic-engine epoch (1 on registration, +1 per delta; it tracks
// Version until a re-registration resets it) and ApplyPath says which
// maintenance path the delta took ("incremental" or "rebuild").
type NetworkResponse struct {
	Name      string `json:"name"`
	Version   uint64 `json:"version"`
	Stations  int    `json:"stations"`
	Resolver  string `json:"resolver"`
	Epoch     uint64 `json:"epoch,omitempty"`
	ApplyPath string `json:"apply_path,omitempty"`
}

// DeltaStationJSON is an arriving station of a PATCH delta. A zero or
// omitted power means the uniform default 1.
type DeltaStationJSON struct {
	X     float64 `json:"x"`
	Y     float64 `json:"y"`
	Power float64 `json:"power,omitempty"`
}

// PowerUpdateJSON changes the power of one existing station.
type PowerUpdateJSON struct {
	Station int     `json:"station"`
	Power   float64 `json:"power"`
}

// NetworkDeltaRequest is the PATCH /v1/networks/{name} body: a delta
// document applied to the network's current generation. Phases apply
// in order set_power, remove, add; set_power and remove address
// stations by their index in the generation the delta lands on
// (pre-delta indices throughout), removals compact the survivors in
// order, and additions append. In-flight requests keep answering from
// the generation they started on; the response's version is the new
// generation every later request sees.
type NetworkDeltaRequest struct {
	SetPower []PowerUpdateJSON  `json:"set_power,omitempty"`
	Remove   []int              `json:"remove,omitempty"`
	Add      []DeltaStationJSON `json:"add,omitempty"`
}

// LocateRequest is the POST /v1/locate body. Resolver picks the
// backend for this request (empty means the network's registered
// default); Eps applies to the locator backend and Radius to the UDG
// backend, both falling back to the network's registered defaults.
type LocateRequest struct {
	Network  string      `json:"network"`
	Resolver string      `json:"resolver,omitempty"`
	Eps      float64     `json:"eps,omitempty"`
	Radius   float64     `json:"radius,omitempty"`
	Points   []PointJSON `json:"points"`
}

// LocateResult is one answer: Kind is "H+" or "H-" (uncertainty rings
// are resolved server-side) and Station is the heard station index or
// NoStationHeard.
type LocateResult struct {
	Kind    string `json:"kind"`
	Station int    `json:"station"`
}

// LocateResponse is the POST /v1/locate reply. Resolver names the
// backend that answered; Eps is the locator performance parameter
// used (0 for non-locator backends).
type LocateResponse struct {
	Network  string         `json:"network"`
	Version  uint64         `json:"version"`
	Resolver string         `json:"resolver"`
	Eps      float64        `json:"eps"`
	Results  []LocateResult `json:"results"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// decodeBody decodes a JSON request body capped at limit bytes,
// reporting whether the caller can proceed; on failure the error
// response (400, or 413 for an oversized body) has been written.
func decodeBody(w http.ResponseWriter, r *http.Request, limit int64, v any) bool {
	body := http.MaxBytesReader(w, r.Body, limit)
	if err := json.NewDecoder(body).Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooLarge.Limit)
			return false
		}
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// handleNetworks serves POST (register/replace) and GET (list).
func (s *Server) handleNetworks(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.registerNetwork(w, r)
	case http.MethodGet:
		s.listNetworks(w)
	default:
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
	}
}

func (s *Server) registerNetwork(w http.ResponseWriter, r *http.Request) {
	var spec NetworkSpec
	if !decodeBody(w, r, s.opt.MaxBodyBytes, &spec) {
		return
	}
	// POST keeps its historical register/replace semantics: every call
	// lands a new generation (hot-swap tests and operators rely on the
	// version bump), so the convergent paths are bypassed.
	res, err := s.applySpec(&spec, false)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, NetworkResponse{
		Name: res.Name, Version: res.Version, Stations: res.Stations, Resolver: res.Resolver,
	})
}

// handleGetNetwork serves GET /v1/networks/{name}: the canonical
// serialization of the spec behind the live generation, byte-for-byte
// what a create with this spec stored. The generation and spec hash
// ride along as headers so pollers can watch for convergence without
// parsing the body.
func (s *Server) handleGetNetwork(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	entry, ok := s.entryFor(name)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown network %q", name)
		return
	}
	snap := entry.snap.Load()
	if snap == nil || snap.specJSON == nil {
		writeError(w, http.StatusNotFound, "unknown network %q", name)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Sinr-Network-Version", strconv.FormatUint(snap.version, 10))
	w.Header().Set("Sinr-Spec-Hash", snap.specHash)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(snap.specJSON)
}

// DeleteResponse acknowledges DELETE /v1/networks/{name}.
type DeleteResponse struct {
	Name    string `json:"name"`
	Deleted bool   `json:"deleted"`
}

// handleDeleteNetwork serves DELETE /v1/networks/{name}: the registry
// slot, every cached resolver and schedule of the name, and its
// per-network gauges all go — see Server.DeleteNetwork.
func (s *Server) handleDeleteNetwork(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.DeleteNetwork(name) {
		writeError(w, http.StatusNotFound, "unknown network %q", name)
		return
	}
	writeJSON(w, http.StatusOK, DeleteResponse{Name: name, Deleted: true})
}

// handlePatchNetwork applies a delta document to a registered network:
// the dynamic engine absorbs it (incrementally below the churn
// threshold, amortized-rebuild above) and the resulting epoch snapshot
// is hot-swapped in as a new generation. In-flight batches and streams
// finish on the generation they captured; their superseded resolvers
// are released from the cache once the swap lands.
func (s *Server) handlePatchNetwork(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req NetworkDeltaRequest
	if !decodeBody(w, r, s.opt.MaxBodyBytes, &req) {
		return
	}
	delta := dynamic.Delta{Remove: req.Remove}
	for _, pu := range req.SetPower {
		delta.SetPower = append(delta.SetPower, dynamic.PowerUpdate{Station: pu.Station, Power: pu.Power})
	}
	for _, st := range req.Add {
		delta.Add = append(delta.Add, dynamic.Station{Pos: geom.Pt(st.X, st.Y), Power: st.Power})
	}

	s.mu.RLock()
	entry, ok := s.nets[name]
	s.mu.RUnlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown network %q", name)
		return
	}

	tr := traceOf(w)
	tr.SetNetwork(name)
	entry.mu.Lock()
	old := entry.snap.Load()
	if old == nil || entry.dyn == nil {
		// The entry is published to s.nets before its first snapshot
		// and engine are stored (registerNetwork holds entry.mu for
		// that store, not s.mu); a PATCH racing the initial POST of
		// this name can win entry.mu first and must see the network
		// as not-yet-registered rather than Apply on a nil engine.
		entry.mu.Unlock()
		writeError(w, http.StatusNotFound, "unknown network %q", name)
		return
	}
	as := tr.Start("dynamic.apply")
	es, err := entry.dyn.Apply(delta)
	tr.End(as)
	if err != nil {
		entry.mu.Unlock()
		writeError(w, http.StatusBadRequest, "invalid delta: %v", err)
		return
	}
	version := old.version + 1
	next := &snapshot{
		net: es.Network(), version: version, kind: old.kind, radius: old.radius, epoch: es,
	}
	// Re-derive the declarative identity from the post-delta station
	// set, so spec readback and the reconcile differ track imperative
	// PATCHes too.
	if old.spec != nil {
		next.spec, next.specJSON, next.specHash = respec(old.spec, es.Network())
	}
	entry.snap.Store(next)
	entry.mu.Unlock()

	// Release the superseded generation's resolvers.
	s.cache.invalidate(name, version)

	stats := es.ApplyStats()
	writeJSON(w, http.StatusOK, NetworkResponse{
		Name:      name,
		Version:   version,
		Stations:  es.NumStations(),
		Resolver:  old.kind.String(),
		Epoch:     es.Epoch(),
		ApplyPath: stats.Path.String(),
	})
}

func (s *Server) listNetworks(w http.ResponseWriter) {
	s.mu.RLock()
	out := make([]NetworkResponse, 0, len(s.nets))
	for name, entry := range s.nets {
		if snap := entry.snap.Load(); snap != nil {
			out = append(out, NetworkResponse{
				Name: name, Version: snap.version, Stations: snap.net.NumStations(),
				Resolver: snap.kind.String(),
			})
		}
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	writeJSON(w, http.StatusOK, out)
}

// errUnknownNetwork distinguishes 404s from build failures.
var errUnknownNetwork = errors.New("serve: unknown network")

// errEpsTooSmall rejects eps below the server's floor before a build
// can start.
var errEpsTooSmall = errors.New("serve: eps below server minimum")

// resolverSpec is a request's backend selection: the resolver name
// (empty means the network's registered default) and the per-kind
// parameters, zero meaning "use the default".
type resolverSpec struct {
	kind   string
	eps    float64
	radius float64
}

// entryFor returns the registry entry of name, treating a name whose
// first registration has not yet stored its snapshot as unknown (the
// entry is published to s.nets before registerNetwork fills it).
func (s *Server) entryFor(name string) (*netEntry, bool) {
	s.mu.RLock()
	entry, ok := s.nets[name]
	s.mu.RUnlock()
	if !ok || entry.snap.Load() == nil {
		return nil, false
	}
	return entry, true
}

// resolverFor captures the current snapshot of entry and returns the
// resolver answering spec against it, building (or joining an
// in-flight single-flight build) on a cache miss. Parameters
// irrelevant to the chosen backend are normalized to zero before the
// cache lookup, so requests differing only in an ignored knob share
// one resolver. The returned kind and eps are the effective ones
// (after defaulting), for echoing in responses.
func (s *Server) resolverFor(tr *trace.Trace, name string, entry *netEntry, spec resolverSpec) (*snapshot, resolve.Resolver, resolve.Kind, float64, error) {
	snap := entry.snap.Load()
	if snap == nil {
		return nil, nil, 0, 0, errUnknownNetwork
	}
	kind := snap.kind
	if spec.kind != "" {
		k, err := resolve.ParseKind(spec.kind)
		if err != nil {
			return nil, nil, 0, 0, err
		}
		kind = k
	}
	// NaN/Inf knobs must be rejected before they can become part of a
	// cache key: a NaN float in a Go map key never matches on lookup
	// or delete, so it would turn every such request into a fresh
	// build plus a permanently leaked cache entry.
	eps, radius := 0.0, 0.0
	switch kind {
	case resolve.KindLocator:
		eps = spec.eps
		if eps == 0 {
			eps = s.opt.DefaultEps
		}
		if math.IsNaN(eps) || math.IsInf(eps, 0) || eps < s.opt.MinEps {
			return nil, nil, 0, 0, fmt.Errorf("%w (eps %g < %g)", errEpsTooSmall, eps, s.opt.MinEps)
		}
	case resolve.KindUDG:
		radius = spec.radius
		if radius == 0 {
			radius = snap.radius
		}
		if radius < 0 || math.IsNaN(radius) || math.IsInf(radius, 0) {
			return nil, nil, 0, 0, fmt.Errorf("serve: radius must be a non-negative finite number, got %g", radius)
		}
	}
	key := cacheKey{name: name, version: snap.version, kind: kind, eps: eps, radius: radius}
	// One span covers the cache interaction either way: it begins as a
	// hit (covering any wait on another request's in-flight build) and
	// is renamed when this request turns out to run the build itself.
	si := tr.Start("resolver.hit")
	defer tr.End(si)
	res, err := s.cache.get(key, func() (resolve.Resolver, error) {
		tr.SetName(si, "resolver.build")
		if kind == resolve.KindDynamic {
			// The epoch snapshot already carries its query structures:
			// an O(1) wrap instead of a backend build, which is what
			// keeps per-PATCH resolver turnover off the rebuild cost.
			return resolve.NewDynamicSnapshot(snap.epoch, resolve.WithWorkers(s.opt.Workers))
		}
		opts := []resolve.Option{resolve.WithWorkers(s.opt.Workers)}
		if kind == resolve.KindLocator {
			opts = append(opts, resolve.WithEpsilon(eps))
		}
		if kind == resolve.KindUDG && radius > 0 {
			opts = append(opts, resolve.WithRadius(radius))
		}
		return resolve.New(kind, snap.net, opts...)
	})
	if err != nil {
		return nil, nil, 0, 0, err
	}
	return snap, res, kind, eps, nil
}

func locateStatus(err error) int {
	if errors.Is(err, errUnknownNetwork) {
		return http.StatusNotFound
	}
	return http.StatusBadRequest
}

// Wire kind strings, hoisted so resultFor stays allocation-free: the
// compiler treats a method call on a constant as escaping at the call
// site, and resultFor runs once per point in every batch.
var (
	kindReception   = core.Reception.String()
	kindNoReception = core.NoReception.String()
)

// resultFor converts an exact Location to the wire shape.
//
//sinr:hotpath
func resultFor(loc core.Location) LocateResult {
	if loc.Kind == core.Reception {
		return LocateResult{Kind: kindReception, Station: loc.Station}
	}
	return LocateResult{Kind: kindNoReception, Station: NoStationHeard}
}

// locateScratch is the pooled per-request scratch of the batch locate
// handler: the decoded request (whose Points array the JSON decoder
// reuses), the query points, the resolver answers and the wire
// results all ride along between requests, so steady-state batch
// serving recycles its large buffers instead of re-allocating them
// per request.
type locateScratch struct {
	req     LocateRequest
	pts     []geom.Point
	answers []core.Location
	results []LocateResult
}

var locatePool = sync.Pool{New: func() any { return new(locateScratch) }}

// grow returns buf resized to n entries, reusing its backing array
// when the capacity allows.
func grow[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	return buf[:n]
}

func (s *Server) handleLocate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	sc := locatePool.Get().(*locateScratch)
	defer locatePool.Put(sc)
	// The JSON decoder only writes fields present in the body, so the
	// recycled request — including every element of the reused Points
	// array, where an omitted coordinate would otherwise inherit a
	// previous request's value — must be zeroed by hand before the
	// decoder refills it in place.
	pts := sc.req.Points[:cap(sc.req.Points)]
	clear(pts)
	sc.req = LocateRequest{Points: pts[:0]}
	if !decodeBody(w, r, s.opt.MaxBodyBytes, &sc.req) {
		return
	}
	req := &sc.req
	if len(req.Points) > s.opt.MaxBatch {
		writeError(w, http.StatusRequestEntityTooLarge, "batch of %d points exceeds limit %d", len(req.Points), s.opt.MaxBatch)
		return
	}
	entry, ok := s.entryFor(req.Network)
	if !ok {
		writeError(w, http.StatusNotFound, "%v", fmt.Errorf("%w %q", errUnknownNetwork, req.Network))
		return
	}
	tr := traceOf(w)
	tr.SetNetwork(req.Network)
	// Admission gates everything expensive — the resolver build as
	// much as the batch itself.
	if !s.admit(w, r, routeLocate, entry) {
		return
	}
	defer entry.release()
	snap, res, kind, eps, err := s.resolverFor(tr, req.Network, entry, resolverSpec{
		kind: req.Resolver, eps: req.Eps, radius: req.Radius,
	})
	if err != nil {
		writeError(w, locateStatus(err), "%v", err)
		return
	}
	sc.pts = grow(sc.pts, len(req.Points))
	for i, p := range req.Points {
		sc.pts[i] = geom.Pt(p.X, p.Y)
	}
	sc.answers = grow(sc.answers, len(sc.pts))
	ki := kindIdx(kind)
	rs := tr.Start("resolve.batch")
	t0 := time.Now()
	if err := res.ResolveBatch(r.Context(), sc.pts, sc.answers); err != nil {
		return // client went away mid-batch; nothing left to tell it
	}
	tr.End(rs)
	s.observeResolve(ki, time.Since(t0).Seconds(), tr)
	s.m.queries[ki].Add(uint64(len(sc.pts)))
	// Epoch lag: how many generations moved under this request while
	// it served from its pinned snapshot (0 in the steady state).
	if latest := entry.snap.Load(); latest != nil {
		s.m.epochLag.Observe(float64(latest.version - snap.version))
	}
	sc.results = grow(sc.results, len(sc.answers))
	for i, a := range sc.answers {
		sc.results[i] = resultFor(a)
	}
	es := tr.Start("encode")
	writeJSON(w, http.StatusOK, LocateResponse{
		Network: req.Network, Version: snap.version, Resolver: kind.String(), Eps: eps, Results: sc.results,
	})
	tr.End(es)
}

// handleLocateStream answers NDJSON point lines with NDJSON result
// lines over the selected resolver's ResolveStream. The request
// context cancels the pipeline, so a client disconnect tears the
// stream down cleanly. Query parameters: network, resolver, eps,
// radius — same semantics as the /v1/locate body fields.
func (s *Server) handleLocateStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	q := r.URL.Query()
	name := q.Get("network")
	spec := resolverSpec{kind: q.Get("resolver")}
	if v := q.Get("eps"); v != "" {
		parsed, err := strconv.ParseFloat(v, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad eps %q", v)
			return
		}
		spec.eps = parsed
	}
	if v := q.Get("radius"); v != "" {
		parsed, err := strconv.ParseFloat(v, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad radius %q", v)
			return
		}
		spec.radius = parsed
	}
	entry, ok := s.entryFor(name)
	if !ok {
		writeError(w, http.StatusNotFound, "%v", fmt.Errorf("%w %q", errUnknownNetwork, name))
		return
	}
	tr := traceOf(w)
	tr.SetNetwork(name)
	if !s.admit(w, r, routeStream, entry) {
		return
	}
	defer entry.release()
	snap, res, kind, _, err := s.resolverFor(tr, name, entry, spec)
	if err != nil {
		writeError(w, locateStatus(err), "%v", err)
		return
	}

	// The stream interleaves reads of the request body with response
	// writes; HTTP/1.x servers sever the body on the first write unless
	// full-duplex is enabled (HTTP/2 is duplex natively and may report
	// an error here, which is fine to ignore).
	rc := http.NewResponseController(w)
	_ = rc.EnableFullDuplex()

	// The stream's context cancels on client disconnect (the request
	// context) or on server drain — an NDJSON stream can otherwise
	// outlive a shutdown indefinitely, and Drain's contract is that
	// streams die so http.Server.Shutdown can finish.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	go func() {
		select {
		case <-s.drainCh:
			cancel()
		case <-ctx.Done():
		}
	}()
	in := make(chan geom.Point)
	// Every served backend resolves uncertainty rings itself (exact
	// fallback is on), so the stream needs no point echo to settle H?
	// answers — the resolver's output is final.
	out := res.ResolveStream(ctx, in)

	// readErr carries a malformed-line error from the reader to the
	// writer, which reports it as a trailing NDJSON error object after
	// the accepted points drain — a 200 status is already on the wire,
	// so the error line is what tells the client the stream was
	// truncated rather than complete.
	readErr := make(chan error, 1)
	go func() {
		defer close(in)
		sc := bufio.NewScanner(r.Body)
		sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
		for sc.Scan() {
			line := sc.Bytes()
			if len(line) == 0 {
				continue
			}
			var p PointJSON
			if err := json.Unmarshal(line, &p); err != nil {
				readErr <- fmt.Errorf("bad point line: %v", err)
				return
			}
			select {
			case <-ctx.Done():
				return
			case in <- geom.Pt(p.X, p.Y):
			}
		}
		if err := sc.Err(); err != nil {
			readErr <- fmt.Errorf("reading stream: %v", err)
		}
	}()

	w.Header().Set("Content-Type", "application/x-ndjson")
	// The whole stream is answered from the snapshot captured above; a
	// concurrent hot swap never changes answers mid-stream. The echoed
	// version lets clients (and the swap-consistency tests) pin every
	// answer line to the network generation that produced it.
	w.Header().Set("Sinr-Network-Version", strconv.FormatUint(snap.version, 10))
	w.Header().Set("Sinr-Resolver", kind.String())
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	ss := tr.Start("stream")
	defer tr.End(ss)
	const flushEvery = 256
	n := 0
	for a := range out {
		if err := enc.Encode(resultFor(a)); err != nil {
			return // client went away; ctx cancellation stops the pipeline
		}
		// Flush on batch boundaries and whenever no answer is
		// immediately pending, so a request/response-lockstep client
		// sees each answer without waiting for the 4K response buffer
		// to fill (mirroring LocateStream's trickle-flush design).
		if n++; n%flushEvery == 0 || len(out) == 0 {
			_ = rc.Flush()
		}
	}
	s.m.queries[kindIdx(kind)].Add(uint64(n))
	select {
	case err := <-readErr:
		_ = enc.Encode(errorResponse{Error: err.Error()})
	default:
	}
	_ = rc.Flush()
}
