package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/geom"
	"repro/internal/workload"
)

// benchServer boots a test server with one registered 64-station
// network and a warmed locator, so the benchmarks measure serving, not
// the one-time build.
func benchServer(b *testing.B, eps float64) (*httptest.Server, []geom.Point) {
	b.Helper()
	gen := workload.NewGenerator(1)
	box := geom.NewBox(geom.Pt(-5, -5), geom.Pt(5, 5))
	stations, err := gen.UniformSeparated(64, box, 0.05)
	if err != nil {
		b.Fatal(err)
	}
	srv := NewServer(Options{})
	ts := httptest.NewServer(srv)
	b.Cleanup(ts.Close)

	reg := NetworkRequest{Name: "bench", Noise: 0.01, Beta: 3}
	reg.Stations = make([]SpecStation, len(stations))
	for i, s := range stations {
		reg.Stations[i] = SpecStation{X: s.X, Y: s.Y}
	}
	body, _ := json.Marshal(reg)
	resp, err := ts.Client().Post(ts.URL+"/v1/networks", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()

	// Warm the locator cache.
	warm, _ := json.Marshal(LocateRequest{Network: "bench", Eps: eps, Points: []PointJSON{{}}})
	resp, err = ts.Client().Post(ts.URL+"/v1/locate", "application/json", bytes.NewReader(warm))
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	return ts, gen.QueryPoints(4096, box)
}

// BenchmarkServeLocateBatch measures end-to-end served batch locate
// throughput (HTTP + JSON + sharded exact batch query); one iteration
// is one 1024-point batch.
func BenchmarkServeLocateBatch(b *testing.B) {
	const eps = 0.1
	ts, pts := benchServer(b, eps)
	req := LocateRequest{Network: "bench", Eps: eps}
	req.Points = make([]PointJSON, 1024)
	for i := range req.Points {
		p := pts[i%len(pts)]
		req.Points[i] = PointJSON{X: p.X, Y: p.Y}
	}
	body, _ := json.Marshal(req)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := ts.Client().Post(ts.URL+"/v1/locate", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %s", resp.Status)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	b.SetBytes(1024)
	b.ReportMetric(float64(b.N)*1024/b.Elapsed().Seconds(), "queries/s")
}

// nopWriter discards the response body: BenchmarkServeBatch measures
// the server, not a client socket.
type nopWriter struct {
	h      http.Header
	status int
}

func (w *nopWriter) Header() http.Header         { return w.h }
func (w *nopWriter) Write(b []byte) (int, error) { return len(b), nil }
func (w *nopWriter) WriteHeader(code int)        { w.status = code }

// replayBody replays one fixed payload as a request body across
// iterations without reallocating.
type replayBody struct{ bytes.Reader }

func (b *replayBody) Close() error { return nil }

// BenchmarkServeBatch is the CI 0-alloc gate for the instrumented
// request path: one op is one query point served through the full
// handler stack — mux dispatch, observability middleware, admission,
// JSON decode, sharded resolve, JSON encode — with metrics and
// admission enabled. The bounded per-request overhead (decoder state,
// response headers, batch fan-out) is amortized over the 1024-point
// batch; anything that allocates per point — the batch loop, a metric
// record, an admission slot — surfaces as a nonzero allocs/op.
func BenchmarkServeBatch(b *testing.B) {
	gen := workload.NewGenerator(1)
	box := geom.NewBox(geom.Pt(-5, -5), geom.Pt(5, 5))
	stations, err := gen.UniformSeparated(64, box, 0.05)
	if err != nil {
		b.Fatal(err)
	}
	srv := NewServer(Options{MaxConcurrent: 4})
	reg := NetworkRequest{Name: "bench", Noise: 0.01, Beta: 3}
	reg.Stations = make([]SpecStation, len(stations))
	for i, s := range stations {
		reg.Stations[i] = SpecStation{X: s.X, Y: s.Y}
	}
	regBody, _ := json.Marshal(reg)
	rw := httptest.NewRecorder()
	srv.ServeHTTP(rw, httptest.NewRequest(http.MethodPost, "/v1/networks", bytes.NewReader(regBody)))
	if rw.Code != http.StatusOK {
		b.Fatalf("register: %d %s", rw.Code, rw.Body)
	}

	const batch = 1024
	pts := gen.QueryPoints(batch, box)
	req := LocateRequest{Network: "bench", Resolver: "exact"}
	req.Points = make([]PointJSON, batch)
	for i, p := range pts {
		req.Points[i] = PointJSON{X: p.X, Y: p.Y}
	}
	payload, _ := json.Marshal(req)

	body := new(replayBody)
	hreq := httptest.NewRequest(http.MethodPost, "/v1/locate", nil)
	w := &nopWriter{h: make(http.Header)}
	serveOnce := func() {
		body.Reset(payload)
		hreq.Body = body
		w.status = 0
		srv.ServeHTTP(w, hreq)
		if w.status != http.StatusOK {
			b.Fatalf("status %d", w.status)
		}
	}
	serveOnce() // warm the resolver cache and the scratch pools

	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; done += batch {
		serveOnce()
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
}

// BenchmarkServeLocateStream measures NDJSON streaming throughput; one
// iteration streams 1024 points through /v1/locate/stream.
func BenchmarkServeLocateStream(b *testing.B) {
	const eps = 0.1
	ts, pts := benchServer(b, eps)
	var lines bytes.Buffer
	for i := 0; i < 1024; i++ {
		p := pts[i%len(pts)]
		fmt.Fprintf(&lines, "{\"x\":%g,\"y\":%g}\n", p.X, p.Y)
	}
	payload := lines.Bytes()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := ts.Client().Post(ts.URL+"/v1/locate/stream?network=bench&eps=0.1",
			"application/x-ndjson", bytes.NewReader(payload))
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %s", resp.Status)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	b.ReportMetric(float64(b.N)*1024/b.Elapsed().Seconds(), "queries/s")
}
