package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/geom"
	"repro/internal/workload"
)

// benchServer boots a test server with one registered 64-station
// network and a warmed locator, so the benchmarks measure serving, not
// the one-time build.
func benchServer(b *testing.B, eps float64) (*httptest.Server, []geom.Point) {
	b.Helper()
	gen := workload.NewGenerator(1)
	box := geom.NewBox(geom.Pt(-5, -5), geom.Pt(5, 5))
	stations, err := gen.UniformSeparated(64, box, 0.05)
	if err != nil {
		b.Fatal(err)
	}
	srv := NewServer(Options{})
	ts := httptest.NewServer(srv)
	b.Cleanup(ts.Close)

	reg := NetworkRequest{Name: "bench", Noise: 0.01, Beta: 3}
	reg.Stations = make([]PointJSON, len(stations))
	for i, s := range stations {
		reg.Stations[i] = PointJSON{X: s.X, Y: s.Y}
	}
	body, _ := json.Marshal(reg)
	resp, err := ts.Client().Post(ts.URL+"/v1/networks", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()

	// Warm the locator cache.
	warm, _ := json.Marshal(LocateRequest{Network: "bench", Eps: eps, Points: []PointJSON{{}}})
	resp, err = ts.Client().Post(ts.URL+"/v1/locate", "application/json", bytes.NewReader(warm))
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	return ts, gen.QueryPoints(4096, box)
}

// BenchmarkServeLocateBatch measures end-to-end served batch locate
// throughput (HTTP + JSON + sharded exact batch query); one iteration
// is one 1024-point batch.
func BenchmarkServeLocateBatch(b *testing.B) {
	const eps = 0.1
	ts, pts := benchServer(b, eps)
	req := LocateRequest{Network: "bench", Eps: eps}
	req.Points = make([]PointJSON, 1024)
	for i := range req.Points {
		p := pts[i%len(pts)]
		req.Points[i] = PointJSON{X: p.X, Y: p.Y}
	}
	body, _ := json.Marshal(req)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := ts.Client().Post(ts.URL+"/v1/locate", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %s", resp.Status)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	b.SetBytes(1024)
	b.ReportMetric(float64(b.N)*1024/b.Elapsed().Seconds(), "queries/s")
}

// BenchmarkServeLocateStream measures NDJSON streaming throughput; one
// iteration streams 1024 points through /v1/locate/stream.
func BenchmarkServeLocateStream(b *testing.B) {
	const eps = 0.1
	ts, pts := benchServer(b, eps)
	var lines bytes.Buffer
	for i := 0; i < 1024; i++ {
		p := pts[i%len(pts)]
		fmt.Fprintf(&lines, "{\"x\":%g,\"y\":%g}\n", p.X, p.Y)
	}
	payload := lines.Bytes()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := ts.Client().Post(ts.URL+"/v1/locate/stream?network=bench&eps=0.1",
			"application/x-ndjson", bytes.NewReader(payload))
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %s", resp.Status)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	b.ReportMetric(float64(b.N)*1024/b.Elapsed().Seconds(), "queries/s")
}
