package serve

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
)

func scheduleURL(name string) string { return "/v1/networks/" + name + "/schedule" }

// localProblem rebuilds the server's feasibility instance client-side
// from the registered parameters — the verification a real client
// (cmd/sinrload) performs.
func localProblem(t *testing.T, net *core.Network, linkLen float64) (*sched.SINRProblem, []sched.Link) {
	t.Helper()
	powers := make([]float64, net.NumStations())
	for i := range powers {
		powers[i] = net.Power(i)
	}
	links := sched.DeriveLinks(net.Stations(), powers, linkLen)
	p, err := sched.NewSINRProblem(links, net.Noise(), net.Beta())
	if err != nil {
		t.Fatal(err)
	}
	p.Alpha = net.Alpha()
	return p, links
}

func TestScheduleEndToEnd(t *testing.T) {
	stations := testStations(t, 24, 21)
	net, err := core.NewUniform(stations, 0.001, 2)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp := postJSON(t, ts, "/v1/networks", registerReq("grid", stations, 0.001, 2))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register: %s", resp.Status)
	}
	resp.Body.Close()

	for _, kind := range []string{"greedy", "lenclass", "repair"} {
		resp := postJSON(t, ts, scheduleURL("grid"), ScheduleRequest{Scheduler: kind})
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			t.Fatalf("%s: %s: %s", kind, resp.Status, body)
		}
		out := decodeJSON[ScheduleResponse](t, resp)
		if out.Scheduler != kind || out.Model != "sinr" || out.Version != 1 {
			t.Fatalf("%s: header = %+v", kind, out)
		}
		if out.Path != "computed" {
			t.Fatalf("%s: first answer path = %q, want computed", kind, out.Path)
		}
		if out.NumLinks != len(stations) || out.NumSlots != len(out.Slots) {
			t.Fatalf("%s: counts = %+v", kind, out)
		}
		// The served slots must validate against a client-side rebuild
		// of the same instance — server and client agree on the links
		// without the links crossing the wire.
		p, links := localProblem(t, net, out.LinkLen)
		s := &sched.Schedule{Slots: out.Slots}
		if err := s.Validate(p); err != nil {
			t.Fatalf("%s: served schedule invalid locally: %v", kind, err)
		}
		if s.NumLinks() != len(links) {
			t.Fatalf("%s: %d of %d links scheduled", kind, s.NumLinks(), len(links))
		}

		// Same request again: served from cache, same slots.
		resp = postJSON(t, ts, scheduleURL("grid"), ScheduleRequest{Scheduler: kind})
		again := decodeJSON[ScheduleResponse](t, resp)
		if again.Path != "cached" {
			t.Fatalf("%s: repeat path = %q, want cached", kind, again.Path)
		}
		if fmt.Sprint(again.Slots) != fmt.Sprint(out.Slots) {
			t.Fatalf("%s: cached slots differ", kind)
		}
	}

	// The protocol model answers too and validates under its own rule.
	resp = postJSON(t, ts, scheduleURL("grid"), ScheduleRequest{Model: "protocol"})
	out := decodeJSON[ScheduleResponse](t, resp)
	if out.Model != "protocol" || out.Path != "computed" {
		t.Fatalf("protocol = %+v", out)
	}
	powers := make([]float64, net.NumStations())
	for i := range powers {
		powers[i] = net.Power(i)
	}
	links := sched.DeriveLinks(net.Stations(), powers, out.LinkLen)
	pp, err := sched.NewProtocolProblem(links, 1.5*out.LinkLen, 3*out.LinkLen)
	if err != nil {
		t.Fatal(err)
	}
	if err := (&sched.Schedule{Slots: out.Slots}).Validate(pp); err != nil {
		t.Fatalf("protocol schedule invalid locally: %v", err)
	}
}

// TestSchedulePatchThenRepair is the tentpole serve behavior: a PATCH
// delta bumps the generation, and the next schedule request repairs
// the cached schedule instead of recomputing it.
func TestSchedulePatchThenRepair(t *testing.T) {
	stations := testStations(t, 20, 33)
	srv := NewServer(Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	postJSON(t, ts, "/v1/networks", registerReq("churn", stations, 0.001, 2)).Body.Close()

	resp := postJSON(t, ts, scheduleURL("churn"), ScheduleRequest{})
	first := decodeJSON[ScheduleResponse](t, resp)
	if first.Path != "computed" || first.Version != 1 {
		t.Fatalf("first = %+v", first)
	}

	// Remove two stations, add one.
	resp = patchJSON(t, ts, "churn", NetworkDeltaRequest{
		Remove: []int{0, 7},
		Add:    []DeltaStationJSON{{X: 4.5, Y: -4.5}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("patch: %s", resp.Status)
	}
	resp.Body.Close()

	resp = postJSON(t, ts, scheduleURL("churn"), ScheduleRequest{})
	second := decodeJSON[ScheduleResponse](t, resp)
	if second.Path != "repaired" {
		t.Fatalf("post-PATCH path = %q, want repaired (%+v)", second.Path, second)
	}
	if second.Version != 2 {
		t.Fatalf("post-PATCH version = %d, want 2", second.Version)
	}
	if second.Repair == nil {
		t.Fatal("repaired answer carries no repair stats")
	}
	// 18 survivors kept or displaced, 1 arrival placed fresh.
	if got := second.Repair.Kept + second.Repair.Displaced; got != 18 {
		t.Errorf("kept+displaced = %d, want 18", got)
	}
	if second.Repair.Placed < 1 {
		t.Errorf("placed = %d, want >= 1 (the arrival)", second.Repair.Placed)
	}
	if second.NumLinks != 19 {
		t.Errorf("num_links = %d, want 19", second.NumLinks)
	}

	// The repaired schedule validates against the new generation's
	// derived links, rebuilt client-side from the server's answers.
	snap := srv.nets["churn"].snap.Load()
	p, _ := localProblem(t, snap.net, 1)
	if err := (&sched.Schedule{Slots: second.Slots}).Validate(p); err != nil {
		t.Fatalf("repaired schedule invalid: %v", err)
	}

	// And a third request is a plain cache hit on the new generation.
	resp = postJSON(t, ts, scheduleURL("churn"), ScheduleRequest{})
	third := decodeJSON[ScheduleResponse](t, resp)
	if third.Path != "cached" || third.Version != 2 {
		t.Fatalf("third = %+v", third)
	}

	if srv.schedules.Repairs() != 1 {
		t.Errorf("cache repairs = %d, want 1", srv.schedules.Repairs())
	}
}

func TestScheduleErrors(t *testing.T) {
	stations := testStations(t, 8, 40)
	srv := NewServer(Options{MaxSchedLinks: 8})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	postJSON(t, ts, "/v1/networks", registerReq("tiny", stations, 0.001, 2)).Body.Close()

	cases := []struct {
		name string
		url  string
		req  ScheduleRequest
		want int
	}{
		{"unknown network", scheduleURL("ghost"), ScheduleRequest{}, http.StatusNotFound},
		{"unknown scheduler", scheduleURL("tiny"), ScheduleRequest{Scheduler: "magic"}, http.StatusBadRequest},
		{"unknown model", scheduleURL("tiny"), ScheduleRequest{Model: "graph"}, http.StatusBadRequest},
		{"unknown order", scheduleURL("tiny"), ScheduleRequest{Order: "random"}, http.StatusBadRequest},
		{"negative link_len", scheduleURL("tiny"), ScheduleRequest{LinkLen: -1}, http.StatusBadRequest},
		{"negative beta", scheduleURL("tiny"), ScheduleRequest{Beta: -2}, http.StatusBadRequest},
		{"inverted radii", scheduleURL("tiny"), ScheduleRequest{Model: "protocol", ConnRadius: 3, InterfRadius: 1}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp := postJSON(t, ts, tc.url, tc.req)
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.want, body)
		}
	}

	// Oversize: register a network above the scheduling cap.
	big := testStations(t, 9, 41)
	postJSON(t, ts, "/v1/networks", registerReq("big", big, 0.001, 2)).Body.Close()
	resp := postJSON(t, ts, scheduleURL("big"), ScheduleRequest{})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversize network: status %d, want 413", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestScheduleSingleFlight: concurrent identical requests share one
// build.
func TestScheduleSingleFlight(t *testing.T) {
	stations := testStations(t, 32, 50)
	srv := NewServer(Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	postJSON(t, ts, "/v1/networks", registerReq("flight", stations, 0.001, 2)).Body.Close()

	const clients = 8
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := postJSON(t, ts, scheduleURL("flight"), ScheduleRequest{})
			out := decodeJSON[ScheduleResponse](t, resp)
			if out.NumLinks != 32 {
				t.Errorf("num_links = %d", out.NumLinks)
			}
		}()
	}
	wg.Wait()
	if builds := srv.schedules.Builds(); builds != 1 {
		t.Errorf("builds = %d, want 1 (single flight)", builds)
	}
}

// TestScheduleMetrics: the endpoint shows up in the exposition with
// per-kind and per-path counters.
func TestScheduleMetrics(t *testing.T) {
	stations := testStations(t, 16, 60)
	srv := NewServer(Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	postJSON(t, ts, "/v1/networks", registerReq("obs", stations, 0.001, 2)).Body.Close()

	postJSON(t, ts, scheduleURL("obs"), ScheduleRequest{Scheduler: "lenclass"}).Body.Close()
	postJSON(t, ts, scheduleURL("obs"), ScheduleRequest{Scheduler: "lenclass"}).Body.Close()

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		`sinr_schedule_requests_total{scheduler="lenclass"} 2`,
		`sinr_schedule_results_total{path="computed"} 1`,
		`sinr_schedule_results_total{path="cached"} 1`,
		`sinr_http_requests_total{code="2xx",route="schedule"} 2`,
		`sinr_schedule_cache_builds_total 1`,
		`sinr_schedule_cache_hits_total 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
	if !strings.Contains(text, `sinr_schedule_seconds_bucket{scheduler="lenclass",le="+Inf"} 2`) &&
		!strings.Contains(text, `sinr_schedule_seconds_bucket{le="+Inf",scheduler="lenclass"} 2`) {
		t.Error("metrics exposition missing schedule latency histogram")
	}
}
