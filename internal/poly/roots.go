package poly

import (
	"math"
	"sort"
)

// RootBound returns a radius R such that all real roots of p lie in
// [-R, R] (Cauchy's bound: 1 + max_i |c_i / c_lead|). It returns 0 for
// constant or zero polynomials.
func RootBound(p Poly) float64 {
	t := p.TrimRelative(sturmTrimRel)
	if len(t) <= 1 {
		return 0
	}
	lead := math.Abs(t[len(t)-1])
	var m float64
	for _, c := range t[:len(t)-1] {
		if a := math.Abs(c) / lead; a > m {
			m = a
		}
	}
	return 1 + m
}

// Interval is a closed real interval [Lo, Hi].
type Interval struct {
	Lo, Hi float64
}

// Mid returns the interval midpoint.
func (iv Interval) Mid() float64 { return (iv.Lo + iv.Hi) / 2 }

// Width returns Hi - Lo.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// IsolateRoots returns disjoint intervals, each containing exactly one
// distinct real root of p, covering all distinct real roots in (a, b].
// Isolation proceeds by Sturm-count bisection down to intervals with a
// single root.
func IsolateRoots(p Poly, a, b float64) []Interval {
	seq := NewSturmSequence(p)
	if len(seq) == 0 {
		return nil
	}
	return isolate(seq, a, b, seq.CountRootsIn(a, b), 0)
}

// maxIsolationDepth caps bisection recursion; beyond this depth the
// interval is returned as-is (possibly holding a root cluster that
// float64 cannot separate).
const maxIsolationDepth = 200

func isolate(seq SturmSequence, a, b float64, count, depth int) []Interval {
	switch {
	case count <= 0:
		return nil
	case count == 1 || depth >= maxIsolationDepth || b-a <= 1e-300:
		return []Interval{{a, b}}
	}
	mid := (a + b) / 2
	left := seq.CountRootsIn(a, mid)
	out := isolate(seq, a, mid, left, depth+1)
	return append(out, isolate(seq, mid, b, count-left, depth+1)...)
}

// RefineRoot shrinks an isolating interval around a single root of p
// down to width tol, then polishes the estimate with a few Newton
// steps guarded to stay in the interval.
//
// When the interval endpoints straddle a sign change, plain sign
// bisection on direct Horner evaluations is used: it is robust against
// the coefficient-cascade noise that can creep into deep Sturm chains
// of high-degree polynomials (where count-driven bisection may settle
// measurably away from the actual root). Sturm-count bisection is kept
// for the even-multiplicity case, where p does not change sign.
func RefineRoot(p Poly, iv Interval, tol float64) float64 {
	lo, hi := iv.Lo, iv.Hi
	vlo, vhi := p.Eval(lo), p.Eval(hi)
	if (vlo < 0 && vhi > 0) || (vlo > 0 && vhi < 0) {
		for hi-lo > tol {
			mid := (lo + hi) / 2
			if mid <= lo || mid >= hi {
				break // float64 exhausted
			}
			vm := p.Eval(mid)
			if vm == 0 {
				return mid
			}
			if (vm < 0) == (vlo < 0) {
				lo, vlo = mid, vm
			} else {
				hi = mid
			}
		}
		return newtonPolish(p, (lo+hi)/2, iv)
	}
	seq := NewSturmSequence(p)
	for hi-lo > tol {
		mid := (lo + hi) / 2
		if mid <= lo || mid >= hi {
			break // float64 exhausted
		}
		if seq.CountRootsIn(lo, mid) >= 1 {
			hi = mid
		} else {
			lo = mid
		}
	}
	return newtonPolish(p, (lo+hi)/2, iv)
}

// newtonPolish runs a few guarded Newton steps from x, staying inside
// the isolating interval.
func newtonPolish(p Poly, x float64, iv Interval) float64 {
	d := p.Derivative()
	for i := 0; i < 8; i++ {
		fv, dv := p.Eval(x), d.Eval(x)
		if dv == 0 {
			break
		}
		nx := x - fv/dv
		if nx < iv.Lo || nx > iv.Hi || math.IsNaN(nx) {
			break
		}
		if nx == x {
			break
		}
		x = nx
	}
	return x
}

// RealRoots returns the distinct real roots of p in (a, b], sorted
// ascending, each refined to absolute tolerance tol.
func RealRoots(p Poly, a, b, tol float64) []float64 {
	ivs := IsolateRoots(p, a, b)
	roots := make([]float64, 0, len(ivs))
	for _, iv := range ivs {
		roots = append(roots, RefineRoot(p, iv, tol))
	}
	sort.Float64s(roots)
	return roots
}

// AllRealRoots returns every distinct real root of p (using Cauchy's
// bound for the search window), sorted ascending.
func AllRealRoots(p Poly, tol float64) []float64 {
	r := RootBound(p)
	if r == 0 {
		return nil
	}
	// Nudge the lower bound so a root exactly at -R is included in the
	// half-open Sturm interval (a, b].
	return RealRoots(p, -r-1, r, tol)
}
