package poly

import (
	"math"
	"math/rand"
	"testing"
)

func TestGCDKnownFactors(t *testing.T) {
	// gcd((x-1)(x-2), (x-1)(x-3)) = (x-1).
	p := FromRoots(1, 2)
	q := FromRoots(1, 3)
	g := GCD(p, q)
	if g.Degree() != 1 {
		t.Fatalf("gcd = %v", g)
	}
	if r := g.Eval(1); math.Abs(r) > 1e-9 {
		t.Errorf("gcd(1) = %v, want 0", r)
	}
	// Coprime polynomials have a constant gcd.
	if g := GCD(FromRoots(1), FromRoots(2)); g.Degree() != 0 {
		t.Errorf("coprime gcd = %v", g)
	}
}

func TestGCDZeroCases(t *testing.T) {
	p := FromRoots(1, 2)
	if g := GCD(p, nil); !g.Equal(p.Scale(1/p.Lead()), 1e-9) {
		t.Errorf("gcd(p, 0) = %v, want monic p", g)
	}
	if g := GCD(nil, nil); g != nil {
		t.Errorf("gcd(0, 0) = %v", g)
	}
}

func TestGCDDividesBoth(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		common := FromRoots(float64(rng.Intn(9)-4), float64(rng.Intn(9)-4)+10)
		p := common.Mul(FromRoots(float64(rng.Intn(5) + 20)))
		q := common.Mul(FromRoots(float64(-rng.Intn(5) - 20)))
		g := GCD(p, q)
		if g.Degree() < 2 {
			t.Fatalf("trial %d: gcd degree %d, want >= 2 (gcd %v)", trial, g.Degree(), g)
		}
		for _, target := range []Poly{p, q} {
			_, rem, ok := target.DivMod(g)
			if !ok {
				t.Fatal("division failed")
			}
			if rem.MaxAbsCoeff() > 1e-6*(1+target.MaxAbsCoeff()) {
				t.Fatalf("trial %d: gcd does not divide (rem %v)", trial, rem)
			}
		}
	}
}

func TestSquareFree(t *testing.T) {
	// (x-1)^3 (x-2) -> (x-1)(x-2).
	p := FromRoots(1, 1, 1, 2)
	sf := SquareFree(p)
	if sf.Degree() != 2 {
		t.Fatalf("square-free = %v", sf)
	}
	for _, r := range []float64{1, 2} {
		if v := sf.Eval(r); math.Abs(v) > 1e-6 {
			t.Errorf("squareFree(%v) = %v, want 0", r, v)
		}
	}
	// Already square-free input is (up to scale) unchanged in roots.
	q := FromRoots(-1, 4)
	if got := SquareFree(q); CountDistinctRealRoots(got) != 2 {
		t.Errorf("square-free of square-free = %v", got)
	}
	// Degenerate cases.
	if got := SquareFree(nil); got != nil {
		t.Errorf("squareFree(0) = %v", got)
	}
	if got := SquareFree(New(7)); got.Degree() != 0 {
		t.Errorf("squareFree(const) = %v", got)
	}
}

func TestSquareFreePreservesDistinctRoots(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		// Random roots with random multiplicities 1..3.
		distinct := 1 + rng.Intn(3)
		var roots []float64
		used := map[int]bool{}
		var wantRoots []float64
		for i := 0; i < distinct; i++ {
			var r int
			for {
				r = rng.Intn(13) - 6
				if !used[r] {
					used[r] = true
					break
				}
			}
			wantRoots = append(wantRoots, float64(r))
			mult := 1 + rng.Intn(3)
			for m := 0; m < mult; m++ {
				roots = append(roots, float64(r))
			}
		}
		p := FromRoots(roots...)
		sf := SquareFree(p)
		if got := sf.Degree(); got != distinct {
			t.Fatalf("trial %d: square-free degree %d, want %d (roots %v, sf %v)",
				trial, got, distinct, roots, sf)
		}
		for _, r := range wantRoots {
			if v := sf.Eval(r); math.Abs(v) > 1e-4*(1+sf.MaxAbsCoeff()) {
				t.Fatalf("trial %d: sf(%v) = %v, want ~0", trial, r, v)
			}
		}
	}
}
