package poly

import "math"

// certifyRelTol is the relative residual threshold below which a
// refined candidate root is accepted even without a sign change
// (covering even-multiplicity roots). The comparison scale is the
// polynomial's magnitude at the original isolating interval's
// endpoints, which sit a macroscopic distance from the candidate.
const certifyRelTol = 1e-6

// CertifiedRealRoots returns the distinct real roots of p in (a, b]
// that survive a posteriori certification. Sturm sequences over
// float64 can report phantom sign changes in regions where the
// coefficient cascade cancels badly (typically far from the
// interesting scale of the polynomial); certification rejects those:
//
//   - an isolating interval whose endpoints straddle a sign change of
//     p is certified outright (a real root of odd multiplicity is
//     guaranteed by continuity), and
//   - otherwise the interval is kept only when the refined candidate
//     x* satisfies |p(x*)| <= certifyRelTol * max(|p(a0)|, |p(b0)|)
//     with a0, b0 the original isolating endpoints — true
//     even-multiplicity roots pass easily, phantom roots (where p is
//     locally enormous) fail.
//
// Roots are refined to absolute tolerance tol and returned ascending.
func CertifiedRealRoots(p Poly, a, b, tol float64) []float64 {
	ivs := IsolateRoots(p, a, b)
	if len(ivs) == 0 {
		return nil
	}
	roots := make([]float64, 0, len(ivs))
	for _, iv := range ivs {
		x, ok := certify(p, iv, tol)
		if ok {
			roots = append(roots, x)
		}
	}
	return roots
}

// certify refines and validates a single isolating interval. Roots of
// odd multiplicity certify by the endpoint sign change; otherwise the
// candidate must be a local near-zero: |p(x*)| small relative to p's
// magnitude a short step h away. A phantom (where p is locally
// enormous and flat in relative terms) fails the ratio; a genuine
// even-multiplicity root p ~ c (x - x*)^2 passes because p(x* ± h)
// grows quadratically off the root while p(x*) sits at rounding level.
func certify(p Poly, iv Interval, tol float64) (float64, bool) {
	va, vb := p.Eval(iv.Lo), p.Eval(iv.Hi)
	if (va < 0 && vb > 0) || (va > 0 && vb < 0) || va == 0 || vb == 0 {
		return RefineRoot(p, iv, tol), true
	}
	x := RefineRoot(p, iv, tol)
	res := math.Abs(p.Eval(x))
	h := 1e-3 * (1 + math.Abs(x))
	scale := math.Max(math.Abs(p.Eval(x+h)), math.Abs(p.Eval(x-h)))
	if scale == 0 {
		return x, true
	}
	return x, res <= certifyRelTol*scale
}

// CountCertifiedRootsIn returns the number of certified distinct real
// roots of p in (a, b] — the phantom-resistant counterpart of
// CountRootsInInterval.
func CountCertifiedRootsIn(p Poly, a, b float64) int {
	return len(CertifiedRealRoots(p, a, b, 1e-9*(1+math.Abs(a)+math.Abs(b))))
}

// AllCertifiedRealRoots returns every certified distinct real root of
// p (using Cauchy's bound for the window), sorted ascending.
func AllCertifiedRealRoots(p Poly, tol float64) []float64 {
	r := RootBound(p)
	if r == 0 {
		return nil
	}
	return CertifiedRealRoots(p, -r-1, r, tol)
}
