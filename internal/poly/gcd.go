package poly

// GCD returns a (normalized, monic up to scaling) greatest common
// divisor of p and q over the reals, computed by the Euclidean
// remainder cascade with relative trimming. Over float64 the result is
// approximate: common factors are detected up to the trimming
// tolerance, which suits its use here — collapsing multiple roots
// before Sturm analysis (a square-free input shortens the chain and
// sharpens sign behavior).
func GCD(p, q Poly) Poly {
	a := p.TrimRelative(sturmTrimRel).Normalize()
	b := q.TrimRelative(sturmTrimRel).Normalize()
	// Operands stay normalized to unit max-coefficient, so remainders
	// are trimmed on an absolute scale: a coefficient that is tiny
	// relative to the dividend is cascade noise, even if it is the
	// remainder's own largest term.
	const remTol = 1e-10
	for len(b) > 0 {
		_, rem, ok := a.DivMod(b)
		if !ok {
			break
		}
		a, b = b, rem.Trim(remTol).Normalize()
	}
	if len(a) == 0 {
		return nil
	}
	// Scale so the leading coefficient is 1 (monic), for a canonical
	// representative.
	return a.Scale(1 / a.Lead())
}

// SquareFree returns the square-free part p / gcd(p, p'): a polynomial
// with the same distinct real roots as p but all of multiplicity one.
// The zero polynomial maps to nil; constants map to themselves.
func SquareFree(p Poly) Poly {
	t := p.TrimRelative(sturmTrimRel)
	if len(t) <= 1 {
		return t
	}
	g := GCD(t, t.Derivative())
	if g.Degree() <= 0 {
		return t
	}
	quo, _, ok := t.DivMod(g)
	if !ok || len(quo) == 0 {
		return t
	}
	return quo
}
