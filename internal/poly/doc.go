// Package poly implements dense univariate polynomials over float64,
// Sturm sequences, and real-root counting/isolation.
//
// Map to the paper: this is the real-algebra machinery behind the
// main arguments — the three-station convexity proof of Section 3.2
// (Sturm's condition on the quartic boundary polynomial, Lemma 3.3)
// and the segment test of Section 5.1 (counting boundary crossings of
// a grid edge via root isolation on the restricted boundary
// polynomial).
package poly
