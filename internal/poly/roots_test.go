package poly

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestRootBound(t *testing.T) {
	// All roots of (x-3)(x+5) = x^2+2x-15 must lie within the bound.
	p := FromRoots(3, -5)
	r := RootBound(p)
	if r < 5 {
		t.Errorf("bound %v too small", r)
	}
	if RootBound(New(7)) != 0 {
		t.Error("constant bound should be 0")
	}
	if RootBound(nil) != 0 {
		t.Error("zero bound should be 0")
	}
}

func TestIsolateRootsSeparates(t *testing.T) {
	p := FromRoots(-4, -1, 2, 7)
	ivs := IsolateRoots(p, -10, 10)
	if len(ivs) != 4 {
		t.Fatalf("got %d intervals %v, want 4", len(ivs), ivs)
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].Lo < ivs[j].Lo })
	wantRoots := []float64{-4, -1, 2, 7}
	for i, iv := range ivs {
		if wantRoots[i] <= iv.Lo || wantRoots[i] > iv.Hi {
			t.Errorf("interval %v does not hold root %v", iv, wantRoots[i])
		}
		// Disjointness.
		if i > 0 && iv.Lo < ivs[i-1].Hi-1e-12 {
			t.Errorf("intervals overlap: %v and %v", ivs[i-1], iv)
		}
	}
}

func TestIsolateRootsEmpty(t *testing.T) {
	if got := IsolateRoots(New(1, 0, 1), -10, 10); len(got) != 0 {
		t.Errorf("x^2+1 isolation = %v", got)
	}
	if got := IsolateRoots(nil, -1, 1); got != nil {
		t.Errorf("zero poly isolation = %v", got)
	}
}

func TestRefineRootAccuracy(t *testing.T) {
	p := FromRoots(math.Pi) // root at pi
	ivs := IsolateRoots(p, 0, 10)
	if len(ivs) != 1 {
		t.Fatalf("intervals = %v", ivs)
	}
	root := RefineRoot(p, ivs[0], 1e-12)
	if math.Abs(root-math.Pi) > 1e-9 {
		t.Errorf("root = %.15f, want pi", root)
	}
}

func TestRefineRootEvenMultiplicity(t *testing.T) {
	// (x-2)^2 does not change sign; Sturm bisection must still converge.
	p := FromRoots(2, 2)
	root := RefineRoot(p, Interval{0, 5}, 1e-10)
	if math.Abs(root-2) > 1e-5 {
		t.Errorf("root = %v, want 2", root)
	}
}

func TestRealRootsSorted(t *testing.T) {
	p := FromRoots(5, -3, 1)
	roots := RealRoots(p, -10, 10, 1e-12)
	want := []float64{-3, 1, 5}
	if len(roots) != 3 {
		t.Fatalf("roots = %v", roots)
	}
	for i := range want {
		if math.Abs(roots[i]-want[i]) > 1e-9 {
			t.Errorf("roots = %v, want %v", roots, want)
		}
	}
}

func TestAllRealRootsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(5)
		want := make([]float64, 0, n)
		used := map[int]bool{}
		for len(want) < n {
			r := rng.Intn(41) - 20
			if !used[r] {
				used[r] = true
				want = append(want, float64(r))
			}
		}
		sort.Float64s(want)
		p := FromRoots(want...)
		got := AllRealRoots(p, 1e-12)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %v, want %v", trial, got, want)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-6 {
				t.Fatalf("trial %d: got %v, want %v", trial, got, want)
			}
		}
	}
}

func TestAllRealRootsNone(t *testing.T) {
	if got := AllRealRoots(New(2, 0, 1), 1e-12); len(got) != 0 {
		t.Errorf("x^2+2 roots = %v", got)
	}
	if got := AllRealRoots(New(5), 1e-12); got != nil {
		t.Errorf("constant roots = %v", got)
	}
}

func TestIntervalHelpers(t *testing.T) {
	iv := Interval{1, 3}
	if iv.Mid() != 2 {
		t.Errorf("Mid = %v", iv.Mid())
	}
	if iv.Width() != 2 {
		t.Errorf("Width = %v", iv.Width())
	}
}

func TestRootsOfScaledPolynomialInvariant(t *testing.T) {
	// Roots are invariant under scaling the polynomial.
	p := FromRoots(1.5, -2.5)
	q := p.Scale(123.456)
	rp := AllRealRoots(p, 1e-12)
	rq := AllRealRoots(q, 1e-12)
	if len(rp) != len(rq) {
		t.Fatalf("root counts differ: %v vs %v", rp, rq)
	}
	for i := range rp {
		if math.Abs(rp[i]-rq[i]) > 1e-9 {
			t.Errorf("roots differ: %v vs %v", rp, rq)
		}
	}
}

func TestHighDegreeProductRoots(t *testing.T) {
	// Degree-10 polynomial from 5 quadratics |x - s_j|^2-style products
	// (the SINR boundary polynomial shape): (x^2+a_j) with a_j>0 has no
	// real roots; multiplying in (x-1)(x+1) gives exactly 2.
	p := New(-1, 0, 1) // x^2-1
	for j := 1; j <= 4; j++ {
		p = p.Mul(New(float64(j), 0, 1)) // x^2 + j
	}
	if got := CountDistinctRealRoots(p); got != 2 {
		t.Fatalf("count = %d, want 2 (poly %v)", got, p)
	}
	roots := AllRealRoots(p, 1e-12)
	if len(roots) != 2 || math.Abs(roots[0]+1) > 1e-9 || math.Abs(roots[1]-1) > 1e-9 {
		t.Errorf("roots = %v, want [-1, 1]", roots)
	}
}
