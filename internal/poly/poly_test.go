package poly

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func polyAlmostEqual(t *testing.T, got, want Poly, eps float64) {
	t.Helper()
	if !got.Equal(want, eps) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestNewTrimsZeros(t *testing.T) {
	p := New(1, 2, 0, 0)
	if p.Degree() != 1 {
		t.Fatalf("degree = %d, want 1", p.Degree())
	}
	if New(0, 0).Degree() != -1 {
		t.Fatal("all-zero polynomial should have degree -1")
	}
}

func TestDegreeLeadIsZero(t *testing.T) {
	tests := []struct {
		name   string
		p      Poly
		degree int
		lead   float64
		zero   bool
	}{
		{"nil", nil, -1, 0, true},
		{"constant", New(5), 0, 5, false},
		{"linear", New(1, 2), 1, 2, false},
		{"cubicWithZeros", Poly{1, 0, 0, 4}, 3, 4, false},
		{"trailingZeros", Poly{1, 2, 0}, 1, 2, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.p.Degree(); got != tc.degree {
				t.Errorf("Degree = %d, want %d", got, tc.degree)
			}
			if got := tc.p.Lead(); got != tc.lead {
				t.Errorf("Lead = %v, want %v", got, tc.lead)
			}
			if got := tc.p.IsZero(); got != tc.zero {
				t.Errorf("IsZero = %v, want %v", got, tc.zero)
			}
		})
	}
}

func TestEvalHorner(t *testing.T) {
	p := New(1, -2, 3) // 1 - 2x + 3x^2
	tests := []struct {
		x, want float64
	}{
		{0, 1},
		{1, 2},
		{2, 9},
		{-1, 6},
		{0.5, 0.75},
	}
	for _, tc := range tests {
		if got := p.Eval(tc.x); got != tc.want {
			t.Errorf("Eval(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
	if got := (Poly)(nil).Eval(3); got != 0 {
		t.Errorf("zero poly Eval = %v", got)
	}
}

func TestAddSubScale(t *testing.T) {
	p := New(1, 2, 3)
	q := New(4, -2)
	polyAlmostEqual(t, p.Add(q), New(5, 0, 3), 0)
	polyAlmostEqual(t, p.Sub(q), New(-3, 4, 3), 0)
	polyAlmostEqual(t, p.Scale(2), New(2, 4, 6), 0)
	if p.Scale(0) != nil {
		t.Error("Scale(0) should be zero polynomial")
	}
	// Cancellation trims degree.
	polyAlmostEqual(t, New(1, 1).Sub(New(0, 1)), New(1), 0)
}

func TestMul(t *testing.T) {
	// (1+x)(1-x) = 1 - x^2
	polyAlmostEqual(t, New(1, 1).Mul(New(1, -1)), New(1, 0, -1), 0)
	// (x-1)(x-2) = 2 - 3x + x^2
	polyAlmostEqual(t, FromRoots(1, 2), New(2, -3, 1), 0)
	if got := New(1, 2).Mul(nil); got != nil {
		t.Errorf("p*0 = %v", got)
	}
}

func TestMulEvalHomomorphismProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		p := randomPoly(rng, 5)
		q := randomPoly(rng, 4)
		x := rng.Float64()*4 - 2
		got := p.Mul(q).Eval(x)
		want := p.Eval(x) * q.Eval(x)
		if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("trial %d: (p*q)(%v) = %v, p(x)*q(x) = %v", trial, x, got, want)
		}
	}
}

func randomPoly(rng *rand.Rand, maxDeg int) Poly {
	deg := rng.Intn(maxDeg + 1)
	p := make(Poly, deg+1)
	for i := range p {
		p[i] = rng.Float64()*4 - 2
	}
	p[deg] = rng.Float64() + 0.5 // nonzero lead
	return p
}

func TestDerivative(t *testing.T) {
	polyAlmostEqual(t, New(5, 3, 2, 1).Derivative(), New(3, 4, 3), 0)
	if got := New(7).Derivative(); got != nil {
		t.Errorf("constant derivative = %v", got)
	}
	if got := (Poly)(nil).Derivative(); got != nil {
		t.Errorf("zero derivative = %v", got)
	}
}

func TestDivMod(t *testing.T) {
	// x^2 - 1 = (x+1)(x-1) + 0
	quo, rem, ok := New(-1, 0, 1).DivMod(New(1, 1))
	if !ok {
		t.Fatal("expected ok")
	}
	polyAlmostEqual(t, quo, New(-1, 1), 1e-12)
	if !rem.IsZero() {
		t.Errorf("rem = %v, want 0", rem)
	}

	// x^3 + 2 divided by x^2: quo = x, rem = 2.
	quo, rem, ok = New(2, 0, 0, 1).DivMod(New(0, 0, 1))
	if !ok {
		t.Fatal("expected ok")
	}
	polyAlmostEqual(t, quo, New(0, 1), 1e-12)
	polyAlmostEqual(t, rem, New(2), 1e-12)

	// Division by zero polynomial.
	if _, _, ok := New(1, 2).DivMod(nil); ok {
		t.Error("division by zero polynomial must fail")
	}

	// deg(p) < deg(q): quo = 0, rem = p.
	quo, rem, ok = New(1, 2).DivMod(New(0, 0, 3))
	if !ok || len(quo) != 0 {
		t.Errorf("quo = %v, ok = %v", quo, ok)
	}
	polyAlmostEqual(t, rem, New(1, 2), 0)
}

func TestDivModReconstructionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		p := randomPoly(rng, 8)
		q := randomPoly(rng, 4)
		quo, rem, ok := p.DivMod(q)
		if !ok {
			t.Fatal("expected ok")
		}
		if rem.Degree() >= q.Degree() {
			t.Fatalf("trial %d: deg(rem)=%d >= deg(q)=%d", trial, rem.Degree(), q.Degree())
		}
		recon := quo.Mul(q).Add(rem)
		if !recon.Equal(p, 1e-9*(1+p.MaxAbsCoeff())) {
			t.Fatalf("trial %d: quo*q+rem = %v, want %v", trial, recon, p)
		}
	}
}

func TestShift(t *testing.T) {
	// (x+1)^2 = x^2 shifted by a=1.
	polyAlmostEqual(t, New(0, 0, 1).Shift(1), New(1, 2, 1), 1e-12)
	// p(x) = x: p(x+3) = x+3.
	polyAlmostEqual(t, X().Shift(3), New(3, 1), 1e-12)
	// Shift by 0 is identity.
	p := New(1, 2, 3, 4)
	polyAlmostEqual(t, p.Shift(0), p, 0)
}

func TestShiftEvalProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		p := randomPoly(rng, 6)
		a := rng.Float64()*4 - 2
		x := rng.Float64()*4 - 2
		got := p.Shift(a).Eval(x)
		want := p.Eval(x + a)
		if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("trial %d: shift mismatch %v vs %v", trial, got, want)
		}
	}
}

func TestCompose(t *testing.T) {
	// p(x) = x^2, q(x) = x+1: p(q) = (x+1)^2.
	polyAlmostEqual(t, New(0, 0, 1).Compose(New(1, 1)), New(1, 2, 1), 1e-12)
	// Compose with constant.
	polyAlmostEqual(t, New(1, 1).Compose(New(5)), New(6), 1e-12)
}

func TestMonomialAndProd(t *testing.T) {
	polyAlmostEqual(t, Monomial(3, 2), New(0, 0, 3), 0)
	if Monomial(3, -1) != nil {
		t.Error("negative degree must be zero polynomial")
	}
	if Monomial(0, 2) != nil {
		t.Error("zero coefficient must be zero polynomial")
	}
	polyAlmostEqual(t, Prod(New(1, 1), New(1, -1), New(2)), New(2, 0, -2), 0)
	polyAlmostEqual(t, Prod(), New(1), 0)
}

func TestNormalize(t *testing.T) {
	p := New(2, -8, 4)
	n := p.Normalize()
	if got := n.MaxAbsCoeff(); !almostEq(got, 1, 1e-15) {
		t.Errorf("max coeff = %v, want 1", got)
	}
	// Roots unchanged: evaluate proportionality.
	if math.Abs(n.Eval(2)*8-p.Eval(2)) > 1e-12 {
		t.Error("Normalize changed the polynomial beyond scaling")
	}
}

func TestTrimRelative(t *testing.T) {
	p := Poly{1, 1, 1e-16}
	if got := p.TrimRelative(1e-12).Degree(); got != 1 {
		t.Errorf("degree = %d, want 1", got)
	}
	if got := (Poly{0, 0}).TrimRelative(1e-12); got != nil {
		t.Errorf("zero trim = %v", got)
	}
}

func TestString(t *testing.T) {
	tests := []struct {
		p    Poly
		want string
	}{
		{nil, "0"},
		{New(0), "0"},
		{New(1), "1"},
		{New(-1, 2), "-1 + 2*x"},
		{New(0, 0, 3), "3*x^2"},
		{New(1, 0, -2), "1 - 2*x^2"},
	}
	for _, tc := range tests {
		if got := tc.p.String(); got != tc.want {
			t.Errorf("String(%v) = %q, want %q", []float64(tc.p), got, tc.want)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	p := New(1, 2, 3)
	q := p.Clone()
	q[0] = 99
	if p[0] != 1 {
		t.Error("Clone aliases original")
	}
	if (Poly)(nil).Clone() != nil {
		t.Error("nil Clone should stay nil")
	}
}

func TestAddCommutativeProperty(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		for _, v := range []float64{a, b, c, d} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		p, q := New(a, b), New(c, d)
		return p.Add(q).Equal(q.Add(p), 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }
