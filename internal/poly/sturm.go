package poly

import "math"

// sturmTrimRel is the relative coefficient threshold used to discard
// numerically-dead leading terms while building Sturm sequences.
const sturmTrimRel = 1e-12

// SturmSequence is the canonical Sturm chain of a polynomial:
// P0 = P, P1 = P', P_i = -rem(P_{i-2} / P_{i-1}), terminating when the
// next remainder vanishes (Section 3.2 of the paper, citing Sturm 1829).
type SturmSequence []Poly

// NewSturmSequence builds the Sturm chain of p. Each element is
// normalized to unit max-coefficient (a positive scaling, which
// preserves all sign information Sturm's theorem consumes) to keep the
// remainder cascade stable in float64.
func NewSturmSequence(p Poly) SturmSequence {
	p = p.TrimRelative(sturmTrimRel)
	if len(p) == 0 {
		return nil
	}
	seq := SturmSequence{p.Normalize()}
	d := p.Derivative().TrimRelative(sturmTrimRel)
	if len(d) == 0 {
		return seq
	}
	seq = append(seq, d.Normalize())
	for {
		prev, cur := seq[len(seq)-2], seq[len(seq)-1]
		_, rem, ok := prev.DivMod(cur)
		if !ok {
			break
		}
		rem = rem.TrimRelative(sturmTrimRel)
		if len(rem) == 0 {
			break
		}
		seq = append(seq, rem.Scale(-1).Normalize())
		if seq[len(seq)-1].Degree() == 0 {
			break
		}
	}
	return seq
}

// signOf classifies v with a tolerance band around zero.
func signOf(v, tol float64) int {
	switch {
	case v > tol:
		return 1
	case v < -tol:
		return -1
	default:
		return 0
	}
}

// SignChangesAt returns SC_P(x): the number of sign changes in the
// sequence P0(x), P1(x), ..., Pm(x), ignoring zeros as Sturm's theorem
// prescribes.
func (s SturmSequence) SignChangesAt(x float64) int {
	changes, last := 0, 0
	for _, p := range s {
		v := p.Eval(x)
		sg := signOf(v, 0)
		if sg == 0 {
			continue
		}
		if last != 0 && sg != last {
			changes++
		}
		last = sg
	}
	return changes
}

// SignChangesAtNegInf returns lim_{x -> -inf} SC_P(x), determined by
// the leading coefficients and parities of the chain members.
func (s SturmSequence) SignChangesAtNegInf() int {
	changes, last := 0, 0
	for _, p := range s {
		t := p.Trim(0)
		if len(t) == 0 {
			continue
		}
		sg := signOf(t.Lead(), 0)
		if (len(t)-1)%2 == 1 {
			sg = -sg
		}
		if sg == 0 {
			continue
		}
		if last != 0 && sg != last {
			changes++
		}
		last = sg
	}
	return changes
}

// SignChangesAtPosInf returns lim_{x -> +inf} SC_P(x).
func (s SturmSequence) SignChangesAtPosInf() int {
	changes, last := 0, 0
	for _, p := range s {
		sg := signOf(p.Lead(), 0)
		if sg == 0 {
			continue
		}
		if last != 0 && sg != last {
			changes++
		}
		last = sg
	}
	return changes
}

// CountRealRoots returns the number of distinct real roots of the
// polynomial underlying the chain (Sturm's theorem over (-inf, +inf)).
func (s SturmSequence) CountRealRoots() int {
	if len(s) == 0 {
		return 0
	}
	n := s.SignChangesAtNegInf() - s.SignChangesAtPosInf()
	if n < 0 {
		return 0
	}
	return n
}

// CountRootsIn returns the number of distinct real roots in the
// half-open interval (a, b], per Sturm's condition (Theorem 3.6 of the
// paper). It requires a < b; swapped bounds return 0.
func (s SturmSequence) CountRootsIn(a, b float64) int {
	if len(s) == 0 || a >= b {
		return 0
	}
	n := s.SignChangesAt(a) - s.SignChangesAt(b)
	if n < 0 {
		return 0
	}
	return n
}

// CountDistinctRealRoots is a convenience wrapper building the chain
// and counting roots over the whole real line.
func CountDistinctRealRoots(p Poly) int {
	return NewSturmSequence(p).CountRealRoots()
}

// CountRootsInInterval is a convenience wrapper counting distinct real
// roots of p in (a, b].
func CountRootsInInterval(p Poly, a, b float64) int {
	return NewSturmSequence(p).CountRootsIn(a, b)
}

// CubicDiscriminant returns the discriminant of the cubic
// c3*x^3 + c2*x^2 + c1*x + c0:
//
//	Δ = c1²c2² − 4c0c2³ − 4c1³c3 + 18c0c1c2c3 − 27c0²c3²
//
// (exactly the expression used in Proposition 3.4 of the paper). The
// cubic has one real root when Δ < 0 and three when Δ > 0.
func CubicDiscriminant(c0, c1, c2, c3 float64) float64 {
	return c1*c1*c2*c2 - 4*c0*c2*c2*c2 - 4*c1*c1*c1*c3 + 18*c0*c1*c2*c3 - 27*c0*c0*c3*c3
}

// SolveQuadratic returns the real roots of a + b*x + c*x^2 in
// ascending order (0, 1, or 2 roots; a double root is reported once).
// A degenerate (linear/constant) input is handled gracefully.
func SolveQuadratic(a, b, c float64) []float64 {
	if c == 0 {
		if b == 0 {
			return nil
		}
		return []float64{-a / b}
	}
	disc := b*b - 4*a*c
	if disc < 0 {
		return nil
	}
	if disc == 0 {
		return []float64{-b / (2 * c)}
	}
	sq := math.Sqrt(disc)
	// Numerically stable form avoiding catastrophic cancellation.
	var q float64
	if b >= 0 {
		q = -(b + sq) / 2
	} else {
		q = -(b - sq) / 2
	}
	r1, r2 := q/c, a/q
	if r1 > r2 {
		r1, r2 = r2, r1
	}
	return []float64{r1, r2}
}
