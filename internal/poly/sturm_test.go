package poly

import (
	"math"
	"math/rand"
	"testing"
)

func TestSturmSequenceStructure(t *testing.T) {
	// p = x^2 - 1: chain is p, 2x, constant.
	seq := NewSturmSequence(New(-1, 0, 1))
	if len(seq) != 3 {
		t.Fatalf("chain length = %d, want 3", len(seq))
	}
	if seq[0].Degree() != 2 || seq[1].Degree() != 1 || seq[2].Degree() != 0 {
		t.Errorf("degrees = %d %d %d", seq[0].Degree(), seq[1].Degree(), seq[2].Degree())
	}
	if NewSturmSequence(nil) != nil {
		t.Error("zero polynomial chain should be nil")
	}
	if got := len(NewSturmSequence(New(7))); got != 1 {
		t.Errorf("constant chain length = %d, want 1", got)
	}
}

func TestCountRealRootsKnown(t *testing.T) {
	tests := []struct {
		name string
		p    Poly
		want int
	}{
		{"linear", New(-3, 1), 1},
		{"noRealRoots", New(1, 0, 1), 0},           // x^2+1
		{"twoRoots", New(-1, 0, 1), 2},             // x^2-1
		{"doubleRootCountsOnce", New(1, -2, 1), 1}, // (x-1)^2
		{"threeDistinct", FromRoots(-2, 0, 3), 3},
		{"quarticTwoReal", FromRoots(1, 2).Mul(New(1, 0, 1)), 2}, // (x-1)(x-2)(x^2+1)
		{"quarticFourReal", FromRoots(-3, -1, 2, 5), 4},
		{"tripleRoot", FromRoots(1, 1, 1), 1},
		{"constantNonzero", New(4), 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := CountDistinctRealRoots(tc.p); got != tc.want {
				t.Fatalf("CountDistinctRealRoots = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestCountRootsInInterval(t *testing.T) {
	p := FromRoots(-2, 1, 4) // roots at -2, 1, 4
	tests := []struct {
		a, b float64
		want int
	}{
		{-10, 10, 3},
		{0, 2, 1},
		{-3, 0, 1},
		{2, 3, 0},
		{1, 4, 1},   // (1, 4] contains only 4: root at 1 excluded (half-open)
		{0.9, 4, 2}, // contains 1 and 4
		{5, 2, 0},   // swapped bounds
	}
	for _, tc := range tests {
		if got := CountRootsInInterval(p, tc.a, tc.b); got != tc.want {
			t.Errorf("CountRootsInInterval(%v, %v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestSturmMatchesBruteForceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		// Build a polynomial from known random roots (some complex pairs).
		nReal := rng.Intn(4)
		roots := make([]float64, nReal)
		used := map[int]bool{}
		for i := range roots {
			// Well-separated integer roots so float64 Sturm is exact enough.
			for {
				r := rng.Intn(21) - 10
				if !used[r] {
					used[r] = true
					roots[i] = float64(r)
					break
				}
			}
		}
		p := FromRoots(roots...)
		// Multiply in 0-2 irreducible quadratics.
		for k := rng.Intn(3); k > 0; k-- {
			b := rng.Float64()*2 - 1
			c := rng.Float64()*2 + 1 + b*b/4 // ensures negative discriminant
			p = p.Mul(New(c, b, 1))
		}
		if got := CountDistinctRealRoots(p); got != nReal {
			t.Fatalf("trial %d: roots %v, poly %v: count = %d, want %d",
				trial, roots, p, got, nReal)
		}
	}
}

func TestSignChangesAtInfinities(t *testing.T) {
	// For p = x^2 - 1: SC(-inf) = 2, SC(+inf) = 0.
	seq := NewSturmSequence(New(-1, 0, 1))
	if got := seq.SignChangesAtNegInf(); got != 2 {
		t.Errorf("SC(-inf) = %d, want 2", got)
	}
	if got := seq.SignChangesAtPosInf(); got != 0 {
		t.Errorf("SC(+inf) = %d, want 0", got)
	}
	// Sanity: for large |x| the finite evaluation matches the limit.
	if got := seq.SignChangesAt(-1e9); got != 2 {
		t.Errorf("SC(-1e9) = %d, want 2", got)
	}
	if got := seq.SignChangesAt(1e9); got != 0 {
		t.Errorf("SC(1e9) = %d, want 0", got)
	}
}

func TestCubicDiscriminant(t *testing.T) {
	// x^3 - 3x has roots 0, ±sqrt(3): three real roots, Δ > 0.
	if d := CubicDiscriminant(0, -3, 0, 1); d <= 0 {
		t.Errorf("discriminant = %v, want > 0", d)
	}
	// x^3 + x has one real root: Δ < 0.
	if d := CubicDiscriminant(0, 1, 0, 1); d >= 0 {
		t.Errorf("discriminant = %v, want < 0", d)
	}
	// x^3 (triple root): Δ = 0.
	if d := CubicDiscriminant(0, 0, 0, 1); d != 0 {
		t.Errorf("discriminant = %v, want 0", d)
	}
}

func TestCubicDiscriminantMatchesSturm(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		c0 := rng.Float64()*4 - 2
		c1 := rng.Float64()*4 - 2
		c2 := rng.Float64()*4 - 2
		c3 := rng.Float64()*2 + 0.5
		disc := CubicDiscriminant(c0, c1, c2, c3)
		if math.Abs(disc) < 1e-6 {
			continue // too close to a multiple root for float64 certainty
		}
		n := CountDistinctRealRoots(New(c0, c1, c2, c3))
		if disc < 0 && n != 1 {
			t.Fatalf("trial %d: Δ=%v<0 but %d real roots (poly %v)", trial, disc, n, New(c0, c1, c2, c3))
		}
		if disc > 0 && n != 3 {
			t.Fatalf("trial %d: Δ=%v>0 but %d real roots (poly %v)", trial, disc, n, New(c0, c1, c2, c3))
		}
	}
}

func TestSolveQuadratic(t *testing.T) {
	tests := []struct {
		name    string
		a, b, c float64
		want    []float64
	}{
		{"twoRoots", -1, 0, 1, []float64{-1, 1}}, // x^2-1
		{"noRoots", 1, 0, 1, nil},                // x^2+1
		{"doubleRoot", 1, -2, 1, []float64{1}},   // (x-1)^2
		{"linear", -6, 2, 0, []float64{3}},       // 2x-6
		{"constant", 5, 0, 0, nil},
		{"stableCancellation", 1, -1e8, 1, nil}, // filled below
	}
	for _, tc := range tests[:5] {
		t.Run(tc.name, func(t *testing.T) {
			got := SolveQuadratic(tc.a, tc.b, tc.c)
			if len(got) != len(tc.want) {
				t.Fatalf("roots = %v, want %v", got, tc.want)
			}
			for i := range got {
				if !almostEq(got[i], tc.want[i], 1e-9) {
					t.Fatalf("roots = %v, want %v", got, tc.want)
				}
			}
		})
	}
	// Numerical stability: roots of x^2 - 1e8 x + 1 are ~1e8 and ~1e-8.
	got := SolveQuadratic(1, -1e8, 1)
	if len(got) != 2 {
		t.Fatalf("roots = %v", got)
	}
	if math.Abs(got[0]-1e-8) > 1e-15 {
		t.Errorf("small root = %v, want 1e-8", got[0])
	}
	if math.Abs(got[1]-1e8) > 1 {
		t.Errorf("large root = %v, want 1e8", got[1])
	}
}

func TestSolveQuadraticMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 200; trial++ {
		a := rng.Float64()*10 - 5
		b := rng.Float64()*10 - 5
		c := rng.Float64()*10 - 5
		if math.Abs(c) < 1e-3 {
			continue
		}
		for _, r := range SolveQuadratic(a, b, c) {
			if v := New(a, b, c).Eval(r); math.Abs(v) > 1e-6*(1+math.Abs(a)+math.Abs(b)+math.Abs(c)) {
				t.Fatalf("trial %d: root %v evaluates to %v", trial, r, v)
			}
		}
	}
}
