package poly

import (
	"math"
	"math/rand"
	"testing"
)

func TestCertifiedRealRootsSimple(t *testing.T) {
	p := FromRoots(-2, 1, 4)
	roots := AllCertifiedRealRoots(p, 1e-12)
	want := []float64{-2, 1, 4}
	if len(roots) != 3 {
		t.Fatalf("roots = %v", roots)
	}
	for i := range want {
		if math.Abs(roots[i]-want[i]) > 1e-9 {
			t.Errorf("roots = %v, want %v", roots, want)
		}
	}
}

func TestCertifiedKeepsDoubleRoot(t *testing.T) {
	p := FromRoots(2, 2, -1)
	roots := AllCertifiedRealRoots(p, 1e-12)
	if len(roots) != 2 {
		t.Fatalf("roots = %v, want [-1, 2]", roots)
	}
	if math.Abs(roots[0]+1) > 1e-6 || math.Abs(roots[1]-2) > 1e-4 {
		t.Errorf("roots = %v", roots)
	}
}

func TestCertifiedRejectsPhantoms(t *testing.T) {
	// Build a badly conditioned high-degree polynomial of the SINR
	// boundary flavor: a product of many shifted quadratics with huge
	// dynamic range, plus two genuine roots. Certified counting must
	// report exactly the genuine roots even if raw Sturm counting
	// hallucinates extras.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		p := New(-1, 0, 1) // roots at ±1
		for j := 0; j < 7; j++ {
			cx := rng.Float64()*20 - 10
			c := 1 + rng.Float64()*30
			p = p.Mul(New(cx*cx+c, -2*cx, 1)) // (t-cx)^2 + c, no real roots
		}
		roots := AllCertifiedRealRoots(p, 1e-10)
		if len(roots) != 2 {
			t.Fatalf("trial %d: certified roots = %v, want exactly ±1", trial, roots)
		}
		if math.Abs(roots[0]+1) > 1e-6 || math.Abs(roots[1]-1) > 1e-6 {
			t.Fatalf("trial %d: roots = %v", trial, roots)
		}
	}
}

func TestCountCertifiedRootsIn(t *testing.T) {
	p := FromRoots(-3, 0, 5)
	if got := CountCertifiedRootsIn(p, -10, 10); got != 3 {
		t.Errorf("count = %d, want 3", got)
	}
	if got := CountCertifiedRootsIn(p, 1, 4); got != 0 {
		t.Errorf("count = %d, want 0", got)
	}
	if got := CountCertifiedRootsIn(p, -1, 6); got != 2 {
		t.Errorf("count = %d, want 2", got)
	}
}

func TestAllCertifiedRealRootsDegenerate(t *testing.T) {
	if got := AllCertifiedRealRoots(New(5), 1e-9); got != nil {
		t.Errorf("constant roots = %v", got)
	}
	if got := AllCertifiedRealRoots(nil, 1e-9); got != nil {
		t.Errorf("zero roots = %v", got)
	}
	if got := AllCertifiedRealRoots(New(1, 0, 1), 1e-9); len(got) != 0 {
		t.Errorf("x^2+1 roots = %v", got)
	}
}
