package poly

import (
	"fmt"
	"math"
	"strings"
)

// Poly is a dense univariate polynomial. Coefficient i multiplies x^i,
// so Poly{c0, c1, c2} is c0 + c1*x + c2*x^2. The zero polynomial is
// either nil or all-zero; use Trim to normalize.
type Poly []float64

// New returns the polynomial with the given coefficients in ascending
// order of degree, trimmed of trailing (near-)zero coefficients.
func New(coeffs ...float64) Poly { return Poly(coeffs).Trim(0) }

// Constant returns the constant polynomial c.
func Constant(c float64) Poly { return New(c) }

// X returns the monomial x.
func X() Poly { return Poly{0, 1} }

// Monomial returns c * x^deg.
func Monomial(c float64, deg int) Poly {
	if deg < 0 || c == 0 {
		return nil
	}
	p := make(Poly, deg+1)
	p[deg] = c
	return p
}

// Trim removes trailing coefficients of magnitude at most tol,
// returning a polynomial whose leading coefficient is meaningful.
// A tol of 0 removes exact zeros only.
func (p Poly) Trim(tol float64) Poly {
	n := len(p)
	for n > 0 && math.Abs(p[n-1]) <= tol {
		n--
	}
	return p[:n]
}

// TrimRelative removes trailing coefficients that are negligible
// relative to the largest-magnitude coefficient: |c| <= rel * maxAbs.
// This is the normalization used before Sturm computations, where
// float64 cancellation leaves tiny garbage leading terms that would
// otherwise corrupt degree-sensitive sign arguments.
func (p Poly) TrimRelative(rel float64) Poly {
	m := p.MaxAbsCoeff()
	if m == 0 {
		return nil
	}
	return p.Trim(rel * m)
}

// MaxAbsCoeff returns the largest coefficient magnitude (0 for the
// zero polynomial).
func (p Poly) MaxAbsCoeff() float64 {
	var m float64
	for _, c := range p {
		if a := math.Abs(c); a > m {
			m = a
		}
	}
	return m
}

// IsZero reports whether p is the zero polynomial (after exact trim).
func (p Poly) IsZero() bool { return len(p.Trim(0)) == 0 }

// Degree returns the degree of p, with -1 for the zero polynomial.
func (p Poly) Degree() int { return len(p.Trim(0)) - 1 }

// Lead returns the leading coefficient (0 for the zero polynomial).
func (p Poly) Lead() float64 {
	t := p.Trim(0)
	if len(t) == 0 {
		return 0
	}
	return t[len(t)-1]
}

// Eval evaluates p at x using Horner's method.
func (p Poly) Eval(x float64) float64 {
	var v float64
	for i := len(p) - 1; i >= 0; i-- {
		v = v*x + p[i]
	}
	return v
}

// Clone returns an independent copy of p.
func (p Poly) Clone() Poly {
	if p == nil {
		return nil
	}
	q := make(Poly, len(p))
	copy(q, p)
	return q
}

// Add returns p + q.
func (p Poly) Add(q Poly) Poly {
	n := len(p)
	if len(q) > n {
		n = len(q)
	}
	out := make(Poly, n)
	copy(out, p)
	for i, c := range q {
		out[i] += c
	}
	return out.Trim(0)
}

// Sub returns p - q.
func (p Poly) Sub(q Poly) Poly {
	n := len(p)
	if len(q) > n {
		n = len(q)
	}
	out := make(Poly, n)
	copy(out, p)
	for i, c := range q {
		out[i] -= c
	}
	return out.Trim(0)
}

// Scale returns c * p.
func (p Poly) Scale(c float64) Poly {
	if c == 0 {
		return nil
	}
	out := make(Poly, len(p))
	for i, v := range p {
		out[i] = c * v
	}
	return out
}

// Mul returns the product p * q (O(len(p)*len(q))).
func (p Poly) Mul(q Poly) Poly {
	p, q = p.Trim(0), q.Trim(0)
	if len(p) == 0 || len(q) == 0 {
		return nil
	}
	out := make(Poly, len(p)+len(q)-1)
	for i, a := range p {
		if a == 0 {
			continue
		}
		for j, b := range q {
			out[i+j] += a * b
		}
	}
	return out
}

// Derivative returns p'.
func (p Poly) Derivative() Poly {
	if len(p) <= 1 {
		return nil
	}
	out := make(Poly, len(p)-1)
	for i := 1; i < len(p); i++ {
		out[i-1] = float64(i) * p[i]
	}
	return out.Trim(0)
}

// DivMod returns quotient and remainder of the Euclidean division
// p = quo*q + rem with deg(rem) < deg(q). It returns ok=false when q is
// the zero polynomial.
func (p Poly) DivMod(q Poly) (quo, rem Poly, ok bool) {
	q = q.Trim(0)
	if len(q) == 0 {
		return nil, nil, false
	}
	rem = p.Clone().Trim(0)
	dq := len(q) - 1
	lead := q[dq]
	if len(rem) <= dq {
		return nil, rem, true
	}
	quo = make(Poly, len(rem)-dq)
	for len(rem) > dq {
		dr := len(rem) - 1
		c := rem[dr] / lead
		quo[dr-dq] = c
		for i := 0; i <= dq; i++ {
			rem[dr-dq+i] -= c * q[i]
		}
		// The top coefficient cancels by construction; force it to zero
		// to guarantee progress despite round-off.
		rem[dr] = 0
		rem = rem.Trim(0)
	}
	return quo.Trim(0), rem, true
}

// Shift returns the polynomial p(x + a), i.e. p composed with the
// translation x -> x + a (synthetic Taylor shift, O(deg^2)). This is
// the "shifted variable z = x - r̄" step of Section 3.2.
func (p Poly) Shift(a float64) Poly {
	out := p.Clone().Trim(0)
	n := len(out)
	if n == 0 || a == 0 {
		return out
	}
	// Repeated synthetic division by (x - (-a)) accumulates the Taylor
	// coefficients of p about -a... equivalently we use Horner-shift:
	// for Shift(a): out[j] become coefficients of p(x+a).
	for i := 0; i < n-1; i++ {
		for j := n - 2; j >= i; j-- {
			out[j] += a * out[j+1]
		}
	}
	return out.Trim(0)
}

// Compose returns p(q(x)). Cost is O(deg(p)^2 * deg(q)^2) in the worst
// case via Horner on polynomials; fine for the small degrees used here.
func (p Poly) Compose(q Poly) Poly {
	var out Poly
	for i := len(p) - 1; i >= 0; i-- {
		out = out.Mul(q).Add(New(p[i]))
	}
	return out.Trim(0)
}

// Normalize returns p scaled so its max-magnitude coefficient is 1.
// The zero polynomial is returned unchanged. Normalizing keeps Sturm
// remainder cascades numerically tame; it does not change roots or
// signs up to a positive factor.
func (p Poly) Normalize() Poly {
	m := p.MaxAbsCoeff()
	if m == 0 {
		return p
	}
	return p.Scale(1 / m)
}

// Equal reports whether p and q have the same coefficients within eps.
func (p Poly) Equal(q Poly, eps float64) bool {
	p, q = p.Trim(0), q.Trim(0)
	n := len(p)
	if len(q) > n {
		n = len(q)
	}
	for i := 0; i < n; i++ {
		var a, b float64
		if i < len(p) {
			a = p[i]
		}
		if i < len(q) {
			b = q[i]
		}
		if math.Abs(a-b) > eps {
			return false
		}
	}
	return true
}

// String renders the polynomial in human-readable ascending form.
func (p Poly) String() string {
	t := p.Trim(0)
	if len(t) == 0 {
		return "0"
	}
	var b strings.Builder
	first := true
	for i, c := range t {
		if c == 0 {
			continue
		}
		if !first {
			if c >= 0 {
				b.WriteString(" + ")
			} else {
				b.WriteString(" - ")
				c = -c
			}
		}
		switch i {
		case 0:
			fmt.Fprintf(&b, "%.6g", c)
		case 1:
			fmt.Fprintf(&b, "%.6g*x", c)
		default:
			fmt.Fprintf(&b, "%.6g*x^%d", c, i)
		}
		first = false
	}
	if first {
		return "0"
	}
	return b.String()
}

// FromRoots returns the monic polynomial with the given real roots.
func FromRoots(roots ...float64) Poly {
	out := New(1)
	for _, r := range roots {
		out = out.Mul(Poly{-r, 1})
	}
	return out
}

// Quadratic returns a + b*x + c*x^2.
func Quadratic(a, b, c float64) Poly { return New(a, b, c) }

// Prod returns the product of the given polynomials (1 for none).
func Prod(ps ...Poly) Poly {
	out := New(1)
	for _, p := range ps {
		out = out.Mul(p)
	}
	return out
}
