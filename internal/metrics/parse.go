package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line: a metric name, its label
// pairs, and the value. Histogram series parse into their expanded
// names (name_bucket with an "le" label, name_sum, name_count).
type Sample struct {
	Name     string
	Labels   map[string]string
	Value    float64
	Exemplar *Exemplar // OpenMetrics exemplar, nil when the line has none
}

// Exemplar is a parsed OpenMetrics exemplar: the label set (typically
// just trace_id) and the exemplar's own observed value.
type Exemplar struct {
	Labels map[string]string
	Value  float64
}

// TraceID returns the exemplar's trace_id label ("" when absent).
func (e *Exemplar) TraceID() string {
	if e == nil {
		return ""
	}
	return e.Labels["trace_id"]
}

// Label returns the sample's value for key ("" when absent).
func (s Sample) Label(key string) string { return s.Labels[key] }

// Parse reads a Prometheus text exposition document — the output of
// Registry.WritePrometheus, or any other conforming exporter — into
// samples. Comment and blank lines are skipped; a malformed line is an
// error (scrapes are machine-produced, so corruption should be loud).
func Parse(r io.Reader) ([]Sample, error) {
	var out []Sample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseLine(line)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseLine(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("metrics: malformed line %q", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		end, err := parseLabels(rest[1:], s.Labels)
		if err != nil {
			return s, fmt.Errorf("metrics: %v in line %q", err, line)
		}
		rest = end
	}
	var exPart string
	if i := strings.Index(rest, " # "); i >= 0 {
		exPart = strings.TrimSpace(rest[i+3:])
		rest = rest[:i]
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return s, fmt.Errorf("metrics: missing value in line %q", line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("metrics: bad value %q in line %q", fields[0], line)
	}
	s.Value = v
	if exPart != "" {
		ex, err := parseExemplar(exPart)
		if err != nil {
			return s, fmt.Errorf("metrics: %v in line %q", err, line)
		}
		s.Exemplar = ex
	}
	return s, nil
}

// parseExemplar parses the `{label="v", ...} value` tail after a
// line's " # " exemplar marker.
func parseExemplar(part string) (*Exemplar, error) {
	if !strings.HasPrefix(part, "{") {
		return nil, fmt.Errorf("malformed exemplar %q", part)
	}
	ex := &Exemplar{Labels: map[string]string{}}
	rest, err := parseLabels(part[1:], ex.Labels)
	if err != nil {
		return nil, fmt.Errorf("%v in exemplar %q", err, part)
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, fmt.Errorf("missing exemplar value in %q", part)
	}
	ex.Value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return nil, fmt.Errorf("bad exemplar value %q", fields[0])
	}
	return ex, nil
}

// parseLabels consumes k="v" pairs up to the closing brace, returning
// the unconsumed remainder. Escaped quotes, backslashes and newlines
// in values are unescaped.
func parseLabels(rest string, into map[string]string) (string, error) {
	for {
		rest = strings.TrimLeft(rest, " ,")
		if strings.HasPrefix(rest, "}") {
			return rest[1:], nil
		}
		eq := strings.Index(rest, "=")
		if eq < 0 || len(rest) < eq+2 || rest[eq+1] != '"' {
			return rest, fmt.Errorf("malformed label pair")
		}
		key := strings.TrimSpace(rest[:eq])
		rest = rest[eq+2:]
		var val strings.Builder
		for {
			i := strings.IndexAny(rest, `\"`)
			if i < 0 {
				return rest, fmt.Errorf("unterminated label value")
			}
			val.WriteString(rest[:i])
			if rest[i] == '"' {
				rest = rest[i+1:]
				break
			}
			if len(rest) < i+2 {
				return rest, fmt.Errorf("trailing escape")
			}
			switch rest[i+1] {
			case 'n':
				val.WriteByte('\n')
			default:
				val.WriteByte(rest[i+1])
			}
			rest = rest[i+2:]
		}
		into[key] = val.String()
	}
}

// Value returns the first sample named name whose labels include every
// given pair (a subset match, so callers need not spell out labels
// they do not care about), and whether one was found.
func Value(samples []Sample, name string, labels ...Label) (float64, bool) {
	for _, s := range samples {
		if s.Name != name || !matches(s, labels) {
			continue
		}
		return s.Value, true
	}
	return 0, false
}

func matches(s Sample, labels []Label) bool {
	for _, l := range labels {
		if s.Labels[l.Key] != l.Value {
			return false
		}
	}
	return true
}

// Bucket is one cumulative histogram bucket: the count of samples at
// or below the LE upper bound.
type Bucket struct {
	LE, Count float64
}

// Buckets collects the cumulative buckets of histogram name (its
// name_bucket samples matching labels), sorted by upper bound with
// +Inf last — the input shape of BucketQuantile.
func Buckets(samples []Sample, name string, labels ...Label) []Bucket {
	var out []Bucket
	for _, s := range samples {
		if s.Name != name+"_bucket" || !matches(s, labels) {
			continue
		}
		le, err := parseLE(s.Label("le"))
		if err != nil {
			continue
		}
		out = append(out, Bucket{LE: le, Count: s.Value})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].LE < out[j].LE })
	return out
}

func parseLE(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// BucketQuantile estimates the q-quantile (0 <= q <= 1) from
// cumulative buckets, linearly interpolating within the bucket the
// rank falls into — the same estimate Prometheus's histogram_quantile
// computes. It returns NaN for an empty histogram. A rank landing in
// the +Inf bucket returns the highest finite bound (the histogram
// cannot say more).
func BucketQuantile(q float64, buckets []Bucket) float64 {
	if len(buckets) == 0 || buckets[len(buckets)-1].Count == 0 {
		return math.NaN()
	}
	total := buckets[len(buckets)-1].Count
	rank := q * total
	idx := sort.Search(len(buckets), func(i int) bool { return buckets[i].Count >= rank })
	if idx == len(buckets) {
		idx = len(buckets) - 1
	}
	if idx == len(buckets)-1 && math.IsInf(buckets[idx].LE, 1) {
		// Rank beyond the last finite bound: report that bound.
		if len(buckets) == 1 {
			return math.NaN()
		}
		return buckets[len(buckets)-2].LE
	}
	lo, loCount := 0.0, 0.0
	if idx > 0 {
		lo, loCount = buckets[idx-1].LE, buckets[idx-1].Count
	}
	hi, hiCount := buckets[idx].LE, buckets[idx].Count
	if hiCount == loCount {
		return hi
	}
	return lo + (hi-lo)*(rank-loCount)/(hiCount-loCount)
}
