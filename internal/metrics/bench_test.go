package metrics

import (
	"io"
	"testing"
)

// BenchmarkMetricsHot is the metrics-path entry on the CI bench-gate
// 0-alloc list: one op is the full per-request instrumentation
// sequence of the serve layer — inflight gauge up, route counter,
// latency histogram observe, inflight gauge down. It must stay
// allocation-free or the gate fails the PR.
func BenchmarkMetricsHot(b *testing.B) {
	reg := NewRegistry()
	c := reg.Counter("bench_requests_total", "help", L("route", "locate"), L("code", "2xx"))
	g := reg.Gauge("bench_inflight", "help")
	h := reg.Histogram("bench_seconds", "help", nil)
	var traceID [16]byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Inc()
		c.Inc()
		h.Observe(float64(i%1000) / 1e5)
		traceID[15] = byte(i)
		h.ObserveEx(float64(i%1000)/1e5, traceID, "bench")
		g.Dec()
	}
}

// BenchmarkWritePrometheus sizes the scrape cost (off the hot path,
// but worth knowing): a registry shaped like the serve layer's.
func BenchmarkWritePrometheus(b *testing.B) {
	reg := NewRegistry()
	routes := []string{"networks", "patch", "locate", "stream", "healthz", "readyz", "metrics"}
	codes := []string{"2xx", "3xx", "4xx", "429", "5xx"}
	for _, rt := range routes {
		for _, code := range codes {
			reg.Counter("bench_requests_total", "help", L("route", rt), L("code", code)).Inc()
		}
		reg.Histogram("bench_seconds", "help", nil, L("route", rt)).Observe(0.001)
	}
	RegisterGoRuntime(reg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := reg.WritePrometheus(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
