package metrics

import (
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestExemplarRoundTrip(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("ex_seconds", "help", []float64{0.01, 0.1, 1})

	traceID := [16]byte{0xde, 0xad, 0xbe, 0xef, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 0xa, 0xb}
	h.ObserveEx(0.05, traceID, "demo")

	// Exemplars only exist in the OpenMetrics format: the classic
	// text/plain exposition has no exemplar syntax, so a 0.0.4 scraper
	// must never see one.
	var plain strings.Builder
	if err := reg.WritePrometheus(&plain); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain.String(), " # ") {
		t.Fatalf("exemplar leaked into the classic exposition:\n%s", plain.String())
	}

	var sb strings.Builder
	if err := reg.WriteOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if !strings.Contains(text, `# {trace_id="deadbeef000102030405060708090a0b"} 0.05`) {
		t.Fatalf("exposition missing exemplar:\n%s", text)
	}
	if !strings.HasSuffix(text, "# EOF\n") {
		t.Fatalf("OpenMetrics document missing # EOF terminator:\n%s", text)
	}

	samples, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatalf("Parse of own exposition failed: %v", err)
	}
	var found *Exemplar
	for _, s := range samples {
		if s.Name == "ex_seconds_bucket" && s.Label("le") == "0.1" {
			found = s.Exemplar
		}
	}
	if found == nil {
		t.Fatalf("no exemplar parsed from:\n%s", text)
	}
	if got := found.TraceID(); got != "deadbeef000102030405060708090a0b" {
		t.Fatalf("exemplar trace_id = %q", got)
	}
	if found.Value != 0.05 {
		t.Fatalf("exemplar value = %g, want 0.05", found.Value)
	}

	// Replacement: a later sample in the same bucket wins.
	h.ObserveEx(0.07, [16]byte{0xff}, "demo")
	sb.Reset()
	if err := reg.WriteOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `# {trace_id="ff000000000000000000000000000000"} 0.07`) {
		t.Fatalf("exemplar not replaced:\n%s", sb.String())
	}

	// Dropping the owner removes the exemplar but not the counts.
	h.DropExemplars("demo")
	sb.Reset()
	if err := reg.WriteOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "trace_id") {
		t.Fatalf("exemplar survived DropExemplars:\n%s", sb.String())
	}
	if h.Count() != 2 {
		t.Fatalf("DropExemplars changed counts: %d", h.Count())
	}
}

func TestPlainObserveEmitsNoExemplar(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("plain_seconds", "help", []float64{1}).Observe(0.5)
	var sb strings.Builder
	if err := reg.WriteOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), " # ") {
		t.Fatalf("plain Observe leaked an exemplar:\n%s", sb.String())
	}
}

func TestHandlerContentNegotiation(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("nego_requests_total", "help").Inc()
	reg.Histogram("nego_seconds", "help", []float64{1}).ObserveEx(0.5, [16]byte{0xab}, "n")

	get := func(accept string) (string, string) {
		t.Helper()
		req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		rec := httptest.NewRecorder()
		reg.Handler().ServeHTTP(rec, req)
		return rec.Header().Get("Content-Type"), rec.Body.String()
	}

	// Default (and explicit text/plain) scrape: classic format, no
	// exemplars, no # EOF — a stock 0.0.4 parser must never choke.
	for _, accept := range []string{"", "text/plain; version=0.0.4", "*/*"} {
		ct, body := get(accept)
		if !strings.HasPrefix(ct, "text/plain") {
			t.Fatalf("Accept %q: Content-Type = %q", accept, ct)
		}
		if strings.Contains(body, "trace_id") || strings.Contains(body, "# EOF") {
			t.Fatalf("Accept %q leaked OpenMetrics syntax into text/plain:\n%s", accept, body)
		}
		if !strings.Contains(body, "# TYPE nego_requests_total counter") {
			t.Fatalf("classic TYPE line must keep the full name:\n%s", body)
		}
	}

	// The negotiation Prometheus actually sends.
	const promAccept = "application/openmetrics-text;version=1.0.0,application/openmetrics-text;version=0.0.1;q=0.75,text/plain;version=0.0.4;q=0.5,*/*;q=0.1"
	ct, body := get(promAccept)
	if ct != OpenMetricsContentType {
		t.Fatalf("OpenMetrics Content-Type = %q", ct)
	}
	if !strings.Contains(body, `# {trace_id="ab000000000000000000000000000000"} 0.5`) {
		t.Fatalf("negotiated exposition missing exemplar:\n%s", body)
	}
	if !strings.HasSuffix(body, "# EOF\n") {
		t.Fatalf("negotiated exposition missing # EOF:\n%s", body)
	}
	// OpenMetrics names the counter family without _total; samples
	// keep the suffix.
	if !strings.Contains(body, "# TYPE nego_requests counter") ||
		!strings.Contains(body, "\nnego_requests_total 1\n") {
		t.Fatalf("OpenMetrics counter naming wrong:\n%s", body)
	}
}

func TestDropExemplarsScopedToOwner(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("scoped_seconds", "help", []float64{0.01, 1})
	h.ObserveEx(0.005, [16]byte{1}, "keep")
	h.ObserveEx(0.5, [16]byte{2}, "drop")
	h.DropExemplars("drop")
	var sb strings.Builder
	if err := reg.WriteOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `trace_id="01`) {
		t.Fatalf("exemplar of other owner dropped:\n%s", out)
	}
	if strings.Contains(out, `trace_id="02`) {
		t.Fatalf("owned exemplar survived:\n%s", out)
	}
}

func TestObserveExDoesNotAllocate(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("exalloc_seconds", "help", nil)
	traceID := [16]byte{7}
	avg := testing.AllocsPerRun(1000, func() {
		h.ObserveEx(0.0042, traceID, "net")
	})
	if avg != 0 {
		t.Fatalf("ObserveEx allocates %g allocs/op, want 0", avg)
	}
}

func TestParseExemplarErrors(t *testing.T) {
	bad := []string{
		`m_bucket{le="1"} 3 # trace_id`,           // no brace
		`m_bucket{le="1"} 3 # {trace_id="x"}`,     // missing value
		`m_bucket{le="1"} 3 # {trace_id="x"} huh`, // bad value
		`m_bucket{le="1"} 3 # {trace_id=x} 1`,     // malformed labels
	}
	for _, line := range bad {
		if _, err := Parse(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("Parse(%q) accepted malformed exemplar", line)
		}
	}
}

// Satellite coverage: Parse/Buckets/BucketQuantile edges previously only
// exercised indirectly through sinrload scrapes.
func TestBucketQuantileEdgeCases(t *testing.T) {
	// Registered but never observed: all-zero cumulative counts.
	empty := []Bucket{{LE: 0.1, Count: 0}, {LE: math.Inf(1), Count: 0}}
	if got := BucketQuantile(0.99, empty); !math.IsNaN(got) {
		t.Fatalf("unobserved histogram quantile = %g, want NaN", got)
	}
	// Single finite bucket: everything interpolates inside it.
	single := []Bucket{{LE: 2, Count: 10}}
	if got := BucketQuantile(0.5, single); got != 1 {
		t.Fatalf("single-bucket p50 = %g, want 1", got)
	}
	// +Inf-only histogram: no finite bound to report.
	infOnly := []Bucket{{LE: math.Inf(1), Count: 5}}
	if got := BucketQuantile(0.5, infOnly); !math.IsNaN(got) {
		t.Fatalf("+Inf-only quantile = %g, want NaN", got)
	}
	// Quantile 0 and 1 stay within the histogram's range.
	bs := []Bucket{{LE: 0.1, Count: 50}, {LE: 1, Count: 90}, {LE: math.Inf(1), Count: 100}}
	if got := BucketQuantile(0, bs); got < 0 || got > 0.1 {
		t.Fatalf("p0 = %g, want within first bucket", got)
	}
	if got := BucketQuantile(1, bs); got != 1 {
		t.Fatalf("p100 = %g, want highest finite bound", got)
	}
}

func TestBucketsFromParsedExposition(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("bx_seconds", "help", []float64{0.1, 1})
	h.ObserveEx(0.05, [16]byte{3}, "n")
	h.Observe(0.5)
	var sb strings.Builder
	if err := reg.WriteOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	samples, err := Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	bs := Buckets(samples, "bx_seconds")
	if len(bs) != 3 {
		t.Fatalf("buckets = %d, want 3 (%+v)", len(bs), bs)
	}
	if bs[0].Count != 1 || bs[1].Count != 2 || bs[2].Count != 2 {
		t.Fatalf("cumulative counts wrong with exemplars present: %+v", bs)
	}
}
