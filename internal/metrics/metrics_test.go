package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestCounterGaugeSemantics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "help", L("k", "v"))
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Same name+labels returns the same instance.
	if c2 := reg.Counter("c_total", "help", L("k", "v")); c2 != c {
		t.Fatal("re-registration returned a different counter")
	}
	// Different labels is a different series.
	if c3 := reg.Counter("c_total", "help", L("k", "w")); c3 == c {
		t.Fatal("distinct labels shared one counter")
	}
	// Label argument order must not matter.
	a := reg.Gauge("g", "help", L("a", "1"), L("b", "2"))
	b := reg.Gauge("g", "help", L("b", "2"), L("a", "1"))
	if a != b {
		t.Fatal("label order changed series identity")
	}
	a.Set(7)
	a.Inc()
	a.Dec()
	if got := a.Add(-2); got != 5 {
		t.Fatalf("gauge Add returned %d, want 5", got)
	}
}

func TestTypeConflictPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	reg.Gauge("x", "help")
}

func TestHistogramBucketPlacement(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h_seconds", "help", []float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0005, 0.001, 0.005, 0.05, 5} {
		h.Observe(v)
	}
	// Non-cumulative per-interval counts: (<=0.001)=2 — bounds are
	// inclusive — (0.001,0.01]=1, (0.01,0.1]=1, +Inf=1.
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if got := h.BucketCount(i); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.0005+0.001+0.005+0.05+5; math.Abs(got-want) > 1e-12 {
		t.Fatalf("sum = %g, want %g", got, want)
	}
}

// TestGoldenExposition pins the exposition document byte-for-byte:
// HELP/TYPE headers, sorted families, sorted label keys, escaping,
// cumulative histogram buckets with +Inf, _sum and _count.
func TestGoldenExposition(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("app_requests_total", "Total requests.", L("route", "locate"), L("code", "2xx"))
	c.Add(3)
	reg.Counter("app_requests_total", "Total requests.", L("route", "locate"), L("code", "4xx")).Inc()
	g := reg.Gauge("app_inflight", "In-flight requests.")
	g.Set(2)
	h := reg.Histogram("app_seconds", "Latency.", []float64{0.01, 0.1}, L("route", "locate"))
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(7)
	reg.GaugeFunc("app_info", "Fixed value.", func() float64 { return 1.5 }, L("version", `a"b\c`))
	reg.CounterFunc("app_hits_total", "Hits.", func() uint64 { return 42 })

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP app_hits_total Hits.
# TYPE app_hits_total counter
app_hits_total 42
# HELP app_inflight In-flight requests.
# TYPE app_inflight gauge
app_inflight 2
# HELP app_info Fixed value.
# TYPE app_info gauge
app_info{version="a\"b\\c"} 1.5
# HELP app_requests_total Total requests.
# TYPE app_requests_total counter
app_requests_total{code="2xx",route="locate"} 3
app_requests_total{code="4xx",route="locate"} 1
# HELP app_seconds Latency.
# TYPE app_seconds histogram
app_seconds_bucket{route="locate",le="0.01"} 1
app_seconds_bucket{route="locate",le="0.1"} 3
app_seconds_bucket{route="locate",le="+Inf"} 4
app_seconds_sum{route="locate"} 7.105
app_seconds_count{route="locate"} 4
`
	if got := sb.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestUnregister pins the lifecycle counterpart of late registration:
// dropping one series removes exactly that series, label argument
// order does not matter, an emptied family loses its HELP/TYPE
// header, and re-registering after an unregister starts fresh.
func TestUnregister(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("net_stations", "help", L("network", "a")).Set(3)
	reg.Gauge("net_stations", "help", L("network", "b")).Set(5)
	reg.GaugeFunc("net_epoch", "help", func() float64 { return 9 }, L("network", "a"), L("shard", "0"))

	if reg.Unregister("missing") {
		t.Fatal("Unregister reported true for an unknown family")
	}
	if reg.Unregister("net_stations", L("network", "zzz")) {
		t.Fatal("Unregister reported true for unknown labels")
	}
	// Label argument order must not matter, matching registration.
	if !reg.Unregister("net_epoch", L("shard", "0"), L("network", "a")) {
		t.Fatal("Unregister missed an existing series with reordered labels")
	}
	if !reg.Unregister("net_stations", L("network", "a")) {
		t.Fatal("Unregister missed an existing series")
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := `# HELP net_stations help
# TYPE net_stations gauge
net_stations{network="b"} 5
`
	if got != want {
		t.Fatalf("exposition after unregister:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// Re-registration after unregister is a fresh series, not the old one.
	g := reg.Gauge("net_stations", "help", L("network", "a"))
	if v := g.Value(); v != 0 {
		t.Fatalf("re-registered gauge carried old value %d", v)
	}
	// Double-unregister reports false.
	if reg.Unregister("net_epoch", L("network", "a"), L("shard", "0")) {
		t.Fatal("second Unregister of the same series reported true")
	}
}

// TestParseRoundTrip: a written document parses back into the same
// values, including escaped labels and histogram expansions.
func TestParseRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("rt_total", "help", L("k", "line\nbreak"), L("q", `"quoted"`)).Add(9)
	h := reg.Histogram("rt_seconds", "help", []float64{0.5})
	h.Observe(0.25)
	h.Observe(2)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	samples, err := Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := Value(samples, "rt_total", L("k", "line\nbreak"), L("q", `"quoted"`)); !ok || v != 9 {
		t.Fatalf("rt_total = %g, %v", v, ok)
	}
	if v, ok := Value(samples, "rt_seconds_count"); !ok || v != 2 {
		t.Fatalf("rt_seconds_count = %g, %v", v, ok)
	}
	bs := Buckets(samples, "rt_seconds")
	if len(bs) != 2 || bs[0].Count != 1 || bs[1].Count != 2 || !math.IsInf(bs[1].LE, 1) {
		t.Fatalf("buckets = %+v", bs)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"noval",
		`x{k="v} 1`,
		`x{k=v} 1`,
		"x notanumber",
	} {
		if _, err := Parse(strings.NewReader(bad)); err == nil {
			t.Fatalf("Parse(%q) succeeded", bad)
		}
	}
	// Comments and blanks are fine.
	samples, err := Parse(strings.NewReader("# HELP x y\n\nx 1\n"))
	if err != nil || len(samples) != 1 {
		t.Fatalf("samples %v, err %v", samples, err)
	}
}

func TestBucketQuantile(t *testing.T) {
	// 100 samples: 50 in (0, 0.1], 40 in (0.1, 1], 10 in (1, +Inf).
	bs := []Bucket{{LE: 0.1, Count: 50}, {LE: 1, Count: 90}, {LE: math.Inf(1), Count: 100}}
	if got := BucketQuantile(0.5, bs); got != 0.1 {
		t.Fatalf("p50 = %g, want 0.1", got)
	}
	// p90 = rank 90 -> upper edge of the second bucket.
	if got := BucketQuantile(0.9, bs); math.Abs(got-1) > 1e-9 {
		t.Fatalf("p90 = %g, want 1", got)
	}
	// p75 = rank 75 -> 25/40 into (0.1, 1].
	if got, want := BucketQuantile(0.75, bs), 0.1+0.9*25/40; math.Abs(got-want) > 1e-9 {
		t.Fatalf("p75 = %g, want %g", got, want)
	}
	// Rank inside +Inf: clamp to the highest finite bound.
	if got := BucketQuantile(0.99, bs); got != 1 {
		t.Fatalf("p99 = %g, want 1", got)
	}
	if got := BucketQuantile(0.5, nil); !math.IsNaN(got) {
		t.Fatalf("empty histogram quantile = %g, want NaN", got)
	}
}

// TestHotPathDoesNotAllocate is the unit-level form of the bench-gate
// rule: recording through a counter, gauge and histogram — the exact
// per-request instrumentation of the serve layer — performs zero
// allocations.
func TestHotPathDoesNotAllocate(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("alloc_total", "help", L("route", "locate"))
	g := reg.Gauge("alloc_inflight", "help")
	h := reg.Histogram("alloc_seconds", "help", nil)
	avg := testing.AllocsPerRun(1000, func() {
		g.Inc()
		c.Inc()
		h.Observe(0.0042)
		g.Dec()
	})
	if avg != 0 {
		t.Fatalf("metrics record path allocates %g allocs/op, want 0", avg)
	}
}

func TestConcurrentObserve(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("conc_seconds", "help", []float64{1})
	c := reg.Counter("conc_total", "help")
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				h.Observe(0.5)
				c.Inc()
			}
		}()
	}
	for w := 0; w < 8; w++ {
		<-done
	}
	if h.Count() != 8000 || c.Value() != 8000 {
		t.Fatalf("count = %d, counter = %d, want 8000", h.Count(), c.Value())
	}
	if math.Abs(h.Sum()-4000) > 1e-6 {
		t.Fatalf("sum = %g, want 4000", h.Sum())
	}
}
