package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name=value pair of a metric series. Construct with L.
type Label struct {
	Key, Value string
}

// L is the Label constructor: L("route", "locate").
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing counter. The zero value is
// usable, but counters obtained from a Registry are what a scrape can
// see. All methods are safe for concurrent use and never allocate.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
//
//sinr:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
//
//sinr:hotpath
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an integer gauge (inflight requests, queue depths). All
// methods are safe for concurrent use and never allocate.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d and returns the new value — the return value is what
// lets an admission gate use the gauge itself as its depth counter
// instead of tracking a shadow atomic.
func (g *Gauge) Add(d int64) int64 { return g.v.Add(d) }

// Inc adds one.
//
//sinr:hotpath
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
//
//sinr:hotpath
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefBuckets is the default latency histogram layout: 100µs to 10s,
// roughly logarithmic — wide enough for an in-process locate (tens of
// µs) and a cold locator build (seconds) to land in distinct buckets.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram. Buckets are set at
// registration and never change, so Observe is a linear scan over a
// small bounds slice plus three atomic updates — no locks, no
// allocation. Bucket counts are exposed cumulatively (Prometheus
// convention) at scrape time only; internally each slot counts its own
// interval.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; implicit +Inf last
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated

	// Exemplars: one slot per bucket, last write wins. The mutex is
	// uncontended in practice (one short critical section per ObserveEx)
	// and only taken by callers that opted into exemplars.
	emu       sync.Mutex
	exemplars []exemplar
}

// exemplar is one captured (trace, value) pair for a bucket. The trace
// ID is stored pre-hex-encoded so recording never formats and scraping
// never re-encodes; owner scopes the exemplar to a network so deletion
// can drop it.
type exemplar struct {
	traceHex [32]byte
	owner    string
	value    float64
	valid    bool
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{
		bounds:    b,
		counts:    make([]atomic.Uint64, len(b)+1),
		exemplars: make([]exemplar, len(b)+1),
	}
}

// bucketIdx returns the slot index for a sample: the first bound the
// sample fits under, or the +Inf overflow slot.
func (h *Histogram) bucketIdx(v float64) int {
	for i, b := range h.bounds {
		if v <= b {
			return i
		}
	}
	return len(h.bounds)
}

// Observe records one sample.
//
//sinr:hotpath
func (h *Histogram) Observe(v float64) {
	h.counts[h.bucketIdx(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

const hexdigits = "0123456789abcdef"

// ObserveEx records one sample and attaches a (trace ID, value)
// exemplar to the bucket it lands in, replacing the bucket's previous
// exemplar. The trace ID is raw bytes (not a formatted string) so the
// call stays allocation-free; owner names the network the sample
// belongs to, "" when unscoped.
//
//sinr:hotpath
func (h *Histogram) ObserveEx(v float64, traceID [16]byte, owner string) {
	idx := h.bucketIdx(v)
	h.counts[idx].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			break
		}
	}
	h.emu.Lock()
	e := &h.exemplars[idx]
	for i := 0; i < 16; i++ {
		e.traceHex[2*i] = hexdigits[traceID[i]>>4]
		e.traceHex[2*i+1] = hexdigits[traceID[i]&0x0f]
	}
	e.owner = owner
	e.value = v
	e.valid = true
	h.emu.Unlock()
}

// DropExemplars invalidates every exemplar whose owner matches —
// called when a network is deleted so a scrape never references a
// trace of evicted state. Bucket counts are unaffected.
func (h *Histogram) DropExemplars(owner string) {
	h.emu.Lock()
	for i := range h.exemplars {
		if h.exemplars[i].valid && h.exemplars[i].owner == owner {
			h.exemplars[i] = exemplar{}
		}
	}
	h.emu.Unlock()
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// BucketCount returns the non-cumulative count of bucket i, where
// i indexes the registered bounds and i == len(bounds) is the +Inf
// overflow bucket. It is a test hook; scrapes read the cumulative
// exposition instead.
func (h *Histogram) BucketCount(i int) uint64 { return h.counts[i].Load() }

// metricKind discriminates what one series holds.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

func (k metricKind) expoType() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// series is one labelled instance under a family.
type series struct {
	labels    []Label // sorted by key
	counter   *Counter
	gauge     *Gauge
	hist      *Histogram
	counterFn func() uint64
	gaugeFn   func() float64
}

// family groups every series sharing one metric name.
type family struct {
	name, help string
	kind       metricKind
	bounds     []float64 // histogram families only
	order      []string  // series signatures, registration order
	series     map[string]*series
}

// Registry holds metric families and writes the exposition document.
// Registration methods are idempotent per (name, labels): asking twice
// returns the same metric, so late registration (a per-network gauge
// when the network appears) needs no caller-side dedup. Registering a
// name twice with a different type or, for histograms, different
// buckets panics — that is a programming error, not runtime input.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	onScrape []func()
}

// NewRegistry returns an empty Registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// signature is the map key of one label combination.
func signature(labels []Label) string {
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Key)
		b.WriteByte(0x1f)
		b.WriteString(l.Value)
		b.WriteByte(0x1e)
	}
	return b.String()
}

// sortedLabels copies and key-sorts labels so signatures and output
// order are independent of call-site argument order.
func sortedLabels(labels []Label) []Label {
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// lookup returns (creating if needed) the series of name+labels,
// panicking on a type mismatch with an earlier registration.
func (r *Registry) lookup(name, help string, kind metricKind, bounds []float64, labels []Label) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, bounds: bounds, series: make(map[string]*series)}
		r.families[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("metrics: %s re-registered as %s (was %s)", name, kind.expoType(), f.kind.expoType()))
	}
	ls := sortedLabels(labels)
	sig := signature(ls)
	s := f.series[sig]
	if s == nil {
		s = &series{labels: ls}
		switch kind {
		case kindCounter:
			s.counter = &Counter{}
		case kindGauge:
			s.gauge = &Gauge{}
		case kindHistogram:
			s.hist = newHistogram(bounds)
		}
		f.series[sig] = s
		f.order = append(f.order, sig)
	}
	return s
}

// Counter returns the counter named name with the given labels,
// creating it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.lookup(name, help, kindCounter, nil, labels).counter
}

// Gauge returns the gauge named name with the given labels, creating
// it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.lookup(name, help, kindGauge, nil, labels).gauge
}

// Histogram returns the histogram named name with the given bucket
// upper bounds and labels, creating it on first use. Nil bounds mean
// DefBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	return r.lookup(name, help, kindHistogram, bounds, labels).hist
}

// CounterFunc registers a counter whose value is read from fn at
// scrape time — the bridge for counters owned elsewhere (a cache's
// hit count) without double bookkeeping. The first fn registered for
// a given name+labels wins; later registrations are no-ops.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	s := r.lookup(name, help, kindCounterFunc, nil, labels)
	r.mu.Lock()
	if s.counterFn == nil {
		s.counterFn = fn
	}
	r.mu.Unlock()
}

// GaugeFunc registers a gauge whose value is read from fn at scrape
// time. The first fn registered for a given name+labels wins.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.lookup(name, help, kindGaugeFunc, nil, labels)
	r.mu.Lock()
	if s.gaugeFn == nil {
		s.gaugeFn = fn
	}
	r.mu.Unlock()
}

// Unregister removes the series of name+labels from the exposition,
// reporting whether it existed. A family left with no series is
// dropped entirely (no orphaned HELP/TYPE header). This is the
// lifecycle counterpart of late registration: a per-network gauge
// registered when the network appears is unregistered when the
// network is deleted, so a scrape never reports state for an object
// that no longer exists. Pointers handed out earlier keep working —
// they just stop being scraped.
func (r *Registry) Unregister(name string, labels ...Label) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		return false
	}
	sig := signature(sortedLabels(labels))
	if _, ok := f.series[sig]; !ok {
		return false
	}
	delete(f.series, sig)
	for i, s := range f.order {
		if s == sig {
			f.order = append(f.order[:i], f.order[i+1:]...)
			break
		}
	}
	if len(f.series) == 0 {
		delete(r.families, name)
	}
	return true
}

// OnScrape registers a hook run at the start of every WritePrometheus
// call — the place for batch collectors (one runtime.ReadMemStats
// updating several gauges) that would be wasteful per-gauge.
func (r *Registry) OnScrape(fn func()) {
	r.mu.Lock()
	r.onScrape = append(r.onScrape, fn)
	r.mu.Unlock()
}

// escapeLabel applies the exposition format's label value escaping.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// appendLabels writes {k="v",...} with extra appended after the
// series' own labels (used for histogram le); empty sets write
// nothing.
func appendLabels(b []byte, labels []Label, extra ...Label) []byte {
	if len(labels)+len(extra) == 0 {
		return b
	}
	b = append(b, '{')
	first := true
	for _, set := range [][]Label{labels, extra} {
		for _, l := range set {
			if !first {
				b = append(b, ',')
			}
			first = false
			b = append(b, l.Key...)
			b = append(b, '=', '"')
			b = append(b, escapeLabel(l.Value)...)
			b = append(b, '"')
		}
	}
	return append(b, '}')
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes every family in the classic Prometheus text
// exposition format (text/plain; version=0.0.4), families sorted by
// name, series in registration order — a deterministic document the
// golden tests can pin byte-for-byte. The classic format has no
// exemplar syntax, so recorded exemplars are omitted here; they appear
// only in WriteOpenMetrics, keeping this document parseable by stock
// 0.0.4 scrapers.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.writeExposition(w, false)
}

// WriteOpenMetrics writes the same families in the OpenMetrics text
// format: recorded exemplars ride their histogram bucket lines
// (` # {trace_id="…"} value`), counter HELP/TYPE lines drop the
// family's _total suffix (OpenMetrics names the family, samples carry
// the suffix), and the document ends with the mandatory `# EOF`
// terminator.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	return r.writeExposition(w, true)
}

func (r *Registry) writeExposition(w io.Writer, om bool) error {
	r.mu.Lock()
	hooks := append([]func(){}, r.onScrape...)
	r.mu.Unlock()
	// Hooks run unlocked: they may Set gauges through the registry's
	// own metrics without deadlocking.
	for _, fn := range hooks {
		fn()
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)

	var buf []byte
	for _, name := range names {
		f := r.families[name]
		// In OpenMetrics the HELP/TYPE lines name the counter family
		// without its _total suffix; the sample lines keep it.
		headerName := f.name
		if om && (f.kind == kindCounter || f.kind == kindCounterFunc) {
			headerName = strings.TrimSuffix(f.name, "_total")
		}
		buf = buf[:0]
		buf = append(buf, "# HELP "...)
		buf = append(buf, headerName...)
		buf = append(buf, ' ')
		buf = append(buf, f.help...)
		buf = append(buf, "\n# TYPE "...)
		buf = append(buf, headerName...)
		buf = append(buf, ' ')
		buf = append(buf, f.kind.expoType()...)
		buf = append(buf, '\n')
		for _, sig := range f.order {
			s := f.series[sig]
			switch f.kind {
			case kindCounter:
				buf = appendSample(buf, f.name, s.labels, strconv.FormatUint(s.counter.Value(), 10))
			case kindCounterFunc:
				v := uint64(0)
				if s.counterFn != nil {
					v = s.counterFn()
				}
				buf = appendSample(buf, f.name, s.labels, strconv.FormatUint(v, 10))
			case kindGauge:
				buf = appendSample(buf, f.name, s.labels, strconv.FormatInt(s.gauge.Value(), 10))
			case kindGaugeFunc:
				v := 0.0
				if s.gaugeFn != nil {
					v = s.gaugeFn()
				}
				buf = appendSample(buf, f.name, s.labels, formatFloat(v))
			case kindHistogram:
				buf = appendHistogram(buf, f.name, s.labels, s.hist, om)
			}
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	if om {
		if _, err := io.WriteString(w, "# EOF\n"); err != nil {
			return err
		}
	}
	return nil
}

// appendExemplar emits the OpenMetrics exemplar suffix for bucket i —
// ` # {trace_id="<32 hex>"} <value>` — when one is recorded. Buckets
// observed only through plain Observe emit nothing, so expositions
// without exemplars are byte-identical to before.
func appendExemplar(b []byte, ex []exemplar, i int) []byte {
	if i >= len(ex) || !ex[i].valid {
		return b
	}
	b = append(b, ` # {trace_id="`...)
	b = append(b, ex[i].traceHex[:]...)
	b = append(b, `"} `...)
	return append(b, formatFloat(ex[i].value)...)
}

func appendSample(b []byte, name string, labels []Label, value string) []byte {
	b = append(b, name...)
	b = appendLabels(b, labels)
	b = append(b, ' ')
	b = append(b, value...)
	return append(b, '\n')
}

func appendHistogram(b []byte, name string, labels []Label, h *Histogram, om bool) []byte {
	// Snapshot exemplars once so bucket emission holds no lock. Only
	// the OpenMetrics format has exemplar syntax; the classic format
	// skips the snapshot entirely and appendExemplar sees an empty
	// slice for every bucket.
	var ex []exemplar
	if om && h.exemplars != nil {
		h.emu.Lock()
		ex = append(ex, h.exemplars...)
		h.emu.Unlock()
	}
	cum := uint64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		b = append(b, name...)
		b = append(b, "_bucket"...)
		b = appendLabels(b, labels, L("le", formatFloat(bound)))
		b = append(b, ' ')
		b = strconv.AppendUint(b, cum, 10)
		b = appendExemplar(b, ex, i)
		b = append(b, '\n')
	}
	cum += h.counts[len(h.bounds)].Load()
	b = append(b, name...)
	b = append(b, "_bucket"...)
	b = appendLabels(b, labels, L("le", "+Inf"))
	b = append(b, ' ')
	b = strconv.AppendUint(b, cum, 10)
	b = appendExemplar(b, ex, len(h.bounds))
	b = append(b, '\n')

	b = append(b, name...)
	b = append(b, "_sum"...)
	b = appendLabels(b, labels)
	b = append(b, ' ')
	b = append(b, formatFloat(h.Sum())...)
	b = append(b, '\n')

	b = append(b, name...)
	b = append(b, "_count"...)
	b = appendLabels(b, labels)
	b = append(b, ' ')
	b = strconv.AppendUint(b, h.Count(), 10)
	return append(b, '\n')
}

// OpenMetricsContentType is the Content-Type of the negotiated
// OpenMetrics exposition.
const OpenMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// AcceptsOpenMetrics reports whether an Accept header value asks for
// the OpenMetrics text format — the negotiation a Prometheus scraper
// performs when it wants exemplars.
func AcceptsOpenMetrics(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		if strings.HasPrefix(strings.TrimSpace(part), "application/openmetrics-text") {
			return true
		}
	}
	return false
}

// Handler returns an http.Handler serving the exposition document —
// the /metrics endpoint. The format is content-negotiated: a client
// whose Accept header names application/openmetrics-text gets the
// OpenMetrics document (exemplars, `# EOF` terminator); everyone else
// gets the classic text format, which has no exemplar syntax a 0.0.4
// parser could choke on.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if AcceptsOpenMetrics(req.Header.Get("Accept")) {
			w.Header().Set("Content-Type", OpenMetricsContentType)
			_ = r.WriteOpenMetrics(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// RegisterGoRuntime registers the Go runtime gauges (goroutines, heap
// bytes and objects, GC cycles and total pause) on r, collected by one
// ReadMemStats per scrape.
func RegisterGoRuntime(r *Registry) {
	goroutines := r.Gauge("go_goroutines", "Number of live goroutines.")
	heapAlloc := r.Gauge("go_heap_alloc_bytes", "Bytes of allocated heap objects.")
	heapSys := r.Gauge("go_heap_sys_bytes", "Bytes of heap memory obtained from the OS.")
	heapObjects := r.Gauge("go_heap_objects", "Number of allocated heap objects.")
	gcCycles := r.Gauge("go_gc_cycles_total", "Completed GC cycles.")
	gcPause := r.Gauge("go_gc_pause_ns_total", "Cumulative GC stop-the-world pause, nanoseconds.")
	r.OnScrape(func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		goroutines.Set(int64(runtime.NumGoroutine()))
		heapAlloc.Set(int64(ms.HeapAlloc))
		heapSys.Set(int64(ms.HeapSys))
		heapObjects.Set(int64(ms.HeapObjects))
		gcCycles.Set(int64(ms.NumGC))
		gcPause.Set(int64(ms.PauseTotalNs))
	})
}
