// Package metrics is the dependency-free instrumentation kit behind
// the serving layer's /metrics endpoint: atomic counters, gauges and
// fixed-bucket histograms grouped by a Registry that writes the
// Prometheus text exposition format.
//
// The design constraint is the serve hot path: recording a sample —
// Counter.Inc, Gauge.Add, Histogram.Observe — is a handful of atomic
// operations and never allocates, locks or looks anything up. All
// naming and labelling happens at registration time: a caller asks the
// Registry once for the metric bound to a fixed label combination and
// holds the returned pointer, so the per-request cost is independent
// of how many series exist. The Registry itself is mutex-guarded and
// meant for registration and scraping, both off the hot path;
// registering the same name and label set twice returns the existing
// metric, so runtime registration (say, per-network gauges as networks
// appear) is idempotent.
//
// The package also carries the client side of its own format: Parse
// reads an exposition document back into samples and BucketQuantile
// estimates quantiles from cumulative histogram buckets, which is what
// lets the load generator correlate client-observed latencies with the
// server's own histograms without a metrics dependency either.
package metrics
