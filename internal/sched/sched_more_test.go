package sched

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/geom"
)

// TestByLengthTieBreak pins the determinism satellite: exact length
// ties break toward the lowest link index (the kdtree.Nearest
// convention). The instance is all ties, so any order-dependent or
// comparison-unstable implementation — e.g. a non-stable sort without
// an index tie-break, which is exactly what a naive reimplementation
// reaches for — shuffles it and fails.
func TestByLengthTieBreak(t *testing.T) {
	const n = 64
	links := make([]Link, n)
	for i := range links {
		// Same length 1 everywhere, distinct positions.
		links[i] = mkLink(float64(i)*10, 0, float64(i)*10+1, 0)
	}
	for _, asc := range []bool{true, false} {
		order := ByLength(links, asc)
		if !sort.IntsAreSorted(order) {
			t.Errorf("ByLength(asc=%v) on an all-ties instance = %v, want identity", asc, order)
		}
	}
	// Mixed: two length groups, ties within each resolved by index.
	mixed := []Link{
		mkLink(0, 0, 2, 0),   // len 2
		mkLink(10, 0, 11, 0), // len 1
		mkLink(20, 0, 22, 0), // len 2
		mkLink(30, 0, 31, 0), // len 1
	}
	if got := ByLength(mixed, true); got[0] != 1 || got[1] != 3 || got[2] != 0 || got[3] != 2 {
		t.Errorf("ascending = %v, want [1 3 0 2]", got)
	}
	if got := ByLength(mixed, false); got[0] != 0 || got[1] != 2 || got[2] != 1 || got[3] != 3 {
		t.Errorf("descending = %v, want [0 2 1 3]", got)
	}
}

// TestValidateDiagnostics pins the error-message satellite: Validate
// names the offending slot and link.
func TestValidateDiagnostics(t *testing.T) {
	links := []Link{
		mkLink(0, 0, 1, 0),
		mkLink(1, 0, 2, 0), // sender on receiver 0: jams it in any shared slot
		mkLink(50, 0, 51, 0),
	}
	p, err := NewSINRProblem(links, 0.001, 2)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		slots [][]int
		want  []string
	}{
		{"infeasible slot names slot and link", [][]int{{2}, {0, 1}}, []string{"slot 1", "link 0"}},
		{"duplicate names both slots", [][]int{{0}, {1}, {2}, {1}}, []string{"link 1", "slots 1 and 3"}},
		{"missing link named", [][]int{{0}, {1}}, []string{"2 of 3", "link 2 missing"}},
		{"out of range names slot", [][]int{{0}, {1}, {2, 9}}, []string{"slot 2", "link 9"}},
	}
	for _, tc := range cases {
		s := &Schedule{Slots: tc.slots}
		err := s.Validate(p)
		if err == nil {
			t.Errorf("%s: Validate accepted %v", tc.name, tc.slots)
			continue
		}
		for _, frag := range tc.want {
			if !strings.Contains(err.Error(), frag) {
				t.Errorf("%s: error %q missing %q", tc.name, err, frag)
			}
		}
	}
}

func TestKindRoundTrip(t *testing.T) {
	if NumKinds != len(Kinds()) {
		t.Fatalf("NumKinds = %d but Kinds() has %d entries", NumKinds, len(Kinds()))
	}
	for _, k := range Kinds() {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if k, err := ParseKind(""); err != nil || k != KindGreedy {
		t.Errorf("empty kind = %v, %v; want greedy", k, err)
	}
	if _, err := ParseKind("mystery"); err == nil {
		t.Error("unknown kind must fail")
	}
	if s := Kind(99).String(); s != "Kind(99)" {
		t.Errorf("out-of-range String = %q", s)
	}
	if _, err := BuildSchedule(Kind(99), mustSINR(t), nil); err == nil {
		t.Error("BuildSchedule with an unknown kind must fail")
	}
}

func mustSINR(t *testing.T) *SINRProblem {
	t.Helper()
	p, err := NewSINRProblem([]Link{mkLink(0, 0, 1, 0)}, 0.001, 2)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestLengthClassesStructure: classes are scheduled into disjoint slot
// ranges, shortest class first — a short link never shares a slot with
// a link from another octave.
func TestLengthClassesStructure(t *testing.T) {
	var links []Link
	for i := 0; i < 8; i++ {
		links = append(links, mkLink(float64(i)*100, 0, float64(i)*100+1, 0)) // class 0
	}
	for i := 0; i < 8; i++ {
		links = append(links, mkLink(float64(i)*100, 500, float64(i)*100+3, 500)) // class 1
	}
	p, err := NewSINRProblem(links, 0.0001, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := LengthClasses(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(p); err != nil {
		t.Fatal(err)
	}
	for si, slot := range s.Slots {
		short, long := false, false
		for _, li := range slot {
			if li < 8 {
				short = true
			} else {
				long = true
			}
		}
		if short && long {
			t.Fatalf("slot %d mixes length classes: %v", si, slot)
		}
	}
	// Shortest class first.
	if len(s.Slots) == 0 || s.Slots[0][0] >= 8 {
		t.Fatalf("first slot %v is not from the shortest class", s.Slots)
	}
	// A foreign Feasibility without LinkSet cannot be length-classed.
	if _, err := LengthClasses(opaque{p}); err == nil {
		t.Error("LengthClasses must reject a Feasibility without link access")
	}
}

// opaque hides everything but the plain Feasibility interface — it is
// how the tests exercise the trialSlot fallback path.
type opaque struct{ f Feasibility }

func (o opaque) NumLinks() int                  { return o.f.NumLinks() }
func (o opaque) SlotFeasible(active []int) bool { return o.f.SlotFeasible(active) }

// TestGreedyFallbackOnForeignFeasibility: schedulers still work (via
// trial SlotFeasible calls) for oracles that are not Incremental.
func TestGreedyFallbackOnForeignFeasibility(t *testing.T) {
	links := []Link{mkLink(0, 0, 1, 0), mkLink(1.5, 0, 2.5, 0), mkLink(50, 0, 51, 0)}
	p, err := NewSINRProblem(links, 0.001, 2)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Greedy(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	wrapped, err := Greedy(opaque{p}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if direct.NumSlots() != wrapped.NumSlots() {
		t.Fatalf("incremental and fallback greedy disagree: %d vs %d slots",
			direct.NumSlots(), wrapped.NumSlots())
	}
	if err := wrapped.Validate(p); err != nil {
		t.Fatal(err)
	}
	// Repair through the fallback path too.
	if _, _, err := Repair(opaque{p}, wrapped, 1); err != nil {
		t.Fatal(err)
	}
}

// TestAlphaMutationRebuildsState: tests (and callers) set Alpha after
// construction; the acceleration state must follow.
func TestAlphaMutationRebuildsState(t *testing.T) {
	links := []Link{
		mkLink(0, 0, 1, 0),
		{Sender: geom.Pt(5, 0), Receiver: geom.Pt(6, 0), Power: 60},
	}
	p, err := NewSINRProblem(links, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.SlotFeasible([]int{0, 1}) {
		t.Fatal("strong interferer should jam link 0 at alpha=2")
	}
	p.Alpha = 6
	if !p.SlotFeasible([]int{0, 1}) {
		t.Error("alpha=6 should suppress the interferer (state not rebuilt?)")
	}
	slot := p.NewSlot()
	if !slot.Add(0) || !slot.Add(1) {
		t.Error("incremental slot disagrees after alpha change")
	}
}
