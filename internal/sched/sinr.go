package sched

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/geom"
	"repro/internal/kdtree"
)

// SINRProblem checks slot feasibility under the physical model: link
// j succeeds iff its receiver's SINR from its own sender, against all
// other active senders plus noise, reaches Beta.
//
// Feasibility queries run through an incremental slot engine backed by
// lazily built acceleration state (per-link geometry and signal, plus
// kd-trees over senders and receivers for the nearest-interferer
// candidate filter). The state is rebuilt automatically when Noise,
// Beta, Alpha or the link count changes; mutating entries of Links in
// place after the first query is not supported.
type SINRProblem struct {
	Links []Link
	Noise float64
	Beta  float64
	Alpha float64 // <= 0 means 2

	mu    sync.Mutex
	built *sinrState
	pool  sync.Pool // of *sinrSlot, for one-shot SlotFeasible calls
}

// NewSINRProblem validates and returns a SINR scheduling instance.
func NewSINRProblem(links []Link, noise, beta float64) (*SINRProblem, error) {
	if len(links) == 0 {
		return nil, errors.New("sched: no links")
	}
	if noise < 0 || beta <= 0 {
		return nil, fmt.Errorf("sched: invalid noise %v or beta %v", noise, beta)
	}
	for i, l := range links {
		if geom.Dist2(l.Sender, l.Receiver) == 0 {
			return nil, fmt.Errorf("sched: link %d has coincident endpoints", i)
		}
	}
	return &SINRProblem{Links: links, Noise: noise, Beta: beta, Alpha: 2}, nil
}

// NumLinks implements Feasibility.
func (p *SINRProblem) NumLinks() int { return len(p.Links) }

// Link implements LinkSet.
func (p *SINRProblem) Link(i int) Link { return p.Links[i] }

func (p *SINRProblem) alpha() float64 {
	if p.Alpha <= 0 {
		return 2
	}
	return p.Alpha
}

// energyAt is psi * d^-alpha given the squared distance (infinite at
// distance 0) — the one energy formula every SINR path shares, so the
// incremental engine and the naive scan cannot drift apart.
func energyAt(alpha, psi, d2 float64) float64 {
	if d2 == 0 {
		return math.Inf(1)
	}
	if alpha == 2 {
		return psi / d2
	}
	return psi * math.Pow(d2, -alpha/2)
}

// energy returns psi * dist(a, b)^-alpha (infinite at distance 0).
func (p *SINRProblem) energy(psi float64, a, b geom.Point) float64 {
	return energyAt(p.alpha(), psi, geom.Dist2(a, b))
}

// sinrState is the immutable acceleration state every slot engine of
// one problem shares. The parameters it was built under are recorded
// so that state() can detect post-construction tweaks (tests set
// Alpha in place) and rebuild.
type sinrState struct {
	alpha   float64
	beta    float64
	noise   float64
	sendPos []geom.Point
	recvPos []geom.Point
	power   []float64
	signal  []float64 // received signal strength per link
	senders *kdtree.Tree
}

// state returns the current acceleration state, building it on first
// use and rebuilding it when the problem's parameters changed.
func (p *SINRProblem) state() *sinrState {
	a := p.alpha()
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.built
	if st != nil && st.alpha == a && st.beta == p.Beta && st.noise == p.Noise &&
		len(st.signal) == len(p.Links) {
		return st
	}
	n := len(p.Links)
	st = &sinrState{
		alpha:   a,
		beta:    p.Beta,
		noise:   p.Noise,
		sendPos: make([]geom.Point, n),
		recvPos: make([]geom.Point, n),
		power:   make([]float64, n),
		signal:  make([]float64, n),
	}
	for i, l := range p.Links {
		st.sendPos[i] = l.Sender
		st.recvPos[i] = l.Receiver
		st.power[i] = l.power()
		st.signal[i] = energyAt(a, l.power(), geom.Dist2(l.Sender, l.Receiver))
	}
	st.senders = kdtree.New(st.sendPos)
	p.built = st
	return st
}

// NewSlot implements Incremental.
func (p *SINRProblem) NewSlot() Slot { return p.newSlot() }

func (p *SINRProblem) newSlot() *sinrSlot {
	s := &sinrSlot{st: p.state(), inSlot: make([]bool, len(p.Links))}
	s.remap = func(i int) (int, bool) { return i, s.inSlot[i] }
	return s
}

// sinrSlot is the incremental SINR slot engine. Invariant: interf[k]
// holds the cumulative interference at active[k]'s receiver from the
// other members, accumulated in insertion order. For slots built by
// pure adds those floating-point sums are bit-identical to the ones
// SlotFeasibleScan computes (which also sums in slice order), so the
// two paths agree exactly, not just approximately; only Remove, which
// subtracts, can drift by rounding — schedulers treat the engine as
// authoritative and Validate re-checks from scratch.
type sinrSlot struct {
	st      *sinrState
	active  []int
	interf  []float64 // parallel to active
	scratch []float64
	inSlot  []bool
	remap   func(int) (int, bool)
}

// CanAdd implements Slot.
//
//sinr:hotpath
func (s *sinrSlot) CanAdd(link int) bool { return s.place(link, false) }

// Add implements Slot.
func (s *sinrSlot) Add(link int) bool { return s.place(link, true) }

//sinr:hotpath
func (s *sinrSlot) place(j int, commit bool) bool {
	st := s.st
	if j < 0 || j >= len(st.signal) || s.inSlot[j] {
		return false
	}
	sigJ := st.signal[j]
	if len(s.active) > 0 {
		// Candidate filter: the nearest active sender contributes one
		// exact term of the interference sum at j's receiver. If that
		// term alone pushes j below threshold, reject in O(log n)
		// before any O(active) pass — in first-fit scheduling most
		// trials fail, and most failures are caused by a near-field
		// interferer, so this filter carries the bulk of the speedup.
		// Sound because interference terms are non-negative and float
		// summation of non-negative terms never dips below any single
		// term.
		if i, d2, ok := st.senders.NearestMapped(st.recvPos[j], s.remap); ok {
			e := energyAt(st.alpha, st.power[i], d2)
			if math.IsInf(e, 1) || sigJ < st.beta*(e+st.noise) {
				return false
			}
		}
	}
	// Exact pass one: the full interference sum at j's receiver, in
	// insertion order — SlotFeasibleScan's summation order.
	rj := st.recvPos[j]
	interfJ := 0.0
	for _, i := range s.active {
		e := energyAt(st.alpha, st.power[i], geom.Dist2(st.sendPos[i], rj))
		if math.IsInf(e, 1) {
			return false
		}
		interfJ += e
	}
	if sigJ < st.beta*(interfJ+st.noise) {
		return false
	}
	// Exact pass two: each member's receiver absorbs j's term on top
	// of its maintained cumulative interference.
	if cap(s.scratch) < len(s.active) {
		s.scratch = make([]float64, len(s.active)) //sinr:alloc-ok amortized scratch grow; steady state reuses the buffer
	}
	scratch := s.scratch[:len(s.active)]
	sj, pj := st.sendPos[j], st.power[j]
	for k, i := range s.active {
		e := energyAt(st.alpha, pj, geom.Dist2(sj, st.recvPos[i]))
		if math.IsInf(e, 1) || st.signal[i] < st.beta*(s.interf[k]+e+st.noise) {
			return false
		}
		scratch[k] = e
	}
	if !commit {
		return true
	}
	for k := range scratch {
		s.interf[k] += scratch[k]
	}
	s.active = append(s.active, j)
	s.interf = append(s.interf, interfJ)
	s.inSlot[j] = true
	return true
}

// Remove implements Slot.
func (s *sinrSlot) Remove(link int) bool {
	if link < 0 || link >= len(s.inSlot) || !s.inSlot[link] {
		return false
	}
	st := s.st
	at := -1
	for k, i := range s.active {
		if i == link {
			at = k
			break
		}
	}
	sj, pj := st.sendPos[link], st.power[link]
	for k, i := range s.active {
		if k == at {
			continue
		}
		s.interf[k] -= energyAt(st.alpha, pj, geom.Dist2(sj, st.recvPos[i]))
	}
	s.active = append(s.active[:at], s.active[at+1:]...)
	s.interf = append(s.interf[:at], s.interf[at+1:]...)
	s.inSlot[link] = false
	return true
}

// Len implements Slot.
func (s *sinrSlot) Len() int { return len(s.active) }

// Links implements Slot.
func (s *sinrSlot) Links(dst []int) []int { return append(dst, s.active...) }

// reset empties the slot for pool reuse, touching only the members.
func (s *sinrSlot) reset() {
	for _, i := range s.active {
		s.inSlot[i] = false
	}
	s.active = s.active[:0]
	s.interf = s.interf[:0]
}

// SlotFeasible implements Feasibility under the SINR rule through the
// incremental engine: members join one by one, and a failed prefix
// decides the set, since interference only grows with more members —
// monotone in the real sums and, term order being fixed, in the float
// sums too. For well-formed active sets the answer matches
// SlotFeasibleScan bit-for-bit; out-of-range or duplicated entries
// report infeasible instead of panicking.
func (p *SINRProblem) SlotFeasible(active []int) bool {
	if len(active) == 0 {
		return true
	}
	st := p.state()
	s, _ := p.pool.Get().(*sinrSlot)
	if s == nil || s.st != st {
		s = p.newSlot()
		s.st = st
	}
	ok := true
	for _, li := range active {
		if !s.place(li, true) {
			ok = false
			break
		}
	}
	s.reset()
	p.pool.Put(s)
	return ok
}

// SlotFeasibleScan is the naive O(k²) all-pairs feasibility oracle —
// the reference implementation the incremental path is pinned against
// in the property tests and raced against in E20.
func (p *SINRProblem) SlotFeasibleScan(active []int) bool {
	for _, j := range active {
		if !p.received(j, active) {
			return false
		}
	}
	return true
}

// FirstInfeasible returns the first link in active (slice order) that
// is not successfully received when all of active transmit, or -1 if
// the slot is feasible. Validate uses it to name the offender.
func (p *SINRProblem) FirstInfeasible(active []int) int {
	for _, j := range active {
		if !p.received(j, active) {
			return j
		}
	}
	return -1
}

// received reports whether link j meets beta against the other links
// of active transmitting concurrently, summing interference in slice
// order (the order every exact path in this package shares).
func (p *SINRProblem) received(j int, active []int) bool {
	lj := p.Links[j]
	signal := p.energy(lj.power(), lj.Sender, lj.Receiver)
	interference := 0.0
	for _, i := range active {
		if i == j {
			continue
		}
		li := p.Links[i]
		e := p.energy(li.power(), li.Sender, lj.Receiver)
		if math.IsInf(e, 1) {
			return false
		}
		interference += e
	}
	return signal >= p.Beta*(interference+p.Noise)
}
