// Package sched implements link scheduling on top of the SINR model —
// the class of higher-layer problems the paper's introduction argues
// should be solved against the physical model rather than graph
// abstractions. It provides slot-feasibility checking under both the
// SINR rule and the UDG/protocol rule, a greedy first-fit scheduler,
// and ordering heuristics, so the two models' schedule lengths can be
// compared on the same instances.
//
// Map to the paper: the introduction's discussion of scheduling under
// the physical model and its references [8], [12], [13] (Moscibroda
// et al.); the SINR feasibility predicate is Equation (1) applied to
// a slot's concurrent senders.
package sched
