// Package sched builds link schedules under the physical (SINR) and
// protocol interference models — the class of higher-layer problems
// the paper's introduction argues should be solved against the
// physical model rather than graph abstractions (its references [8],
// [12], [13], Moscibroda et al.). The SINR feasibility predicate is
// Equation (1) applied to a slot's concurrent senders.
//
// # Feasibility engines
//
// Both SINRProblem and ProtocolProblem answer slot feasibility through
// incremental slot engines (the Slot interface, minted by NewSlot).
// A slot maintains per-receiver cumulative interference, so a trial
// placement costs O(active) — and usually O(log n), because a kd-tree
// over the active senders rejects most trials from the nearest
// interferer alone — instead of the O(active²) full recheck of the
// naive oracle. The naive all-pairs oracles survive as
// SlotFeasibleScan; for slots built by pure adds the incremental SINR
// sums are accumulated in the scan's own term order, so the two paths
// agree bit-for-bit, a property the package's tests pin.
//
// # Schedulers
//
// Three schedulers share the engines (Kind, BuildSchedule): Greedy
// first-fit in a caller-chosen order, LengthClasses in the
// Moscibroda-Wattenhofer style (geometric length classes, each
// scheduled into private slots), and "repair" — greedy followed by
// Improve, a local-search descent that moves links from later slots
// into earlier ones. Repair also reconciles an existing schedule with
// a changed problem incrementally, which is how the serving layer
// keeps cached schedules alive across PATCH deltas instead of
// recomputing them.
//
// DeriveLinks derives a deterministic link per station from station
// geometry alone, so a server and its clients can agree on a link set
// without shipping it.
package sched
