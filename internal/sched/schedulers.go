package sched

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Kind names a scheduler. The zero value is KindGreedy.
type Kind int

const (
	// KindGreedy is first-fit in a caller-chosen order.
	KindGreedy Kind = iota
	// KindLenClass is length-class scheduling in the
	// Moscibroda-Wattenhofer style.
	KindLenClass
	// KindRepair is greedy followed by local-search improvement.
	KindRepair
)

// NumKinds is the number of scheduler kinds; Kind values are dense in
// [0, NumKinds), so callers can size per-kind metric tables.
const NumKinds = int(KindRepair) + 1

// String returns the parseable name of the kind.
func (k Kind) String() string {
	switch k {
	case KindGreedy:
		return "greedy"
	case KindLenClass:
		return "lenclass"
	case KindRepair:
		return "repair"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind maps a scheduler name to its Kind. The empty string means
// greedy.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "", "greedy":
		return KindGreedy, nil
	case "lenclass":
		return KindLenClass, nil
	case "repair":
		return KindRepair, nil
	}
	return 0, fmt.Errorf("sched: unknown scheduler %q (want greedy, lenclass or repair)", s)
}

// Kinds returns all scheduler kinds in declaration order.
func Kinds() []Kind { return []Kind{KindGreedy, KindLenClass, KindRepair} }

// DefaultImprovePasses is how many local-search sweeps Improve runs
// when the caller does not say.
const DefaultImprovePasses = 2

// BuildSchedule runs the named scheduler. order is honored by greedy
// and repair (nil means identity) and ignored by lenclass, which
// derives its own order from the length classes.
func BuildSchedule(kind Kind, f Feasibility, order []int) (*Schedule, error) {
	switch kind {
	case KindGreedy:
		return Greedy(f, order)
	case KindLenClass:
		return LengthClasses(f)
	case KindRepair:
		slots, err := greedySlots(f, order)
		if err != nil {
			return nil, err
		}
		improveSlots(f, &slots, DefaultImprovePasses)
		return scheduleOf(slots), nil
	}
	return nil, fmt.Errorf("sched: unknown scheduler kind %d", int(kind))
}

// Greedy builds a schedule by first-fit: links are processed in the
// given order and placed into the first slot that stays feasible with
// them added; a fresh slot is opened otherwise. A link that is
// infeasible even alone yields an error. order == nil means identity.
func Greedy(f Feasibility, order []int) (*Schedule, error) {
	slots, err := greedySlots(f, order)
	if err != nil {
		return nil, err
	}
	return scheduleOf(slots), nil
}

func greedySlots(f Feasibility, order []int) ([]Slot, error) {
	n := f.NumLinks()
	if order == nil {
		order = IdentityOrder(n)
	}
	if len(order) != n {
		return nil, fmt.Errorf("sched: order has %d entries for %d links", len(order), n)
	}
	var slots []Slot
	for _, li := range order {
		if li < 0 || li >= n {
			return nil, fmt.Errorf("sched: order entry %d out of range", li)
		}
		if err := firstFit(f, &slots, li); err != nil {
			return nil, err
		}
	}
	return slots, nil
}

// firstFit places li into the first slot that accepts it, opening a
// fresh one if none does.
func firstFit(f Feasibility, slots *[]Slot, li int) error {
	for _, sl := range *slots {
		if sl.Add(li) {
			return nil
		}
	}
	sl := newSlotFor(f)
	if !sl.Add(li) {
		return fmt.Errorf("sched: link %d infeasible even alone", li)
	}
	*slots = append(*slots, sl)
	return nil
}

func scheduleOf(slots []Slot) *Schedule {
	s := &Schedule{Slots: make([][]int, len(slots))}
	for i, sl := range slots {
		s.Slots[i] = sl.Links(nil)
	}
	return s
}

// LengthClasses schedules in the Moscibroda-Wattenhofer style: links
// are partitioned into geometric length classes (class c holds lengths
// in [Lmin·2^c, Lmin·2^(c+1))) and each class is first-fit scheduled
// into its own private slots, shortest class first. Links of similar
// length tolerate each other's interference far better than mixed
// lengths do — the structural insight behind the scheduling bounds in
// the Moscibroda et al. line of work the paper builds on — so on
// mixed-length instances the classed schedule gives the local-search
// improver a much better starting point than plain first-fit over an
// arbitrary order.
func LengthClasses(f Feasibility) (*Schedule, error) {
	ls, ok := f.(LinkSet)
	if !ok {
		return nil, errors.New("sched: length-class scheduling needs link access (LinkSet)")
	}
	n := f.NumLinks()
	if n == 0 {
		return &Schedule{}, nil
	}
	lengths := make([]float64, n)
	minLen := math.Inf(1)
	for i := 0; i < n; i++ {
		lengths[i] = ls.Link(i).Length()
		if lengths[i] < minLen {
			minLen = lengths[i]
		}
	}
	if minLen <= 0 || math.IsInf(minLen, 1) {
		return nil, fmt.Errorf("sched: degenerate minimum link length %v", minLen)
	}
	// Sort by (class, length, index): classes ascend, and within a
	// class short links go first with ties toward the lowest index —
	// fully deterministic, like ByLength.
	class := make([]int, n)
	for i := range class {
		class[i] = int(math.Floor(math.Log2(lengths[i] / minLen)))
	}
	order := IdentityOrder(n)
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if class[ia] != class[ib] {
			return class[ia] < class[ib]
		}
		if lengths[ia] != lengths[ib] {
			return lengths[ia] < lengths[ib]
		}
		return ia < ib
	})
	// First-fit, but a class never reuses an earlier class's slots:
	// classSlots resets at every class boundary while slots keeps the
	// whole schedule.
	var slots, classSlots []Slot
	prevClass := class[order[0]]
	for _, li := range order {
		if class[li] != prevClass {
			slots = append(slots, classSlots...)
			classSlots = classSlots[:0]
			prevClass = class[li]
		}
		if err := firstFit(f, &classSlots, li); err != nil {
			return nil, err
		}
	}
	slots = append(slots, classSlots...)
	return scheduleOf(slots), nil
}

// Improve runs local-search descent on s in place: each pass sweeps
// the slots from last to first, offering every link to every earlier
// slot; a link that fits moves, and emptied slots are deleted. Passes
// repeat until a pass moves nothing or maxPasses is hit (<= 0 means
// DefaultImprovePasses). Returns the number of links moved. The same
// routine powers the "repair" scheduler (as a post-pass on greedy
// output) and the serve layer's incremental re-scheduling after
// network deltas. Errors if s is not a feasible schedule for f.
func Improve(f Feasibility, s *Schedule, maxPasses int) (int, error) {
	slots, err := slotsOf(f, s)
	if err != nil {
		return 0, err
	}
	moves := improveSlots(f, &slots, maxPasses)
	s.Slots = scheduleOf(slots).Slots
	return moves, nil
}

// slotsOf rebuilds incremental engines for an existing schedule,
// erroring with the offending slot and link if any slot is not
// feasible under f.
func slotsOf(f Feasibility, s *Schedule) ([]Slot, error) {
	slots := make([]Slot, 0, len(s.Slots))
	for si, slot := range s.Slots {
		sl := newSlotFor(f)
		for _, li := range slot {
			if !sl.Add(li) {
				return nil, fmt.Errorf("sched: slot %d rejects link %d", si, li)
			}
		}
		slots = append(slots, sl)
	}
	return slots, nil
}

func improveSlots(f Feasibility, slots *[]Slot, maxPasses int) int {
	if maxPasses <= 0 {
		maxPasses = DefaultImprovePasses
	}
	moves := 0
	var members []int
	for pass := 0; pass < maxPasses; pass++ {
		moved := 0
		for si := len(*slots) - 1; si > 0; si-- {
			members = (*slots)[si].Links(members[:0])
			for _, li := range members {
				for ti := 0; ti < si; ti++ {
					if (*slots)[ti].Add(li) {
						(*slots)[si].Remove(li)
						moved++
						break
					}
				}
			}
		}
		kept := (*slots)[:0]
		for _, sl := range *slots {
			if sl.Len() > 0 {
				kept = append(kept, sl)
			}
		}
		*slots = kept
		moves += moved
		if moved == 0 {
			break
		}
	}
	return moves
}

// RepairStats reports what Repair did to reconcile a schedule.
type RepairStats struct {
	Kept      int `json:"kept"`      // links that stayed in their slot
	Displaced int `json:"displaced"` // links evicted from a now-infeasible slot
	Dropped   int `json:"dropped"`   // stale entries discarded (out of range or duplicate)
	Placed    int `json:"placed"`    // links placed fresh (new plus displaced)
	Moves     int `json:"moves"`     // links moved by the improver pass
}

// Repair reconciles a schedule with a (possibly changed) problem
// instead of recomputing it: stale entries are dropped, every slot is
// re-verified incrementally (links that no longer fit are displaced),
// unscheduled links are placed first-fit shortest-first, and
// improvePasses sweeps of the local-search improver compact the result
// (improvePasses <= 0 skips the improver). This is the serve layer's
// PATCH path: a delta touches few links, so repairing the cached
// schedule costs proportional to the change, not to the network. The
// input schedule is not modified.
func Repair(f Feasibility, s *Schedule, improvePasses int) (*Schedule, RepairStats, error) {
	n := f.NumLinks()
	var stats RepairStats
	seen := make([]bool, n)
	var pending []int
	slots := make([]Slot, 0, len(s.Slots))
	for _, slot := range s.Slots {
		sl := newSlotFor(f)
		for _, li := range slot {
			if li < 0 || li >= n || seen[li] {
				stats.Dropped++
				continue
			}
			seen[li] = true
			if sl.Add(li) {
				stats.Kept++
			} else {
				stats.Displaced++
				pending = append(pending, li)
			}
		}
		if sl.Len() > 0 {
			slots = append(slots, sl)
		}
	}
	for li := 0; li < n; li++ {
		if !seen[li] {
			pending = append(pending, li)
		}
	}
	stats.Placed = len(pending)
	if ls, ok := f.(LinkSet); ok {
		sort.Slice(pending, func(a, b int) bool {
			la, lb := ls.Link(pending[a]).Length(), ls.Link(pending[b]).Length()
			if la != lb {
				return la < lb
			}
			return pending[a] < pending[b]
		})
	}
	for _, li := range pending {
		if err := firstFit(f, &slots, li); err != nil {
			return nil, stats, err
		}
	}
	if improvePasses > 0 {
		stats.Moves = improveSlots(f, &slots, improvePasses)
	}
	return scheduleOf(slots), stats, nil
}
