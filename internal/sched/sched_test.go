package sched

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func mkLink(sx, sy, rx, ry float64) Link {
	return Link{Sender: geom.Pt(sx, sy), Receiver: geom.Pt(rx, ry)}
}

func TestNewSINRProblemValidation(t *testing.T) {
	good := []Link{mkLink(0, 0, 1, 0)}
	if _, err := NewSINRProblem(nil, 0, 2); err == nil {
		t.Error("empty links must fail")
	}
	if _, err := NewSINRProblem(good, -1, 2); err == nil {
		t.Error("negative noise must fail")
	}
	if _, err := NewSINRProblem(good, 0, 0); err == nil {
		t.Error("zero beta must fail")
	}
	if _, err := NewSINRProblem([]Link{mkLink(1, 1, 1, 1)}, 0, 2); err == nil {
		t.Error("zero-length link must fail")
	}
	if _, err := NewSINRProblem(good, 0.01, 2); err != nil {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestSINRSlotFeasible(t *testing.T) {
	// Two well-separated short links coexist; two overlapping ones do
	// not.
	farApart := []Link{
		mkLink(0, 0, 1, 0),
		mkLink(100, 0, 101, 0),
	}
	p, err := NewSINRProblem(farApart, 0.001, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !p.SlotFeasible([]int{0, 1}) {
		t.Error("distant links should share a slot")
	}
	if !p.SlotFeasible([]int{0}) || !p.SlotFeasible(nil) {
		t.Error("singleton and empty slots should be feasible")
	}

	closeBy := []Link{
		mkLink(0, 0, 1, 0),
		mkLink(0.5, 0.5, 1.5, 0.5), // sender near receiver 0
	}
	p2, err := NewSINRProblem(closeBy, 0.001, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p2.SlotFeasible([]int{0, 1}) {
		t.Error("interfering links should not share a slot")
	}
}

func TestSINRSlotSenderOnReceiver(t *testing.T) {
	links := []Link{
		mkLink(0, 0, 1, 0),
		mkLink(1, 0, 2, 0), // sender exactly at receiver 0
	}
	p, err := NewSINRProblem(links, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.SlotFeasible([]int{0, 1}) {
		t.Error("sender colocated with a receiver must jam it")
	}
}

func TestSINRProblemPowerAndAlpha(t *testing.T) {
	// A stronger interferer flips feasibility.
	links := []Link{
		mkLink(0, 0, 1, 0),
		{Sender: geom.Pt(5, 0), Receiver: geom.Pt(6, 0), Power: 1},
	}
	p, _ := NewSINRProblem(links, 0, 2)
	if !p.SlotFeasible([]int{0, 1}) {
		t.Fatal("unit powers at distance 5 should coexist")
	}
	links[1].Power = 60
	p2, _ := NewSINRProblem(links, 0, 2)
	if p2.SlotFeasible([]int{0, 1}) {
		t.Error("a 60x interferer at distance ~4 should jam link 0")
	}
	// Higher alpha attenuates interference faster: the strong
	// interferer becomes tolerable again.
	p3, _ := NewSINRProblem(links, 0, 2)
	p3.Alpha = 6
	if !p3.SlotFeasible([]int{0, 1}) {
		t.Error("alpha=6 should suppress the distant interferer")
	}
}

func TestNewProtocolProblemValidation(t *testing.T) {
	good := []Link{mkLink(0, 0, 1, 0)}
	if _, err := NewProtocolProblem(nil, 2, 0); err == nil {
		t.Error("empty links must fail")
	}
	if _, err := NewProtocolProblem(good, 0, 0); err == nil {
		t.Error("zero radius must fail")
	}
	if _, err := NewProtocolProblem(good, 2, 1); err == nil {
		t.Error("interference < connectivity must fail")
	}
	if _, err := NewProtocolProblem(good, 0.5, 0); err == nil {
		t.Error("link longer than connectivity radius must fail")
	}
	p, err := NewProtocolProblem(good, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.InterfRadius != 2 {
		t.Errorf("InterfRadius defaulted to %v, want 2", p.InterfRadius)
	}
}

func TestProtocolSlotFeasible(t *testing.T) {
	links := []Link{
		mkLink(0, 0, 1, 0),
		mkLink(1.5, 0, 2.5, 0), // sender within radius 2 of receiver 0
		mkLink(50, 0, 51, 0),
	}
	p, err := NewProtocolProblem(links, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.SlotFeasible([]int{0, 1}) {
		t.Error("links 0 and 1 conflict under the protocol rule")
	}
	if !p.SlotFeasible([]int{0, 2}) {
		t.Error("links 0 and 2 are far apart")
	}
}

func TestGreedyScheduleValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	links := make([]Link, 30)
	for i := range links {
		s := geom.Pt(rng.Float64()*40, rng.Float64()*40)
		theta := rng.Float64() * 6.28
		links[i] = Link{Sender: s, Receiver: geom.PolarPoint(s, 0.5+rng.Float64(), theta)}
	}
	p, err := NewSINRProblem(links, 0.001, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, order := range [][]int{nil, ByLength(links, true), ByLength(links, false)} {
		s, err := Greedy(p, order)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(p); err != nil {
			t.Fatalf("invalid schedule: %v", err)
		}
		if s.NumLinks() != len(links) {
			t.Fatalf("scheduled %d of %d links", s.NumLinks(), len(links))
		}
		if s.NumSlots() < 1 || s.NumSlots() > len(links) {
			t.Fatalf("slots = %d", s.NumSlots())
		}
	}
}

func TestGreedyErrors(t *testing.T) {
	p, _ := NewSINRProblem([]Link{mkLink(0, 0, 1, 0)}, 0, 2)
	if _, err := Greedy(p, []int{0, 0}); err == nil {
		t.Error("wrong-length order must fail")
	}
	if _, err := Greedy(p, []int{5}); err == nil {
		t.Error("out-of-range order entry must fail")
	}
	// A link that cannot meet beta even alone (noise too high).
	weak, _ := NewSINRProblem([]Link{mkLink(0, 0, 10, 0)}, 1, 2)
	if _, err := Greedy(weak, nil); err == nil {
		t.Error("infeasible-alone link must fail")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	links := []Link{mkLink(0, 0, 1, 0), mkLink(50, 0, 51, 0)}
	p, _ := NewSINRProblem(links, 0.001, 2)
	s, err := Greedy(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate a link.
	bad := &Schedule{Slots: append(append([][]int{}, s.Slots...), []int{0})}
	if err := bad.Validate(p); err == nil {
		t.Error("duplicate link must fail validation")
	}
	// Drop a link.
	missing := &Schedule{Slots: [][]int{{0}}}
	if err := missing.Validate(p); err == nil {
		t.Error("missing link must fail validation")
	}
}

// TestSINRBeatsProtocolOnCollisions: the paper's motivating phenomenon
// — links the protocol model serializes can coexist under SINR when
// one is much closer to its receiver. SINR schedules must never be
// longer on instances where every protocol conflict is a real SINR
// conflict... but can be shorter; check a crafted instance.
func TestSINRBeatsProtocolOnCollisions(t *testing.T) {
	// Two short links whose senders are within the other's interference
	// radius but whose SINR is comfortable (distance ratio ~10).
	links := []Link{
		mkLink(0, 0, 0.5, 0),
		mkLink(6, 0, 5.5, 0),
	}
	sp, err := NewSINRProblem(links, 0.001, 2)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := NewProtocolProblem(links, 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := Greedy(sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := Greedy(pp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ss.NumSlots() != 1 {
		t.Errorf("SINR slots = %d, want 1", ss.NumSlots())
	}
	if ps.NumSlots() != 2 {
		t.Errorf("protocol slots = %d, want 2", ps.NumSlots())
	}
}

func TestByLengthOrders(t *testing.T) {
	links := []Link{
		mkLink(0, 0, 3, 0),
		mkLink(0, 0, 1, 0),
		mkLink(0, 0, 2, 0),
	}
	asc := ByLength(links, true)
	if asc[0] != 1 || asc[1] != 2 || asc[2] != 0 {
		t.Errorf("ascending = %v", asc)
	}
	desc := ByLength(links, false)
	if desc[0] != 0 || desc[2] != 1 {
		t.Errorf("descending = %v", desc)
	}
}

func TestLinkPowerDefault(t *testing.T) {
	l := Link{Sender: geom.Pt(0, 0), Receiver: geom.Pt(1, 0)}
	if l.power() != 1 {
		t.Errorf("default power = %v", l.power())
	}
	l.Power = 2.5
	if l.power() != 2.5 {
		t.Errorf("power = %v", l.power())
	}
	if l.Length() != 1 {
		t.Errorf("length = %v", l.Length())
	}
}
