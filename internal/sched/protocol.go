package sched

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/geom"
	"repro/internal/kdtree"
)

// ProtocolProblem checks slot feasibility under the UDG/protocol
// model: link j succeeds iff its receiver is within ConnRadius of its
// sender and no other active sender is within InterfRadius of the
// receiver.
//
// Conflict here is purely pairwise, so the incremental slot engine's
// trial placement is exactly two filtered nearest-neighbor queries —
// O(log n), with no per-member pass at all.
type ProtocolProblem struct {
	Links        []Link
	ConnRadius   float64
	InterfRadius float64

	mu    sync.Mutex
	built *protoState
	pool  sync.Pool // of *protoSlot, for one-shot SlotFeasible calls
}

// NewProtocolProblem validates and returns a protocol-model instance.
// interfRadius defaults to connRadius when zero.
func NewProtocolProblem(links []Link, connRadius, interfRadius float64) (*ProtocolProblem, error) {
	if len(links) == 0 {
		return nil, errors.New("sched: no links")
	}
	if connRadius <= 0 {
		return nil, fmt.Errorf("sched: invalid connectivity radius %v", connRadius)
	}
	if interfRadius == 0 {
		interfRadius = connRadius
	}
	if interfRadius < connRadius {
		return nil, fmt.Errorf("sched: interference radius %v below connectivity radius %v",
			interfRadius, connRadius)
	}
	for i, l := range links {
		if l.Length() > connRadius {
			return nil, fmt.Errorf("sched: link %d longer (%v) than connectivity radius %v",
				i, l.Length(), connRadius)
		}
	}
	return &ProtocolProblem{Links: links, ConnRadius: connRadius, InterfRadius: interfRadius}, nil
}

// NumLinks implements Feasibility.
func (p *ProtocolProblem) NumLinks() int { return len(p.Links) }

// Link implements LinkSet.
func (p *ProtocolProblem) Link(i int) Link { return p.Links[i] }

// protoState is the shared acceleration state: per-link geometry plus
// kd-trees over senders and receivers for the conflict queries.
type protoState struct {
	conn      float64
	interf    float64
	sendPos   []geom.Point
	recvPos   []geom.Point
	lengths   []float64
	senders   *kdtree.Tree
	receivers *kdtree.Tree
}

func (p *ProtocolProblem) state() *protoState {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.built
	if st != nil && st.conn == p.ConnRadius && st.interf == p.InterfRadius &&
		len(st.lengths) == len(p.Links) {
		return st
	}
	n := len(p.Links)
	st = &protoState{
		conn:    p.ConnRadius,
		interf:  p.InterfRadius,
		sendPos: make([]geom.Point, n),
		recvPos: make([]geom.Point, n),
		lengths: make([]float64, n),
	}
	for i, l := range p.Links {
		st.sendPos[i] = l.Sender
		st.recvPos[i] = l.Receiver
		st.lengths[i] = l.Length()
	}
	st.senders = kdtree.New(st.sendPos)
	st.receivers = kdtree.New(st.recvPos)
	p.built = st
	return st
}

// NewSlot implements Incremental.
func (p *ProtocolProblem) NewSlot() Slot { return p.newSlot() }

func (p *ProtocolProblem) newSlot() *protoSlot {
	s := &protoSlot{st: p.state(), inSlot: make([]bool, len(p.Links))}
	s.remap = func(i int) (int, bool) { return i, s.inSlot[i] }
	return s
}

// protoSlot is the incremental protocol-model slot engine. The
// conflict rule is symmetric between a candidate and each member
// (sender i within InterfRadius of receiver j, either direction), so
// the nearest active sender to the candidate's receiver and the
// nearest active receiver to the candidate's sender decide the trial
// outright. The boundary comparison always re-evaluates geom.Dist on
// the returned pair, keeping the accept/reject rule identical to the
// scan's.
type protoSlot struct {
	st     *protoState
	active []int
	inSlot []bool
	remap  func(int) (int, bool)
}

// CanAdd implements Slot.
func (s *protoSlot) CanAdd(link int) bool { return s.check(link) }

// Add implements Slot.
func (s *protoSlot) Add(link int) bool {
	if !s.check(link) {
		return false
	}
	s.active = append(s.active, link)
	s.inSlot[link] = true
	return true
}

func (s *protoSlot) check(j int) bool {
	st := s.st
	if j < 0 || j >= len(s.inSlot) || s.inSlot[j] {
		return false
	}
	if st.lengths[j] > st.conn {
		return false
	}
	if len(s.active) == 0 {
		return true
	}
	if i, _, ok := st.senders.NearestMapped(st.recvPos[j], s.remap); ok {
		if geom.Dist(st.sendPos[i], st.recvPos[j]) <= st.interf {
			return false
		}
	}
	if i, _, ok := st.receivers.NearestMapped(st.sendPos[j], s.remap); ok {
		if geom.Dist(st.sendPos[j], st.recvPos[i]) <= st.interf {
			return false
		}
	}
	return true
}

// Remove implements Slot.
func (s *protoSlot) Remove(link int) bool {
	if link < 0 || link >= len(s.inSlot) || !s.inSlot[link] {
		return false
	}
	for k, li := range s.active {
		if li == link {
			s.active = append(s.active[:k], s.active[k+1:]...)
			break
		}
	}
	s.inSlot[link] = false
	return true
}

// Len implements Slot.
func (s *protoSlot) Len() int { return len(s.active) }

// Links implements Slot.
func (s *protoSlot) Links(dst []int) []int { return append(dst, s.active...) }

func (s *protoSlot) reset() {
	for _, i := range s.active {
		s.inSlot[i] = false
	}
	s.active = s.active[:0]
}

// SlotFeasible implements Feasibility under the protocol rule through
// the incremental engine; a failed prefix decides the set since the
// conflict relation is pairwise and monotone in the member set. For
// well-formed active sets the answer matches SlotFeasibleScan;
// out-of-range or duplicated entries report infeasible instead of
// panicking.
func (p *ProtocolProblem) SlotFeasible(active []int) bool {
	if len(active) == 0 {
		return true
	}
	st := p.state()
	s, _ := p.pool.Get().(*protoSlot)
	if s == nil || s.st != st {
		s = p.newSlot()
	}
	ok := true
	for _, li := range active {
		if !s.Add(li) {
			ok = false
			break
		}
	}
	s.reset()
	p.pool.Put(s)
	return ok
}

// SlotFeasibleScan is the naive O(k²) all-pairs oracle — the reference
// implementation for the property tests.
func (p *ProtocolProblem) SlotFeasibleScan(active []int) bool {
	for _, j := range active {
		if !p.received(j, active) {
			return false
		}
	}
	return true
}

// FirstInfeasible returns the first link in active (slice order) that
// conflicts when all of active transmit, or -1 if the slot is
// feasible. Validate uses it to name the offender.
func (p *ProtocolProblem) FirstInfeasible(active []int) int {
	for _, j := range active {
		if !p.received(j, active) {
			return j
		}
	}
	return -1
}

func (p *ProtocolProblem) received(j int, active []int) bool {
	lj := p.Links[j]
	if lj.Length() > p.ConnRadius {
		return false
	}
	for _, i := range active {
		if i == j {
			continue
		}
		if geom.Dist(p.Links[i].Sender, lj.Receiver) <= p.InterfRadius {
			return false
		}
	}
	return true
}
