package sched

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// benchInstance builds a constant-density instance: n links with
// senders in a sqrt(n)-scaled box, as the experiments do, so slot
// populations grow with n the way real instances' do.
func benchInstance(n int) []Link {
	rng := rand.New(rand.NewSource(42))
	side := 3 * float64(intSqrt(n))
	links := make([]Link, n)
	for i := range links {
		s := geom.Pt(rng.Float64()*side, rng.Float64()*side)
		links[i] = Link{
			Sender:   s,
			Receiver: geom.PolarPoint(s, 0.5+rng.Float64(), rng.Float64()*2*3.141592653589793),
		}
	}
	return links
}

func intSqrt(n int) int {
	i := 1
	for i*i < n {
		i++
	}
	return i
}

// BenchmarkSchedFeasible is the bench-gate hot path: one trial
// placement against a populated slot. The incremental sub-benchmarks
// must not allocate — they are on the CI 0-alloc list — while the scan
// sub-benchmark is the O(k²) baseline E20 quantifies the speedup over.
func BenchmarkSchedFeasible(b *testing.B) {
	links := benchInstance(4096)
	p, err := NewSINRProblem(links, 0.0001, 2)
	if err != nil {
		b.Fatal(err)
	}
	p.Alpha = 3
	slot := p.NewSlot()
	var members []int
	for li := range links {
		if slot.Add(li) {
			members = append(members, li)
		}
	}
	// Probe links: a mix that exercises both the fast-reject and the
	// exact passes.
	probes := make([]int, 0, 256)
	for li := 0; li < len(links) && len(probes) < cap(probes); li++ {
		inSlot := false
		for _, m := range members {
			if m == li {
				inSlot = true
				break
			}
		}
		if !inSlot {
			probes = append(probes, li)
		}
	}
	scan := append(append([]int{}, members...), 0)

	b.Run("inc", func(b *testing.B) {
		slot.CanAdd(probes[0]) // warm scratch
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			slot.CanAdd(probes[i%len(probes)])
		}
	})
	b.Run("scan", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			scan[len(scan)-1] = probes[i%len(probes)]
			p.SlotFeasibleScan(scan)
		}
	})
}
