package sched

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// randomInstance builds n links with uniform senders in a side x side
// box and receivers at distance [0.5, 1.5) in a random direction —
// the same family the experiments use.
func randomInstance(rng *rand.Rand, n int, side float64) []Link {
	links := make([]Link, n)
	for i := range links {
		s := geom.Pt(rng.Float64()*side, rng.Float64()*side)
		links[i] = Link{
			Sender:   s,
			Receiver: geom.PolarPoint(s, 0.5+rng.Float64(), rng.Float64()*2*3.141592653589793),
			Power:    0.5 + rng.Float64(),
		}
	}
	return links
}

// problems returns one SINR and one protocol instance over links, both
// implementing Incremental + LinkSet.
func problems(t *testing.T, links []Link) []Incremental {
	t.Helper()
	sp, err := NewSINRProblem(links, 0.001, 2)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := NewProtocolProblem(links, 1.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	return []Incremental{sp, pp}
}

// scanOracle exposes the naive all-pairs path of a problem.
type scanOracle interface {
	Feasibility
	SlotFeasibleScan(active []int) bool
}

// TestSlotEquivalence pins the tentpole invariant: across randomized
// add/remove sequences, the incremental slot engine, the one-shot
// incremental SlotFeasible, the naive SlotFeasibleScan, and a
// from-scratch rebuild of the same member set all agree on every
// membership answer.
func TestSlotEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 8; trial++ {
		links := randomInstance(rng, 48, 25)
		for _, p := range problems(t, links) {
			sc := p.(scanOracle)
			slot := p.NewSlot()
			var members []int
			inSlot := make([]bool, len(links))
			for step := 0; step < 300; step++ {
				li := rng.Intn(len(links))
				if inSlot[li] && rng.Intn(3) == 0 {
					if !slot.Remove(li) {
						t.Fatalf("trial %d step %d: Remove(%d) of a member returned false", trial, step, li)
					}
					inSlot[li] = false
					for k, m := range members {
						if m == li {
							members = append(members[:k], members[k+1:]...)
							break
						}
					}
				} else {
					// Oracle answer: does members+li pass the naive scan?
					trialSet := append(append([]int{}, members...), li)
					want := !inSlot[li] && sc.SlotFeasibleScan(trialSet)
					if got := slot.CanAdd(li); got != want {
						t.Fatalf("trial %d step %d: CanAdd(%d) = %v, scan says %v (members %v)",
							trial, step, li, got, want, members)
					}
					if got := slot.Add(li); got != want {
						t.Fatalf("trial %d step %d: Add(%d) = %v, want %v", trial, step, li, got, want)
					}
					if want {
						members = append(members, li)
						inSlot[li] = true
					}
				}
				if slot.Len() != len(members) {
					t.Fatalf("trial %d step %d: Len = %d, want %d", trial, step, slot.Len(), len(members))
				}
				// The current member set must agree across all four paths.
				got := slot.Links(nil)
				if !p.SlotFeasible(got) || !sc.SlotFeasibleScan(got) {
					t.Fatalf("trial %d step %d: member set %v reported infeasible", trial, step, got)
				}
				fresh := p.NewSlot()
				for _, m := range got {
					if !fresh.Add(m) {
						t.Fatalf("trial %d step %d: from-scratch rebuild rejects member %d of %v",
							trial, step, m, got)
					}
				}
			}
		}
	}
}

// TestSlotFeasibleMatchesScanOnRandomSets pins the one-shot paths on
// arbitrary (not incrementally grown) sets, where feasible and
// infeasible answers both occur.
func TestSlotFeasibleMatchesScanOnRandomSets(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	links := randomInstance(rng, 64, 20)
	for _, p := range problems(t, links) {
		sc := p.(scanOracle)
		for trial := 0; trial < 500; trial++ {
			k := 1 + rng.Intn(12)
			set := rng.Perm(len(links))[:k]
			if got, want := p.SlotFeasible(set), sc.SlotFeasibleScan(set); got != want {
				t.Fatalf("%T: SlotFeasible(%v) = %v, scan says %v", p, set, got, want)
			}
		}
	}
}

// TestSlotMalformedSets: the incremental paths report infeasible on
// out-of-range and duplicate entries instead of panicking.
func TestSlotMalformedSets(t *testing.T) {
	links := []Link{mkLink(0, 0, 1, 0), mkLink(50, 0, 51, 0)}
	for _, p := range problems(t, links) {
		if p.SlotFeasible([]int{0, 0}) {
			t.Errorf("%T: duplicate entries should be infeasible", p)
		}
		if p.SlotFeasible([]int{-1}) || p.SlotFeasible([]int{7}) {
			t.Errorf("%T: out-of-range entries should be infeasible", p)
		}
		slot := p.NewSlot()
		if slot.Add(-1) || slot.Add(7) {
			t.Errorf("%T: slot accepted an out-of-range link", p)
		}
		if slot.Remove(0) {
			t.Errorf("%T: Remove of a non-member returned true", p)
		}
	}
}

// TestSchedulersValidateUnderBothModels: every scheduler's output is a
// complete, feasible schedule under both SINR and protocol
// feasibility, and validates against the scan oracle too (so the
// schedulers cannot lean on an incremental-only artifact).
func TestSchedulersValidateUnderBothModels(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 4; trial++ {
		links := randomInstance(rng, 60, 22)
		for _, p := range problems(t, links) {
			for _, kind := range Kinds() {
				s, err := BuildSchedule(kind, p, nil)
				if err != nil {
					t.Fatalf("%T/%v: %v", p, kind, err)
				}
				if err := s.Validate(p); err != nil {
					t.Fatalf("%T/%v: %v", p, kind, err)
				}
				if s.NumLinks() != len(links) {
					t.Fatalf("%T/%v: scheduled %d of %d links", p, kind, s.NumLinks(), len(links))
				}
				for si, slot := range s.Slots {
					if !p.(scanOracle).SlotFeasibleScan(slot) {
						t.Fatalf("%T/%v: slot %d fails the scan oracle", p, kind, si)
					}
				}
			}
		}
	}
}

// TestImproveAndRepair: Improve never lengthens a schedule and keeps
// it valid; Repair reconstructs a valid schedule from a corrupted one
// and reports what it did.
func TestImproveAndRepair(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	links := randomInstance(rng, 50, 20)
	sp, err := NewSINRProblem(links, 0.001, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Deliberately bad starting point: longest links first.
	s, err := Greedy(sp, ByLength(links, false))
	if err != nil {
		t.Fatal(err)
	}
	before := s.NumSlots()
	moves, err := Improve(sp, s, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumSlots() > before {
		t.Fatalf("Improve lengthened the schedule: %d -> %d", before, s.NumSlots())
	}
	if err := s.Validate(sp); err != nil {
		t.Fatalf("after Improve (%d moves): %v", moves, err)
	}

	// Corrupt: drop one link, duplicate another, add an out-of-range id.
	bad := &Schedule{Slots: make([][]int, len(s.Slots))}
	for i, slot := range s.Slots {
		bad.Slots[i] = append([]int{}, slot...)
	}
	bad.Slots[0] = bad.Slots[0][1:]
	bad.Slots[len(bad.Slots)-1] = append(bad.Slots[len(bad.Slots)-1], bad.Slots[len(bad.Slots)-1][0], 9999)
	repaired, stats, err := Repair(sp, bad, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := repaired.Validate(sp); err != nil {
		t.Fatalf("repaired schedule invalid: %v (stats %+v)", err, stats)
	}
	if stats.Dropped != 2 {
		t.Errorf("Dropped = %d, want 2 (one duplicate, one out of range)", stats.Dropped)
	}
	if stats.Placed == 0 {
		t.Error("Repair placed nothing despite a dropped link")
	}

	// Repair of an already-valid schedule keeps everything in place.
	again, stats2, err := Repair(sp, repaired, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Kept != len(links) || stats2.Displaced != 0 || stats2.Dropped != 0 || stats2.Placed != 0 {
		t.Errorf("no-op repair stats = %+v", stats2)
	}
	if err := again.Validate(sp); err != nil {
		t.Fatal(err)
	}
}

// TestDeriveLinksDeterminism: links are a pure function of station
// geometry — permuting or subsetting stations leaves each surviving
// station's link bit-identical, which is what lets the serve layer and
// its clients agree on link sets across churn deltas.
func TestDeriveLinksDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	stations := make([]geom.Point, 40)
	powers := make([]float64, 40)
	for i := range stations {
		stations[i] = geom.Pt(rng.Float64()*30, rng.Float64()*30)
		powers[i] = 1 + rng.Float64()
	}
	a := DeriveLinks(stations, powers, 1)
	b := DeriveLinks(stations, powers, 1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("link %d not reproducible: %+v vs %+v", i, a[i], b[i])
		}
		if l := a[i].Length(); l < 0.5 || l >= 1.5 {
			t.Fatalf("link %d length %v outside [0.5, 1.5)", i, l)
		}
	}
	// Drop half the stations: survivors keep their exact links.
	sub := DeriveLinks(stations[:20], powers[:20], 1)
	for i := range sub {
		if sub[i] != a[i] {
			t.Fatalf("station %d link changed after subsetting: %+v vs %+v", i, sub[i], a[i])
		}
	}
	// Scale stretches lengths proportionally.
	scaled := DeriveLinks(stations, powers, 2)
	for i := range scaled {
		if l := scaled[i].Length(); l < 1 || l >= 3 {
			t.Fatalf("scaled link %d length %v outside [1, 3)", i, l)
		}
	}
}
