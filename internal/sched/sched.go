package sched

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
)

// Link is one sender-receiver pair to be scheduled.
type Link struct {
	Sender   geom.Point
	Receiver geom.Point
	Power    float64 // transmission power; <= 0 means 1
}

// Length returns the sender-receiver distance.
func (l Link) Length() float64 { return geom.Dist(l.Sender, l.Receiver) }

func (l Link) power() float64 {
	if l.Power <= 0 {
		return 1
	}
	return l.Power
}

// Feasibility decides whether a set of links can share a time slot.
type Feasibility interface {
	// NumLinks returns the instance size.
	NumLinks() int
	// SlotFeasible reports whether every link in active (indices into
	// the instance) is successfully received when all of them transmit
	// concurrently. The slice is treated as read-only. For well-formed
	// sets (in-range, no duplicates) this package's implementations
	// agree exactly with their naive SlotFeasibleScan oracles; a
	// malformed set reports infeasible instead of panicking.
	SlotFeasible(active []int) bool
}

// Slot is a time slot under incremental construction. Implementations
// maintain per-receiver feasibility state so that a trial placement
// costs O(active) — often O(log n) after the nearest-interferer
// candidate filter — instead of the O(active²) full recheck a plain
// SlotFeasible call pays.
type Slot interface {
	// CanAdd reports whether link could join the slot without breaking
	// itself or any member. Out-of-range and already-present links
	// report false.
	CanAdd(link int) bool
	// Add is CanAdd plus commit, reporting whether the link joined.
	Add(link int) bool
	// Remove takes link out of the slot, reporting whether it was a
	// member. The remaining members stay feasible: interference only
	// shrinks when a transmitter leaves.
	Remove(link int) bool
	// Len returns the member count.
	Len() int
	// Links appends the members in insertion order to dst.
	Links(dst []int) []int
}

// Incremental is a feasibility oracle that can mint incremental slot
// engines. SINRProblem and ProtocolProblem both implement it; the
// schedulers fall back to trial SlotFeasible calls (trialSlot) for
// foreign Feasibility implementations.
type Incremental interface {
	Feasibility
	NewSlot() Slot
}

// LinkSet exposes the underlying links of a feasibility instance —
// what the length-aware schedulers (LengthClasses, Repair's
// shortest-first placement) need beyond the yes/no oracle.
type LinkSet interface {
	Feasibility
	Link(i int) Link
}

// diagnoser is the optional hook Validate uses to name the offending
// link inside an infeasible slot.
type diagnoser interface {
	FirstInfeasible(active []int) int
}

// Schedule assigns each link to one time slot.
type Schedule struct {
	// Slots holds link indices per slot, in assignment order.
	Slots [][]int
}

// NumSlots returns the schedule length.
func (s *Schedule) NumSlots() int { return len(s.Slots) }

// NumLinks returns the number of scheduled links.
func (s *Schedule) NumLinks() int {
	total := 0
	for _, slot := range s.Slots {
		total += len(slot)
	}
	return total
}

// Validate re-checks every slot against the feasibility oracle and
// confirms each link appears exactly once. Errors name the offending
// slot and link: debugging a bad schedule starts from "which slot,
// which link", not from a bare boolean.
func (s *Schedule) Validate(f Feasibility) error {
	n := f.NumLinks()
	slotOf := make([]int, n)
	for i := range slotOf {
		slotOf[i] = -1
	}
	scheduled := 0
	for si, slot := range s.Slots {
		for _, li := range slot {
			if li < 0 || li >= n {
				return fmt.Errorf("sched: slot %d holds link %d, outside [0, %d)", si, li, n)
			}
			if prev := slotOf[li]; prev >= 0 {
				return fmt.Errorf("sched: link %d scheduled twice (slots %d and %d)", li, prev, si)
			}
			slotOf[li] = si
			scheduled++
		}
		if !f.SlotFeasible(slot) {
			if d, ok := f.(diagnoser); ok {
				if li := d.FirstInfeasible(slot); li >= 0 {
					return fmt.Errorf("sched: slot %d infeasible: link %d is not received", si, li)
				}
			}
			return fmt.Errorf("sched: slot %d infeasible", si)
		}
	}
	if scheduled != n {
		for li, si := range slotOf {
			if si < 0 {
				return fmt.Errorf("sched: %d of %d links scheduled (link %d missing)", scheduled, n, li)
			}
		}
	}
	return nil
}

// IdentityOrder returns 0..n-1.
func IdentityOrder(n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	return order
}

// ByLength returns link indices sorted by link length; ascending
// schedules short links first (they tolerate interference best),
// descending the reverse. Exact length ties break toward the lowest
// link index — the same convention kdtree.Nearest uses for distance
// ties — so the order is a deterministic function of the links alone.
func ByLength(links []Link, ascending bool) []int {
	lengths := make([]float64, len(links))
	for i, l := range links {
		lengths[i] = l.Length()
	}
	order := IdentityOrder(len(links))
	sort.Slice(order, func(a, b int) bool {
		la, lb := lengths[order[a]], lengths[order[b]]
		if la != lb {
			if ascending {
				return la < lb
			}
			return la > lb
		}
		return order[a] < order[b]
	})
	return order
}

// DeriveLinks derives one outgoing link per station, deterministically
// from station geometry alone: station i sends to a receiver at
// distance scale*[0.5, 1.5) in a direction both hashed from the
// station's coordinates. Because a station's link depends only on its
// own position and power, any two parties holding the same station set
// derive bit-identical links — the serve layer schedules over derived
// links and clients re-derive them to verify, and after a churn delta
// every surviving station keeps exactly the link it had. scale <= 0
// means 1.
func DeriveLinks(stations []geom.Point, powers []float64, scale float64) []Link {
	if scale <= 0 {
		scale = 1
	}
	links := make([]Link, len(stations))
	for i, s := range stations {
		h := mix64(math.Float64bits(s.X) ^ mix64(math.Float64bits(s.Y)))
		// Two independent 32-bit lanes: direction and length factor.
		theta := 2 * math.Pi * float64(uint32(h)) / (1 << 32)
		r := scale * (0.5 + float64(uint32(h>>32))/(1<<32))
		var p float64
		if i < len(powers) {
			p = powers[i]
		}
		links[i] = Link{Sender: s, Receiver: geom.PolarPoint(s, r, theta), Power: p}
	}
	return links
}

// mix64 is the splitmix64 finalizer — a cheap, well-distributed bit
// mixer so nearby coordinates still get independent link directions.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// trialSlot adapts a plain Feasibility to the Slot interface by
// re-running the full oracle per trial — the compatibility path for
// foreign implementations, and the reference engine the property
// tests pit the incremental ones against.
type trialSlot struct {
	f      Feasibility
	active []int
}

func newSlotFor(f Feasibility) Slot {
	if inc, ok := f.(Incremental); ok {
		return inc.NewSlot()
	}
	return &trialSlot{f: f}
}

func (t *trialSlot) CanAdd(link int) bool {
	if link < 0 || link >= t.f.NumLinks() {
		return false
	}
	for _, li := range t.active {
		if li == link {
			return false
		}
	}
	t.active = append(t.active, link)
	ok := t.f.SlotFeasible(t.active)
	t.active = t.active[:len(t.active)-1]
	return ok
}

func (t *trialSlot) Add(link int) bool {
	if !t.CanAdd(link) {
		return false
	}
	t.active = append(t.active, link)
	return true
}

func (t *trialSlot) Remove(link int) bool {
	for k, li := range t.active {
		if li == link {
			t.active = append(t.active[:k], t.active[k+1:]...)
			return true
		}
	}
	return false
}

func (t *trialSlot) Len() int { return len(t.active) }

func (t *trialSlot) Links(dst []int) []int { return append(dst, t.active...) }
