package sched

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
)

// Link is one sender-receiver pair to be scheduled.
type Link struct {
	Sender   geom.Point
	Receiver geom.Point
	Power    float64 // transmission power; <= 0 means 1
}

// Length returns the sender-receiver distance.
func (l Link) Length() float64 { return geom.Dist(l.Sender, l.Receiver) }

func (l Link) power() float64 {
	if l.Power <= 0 {
		return 1
	}
	return l.Power
}

// Feasibility decides whether a set of links can share a time slot.
type Feasibility interface {
	// NumLinks returns the instance size.
	NumLinks() int
	// SlotFeasible reports whether every link in active (indices into
	// the instance) is successfully received when all of them transmit
	// concurrently.
	SlotFeasible(active []int) bool
}

// SINRProblem checks slot feasibility under the physical model: link
// j succeeds iff its receiver's SINR from its own sender, against all
// other active senders plus noise, reaches Beta.
type SINRProblem struct {
	Links []Link
	Noise float64
	Beta  float64
	Alpha float64 // <= 0 means 2
}

// NewSINRProblem validates and returns a SINR scheduling instance.
func NewSINRProblem(links []Link, noise, beta float64) (*SINRProblem, error) {
	if len(links) == 0 {
		return nil, errors.New("sched: no links")
	}
	if noise < 0 || beta <= 0 {
		return nil, fmt.Errorf("sched: invalid noise %v or beta %v", noise, beta)
	}
	for i, l := range links {
		if geom.Dist2(l.Sender, l.Receiver) == 0 {
			return nil, fmt.Errorf("sched: link %d has coincident endpoints", i)
		}
	}
	return &SINRProblem{Links: links, Noise: noise, Beta: beta, Alpha: 2}, nil
}

// NumLinks implements Feasibility.
func (p *SINRProblem) NumLinks() int { return len(p.Links) }

func (p *SINRProblem) alpha() float64 {
	if p.Alpha <= 0 {
		return 2
	}
	return p.Alpha
}

// energy returns psi * dist(a, b)^-alpha (infinite at distance 0).
func (p *SINRProblem) energy(psi float64, a, b geom.Point) float64 {
	d2 := geom.Dist2(a, b)
	if d2 == 0 {
		return math.Inf(1)
	}
	if p.alpha() == 2 {
		return psi / d2
	}
	return psi * math.Pow(d2, -p.alpha()/2)
}

// SlotFeasible implements Feasibility under the SINR rule.
func (p *SINRProblem) SlotFeasible(active []int) bool {
	for _, j := range active {
		lj := p.Links[j]
		signal := p.energy(lj.power(), lj.Sender, lj.Receiver)
		interference := 0.0
		for _, i := range active {
			if i == j {
				continue
			}
			li := p.Links[i]
			e := p.energy(li.power(), li.Sender, lj.Receiver)
			if math.IsInf(e, 1) {
				return false
			}
			interference += e
		}
		if signal < p.Beta*(interference+p.Noise) {
			return false
		}
	}
	return true
}

// ProtocolProblem checks slot feasibility under the UDG/protocol
// model: link j succeeds iff its receiver is within ConnRadius of its
// sender and no other active sender is within InterfRadius of the
// receiver.
type ProtocolProblem struct {
	Links        []Link
	ConnRadius   float64
	InterfRadius float64
}

// NewProtocolProblem validates and returns a protocol-model instance.
// interfRadius defaults to connRadius when zero.
func NewProtocolProblem(links []Link, connRadius, interfRadius float64) (*ProtocolProblem, error) {
	if len(links) == 0 {
		return nil, errors.New("sched: no links")
	}
	if connRadius <= 0 {
		return nil, fmt.Errorf("sched: invalid connectivity radius %v", connRadius)
	}
	if interfRadius == 0 {
		interfRadius = connRadius
	}
	if interfRadius < connRadius {
		return nil, fmt.Errorf("sched: interference radius %v below connectivity radius %v",
			interfRadius, connRadius)
	}
	for i, l := range links {
		if l.Length() > connRadius {
			return nil, fmt.Errorf("sched: link %d longer (%v) than connectivity radius %v",
				i, l.Length(), connRadius)
		}
	}
	return &ProtocolProblem{Links: links, ConnRadius: connRadius, InterfRadius: interfRadius}, nil
}

// NumLinks implements Feasibility.
func (p *ProtocolProblem) NumLinks() int { return len(p.Links) }

// SlotFeasible implements Feasibility under the protocol rule.
func (p *ProtocolProblem) SlotFeasible(active []int) bool {
	for _, j := range active {
		lj := p.Links[j]
		if lj.Length() > p.ConnRadius {
			return false
		}
		for _, i := range active {
			if i == j {
				continue
			}
			if geom.Dist(p.Links[i].Sender, lj.Receiver) <= p.InterfRadius {
				return false
			}
		}
	}
	return true
}

// Schedule assigns each link to one time slot.
type Schedule struct {
	// Slots holds link indices per slot, in assignment order.
	Slots [][]int
}

// NumSlots returns the schedule length.
func (s *Schedule) NumSlots() int { return len(s.Slots) }

// NumLinks returns the number of scheduled links.
func (s *Schedule) NumLinks() int {
	total := 0
	for _, slot := range s.Slots {
		total += len(slot)
	}
	return total
}

// Validate re-checks every slot against the feasibility oracle and
// confirms each link appears exactly once.
func (s *Schedule) Validate(f Feasibility) error {
	seen := make(map[int]bool, f.NumLinks())
	for si, slot := range s.Slots {
		if !f.SlotFeasible(slot) {
			return fmt.Errorf("sched: slot %d infeasible", si)
		}
		for _, li := range slot {
			if seen[li] {
				return fmt.Errorf("sched: link %d scheduled twice", li)
			}
			seen[li] = true
		}
	}
	if len(seen) != f.NumLinks() {
		return fmt.Errorf("sched: %d of %d links scheduled", len(seen), f.NumLinks())
	}
	return nil
}

// Greedy builds a schedule by first-fit: links are processed in the
// given order and placed into the first slot that stays feasible with
// them added; a fresh slot is opened otherwise. A link that is
// infeasible even alone yields an error. order == nil means identity.
func Greedy(f Feasibility, order []int) (*Schedule, error) {
	n := f.NumLinks()
	if order == nil {
		order = IdentityOrder(n)
	}
	if len(order) != n {
		return nil, fmt.Errorf("sched: order has %d entries for %d links", len(order), n)
	}
	s := &Schedule{}
	scratch := make([]int, 0, n)
	for _, li := range order {
		if li < 0 || li >= n {
			return nil, fmt.Errorf("sched: order entry %d out of range", li)
		}
		placed := false
		for si := range s.Slots {
			scratch = append(scratch[:0], s.Slots[si]...)
			scratch = append(scratch, li)
			if f.SlotFeasible(scratch) {
				s.Slots[si] = append(s.Slots[si], li)
				placed = true
				break
			}
		}
		if placed {
			continue
		}
		if !f.SlotFeasible([]int{li}) {
			return nil, fmt.Errorf("sched: link %d infeasible even alone", li)
		}
		s.Slots = append(s.Slots, []int{li})
	}
	return s, nil
}

// IdentityOrder returns 0..n-1.
func IdentityOrder(n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	return order
}

// ByLength returns link indices sorted by link length; ascending
// schedules short links first (they tolerate interference best),
// descending the reverse.
func ByLength(links []Link, ascending bool) []int {
	order := IdentityOrder(len(links))
	sort.SliceStable(order, func(a, b int) bool {
		la, lb := links[order[a]].Length(), links[order[b]].Length()
		if ascending {
			return la < lb
		}
		return la > lb
	})
	return order
}
