package shardindex

import "math"

// Box is a closed axis-aligned rectangle. A Box with MaxX < MinX or
// MaxY < MinY is treated as empty: it is indexed nowhere and contains
// no point.
type Box struct {
	MinX, MinY, MaxX, MaxY float64
}

// Contains reports whether the closed box contains (x, y).
func (b Box) Contains(x, y float64) bool {
	return x >= b.MinX && x <= b.MaxX && y >= b.MinY && y <= b.MaxY
}

// empty reports whether the box holds no point (or has a non-finite
// coordinate, which the grid arithmetic cannot place).
func (b Box) empty() bool {
	if b.MaxX < b.MinX || b.MaxY < b.MinY {
		return true
	}
	for _, v := range [4]float64{b.MinX, b.MinY, b.MaxX, b.MaxY} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}

// maxCellsPerBox caps the grid at O(n) cells: a skewed box set (one
// giant box over thousands of tiny ones) would otherwise explode the
// cell count when the pitch follows the small boxes.
const maxCellsPerBox = 16

// minCells floors the grid so tiny box sets still get enough cells to
// separate disjoint boxes.
const minCells = 64

// Stats describes a built index: grid shape, occupancy and the
// candidate-list size distribution the query path will see.
type Stats struct {
	Boxes      int     // boxes indexed (empty boxes excluded)
	Cols, Rows int     // grid shape
	CellSize   float64 // grid pitch
	Occupied   int     // cells with at least one candidate
	MaxPerCell int     // worst-case candidate list length
	AvgPerCell float64 // mean candidate list length over occupied cells
}

// Index is an immutable uniform-grid index over a fixed box set. The
// zero value is an empty index (no candidates anywhere); use Build.
type Index struct {
	boxes []Box
	// Grid: cell (cx, cy) covers [originX + cx*cell, originX + (cx+1)*cell) x ...
	originX, originY float64
	cell             float64
	cols, rows       int
	// CSR-style storage: the candidate ids of cell k = cx + cy*cols
	// are items[cellStart[k]:cellStart[k+1]].
	cellStart []int32
	items     []int32
	stats     Stats
}

// Build indexes the given boxes. Box i keeps id i (the caller's
// station index); empty boxes are skipped but ids are preserved. The
// input slice is copied, so callers may reuse it.
func Build(boxes []Box) *Index {
	ix := &Index{boxes: append([]Box(nil), boxes...)}

	// Union extent and average box size over the non-empty boxes.
	var (
		minX, minY = math.Inf(1), math.Inf(1)
		maxX, maxY = math.Inf(-1), math.Inf(-1)
		sumDim     float64
		n          int
	)
	for _, b := range ix.boxes {
		if b.empty() {
			continue
		}
		n++
		minX = math.Min(minX, b.MinX)
		minY = math.Min(minY, b.MinY)
		maxX = math.Max(maxX, b.MaxX)
		maxY = math.Max(maxY, b.MaxY)
		sumDim += math.Max(b.MaxX-b.MinX, b.MaxY-b.MinY)
	}
	if n == 0 {
		return ix
	}

	// Pitch at the average box dimension puts a typical box in O(1)
	// cells; degenerate all-point box sets fall back to the union
	// extent (or 1 for a single point).
	cell := sumDim / float64(n)
	if cell <= 0 {
		cell = math.Max(maxX-minX, maxY-minY) / 8
	}
	if cell <= 0 {
		cell = 1
	}
	spanX, spanY := maxX-minX, maxY-minY
	cols := int(spanX/cell) + 1
	rows := int(spanY/cell) + 1
	// Clamp total cells to O(n): coarsen the pitch until the grid fits.
	maxCells := n*maxCellsPerBox + minCells
	for cols*rows > maxCells {
		cell *= 2
		cols = int(spanX/cell) + 1
		rows = int(spanY/cell) + 1
	}
	ix.originX, ix.originY = minX, minY
	ix.cell = cell
	ix.cols, ix.rows = cols, rows

	// Two-pass CSR fill: count per cell, prefix-sum, then place ids.
	counts := make([]int32, cols*rows+1)
	span := func(b Box) (cx0, cy0, cx1, cy1 int) {
		cx0 = ix.clampCol(int((b.MinX - minX) / cell))
		cy0 = ix.clampRow(int((b.MinY - minY) / cell))
		cx1 = ix.clampCol(int((b.MaxX - minX) / cell))
		cy1 = ix.clampRow(int((b.MaxY - minY) / cell))
		return
	}
	for _, b := range ix.boxes {
		if b.empty() {
			continue
		}
		cx0, cy0, cx1, cy1 := span(b)
		for cy := cy0; cy <= cy1; cy++ {
			for cx := cx0; cx <= cx1; cx++ {
				counts[cx+cy*cols+1]++
			}
		}
	}
	for k := 1; k < len(counts); k++ {
		counts[k] += counts[k-1]
	}
	ix.cellStart = counts
	ix.items = make([]int32, counts[len(counts)-1])
	next := make([]int32, cols*rows)
	copy(next, counts[:cols*rows])
	for id, b := range ix.boxes {
		if b.empty() {
			continue
		}
		cx0, cy0, cx1, cy1 := span(b)
		for cy := cy0; cy <= cy1; cy++ {
			for cx := cx0; cx <= cx1; cx++ {
				k := cx + cy*cols
				ix.items[next[k]] = int32(id)
				next[k]++
			}
		}
	}

	ix.stats = Stats{Boxes: n, Cols: cols, Rows: rows, CellSize: cell}
	for k := 0; k < cols*rows; k++ {
		ln := int(ix.cellStart[k+1] - ix.cellStart[k])
		if ln > 0 {
			ix.stats.Occupied++
			if ln > ix.stats.MaxPerCell {
				ix.stats.MaxPerCell = ln
			}
		}
	}
	if ix.stats.Occupied > 0 {
		ix.stats.AvgPerCell = float64(len(ix.items)) / float64(ix.stats.Occupied)
	}
	return ix
}

func (ix *Index) clampCol(c int) int {
	if c < 0 {
		return 0
	}
	if c >= ix.cols {
		return ix.cols - 1
	}
	return c
}

func (ix *Index) clampRow(r int) int {
	if r < 0 {
		return 0
	}
	if r >= ix.rows {
		return ix.rows - 1
	}
	return r
}

// Candidates returns the ids of the boxes overlapping the grid cell
// containing (x, y) — a superset of the boxes containing the point;
// callers filter with Contains. The returned slice is a view into the
// index (do not modify); it is empty for points outside the grid.
//
//sinr:hotpath
func (ix *Index) Candidates(x, y float64) []int32 {
	if len(ix.cellStart) == 0 {
		return nil
	}
	fx := (x - ix.originX) / ix.cell
	fy := (y - ix.originY) / ix.cell
	if fx < 0 || fy < 0 || fx >= float64(ix.cols) || fy >= float64(ix.rows) {
		return nil
	}
	k := int(fx) + int(fy)*ix.cols
	return ix.items[ix.cellStart[k]:ix.cellStart[k+1]]
}

// Contains reports whether box id contains (x, y). It is the exact
// residual test applied to Candidates entries.
func (ix *Index) Contains(id int32, x, y float64) bool {
	return ix.boxes[id].Contains(x, y)
}

// Covers reports whether any indexed box contains (x, y):
// one cell lookup plus exact tests over that cell's candidate list.
// A false answer certifies that no box — hence no reception zone the
// boxes cover — contains the point.
//
//sinr:hotpath
func (ix *Index) Covers(x, y float64) bool {
	for _, id := range ix.Candidates(x, y) {
		if ix.boxes[id].Contains(x, y) {
			return true
		}
	}
	return false
}

// Len returns the number of boxes the index was built over (including
// empty ones, which are indexed nowhere).
func (ix *Index) Len() int { return len(ix.boxes) }

// BoxOf returns box id as passed to Build.
func (ix *Index) BoxOf(id int32) Box { return ix.boxes[id] }

// Stats returns the build-time statistics of the index.
func (ix *Index) Stats() Stats { return ix.stats }
