package shardindex

import "math"

// dynPadFraction is the margin BuildDyn adds around the union extent
// of the initial box set, as a fraction of the larger span. Stations
// arriving near — but outside — the original deployment still fit the
// grid, so a trickle of arrivals stays on the incremental path instead
// of forcing a geometry rebuild per event.
const dynPadFraction = 0.25

// maxDynCellsPerBox caps the dynamic grid at O(n) cells, mirroring
// maxCellsPerBox of the static Index but with headroom left for churn.
const maxDynCellsPerBox = 8

// DynIndex is the incrementally maintainable sibling of Index: a
// uniform grid over id-keyed cover boxes whose cell geometry is fixed
// at build time and whose per-cell candidate lists are updated
// copy-on-write. A DynIndex value is immutable — Update returns a new
// index sharing every untouched cell with its parent — so concurrent
// readers of an old epoch never observe a newer epoch's edits.
//
// Ids are caller-assigned (the dynamic-network stable station slots);
// the boxes slice is indexed by id and may extend past the ids
// currently inserted. Unlike Index, a DynIndex holds only the ids the
// caller inserted: a departed station is removed from its cells, so
// Candidates never returns stale ids.
type DynIndex struct {
	originX, originY float64
	cell             float64
	cols, rows       int
	boxes            []Box     // id-indexed view (shared with the caller)
	cells            [][]int32 // per-cell candidate ids; nil = empty
	n                int       // ids currently inserted
}

// BuildDyn builds a DynIndex over boxes[id] for the ids in live. The
// grid extent is the union of the live boxes padded by dynPadFraction,
// so near-future arrivals fit without a rebuild. It returns nil when
// the live set is empty or any live box is empty or non-finite — an
// unbounded cover box (e.g. a noiseless network's infinite reception
// range) cannot be gridded, and the caller must fall back to answering
// without the fast H- exit.
func BuildDyn(boxes []Box, live []int32) *DynIndex {
	if len(live) == 0 {
		return nil
	}
	var (
		minX, minY = math.Inf(1), math.Inf(1)
		maxX, maxY = math.Inf(-1), math.Inf(-1)
		sumDim     float64
	)
	for _, id := range live {
		b := boxes[id]
		if b.empty() {
			return nil
		}
		minX = math.Min(minX, b.MinX)
		minY = math.Min(minY, b.MinY)
		maxX = math.Max(maxX, b.MaxX)
		maxY = math.Max(maxY, b.MaxY)
		sumDim += math.Max(b.MaxX-b.MinX, b.MaxY-b.MinY)
	}
	pad := dynPadFraction * math.Max(maxX-minX, maxY-minY)
	if pad <= 0 {
		pad = 1
	}
	minX, minY, maxX, maxY = minX-pad, minY-pad, maxX+pad, maxY+pad

	n := len(live)
	cell := sumDim / float64(n)
	if cell <= 0 {
		cell = math.Max(maxX-minX, maxY-minY) / 8
	}
	if cell <= 0 {
		cell = 1
	}
	spanX, spanY := maxX-minX, maxY-minY
	cols := int(spanX/cell) + 1
	rows := int(spanY/cell) + 1
	maxCells := n*maxDynCellsPerBox + minCells
	for cols*rows > maxCells {
		cell *= 2
		cols = int(spanX/cell) + 1
		rows = int(spanY/cell) + 1
	}
	d := &DynIndex{
		originX: minX, originY: minY,
		cell: cell, cols: cols, rows: rows,
		boxes: boxes,
		cells: make([][]int32, cols*rows),
	}
	for _, id := range live {
		if !d.insert(id, nil) {
			// Cannot happen: every live box is inside the padded extent.
			return nil
		}
	}
	d.n = n
	return d
}

// span returns the cell range of b, clamped to the grid, and whether b
// lies entirely inside the grid extent (a box reaching past the extent
// cannot be indexed: points in its overhang would be missed).
func (d *DynIndex) span(b Box) (cx0, cy0, cx1, cy1 int, inside bool) {
	if b.empty() {
		return 0, 0, 0, 0, false
	}
	if b.MinX < d.originX || b.MinY < d.originY ||
		b.MaxX >= d.originX+float64(d.cols)*d.cell ||
		b.MaxY >= d.originY+float64(d.rows)*d.cell {
		return 0, 0, 0, 0, false
	}
	cx0 = int((b.MinX - d.originX) / d.cell)
	cy0 = int((b.MinY - d.originY) / d.cell)
	cx1 = int((b.MaxX - d.originX) / d.cell)
	cy1 = int((b.MaxY - d.originY) / d.cell)
	return cx0, cy0, cx1, cy1, true
}

// insert adds id to every cell its box overlaps, privatizing cells via
// touched. It reports false when the box does not fit the grid.
func (d *DynIndex) insert(id int32, touched map[int]bool) bool {
	cx0, cy0, cx1, cy1, ok := d.span(d.boxes[id])
	if !ok {
		return false
	}
	for cy := cy0; cy <= cy1; cy++ {
		for cx := cx0; cx <= cx1; cx++ {
			k := cx + cy*d.cols
			d.privatize(k, touched)
			d.cells[k] = append(d.cells[k], id)
		}
	}
	return true
}

// remove drops id from every cell its box overlaps, privatizing cells
// via touched. The box must be the one id was inserted with.
func (d *DynIndex) remove(id int32, box Box, touched map[int]bool) {
	cx0, cy0, cx1, cy1, ok := d.span(box)
	if !ok {
		return
	}
	for cy := cy0; cy <= cy1; cy++ {
		for cx := cx0; cx <= cx1; cx++ {
			k := cx + cy*d.cols
			d.privatize(k, touched)
			ids := d.cells[k]
			for i, got := range ids {
				if got == id {
					d.cells[k] = append(ids[:i:i], ids[i+1:]...)
					break
				}
			}
		}
	}
}

// privatize gives cell k its own backing slice the first time an
// Update touches it, so the parent index's cell stays intact. A nil
// touched map (BuildDyn, which owns every cell) skips the copy.
func (d *DynIndex) privatize(k int, touched map[int]bool) {
	if touched == nil || touched[k] {
		return
	}
	touched[k] = true
	d.cells[k] = append([]int32(nil), d.cells[k]...)
}

// Update returns a new DynIndex with the removed ids deleted and the
// added ids inserted, sharing every untouched cell with d. boxes is
// the new id-indexed box view (it must agree with d's view on every
// surviving id — a station's box never changes under a stable id);
// removed ids are deleted using d's old view, so their boxes need not
// survive in the new one. cellsTouched counts the privatized cells.
// ok is false when an added box does not fit the fixed grid extent —
// the caller must rebuild the grid geometry (the amortized path);
// d is left unchanged either way.
func (d *DynIndex) Update(boxes []Box, removed, added []int32) (nd *DynIndex, cellsTouched int, ok bool) {
	for _, id := range added {
		if _, _, _, _, fits := d.span(boxes[id]); !fits {
			return nil, 0, false
		}
	}
	nd = &DynIndex{
		originX: d.originX, originY: d.originY,
		cell: d.cell, cols: d.cols, rows: d.rows,
		boxes: boxes,
		cells: append([][]int32(nil), d.cells...),
		n:     d.n - len(removed) + len(added),
	}
	touched := make(map[int]bool, 4*(len(removed)+len(added)))
	for _, id := range removed {
		nd.remove(id, d.boxes[id], touched)
	}
	for _, id := range added {
		nd.insert(id, touched)
	}
	return nd, len(touched), true
}

// Candidates returns the ids whose boxes overlap the grid cell
// containing (x, y) — a superset of the ids whose boxes contain the
// point. The returned slice is a view into the index (do not modify);
// it is nil for points outside the grid extent, where no indexed box
// can contain the point.
//
//sinr:hotpath
func (d *DynIndex) Candidates(x, y float64) []int32 {
	fx := (x - d.originX) / d.cell
	fy := (y - d.originY) / d.cell
	if fx < 0 || fy < 0 || fx >= float64(d.cols) || fy >= float64(d.rows) {
		return nil
	}
	return d.cells[int(fx)+int(fy)*d.cols]
}

// Covers reports whether any inserted box contains (x, y): one cell
// lookup plus exact tests over that cell's candidates, allocation-free.
// A false answer certifies that no box — hence no reception zone the
// boxes cover — contains the point.
//
//sinr:hotpath
func (d *DynIndex) Covers(x, y float64) bool {
	for _, id := range d.Candidates(x, y) {
		if d.boxes[id].Contains(x, y) {
			return true
		}
	}
	return false
}

// Len returns the number of ids currently inserted.
func (d *DynIndex) Len() int { return d.n }

// Cells returns the grid size (cols * rows).
func (d *DynIndex) Cells() int { return d.cols * d.rows }
