// Package shardindex is the sharded spatial index of the query hot
// path: a uniform grid over axis-aligned boxes (one per station's
// reception-zone cover box) that maps a query point to the O(1)-ish
// candidate set of stations whose zones could contain it.
//
// The index answers two questions, both allocation-free:
//
//   - Candidates(x, y): which boxes' grid cell does p fall in? The
//     returned id slice is a view into the index's flat storage — a
//     superset filtered by the caller (or by Covers) with exact box
//     tests.
//   - Covers(x, y): does any box actually contain p? A false answer
//     lets a point-location query return "no reception" without
//     touching the kd-tree or any per-station structure — the common
//     case for query traffic over the mostly-empty plane.
//
// The grid pitch is derived from the average box size and the cell
// count is clamped to O(#boxes), so the index is O(n) memory and O(n)
// build time regardless of how skewed the box geometry is. The index
// is immutable once built and safe for concurrent use; a Locator
// embeds one per build, so hot-swapping locators (internal/serve)
// swaps the index atomically with the rest of the snapshot.
package shardindex
