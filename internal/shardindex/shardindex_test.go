package shardindex

import (
	"math"
	"math/rand"
	"testing"
)

// naiveCovers is the O(n) reference the index must agree with.
func naiveCovers(boxes []Box, x, y float64) bool {
	for _, b := range boxes {
		if !b.empty() && b.Contains(x, y) {
			return true
		}
	}
	return false
}

func TestEmptyIndex(t *testing.T) {
	for _, boxes := range [][]Box{nil, {}, {{MinX: 1, MaxX: 0, MinY: 0, MaxY: 1}}} {
		ix := Build(boxes)
		if ix.Covers(0, 0) {
			t.Errorf("empty index covers a point (boxes %v)", boxes)
		}
		if got := ix.Candidates(0, 0); len(got) != 0 {
			t.Errorf("empty index has candidates %v", got)
		}
		if s := ix.Stats(); s.Boxes != 0 {
			t.Errorf("empty index stats report %d boxes", s.Boxes)
		}
	}
}

func TestSingleBox(t *testing.T) {
	ix := Build([]Box{{MinX: -1, MinY: -2, MaxX: 3, MaxY: 4}})
	cases := []struct {
		x, y float64
		want bool
	}{
		{0, 0, true}, {-1, -2, true}, {3, 4, true}, // corners are closed
		{3.0001, 0, false}, {-1.0001, 0, false}, {0, 4.0001, false},
		{100, 100, false}, {-100, -100, false},
	}
	for _, c := range cases {
		if got := ix.Covers(c.x, c.y); got != c.want {
			t.Errorf("Covers(%g, %g) = %v, want %v", c.x, c.y, got, c.want)
		}
	}
}

func TestCandidatesAreSuperset(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	boxes := make([]Box, 200)
	for i := range boxes {
		cx, cy := rng.Float64()*100-50, rng.Float64()*100-50
		w, h := rng.Float64()*4, rng.Float64()*4
		boxes[i] = Box{MinX: cx - w, MinY: cy - h, MaxX: cx + w, MaxY: cy + h}
	}
	ix := Build(boxes)
	for trial := 0; trial < 5000; trial++ {
		x, y := rng.Float64()*140-70, rng.Float64()*140-70
		inCell := map[int32]bool{}
		for _, id := range ix.Candidates(x, y) {
			inCell[id] = true
		}
		for id, b := range boxes {
			if b.Contains(x, y) && !inCell[int32(id)] {
				t.Fatalf("box %d contains (%g, %g) but is not a candidate", id, x, y)
			}
		}
		if got, want := ix.Covers(x, y), naiveCovers(boxes, x, y); got != want {
			t.Fatalf("Covers(%g, %g) = %v, naive = %v", x, y, got, want)
		}
	}
}

func TestPointBoxes(t *testing.T) {
	// All-degenerate boxes (stations sharing locations produce point
	// cover boxes): pitch must fall back sanely and lookups stay exact.
	boxes := []Box{
		{MinX: 1, MinY: 1, MaxX: 1, MaxY: 1},
		{MinX: 5, MinY: 5, MaxX: 5, MaxY: 5},
	}
	ix := Build(boxes)
	if !ix.Covers(1, 1) || !ix.Covers(5, 5) {
		t.Fatal("point boxes must cover their own location")
	}
	if ix.Covers(3, 3) {
		t.Fatal("midpoint between point boxes must not be covered")
	}
}

func TestSinglePointBox(t *testing.T) {
	ix := Build([]Box{{MinX: 2, MinY: 3, MaxX: 2, MaxY: 3}})
	if !ix.Covers(2, 3) {
		t.Fatal("single point box must cover itself")
	}
	if ix.Covers(2.5, 3) {
		t.Fatal("single point box must not cover other points")
	}
}

func TestSkewedSizesStayBounded(t *testing.T) {
	// One huge box over many tiny ones: the cell-count clamp must keep
	// the grid O(n) while answers stay exact.
	rng := rand.New(rand.NewSource(7))
	boxes := []Box{{MinX: -1e4, MinY: -1e4, MaxX: 1e4, MaxY: 1e4}}
	for i := 0; i < 99; i++ {
		cx, cy := rng.Float64()*10-5, rng.Float64()*10-5
		boxes = append(boxes, Box{MinX: cx, MinY: cy, MaxX: cx + 0.01, MaxY: cy + 0.01})
	}
	ix := Build(boxes)
	s := ix.Stats()
	if s.Cols*s.Rows > len(boxes)*maxCellsPerBox+minCells {
		t.Fatalf("grid has %d cells for %d boxes — clamp failed", s.Cols*s.Rows, len(boxes))
	}
	for trial := 0; trial < 2000; trial++ {
		x, y := rng.Float64()*3e4-1.5e4, rng.Float64()*3e4-1.5e4
		if got, want := ix.Covers(x, y), naiveCovers(boxes, x, y); got != want {
			t.Fatalf("Covers(%g, %g) = %v, naive = %v", x, y, got, want)
		}
	}
}

func TestNonFiniteBoxesSkipped(t *testing.T) {
	boxes := []Box{
		{MinX: math.NaN(), MinY: 0, MaxX: 1, MaxY: 1},
		{MinX: math.Inf(-1), MinY: 0, MaxX: 1, MaxY: 1},
		{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1},
	}
	ix := Build(boxes)
	if s := ix.Stats(); s.Boxes != 1 {
		t.Fatalf("stats count %d boxes, want 1 (non-finite skipped)", s.Boxes)
	}
	if !ix.Covers(0.5, 0.5) {
		t.Fatal("finite box must still be indexed")
	}
}

func TestCandidatesAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	boxes := make([]Box, 64)
	for i := range boxes {
		cx, cy := rng.Float64()*20-10, rng.Float64()*20-10
		boxes[i] = Box{MinX: cx - 1, MinY: cy - 1, MaxX: cx + 1, MaxY: cy + 1}
	}
	ix := Build(boxes)
	pts := make([][2]float64, 256)
	for i := range pts {
		pts[i] = [2]float64{rng.Float64()*24 - 12, rng.Float64()*24 - 12}
	}
	allocs := testing.AllocsPerRun(100, func() {
		for _, p := range pts {
			ix.Covers(p[0], p[1])
		}
	})
	if allocs != 0 {
		t.Fatalf("Covers allocates %.1f times per 256 queries, want 0", allocs)
	}
}

func TestStatsShape(t *testing.T) {
	boxes := []Box{
		{MinX: 0, MinY: 0, MaxX: 2, MaxY: 2},
		{MinX: 10, MinY: 10, MaxX: 12, MaxY: 12},
	}
	ix := Build(boxes)
	s := ix.Stats()
	if s.Boxes != 2 || s.Occupied == 0 || s.MaxPerCell < 1 || s.AvgPerCell < 1 {
		t.Fatalf("implausible stats: %+v", s)
	}
	if ix.Len() != 2 {
		t.Fatalf("Len = %d, want 2", ix.Len())
	}
	if got := ix.BoxOf(1); got != boxes[1] {
		t.Fatalf("BoxOf(1) = %+v, want %+v", got, boxes[1])
	}
}
