package shardindex

import (
	"math"
	"math/rand"
	"testing"
)

// dynBoxAround builds the square cover box of radius r around (x, y).
func dynBoxAround(x, y, r float64) Box {
	return Box{MinX: x - r, MinY: y - r, MaxX: x + r, MaxY: y + r}
}

// bruteCovers is the reference answer: does any live box contain (x,y)?
func bruteCovers(boxes []Box, live []int32, x, y float64) bool {
	for _, id := range live {
		if boxes[id].Contains(x, y) {
			return true
		}
	}
	return false
}

func TestDynIndexBuildMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	boxes := make([]Box, 40)
	live := make([]int32, 0, len(boxes))
	for i := range boxes {
		boxes[i] = dynBoxAround(rng.Float64()*10-5, rng.Float64()*10-5, 0.3+rng.Float64())
		live = append(live, int32(i))
	}
	d := BuildDyn(boxes, live)
	if d == nil {
		t.Fatal("BuildDyn returned nil for finite boxes")
	}
	if d.Len() != len(live) {
		t.Fatalf("Len = %d, want %d", d.Len(), len(live))
	}
	for i := 0; i < 3000; i++ {
		x, y := rng.Float64()*16-8, rng.Float64()*16-8
		if got, want := d.Covers(x, y), bruteCovers(boxes, live, x, y); got != want {
			t.Fatalf("Covers(%g, %g) = %v, want %v", x, y, got, want)
		}
	}
}

func TestDynIndexUpdateMatchesBruteAndIsPersistent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	boxes := make([]Box, 0, 128)
	live := []int32{}
	for i := 0; i < 24; i++ {
		boxes = append(boxes, dynBoxAround(rng.Float64()*8-4, rng.Float64()*8-4, 0.4))
		live = append(live, int32(i))
	}
	d := BuildDyn(boxes, live)
	if d == nil {
		t.Fatal("BuildDyn returned nil")
	}

	type epoch struct {
		d    *DynIndex
		live []int32
	}
	history := []epoch{{d, append([]int32(nil), live...)}}

	for step := 0; step < 30; step++ {
		var removed, added []int32
		if len(live) > 4 && rng.Intn(2) == 0 {
			i := rng.Intn(len(live))
			removed = []int32{live[i]}
			live = append(live[:i:i], live[i+1:]...)
		} else {
			// Arrive well inside the padded extent so the incremental
			// path is taken.
			id := int32(len(boxes))
			boxes = append(boxes, dynBoxAround(rng.Float64()*6-3, rng.Float64()*6-3, 0.4))
			added = []int32{id}
			live = append(live, id)
		}
		nd, touched, ok := d.Update(boxes, removed, added)
		if !ok {
			t.Fatalf("step %d: in-extent update demanded a rebuild", step)
		}
		if touched == 0 {
			t.Fatalf("step %d: update touched no cells", step)
		}
		d = nd
		history = append(history, epoch{d, append([]int32(nil), live...)})
	}

	// Every historical epoch — including ones superseded many updates
	// ago — must still answer from its own box set: the COW must never
	// let a later update leak into an older index.
	for ei, e := range history {
		for i := 0; i < 400; i++ {
			x, y := rng.Float64()*12-6, rng.Float64()*12-6
			if got, want := e.d.Covers(x, y), bruteCovers(boxes, e.live, x, y); got != want {
				t.Fatalf("epoch %d: Covers(%g, %g) = %v, want %v", ei, x, y, got, want)
			}
		}
	}
}

func TestDynIndexOutOfExtentAddRequiresRebuild(t *testing.T) {
	boxes := []Box{dynBoxAround(0, 0, 1), dynBoxAround(2, 2, 1)}
	d := BuildDyn(boxes, []int32{0, 1})
	if d == nil {
		t.Fatal("BuildDyn returned nil")
	}
	boxes = append(boxes, dynBoxAround(100, 100, 1))
	if _, _, ok := d.Update(boxes, nil, []int32{2}); ok {
		t.Fatal("far-outside arrival did not demand a rebuild")
	}
	// The failed update must leave d fully usable.
	if !d.Covers(0, 0) || d.Covers(50, 50) {
		t.Fatal("index damaged by a rejected update")
	}
}

func TestDynIndexNonFiniteBoxDisables(t *testing.T) {
	inf := math.Inf(1)
	boxes := []Box{dynBoxAround(0, 0, 1), {MinX: -inf, MinY: -inf, MaxX: inf, MaxY: inf}}
	if d := BuildDyn(boxes, []int32{0, 1}); d != nil {
		t.Fatal("BuildDyn accepted an unbounded box")
	}
	if d := BuildDyn(nil, nil); d != nil {
		t.Fatal("BuildDyn accepted an empty live set")
	}
}

func TestDynIndexCoversAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	boxes := make([]Box, 64)
	live := make([]int32, len(boxes))
	for i := range boxes {
		boxes[i] = dynBoxAround(rng.Float64()*10, rng.Float64()*10, 0.5)
		live[i] = int32(i)
	}
	d := BuildDyn(boxes, live)
	pts := make([][2]float64, 256)
	for i := range pts {
		pts[i] = [2]float64{rng.Float64() * 12, rng.Float64() * 12}
	}
	allocs := testing.AllocsPerRun(100, func() {
		for _, p := range pts {
			d.Covers(p[0], p[1])
		}
	})
	if allocs != 0 {
		t.Fatalf("Covers allocates: %g allocs per 256-query run", allocs)
	}
}
