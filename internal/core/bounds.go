package core

import (
	"fmt"
	"math"
)

// FatnessBound returns the Theorem 4.2 bound on the fatness parameter
// of a reception zone in a uniform power network:
//
//	phi(s_0, H_0) <= (sqrt(beta) + 1) / (sqrt(beta) - 1) = O(1).
//
// It is defined for beta > 1 only (at beta = 1 a trivial network has
// an unbounded zone and the parameter is undefined).
func FatnessBound(beta float64) (float64, error) {
	if beta <= 1 {
		return 0, ErrNeedBetaGT1
	}
	sq := math.Sqrt(beta)
	return (sq + 1) / (sq - 1), nil
}

// ZoneBounds packages the explicit Theorem 4.1 bounds for one zone:
// DeltaLower <= delta(s_i, H_i) and DeltaUpper >= Delta(s_i, H_i),
// plus the kappa they are computed from.
type ZoneBounds struct {
	Kappa      float64 // min distance from s_i to any other station
	DeltaLower float64 // lower bound on the inscribed radius delta
	DeltaUpper float64 // upper bound on the enclosing radius Delta
}

// FatnessRatio returns the Theorem 4.1 fatness bound
// DeltaUpper / DeltaLower (the O(sqrt(n)) bound the paper improves to
// O(1) in Theorem 4.2).
func (b ZoneBounds) FatnessRatio() float64 {
	if b.DeltaLower == 0 {
		return math.Inf(1)
	}
	return b.DeltaUpper / b.DeltaLower
}

// TheoremBounds computes the explicit Theorem 4.1 bounds for station
// i's reception zone:
//
//	delta(s_i, H_i) >= kappa / (sqrt(beta*(n-1+(N/psi)*kappa^2)) + 1)
//	Delta(s_i, H_i) <= kappa / (sqrt(beta*(1+(N/psi)*kappa^2)) - 1)
//
// The paper states the formulas for psi = 1; for a uniform power
// assignment psi != 1 every SINR value equals that of the psi = 1
// network with noise N/psi (scaling powers cancels everywhere except
// against the noise), so the noise term enters scale-corrected as
// N/psi. It requires a uniform power network with beta > 1, at least
// two stations, and a station location not shared by another station.
func (n *Network) TheoremBounds(i int) (ZoneBounds, error) {
	if !n.uniform {
		return ZoneBounds{}, ErrNeedUniform
	}
	if n.beta <= 1 {
		return ZoneBounds{}, ErrNeedBetaGT1
	}
	if len(n.stations) < 2 {
		return ZoneBounds{}, fmt.Errorf("core: Theorem 4.1 bounds need n >= 2 stations")
	}
	kappa := n.Kappa(i)
	if kappa == 0 {
		return ZoneBounds{}, ErrSharedLocation
	}
	nn := float64(len(n.stations))
	k2 := kappa * kappa
	noise := n.noise / n.powers[i] // uniform, so powers[i] == psi
	lower := kappa / (math.Sqrt(n.beta*(nn-1+noise*k2)) + 1)
	upper := kappa / (math.Sqrt(n.beta*(1+noise*k2)) - 1)
	return ZoneBounds{Kappa: kappa, DeltaLower: lower, DeltaUpper: upper}, nil
}

// ImprovedBounds tightens the Theorem 4.1 bounds using the Section 5.2
// argument: probe the actual boundary distance r along one direction
// (an O(log(Delta~/delta~)) binary search), then use Theorem 4.2's
// constant fatness bound phi_beta to squeeze
//
//	delta >= r / phi_beta   and   Delta <= r * phi_beta,
//
// both Theta(r). The returned bounds are never looser than the
// Theorem 4.1 ones.
func (n *Network) ImprovedBounds(i int) (ZoneBounds, error) {
	raw, err := n.TheoremBounds(i)
	if err != nil {
		return ZoneBounds{}, err
	}
	z, err := n.Zone(i)
	if err != nil {
		return ZoneBounds{}, err
	}
	// Probe "north of s_i" as the paper suggests; the tolerance needs
	// only to be well below delta~, since the fatness bound absorbs
	// constant factors.
	r, err := z.RadialBoundary(math.Pi/2, raw.DeltaLower/64)
	if err != nil {
		return ZoneBounds{}, err
	}
	phi, err := FatnessBound(n.beta)
	if err != nil {
		return ZoneBounds{}, err
	}
	out := ZoneBounds{
		Kappa:      raw.Kappa,
		DeltaLower: math.Max(raw.DeltaLower, r/phi),
		DeltaUpper: math.Min(raw.DeltaUpper, r*phi),
	}
	return out, nil
}

// SampledBounds computes near-tight certified bounds on delta and
// Delta from m radial boundary probes, exploiting Theorem 1: in the
// uniform-power, alpha = 2, beta > 1 regime the zone is convex, so
//
//   - the zone contains the convex hull of the m sampled boundary
//     points, whose inscribed circle about s_i has radius at least
//     rMin * cos(pi/m) — a certified lower bound on delta; and
//   - the farthest zone point q sits within angular distance pi/m of
//     some probe, and the hull of q with the inscribed ball B(s_i,
//     delta) forces that probe's radius to at least
//     Delta / (1 + (Delta/delta) * sin(pi/m)), so
//     Delta <= rMax * (1 + phi_beta * pi / m) — a certified upper
//     bound using the Theorem 4.2 fatness constant phi_beta.
//
// The sample count is raised to at least 32 * phi_beta so the cone
// correction stays near 1. Results are clamped against the Theorem 4.1
// bounds (which remain valid regardless of sampling). These bounds
// track the zone's true fatness (typically Delta/delta < 2) instead of
// the worst-case phi_beta, which is what keeps the Theorem 3 grid pitch
// — and hence |T?| — small.
func (n *Network) SampledBounds(i, samples int) (ZoneBounds, error) {
	raw, err := n.TheoremBounds(i)
	if err != nil {
		return ZoneBounds{}, err
	}
	phi, err := FatnessBound(n.beta)
	if err != nil {
		return ZoneBounds{}, err
	}
	m := samples
	if min := int(32*phi) + 1; m < min {
		m = min
	}
	z, err := n.Zone(i)
	if err != nil {
		return ZoneBounds{}, err
	}
	rMin, rMax, _, _, err := z.MinMaxRadius(m, raw.DeltaLower/4096)
	if err != nil {
		return ZoneBounds{}, err
	}
	lower := rMin * math.Cos(math.Pi/float64(m))
	upper := rMax * (1 + phi*math.Pi/float64(m))
	return ZoneBounds{
		Kappa:      raw.Kappa,
		DeltaLower: math.Max(raw.DeltaLower, lower),
		DeltaUpper: math.Min(raw.DeltaUpper, upper),
	}, nil
}
