package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestFatnessBound(t *testing.T) {
	tests := []struct {
		beta float64
		want float64
	}{
		{4, 3}, // (2+1)/(2-1)
		{9, 2}, // (3+1)/(3-1)
		{6, (math.Sqrt(6) + 1) / (math.Sqrt(6) - 1)},
	}
	for _, tc := range tests {
		got, err := FatnessBound(tc.beta)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("FatnessBound(%v) = %v, want %v", tc.beta, got, tc.want)
		}
	}
	if _, err := FatnessBound(1); err != ErrNeedBetaGT1 {
		t.Errorf("beta = 1 should fail, got %v", err)
	}
	if _, err := FatnessBound(0.5); err == nil {
		t.Error("beta < 1 should fail")
	}
}

func TestTheoremBoundsTwoStationExact(t *testing.T) {
	// For two stations, kappa = 1, N = 0, beta = 4:
	// delta >= 1/(sqrt(4*1)+1) = 1/3 and Delta <= 1/(sqrt(4)-1) = 1.
	// Both are tight for this network (the Apollonius disk).
	n := twoStation(t)
	b, err := n.TheoremBounds(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b.Kappa-1) > 1e-12 {
		t.Errorf("kappa = %v", b.Kappa)
	}
	if math.Abs(b.DeltaLower-1.0/3) > 1e-12 {
		t.Errorf("DeltaLower = %v, want 1/3", b.DeltaLower)
	}
	if math.Abs(b.DeltaUpper-1) > 1e-12 {
		t.Errorf("DeltaUpper = %v, want 1", b.DeltaUpper)
	}
	if math.Abs(b.FatnessRatio()-3) > 1e-12 {
		t.Errorf("FatnessRatio = %v, want 3", b.FatnessRatio())
	}
}

func TestTheoremBoundsValidation(t *testing.T) {
	if _, err := twoStation(t).TheoremBounds(0); err != nil {
		t.Fatal(err)
	}
	// beta <= 1 rejected.
	nb := mustNet(t, []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0)}, 0, 1)
	if _, err := nb.TheoremBounds(0); err != ErrNeedBetaGT1 {
		t.Errorf("err = %v", err)
	}
	// single station rejected.
	ns := mustNet(t, []geom.Point{geom.Pt(0, 0)}, 0, 2)
	if _, err := ns.TheoremBounds(0); err == nil {
		t.Error("single station must fail")
	}
	// shared location rejected.
	nd := mustNet(t, []geom.Point{geom.Pt(0, 0), geom.Pt(0, 0)}, 0, 2)
	if _, err := nd.TheoremBounds(0); err != ErrSharedLocation {
		t.Errorf("err = %v", err)
	}
	// non-uniform rejected.
	nu, err := NewNetwork([]geom.Point{geom.Pt(0, 0), geom.Pt(1, 0)}, 0, 2,
		WithPowers([]float64{1, 2}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nu.TheoremBounds(0); err != ErrNeedUniform {
		t.Errorf("err = %v", err)
	}
}

// TestTheoremBoundsSandwichMeasured verifies Theorem 4.1 empirically:
// the measured extreme radii of random networks always fall inside the
// theorem's sandwich.
func TestTheoremBoundsSandwichMeasured(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 15; trial++ {
		nSt := 2 + rng.Intn(8)
		pts := make([]geom.Point, nSt)
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*10-5, rng.Float64()*10-5)
		}
		noise := rng.Float64() * 0.05
		beta := 1.5 + rng.Float64()*6
		n := mustNet(t, pts, noise, beta)
		if n.SharesLocation(0) {
			continue
		}
		b, err := n.TheoremBounds(0)
		if err != nil {
			t.Fatal(err)
		}
		z, _ := n.Zone(0)
		rMin, rMax, _, _, err := z.MinMaxRadius(128, b.DeltaLower/1e6)
		if err != nil {
			t.Fatal(err)
		}
		// Sampling can only overestimate delta and underestimate Delta,
		// so these comparisons are safe up to tolerance.
		if rMin < b.DeltaLower*(1-1e-6) {
			t.Errorf("trial %d: measured delta %v below bound %v", trial, rMin, b.DeltaLower)
		}
		if rMax > b.DeltaUpper*(1+1e-6) {
			t.Errorf("trial %d: measured Delta %v above bound %v", trial, rMax, b.DeltaUpper)
		}
	}
}

// TestFatnessWithinTheorem42 verifies Theorem 4.2: measured fatness is
// bounded by (sqrt(beta)+1)/(sqrt(beta)-1) on random networks.
func TestFatnessWithinTheorem42(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 15; trial++ {
		nSt := 2 + rng.Intn(8)
		pts := make([]geom.Point, nSt)
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*10-5, rng.Float64()*10-5)
		}
		beta := 1.5 + rng.Float64()*6
		n := mustNet(t, pts, rng.Float64()*0.05, beta)
		if n.SharesLocation(0) {
			continue
		}
		z, _ := n.Zone(0)
		phi, err := z.MeasuredFatness(128, 1e-8)
		if err != nil {
			t.Fatal(err)
		}
		bound, err := FatnessBound(beta)
		if err != nil {
			t.Fatal(err)
		}
		if phi > bound*(1+1e-6) {
			t.Errorf("trial %d: fatness %v exceeds Theorem 4.2 bound %v (beta=%v)",
				trial, phi, bound, beta)
		}
	}
}

func TestImprovedBoundsTighterAndValid(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 10; trial++ {
		nSt := 3 + rng.Intn(6)
		pts := make([]geom.Point, nSt)
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*10-5, rng.Float64()*10-5)
		}
		n := mustNet(t, pts, rng.Float64()*0.02, 2+rng.Float64()*4)
		if n.SharesLocation(0) {
			continue
		}
		raw, err := n.TheoremBounds(0)
		if err != nil {
			t.Fatal(err)
		}
		imp, err := n.ImprovedBounds(0)
		if err != nil {
			t.Fatal(err)
		}
		// Never looser.
		if imp.DeltaLower < raw.DeltaLower-1e-12 || imp.DeltaUpper > raw.DeltaUpper+1e-12 {
			t.Fatalf("trial %d: improved bounds looser than raw: %+v vs %+v", trial, imp, raw)
		}
		// Still valid.
		z, _ := n.Zone(0)
		rMin, rMax, _, _, err := z.MinMaxRadius(128, raw.DeltaLower/1e6)
		if err != nil {
			t.Fatal(err)
		}
		if rMin < imp.DeltaLower*(1-1e-6) {
			t.Fatalf("trial %d: improved delta bound %v exceeds measured %v", trial, imp.DeltaLower, rMin)
		}
		if rMax > imp.DeltaUpper*(1+1e-6) {
			t.Fatalf("trial %d: improved Delta bound %v below measured %v", trial, imp.DeltaUpper, rMax)
		}
		// The improved ratio is O(1): at most phi^2 by construction.
		phi, _ := FatnessBound(n.Beta())
		if imp.FatnessRatio() > phi*phi*(1+1e-9) {
			t.Fatalf("trial %d: improved ratio %v above phi^2 = %v", trial, imp.FatnessRatio(), phi*phi)
		}
	}
}

// TestSampledBoundsCertifiedAndTight: the convexity-certified sampled
// bounds must still sandwich the measured radii while being much
// tighter than the worst-case improved bounds.
func TestSampledBoundsCertifiedAndTight(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 8; trial++ {
		nSt := 2 + rng.Intn(8)
		pts := make([]geom.Point, nSt)
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*10-5, rng.Float64()*10-5)
		}
		n := mustNet(t, pts, rng.Float64()*0.02, 1.5+rng.Float64()*5)
		if n.SharesLocation(0) {
			continue
		}
		sb, err := n.SampledBounds(0, 128)
		if err != nil {
			t.Fatal(err)
		}
		z, _ := n.Zone(0)
		// Validate against a much denser independent measurement.
		rMin, rMax, _, _, err := z.MinMaxRadius(1024, sb.DeltaLower/1e6)
		if err != nil {
			t.Fatal(err)
		}
		if sb.DeltaLower > rMin*(1+1e-6) {
			t.Fatalf("trial %d: certified delta bound %v above measured %v", trial, sb.DeltaLower, rMin)
		}
		if sb.DeltaUpper < rMax*(1-1e-6) {
			t.Fatalf("trial %d: certified Delta bound %v below measured %v", trial, sb.DeltaUpper, rMax)
		}
		// Tightness: within 10% of measured on both sides.
		if sb.DeltaLower < rMin*0.9 || sb.DeltaUpper > rMax*1.25 {
			t.Errorf("trial %d: sampled bounds loose: [%v, %v] vs measured [%v, %v]",
				trial, sb.DeltaLower, sb.DeltaUpper, rMin, rMax)
		}
	}
}

func TestZoneBoundsFatnessRatioDegenerate(t *testing.T) {
	if got := (ZoneBounds{DeltaUpper: 1}).FatnessRatio(); !math.IsInf(got, 1) {
		t.Errorf("ratio = %v, want +Inf", got)
	}
}

// TestTheoremBoundsPowerScale is the regression test for the psi != 1
// noise correction: with uniform power psi every SINR value equals that
// of the psi = 1 network with noise N/psi, so the Theorem 4.1 bounds
// must coincide with those of the rescaled network and must bracket the
// measured boundary distances. The pre-fix code plugged N in unscaled,
// which for psi > 1 and N > 0 shrank DeltaUpper below the true
// enclosing radius.
func TestTheoremBoundsPowerScale(t *testing.T) {
	stations := []geom.Point{geom.Pt(0, 0), geom.Pt(4, 0), geom.Pt(-1, 5)}
	const noise, beta, psi = 0.5, 2.0, 5.0

	scaled, err := NewNetwork(stations, noise, beta,
		WithPowers([]float64{psi, psi, psi}))
	if err != nil {
		t.Fatal(err)
	}
	if !scaled.IsUniform() {
		t.Fatal("equal-power network should be uniform")
	}
	reference, err := NewNetwork(stations, noise/psi, beta)
	if err != nil {
		t.Fatal(err)
	}

	for i := range stations {
		got, err := scaled.TheoremBounds(i)
		if err != nil {
			t.Fatal(err)
		}
		want, err := reference.TheoremBounds(i)
		if err != nil {
			t.Fatal(err)
		}
		// Exact equivalence with the psi = 1, N/psi network.
		if got.DeltaLower != want.DeltaLower || got.DeltaUpper != want.DeltaUpper {
			t.Errorf("station %d: bounds at psi=%v are [%v, %v], want psi=1 N/psi values [%v, %v]",
				i, psi, got.DeltaLower, got.DeltaUpper, want.DeltaLower, want.DeltaUpper)
		}

		// Validity against measured boundary distances (the property the
		// pre-fix code violated on the upper side).
		z, err := scaled.Zone(i)
		if err != nil {
			t.Fatal(err)
		}
		rMin, rMax, _, _, err := z.MinMaxRadius(256, got.DeltaLower/1e6)
		if err != nil {
			t.Fatal(err)
		}
		if got.DeltaLower > rMin*(1+1e-9) {
			t.Errorf("station %d: DeltaLower %v above measured inscribed radius %v", i, got.DeltaLower, rMin)
		}
		if got.DeltaUpper < rMax*(1-1e-9) {
			t.Errorf("station %d: DeltaUpper %v below measured enclosing radius %v", i, got.DeltaUpper, rMax)
		}
	}

	// ImprovedBounds inherits the correction and must stay valid too.
	ib, err := scaled.ImprovedBounds(0)
	if err != nil {
		t.Fatal(err)
	}
	z, _ := scaled.Zone(0)
	rMin, rMax, _, _, err := z.MinMaxRadius(256, ib.DeltaLower/1e6)
	if err != nil {
		t.Fatal(err)
	}
	if ib.DeltaLower > rMin*(1+1e-9) || ib.DeltaUpper < rMax*(1-1e-9) {
		t.Errorf("ImprovedBounds [%v, %v] do not bracket measured [%v, %v]",
			ib.DeltaLower, ib.DeltaUpper, rMin, rMax)
	}
}
