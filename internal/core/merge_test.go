package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// TestMergeStationsLemma310 validates both clauses of Lemma 3.10 on
// random instances satisfying the precondition (a dominating station
// exists): the merged station reproduces the pair energy exactly at
// the anchors and dominates it along the whole segment.
func TestMergeStationsLemma310(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	checked := 0
	for trial := 0; trial < 400 && checked < 100; trial++ {
		s0 := geom.Pt(rng.Float64()*4-2, rng.Float64()*4-2)
		s1 := geom.Pt(rng.Float64()*8-4, rng.Float64()*8-4)
		s2 := geom.Pt(rng.Float64()*8-4, rng.Float64()*8-4)
		p1 := geom.Pt(rng.Float64()*4-2, rng.Float64()*4-2)
		p2 := geom.Pt(rng.Float64()*4-2, rng.Float64()*4-2)
		if geom.Dist(p1, p2) < 0.1 {
			continue
		}
		// Precondition of Lemma 3.10: E(s0, p_i) >= E({s1,s2}, p_i).
		e0p1 := 1 / geom.Dist2(s0, p1)
		e0p2 := 1 / geom.Dist2(s0, p2)
		if e0p1 < pairEnergy(s1, s2, p1) || e0p2 < pairEnergy(s1, s2, p2) {
			continue
		}
		checked++
		sStar, err := MergeStations(s1, s2, p1, p2)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Clause (1): exact energy at the anchors.
		for _, p := range []geom.Point{p1, p2} {
			got := 1 / geom.Dist2(sStar, p)
			want := pairEnergy(s1, s2, p)
			if math.Abs(got-want) > 1e-6*want {
				t.Fatalf("trial %d: E(s*, %v) = %v, want %v", trial, p, got, want)
			}
		}
		// Clause (2): domination along the segment.
		for k := 1; k < 20; k++ {
			q := geom.Lerp(p1, p2, float64(k)/20)
			got := 1 / geom.Dist2(sStar, q)
			want := pairEnergy(s1, s2, q)
			if got < want*(1-1e-9) {
				t.Fatalf("trial %d: E(s*, q) = %v < E(pair, q) = %v at %v", trial, got, want, q)
			}
		}
	}
	if checked < 50 {
		t.Fatalf("only %d instances satisfied the precondition; broaden sampling", checked)
	}
}

func TestMergeStationsValidation(t *testing.T) {
	if _, err := MergeStations(geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 2), geom.Pt(2, 2)); err == nil {
		t.Error("coincident anchors must fail")
	}
	if _, err := MergeStations(geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0, 0), geom.Pt(2, 2)); err == nil {
		t.Error("anchor on a station must fail")
	}
	// Disjoint energy circles: p1, p2 far apart with strong pair energy
	// near p1 only.
	if _, err := MergeStations(geom.Pt(0, 0), geom.Pt(0.1, 0), geom.Pt(0.05, 0.01), geom.Pt(100, 0)); err == nil {
		t.Error("expected non-intersecting circles error")
	}
}

// TestRemoveNoiseSection34 validates the Section 3.4 reduction: the
// new station reproduces the noise energy exactly at the anchors and
// dominates it along the segment, so SINR is preserved at the anchors
// and only decreases between them.
func TestRemoveNoiseSection34(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	n := mustNet(t, []geom.Point{geom.Pt(0, 0), geom.Pt(4, 0), geom.Pt(0, 5)}, 0.04, 2)
	z, _ := n.Zone(0)
	checked := 0
	for trial := 0; trial < 200 && checked < 50; trial++ {
		// Draw two in-zone points.
		p1 := geom.PolarPoint(geom.Origin, rng.Float64()*2, rng.Float64()*2*math.Pi)
		p2 := geom.PolarPoint(geom.Origin, rng.Float64()*2, rng.Float64()*2*math.Pi)
		if !z.Contains(p1) || !z.Contains(p2) || geom.Dist(p1, p2) < 0.05 {
			continue
		}
		checked++
		n2, sn, err := n.RemoveNoise(0, p1, p2)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if n2.Noise() != 0 {
			t.Fatal("noise must be zero in the reduced network")
		}
		if n2.NumStations() != n.NumStations()+1 {
			t.Fatal("reduced network must gain one station")
		}
		// E(s_n, p_i) = N at the anchors.
		for _, p := range []geom.Point{p1, p2} {
			if got := 1 / geom.Dist2(sn, p); math.Abs(got-n.Noise()) > 1e-6*n.Noise() {
				t.Fatalf("trial %d: E(s_n, anchor) = %v, want N = %v", trial, got, n.Noise())
			}
		}
		// SINR preserved at the anchors.
		for _, p := range []geom.Point{p1, p2} {
			a, b := n.SINR(0, p), n2.SINR(0, p)
			if math.Abs(a-b) > 1e-6*(1+a) {
				t.Fatalf("trial %d: SINR changed at anchor: %v vs %v", trial, a, b)
			}
		}
		// SINR only decreases along the segment.
		for k := 1; k < 10; k++ {
			q := geom.Lerp(p1, p2, float64(k)/10)
			if a, b := n.SINR(0, q), n2.SINR(0, q); b > a*(1+1e-9) {
				t.Fatalf("trial %d: SINR increased along segment: %v -> %v", trial, a, b)
			}
		}
	}
	if checked < 20 {
		t.Fatalf("only %d instances checked", checked)
	}
}

func TestRemoveNoiseValidation(t *testing.T) {
	// No noise to remove.
	n0 := twoStation(t)
	if _, _, err := n0.RemoveNoise(0, geom.Pt(0.1, 0), geom.Pt(-0.1, 0)); err == nil {
		t.Error("zero-noise network must fail")
	}
	// Anchors must be heard.
	n := mustNet(t, []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0)}, 0.01, 4)
	if _, _, err := n.RemoveNoise(0, geom.Pt(0.9, 0), geom.Pt(0, 0.01)); err == nil {
		t.Error("unheard anchor must fail")
	}
	// Non-uniform rejected.
	nu, err := NewNetwork([]geom.Point{geom.Pt(0, 0), geom.Pt(1, 0)}, 0.01, 2,
		WithPowers([]float64{1, 2}))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := nu.RemoveNoise(0, geom.Pt(0.1, 0), geom.Pt(-0.1, 0)); err != ErrNeedUniform {
		t.Errorf("err = %v", err)
	}
}

func TestRemoveNoiseCoincidentAnchors(t *testing.T) {
	n := mustNet(t, []geom.Point{geom.Pt(0, 0), geom.Pt(4, 0)}, 0.01, 2)
	p := geom.Pt(0.2, 0.1)
	if !n.Heard(0, p) {
		t.Fatal("anchor should be heard")
	}
	n2, sn, err := n.RemoveNoise(0, p, p)
	if err != nil {
		t.Fatal(err)
	}
	if got := 1 / geom.Dist2(sn, p); math.Abs(got-n.Noise()) > 1e-9 {
		t.Errorf("E(s_n, p) = %v, want %v", got, n.Noise())
	}
	if n2.Noise() != 0 {
		t.Error("noise must be removed")
	}
}
