package core

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// TestProbeConvexityGeneralAlpha: the sampling probe finds no
// violations for uniform networks across path-loss exponents — the
// open-problem regime the paper conjectures behaves like alpha = 2.
func TestProbeConvexityGeneralAlpha(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	for _, alpha := range []float64{1.5, 2, 2.5, 3, 4} {
		for trial := 0; trial < 4; trial++ {
			pts := make([]geom.Point, 3+rng.Intn(4))
			for i := range pts {
				pts[i] = geom.Pt(rng.Float64()*8-4, rng.Float64()*8-4)
			}
			n, err := NewNetwork(pts, 0.01, 2+rng.Float64()*3, WithAlpha(alpha))
			if err != nil {
				t.Fatal(err)
			}
			rep, err := n.ProbeConvexity(0, 60, 10, rng)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Convex() {
				t.Fatalf("alpha=%v trial %d: %v", alpha, trial, rep)
			}
		}
	}
}

// TestProbeConvexityDetectsBetaLT1: the general probe still catches
// the Figure 5 non-convexity.
func TestProbeConvexityDetectsBetaLT1(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	n := mustNet(t, []geom.Point{geom.Pt(-2, 0), geom.Pt(2, 0)}, 0.005, 0.3)
	rep, err := n.ProbeConvexity(0, 400, 15, rng)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Convex() {
		t.Fatalf("probe missed the beta<1 hole: %v", rep)
	}
}

func TestProbeConvexityValidation(t *testing.T) {
	n := twoStation(t)
	if _, err := n.ProbeConvexity(0, 1, 1, nil); err == nil {
		t.Error("nil rng must fail")
	}
	if _, err := n.ProbeConvexity(9, 1, 1, rand.New(rand.NewSource(1))); err == nil {
		t.Error("bad index must fail")
	}
}

// TestRadialBoundaryGeneralAlpha: radial probing is sound beyond
// alpha = 2 (the Lemma 3.1 argument generalizes), so the boundary
// points it returns must lie on the SINR = beta level set.
func TestRadialBoundaryGeneralAlpha(t *testing.T) {
	for _, alpha := range []float64{2.5, 3, 4} {
		n, err := NewNetwork(
			[]geom.Point{geom.Pt(0, 0), geom.Pt(2, 1), geom.Pt(-1, 2)},
			0.01, 2.5, WithAlpha(alpha))
		if err != nil {
			t.Fatal(err)
		}
		z, err := n.Zone(0)
		if err != nil {
			t.Fatal(err)
		}
		for _, theta := range []float64{0.3, 1.9, 4.4} {
			p, err := z.BoundaryPoint(theta, 1e-10)
			if err != nil {
				t.Fatalf("alpha=%v: %v", alpha, err)
			}
			if s := n.SINR(0, p); s < n.Beta()*(1-1e-5) || s > n.Beta()*(1+1e-5) {
				t.Errorf("alpha=%v theta=%v: boundary SINR = %v, want %v", alpha, theta, s, n.Beta())
			}
		}
	}
}

// TestNonConvexNonUniformExample: the deterministic witness holds —
// endpoints in zone 0, midpoint out.
func TestNonConvexNonUniformExample(t *testing.T) {
	net, p1, p2, err := NonConvexNonUniformExample()
	if err != nil {
		t.Fatal(err)
	}
	if !net.Heard(0, p1) || !net.Heard(0, p2) {
		t.Fatalf("endpoints must be heard: SINR %v / %v vs beta %v",
			net.SINR(0, p1), net.SINR(0, p2), net.Beta())
	}
	if net.Heard(0, geom.Midpoint(p1, p2)) {
		t.Fatal("midpoint must not be heard (hole around the weak interferer)")
	}
	if net.IsUniform() {
		t.Fatal("witness must be non-uniform")
	}
	if net.Beta() <= 1 {
		t.Fatal("witness must have beta > 1 to matter")
	}
}

// TestFindNonConvexNonUniform: the searcher must find a verified
// witness within a modest budget now that it probes the strong
// station's zone across interferers.
func TestFindNonConvexNonUniform(t *testing.T) {
	net, p1, p2, ok, err := FindNonConvexNonUniform(3, 60, 50, 1.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("no non-convex non-uniform instance found in budget")
	}
	if !net.Heard(0, p1) || !net.Heard(0, p2) {
		t.Fatal("witness endpoints must be in the zone")
	}
	found := false
	for _, tt := range []float64{0.25, 0.5, 0.75} {
		if !net.Heard(0, geom.Lerp(p1, p2, tt)) {
			found = true
		}
	}
	if !found {
		t.Error("witness chord has no violating sample")
	}
	if net.IsUniform() {
		t.Error("witness must be non-uniform")
	}
}

func TestFindNonConvexNonUniformValidation(t *testing.T) {
	if _, _, _, _, err := FindNonConvexNonUniform(1, 1, 2, 1.5, 1); err == nil {
		t.Error("single station must fail")
	}
}

// TestZoneConnectivityProbeUniform: uniform zones are star-shaped, so
// the segment-to-station probe never leaves the zone.
func TestZoneConnectivityProbeUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(203))
	for trial := 0; trial < 6; trial++ {
		pts := make([]geom.Point, 2+rng.Intn(6))
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*8-4, rng.Float64()*8-4)
		}
		n := mustNet(t, pts, 0.02, 1+rng.Float64()*4)
		broken, err := n.ZoneConnectivityProbe(0, 300, 10, rng)
		if err != nil {
			t.Fatal(err)
		}
		if broken != 0 {
			t.Fatalf("trial %d: %d broken segments in a uniform network", trial, broken)
		}
	}
}

func TestZoneConnectivityProbeNilRNG(t *testing.T) {
	if _, err := twoStation(t).ZoneConnectivityProbe(0, 1, 1, nil); err == nil {
		t.Error("nil rng must fail")
	}
}
