package core

import (
	"context"

	"repro/internal/geom"
	"repro/internal/par"
)

// NoStationHeard is the sentinel written by the *Into batch primitives
// for points where no station is heard. It matches raster.NoStation so
// batch answers can be written straight into a reception map's pixel
// rows.
const NoStationHeard = -1

// LocateBatch answers one approximate point-location query per input
// point, sharding the slice over DefaultWorkers() goroutines. Answers
// land at the index of their query point and are identical to calling
// Locate point-by-point. The locator is immutable, so LocateBatch is
// safe to call concurrently from multiple goroutines.
func (l *Locator) LocateBatch(ps []geom.Point) []Location {
	return l.LocateBatchOpts(ps, BatchOptions{})
}

// LocateBatchOpts is LocateBatch with an explicit worker count.
// Workers: 1 runs the queries serially on the calling goroutine.
func (l *Locator) LocateBatchOpts(ps []geom.Point, opt BatchOptions) []Location {
	out := make([]Location, len(ps))
	par.Chunks(len(ps), opt.Workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = l.Locate(ps[i])
		}
	})
	return out
}

// LocateExactBatch is LocateBatch with uncertainty rings resolved: it
// runs LocateExact per point, so every answer is H+ or H-.
func (l *Locator) LocateExactBatch(ps []geom.Point) []Location {
	return l.LocateExactBatchOpts(ps, BatchOptions{})
}

// LocateExactBatchOpts is LocateExactBatch with an explicit worker
// count.
func (l *Locator) LocateExactBatchOpts(ps []geom.Point, opt BatchOptions) []Location {
	out := make([]Location, len(ps))
	par.Chunks(len(ps), opt.Workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = l.LocateExact(ps[i])
		}
	})
	return out
}

// HeardByBatchInto resolves every point exactly through the locator
// and writes the heard station index (or NoStationHeard) into dst,
// which must have len(ps) entries. It runs serially on the calling
// goroutine — it is the per-worker kernel of the batch engine, written
// so row renderers can aim it directly at their pixel buffers.
func (l *Locator) HeardByBatchInto(ps []geom.Point, dst []int) {
	for i, p := range ps {
		dst[i] = NoStationHeard
		if idx, ok := l.HeardBy(p); ok {
			dst[i] = idx
		}
	}
}

// HeardByBatch evaluates HeardBy for every input point, sharded over
// DefaultWorkers() goroutines: out[i] is the station heard at ps[i],
// or NoStationHeard. This is the brute-force batch path that needs no
// preprocessing; for repeated query traffic build a Locator and use
// LocateBatch.
func (n *Network) HeardByBatch(ps []geom.Point) []int {
	return n.HeardByBatchOpts(ps, BatchOptions{})
}

// HeardByBatchOpts is HeardByBatch with an explicit worker count.
func (n *Network) HeardByBatchOpts(ps []geom.Point, opt BatchOptions) []int {
	out := make([]int, len(ps))
	par.Chunks(len(ps), opt.Workers, func(lo, hi int) {
		n.HeardByBatchInto(ps[lo:hi], out[lo:hi])
	})
	return out
}

// HeardByBatchInto is the serial kernel of HeardByBatch: it writes the
// heard station index (or NoStationHeard) for every point into dst,
// which must have len(ps) entries.
func (n *Network) HeardByBatchInto(ps []geom.Point, dst []int) {
	for i, p := range ps {
		dst[i] = NoStationHeard
		if idx, ok := n.HeardBy(p); ok {
			dst[i] = idx
		}
	}
}

// LocateStream answers a live stream of point-location queries: it
// reads points from in until the channel closes or ctx is cancelled,
// locates them on a pool of workers, and delivers the answers on the
// returned channel in input order, one Location per input point.
//
// The pipeline (chunking, ordered emission, cancellation, buffer
// recycling) is par.Stream; see its documentation for the latency and
// teardown contract. Abandoning the stream without cancelling ctx
// leaks the pipeline goroutines — cancel when done early.
func (l *Locator) LocateStream(ctx context.Context, in <-chan geom.Point) <-chan Location {
	return l.LocateStreamOpts(ctx, in, BatchOptions{})
}

// LocateStreamOpts is LocateStream with an explicit worker count.
func (l *Locator) LocateStreamOpts(ctx context.Context, in <-chan geom.Point, opt BatchOptions) <-chan Location {
	return par.Stream(ctx, in, opt.Workers, l.Locate)
}
