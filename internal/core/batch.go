package core

import (
	"context"
	"sync"

	"repro/internal/geom"
	"repro/internal/par"
)

// NoStationHeard is the sentinel written by the *Into batch primitives
// for points where no station is heard. It matches raster.NoStation so
// batch answers can be written straight into a reception map's pixel
// rows.
const NoStationHeard = -1

// LocateBatch answers one approximate point-location query per input
// point, sharding the slice over DefaultWorkers() goroutines. Answers
// land at the index of their query point and are identical to calling
// Locate point-by-point. The locator is immutable, so LocateBatch is
// safe to call concurrently from multiple goroutines.
func (l *Locator) LocateBatch(ps []geom.Point) []Location {
	return l.LocateBatchOpts(ps, BatchOptions{})
}

// LocateBatchOpts is LocateBatch with an explicit worker count.
// Workers: 1 runs the queries serially on the calling goroutine.
func (l *Locator) LocateBatchOpts(ps []geom.Point, opt BatchOptions) []Location {
	out := make([]Location, len(ps))
	par.Chunks(len(ps), opt.Workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = l.Locate(ps[i])
		}
	})
	return out
}

// LocateExactBatch is LocateBatch with uncertainty rings resolved: it
// runs LocateExact per point, so every answer is H+ or H-.
func (l *Locator) LocateExactBatch(ps []geom.Point) []Location {
	return l.LocateExactBatchOpts(ps, BatchOptions{})
}

// LocateExactBatchOpts is LocateExactBatch with an explicit worker
// count.
func (l *Locator) LocateExactBatchOpts(ps []geom.Point, opt BatchOptions) []Location {
	out := make([]Location, len(ps))
	par.Chunks(len(ps), opt.Workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = l.LocateExact(ps[i])
		}
	})
	return out
}

// HeardByBatchInto resolves every point exactly through the locator
// and writes the heard station index (or NoStationHeard) into dst,
// which must have len(ps) entries. It runs serially on the calling
// goroutine — it is the per-worker kernel of the batch engine, written
// so row renderers can aim it directly at their pixel buffers.
func (l *Locator) HeardByBatchInto(ps []geom.Point, dst []int) {
	for i, p := range ps {
		dst[i] = NoStationHeard
		if idx, ok := l.HeardBy(p); ok {
			dst[i] = idx
		}
	}
}

// HeardByBatch evaluates HeardBy for every input point, sharded over
// DefaultWorkers() goroutines: out[i] is the station heard at ps[i],
// or NoStationHeard. This is the brute-force batch path that needs no
// preprocessing; for repeated query traffic build a Locator and use
// LocateBatch.
func (n *Network) HeardByBatch(ps []geom.Point) []int {
	return n.HeardByBatchOpts(ps, BatchOptions{})
}

// HeardByBatchOpts is HeardByBatch with an explicit worker count.
func (n *Network) HeardByBatchOpts(ps []geom.Point, opt BatchOptions) []int {
	out := make([]int, len(ps))
	par.Chunks(len(ps), opt.Workers, func(lo, hi int) {
		n.HeardByBatchInto(ps[lo:hi], out[lo:hi])
	})
	return out
}

// HeardByBatchInto is the serial kernel of HeardByBatch: it writes the
// heard station index (or NoStationHeard) for every point into dst,
// which must have len(ps) entries.
func (n *Network) HeardByBatchInto(ps []geom.Point, dst []int) {
	for i, p := range ps {
		dst[i] = NoStationHeard
		if idx, ok := n.HeardBy(p); ok {
			dst[i] = idx
		}
	}
}

// streamChunk is the largest number of queued points one stream job
// carries. Under sustained load jobs fill completely and the stream
// amortizes scheduling over streamChunk queries; under trickle traffic
// jobs flush as soon as the input channel runs dry, keeping latency at
// one handoff.
const streamChunk = 256

// streamJob is one chunk of stream input moving through the pipeline.
type streamJob struct {
	pts  []geom.Point
	done chan []Location
}

// LocateStream answers a live stream of point-location queries: it
// reads points from in until the channel closes or ctx is cancelled,
// locates them on a pool of workers, and delivers the answers on the
// returned channel in input order, one Location per input point.
//
// Points are gathered into chunks of up to streamChunk: each chunk is
// located by one worker while later chunks are still being read, so a
// sustained stream keeps every worker busy, while a slow trickle is
// flushed immediately (a chunk never waits for more input once the
// reader would block). Chunk buffers are recycled through a pool, so
// steady-state streaming allocates only the answer slices.
//
// The output channel is closed after the last answer, or as soon as
// ctx is cancelled (possibly dropping in-flight answers); cancelled
// callers need not drain it. Abandoning the stream without cancelling
// ctx leaks the pipeline goroutines — cancel when done early.
func (l *Locator) LocateStream(ctx context.Context, in <-chan geom.Point) <-chan Location {
	return l.LocateStreamOpts(ctx, in, BatchOptions{})
}

// LocateStreamOpts is LocateStream with an explicit worker count.
func (l *Locator) LocateStreamOpts(ctx context.Context, in <-chan geom.Point, opt BatchOptions) <-chan Location {
	workers := opt.Workers
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	out := make(chan Location, streamChunk)
	jobs := make(chan streamJob, workers)    // feeds the worker pool
	pending := make(chan streamJob, workers) // same jobs, input order, feeds the emitter

	var bufPool = sync.Pool{
		New: func() any { return make([]geom.Point, 0, streamChunk) },
	}

	// Reader: gather points into chunks, flushing on chunk-full, on a
	// would-block read (latency), on input close, and on cancellation.
	go func() {
		defer close(jobs)
		defer close(pending)
		for {
			// Block for the first point of the next chunk.
			var p geom.Point
			var ok bool
			select {
			case <-ctx.Done():
				return
			case p, ok = <-in:
				if !ok {
					return
				}
			}
			buf := bufPool.Get().([]geom.Point)[:0]
			buf = append(buf, p)
			// Drain without blocking until the chunk fills.
		fill:
			for len(buf) < streamChunk {
				select {
				case p, ok = <-in:
					if !ok {
						break fill
					}
					buf = append(buf, p)
				default:
					break fill
				}
			}
			job := streamJob{pts: buf, done: make(chan []Location, 1)}
			select {
			case <-ctx.Done():
				return
			case jobs <- job:
			}
			select {
			case <-ctx.Done():
				return
			case pending <- job:
			}
			if !ok {
				return
			}
		}
	}()

	// Workers: locate each chunk and hand the answers back.
	for w := 0; w < workers; w++ {
		go func() {
			for job := range jobs {
				res := make([]Location, len(job.pts))
				for i, p := range job.pts {
					res[i] = l.Locate(p)
				}
				bufPool.Put(job.pts[:0])
				job.done <- res
			}
		}()
	}

	// Emitter: release answers in input order.
	go func() {
		defer close(out)
		for job := range pending {
			res := <-job.done
			for _, loc := range res {
				select {
				case <-ctx.Done():
					return
				case out <- loc:
				}
			}
		}
	}()
	return out
}
