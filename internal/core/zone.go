package core

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// Zone is a handle on the reception zone H_i of one station within a
// network. It provides membership tests, radial boundary probes and
// derived measurements. Zones are cheap views: they hold no
// precomputed state beyond the pair (network, index).
type Zone struct {
	net *Network
	idx int
}

// Zone returns a handle on the reception zone of station i.
func (n *Network) Zone(i int) (*Zone, error) {
	if i < 0 || i >= len(n.stations) {
		return nil, fmt.Errorf("core: station index %d out of range [0, %d)", i, len(n.stations))
	}
	return &Zone{net: n, idx: i}, nil
}

// Station returns the zone's station location.
func (z *Zone) Station() geom.Point { return z.net.stations[z.idx] }

// Index returns the station index.
func (z *Zone) Index() int { return z.idx }

// Network returns the underlying network.
func (z *Zone) Network() *Network { return z.net }

// Contains reports whether p is in the reception zone H_i.
func (z *Zone) Contains(p geom.Point) bool { return z.net.Heard(z.idx, p) }

// IsPointZone reports whether the zone degenerates because another
// station shares the location (Section 2.2): the co-located interferer
// dominates, so not even s_i itself is heard.
func (z *Zone) IsPointZone() bool { return z.net.SharesLocation(z.idx) }

// maxBoundaryDoubling caps the exponential search for an exterior
// point along a ray. 64 doublings from kappa overflow any realistic
// geometry, so hitting the cap indicates an unbounded zone (trivial
// network) or a degenerate configuration.
const maxBoundaryDoubling = 64

// RadialBoundary returns the distance from the station to the zone
// boundary in direction theta, located by bisection to absolute
// tolerance tol.
//
// Correctness relies on Lemma 3.1 (star shape): for a uniform power
// network with beta >= 1 the zone's intersection with any ray from
// s_i is a single interval, so the first not-heard point brackets the
// boundary. The method returns an error for networks where the star
// property is not guaranteed (non-uniform powers or beta < 1) — use
// LineBoundaryCrossings for those — and for unbounded zones.
func (z *Zone) RadialBoundary(theta, tol float64) (float64, error) {
	if !z.net.uniform {
		return 0, ErrNeedUniform
	}
	if z.net.beta < 1 {
		return 0, fmt.Errorf("core: radial bisection requires beta >= 1 (got %v)", z.net.beta)
	}
	if z.IsPointZone() {
		return 0, nil
	}
	s := z.Station()

	// Initial probe scale: the nearest-peer distance, or 1 for a
	// single-station network.
	hi := z.net.Kappa(z.idx)
	if hi == 0 {
		hi = 1
	}
	lo := 0.0
	dbl := 0
	for z.net.Heard(z.idx, geom.PolarPoint(s, hi, theta)) {
		lo = hi
		hi *= 2
		dbl++
		if dbl > maxBoundaryDoubling {
			return 0, fmt.Errorf("core: zone appears unbounded along theta=%v", theta)
		}
	}
	for hi-lo > tol {
		mid := (lo + hi) / 2
		if mid <= lo || mid >= hi {
			break
		}
		if z.net.Heard(z.idx, geom.PolarPoint(s, mid, theta)) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// radialBoundaryHinted is RadialBoundary with a warm-start bracket
// around an expected radius (e.g. the boundary distance at a nearby
// angle during a trace). If the hint bracket does not straddle the
// boundary it falls back to the cold search. Callers must have already
// validated the star-shape preconditions.
func (z *Zone) radialBoundaryHinted(theta, tol, hint float64) (float64, error) {
	if hint <= 0 {
		return z.RadialBoundary(theta, tol)
	}
	s := z.Station()
	lo, hi := hint*0.85, hint*1.18
	if !z.net.Heard(z.idx, geom.PolarPoint(s, lo, theta)) ||
		z.net.Heard(z.idx, geom.PolarPoint(s, hi, theta)) {
		return z.RadialBoundary(theta, tol)
	}
	for hi-lo > tol {
		mid := (lo + hi) / 2
		if mid <= lo || mid >= hi {
			break
		}
		if z.net.Heard(z.idx, geom.PolarPoint(s, mid, theta)) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// BoundaryPoint returns the boundary point of the zone along direction
// theta (RadialBoundary composed with the polar map).
func (z *Zone) BoundaryPoint(theta, tol float64) (geom.Point, error) {
	r, err := z.RadialBoundary(theta, tol)
	if err != nil {
		return geom.Point{}, err
	}
	return geom.PolarPoint(z.Station(), r, theta), nil
}

// MinMaxRadius samples the radial boundary at numSamples uniformly
// spaced angles and returns the extreme radii found together with the
// realizing angles. These estimate delta(s_i, H_i) (largest inscribed
// ball) and Delta(s_i, H_i) (smallest enclosing ball) of Section 2.1;
// for convex zones the estimates converge quickly with the sample
// count.
func (z *Zone) MinMaxRadius(numSamples int, tol float64) (rMin, rMax, thetaMin, thetaMax float64, err error) {
	if numSamples < 3 {
		numSamples = 3
	}
	rMin, rMax = math.Inf(1), 0
	for k := 0; k < numSamples; k++ {
		theta := 2 * math.Pi * float64(k) / float64(numSamples)
		r, rerr := z.RadialBoundary(theta, tol)
		if rerr != nil {
			return 0, 0, 0, 0, rerr
		}
		if r < rMin {
			rMin, thetaMin = r, theta
		}
		if r > rMax {
			rMax, thetaMax = r, theta
		}
	}
	return rMin, rMax, thetaMin, thetaMax, nil
}

// MeasuredFatness returns the sampled fatness parameter
// phi(s_i, H_i) = Delta/delta (Section 2.1) using numSamples radial
// probes.
func (z *Zone) MeasuredFatness(numSamples int, tol float64) (float64, error) {
	rMin, rMax, _, _, err := z.MinMaxRadius(numSamples, tol)
	if err != nil {
		return 0, err
	}
	if rMin == 0 {
		return math.Inf(1), nil
	}
	return rMax / rMin, nil
}

// SampleBoundary returns numSamples boundary points at uniformly
// spaced angles (a polygonal approximation of ∂H_i, suitable for area
// and perimeter estimation of convex zones).
func (z *Zone) SampleBoundary(numSamples int, tol float64) ([]geom.Point, error) {
	if numSamples < 3 {
		return nil, fmt.Errorf("core: need at least 3 boundary samples")
	}
	pts := make([]geom.Point, numSamples)
	for k := range pts {
		theta := 2 * math.Pi * float64(k) / float64(numSamples)
		p, err := z.BoundaryPoint(theta, tol)
		if err != nil {
			return nil, err
		}
		pts[k] = p
	}
	return pts, nil
}

// ApproxArea estimates area(H_i) from a polygonal boundary sample. For
// convex zones the estimate is a lower bound converging as O(1/m^2) in
// the sample count m.
func (z *Zone) ApproxArea(numSamples int, tol float64) (float64, error) {
	pts, err := z.SampleBoundary(numSamples, tol)
	if err != nil {
		return 0, err
	}
	return math.Abs(geom.Polygon(pts).Area()), nil
}

// ApproxPerimeter estimates per(H_i) from a polygonal boundary sample.
func (z *Zone) ApproxPerimeter(numSamples int, tol float64) (float64, error) {
	pts, err := z.SampleBoundary(numSamples, tol)
	if err != nil {
		return 0, err
	}
	return geom.Polygon(pts).Perimeter(), nil
}

// EnclosingBall returns the minimum enclosing ball of a boundary
// sample — a Delta-style measure that, unlike MinMaxRadius, is not
// anchored at the station (the paper's Delta(s_i, .) is; this variant
// measures the zone's intrinsic circumradius, useful for comparing the
// two notions).
func (z *Zone) EnclosingBall(numSamples int, tol float64) (geom.Ball, error) {
	pts, err := z.SampleBoundary(numSamples, tol)
	if err != nil {
		return geom.Ball{}, err
	}
	return geom.MinEnclosingBall(pts, nil), nil
}

// ConvexHullArea estimates the zone area via the convex hull of a
// boundary sample; for convex zones (Theorem 1) it agrees with
// ApproxArea and is robust to sample ordering.
func (z *Zone) ConvexHullArea(numSamples int, tol float64) (float64, error) {
	pts, err := z.SampleBoundary(numSamples, tol)
	if err != nil {
		return 0, err
	}
	return geom.Polygon(geom.ConvexHull(pts)).Area(), nil
}
