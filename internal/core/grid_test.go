package core

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func TestNewGridValidation(t *testing.T) {
	for _, gamma := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewGrid(geom.Origin, gamma); err == nil {
			t.Errorf("gamma = %v should fail", gamma)
		}
	}
	if _, err := NewGrid(geom.Origin, 0.5); err != nil {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestCellOfHalfOpenConvention(t *testing.T) {
	g, _ := NewGrid(geom.Origin, 1)
	tests := []struct {
		p    geom.Point
		want Cell
	}{
		{geom.Pt(0, 0), Cell{0, 0}}, // anchor belongs to cell (0,0)
		{geom.Pt(0.5, 0.5), Cell{0, 0}},
		{geom.Pt(1, 0), Cell{1, 0}}, // east edge belongs to the next cell
		{geom.Pt(0, 1), Cell{0, 1}}, // north edge belongs to the next cell
		{geom.Pt(-0.001, 0), Cell{-1, 0}},
		{geom.Pt(-1, -1), Cell{-1, -1}},
		{geom.Pt(2.7, -3.2), Cell{2, -4}},
	}
	for _, tc := range tests {
		if got := g.CellOf(tc.p); got != tc.want {
			t.Errorf("CellOf(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestCellOfAnchorOffset(t *testing.T) {
	g, _ := NewGrid(geom.Pt(10, -5), 2)
	if got := g.CellOf(geom.Pt(10, -5)); got != (Cell{0, 0}) {
		t.Errorf("anchor cell = %v", got)
	}
	if got := g.CellOf(geom.Pt(13, -2)); got != (Cell{1, 1}) {
		t.Errorf("cell = %v", got)
	}
}

func TestCellBoxRoundTrip(t *testing.T) {
	g, _ := NewGrid(geom.Pt(0.3, -0.7), 0.25)
	for _, c := range []Cell{{0, 0}, {3, -2}, {-5, 7}} {
		box := g.CellBox(c)
		if got := box.Width(); math.Abs(got-0.25) > 1e-12 {
			t.Errorf("cell width = %v", got)
		}
		// The box center maps back to the cell.
		if got := g.CellOf(box.Center()); got != c {
			t.Errorf("CellOf(center of %v) = %v", c, got)
		}
		if got := g.CellCenter(c); !geom.ApproxEqual(got, box.Center(), 1e-12) {
			t.Errorf("CellCenter = %v, box center = %v", got, box.Center())
		}
	}
}

func TestColumnXRowY(t *testing.T) {
	g, _ := NewGrid(geom.Pt(1, 2), 0.5)
	if got := g.ColumnX(0); got != 1 {
		t.Errorf("ColumnX(0) = %v", got)
	}
	if got := g.ColumnX(3); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("ColumnX(3) = %v", got)
	}
	if got := g.RowY(-2); math.Abs(got-1) > 1e-12 {
		t.Errorf("RowY(-2) = %v", got)
	}
}

func TestNineCell(t *testing.T) {
	g, _ := NewGrid(geom.Origin, 1)
	cells := g.NineCell(Cell{2, 3})
	if len(cells) != 9 {
		t.Fatalf("len = %d", len(cells))
	}
	seen := map[Cell]bool{}
	for _, c := range cells {
		seen[c] = true
		if c.Col < 1 || c.Col > 3 || c.Row < 2 || c.Row > 4 {
			t.Errorf("cell %v outside 3x3 block", c)
		}
	}
	if len(seen) != 9 {
		t.Errorf("duplicate cells in 9-cell: %v", cells)
	}
	if !seen[Cell{2, 3}] {
		t.Error("center cell missing")
	}
}

func TestCellTypeString(t *testing.T) {
	if TPlus.String() != "T+" || TMinus.String() != "T-" || TQuestion.String() != "T?" {
		t.Error("CellType strings wrong")
	}
	if CellType(9).String() == "" {
		t.Error("unknown cell type should still render")
	}
}
