package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// TestBoundaryPolySignMatchesSINR is the keystone correctness test:
// along random lines through random networks, the sign of H(t) must
// agree with the SINR reception predicate at every sample parameter.
func TestBoundaryPolySignMatchesSINR(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		nSt := 2 + rng.Intn(6)
		pts := make([]geom.Point, nSt)
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*10-5, rng.Float64()*10-5)
		}
		noise := 0.0
		if trial%2 == 0 {
			noise = rng.Float64() * 0.1
		}
		n := mustNet(t, pts, noise, 1+rng.Float64()*5)
		k := rng.Intn(nSt)
		line := geom.Line{
			P: geom.Pt(rng.Float64()*10-5, rng.Float64()*10-5),
			D: geom.Pt(rng.Float64()*2-1, rng.Float64()*2-1),
		}
		if line.D.Norm() < 0.1 {
			continue
		}
		h, err := n.BoundaryPoly(k, line)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < 60; s++ {
			tt := rng.Float64()*8 - 4
			p := line.At(tt)
			sinr := n.SINR(k, p)
			hv := h.Eval(tt)
			// Skip points numerically on the boundary.
			if math.Abs(sinr-n.Beta()) < 1e-6*n.Beta() {
				continue
			}
			if (sinr >= n.Beta()) != (hv <= 0) {
				t.Fatalf("trial %d: sign mismatch at t=%v: SINR=%v beta=%v H=%v",
					trial, tt, sinr, n.Beta(), hv)
			}
		}
	}
}

func TestBoundaryPolyDegree(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(3, 0), geom.Pt(0, 3)}
	line := geom.Line{P: geom.Pt(-1, -1), D: geom.Pt(1, 0.5)}

	// With noise: degree 2n = 6.
	n := mustNet(t, pts, 0.05, 2)
	h, err := n.BoundaryPoly(0, line)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Degree(); got != 6 {
		t.Errorf("degree with noise = %d, want 6", got)
	}

	// Without noise: degree 2n-2 = 4.
	n0 := mustNet(t, pts, 0, 2)
	h0, err := n0.BoundaryPoly(0, line)
	if err != nil {
		t.Fatal(err)
	}
	if got := h0.Degree(); got != 4 {
		t.Errorf("degree without noise = %d, want 4", got)
	}
}

func TestBoundaryPolyValidation(t *testing.T) {
	n := twoStation(t)
	line := geom.Line{P: geom.Pt(0, 0), D: geom.Pt(1, 0)}
	if _, err := n.BoundaryPoly(5, line); err == nil {
		t.Error("out-of-range station must fail")
	}
	if _, err := n.BoundaryPoly(0, geom.Line{P: geom.Pt(0, 0)}); err == nil {
		t.Error("degenerate direction must fail")
	}
	n4, err := NewNetwork(n.Stations(), 0, 4, WithAlpha(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n4.BoundaryPoly(0, line); err != ErrNeedAlpha2 {
		t.Errorf("alpha != 2 should yield ErrNeedAlpha2, got %v", err)
	}
}

func TestBoundaryPolyRootsTwoStationAnalytic(t *testing.T) {
	n := twoStation(t)
	// Along the x-axis the roots are exactly mu_l = -1 and mu_r = 1/3.
	line := geom.Line{P: geom.Pt(0, 0), D: geom.Pt(1, 0)}
	roots, err := n.LineBoundaryCrossings(0, line, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) != 2 {
		t.Fatalf("roots = %v, want 2", roots)
	}
	if math.Abs(roots[0]+1) > 1e-9 || math.Abs(roots[1]-1.0/3) > 1e-9 {
		t.Errorf("roots = %v, want [-1, 1/3]", roots)
	}
}

func TestSegmentTestCounts(t *testing.T) {
	n := twoStation(t)
	// Zone of s0 on the x-axis is [-1, 1/3].
	tests := []struct {
		name string
		seg  geom.Segment
		want int
	}{
		{"crossesOnce", geom.Seg(geom.Pt(0, 0), geom.Pt(0.5, 0)), 1},
		{"insideZone", geom.Seg(geom.Pt(-0.5, 0), geom.Pt(0.2, 0)), 0},
		{"outsideZone", geom.Seg(geom.Pt(0.5, 0), geom.Pt(0.9, 0)), 0},
		{"spansZone", geom.Seg(geom.Pt(-2, 0), geom.Pt(0.5, 0)), 2},
		{"leftCrossing", geom.Seg(geom.Pt(-2, 0), geom.Pt(-0.5, 0)), 1},
		{"verticalThroughZone", geom.Seg(geom.Pt(0, -2), geom.Pt(0, 2)), 2},
		{"verticalOutside", geom.Seg(geom.Pt(2, -2), geom.Pt(2, 2)), 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, err := n.SegmentTest(0, tc.seg)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Fatalf("SegmentTest = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestSegmentTestEndpointRoot(t *testing.T) {
	n := twoStation(t)
	// Segment starting exactly on the boundary point (1/3, 0).
	got, err := n.SegmentTest(0, geom.Seg(geom.Pt(1.0/3, 0), geom.Pt(1, 0)))
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("count = %d, want 1 (boundary start point)", got)
	}
}

// TestLineRootCountConvexUniform provides Sturm-side evidence for
// Theorem 1: in uniform power networks with beta > 1 no line meets a
// zone boundary more than twice.
func TestLineRootCountConvexUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 30; trial++ {
		nSt := 2 + rng.Intn(5)
		pts := make([]geom.Point, nSt)
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*8-4, rng.Float64()*8-4)
		}
		n := mustNet(t, pts, rng.Float64()*0.05, 1.2+rng.Float64()*5)
		for l := 0; l < 20; l++ {
			theta := math.Pi * rng.Float64()
			line := geom.Line{
				P: geom.Pt(rng.Float64()*8-4, rng.Float64()*8-4),
				D: geom.Pt(math.Cos(theta), math.Sin(theta)),
			}
			count, err := n.LineRootCount(0, line)
			if err != nil {
				t.Fatal(err)
			}
			if count > 2 {
				t.Fatalf("trial %d: line %v crosses boundary %d times (Theorem 1 violated?)",
					trial, line, count)
			}
		}
	}
}

// TestLineRootCountNonConvexBetaLT1 reproduces the Figure 5 phenomenon
// in its sharpest form: with beta < 1 a zone can have a hole around an
// interferer, so some line crosses its boundary four times.
func TestLineRootCountNonConvexBetaLT1(t *testing.T) {
	n := mustNet(t, []geom.Point{geom.Pt(-2, 0), geom.Pt(2, 0)}, 0.005, 0.3)
	// Sanity: the midpoint is in zone 0, points near s1 are not, points
	// well beyond s1 are back in (noise is low enough for re-entry).
	if !n.Heard(0, geom.Pt(0, 0)) {
		t.Fatal("midpoint should be in zone 0")
	}
	if n.Heard(0, geom.Pt(2.01, 0)) {
		t.Fatal("point adjacent to the interferer should not be in zone 0")
	}
	if !n.Heard(0, geom.Pt(10, 0)) {
		t.Fatal("zone 0 should re-emerge behind the interferer")
	}
	line := geom.Line{P: geom.Pt(0, 0), D: geom.Pt(1, 0)}
	count, err := n.LineRootCount(0, line)
	if err != nil {
		t.Fatal(err)
	}
	if count <= 2 {
		t.Fatalf("x-axis crossings = %d, want > 2 (hole around interferer)", count)
	}
}

func TestLineBoundaryCrossingsMatchMembership(t *testing.T) {
	// The sign of membership must flip exactly at the reported roots.
	n := mustNet(t, []geom.Point{geom.Pt(0, 0), geom.Pt(2, 1), geom.Pt(-1, 2)}, 0.02, 2.5)
	line := geom.Line{P: geom.Pt(-3, -0.7), D: geom.Pt(1, 0.3)}
	roots, err := n.LineBoundaryCrossings(0, line, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range roots {
		p := line.At(r)
		if got := math.Abs(n.SINR(0, p) - n.Beta()); got > 1e-5*n.Beta() {
			t.Errorf("root t=%v: |SINR - beta| = %v, not on boundary", r, got)
		}
	}
}
