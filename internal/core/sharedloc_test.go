package core

import (
	"math"
	"testing"

	"repro/internal/geom"
)

// sharedNet is a network with two stations sharing the origin plus one
// isolated station, in the Theorem 3 regime (uniform, alpha 2, beta>1).
func sharedNet(t *testing.T) *Network {
	t.Helper()
	return mustNet(t, []geom.Point{geom.Pt(0, 0), geom.Pt(0, 0), geom.Pt(4, 0)}, 0.01, 4)
}

// TestSINRSharedLocationDominates is the regression test for the
// interferer-coincidence convention: at a point coinciding with both
// s_i and a co-located interferer, SINR must be 0 (not +Inf) — the
// interferer case dominates the own-station case.
func TestSINRSharedLocationDominates(t *testing.T) {
	n := sharedNet(t)
	origin := geom.Pt(0, 0)

	for _, i := range []int{0, 1} {
		if got := n.SINR(i, origin); got != 0 {
			t.Errorf("SINR(%d, origin) = %v, want 0 (co-located interferer dominates)", i, got)
		}
		if n.Heard(i, origin) {
			t.Errorf("Heard(%d, origin) = true, want false at a shared location", i)
		}
	}
	// The isolated station sees infinite interference at the origin too.
	if got := n.SINR(2, origin); got != 0 {
		t.Errorf("SINR(2, origin) = %v, want 0", got)
	}
	// No station is heard at the shared point: HeardBy reports the
	// no-station sentinel shape (0, false).
	if idx, ok := n.HeardBy(origin); ok {
		t.Errorf("HeardBy(origin) = (%d, true), want (_, false)", idx)
	}

	// The isolated station's own location is unaffected: its energy is
	// infinite there while interference stays finite.
	if got := n.SINR(2, geom.Pt(4, 0)); !math.IsInf(got, 1) {
		t.Errorf("SINR(2, s_2) = %v, want +Inf", got)
	}
	if i, ok := n.HeardBy(geom.Pt(4, 0)); !ok || i != 2 {
		t.Errorf("HeardBy(s_2) = (%d, %v), want (2, true)", i, ok)
	}
}

// TestSharedLocationAtMostOneHeard checks that the beta > 1 uniqueness
// property survives shared locations: pre-fix, both co-located stations
// reported SINR = +Inf at the shared point and were simultaneously
// "heard", violating the at-most-one-station property the batch and
// scheduling layers rely on.
func TestSharedLocationAtMostOneHeard(t *testing.T) {
	n := sharedNet(t)
	pts := []geom.Point{
		geom.Pt(0, 0), geom.Pt(4, 0), geom.Pt(0.1, 0), geom.Pt(2, 2),
	}
	for _, p := range pts {
		heard := 0
		for i := 0; i < n.NumStations(); i++ {
			if n.Heard(i, p) {
				heard++
			}
		}
		if heard > 1 {
			t.Errorf("%v: %d stations heard simultaneously with beta = %v > 1", p, heard, n.Beta())
		}
	}
}

// TestLocatorSharedLocationAgreesWithHeardBy ties the shared-location
// SINR fix and the kd-tree tie-break together: on a network with a
// shared station location, the Theorem 3 locator must agree with
// Network.HeardBy everywhere — including at the shared point itself
// (point-zone T? cell resolved by exact evaluation) and on the
// equidistant midline between the duplicate pair and the isolated
// station.
func TestLocatorSharedLocationAgreesWithHeardBy(t *testing.T) {
	n := sharedNet(t)
	loc, err := n.BuildLocator(0.2)
	if err != nil {
		t.Fatal(err)
	}
	pts := []geom.Point{
		geom.Pt(0, 0),      // shared location: nobody heard
		geom.Pt(2, 0),      // exact Voronoi midline: kd-tree tie
		geom.Pt(2, 1),      // midline off-axis
		geom.Pt(4, 0),      // isolated station
		geom.Pt(0.05, 0),   // deep in the dead pair's old zone
		geom.Pt(3.7, 0.05), // inside station 2's zone
	}
	for _, p := range pts {
		wantIdx, wantOK := n.HeardBy(p)
		gotIdx, gotOK := loc.HeardBy(p)
		if wantOK != gotOK || (wantOK && wantIdx != gotIdx) {
			t.Errorf("%v: locator HeardBy = (%d, %v), direct = (%d, %v)",
				p, gotIdx, gotOK, wantIdx, wantOK)
		}
	}
}
