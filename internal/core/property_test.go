package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

// clampCoord maps an arbitrary float64 into a sane coordinate range.
func clampCoord(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 8)
}

// TestQuickSINRScaleInvariance: SINR is invariant under uniform
// scaling of all distances with noise rescaled by 1/sigma^2
// (Lemma 2.3), across arbitrary random geometries.
func TestQuickSINRScaleInvariance(t *testing.T) {
	f := func(ax, ay, bx, by, px, py, rawSigma float64) bool {
		a := geom.Pt(clampCoord(ax), clampCoord(ay))
		b := geom.Pt(clampCoord(bx)+10, clampCoord(by)) // keep stations apart
		p := geom.Pt(clampCoord(px)+3, clampCoord(py)+3)
		sigma := 0.25 + math.Abs(math.Mod(rawSigma, 4))
		n, err := NewUniform([]geom.Point{a, b}, 0.05, 2)
		if err != nil {
			return false
		}
		fTr := geom.Scaling(sigma)
		fn, err := n.Transform(fTr)
		if err != nil {
			return false
		}
		s1 := n.SINR(0, p)
		s2 := fn.SINR(0, fTr.Apply(p))
		if math.IsInf(s1, 1) || math.IsInf(s2, 1) {
			return math.IsInf(s1, 1) == math.IsInf(s2, 1)
		}
		return math.Abs(s1-s2) <= 1e-6*(1+s1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickSegmentTestReversalInvariance: the number of boundary
// crossings of a segment does not depend on its orientation.
func TestQuickSegmentTestReversalInvariance(t *testing.T) {
	net := mustNet(t, []geom.Point{geom.Pt(0, 0), geom.Pt(2, 1), geom.Pt(-1, 2)}, 0.02, 2.5)
	f := func(ax, ay, bx, by float64) bool {
		a := geom.Pt(clampCoord(ax), clampCoord(ay))
		b := geom.Pt(clampCoord(bx), clampCoord(by))
		if geom.Dist(a, b) < 0.05 {
			return true
		}
		c1, err1 := net.SegmentTest(0, geom.Seg(a, b))
		c2, err2 := net.SegmentTest(0, geom.Seg(b, a))
		if err1 != nil || err2 != nil {
			return false
		}
		return c1 == c2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickHeardMonotoneInBeta: raising the threshold can only shrink
// zones.
func TestQuickHeardMonotoneInBeta(t *testing.T) {
	stations := []geom.Point{geom.Pt(0, 0), geom.Pt(3, 0), geom.Pt(0, 3)}
	f := func(px, py, rawB1, rawB2 float64) bool {
		p := geom.Pt(clampCoord(px), clampCoord(py))
		b1 := 1 + math.Abs(math.Mod(rawB1, 5))
		b2 := b1 + math.Abs(math.Mod(rawB2, 5))
		lo, err := NewUniform(stations, 0.01, b1)
		if err != nil {
			return false
		}
		hi, err := NewUniform(stations, 0.01, b2)
		if err != nil {
			return false
		}
		// heard at the stricter threshold implies heard at the looser.
		return !hi.Heard(0, p) || lo.Heard(0, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickHeardMonotoneInNoise: raising the noise can only shrink
// zones.
func TestQuickHeardMonotoneInNoise(t *testing.T) {
	stations := []geom.Point{geom.Pt(0, 0), geom.Pt(3, 0)}
	f := func(px, py, rawN1, rawN2 float64) bool {
		p := geom.Pt(clampCoord(px), clampCoord(py))
		n1 := math.Abs(math.Mod(rawN1, 0.2))
		n2 := n1 + math.Abs(math.Mod(rawN2, 0.2))
		lo, err := NewUniform(stations, n1, 2)
		if err != nil {
			return false
		}
		hi, err := NewUniform(stations, n2, 2)
		if err != nil {
			return false
		}
		return !hi.Heard(0, p) || lo.Heard(0, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickInterferenceAdditive: interference at a point equals the
// sum of single-station energies (Equation 1's denominator structure).
func TestQuickInterferenceAdditive(t *testing.T) {
	f := func(px, py float64) bool {
		p := geom.Pt(clampCoord(px)+0.1, clampCoord(py)+0.1)
		stations := []geom.Point{geom.Pt(0, 0), geom.Pt(3, 0), geom.Pt(0, 3), geom.Pt(-3, -3)}
		n, err := NewUniform(stations, 0, 2)
		if err != nil {
			return false
		}
		var sum float64
		for j := 1; j < n.NumStations(); j++ {
			sum += n.Energy(j, p)
		}
		got := n.Interference(0, p)
		if math.IsInf(sum, 1) {
			return math.IsInf(got, 1)
		}
		return math.Abs(got-sum) <= 1e-9*(1+sum)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickIndexedLocateMatchesScan: the spatial-index fast path of
// Locate/LocateExact/HeardBy answers point-for-point identically to
// both the pre-index scan baseline (LocateScan) and a locator built
// with the index disabled, across random networks, epsilons and
// query points — including points far outside every zone (the
// index's fast H- exit) and points near zone boundaries (the H?
// rings).
func TestQuickIndexedLocateMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 12; trial++ {
		n := 2 + rng.Intn(10)
		stations := make([]geom.Point, n)
		for i := range stations {
			stations[i] = geom.Pt(rng.Float64()*10-5, rng.Float64()*10-5)
		}
		if trial%4 == 3 {
			// Exercise the degenerate point-zone path too.
			stations[n-1] = stations[0]
		}
		net := mustNet(t, stations, 0.01, 1.5+rng.Float64()*3)
		eps := []float64{0.5, 0.2, 0.1}[rng.Intn(3)]
		indexed, err := net.BuildLocatorOpts(eps, BuildOptions{Workers: 1})
		if err != nil {
			t.Fatalf("trial %d: indexed build: %v", trial, err)
		}
		plain, err := net.BuildLocatorOpts(eps, BuildOptions{Workers: 1, NoSpatialIndex: true})
		if err != nil {
			t.Fatalf("trial %d: plain build: %v", trial, err)
		}
		if indexed.SpatialIndex() == nil || plain.SpatialIndex() != nil {
			t.Fatalf("trial %d: index presence wrong (on by default, off on request)", trial)
		}
		for q := 0; q < 1500; q++ {
			// Mix wide-area points (mostly H-) with points near a
			// station (H+ and H? territory).
			var p geom.Point
			if q%2 == 0 {
				p = geom.Pt(rng.Float64()*30-15, rng.Float64()*30-15)
			} else {
				s := stations[rng.Intn(n)]
				r := rng.Float64() * 2
				a := rng.Float64() * 2 * math.Pi
				p = geom.Pt(s.X+r*math.Cos(a), s.Y+r*math.Sin(a))
			}
			want := indexed.LocateScan(p)
			if got := indexed.Locate(p); got != want {
				t.Fatalf("trial %d: Locate(%v) = %+v, scan = %+v", trial, p, got, want)
			}
			if got := plain.Locate(p); got != want {
				t.Fatalf("trial %d: no-index Locate(%v) = %+v, scan = %+v", trial, p, got, want)
			}
			wantExact := indexed.ResolveUncertain(want, p)
			if got := indexed.LocateExact(p); got != wantExact {
				t.Fatalf("trial %d: LocateExact(%v) = %+v, want %+v", trial, p, got, wantExact)
			}
			gi, oki := indexed.HeardBy(p)
			gp, okp := plain.HeardBy(p)
			if gi != gp || oki != okp {
				t.Fatalf("trial %d: HeardBy(%v) indexed (%d,%v) != plain (%d,%v)",
					trial, p, gi, oki, gp, okp)
			}
		}
	}
}

// TestQuickZoneShrinksWithMoreInterferers: adding a station never
// grows an existing zone (the Figure 1(C) silencing effect, stated as
// the contrapositive).
func TestQuickZoneShrinksWithMoreInterferers(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 100; trial++ {
		base := []geom.Point{geom.Pt(0, 0), geom.Pt(2.5, 0.5)}
		extra := geom.Pt(rng.Float64()*8-4, rng.Float64()*8-4)
		small := mustNet(t, base, 0.02, 2)
		big := mustNet(t, append(append([]geom.Point{}, base...), extra), 0.02, 2)
		p := geom.Pt(rng.Float64()*6-3, rng.Float64()*6-3)
		if big.Heard(0, p) && !small.Heard(0, p) {
			t.Fatalf("trial %d: adding station %v grew zone 0 at %v", trial, extra, p)
		}
	}
}
