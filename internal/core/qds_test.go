package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func buildTestQDS(t *testing.T, n *Network, k int, eps float64) *QDS {
	t.Helper()
	q, err := n.BuildQDS(k, eps)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestBuildQDSValidation(t *testing.T) {
	n := twoStation(t)
	for _, eps := range []float64{0, 1, -0.5, 1.5} {
		if _, err := n.BuildQDS(0, eps); err == nil {
			t.Errorf("eps = %v should fail", eps)
		}
	}
	if _, err := n.BuildQDS(7, 0.2); err == nil {
		t.Error("out-of-range station should fail")
	}
	nb := mustNet(t, n.Stations(), 0, 1)
	if _, err := nb.BuildQDS(0, 0.2); err == nil {
		t.Error("beta = 1 should fail")
	}
	nu, err := NewNetwork(n.Stations(), 0, 4, WithPowers([]float64{1, 2}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nu.BuildQDS(0, 0.2); err == nil {
		t.Error("non-uniform should fail")
	}
}

func TestQDSPointZone(t *testing.T) {
	n := mustNet(t, []geom.Point{geom.Pt(0, 0), geom.Pt(0, 0), geom.Pt(2, 0)}, 0, 4)
	q := buildTestQDS(t, n, 0, 0.2)
	if q.NumUncertainCells() != 0 {
		t.Errorf("point zone |T?| = %d", q.NumUncertainCells())
	}
	if got := q.Classify(geom.Pt(0, 0)); got != TQuestion {
		t.Errorf("station point classify = %v", got)
	}
	if got := q.Classify(geom.Pt(1, 1)); got != TMinus {
		t.Errorf("other point classify = %v", got)
	}
}

// TestQDSInvariantsTheorem3 validates the three guarantees of
// Theorem 3 by dense sampling on several networks:
//
//	(1) every T+ sample is truly in the zone,
//	(2) every T- sample is truly outside,
//	(3) area(H?) <= eps * area(H_i).
func TestQDSInvariantsTheorem3(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	nets := []*Network{
		twoStation(t),
		mustNet(t, []geom.Point{geom.Pt(0, 0), geom.Pt(3, 0), geom.Pt(-1, 2.5), geom.Pt(1.5, -2)}, 0.01, 3),
		mustNet(t, []geom.Point{geom.Pt(0, 0), geom.Pt(1.2, 0.4), geom.Pt(-0.8, 1.1), geom.Pt(0.3, -1.4), geom.Pt(2.2, 2.0)}, 0.05, 2),
	}
	for ni, n := range nets {
		const eps = 0.2
		q := buildTestQDS(t, n, 0, eps)
		z, _ := n.Zone(0)

		// Invariants (1) and (2) by sampling around the zone.
		ext := q.Bounds().DeltaUpper * 1.5
		s := n.Station(0)
		for i := 0; i < 4000; i++ {
			p := geom.Pt(s.X+(rng.Float64()*2-1)*ext, s.Y+(rng.Float64()*2-1)*ext)
			inZone := z.Contains(p)
			switch q.Classify(p) {
			case TPlus:
				if !inZone {
					t.Fatalf("net %d: T+ cell contains out-of-zone point %v (SINR=%v)", ni, p, n.SINR(0, p))
				}
			case TMinus:
				if inZone {
					t.Fatalf("net %d: T- cell contains in-zone point %v (SINR=%v)", ni, p, n.SINR(0, p))
				}
			}
		}

		// Invariant (3): uncertainty area at most eps fraction.
		area, err := z.ApproxArea(720, q.Gamma()/32)
		if err != nil {
			t.Fatal(err)
		}
		if got := q.UncertainArea(); got > eps*area {
			t.Errorf("net %d: area(H?) = %v > eps * area = %v", ni, got, eps*area)
		}
	}
}

// TestQDSVerifyColumns cross-checks the structure against the exact
// Sturm segment-test machinery.
func TestQDSVerifyColumns(t *testing.T) {
	n := mustNet(t, []geom.Point{geom.Pt(0, 0), geom.Pt(2, 1), geom.Pt(-1.5, 1.5)}, 0.02, 2.5)
	q := buildTestQDS(t, n, 0, 0.25)
	bad, err := q.VerifyColumns()
	if err != nil {
		t.Fatal(err)
	}
	if bad != 0 {
		t.Errorf("%d uncovered boundary crossings", bad)
	}
}

// TestQDSEpsScaling: |T?| should grow like 1/eps (Section 5.1 sizing).
func TestQDSEpsScaling(t *testing.T) {
	n := twoStation(t)
	var counts []int
	epss := []float64{0.4, 0.2, 0.1}
	for _, eps := range epss {
		q := buildTestQDS(t, n, 0, eps)
		counts = append(counts, q.NumUncertainCells())
	}
	// Halving eps should roughly double |T?| (within a factor 1.4..2.8).
	for i := 1; i < len(counts); i++ {
		ratio := float64(counts[i]) / float64(counts[i-1])
		if ratio < 1.4 || ratio > 2.9 {
			t.Errorf("eps %v -> %v: |T?| ratio = %v (counts %v), want ~2",
				epss[i-1], epss[i], ratio, counts)
		}
	}
}

func TestQDSAccessors(t *testing.T) {
	n := twoStation(t)
	q := buildTestQDS(t, n, 0, 0.3)
	if q.Station() != 0 {
		t.Errorf("Station = %d", q.Station())
	}
	if q.Eps() != 0.3 {
		t.Errorf("Eps = %v", q.Eps())
	}
	if q.Gamma() <= 0 {
		t.Errorf("Gamma = %v", q.Gamma())
	}
	if q.NumColumns() <= 0 {
		t.Error("no columns stored")
	}
	if q.NumUncertainCells() <= 0 {
		t.Error("no uncertain cells")
	}
	b := q.Bounds()
	if b.DeltaLower <= 0 || b.DeltaUpper < b.DeltaLower {
		t.Errorf("bounds = %+v", b)
	}
	// gamma formula: eps * delta~^2 / (GammaSafety * Delta~).
	want := 0.3 * b.DeltaLower * b.DeltaLower / (GammaSafety * b.DeltaUpper)
	if math.Abs(q.Gamma()-want) > 1e-12*want {
		t.Errorf("Gamma = %v, want %v", q.Gamma(), want)
	}
}

func TestQDSClassifyFarPoint(t *testing.T) {
	n := twoStation(t)
	q := buildTestQDS(t, n, 0, 0.2)
	if got := q.Classify(geom.Pt(100, 100)); got != TMinus {
		t.Errorf("far point = %v, want T-", got)
	}
	if got := q.Classify(geom.Pt(0, 0)); got == TMinus {
		t.Errorf("station cell = %v, want interior or ring", got)
	}
}

// TestQDSStationCellInterior: the station itself must never be
// classified T- (it is always in its zone).
func TestQDSStationCellInterior(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 5; trial++ {
		pts := make([]geom.Point, 3+rng.Intn(4))
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*6-3, rng.Float64()*6-3)
		}
		n := mustNet(t, pts, 0.01, 2+rng.Float64()*3)
		if n.SharesLocation(0) {
			continue
		}
		q := buildTestQDS(t, n, 0, 0.2)
		if got := q.Classify(n.Station(0)); got == TMinus {
			t.Fatalf("trial %d: station classified T-", trial)
		}
	}
}
