package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// TestTheorem1ConvexityRandom is the headline empirical validation of
// Theorem 1: reception zones of uniform power networks with alpha = 2
// and beta > 1 pass both convexity certificates on random instances.
func TestTheorem1ConvexityRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 12; trial++ {
		nSt := 2 + rng.Intn(7)
		pts := make([]geom.Point, nSt)
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*10-5, rng.Float64()*10-5)
		}
		beta := 1.1 + rng.Float64()*6
		noise := rng.Float64() * 0.05
		n := mustNet(t, pts, noise, beta)
		report, err := n.CheckConvexity(0, 40, 40, 12, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !report.Convex() {
			t.Fatalf("trial %d (beta=%v): %v", trial, beta, report)
		}
	}
}

// TestTheorem1BetaEqualsOne: the convexity proof still holds at
// beta = 1 (the paper notes this explicitly after Theorem 1).
func TestTheorem1BetaEqualsOne(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(3, 1), geom.Pt(-2, 2), geom.Pt(1, -3)}
	n := mustNet(t, pts, 0.05, 1) // noise > 0 keeps the zone bounded
	report, err := n.CheckConvexity(0, 40, 40, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Convex() {
		t.Fatalf("beta=1 zone not convex: %v", report)
	}
}

// TestFigure5NonConvexity reproduces the Figure 5 phenomenon: with
// beta < 1 reception zones need not be convex. The two-station variant
// with a hole around the interferer is the sharpest certificate.
func TestFigure5NonConvexity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := mustNet(t, []geom.Point{geom.Pt(-2, 0), geom.Pt(2, 0)}, 0.005, 0.3)
	report, err := n.CheckConvexity(0, 60, 200, 15, rng)
	if err != nil {
		t.Fatal(err)
	}
	if report.Convex() {
		t.Fatalf("expected non-convexity evidence for beta < 1: %v", report)
	}
	if report.MaxLineCrossings <= 2 && report.MidpointViolations == 0 {
		t.Fatalf("no certificate found: %v", report)
	}
}

func TestCheckConvexityValidation(t *testing.T) {
	n := twoStation(t)
	if _, err := n.CheckConvexity(0, 1, 1, 1, nil); err == nil {
		t.Error("nil rng must fail")
	}
	n4, err := NewNetwork(n.Stations(), 0, 4, WithAlpha(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n4.CheckConvexity(0, 1, 1, 1, rand.New(rand.NewSource(1))); err != ErrNeedAlpha2 {
		t.Errorf("err = %v", err)
	}
}

func TestConvexityReportString(t *testing.T) {
	r := ConvexityReport{LinesTested: 5, MaxLineCrossings: 2, MidpointsTested: 7}
	if got := r.String(); got == "" {
		t.Error("empty string")
	}
	if !r.Convex() {
		t.Error("report with <=2 crossings and no violations is convex")
	}
}

// TestLemma31StarShape validates Lemma 3.1: SINR strictly increases
// along segments toward the station, for uniform networks.
func TestLemma31StarShape(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		nSt := 2 + rng.Intn(6)
		pts := make([]geom.Point, nSt)
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*10-5, rng.Float64()*10-5)
		}
		n := mustNet(t, pts, rng.Float64()*0.05, 1+rng.Float64()*4)
		v, err := n.StarShapeViolations(0, 20, 15, 8, rng)
		if err != nil {
			t.Fatal(err)
		}
		if v != 0 {
			t.Fatalf("trial %d: %d star-shape violations", trial, v)
		}
	}
}

func TestStarShapeNilRNG(t *testing.T) {
	if _, err := twoStation(t).StarShapeViolations(0, 1, 1, 1, nil); err == nil {
		t.Error("nil rng must fail")
	}
}

// TestThreeStationAnalysis exercises the Section 3.2 machinery: the
// quartic H(x) on the line y = 1, the separation-line roots r1, r2,
// and the Sturm sign-change bounds SC(+inf) >= 1, SC(-inf) <= 3 that
// imply at most two distinct real roots (Propositions 3.7 and 3.8).
func TestThreeStationAnalysis(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		s1 := geom.Pt(0.2+rng.Float64()*5, 1+rng.Float64()*5)
		s2 := geom.Pt(0.2+rng.Float64()*5, 1+rng.Float64()*5)
		rep, err := ThreeStationAnalysis(s1, s2)
		if err != nil {
			t.Fatal(err)
		}
		if rep.H.Degree() != 4 {
			t.Fatalf("trial %d: H degree = %d, want 4", trial, rep.H.Degree())
		}
		if rep.SCPosInf < 1 {
			t.Errorf("trial %d: SC(+inf) = %d, want >= 1 (Prop. 3.7)", trial, rep.SCPosInf)
		}
		if rep.SCNegInf > 3 {
			t.Errorf("trial %d: SC(-inf) = %d, want <= 3 (Prop. 3.8)", trial, rep.SCNegInf)
		}
		if rep.DistinctPos > 2 {
			t.Errorf("trial %d: %d distinct real roots, want <= 2 (Lemma 3.3)", trial, rep.DistinctPos)
		}
		// r̄ is the mean of r1 and r2.
		if math.Abs(rep.RBar-(rep.R1+rep.R2)/2) > 1e-12 {
			t.Errorf("trial %d: rbar inconsistent", trial)
		}
	}
}

// TestThreeStationSeparationLineRoots verifies the paper's claim that
// r_j is the x-coordinate where the separation line of s0 and s_j
// crosses y = 1: the point (r_j, 1) is equidistant from s0 and s_j.
func TestThreeStationSeparationLineRoots(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 100; trial++ {
		s1 := geom.Pt(0.2+rng.Float64()*5, 1+rng.Float64()*5)
		s2 := geom.Pt(0.2+rng.Float64()*5, 1+rng.Float64()*5)
		rep, err := ThreeStationAnalysis(s1, s2)
		if err != nil {
			t.Fatal(err)
		}
		p1 := geom.Pt(rep.R1, 1)
		if d0, d1 := geom.Dist(geom.Origin, p1), geom.Dist(s1, p1); math.Abs(d0-d1) > 1e-9 {
			t.Errorf("trial %d: (r1, 1) not equidistant: %v vs %v", trial, d0, d1)
		}
		p2 := geom.Pt(rep.R2, 1)
		if d0, d2 := geom.Dist(geom.Origin, p2), geom.Dist(s2, p2); math.Abs(d0-d2) > 1e-9 {
			t.Errorf("trial %d: (r2, 1) not equidistant: %v vs %v", trial, d0, d2)
		}
	}
}

// TestCorollary35NoRootsBeyondSeparation verifies Corollary 3.5: H(x)
// has no real root at or beyond min{r1, r2}.
func TestCorollary35NoRootsBeyondSeparation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		s1 := geom.Pt(0.2+rng.Float64()*5, 1+rng.Float64()*5)
		s2 := geom.Pt(0.2+rng.Float64()*5, 1+rng.Float64()*5)
		rep, err := ThreeStationAnalysis(s1, s2)
		if err != nil {
			t.Fatal(err)
		}
		rMin := math.Min(rep.R1, rep.R2)
		// Count roots of H in (rMin, +bigBound].
		net, _ := NewUniform([]geom.Point{geom.Origin, s1, s2}, 0, 1)
		line := geom.Line{P: geom.Pt(0, 1), D: geom.Pt(1, 0)}
		roots, err := net.LineBoundaryCrossings(0, line, 1e-10)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range roots {
			if r >= rMin+1e-6 {
				t.Errorf("trial %d: root %v at or beyond min(r1,r2)=%v", trial, r, rMin)
			}
		}
	}
}

func TestThreeStationAnalysisValidation(t *testing.T) {
	if _, err := ThreeStationAnalysis(geom.Pt(-1, 2), geom.Pt(1, 2)); err == nil {
		t.Error("negative abscissa must be rejected")
	}
	if _, err := ThreeStationAnalysis(geom.Pt(1, 0.5), geom.Pt(1, 2)); err == nil {
		t.Error("station below the line must be rejected")
	}
}

// TestProposition34DiscriminantCase checks Prop. 3.4's discriminant
// argument directly: when sign(a1) != sign(a2) the quartic H has at
// most two distinct real roots because its derivative has exactly one.
func TestProposition34DiscriminantCase(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 100; trial++ {
		// Opposite-side interferers relative to x = 0, both above y=1.
		s1 := geom.Pt(-(0.2 + rng.Float64()*4), 1+rng.Float64()*4)
		s2 := geom.Pt(0.2+rng.Float64()*4, 1+rng.Float64()*4)
		net, err := NewUniform([]geom.Point{geom.Origin, s1, s2}, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		count, err := net.LineRootCount(0, geom.Line{P: geom.Pt(0, 1), D: geom.Pt(1, 0)})
		if err != nil {
			t.Fatal(err)
		}
		if count > 2 {
			t.Errorf("trial %d: %d roots with opposite-sign interferers", trial, count)
		}
	}
}
