package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/geom"
)

// DefaultAlpha is the "textbook" path-loss exponent; the paper's
// theorems are proved for alpha = 2.
const DefaultAlpha = 2

// Common validation errors.
var (
	ErrTooFewStations = errors.New("core: a network needs at least one station")
	ErrBadPower       = errors.New("core: transmission powers must be positive")
	ErrBadNoise       = errors.New("core: background noise must be non-negative")
	ErrBadBeta        = errors.New("core: reception threshold beta must be positive")
	ErrBadAlpha       = errors.New("core: path-loss alpha must be positive")
	ErrNeedAlpha2     = errors.New("core: this operation requires path-loss alpha = 2")
	ErrNeedUniform    = errors.New("core: this operation requires a uniform power network")
	ErrNeedBetaGT1    = errors.New("core: this operation requires reception threshold beta > 1")
	ErrSharedLocation = errors.New("core: station location shared by another station")
)

// Network is a wireless network A = <S, psi, N, beta> (Section 2.2 of
// the paper): stations embedded in the plane, per-station transmission
// powers, background noise N >= 0 and reception threshold beta. The
// path-loss exponent alpha is carried alongside; the paper's theorems
// require alpha = 2 and constructors default to it.
//
// A Network is immutable after construction; derived structures
// (zones, grids, locators) hold references to it safely across
// goroutines.
type Network struct {
	stations []geom.Point
	powers   []float64
	noise    float64
	beta     float64
	alpha    float64
	uniform  bool
}

// Option customizes network construction.
type Option func(*Network) error

// WithAlpha sets the path-loss exponent (default 2). Values other than
// 2 support SINR evaluation and diagrams but not the polynomial-based
// algorithms (segment test, Theorem 3).
func WithAlpha(alpha float64) Option {
	return func(n *Network) error {
		if alpha <= 0 || math.IsNaN(alpha) || math.IsInf(alpha, 0) {
			return ErrBadAlpha
		}
		n.alpha = alpha
		return nil
	}
}

// WithPowers sets per-station transmission powers, overriding the
// uniform default. len(powers) must equal the station count.
func WithPowers(powers []float64) Option {
	return func(n *Network) error {
		if len(powers) != len(n.stations) {
			return fmt.Errorf("core: %d powers for %d stations", len(powers), len(n.stations))
		}
		for _, p := range powers {
			if p <= 0 || math.IsNaN(p) || math.IsInf(p, 0) {
				return ErrBadPower
			}
		}
		n.powers = append([]float64(nil), powers...)
		n.uniform = true
		for _, p := range powers {
			if p != powers[0] {
				n.uniform = false
				break
			}
		}
		return nil
	}
}

// NewNetwork builds a network with the given station locations,
// background noise and reception threshold. Powers default to the
// uniform assignment psi = 1 and alpha to 2; override with options.
func NewNetwork(stations []geom.Point, noise, beta float64, opts ...Option) (*Network, error) {
	if len(stations) < 1 {
		return nil, ErrTooFewStations
	}
	if noise < 0 || math.IsNaN(noise) || math.IsInf(noise, 0) {
		return nil, ErrBadNoise
	}
	if beta <= 0 || math.IsNaN(beta) || math.IsInf(beta, 0) {
		return nil, ErrBadBeta
	}
	n := &Network{
		stations: append([]geom.Point(nil), stations...),
		noise:    noise,
		beta:     beta,
		alpha:    DefaultAlpha,
		uniform:  true,
	}
	for _, opt := range opts {
		if err := opt(n); err != nil {
			return nil, err
		}
	}
	if n.powers == nil {
		n.powers = make([]float64, len(stations))
		for i := range n.powers {
			n.powers[i] = 1
		}
	}
	return n, nil
}

// NewUniform builds a uniform power network <S, 1, N, beta> with
// alpha = 2, the setting of all three theorems.
func NewUniform(stations []geom.Point, noise, beta float64) (*Network, error) {
	return NewNetwork(stations, noise, beta)
}

// NumStations returns |S|.
func (n *Network) NumStations() int { return len(n.stations) }

// Station returns the location of station i.
func (n *Network) Station(i int) geom.Point { return n.stations[i] }

// Stations returns a copy of all station locations.
func (n *Network) Stations() []geom.Point {
	return append([]geom.Point(nil), n.stations...)
}

// Power returns the transmission power psi_i.
func (n *Network) Power(i int) float64 { return n.powers[i] }

// Noise returns the background noise N.
func (n *Network) Noise() float64 { return n.noise }

// Beta returns the reception threshold beta.
func (n *Network) Beta() float64 { return n.beta }

// Alpha returns the path-loss exponent.
func (n *Network) Alpha() float64 { return n.alpha }

// IsUniform reports whether all stations share the same power.
func (n *Network) IsUniform() bool { return n.uniform }

// IsTrivial reports whether the network is trivial in the paper's
// sense (Section 2.2): exactly two uniform stations, no noise, and
// beta = 1 — the one case where reception zones are unbounded
// half-planes.
func (n *Network) IsTrivial() bool {
	return len(n.stations) == 2 && n.uniform && n.noise == 0 && n.beta == 1
}

// SharesLocation reports whether station i's location coincides with
// another station's (within geom.Eps). In that case the zone
// degenerates: the co-located interferer drives SINR(s_i, .) to 0 at
// s_i itself, so no point of the plane is heard from station i.
func (n *Network) SharesLocation(i int) bool {
	for j, s := range n.stations {
		if j != i && geom.ApproxEqual(s, n.stations[i], geom.Eps) {
			return true
		}
	}
	return false
}

// Energy returns E(s_i, p) = psi_i * dist(s_i, p)^(-alpha)
// (Section 2.2). It returns +Inf when p coincides with s_i.
func (n *Network) Energy(i int, p geom.Point) float64 {
	d2 := geom.Dist2(n.stations[i], p)
	if d2 == 0 {
		return math.Inf(1)
	}
	if n.alpha == 2 {
		return n.powers[i] / d2
	}
	return n.powers[i] * math.Pow(d2, -n.alpha/2)
}

// Interference returns I(s_i, p) = E(S - {s_i}, p): the summed energy
// of every station other than i at p.
func (n *Network) Interference(i int, p geom.Point) float64 {
	var sum float64
	for j := range n.stations {
		if j != i {
			sum += n.Energy(j, p)
		}
	}
	return sum
}

// SINR returns SINR(s_i, p) per Equation (1) of the paper. It returns
// +Inf at p == s_i and 0 when p coincides with an interfering station.
// The interferer case dominates: at a point coinciding with both s_i
// and a co-located interferer (Energy and Interference both +Inf) the
// result is 0, matching the zone convention that a point coinciding
// with an interferer is never heard (H_i degenerates for shared
// locations).
func (n *Network) SINR(i int, p geom.Point) float64 {
	inter := n.Interference(i, p)
	if math.IsInf(inter, 1) {
		return 0
	}
	e := n.Energy(i, p)
	if math.IsInf(e, 1) {
		return math.Inf(1)
	}
	return e / (inter + n.noise)
}

// Heard reports whether the transmission of station i is received
// correctly at p: SINR(s_i, p) >= beta, with the zone convention
// H_i = {p : SINR >= beta} ∪ {s_i} (so s_i itself is heard) except
// that a point coinciding with an interferer never is heard — the
// interferer case wins even at p == s_i when another station shares
// the location.
func (n *Network) Heard(i int, p geom.Point) bool {
	return n.SINR(i, p) >= n.beta
}

// HeardBy returns the index of the station heard at p and true, or
// (0, false) when no station is heard. For beta > 1 at most one
// station can be heard at any point, so the answer is unique; for
// beta <= 1 the lowest-index heard station is returned. The batch
// primitives (HeardByBatch and friends) report the same no-station
// answer as the NoStationHeard (-1) sentinel, since they have no
// per-element ok bool.
func (n *Network) HeardBy(p geom.Point) (int, bool) {
	for i := range n.stations {
		if n.Heard(i, p) {
			return i, true
		}
	}
	return 0, false
}

// Kappa returns min{dist(s_i, s_j) : j != i}, the distance from
// station i to its closest peer (the parameter kappa of Theorem 4.1).
// It returns 0 for single-station networks or shared locations.
func (n *Network) Kappa(i int) float64 {
	best := math.Inf(1)
	for j, s := range n.stations {
		if j != i {
			if d := geom.Dist(s, n.stations[i]); d < best {
				best = d
			}
		}
	}
	if math.IsInf(best, 1) {
		return 0
	}
	return best
}

// Transform applies a similarity transform f (rotation, translation,
// scaling by sigma) to the network, rescaling the background noise to
// N / sigma^2 exactly as Lemma 2.3 prescribes, so that SINR values are
// preserved: SINR_A(s_i, p) == SINR_f(A)(f(s_i), f(p)).
func (n *Network) Transform(f geom.Transform) (*Network, error) {
	sigma := f.Scale()
	if sigma == 0 {
		return nil, errors.New("core: degenerate transform")
	}
	if n.alpha != 2 {
		return nil, ErrNeedAlpha2
	}
	out := &Network{
		stations: f.ApplyAll(n.stations),
		powers:   append([]float64(nil), n.powers...),
		noise:    n.noise / (sigma * sigma),
		beta:     n.beta,
		alpha:    n.alpha,
		uniform:  n.uniform,
	}
	return out, nil
}

// Subnetwork returns the network obtained by keeping only the stations
// with the given indices (e.g. silencing a station, as in Figure 1(C)
// of the paper). Indices must be valid and non-empty.
func (n *Network) Subnetwork(keep []int) (*Network, error) {
	if len(keep) == 0 {
		return nil, ErrTooFewStations
	}
	st := make([]geom.Point, 0, len(keep))
	pw := make([]float64, 0, len(keep))
	for _, idx := range keep {
		if idx < 0 || idx >= len(n.stations) {
			return nil, fmt.Errorf("core: station index %d out of range [0, %d)", idx, len(n.stations))
		}
		st = append(st, n.stations[idx])
		pw = append(pw, n.powers[idx])
	}
	return NewNetwork(st, n.noise, n.beta, WithAlpha(n.alpha), WithPowers(pw))
}

// WithStation returns a copy of the network with one extra station
// appended at location s with power psi (used by the Section 3.4
// noise-removal construction and the Lemma 3.10 merge).
func (n *Network) WithStation(s geom.Point, psi float64) (*Network, error) {
	st := append(n.Stations(), s)
	pw := append(append([]float64(nil), n.powers...), psi)
	return NewNetwork(st, n.noise, n.beta, WithAlpha(n.alpha), WithPowers(pw))
}

// WithNoise returns a copy of the network with the background noise
// replaced by noise.
func (n *Network) WithNoise(noise float64) (*Network, error) {
	return NewNetwork(n.stations, noise, n.beta, WithAlpha(n.alpha), WithPowers(n.powers))
}

// String implements fmt.Stringer.
func (n *Network) String() string {
	kind := "general"
	if n.uniform {
		kind = "uniform"
	}
	return fmt.Sprintf("Network{n=%d %s N=%.4g beta=%.4g alpha=%.4g}",
		len(n.stations), kind, n.noise, n.beta, n.alpha)
}
