package core

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geom"
)

// This file implements probes for the extensions the paper lists as
// open problems (Section 1.4): path-loss exponents alpha != 2 and
// non-uniform transmission powers. The polynomial/Sturm machinery is
// specific to alpha = 2, but direct SINR evaluation is not, so the
// sampling-based certificates generalize.
//
// Star-shape note: Lemma 3.1's proof rotates interferers onto the
// positive axis and shows f(x) = sum_i (x/(a_i+x))^2 + x^2 N is
// increasing on (0, 1]. The same argument works for any alpha > 0
// (each term (x/(a_i+x))^alpha and x^alpha * N is increasing), so for
// uniform power networks with beta >= 1 the zone is star-shaped for
// every alpha — which is what makes radial probing sound beyond
// alpha = 2.

// GeneralConvexityReport is a sampling-only convexity probe result for
// settings outside the Theorem 1 regime.
type GeneralConvexityReport struct {
	Alpha              float64
	MidpointsTested    int
	MidpointViolations int
	ChordsTested       int
	ChordViolations    int // interior chord samples outside the zone
}

// Convex reports whether no violation was found (evidence of, not
// proof of, convexity).
func (r GeneralConvexityReport) Convex() bool {
	return r.MidpointViolations == 0 && r.ChordViolations == 0
}

// String implements fmt.Stringer.
func (r GeneralConvexityReport) String() string {
	return fmt.Sprintf("alpha=%.3g midpoints=%d/%d chords=%d/%d convex=%v",
		r.Alpha, r.MidpointViolations, r.MidpointsTested,
		r.ChordViolations, r.ChordsTested, r.Convex())
}

// ProbeConvexity is the sampling-only convexity certificate usable for
// any alpha and any power assignment: draw pairs of in-zone points and
// test midpoints plus several interior chord samples. radius bounds the
// sampling disk around the station.
func (n *Network) ProbeConvexity(k, pairs int, radius float64, rng *rand.Rand) (GeneralConvexityReport, error) {
	if rng == nil {
		return GeneralConvexityReport{}, fmt.Errorf("core: nil rng")
	}
	if k < 0 || k >= len(n.stations) {
		return GeneralConvexityReport{}, fmt.Errorf("core: station index %d out of range", k)
	}
	report := GeneralConvexityReport{Alpha: n.alpha}
	s := n.stations[k]
	inZone := func() (geom.Point, bool) {
		for try := 0; try < 300; try++ {
			p := geom.PolarPoint(s, rng.Float64()*radius, 2*math.Pi*rng.Float64())
			if n.Heard(k, p) {
				return p, true
			}
		}
		return geom.Point{}, false
	}
	for i := 0; i < pairs; i++ {
		p1, ok1 := inZone()
		p2, ok2 := inZone()
		if !ok1 || !ok2 {
			break
		}
		report.MidpointsTested++
		if !n.Heard(k, geom.Midpoint(p1, p2)) {
			report.MidpointViolations++
		}
		for _, t := range []float64{0.25, 0.5, 0.75} {
			report.ChordsTested++
			if !n.Heard(k, geom.Lerp(p1, p2, t)) {
				report.ChordViolations++
			}
		}
	}
	return report, nil
}

// NonConvexNonUniformExample returns a deterministic witness that
// dropping the uniform-power assumption breaks Theorem 1 even for
// beta > 1 and two stations: a strong station (psi = 100) whose zone
// wraps around a weak interferer (psi = 1), leaving a hole — the
// beta < 1 phenomenon of Figure 5 reproduced via power imbalance (the
// effective ratio becomes sqrt(beta * psi_weak / psi_strong) < 1). The
// returned chord p1 p2 has in-zone endpoints and an out-of-zone
// midpoint.
func NonConvexNonUniformExample() (*Network, geom.Point, geom.Point, error) {
	net, err := NewNetwork(
		[]geom.Point{geom.Pt(0, 0), geom.Pt(3, 0)},
		0.001, 2,
		WithPowers([]float64{100, 1}),
	)
	if err != nil {
		return nil, geom.Point{}, geom.Point{}, err
	}
	return net, geom.Pt(3, 0.6), geom.Pt(3, -0.6), nil
}

// FindNonConvexNonUniform searches random non-uniform power
// configurations for a convexity violation — the phenomenon the paper
// flags as making general networks "harder to deal with"
// (Section 1.4). Station 0 gets power maxPowerRatio (the strongest;
// its zone is the one that wraps around weaker interferers), the rest
// draw powers in [1, maxPowerRatio). Chords are aimed across each
// interferer, where holes form. Returns the first violating network
// and witness chord, or ok = false after the trial budget.
func FindNonConvexNonUniform(stations, trials int, maxPowerRatio, beta float64, seed int64) (*Network, geom.Point, geom.Point, bool, error) {
	if stations < 2 {
		return nil, geom.Point{}, geom.Point{}, false, fmt.Errorf("core: need >= 2 stations")
	}
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < trials; trial++ {
		pts := make([]geom.Point, stations)
		powers := make([]float64, stations)
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*10-5, rng.Float64()*10-5)
			powers[i] = 1 + rng.Float64()*(maxPowerRatio-1)
		}
		powers[0] = maxPowerRatio
		net, err := NewNetwork(pts, 0.001, beta, WithPowers(powers))
		if err != nil {
			return nil, geom.Point{}, geom.Point{}, false, err
		}
		// Aim chords across each interferer at a few offsets.
		for j := 1; j < stations; j++ {
			sj := net.Station(j)
			for _, off := range []float64{0.3, 0.6, 1.0, 1.6} {
				theta := 2 * math.Pi * rng.Float64()
				d := geom.Pt(math.Cos(theta), math.Sin(theta)).Scale(off)
				p1, p2 := sj.Add(d), sj.Sub(d)
				if !net.Heard(0, p1) || !net.Heard(0, p2) {
					continue
				}
				for _, t := range []float64{0.25, 0.5, 0.75} {
					if !net.Heard(0, geom.Lerp(p1, p2, t)) {
						return net, p1, p2, true, nil
					}
				}
			}
		}
	}
	return nil, geom.Point{}, geom.Point{}, false, nil
}

// ZoneConnectivityProbe estimates whether zone k is connected by
// sampling: it collects in-zone samples in a disk of the given radius
// and checks that each is reachable from the station by a short
// in-zone polyline via the straight segment (for star-shaped zones) —
// returning the number of samples whose segment to the station leaves
// the zone. Uniform power zones must report zero (Lemma 3.1);
// non-uniform zones may not (the paper's open Section 1.4 notes that
// general networks behave differently — later work showed their zones
// can even be disconnected).
func (n *Network) ZoneConnectivityProbe(k, samples int, radius float64, rng *rand.Rand) (int, error) {
	if rng == nil {
		return 0, fmt.Errorf("core: nil rng")
	}
	s := n.stations[k]
	broken := 0
	for i := 0; i < samples; i++ {
		p := geom.PolarPoint(s, rng.Float64()*radius, 2*math.Pi*rng.Float64())
		if !n.Heard(k, p) {
			continue
		}
		for _, t := range []float64{0.2, 0.4, 0.6, 0.8} {
			if !n.Heard(k, geom.Lerp(s, p, t)) {
				broken++
				break
			}
		}
	}
	return broken, nil
}
